// Command wlgen inspects and authors the evaluation workloads: static
// CFG statistics, dynamic execution characteristics (the
// enterprise-workload signatures of §2.3), disassembly, DOT export —
// and the v2 authoring surface: spec-driven generation with versioned
// trace record/replay (docs/WORKLOADS.md is the guide).
//
// Usage:
//
//	wlgen -list
//	wlgen -workload G4Box [-scale 1.0] [-disasm] [-dot] [-dynamic]
//	wlgen -workload G4Box -events inst_retired,load [-timeslice N] [-mux-policy rr|priority]
//	wlgen -all [-scale 1.0] [-parallel N]
//	wlgen -spec spec.json [-scale 1.0] [-record out.trace]
//	wlgen -replay in.trace [-record out.trace]
//
// -spec builds a phased workload from a JSON spec document instead of
// the registry. -record writes the built program (whatever its source)
// as one versioned trace entry; -replay reconstructs the bit-identical
// program from a trace and inspects it like any other — re-recording a
// replay preserves the original provenance verbatim, so
// record→replay→record is byte-identical (the CI docs job proves this
// on the worked example).
//
// -events runs the workload under the virtualized multi-event PMU
// (internal/pmu Mux) on each evaluation machine, counting-only: the
// requested events are scheduled onto the machine's physical counters
// (time-multiplexed when they do not fit) and the table shows each
// event's exact ground-truth count next to the perf-style scaled
// estimate — the per-workload view of what counter multiplexing costs.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"pmutrust/internal/cpu"
	"pmutrust/internal/machine"
	"pmutrust/internal/pmu"
	"pmutrust/internal/pool"
	"pmutrust/internal/program"
	"pmutrust/internal/ref"
	"pmutrust/internal/report"
	"pmutrust/internal/trace"
	"pmutrust/internal/workloads"
)

func main() {
	var (
		list         = flag.Bool("list", false, "list available workloads")
		workloadName = flag.String("workload", "", "workload to inspect")
		scale        = flag.Float64("scale", 1.0, "workload scale factor")
		disasm       = flag.Bool("disasm", false, "print full disassembly")
		dot          = flag.Bool("dot", false, "print the CFG in Graphviz DOT format")
		dynamic      = flag.Bool("dynamic", true, "run the workload and print dynamic statistics")
		all          = flag.Bool("all", false, "characterize every workload (parallel) and print a summary table")
		parallel     = flag.Int("parallel", 0, "worker count for -all (0 = GOMAXPROCS)")
		eventsFlag   = flag.String("events", "", "run the workload under the multiplexed PMU counting these events (comma-separated, e.g. inst_retired,load)")
		timeslice    = flag.Uint64("timeslice", 0, "multiplexer rotation timeslice in simulated cycles (0 = default)")
		muxPolicy    = flag.String("mux-policy", "rr", "multiplexer rotation policy: rr or priority")
		specFile     = flag.String("spec", "", "build a phased workload from this JSON spec file (docs/WORKLOADS.md)")
		recordPath   = flag.String("record", "", "record the built program to this trace file")
		replayPath   = flag.String("replay", "", "replay the program from this trace file instead of building one")
	)
	flag.Parse()

	// Flag-value errors are usage errors (exit 2, matching pmubench's
	// convention for the same -events/-mux-policy flags); failures while
	// actually running a workload exit 1.
	muxEvents, err := pmu.ParseEventList(*eventsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wlgen: %v\n", err)
		os.Exit(2)
	}
	policy, err := pmu.MuxPolicyByName(*muxPolicy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wlgen: %v\n", err)
		os.Exit(2)
	}
	if *replayPath != "" && *specFile != "" {
		fmt.Fprintln(os.Stderr, "wlgen: -replay and -spec are exclusive (a replay is already built)")
		os.Exit(2)
	}

	if *all {
		if err := summarizeAll(*scale, *parallel); err != nil {
			fmt.Fprintf(os.Stderr, "wlgen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	haveSource := *workloadName != "" || *specFile != "" || *replayPath != ""
	if *list || !haveSource {
		t := report.New("available workloads", "name", "kind", "description")
		for _, s := range workloads.All() {
			t.AddRow(s.Name, s.Kind.String(), s.Description)
		}
		fmt.Println(t.String())
		if !haveSource {
			return
		}
	}

	entry, err := resolveProgram(*replayPath, *specFile, *workloadName, *scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wlgen: %v\n", err)
		os.Exit(1)
	}
	p := entry.Program
	if *replayPath != "" {
		fmt.Printf("replayed %s from %s (source %s, recorded at scale %g)\n",
			entry.Meta.Name, *replayPath, entry.Meta.Source, entry.Meta.Scale)
	}

	if *recordPath != "" {
		if err := trace.WriteFile(*recordPath, entry); err != nil {
			fmt.Fprintf(os.Stderr, "wlgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("recorded %s to %s\n", entry.Meta.Name, *recordPath)
	}

	fmt.Print(p.Stats().String())

	if len(muxEvents) > 0 {
		if err := muxCount(p, muxEvents, *timeslice, policy); err != nil {
			fmt.Fprintf(os.Stderr, "wlgen: %v\n", err)
			os.Exit(1)
		}
	}

	if *dynamic {
		res, err := cpu.RunFast(p, cpu.DefaultConfig(), cpu.NopMonitor{}, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wlgen: run: %v\n", err)
			os.Exit(1)
		}
		rp, err := ref.Collect(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wlgen: ref: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("dynamic: %d instrs, %d cycles (IPC %.2f)\n",
			res.Instructions, res.Cycles, res.IPC())
		fmt.Printf("  taken branches: %d (1 per %.1f instrs — enterprise band is 6-12)\n",
			res.TakenBranches, float64(res.Instructions)/float64(max(1, res.TakenBranches)))
		fmt.Printf("  cond branches: %d, mispredicted: %d (%.1f%%)\n",
			res.CondBranches, res.Mispredicts,
			100*float64(res.Mispredicts)/float64(max(1, res.CondBranches)))
		// Hotness long tail: how many blocks cover 90% of instructions?
		covered, blocks90 := uint64(0), 0
		counts := append([]uint64(nil), rp.InstrCount...)
		sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
		for _, c := range counts {
			if covered*10 >= rp.NetInstructions*9 {
				break
			}
			covered += c
			blocks90++
		}
		fmt.Printf("  hotness: %d of %d blocks cover 90%% of instructions\n",
			blocks90, p.NumBlocks())
	}
	if *disasm {
		fmt.Println(p.Disasm())
	}
	if *dot {
		fmt.Println(p.Dot())
	}
}

// resolveProgram builds the program to inspect from the strongest
// source given: a trace replay (already-built bytes, Meta preserved
// verbatim so re-recording is byte-identical), else a spec file, else a
// registered workload.
func resolveProgram(replayPath, specFile, workloadName string, scale float64) (trace.Entry, error) {
	switch {
	case replayPath != "":
		return trace.ReplayFile(replayPath)
	case specFile != "":
		s, err := workloads.LoadPhasedSpec(specFile)
		if err != nil {
			return trace.Entry{}, err
		}
		p, err := workloads.BuildPhased(s, scale)
		if err != nil {
			return trace.Entry{}, err
		}
		return trace.Record(p, trace.Meta{
			SpecFP: s.Fingerprint(),
			Source: "spec:" + s.Name,
			Scale:  scale,
		}), nil
	default:
		spec, err := workloads.ByName(workloadName)
		if err != nil {
			return trace.Entry{}, err
		}
		return trace.Record(spec.Build(scale), trace.Meta{
			Source: "workload:" + spec.Name,
			Scale:  scale,
		}), nil
	}
}

// wlRow is one workload's dynamic characterization for the -all table.
type wlRow struct {
	instrs, cycles uint64
	ipc            float64
	instrPerTaken  float64
	blocks         int
}

// summarizeAll builds and runs every registered workload on the shared
// bounded worker pool (workloads are independent, so this parallelizes
// cleanly) and prints one summary row each, in registry order regardless
// of completion order.
func summarizeAll(scale float64, workers int) error {
	specs := workloads.All()
	rows := make([]wlRow, len(specs))
	err := pool.ForEach(len(specs), workers, 0, func(i int) error {
		p := specs[i].Build(scale)
		res, err := cpu.RunFast(p, cpu.DefaultConfig(), cpu.NopMonitor{}, 0)
		if err != nil {
			return fmt.Errorf("%s: %w", specs[i].Name, err)
		}
		rows[i] = wlRow{
			instrs:        res.Instructions,
			cycles:        res.Cycles,
			ipc:           res.IPC(),
			instrPerTaken: float64(res.Instructions) / float64(max(1, res.TakenBranches)),
			blocks:        p.NumBlocks(),
		}
		return nil
	})
	if err != nil {
		return err
	}

	t := report.New(fmt.Sprintf("workload characterization (scale %g)", scale),
		"name", "kind", "instrs", "cycles", "IPC", "instr/taken", "blocks")
	for i, s := range specs {
		r := rows[i]
		t.AddRow(s.Name, s.Kind.String(),
			fmt.Sprintf("%d", r.instrs), fmt.Sprintf("%d", r.cycles),
			fmt.Sprintf("%.2f", r.ipc), fmt.Sprintf("%.1f", r.instrPerTaken),
			fmt.Sprintf("%d", r.blocks))
	}
	fmt.Println(t.String())
	return nil
}

// muxCount runs p under the virtualized multi-event PMU on each paper
// machine, counting-only (no sampling counter pinned, so the full
// physical budget is available), and prints the exact-vs-scaled table.
func muxCount(p *program.Program, events []pmu.Event, timeslice uint64, policy pmu.MuxPolicy) error {
	t := report.New(fmt.Sprintf("multiplexed counts: %s (policy %s)", pmu.EventListString(events), policy),
		"machine", "event", "exact", "scaled", "rel err", "running/enabled", "rotations")
	for _, mach := range machine.All() {
		m := pmu.NewMux(pmu.MuxConfig{
			Events:            events,
			TimesliceCycles:   timeslice,
			Policy:            policy,
			GenCounters:       mach.NumGenCounters,
			FixedCounterFree:  mach.HasFixedCounter,
			MaxCyclesPerInstr: mach.CPU.MaxRetireCyclesPerInstr(),
		}, nil)
		res, err := cpu.RunFast(p, mach.CPU, m, 0)
		if err != nil {
			return fmt.Errorf("%s: %w", mach.Name, err)
		}
		for _, c := range m.Finish(res.Cycles) {
			exact, scaled, relErr, running := c.TableCells()
			t.AddRow(mach.Name, c.Event.String(),
				exact, scaled, relErr, running, fmt.Sprintf("%d", m.Rotations))
		}
	}
	fmt.Println(t.String())
	return nil
}
