package main

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pmutrust/internal/trace"
	"pmutrust/internal/workloads"
)

// specJSON is the worked example's spec shape (docs/WORKLOADS.md).
const specJSON = `{
  "v": 1,
  "name": "TestBurst",
  "seed": 7,
  "schedule": {"kind": "burst", "burst_phase": "fp"},
  "phases": [
    {"name": "mem", "mix": {"load": 0.5, "store": 0.25, "alu": 0.25}},
    {"name": "fp", "from": "povray"}
  ]
}`

// TestResolveProgramPrecedence: replay beats spec beats workload, and
// each source stamps its provenance.
func TestResolveProgramPrecedence(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, []byte(specJSON), 0o644); err != nil {
		t.Fatal(err)
	}

	fromWl, err := resolveProgram("", "", "G4Box", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if fromWl.Meta.Name != "G4Box" || fromWl.Meta.Source != "workload:G4Box" || fromWl.Meta.SpecFP != "" {
		t.Fatalf("workload source meta: %+v", fromWl.Meta)
	}

	fromSpec, err := resolveProgram("", specPath, "G4Box", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if fromSpec.Meta.Name != "TestBurst" || fromSpec.Meta.Source != "spec:TestBurst" || fromSpec.Meta.SpecFP == "" {
		t.Fatalf("spec source meta: %+v", fromSpec.Meta)
	}

	tracePath := filepath.Join(dir, "t.trace")
	if err := trace.WriteFile(tracePath, fromSpec); err != nil {
		t.Fatal(err)
	}
	fromTrace, err := resolveProgram(tracePath, specPath, "G4Box", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// A replay preserves provenance verbatim and the program bit-exactly:
	// this is why record→replay→record is byte-identical.
	if fromTrace.Meta != fromSpec.Meta {
		t.Fatalf("replay changed meta: %+v vs %+v", fromTrace.Meta, fromSpec.Meta)
	}
	if !reflect.DeepEqual(fromTrace.Program, fromSpec.Program) {
		t.Fatal("replay changed the program")
	}

	if _, err := resolveProgram("", "", "nope", 1); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := resolveProgram(filepath.Join(dir, "missing.trace"), "", "", 1); err == nil {
		t.Error("missing trace accepted")
	}
}

// TestSpecMatchesBuiltinShape: the test spec above is a real spec — it
// builds, and the defaults documented in docs/WORKLOADS.md apply.
func TestSpecMatchesBuiltinShape(t *testing.T) {
	s, err := workloads.ParsePhasedSpec([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	p, err := workloads.BuildPhased(s, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "TestBurst" || len(p.Funcs) != 3 {
		t.Fatalf("unexpected program shape: %s, %d funcs", p.Name, len(p.Funcs))
	}
}
