package main

import "testing"

// The CLI's run function is exercised directly (stdout noise is fine in
// tests); this pins the end-to-end path behind the binary.
func TestRunEndToEnd(t *testing.T) {
	if err := run("G4Box", "IvyBridge", 0.05, 1000, 1, 42, true); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nope", "IvyBridge", 0.05, 1000, 1, 42, false); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run("G4Box", "Pentium", 0.05, 1000, 1, 42, false); err == nil {
		t.Error("unknown machine accepted")
	}
	// Machines without LBR cannot run the lbr method.
	if err := run("G4Box", "MagnyCours", 0.05, 1000, 1, 42, false); err == nil {
		t.Error("LBR dump on MagnyCours accepted")
	}
}
