// Command lbrdump collects LBR-method samples from a workload and dumps
// raw stacks, decoded segments and the segment-length distribution — the
// "effective number of instructions a sample corresponds to" of §5.1.
//
// Usage:
//
//	lbrdump -workload G4Box [-machine IvyBridge] [-scale 0.2] [-period 4000]
//	        [-stacks 3] [-seed 42] [-callgraph]
package main

import (
	"flag"
	"fmt"
	"os"

	"pmutrust/internal/lbr"
	"pmutrust/internal/machine"
	"pmutrust/internal/program"
	"pmutrust/internal/ref"
	"pmutrust/internal/sampling"
	"pmutrust/internal/stats"
	"pmutrust/internal/workloads"
)

func main() {
	var (
		workloadName = flag.String("workload", "", "workload name")
		machineName  = flag.String("machine", "IvyBridge", "machine with an LBR facility")
		scale        = flag.Float64("scale", 0.2, "workload scale factor")
		period       = flag.Uint64("period", 4000, "base sampling period (instructions)")
		nStacks      = flag.Int("stacks", 3, "number of raw stacks to print")
		seed         = flag.Uint64("seed", 42, "random seed")
		callgraph    = flag.Bool("callgraph", false, "print the LBR-derived dynamic call graph")
	)
	flag.Parse()
	if *workloadName == "" {
		fmt.Fprintln(os.Stderr, "lbrdump: -workload is required")
		os.Exit(2)
	}
	if err := run(*workloadName, *machineName, *scale, *period, *nStacks, *seed, *callgraph); err != nil {
		fmt.Fprintf(os.Stderr, "lbrdump: %v\n", err)
		os.Exit(1)
	}
}

func run(workloadName, machineName string, scale float64, period uint64, nStacks int, seed uint64, callgraph bool) error {
	spec, err := workloads.ByName(workloadName)
	if err != nil {
		return err
	}
	mach, err := machine.ByName(machineName)
	if err != nil {
		return err
	}
	method, err := sampling.MethodByKey("lbr")
	if err != nil {
		return err
	}
	p := spec.Build(scale)
	run, err := sampling.Collect(p, mach, method, sampling.Options{PeriodBase: period, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("%s on %s: %d samples (period %d taken branches, LBR depth %d)\n\n",
		spec.Name, mach.Name, len(run.Samples), run.Period, mach.LBRDepth)

	// Raw stacks with symbolized endpoints.
	for i := 0; i < nStacks && i < len(run.Samples); i++ {
		s := run.Samples[i]
		fmt.Printf("stack %d (cycle %d):\n", i, s.Cycle)
		for j, rec := range s.LBR {
			fromBlk := p.BlockAt(int(rec.From))
			toBlk := p.BlockAt(int(rec.To))
			fmt.Printf("  [%2d] %#08x %-24s -> %#08x %s\n", j,
				program.DisplayAddr(int(rec.From)), fromBlk.FullName(p),
				program.DisplayAddr(int(rec.To)), toBlk.FullName(p))
		}
		fmt.Println()
	}

	// Decode health and segment length distribution.
	bp, ds, err := lbr.BuildProfile(p, run)
	if err != nil {
		return err
	}
	fmt.Printf("decode: %d stacks, %d segments, %d block observations, %d malformed\n",
		ds.Stacks, ds.Segments, ds.Blocks, ds.Malformed)

	lengths := lbr.SegmentLengths(p, run)
	var sum stats.Summary
	for _, l := range lengths {
		sum.Add(float64(l))
	}
	fmt.Printf("segment length (instructions): %s\n", sum.String())

	reference, err := ref.Collect(p)
	if err != nil {
		return err
	}
	var estTotal float64
	for _, v := range bp.InstrEstimate {
		estTotal += v
	}
	fmt.Printf("estimated total instructions: %.0f (exact %d, ratio %.3f)\n",
		estTotal, reference.NetInstructions,
		estTotal/float64(reference.NetInstructions))

	if callgraph {
		cg, err := lbr.BuildCallGraph(p, run)
		if err != nil {
			return err
		}
		fmt.Printf("\ndynamic call graph (%.0f estimated calls):\n%s",
			cg.TotalCalls(), cg.Format())
	}
	return nil
}
