package main

import (
	"path/filepath"
	"testing"

	"pmutrust/internal/results"
)

func writeStore(t *testing.T, path string, errOf func(workload, method string) float64) {
	t.Helper()
	st, err := results.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"G4Box", "FullCMS"} {
		for _, k := range []string{"classic", "lbr"} {
			rec := results.Record{
				Identity: results.Identity{
					Workload: w, Machine: "IvyBridge", Method: k,
					Scale: "small", WorkloadScale: 1, PeriodBase: 2000, Seed: 42, Repeats: 1,
				},
				Err: errOf(w, k), Samples: 50, Supported: true,
			}
			if err := st.Put(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRunReportAllShapes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	writeStore(t, path, func(w, k string) float64 {
		if k == "lbr" {
			return 0.1
		}
		return 0.5
	})
	for _, table := range []string{"all", "kernels", "apps", "ranking", "factors"} {
		for _, mode := range []struct{ md, csv bool }{{false, false}, {true, false}, {false, true}} {
			err := runReport(path, table, "classic", mode.md, mode.csv)
			if table == "all" && mode.csv {
				// Concatenated rectangles are not CSV; -csv must demand
				// a single table.
				if err == nil {
					t.Error("-csv with -table all accepted")
				}
				continue
			}
			if err != nil {
				t.Errorf("runReport(table=%s, md=%v, csv=%v): %v", table, mode.md, mode.csv, err)
			}
		}
	}
	if err := runReport(path, "bogus", "classic", false, false); err == nil {
		t.Error("unknown -table accepted")
	}
	if err := runReport(filepath.Join(t.TempDir(), "missing.jsonl"), "all", "classic", false, false); err == nil {
		t.Error("missing store accepted")
	}
}

func TestDistinctConfigs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	writeStore(t, path, func(w, k string) float64 { return 0.3 })
	st, err := results.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := distinctConfigs(st.Records()); len(got) != 1 {
		t.Fatalf("single-config store reports %d configs: %v", len(got), got)
	}
	// Append one record under a different seed: the store now holds two
	// configurations and the report warns (and still renders).
	rec := results.Record{
		Identity: results.Identity{
			Workload: "G4Box", Machine: "IvyBridge", Method: "classic",
			Scale: "small", WorkloadScale: 1, PeriodBase: 2000, Seed: 99, Repeats: 1,
		},
		Err: 0.4, Samples: 50, Supported: true,
	}
	if err := st.Put(rec); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	ld, err := results.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := distinctConfigs(ld.Records()); len(got) != 2 {
		t.Fatalf("two-config store reports %d configs: %v", len(got), got)
	}
	if err := runReport(path, "all", "classic", false, false); err != nil {
		t.Errorf("multi-config store failed to render: %v", err)
	}
}

func TestRunCompareRegressionGate(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.jsonl")
	samePath := filepath.Join(dir, "same.jsonl")
	worsePath := filepath.Join(dir, "worse.jsonl")
	base := func(w, k string) float64 {
		if k == "lbr" {
			return 0.1
		}
		return 0.5
	}
	writeStore(t, oldPath, base)
	writeStore(t, samePath, base)
	writeStore(t, worsePath, func(w, k string) float64 {
		if w == "G4Box" && k == "lbr" {
			return 0.4 // beyond any reasonable tolerance
		}
		return base(w, k)
	})

	if n, err := runCompare(oldPath, samePath, 0.05, false, false); err != nil || n != 0 {
		t.Errorf("identical stores: regressions=%d err=%v", n, err)
	}
	if n, err := runCompare(oldPath, worsePath, 0.05, false, false); err != nil || n != 1 {
		t.Errorf("regressed store: regressions=%d err=%v, want 1", n, err)
	}
	// Inside tolerance the same delta is not a regression; the CSV and
	// Markdown render paths must count identically to plain text.
	if n, err := runCompare(oldPath, worsePath, 0.5, true, false); err != nil || n != 0 {
		t.Errorf("tolerant markdown compare: regressions=%d err=%v, want 0", n, err)
	}
	if n, err := runCompare(oldPath, worsePath, 0.05, false, true); err != nil || n != 1 {
		t.Errorf("csv compare: regressions=%d err=%v, want 1", n, err)
	}
}

// TestMuxSplitAndTable: counter-multiplexing records (method "mux-*")
// must stay out of the accuracy tables and render as their own matrix
// via -table mux.
func TestMuxSplitAndTable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	writeStore(t, path, func(w, k string) float64 { return 0.3 })
	st, err := results.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"G4Box", "PhaseShift"} {
		rec := results.Record{
			Identity: results.Identity{
				Workload: w, Machine: "IvyBridge", Method: "mux-rr-n08-ts02000",
				Scale: "small", WorkloadScale: 1, PeriodBase: 2000, Seed: 42, Repeats: 1,
			},
			Err: 0.02, Samples: 120, Supported: true,
		}
		if err := st.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	ld, err := results.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	kernels, apps, phased, mux, _ := split(ld.Records())
	if len(mux) != 2 {
		t.Fatalf("mux records = %d, want 2", len(mux))
	}
	for _, rec := range append(append(kernels, apps...), phased...) {
		if rec.Method == "mux-rr-n08-ts02000" {
			t.Fatalf("mux record leaked into accuracy group: %+v", rec.Identity)
		}
	}
	for _, table := range []string{"mux", "all"} {
		if err := runReport(path, table, "classic", false, false); err != nil {
			t.Errorf("runReport(table=%s): %v", table, err)
		}
	}
	if err := runReport(path, "mux", "classic", false, true); err != nil {
		t.Errorf("csv mux table: %v", err)
	}
}

// TestTenantSplitAndTable: multi-tenant scheduling records (method
// "tn-*") must stay out of the accuracy tables and render as their own
// matrix via -table tenants.
func TestTenantSplitAndTable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	writeStore(t, path, func(w, k string) float64 { return 0.3 })
	st, err := results.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"G4Box", "LatencyBiased"} {
		for _, k := range []string{"tn-n01-ts16000-classic", "tn-n04-ts16000-classic"} {
			rec := results.Record{
				Identity: results.Identity{
					Workload: w, Machine: "IvyBridge", Method: k,
					Scale: "small", WorkloadScale: 1, PeriodBase: 2000, Seed: 42, Repeats: 1,
				},
				Err: 0.04, Samples: 90, Supported: true,
			}
			if err := st.Put(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	ld, err := results.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	kernels, apps, phased, _, tenants := split(ld.Records())
	if len(tenants) != 4 {
		t.Fatalf("tenant records = %d, want 4", len(tenants))
	}
	for _, rec := range append(append(kernels, apps...), phased...) {
		if rec.Method == "tn-n01-ts16000-classic" || rec.Method == "tn-n04-ts16000-classic" {
			t.Fatalf("tenant record leaked into accuracy group: %+v", rec.Identity)
		}
	}
	for _, table := range []string{"tenants", "all"} {
		if err := runReport(path, table, "classic", false, false); err != nil {
			t.Errorf("runReport(table=%s): %v", table, err)
		}
	}
	if err := runReport(path, "tenants", "classic", false, true); err != nil {
		t.Errorf("csv tenants table: %v", err)
	}
}

// TestPhasedSplitAndTable: accuracy records on phased workloads —
// registered (PhaseShift, PhasedBurst) or a user spec named Phased* —
// form their own row family, out of the paper-shaped kernel and
// application tables, rendered via -table phased.
func TestPhasedSplitAndTable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	writeStore(t, path, func(w, k string) float64 { return 0.3 })
	st, err := results.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"PhaseShift", "PhasedBurst", "PhasedUserSpec"} {
		rec := results.Record{
			Identity: results.Identity{
				Workload: w, Machine: "IvyBridge", Method: "classic",
				Scale: "small", WorkloadScale: 1, PeriodBase: 2000, Seed: 42, Repeats: 1,
			},
			Err: 0.2, Samples: 80, Supported: true,
		}
		if err := st.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	ld, err := results.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	kernels, apps, phased, _, _ := split(ld.Records())
	if len(phased) != 3 {
		t.Fatalf("phased records = %d, want 3: %+v", len(phased), phased)
	}
	for _, rec := range append(kernels, apps...) {
		switch rec.Workload {
		case "PhaseShift", "PhasedBurst", "PhasedUserSpec":
			t.Fatalf("phased record leaked into paper tables: %+v", rec.Identity)
		}
	}
	for _, table := range []string{"phased", "all"} {
		if err := runReport(path, table, "classic", false, false); err != nil {
			t.Errorf("runReport(table=%s): %v", table, err)
		}
	}
	if err := runReport(path, "phased", "classic", false, true); err != nil {
		t.Errorf("csv phased table: %v", err)
	}
}
