// Command pmureport regenerates the paper-shaped accuracy tables from a
// results store written by `pmubench -store`, and diffs two stores — the
// read side of the sweep/store/report pipeline. It never re-measures:
// everything renders from the persisted per-cell records, so reports are
// cheap, deterministic and reproducible from the artifact alone.
//
// Usage:
//
//	pmureport -store results.jsonl [-table kernels|apps|phased|ranking|factors|mux|tenants|all]
//	          [-markdown] [-csv] [-baseline classic]
//	pmureport -compare OLD.jsonl NEW.jsonl [-tol 0.05] [-markdown]
//	pmureport -telemetry FILE|DIR
//
// Wherever a store path is accepted, it may be a single JSONL file
// (`pmubench -store`) or a sweep directory written by `pmubench -serve`
// (its sharded cell files are merged and deduplicated on read) — so
// distributed and single-process runs render and diff interchangeably.
//
// Report mode renders the regenerated tables (kernel matrix, application
// matrix, per-machine method ranking, improvement factors — the analogs
// of the paper's accuracy tables) in canonical paper order, so the same
// store always produces the same bytes. Phased/bursty workload cells
// (written by `pmubench -experiment phased -store` or `-spec FILE
// -store`, workload Kind "phased") form their own row family rendered by
// -table phased: the accuracy matrix on non-stationary mixes, kept out
// of the paper-shaped kernel and application tables.
// Counter-multiplexing cells (written by `pmubench -experiment
// mux-events|mux-timeslice|mux-policy -store`, method keys "mux-*") are
// kept out of the accuracy tables and rendered by -table mux as their
// own matrix of exact-vs-scaled counting errors. Multi-tenant
// scheduling cells (written by `pmubench -experiment
// tenants|tenants-timeslice -store`, method keys "tn-*") likewise form
// their own family, rendered by -table tenants as the accuracy matrix
// under scheduling noise. -markdown and -csv
// switch the
// output format (plain aligned text by default); -csv emits a single
// rectangle, so it requires picking one table with -table.
//
// Compare mode diffs two stores cell-by-cell by (workload, machine,
// method): cells whose error grew by more than -tol, and cells that lost
// their measurement, are regressions. The exit status is 0 when no cell
// regressed, 1 on regression — wire it straight into CI.
//
// Telemetry mode renders a snapshot written by `pmubench -telemetry`
// (a single canonical JSON document), or a fleet's worth of them: given
// a sweep directory from `pmubench -serve` (or its telemetry/
// subdirectory directly), every per-worker snapshot is merged before
// rendering. The document is validated first — including the invariant
// that the engine fallback buckets sum exactly to the fallback total —
// so a corrupt or hand-edited snapshot fails loudly instead of
// rendering nonsense.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"pmutrust/internal/machine"
	"pmutrust/internal/report"
	"pmutrust/internal/results"
	"pmutrust/internal/sampling"
	"pmutrust/internal/sweepd"
	"pmutrust/internal/telemetry"
	"pmutrust/internal/workloads"
)

// loadStore opens a results store by path, accepting all three shapes the
// write side produces: a JSONL file (`pmubench -store`), a sharded cell
// directory (results.DirStore), or a whole sweep directory from
// `pmubench -serve` (rendered from its cells/ subdirectory, shard files
// merged and deduplicated on read).
func loadStore(path string) (results.Store, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if !fi.IsDir() {
		return results.Load(path)
	}
	if cells := sweepd.CellsDir(path); dirExists(cells) {
		return results.LoadDir(cells)
	}
	return results.LoadDir(path)
}

func dirExists(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

func main() {
	var (
		storePath = flag.String("store", "", "results store to render: a JSONL file from pmubench -store, or a sweep dir from pmubench -serve")
		table     = flag.String("table", "all", "which table to render: kernels, apps, phased, ranking, factors, mux, tenants or all")
		markdown  = flag.Bool("markdown", false, "emit Markdown instead of plain text")
		csvOut    = flag.Bool("csv", false, "emit CSV instead of plain text (matrix shapes only keep their rectangle)")
		baseline  = flag.String("baseline", "classic", "baseline method for the factors table")
		compare   = flag.String("compare", "", "compare mode: OLD store path; the NEW store path is the positional argument")
		tol       = flag.Float64("tol", 0.05, "compare mode: error increase beyond which a cell counts as regressed")
		telePath  = flag.String("telemetry", "", "render a telemetry snapshot: a FILE from pmubench -telemetry, or a sweep dir from pmubench -serve (worker snapshots merged)")
	)
	flag.Parse()

	switch {
	case *telePath != "":
		if err := runTelemetry(*telePath); err != nil {
			fmt.Fprintf(os.Stderr, "pmureport: %v\n", err)
			os.Exit(2)
		}
	case *compare != "":
		if flag.NArg() < 1 {
			fmt.Fprintln(os.Stderr, "pmureport: -compare OLD.jsonl needs a positional NEW.jsonl argument")
			os.Exit(2)
		}
		newPath := flag.Arg(0)
		// The flag package stops parsing at the first positional, so
		// `-compare OLD.jsonl NEW.jsonl -tol 0.01 -markdown` leaves the
		// trailing flags unparsed; re-parse them (ExitOnError handles
		// bad flags, and a second positional is an error).
		if flag.NArg() > 1 {
			flag.CommandLine.Parse(flag.Args()[1:])
			if flag.NArg() != 0 {
				fmt.Fprintf(os.Stderr, "pmureport: unexpected argument %q after NEW.jsonl\n", flag.Arg(0))
				os.Exit(2)
			}
		}
		regressions, err := runCompare(*compare, newPath, *tol, *markdown, *csvOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmureport: %v\n", err)
			os.Exit(2)
		}
		if regressions > 0 {
			os.Exit(1)
		}
	case *storePath != "":
		if err := runReport(*storePath, *table, *baseline, *markdown, *csvOut); err != nil {
			fmt.Fprintf(os.Stderr, "pmureport: %v\n", err)
			os.Exit(2)
		}
	default:
		fmt.Fprintln(os.Stderr, "pmureport: one of -store, -compare or -telemetry is required")
		flag.Usage()
		os.Exit(2)
	}
}

// runTelemetry renders a telemetry snapshot document. A directory is
// treated as a sweep dir (its telemetry/ subdirectory, when present) and
// its per-worker snapshots are merged; a file is one snapshot. Either
// way the document is validated before rendering.
func runTelemetry(path string) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	var snap telemetry.Snapshot
	if fi.IsDir() {
		dir := path
		if sub := telemetry.Dir(path); dirExists(sub) {
			dir = sub
		}
		var n int
		snap, n, err = telemetry.LoadDir(dir)
		if err != nil {
			return err
		}
		if n == 0 {
			return fmt.Errorf("%s: no telemetry snapshots", dir)
		}
	} else {
		snap, err = telemetry.ReadSnapshot(path)
		if err != nil {
			return err
		}
	}
	if err := snap.Validate(); err != nil {
		return err
	}
	fmt.Print(telemetry.RenderSummary(snap))
	return nil
}

// canonicalOrders returns the paper-order axes the renders use: the
// workload registry (kernels then apps), the three paper machines, the
// Table 3 method registry. Names a store holds beyond these are appended
// sorted by the report layer.
func canonicalOrders() (workloadOrder, machineOrder, methodOrder []string) {
	for _, s := range workloads.All() {
		workloadOrder = append(workloadOrder, s.Name)
	}
	for _, m := range machine.AllExtended() {
		machineOrder = append(machineOrder, m.Name)
	}
	for _, m := range sampling.Registry() {
		methodOrder = append(methodOrder, m.Key)
	}
	return
}

// split partitions records into the kernel, application, phased,
// multiplexing and tenant groups. Counter-multiplexing cells (method
// key "mux-*") and multi-tenant scheduling cells (method key "tn-*")
// route first regardless of workload; then registry Kind decides:
// kernels and apps form the paper's table pair, registered phased
// workloads (and any "Phased*"-named user spec measured via `pmubench
// -spec`) form the phased family; remaining unknown workloads land with
// the apps (user additions, which the paper treats as applications).
func split(recs []results.Record) (kernels, apps, phased, mux, tenants []results.Record) {
	kind := make(map[string]workloads.Kind)
	for _, s := range workloads.All() {
		kind[s.Name] = s.Kind
	}
	for _, rec := range recs {
		k, ok := kind[rec.Workload]
		switch {
		case strings.HasPrefix(rec.Method, "mux-"):
			mux = append(mux, rec)
		case strings.HasPrefix(rec.Method, "tn-"):
			tenants = append(tenants, rec)
		case ok && k == workloads.Kernel:
			kernels = append(kernels, rec)
		case ok && k == workloads.Phased,
			!ok && strings.HasPrefix(rec.Workload, "Phased"):
			phased = append(phased, rec)
		default:
			apps = append(apps, rec)
		}
	}
	return
}

// distinctConfigs returns the distinct non-cell configuration tuples
// (scale, workload scale, period, seed, repeats) present in a record
// set. A store normally holds exactly one; more means it was resumed
// under a different configuration, and any per-coordinate table would
// silently pick one record per cell — worth a loud warning.
func distinctConfigs(recs []results.Record) []string {
	seen := make(map[string]bool)
	var out []string
	for _, r := range recs {
		c := fmt.Sprintf("scale=%s workload_scale=%g period=%d seed=%d repeats=%d",
			r.Scale, r.WorkloadScale, r.PeriodBase, r.Seed, r.Repeats)
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

func runReport(storePath, table, baseline string, markdown, csvOut bool) error {
	st, err := loadStore(storePath)
	if err != nil {
		return err
	}
	recs := st.Records()
	if len(recs) == 0 {
		return fmt.Errorf("%s: store is empty", storePath)
	}
	if configs := distinctConfigs(recs); len(configs) > 1 {
		fmt.Fprintf(os.Stderr, "pmureport: warning: %s holds %d configurations; tables pick one record per cell:\n",
			storePath, len(configs))
		for _, c := range configs {
			fmt.Fprintf(os.Stderr, "  %s\n", c)
		}
	}
	kernels, apps, phased, mux, tenants := split(recs)
	wlo, mco, mto := canonicalOrders()

	var tables []*report.Table
	want := func(name string) bool { return table == "all" || table == name }
	if want("kernels") && len(kernels) > 0 {
		tables = append(tables, report.Matrix(
			"Regenerated Table 4: kernel accuracy errors (lower is better)", kernels, wlo, mco, mto))
	}
	if want("apps") && len(apps) > 0 {
		tables = append(tables, report.Matrix(
			"Regenerated Table 5: application accuracy errors (lower is better)", apps, wlo, mco, mto))
	}
	if want("phased") && len(phased) > 0 {
		t := report.Matrix(
			"Regenerated Table 9: phased/bursty workload accuracy errors (lower is better)",
			phased, wlo, mco, mto)
		t.Note = "Written by pmubench -experiment phased -store (or -spec FILE -store); " +
			"sampling accuracy on non-stationary event mixes — see docs/WORKLOADS.md."
		tables = append(tables, t)
	}
	if want("ranking") {
		acc := append(append([]results.Record(nil), kernels...), apps...)
		tables = append(tables, report.MethodRanking(
			"Regenerated Table 6: method trust ranking per machine", acc, mco, mto))
	}
	if want("factors") {
		acc := append(append([]results.Record(nil), kernels...), apps...)
		tables = append(tables, report.Factors(
			"Regenerated Table 7: accuracy improvement over "+baseline, baseline, acc, mto))
	}
	if want("mux") && len(mux) > 0 {
		// Mux columns are the zero-padded "mux-<policy>-nNN-tsNNNNN" keys,
		// which sort into (policy, events, timeslice) order on the sorted-
		// unknown-methods path of report.Matrix.
		t := report.Matrix(
			"Regenerated Table 8: multiplexing-induced counting error (mean |scaled-exact|/exact; lower is better)",
			mux, wlo, mco, nil)
		t.Note = "Written by pmubench -experiment mux-events|mux-timeslice|mux-policy -store; " +
			"cells compare perf-style scaled counts against the simulator's exact ground truth."
		tables = append(tables, t)
	}
	if want("tenants") && len(tenants) > 0 {
		// Tenant columns are the zero-padded "tn-nNN-tsNNNNN-<method>"
		// keys, which sort into (count, timeslice, method) order on the
		// sorted-unknown-methods path of report.Matrix.
		t := report.Matrix(
			"Regenerated Table 10: accuracy error under multi-tenant scheduling (lower is better)",
			tenants, wlo, mco, nil)
		t.Note = "Written by pmubench -experiment tenants|tenants-timeslice -store; " +
			"N tenants timeshare one simulated core with per-task PMU save/restore — see internal/sched."
		tables = append(tables, t)
	}
	if len(tables) == 0 {
		return fmt.Errorf("no table %q in store (or unknown -table value)", table)
	}
	if csvOut && len(tables) > 1 {
		// Concatenated rectangles with different headers are not CSV;
		// make the caller pick one.
		return fmt.Errorf("-csv emits one rectangle: pick a single table with -table kernels|apps|phased|ranking|factors|mux|tenants")
	}
	for _, t := range tables {
		switch {
		case csvOut:
			fmt.Print(t.CSV())
		case markdown:
			fmt.Println(t.Markdown())
		default:
			fmt.Println(t.String())
		}
	}
	return nil
}

func runCompare(oldPath, newPath string, tol float64, markdown, csvOut bool) (int, error) {
	oldSt, err := loadStore(oldPath)
	if err != nil {
		return 0, err
	}
	newSt, err := loadStore(newPath)
	if err != nil {
		return 0, err
	}
	_, regressions, t := report.CompareRecords(oldSt.Records(), newSt.Records(), tol)
	switch {
	case csvOut:
		fmt.Print(t.CSV())
	case markdown:
		fmt.Println(t.Markdown())
	default:
		fmt.Println(t.String())
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "pmureport: %d cell(s) regressed beyond tolerance %.4f\n", regressions, tol)
	}
	return regressions, nil
}
