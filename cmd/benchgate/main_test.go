package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func doc(geomean float64) engineDoc {
	var d engineDoc
	d.Geomean = geomean
	return d
}

func TestGateVerdicts(t *testing.T) {
	base := doc(2.4)
	cases := []struct {
		name     string
		fresh    float64
		wantCode int
		wantWord string
	}{
		{"within", 2.3, 0, "ok:"},
		{"exact", 2.4, 0, "ok:"},
		{"at-floor", 2.4 * 0.85, 0, "ok:"},
		{"regressed", 2.0, 1, "REGRESSION"},
		{"improved", 3.0, 0, "improvement"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, verdict := gate(base, doc(tc.fresh), 0.15)
			if code != tc.wantCode {
				t.Errorf("code = %d, want %d (%s)", code, tc.wantCode, verdict)
			}
			if !strings.Contains(verdict, tc.wantWord) {
				t.Errorf("verdict %q lacks %q", verdict, tc.wantWord)
			}
		})
	}
}

func TestLoadRejectsBadArtifacts(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := load(write("garbage.json", "not json")); err == nil {
		t.Error("malformed artifact accepted")
	}
	if _, err := load(write("empty.json", "{}")); err == nil {
		t.Error("artifact without geomean accepted")
	}
	good := write("good.json", `{"geomean_speedup": 2.5, "workloads": [{"workload": "G4Box", "speedup": 2.0}]}`)
	d, err := load(good)
	if err != nil || d.Geomean != 2.5 || len(d.Workloads) != 1 {
		t.Errorf("load(good) = %+v, %v", d, err)
	}
}

// TestGateAgainstCommittedBaseline: the committed artifact must stay
// parseable by the gate, or the CI job dies with a usage error instead of
// a verdict.
func TestGateAgainstCommittedBaseline(t *testing.T) {
	d, err := load("../../BENCH_engine.json")
	if err != nil {
		t.Fatalf("committed BENCH_engine.json unreadable: %v", err)
	}
	if code, _ := gate(d, d, 0.15); code != 0 {
		t.Error("baseline does not pass against itself")
	}
}
