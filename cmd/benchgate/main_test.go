package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func doc(geomean float64) engineDoc {
	var d engineDoc
	d.Geomean = geomean
	return d
}

func TestGateVerdicts(t *testing.T) {
	base := doc(2.4)
	cases := []struct {
		name     string
		fresh    float64
		wantCode int
		wantWord string
	}{
		{"within", 2.3, 0, "ok:"},
		{"exact", 2.4, 0, "ok:"},
		{"at-floor", 2.4 * 0.85, 0, "ok:"},
		{"regressed", 2.0, 1, "REGRESSION"},
		{"improved", 3.0, 0, "improvement"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, verdict := gate(base, doc(tc.fresh), 0.15)
			if code != tc.wantCode {
				t.Errorf("code = %d, want %d (%s)", code, tc.wantCode, verdict)
			}
			if !strings.Contains(verdict, tc.wantWord) {
				t.Errorf("verdict %q lacks %q", verdict, tc.wantWord)
			}
		})
	}
}

func TestLoadRejectsBadArtifacts(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := load(write("garbage.json", "not json")); err == nil {
		t.Error("malformed artifact accepted")
	}
	if _, err := load(write("empty.json", "{}")); err == nil {
		t.Error("artifact without geomean accepted")
	}
	good := write("good.json", `{"geomean_speedup": 2.5, "workloads": [{"workload": "G4Box", "speedup": 2.0}]}`)
	d, err := load(good)
	if err != nil || d.Geomean != 2.5 || len(d.Workloads) != 1 {
		t.Errorf("load(good) = %+v, %v", d, err)
	}
}

func allocFixture(methods map[string]float64) allocDoc {
	var d allocDoc
	d.Workload = "G4Box"
	for m, a := range methods {
		d.Cases = append(d.Cases, struct {
			Method      string  `json:"method"`
			AllocsPerOp float64 `json:"allocs_per_op"`
		}{m, a})
	}
	return d
}

func TestGateAllocVerdicts(t *testing.T) {
	base := allocFixture(map[string]float64{"lbr": 16})
	cases := []struct {
		name     string
		fresh    float64
		wantCode int
		wantWord string
	}{
		{"equal", 16, 0, "ok:"},
		{"within-slack", 16*1.5 + 8, 0, "ok:"},
		{"just-over", 16*1.5 + 9, 1, "REGRESSION"},
		{"per-sample-regression", 1000, 1, "REGRESSION"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, verdicts := gateAlloc(base, allocFixture(map[string]float64{"lbr": tc.fresh}), 0.5)
			if code != tc.wantCode {
				t.Errorf("code = %d, want %d (%v)", code, tc.wantCode, verdicts)
			}
			if len(verdicts) != 1 || !strings.Contains(verdicts[0], tc.wantWord) {
				t.Errorf("verdicts %v lack %q", verdicts, tc.wantWord)
			}
		})
	}

	// A fresh artifact that dropped a baseline case is an artifact error,
	// not a pass.
	if code, _ := gateAlloc(base, allocFixture(map[string]float64{"other": 1}), 0.5); code != 2 {
		t.Errorf("missing case gated with code %d, want 2", code)
	}
}

func TestLoadAllocRejectsBadArtifacts(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := loadAlloc(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := loadAlloc(write("empty.json", "{}")); err == nil {
		t.Error("artifact without cases accepted")
	}
	if _, err := loadAlloc(write("zero.json", `{"cases":[{"method":"lbr","allocs_per_op":0}]}`)); err == nil {
		t.Error("non-positive allocs_per_op accepted")
	}
}

// TestGateAgainstCommittedBaseline: the committed artifacts must stay
// parseable by the gates, or the CI job dies with a usage error instead
// of a verdict.
func TestGateAgainstCommittedBaseline(t *testing.T) {
	d, err := load("../../BENCH_engine.json")
	if err != nil {
		t.Fatalf("committed BENCH_engine.json unreadable: %v", err)
	}
	if code, _ := gate(d, d, 0.15); code != 0 {
		t.Error("baseline does not pass against itself")
	}
	a, err := loadAlloc("../../BENCH_alloc.json")
	if err != nil {
		t.Fatalf("committed BENCH_alloc.json unreadable: %v", err)
	}
	if code, verdicts := gateAlloc(a, a, 0.5); code != 0 {
		t.Errorf("alloc baseline does not pass against itself: %v", verdicts)
	}
}
