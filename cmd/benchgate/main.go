// Command benchgate is the CI bench-regression gate: it compares fresh
// benchmark artifacts against the committed baselines and fails when a
// gated property regressed beyond tolerance.
//
// Usage:
//
//	benchgate -baseline BENCH_engine.json -new BENCH_engine_fresh.json [-tol 0.15]
//	benchgate -alloc-baseline BENCH_alloc.json -alloc-new BENCH_alloc_fresh.json [-alloc-tol 0.5]
//
// (The two gates compose: pass both flag pairs to run both.)
//
// The engine gate compares geomean_speedup — the geometric-mean ratio of
// interpreter to fast-engine wall-clock over the kernel set. Absolute
// nanoseconds are machine-dependent and useless across CI runners; the
// speedup *ratio* is the property PR 3 bought and this gate defends.
//
// The alloc gate compares allocs/op of each BenchmarkCollectAllocs case
// (BENCH_alloc.json) against the baseline. Allocation counts are
// machine-independent, so the tolerance exists only to absorb runtime
// background noise (a fixed slack of a few allocations plus a relative
// band); the failure mode it defends against is a per-sample allocation
// creeping back into the collection hot path, which multiplies allocs/op
// by the sample count.
//
// Exit status: 0 when every requested gate passes, 1 on regression, 2 on
// usage or artifact errors. An improvement beyond the engine tolerance
// band is reported with a hint to refresh the baseline, but does not fail
// the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// engineDoc is the subset of BENCH_engine.json the gate reads (written by
// BenchmarkEngines in bench_test.go).
type engineDoc struct {
	Machine   string `json:"machine"`
	Method    string `json:"method"`
	Workloads []struct {
		Workload string  `json:"workload"`
		Speedup  float64 `json:"speedup"`
	} `json:"workloads"`
	Geomean float64 `json:"geomean_speedup"`
}

func load(path string) (engineDoc, error) {
	var doc engineDoc
	raw, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Geomean <= 0 {
		return doc, fmt.Errorf("%s: missing or non-positive geomean_speedup", path)
	}
	return doc, nil
}

// allocDoc is the subset of BENCH_alloc.json the alloc gate reads
// (written by BenchmarkCollectAllocs in bench_test.go).
type allocDoc struct {
	Workload string `json:"workload"`
	Cases    []struct {
		Method      string  `json:"method"`
		AllocsPerOp float64 `json:"allocs_per_op"`
	} `json:"cases"`
}

func loadAlloc(path string) (allocDoc, error) {
	var doc allocDoc
	raw, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Cases) == 0 {
		return doc, fmt.Errorf("%s: no benchmark cases", path)
	}
	for _, c := range doc.Cases {
		if c.AllocsPerOp <= 0 {
			return doc, fmt.Errorf("%s: case %s has non-positive allocs_per_op", path, c.Method)
		}
	}
	return doc, nil
}

// allocSlack is the fixed allocation headroom on top of the relative
// tolerance: at ~15 allocs per collection a purely relative band is
// tighter than the runtime's own background allocation noise.
const allocSlack = 8

// gateAlloc compares per-case allocs/op against the baseline and returns
// the process exit code plus one verdict line per case. A fresh artifact
// missing a baseline case is an artifact error (exit 2): silently
// skipping a case would un-gate it.
func gateAlloc(baseline, fresh allocDoc, tol float64) (int, []string) {
	freshBy := make(map[string]float64, len(fresh.Cases))
	for _, c := range fresh.Cases {
		freshBy[c.Method] = c.AllocsPerOp
	}
	code := 0
	var verdicts []string
	for _, c := range baseline.Cases {
		got, ok := freshBy[c.Method]
		if !ok {
			return 2, append(verdicts, fmt.Sprintf("ERROR: fresh artifact has no case %q", c.Method))
		}
		ceil := c.AllocsPerOp*(1+tol) + allocSlack
		if got > ceil {
			code = 1
			verdicts = append(verdicts, fmt.Sprintf(
				"REGRESSION: %s allocs/op %.1f exceeds baseline %.1f + %.0f%% + %d slack (ceiling %.1f)",
				c.Method, got, c.AllocsPerOp, tol*100, allocSlack, ceil))
		} else {
			verdicts = append(verdicts, fmt.Sprintf(
				"ok: %s allocs/op %.1f within ceiling %.1f (baseline %.1f)",
				c.Method, got, ceil, c.AllocsPerOp))
		}
	}
	return code, verdicts
}

// gate compares the two geomeans and returns the process exit code plus a
// human-readable verdict. Split from main for testability.
func gate(baseline, fresh engineDoc, tol float64) (int, string) {
	floor := baseline.Geomean * (1 - tol)
	ceil := baseline.Geomean * (1 + tol)
	switch {
	case fresh.Geomean < floor:
		return 1, fmt.Sprintf(
			"REGRESSION: engine speedup geomean %.3fx is below baseline %.3fx - %.0f%% tolerance (floor %.3fx)",
			fresh.Geomean, baseline.Geomean, tol*100, floor)
	case fresh.Geomean > ceil:
		return 0, fmt.Sprintf(
			"improvement: engine speedup geomean %.3fx exceeds baseline %.3fx + %.0f%% tolerance - consider refreshing BENCH_engine.json",
			fresh.Geomean, baseline.Geomean, tol*100)
	default:
		return 0, fmt.Sprintf(
			"ok: engine speedup geomean %.3fx within %.0f%% of baseline %.3fx",
			fresh.Geomean, tol*100, baseline.Geomean)
	}
}

func main() {
	var (
		basePath      = flag.String("baseline", "BENCH_engine.json", "committed engine baseline artifact")
		newPath       = flag.String("new", "", "freshly measured engine artifact")
		tol           = flag.Float64("tol", 0.15, "allowed relative geomean deviation")
		allocBasePath = flag.String("alloc-baseline", "BENCH_alloc.json", "committed allocation baseline artifact")
		allocNewPath  = flag.String("alloc-new", "", "freshly measured allocation artifact")
		allocTol      = flag.Float64("alloc-tol", 0.5, "allowed relative allocs/op growth (plus fixed slack)")
	)
	flag.Parse()
	if *newPath == "" && *allocNewPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: at least one of -new / -alloc-new is required")
		os.Exit(2)
	}
	if *tol <= 0 || *tol >= 1 {
		fmt.Fprintln(os.Stderr, "benchgate: -tol must be in (0, 1)")
		os.Exit(2)
	}
	if *allocTol <= 0 {
		fmt.Fprintln(os.Stderr, "benchgate: -alloc-tol must be positive")
		os.Exit(2)
	}
	exitCode := 0
	if *newPath != "" {
		baseline, err := load(*basePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		fresh, err := load(*newPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		code, verdict := gate(baseline, fresh, *tol)
		fmt.Println("benchgate:", verdict)
		for _, w := range fresh.Workloads {
			fmt.Printf("  %-16s %.3fx\n", w.Workload, w.Speedup)
		}
		if code > exitCode {
			exitCode = code
		}
	}
	if *allocNewPath != "" {
		baseline, err := loadAlloc(*allocBasePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		fresh, err := loadAlloc(*allocNewPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		code, verdicts := gateAlloc(baseline, fresh, *allocTol)
		for _, v := range verdicts {
			fmt.Println("benchgate:", v)
		}
		if code > exitCode {
			exitCode = code
		}
	}
	os.Exit(exitCode)
}
