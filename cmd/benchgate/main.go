// Command benchgate is the CI bench-regression gate: it compares a fresh
// BenchmarkEngines artifact against the committed baseline and fails when
// the fast-engine speedup regressed beyond tolerance.
//
// Usage:
//
//	benchgate -baseline BENCH_engine.json -new BENCH_engine_fresh.json [-tol 0.15]
//
// The compared quantity is geomean_speedup — the geometric-mean ratio of
// interpreter to fast-engine wall-clock over the kernel set. Absolute
// nanoseconds are machine-dependent and useless across CI runners; the
// speedup *ratio* is the property PR 3 bought and this gate defends. Exit
// status: 0 when the fresh geomean is within (or above) tolerance, 1 on
// regression, 2 on usage or artifact errors. An improvement beyond the
// tolerance band is reported with a hint to refresh the baseline, but
// does not fail the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// engineDoc is the subset of BENCH_engine.json the gate reads (written by
// BenchmarkEngines in bench_test.go).
type engineDoc struct {
	Machine   string `json:"machine"`
	Method    string `json:"method"`
	Workloads []struct {
		Workload string  `json:"workload"`
		Speedup  float64 `json:"speedup"`
	} `json:"workloads"`
	Geomean float64 `json:"geomean_speedup"`
}

func load(path string) (engineDoc, error) {
	var doc engineDoc
	raw, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Geomean <= 0 {
		return doc, fmt.Errorf("%s: missing or non-positive geomean_speedup", path)
	}
	return doc, nil
}

// gate compares the two geomeans and returns the process exit code plus a
// human-readable verdict. Split from main for testability.
func gate(baseline, fresh engineDoc, tol float64) (int, string) {
	floor := baseline.Geomean * (1 - tol)
	ceil := baseline.Geomean * (1 + tol)
	switch {
	case fresh.Geomean < floor:
		return 1, fmt.Sprintf(
			"REGRESSION: engine speedup geomean %.3fx is below baseline %.3fx - %.0f%% tolerance (floor %.3fx)",
			fresh.Geomean, baseline.Geomean, tol*100, floor)
	case fresh.Geomean > ceil:
		return 0, fmt.Sprintf(
			"improvement: engine speedup geomean %.3fx exceeds baseline %.3fx + %.0f%% tolerance - consider refreshing BENCH_engine.json",
			fresh.Geomean, baseline.Geomean, tol*100)
	default:
		return 0, fmt.Sprintf(
			"ok: engine speedup geomean %.3fx within %.0f%% of baseline %.3fx",
			fresh.Geomean, tol*100, baseline.Geomean)
	}
}

func main() {
	var (
		basePath = flag.String("baseline", "BENCH_engine.json", "committed baseline artifact")
		newPath  = flag.String("new", "", "freshly measured artifact")
		tol      = flag.Float64("tol", 0.15, "allowed relative geomean deviation")
	)
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -new is required")
		os.Exit(2)
	}
	if *tol <= 0 || *tol >= 1 {
		fmt.Fprintln(os.Stderr, "benchgate: -tol must be in (0, 1)")
		os.Exit(2)
	}
	baseline, err := load(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	fresh, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	code, verdict := gate(baseline, fresh, *tol)
	fmt.Println("benchgate:", verdict)
	for _, w := range fresh.Workloads {
		fmt.Printf("  %-16s %.3fx\n", w.Workload, w.Speedup)
	}
	os.Exit(code)
}
