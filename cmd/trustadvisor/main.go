// Command trustadvisor runs the full method registry over a workload on a
// machine and prints measured errors plus the method recommendation — the
// paper's §6.3 advice, grounded in measurements for the specific
// combination at hand.
//
// Usage:
//
//	trustadvisor -workload FullCMS [-machine Westmere] [-scale 1.0]
//	             [-period 4000] [-seed 42] [-repeats 3] [-all-machines]
package main

import (
	"flag"
	"fmt"
	"os"

	"pmutrust/internal/core"
	"pmutrust/internal/machine"
	"pmutrust/internal/workloads"
)

func main() {
	var (
		workloadName = flag.String("workload", "", "workload name (see wlgen -list)")
		machineName  = flag.String("machine", "IvyBridge", "machine model")
		scale        = flag.Float64("scale", 1.0, "workload scale factor")
		period       = flag.Uint64("period", 4000, "base sampling period (instructions)")
		seed         = flag.Uint64("seed", 42, "random seed")
		repeats      = flag.Int("repeats", 3, "measurement repeats per method")
		allMachines  = flag.Bool("all-machines", false, "assess on every machine")
	)
	flag.Parse()
	if *workloadName == "" {
		fmt.Fprintln(os.Stderr, "trustadvisor: -workload is required")
		os.Exit(2)
	}
	spec, err := workloads.ByName(*workloadName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "trustadvisor: %v\n", err)
		os.Exit(1)
	}
	p := spec.Build(*scale)

	var machines []machine.Machine
	if *allMachines {
		machines = machine.All()
	} else {
		m, err := machine.ByName(*machineName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trustadvisor: %v\n", err)
			os.Exit(1)
		}
		machines = []machine.Machine{m}
	}

	for _, m := range machines {
		a, err := core.Assess(p, m, core.Options{
			PeriodBase: *period,
			Seed:       *seed,
			Repeats:    *repeats,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "trustadvisor: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(a.Table())
	}
}
