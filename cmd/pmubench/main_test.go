package main

import (
	"os"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"testing"

	"pmutrust/internal/experiments"
)

// readMainSource loads this package's main.go for the source-level pins
// below. The registry drift these tests guard against lives in prose
// (the usage comment) and syntax (the dispatch switch), neither of
// which the compiler cross-checks.
func readMainSource(t *testing.T) string {
	t.Helper()
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

// usageExperiments extracts the experiment names advertised by the
// n-th "[-experiment ...]" clause of the package usage comment.
func usageExperiments(t *testing.T, src string, n int) []string {
	t.Helper()
	rest := src
	for i := 0; i <= n; i++ {
		idx := strings.Index(rest, "[-experiment ")
		if idx < 0 {
			t.Fatalf("usage comment has no %d-th [-experiment ...] clause", n)
		}
		rest = rest[idx+len("[-experiment "):]
	}
	end := strings.Index(rest, "]")
	if end < 0 {
		t.Fatal("unterminated [-experiment ...] clause in usage comment")
	}
	clause := rest[:end]
	for _, junk := range []string{"//", "\t", " ", "\n"} {
		clause = strings.ReplaceAll(clause, junk, "")
	}
	return strings.Split(clause, "|")
}

// TestExperimentRegistryConsistent pins the three places an experiment
// name must appear — the usage comment, experimentList, and the run
// dispatch switch — against each other, so adding an experiment to one
// and forgetting the others fails here instead of shipping a flag the
// docs deny or documenting a flag the switch rejects.
func TestExperimentRegistryConsistent(t *testing.T) {
	src := readMainSource(t)

	// Usage comment (first clause) = registry + the "all" meta-name.
	usage := usageExperiments(t, src, 0)
	wantUsage := append(append([]string{}, experimentList...), "all")
	sort.Strings(usage)
	sort.Strings(wantUsage)
	if !reflect.DeepEqual(usage, wantUsage) {
		t.Errorf("usage comment experiments = %v\nregistry + all          = %v", usage, wantUsage)
	}

	// Dispatch switch = registry. The run switch is the only one nested
	// two levels deep in this file, so the indented case labels identify
	// it unambiguously.
	var cases []string
	for _, m := range regexp.MustCompile(`(?m)^\t\tcase "([a-z0-9-]+)":`).FindAllStringSubmatch(src, -1) {
		cases = append(cases, m[1])
	}
	reg := append([]string{}, experimentList...)
	sort.Strings(cases)
	sort.Strings(reg)
	if !reflect.DeepEqual(cases, reg) {
		t.Errorf("dispatch switch cases = %v\nregistry              = %v", cases, reg)
	}

	// "all" = registry minus the flag-dependent names, order preserved.
	all := allExperiments()
	seen := map[string]bool{}
	for _, n := range all {
		if flagOnlyExperiments[n] {
			t.Errorf("flag-dependent experiment %q in the all list", n)
		}
		seen[n] = true
	}
	for _, n := range experimentList {
		if !flagOnlyExperiments[n] && !seen[n] {
			t.Errorf("registered experiment %q missing from the all list", n)
		}
	}
}

// TestUnknownExperimentErrorListsRegistry pins -experiment
// discoverability: a typo'd name must come back with every dispatchable
// name (and the "all" meta-name) in the message, so the error answers
// itself.
func TestUnknownExperimentErrorListsRegistry(t *testing.T) {
	msg := unknownExperimentErr("tabel1").Error()
	if !strings.Contains(msg, `"tabel1"`) {
		t.Errorf("error does not echo the bad name: %s", msg)
	}
	for _, name := range append(append([]string{}, experimentList...), "all") {
		if !strings.Contains(msg, name) {
			t.Errorf("unknown-experiment error omits %q:\n%s", name, msg)
		}
	}
}

// TestServeUsageMatchesGrids pins the -serve usage clause to the set of
// matrix experiments GridByName actually accepts.
func TestServeUsageMatchesGrids(t *testing.T) {
	src := readMainSource(t)
	serve := usageExperiments(t, src, 1)
	for _, name := range serve {
		if _, err := experiments.GridByName(name); err != nil {
			t.Errorf("-serve usage advertises %q but GridByName rejects it: %v", name, err)
		}
	}
	for _, name := range experimentList {
		if _, err := experiments.GridByName(name); err != nil {
			continue
		}
		found := false
		for _, s := range serve {
			if s == name {
				found = true
			}
		}
		if !found {
			t.Errorf("GridByName accepts %q but the -serve usage clause omits it", name)
		}
	}
}
