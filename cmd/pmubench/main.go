// Command pmubench regenerates the paper's tables and the repository's
// ablation experiments.
//
// Usage:
//
//	pmubench [-experiment table1|table2|table3|factors|ipfix|ranking|
//	                      ablate-skid|ablate-period|ablate-lbr|ablate-burst|
//	                      ablate-rand|overhead|freq|lbr-contention|
//	                      stability|future-hw|mux-events|mux-timeslice|
//	                      mux-policy|mux|tenants|tenants-timeslice|
//	                      phased|spec|all]
//	         [-scale paper|small] [-seed N] [-markdown]
//	         [-parallel N] [-timeout D] [-json FILE]
//	         [-store FILE] [-resume] [-engine fast|interp|both]
//	         [-events LIST] [-timeslice N] [-mux-policy rr|priority]
//	         [-tenants LIST] [-switch-cost N] [-spec FILE]
//	         [-telemetry FILE] [-obs-addr ADDR] [-log-json]
//	pmubench -serve -sweep-dir DIR [-experiment table1|table2|phased]
//	         [-shards N] [-workers N] [-lease-ttl D] [-obs-addr ADDR]
//	         [...common flags]
//	pmubench -worker -sweep-dir DIR [-lease-ttl D] [-parallel N]
//	         [-engine fast|interp|both] [-log-json]
//
// Every experiment prints a table whose rows/columns mirror the paper's
// presentation; see DESIGN.md for the experiment index and EXPERIMENTS.md
// for recorded paper-vs-measured comparisons.
//
// Measurements dispatch through the parallel sweep layer of
// internal/experiments: -parallel bounds the worker pool (default
// GOMAXPROCS) and -timeout stops sweeps from dispatching new cells past
// the deadline (cells already running finish). Per-cell
// seeds derive from (seed, workload, machine, method, repeat), so the
// output is bit-identical at any -parallel value. -json FILE ("-" for
// stdout) additionally writes machine-readable results — the full
// per-cell measurement set for the matrix experiments — for the bench
// trajectory.
//
// -store FILE persists the matrix experiments' per-cell measurements to
// a JSONL results store as they complete, keyed by each cell's full
// configuration (internal/results). With -resume, records already in the
// store are served without re-measuring, making an interrupted sweep
// restart-safe: only the missing cells run, and the tables come out
// byte-identical to an uninterrupted run. Without -resume the store path
// must be new or empty (pmubench refuses to clobber accumulated
// results). cmd/pmureport renders and diffs store files. Alongside the
// store, pmubench keeps a FILE.refs sidecar memoizing each workload's
// ground-truth reference profile: references are a pure function of
// (workload, scale), so the sidecar is always opened for resume — even a
// fresh -store run serves references an earlier run at the same scale
// already collected, and a re-rendered sweep re-executes nothing.
//
// -engine selects the execution engine: "fast" (default) runs the
// block-stride fast-path executor, "interp" the per-instruction reference
// interpreter, and "both" runs every measurement under both engines and
// fails on any sample-stream divergence. The engines are bit-identical
// (the differential test harness enforces it), so tables, JSON artifacts
// and store fingerprints never depend on this flag — only wall-clock time
// does.
//
// The mux-* experiments exercise the virtualized multi-event PMU
// (counter multiplexing, internal/pmu Mux): mux-events sweeps the number
// of requested counting events, mux-timeslice the rotation timeslice,
// mux-policy round-robin vs priority scheduling — each rendering the mean
// exact-vs-scaled counting error per workload × machine. "-experiment
// mux" measures one explicit request list given by -events (a
// comma-separated pmu event list, e.g. "inst_retired,load,br_taken"),
// -timeslice (rotation timeslice in simulated cycles, 0 = default) and
// -mux-policy, and prints the full per-event exact/scaled accounting.
//
// -serve runs a matrix experiment as a sharded, resumable sweep service
// (internal/sweepd): the coordinator partitions the experiment's cell
// grid into -shards leased shards under -sweep-dir, spawns -workers
// local worker processes (0 = external workers attach on their own),
// streams progress/ETA to stderr, and — once every shard is done — renders
// the experiment from the merged shard files, measuring nothing itself.
// -worker joins an existing sweep directory from any process or host
// sharing the filesystem: it claims shards through expiring lease files
// (-lease-ttl bounds how long a dead worker blocks its shard) and exits
// when the whole sweep is complete. Because every cell is content-
// addressed, a distributed sweep — even one that loses workers mid-shard
// — renders byte-identically to a single-process run, and re-running
// -serve on an interrupted directory resumes instead of re-measuring.
// cmd/pmureport accepts the sweep directory anywhere it takes a store
// file.
//
// The tenants experiments schedule N copies of each workload on one
// simulated core under a CFS-style timeslice scheduler (internal/sched)
// with per-task PMU context save/restore, kernel-path event leakage and
// cross-tenant sample skid: "tenants" sweeps the tenant count (-tenants,
// a comma-separated list, default 1,2,4,8) and "tenants-timeslice" the
// scheduling period at a fixed four tenants. -switch-cost overrides the
// per-machine context-switch cost in simulated cycles (0 = each model's
// calibrated default). The n=1 column is collected by the unscheduled
// sampling path with identical seeds, so it is bit-identical to the
// plain accuracy tables.
//
// "-experiment phased" measures the registered phased/bursty workload
// family (the hand-built PhaseShift plus the spec-generated alternate,
// burst and ramp schedules — see docs/WORKLOADS.md) through the same
// workload × machine × method accuracy matrix as Tables 1 and 2; it is
// store-aware like them, and cmd/pmureport renders the stored rows as
// the phased table. -spec FILE measures a user-authored phased spec
// through that matrix instead — any spec file wlgen accepts.
//
// Observability (see docs/ARCHITECTURE.md "Observability"): every
// measurement feeds the telemetry sink (internal/telemetry) — engine
// fast-path/fallback counters, per-cell wall-time histograms, store and
// reference cache splits. -telemetry FILE writes the run's canonical
// snapshot document ("-" for stdout); cmd/pmureport -telemetry renders
// it. -obs-addr ADDR serves the observability plane over HTTP for the
// life of the process: /metrics (the JSON snapshot — in -serve mode
// merged across the fleet's dir/telemetry/ documents), /progress
// (machine-readable sweep progress/ETA in -serve mode) and net/http/pprof
// under /debug/pprof/. -log-json switches the structured diagnostic log
// from human-readable text to JSON lines; either way each record carries
// the run ID that also names snapshots and sweep plans, tying logs,
// metrics and stored results to one run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"

	"pmutrust/internal/experiments"
	"pmutrust/internal/pmu"
	"pmutrust/internal/report"
	"pmutrust/internal/results"
	"pmutrust/internal/sampling"
	"pmutrust/internal/sweepd"
	"pmutrust/internal/telemetry"
	"pmutrust/internal/workloads"
)

// experimentList is the registry of every dispatchable -experiment
// name, in the order "-experiment all" runs them (table3 first: it is
// analytic, so a broken build fails before any sweep starts). The run
// dispatch switch and the usage comment's experiment list must both
// match it exactly — TestExperimentRegistryConsistent pins all three
// against each other.
var experimentList = []string{
	"table3", "table1", "table2", "factors", "ipfix", "ranking",
	"ablate-skid", "ablate-period", "ablate-lbr", "ablate-burst", "ablate-rand",
	"overhead", "freq", "lbr-contention", "stability", "future-hw",
	"mux-events", "mux-timeslice", "mux-policy", "mux",
	"tenants", "tenants-timeslice", "phased", "spec",
}

// flagOnlyExperiments are dispatchable by name but excluded from "all"
// because they are meaningless without an extra flag ("mux" needs
// -events, "spec" needs -spec).
var flagOnlyExperiments = map[string]bool{"mux": true, "spec": true}

// allExperiments returns what "-experiment all" runs: the registry
// minus the flag-dependent entries, in registry order.
func allExperiments() []string {
	var names []string
	for _, n := range experimentList {
		if !flagOnlyExperiments[n] {
			names = append(names, n)
		}
	}
	return names
}

// unknownExperimentErr is the error for an unrecognized -experiment
// value. It lists every dispatchable name so a typo answers itself
// instead of sending the user to the docs
// (TestUnknownExperimentErrorListsRegistry pins the list).
func unknownExperimentErr(name string) error {
	return fmt.Errorf("unknown experiment %q (valid: %s, all)",
		name, strings.Join(experimentList, ", "))
}

// jsonResult is one experiment's machine-readable record.
type jsonResult struct {
	Experiment string `json:"experiment"`
	Scale      string `json:"scale"`
	Seed       uint64 `json:"seed"`
	Parallel   int    `json:"parallel"`
	// Measurements holds per-cell results for the matrix experiments
	// (table1, table2); experiments that only render a table omit it.
	Measurements []experiments.Measurement `json:"measurements,omitempty"`
	// MuxMeasurements holds per-cell results for the counter-multiplexing
	// experiments (mux-events, mux-timeslice, mux-policy, mux).
	MuxMeasurements []experiments.MuxMeasurement `json:"mux_measurements,omitempty"`
	// TenantMeasurements holds per-cell results for the multi-tenant
	// scheduling experiments (tenants, tenants-timeslice).
	TenantMeasurements []experiments.TenantMeasurement `json:"tenant_measurements,omitempty"`
	// Table is the rendered table, for humans reading the artifact.
	Table string `json:"table"`
}

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment to run (see package comment)")
		scaleName  = flag.String("scale", "paper", "experiment scale: paper or small")
		seed       = flag.Uint64("seed", 42, "base random seed")
		markdown   = flag.Bool("markdown", false, "emit Markdown instead of plain text")
		parallel   = flag.Int("parallel", 0, "sweep worker count (0 = GOMAXPROCS)")
		timeout    = flag.Duration("timeout", 0, "per-experiment bound: stop dispatching new sweep cells after this wall-clock time; running cells finish (0 = none)")
		jsonPath   = flag.String("json", "", "write machine-readable results to FILE (\"-\" for stdout)")
		storePath  = flag.String("store", "", "persist per-cell matrix measurements to a JSONL results store at FILE")
		resume     = flag.Bool("resume", false, "with -store: serve cells already in the store instead of re-measuring (without it the store must be new or empty)")
		engineName = flag.String("engine", "fast", "execution engine: fast, interp, or both (run both and fail on divergence)")
		eventsFlag = flag.String("events", "", "comma-separated counting-event list for -experiment mux (e.g. inst_retired,load,br_taken)")
		timeslice  = flag.Uint64("timeslice", 0, "multiplexer rotation timeslice in simulated cycles (0 = default)")
		muxPolicy  = flag.String("mux-policy", "rr", "multiplexer rotation policy: rr or priority")
		tenantsF   = flag.String("tenants", "", "comma-separated simulated tenant counts for -experiment tenants (empty = 1,2,4,8)")
		switchCost = flag.Uint64("switch-cost", 0, "context-switch cost in simulated cycles for the tenants experiments (0 = per-machine default)")
		specFile   = flag.String("spec", "", "measure this phased spec file through the accuracy matrix instead of a built-in experiment")
		serve      = flag.Bool("serve", false, "coordinator mode: run the matrix experiment as a sharded sweep under -sweep-dir")
		workerMode = flag.Bool("worker", false, "worker mode: claim and measure shards of the sweep under -sweep-dir, then exit")
		sweepDir   = flag.String("sweep-dir", "", "shared sweep directory for -serve / -worker")
		shards     = flag.Int("shards", 0, "with -serve: shard count for the cell grid (0 = 4 per worker, min 8)")
		workersN   = flag.Int("workers", 4, "with -serve: local worker processes to spawn (0 = external workers only)")
		leaseTTL   = flag.Duration("lease-ttl", sweepd.DefaultLeaseTTL, "shard lease time-to-live; a dead worker's shard is reclaimable after this long")
		obsAddr    = flag.String("obs-addr", "", "serve the HTTP observability plane (/metrics, /progress, /debug/pprof/) on this address, e.g. localhost:9090")
		logJSON    = flag.Bool("log-json", false, "emit structured diagnostic logs as JSON lines instead of text")
		teleFile   = flag.String("telemetry", "", "write the run's telemetry snapshot to FILE (\"-\" for stdout); render with pmureport -telemetry")
	)
	flag.Parse()
	logger := telemetry.NewLogger(os.Stderr, *logJSON)
	if *serve && *workerMode {
		fmt.Fprintln(os.Stderr, "pmubench: -serve and -worker are mutually exclusive")
		os.Exit(2)
	}
	if (*serve || *workerMode) && *sweepDir == "" {
		fmt.Fprintln(os.Stderr, "pmubench: -serve/-worker require -sweep-dir")
		os.Exit(2)
	}
	if *resume && *storePath == "" {
		fmt.Fprintln(os.Stderr, "pmubench: -resume requires -store")
		os.Exit(2)
	}
	engine, err := sampling.EngineByName(*engineName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmubench: %v\n", err)
		os.Exit(2)
	}
	muxEvents, err := pmu.ParseEventList(*eventsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmubench: %v\n", err)
		os.Exit(2)
	}
	policy, err := pmu.MuxPolicyByName(*muxPolicy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmubench: %v\n", err)
		os.Exit(2)
	}
	tenantCounts, err := parseTenantCounts(*tenantsF)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmubench: %v\n", err)
		os.Exit(2)
	}

	// Worker mode ignores the experiment flags entirely: scale, seed and
	// cells all come from the sweep directory's plan, so every fleet
	// member measures identical content-addressed cells no matter how it
	// was invoked.
	if *workerMode {
		w := &sweepd.Worker{
			Dir:      *sweepDir,
			TTL:      *leaseTTL,
			Parallel: *parallel,
			Engine:   engine,
			Logger:   logger,
		}
		stats, err := w.Run()
		// The summary is a projection of the worker's persisted telemetry
		// snapshot (sweepd.StatsFromSnapshot), so this line and the
		// coordinator's /metrics document can never disagree.
		logger.Info("worker summary",
			"shards_completed", stats.ShardsCompleted,
			"leases_taken", stats.ShardsTaken,
			"cells_measured", stats.Measured,
			"cells_served", stats.Served,
			"refs_collected", stats.RefsCollected,
			"refs_served", stats.RefsServed)
		if err != nil {
			logger.Error("worker failed", "err", err)
			os.Exit(1)
		}
		os.Exit(0)
	}

	var scale experiments.Scale
	switch *scaleName {
	case "paper":
		scale = experiments.PaperScale()
	case "small":
		scale = experiments.SmallScale()
	default:
		fmt.Fprintf(os.Stderr, "pmubench: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	r := experiments.NewRunner(scale, *seed)
	r.Parallel = *parallel
	r.Timeout = *timeout
	r.Engine = engine
	// Every measurement this process makes feeds the sink; the run ID
	// ties its logs, snapshot file and obs-plane documents together (in
	// -serve mode it becomes the plan fingerprint the fleet shares).
	sink := &telemetry.Sink{}
	r.Telemetry = sink
	runID := telemetry.DeriveRunID(*experiment, scale.Name, strconv.FormatUint(*seed, 10), *engineName)

	// obsServe starts the HTTP observability plane when -obs-addr is set;
	// it runs for the life of the process.
	obsServe := func(snapshot func() telemetry.Snapshot, progress func() (any, bool)) {
		if *obsAddr == "" {
			return
		}
		ln, err := net.Listen("tcp", *obsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmubench: -obs-addr: %v\n", err)
			os.Exit(2)
		}
		logger.Info("observability plane listening", "addr", ln.Addr().String(), "run_id", runID)
		go http.Serve(ln, telemetry.Handler(snapshot, progress))
	}

	var store, refStore results.Store
	if *storePath != "" {
		if *serve {
			fmt.Fprintln(os.Stderr, "pmubench: -serve keeps its results under -sweep-dir; it cannot be combined with -store")
			os.Exit(2)
		}
		var err error
		if *resume {
			store, err = results.Open(*storePath)
		} else {
			// Refuse to clobber accumulated results: truncating is only
			// safe on a path the user has not already filled (e.g. a
			// non-matrix experiment with -store would otherwise wipe
			// the file and write nothing back).
			if fi, serr := os.Stat(*storePath); serr == nil && fi.Size() > 0 {
				fmt.Fprintf(os.Stderr, "pmubench: store %s already has results; use -resume to extend it or remove the file first\n", *storePath)
				os.Exit(2)
			}
			store, err = results.Create(*storePath)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmubench: %v\n", err)
			os.Exit(2)
		}
		r.Store = store
		// The reference memo rides in a sidecar file. Unlike the store
		// itself it is always opened for resume: ground truth is a pure
		// function of (workload, scale), never of seed or method, so a
		// stale sidecar is impossible by construction.
		refs, err := results.Open(*storePath + ".refs")
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmubench: %v\n", err)
			os.Exit(2)
		}
		refStore = refs
		r.RefStore = refs
	}

	// Coordinator mode: run the distributed sweep to completion, then
	// attach the merged shard files as the runner's store and fall through
	// to the normal experiment path — the final render is served entirely
	// from worker-written records (the store summary proves it: 0 newly
	// measured), and any cell the fleet failed on is measured here.
	storeLabel := *storePath
	if *serve {
		if *specFile != "" {
			fmt.Fprintln(os.Stderr, "pmubench: -serve runs the built-in matrix experiments; -spec is not supported")
			os.Exit(2)
		}
		grid, err := experiments.GridByName(*experiment)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmubench: -serve: %v\n", err)
			os.Exit(2)
		}
		nshards := *shards
		if nshards <= 0 {
			nshards = 4 * *workersN
			if nshards < 8 {
				nshards = 8
			}
		}
		coord := &sweepd.Coordinator{
			Dir:      *sweepDir,
			Plan:     sweepd.NewPlan(*experiment, scale, *seed, grid, nshards),
			Workers:  *workersN,
			Progress: os.Stderr,
			Logger:   logger,
		}
		// The plan fingerprint is the sweep's run ID: the whole fleet logs
		// and persists telemetry under it.
		runID = coord.Plan.Fingerprint
		// /metrics serves the fleet view: every worker snapshot persisted
		// under the sweep dir, merged with this process's own counters.
		obsServe(func() telemetry.Snapshot {
			fleet, _, err := telemetry.LoadDir(telemetry.Dir(*sweepDir))
			if err != nil {
				logger.Warn("telemetry merge failed", "err", err)
			}
			snap := fleet.Merge(sink.Snapshot(runID))
			if snap.RunID == "" {
				snap.RunID = runID
			}
			return snap
		}, func() (any, bool) {
			p, ok := coord.LastProgress()
			return p, ok
		})
		if *workersN > 0 {
			exe, err := os.Executable()
			if err != nil {
				fmt.Fprintf(os.Stderr, "pmubench: -serve: %v\n", err)
				os.Exit(2)
			}
			coord.WorkerCmd = func(i int) *exec.Cmd {
				cmd := exec.Command(exe, "-worker",
					"-sweep-dir", *sweepDir,
					"-lease-ttl", leaseTTL.String(),
					"-parallel", strconv.Itoa(*parallel),
					"-engine", *engineName)
				cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
				return cmd
			}
		}
		if err := coord.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "pmubench: -serve: %v\n", err)
			os.Exit(1)
		}
		st, err := results.OpenDir(sweepd.CellsDir(*sweepDir), "render")
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmubench: -serve: %v\n", err)
			os.Exit(1)
		}
		store = st
		storeLabel = *sweepDir
		r.Store = store
		// The render pass re-measures any cell the fleet failed on; its
		// references come from the fleet's shared memo under the sweep dir.
		refs, err := results.OpenDir(sweepd.RefsDir(*sweepDir), "render")
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmubench: -serve: %v\n", err)
			os.Exit(1)
		}
		refStore = refs
		r.RefStore = refs
	}
	if !*serve {
		// Standalone runs serve their own sink; no sweep means no
		// /progress document (the endpoint answers 404).
		obsServe(func() telemetry.Snapshot { return sink.Snapshot(runID) },
			func() (any, bool) { return nil, false })
	}

	jsonResults := []jsonResult{}
	emitFull := func(name string, t *report.Table, ms []experiments.Measurement, mux []experiments.MuxMeasurement) {
		// stdout carries at most one document: "-json -" or "-telemetry -"
		// suppress the human tables.
		if *jsonPath != "-" && *teleFile != "-" {
			if *markdown {
				fmt.Println(t.Markdown())
			} else {
				fmt.Println(t.String())
			}
		}
		if *jsonPath != "" {
			jsonResults = append(jsonResults, jsonResult{
				Experiment:      name,
				Scale:           scale.Name,
				Seed:            *seed,
				Parallel:        *parallel,
				Measurements:    ms,
				MuxMeasurements: mux,
				Table:           t.String(),
			})
		}
	}
	emit := func(name string, t *report.Table, ms []experiments.Measurement) {
		emitFull(name, t, ms, nil)
	}
	emitMux := func(name string, t *report.Table, ms []experiments.MuxMeasurement) {
		emitFull(name, t, nil, ms)
	}
	emitTenants := func(name string, t *report.Table, ms []experiments.TenantMeasurement) {
		emitFull(name, t, nil, nil)
		if *jsonPath != "" {
			jsonResults[len(jsonResults)-1].TenantMeasurements = ms
		}
	}

	// Tables 1 and 2 are cached across experiments so "-experiment all"
	// computes each matrix once (factors reuses them).
	var t1res, t2res *experiments.TableResult
	table1 := func() (*experiments.TableResult, error) {
		if t1res == nil {
			tr, err := r.RunTable1()
			if err != nil {
				return nil, err
			}
			t1res = tr
		}
		return t1res, nil
	}
	table2 := func() (*experiments.TableResult, error) {
		if t2res == nil {
			tr, err := r.RunTable2()
			if err != nil {
				return nil, err
			}
			t2res = tr
		}
		return t2res, nil
	}

	run := func(name string) error {
		switch name {
		case "table1":
			tr, err := table1()
			if err != nil {
				return err
			}
			emit(name, tr.Table, tr.Measurements)
		case "table2":
			tr, err := table2()
			if err != nil {
				return err
			}
			emit(name, tr.Table, tr.Measurements)
		case "table3":
			emit(name, experiments.RunTable3(), nil)
		case "factors":
			t1, err := table1()
			if err != nil {
				return err
			}
			t2, err := table2()
			if err != nil {
				return err
			}
			emit(name, r.RunFactors(t1, t2).Table, nil)
		case "ipfix":
			res, err := r.RunIPFix()
			if err != nil {
				return err
			}
			emit(name, res.Table, nil)
		case "ranking":
			res, err := r.RunRanking()
			if err != nil {
				return err
			}
			emit(name, res.Table, nil)
		case "ablate-skid":
			t, _, err := r.AblateSkid()
			if err != nil {
				return err
			}
			emit(name, t, nil)
		case "ablate-period":
			t, _, err := r.AblatePeriod()
			if err != nil {
				return err
			}
			emit(name, t, nil)
		case "ablate-lbr":
			t, _, err := r.AblateLBRDepth()
			if err != nil {
				return err
			}
			emit(name, t, nil)
		case "ablate-burst":
			t, _, err := r.AblateBurst()
			if err != nil {
				return err
			}
			emit(name, t, nil)
		case "ablate-rand":
			t, _, err := r.AblateRandAmp()
			if err != nil {
				return err
			}
			emit(name, t, nil)
		case "overhead":
			t, _, err := r.RunOverhead()
			if err != nil {
				return err
			}
			emit(name, t, nil)
		case "freq":
			res, err := r.RunFreqVsFixed()
			if err != nil {
				return err
			}
			emit(name, res.Table, nil)
		case "lbr-contention":
			t, _, err := r.RunLBRContention()
			if err != nil {
				return err
			}
			emit(name, t, nil)
		case "stability":
			res, err := r.RunStability(5)
			if err != nil {
				return err
			}
			emit(name, res.Table, nil)
		case "future-hw":
			res, err := r.RunFutureHW()
			if err != nil {
				return err
			}
			emit(name, res.Table, nil)
		case "mux-events":
			t, ms, err := r.RunMuxEvents()
			if err != nil {
				return err
			}
			emitMux(name, t, ms)
		case "mux-timeslice":
			t, ms, err := r.RunMuxTimeslice()
			if err != nil {
				return err
			}
			emitMux(name, t, ms)
		case "mux-policy":
			t, ms, err := r.RunMuxPolicy()
			if err != nil {
				return err
			}
			emitMux(name, t, ms)
		case "mux":
			if len(muxEvents) == 0 {
				return fmt.Errorf("-experiment mux needs -events (e.g. -events inst_retired,load,br_taken)")
			}
			t, ms, err := r.RunMuxCustom(muxEvents, *timeslice, policy)
			if err != nil {
				return err
			}
			emitMux(name, t, ms)
		case "tenants":
			t, ms, err := r.RunTenants(tenantCounts, *switchCost)
			if err != nil {
				return err
			}
			emitTenants(name, t, ms)
		case "tenants-timeslice":
			t, ms, err := r.RunTenantsTimeslice(*switchCost)
			if err != nil {
				return err
			}
			emitTenants(name, t, ms)
		case "phased":
			tr, err := r.RunPhased()
			if err != nil {
				return err
			}
			emit(name, tr.Table, tr.Measurements)
		case "spec":
			if *specFile == "" {
				return fmt.Errorf("-experiment spec needs -spec FILE")
			}
			s, err := workloads.LoadPhasedSpec(*specFile)
			if err != nil {
				return err
			}
			ws, err := s.WorkloadSpec()
			if err != nil {
				return err
			}
			tr, err := r.RunWorkloads(
				fmt.Sprintf("Spec %s (%s): sampling-method accuracy errors (lower is better)", s.Name, s.Fingerprint()),
				[]workloads.Spec{ws})
			if err != nil {
				return err
			}
			emit(name, tr.Table, tr.Measurements)
		default:
			return unknownExperimentErr(name)
		}
		return nil
	}

	names := []string{*experiment}
	if *specFile != "" {
		// A user-authored spec is its own experiment: measure its matrix
		// and nothing else.
		names = []string{"spec"}
	} else if *experiment == "all" {
		names = allExperiments()
	}
	exitCode := 0
	for _, name := range names {
		if err := run(name); err != nil {
			logger.Error("experiment failed", "experiment", name, "run_id", runID, "err", err)
			exitCode = 1
			break
		}
	}

	// The JSON document is written even after a mid-run failure, so a
	// long multi-experiment run keeps the results it already collected.
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, jsonResults); err != nil {
			fmt.Fprintf(os.Stderr, "pmubench: json: %v\n", err)
			exitCode = 1
		}
	}
	if store != nil {
		// The served/measured split is the resume observable: a fully
		// warm resume reports "0 newly measured".
		stats := r.StoreStats()
		logger.Info("store summary", "store", storeLabel, "run_id", runID,
			"records", store.Len(), "served", stats.Cached, "measured", stats.Measured)
		if err := store.Close(); err != nil {
			logger.Error("store close failed", "err", err)
			exitCode = 1
		}
	}
	if refStore != nil {
		rs := r.RefStats()
		logger.Info("refs summary", "run_id", runID, "served", rs.Cached, "collected", rs.Measured)
		if err := refStore.Close(); err != nil {
			logger.Error("refs close failed", "err", err)
			exitCode = 1
		}
	}
	// The snapshot is written even after a mid-run failure, like -json:
	// partial telemetry is still telemetry.
	if *teleFile != "" {
		if err := writeTelemetry(*teleFile, *sweepDir, *serve, sink, runID, logger); err != nil {
			logger.Error("telemetry write failed", "err", err)
			exitCode = 1
		}
	}
	os.Exit(exitCode)
}

// writeTelemetry writes this run's canonical snapshot document; in
// -serve mode the fleet's persisted worker snapshots are merged in, so
// the file accounts for cells measured by every process of the sweep.
func writeTelemetry(path, sweepDir string, serve bool, sink *telemetry.Sink, runID string, logger *slog.Logger) error {
	snap := sink.Snapshot(runID)
	if serve {
		fleet, _, err := telemetry.LoadDir(telemetry.Dir(sweepDir))
		if err != nil {
			logger.Warn("telemetry merge failed", "err", err)
		} else {
			snap = fleet.Merge(snap)
			if snap.RunID == "" {
				snap.RunID = runID
			}
		}
	}
	out, err := snap.MarshalCanonical()
	if err != nil {
		return err
	}
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// parseTenantCounts parses the -tenants flag: a comma-separated list of
// positive tenant counts, empty meaning the experiment default.
func parseTenantCounts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var counts []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-tenants: bad count %q (want positive integers, e.g. 1,2,4,8)", f)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

func writeJSON(path string, results []jsonResult) error {
	out, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}
