// Command pmubench regenerates the paper's tables and the repository's
// ablation experiments.
//
// Usage:
//
//	pmubench -experiment table1|table2|table3|factors|ipfix|ranking|
//	                     ablate-skid|ablate-period|ablate-lbr|ablate-burst|
//	                     ablate-rand|all
//	         [-scale paper|small] [-seed N] [-markdown]
//
// Every experiment prints a table whose rows/columns mirror the paper's
// presentation; see DESIGN.md for the experiment index and EXPERIMENTS.md
// for recorded paper-vs-measured comparisons.
package main

import (
	"flag"
	"fmt"
	"os"

	"pmutrust/internal/experiments"
	"pmutrust/internal/report"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment to run (see package comment)")
		scaleName  = flag.String("scale", "paper", "experiment scale: paper or small")
		seed       = flag.Uint64("seed", 42, "base random seed")
		markdown   = flag.Bool("markdown", false, "emit Markdown instead of plain text")
	)
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "paper":
		scale = experiments.PaperScale()
	case "small":
		scale = experiments.SmallScale()
	default:
		fmt.Fprintf(os.Stderr, "pmubench: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	r := experiments.NewRunner(scale, *seed)

	emit := func(t *report.Table) {
		if *markdown {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t.String())
		}
	}

	// Tables 1 and 2 are cached across experiments so "-experiment all"
	// computes each matrix once (factors reuses them).
	var t1res, t2res *experiments.TableResult
	table1 := func() (*experiments.TableResult, error) {
		if t1res == nil {
			tr, err := r.RunTable1()
			if err != nil {
				return nil, err
			}
			t1res = tr
		}
		return t1res, nil
	}
	table2 := func() (*experiments.TableResult, error) {
		if t2res == nil {
			tr, err := r.RunTable2()
			if err != nil {
				return nil, err
			}
			t2res = tr
		}
		return t2res, nil
	}

	run := func(name string) error {
		switch name {
		case "table1":
			tr, err := table1()
			if err != nil {
				return err
			}
			emit(tr.Table)
		case "table2":
			tr, err := table2()
			if err != nil {
				return err
			}
			emit(tr.Table)
		case "table3":
			emit(experiments.RunTable3())
		case "factors":
			t1, err := table1()
			if err != nil {
				return err
			}
			t2, err := table2()
			if err != nil {
				return err
			}
			emit(r.RunFactors(t1, t2).Table)
		case "ipfix":
			res, err := r.RunIPFix()
			if err != nil {
				return err
			}
			emit(res.Table)
		case "ranking":
			res, err := r.RunRanking()
			if err != nil {
				return err
			}
			emit(res.Table)
		case "ablate-skid":
			t, _, err := r.AblateSkid()
			if err != nil {
				return err
			}
			emit(t)
		case "ablate-period":
			t, _, err := r.AblatePeriod()
			if err != nil {
				return err
			}
			emit(t)
		case "ablate-lbr":
			t, _, err := r.AblateLBRDepth()
			if err != nil {
				return err
			}
			emit(t)
		case "ablate-burst":
			t, _, err := r.AblateBurst()
			if err != nil {
				return err
			}
			emit(t)
		case "ablate-rand":
			t, _, err := r.AblateRandAmp()
			if err != nil {
				return err
			}
			emit(t)
		case "overhead":
			t, _, err := r.RunOverhead()
			if err != nil {
				return err
			}
			emit(t)
		case "freq":
			res, err := r.RunFreqVsFixed()
			if err != nil {
				return err
			}
			emit(res.Table)
		case "lbr-contention":
			t, _, err := r.RunLBRContention()
			if err != nil {
				return err
			}
			emit(t)
		case "stability":
			res, err := r.RunStability(5)
			if err != nil {
				return err
			}
			emit(res.Table)
		case "future-hw":
			res, err := r.RunFutureHW()
			if err != nil {
				return err
			}
			emit(res.Table)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	names := []string{*experiment}
	if *experiment == "all" {
		names = []string{"table3", "table1", "table2", "factors", "ipfix", "ranking",
			"ablate-skid", "ablate-period", "ablate-lbr", "ablate-burst", "ablate-rand",
			"overhead", "freq", "lbr-contention", "stability", "future-hw"}
	}
	for _, name := range names {
		if err := run(name); err != nil {
			fmt.Fprintf(os.Stderr, "pmubench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}
