package main

import "testing"

func TestRunAllMethods(t *testing.T) {
	for _, method := range []string{"classic", "precise", "pdir+ipfix", "lbr"} {
		if err := run("Test40", "IvyBridge", method, 0.05, 1000, 42, 5, true, 8); err != nil {
			t.Errorf("run(%s): %v", method, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nope", "IvyBridge", "classic", 0.05, 1000, 42, 5, false, 0); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run("Test40", "P4", "classic", 0.05, 1000, 42, 5, false, 0); err == nil {
		t.Error("unknown machine accepted")
	}
	if err := run("Test40", "IvyBridge", "magic", 0.05, 1000, 42, 5, false, 0); err == nil {
		t.Error("unknown method accepted")
	}
	if err := run("Test40", "MagnyCours", "lbr", 0.05, 1000, 42, 5, false, 0); err == nil {
		t.Error("lbr on MagnyCours accepted")
	}
}
