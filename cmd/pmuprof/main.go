// Command pmuprof profiles one workload with one sampling method on one
// machine and prints the resulting profile next to the exact reference —
// the interactive view of what the experiment harness scores in bulk.
//
// Usage:
//
//	pmuprof -workload FullCMS [-machine IvyBridge] [-method lbr]
//	        [-scale 1.0] [-period 4000] [-seed 42] [-top 15] [-blocks]
//	        [-trace N]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"pmutrust/internal/analysis"
	"pmutrust/internal/cpu"
	"pmutrust/internal/lbr"
	"pmutrust/internal/machine"
	"pmutrust/internal/profile"
	"pmutrust/internal/program"
	"pmutrust/internal/ref"
	"pmutrust/internal/report"
	"pmutrust/internal/sampling"
	"pmutrust/internal/telemetry"
	"pmutrust/internal/trace"
	"pmutrust/internal/workloads"
)

func main() {
	var (
		workloadName = flag.String("workload", "", "workload name (see wlgen -list)")
		machineName  = flag.String("machine", "IvyBridge", "machine: MagnyCours, Westmere or IvyBridge")
		methodKey    = flag.String("method", "pdir+ipfix", "sampling method key (see pmubench -experiment table3)")
		scale        = flag.Float64("scale", 1.0, "workload scale factor")
		period       = flag.Uint64("period", 4000, "base sampling period (instructions)")
		seed         = flag.Uint64("seed", 42, "random seed")
		top          = flag.Int("top", 15, "number of functions to print")
		blocks       = flag.Bool("blocks", false, "also print per-block detail for the hottest function")
		traceDepth   = flag.Int("trace", 0, "dump the last N retirements with burst markers (0 = off)")
	)
	flag.Parse()
	if *workloadName == "" {
		fmt.Fprintln(os.Stderr, "pmuprof: -workload is required; available:")
		for _, s := range workloads.All() {
			fmt.Fprintf(os.Stderr, "  %-14s (%s) %s\n", s.Name, s.Kind, s.Description)
		}
		os.Exit(2)
	}
	if err := run(*workloadName, *machineName, *methodKey, *scale, *period, *seed, *top, *blocks, *traceDepth); err != nil {
		fmt.Fprintf(os.Stderr, "pmuprof: %v\n", err)
		os.Exit(1)
	}
}

// fallbackLine renders the non-zero fallback buckets as "key=N ..." in
// key order, or "none".
func fallbackLine(buckets map[string]uint64) string {
	var keys []string
	for k, v := range buckets {
		if v != 0 {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return "none"
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, buckets[k])
	}
	return strings.Join(parts, " ")
}

func run(workloadName, machineName, methodKey string, scale float64, period, seed uint64, top int, blocks bool, traceDepth int) error {
	spec, err := workloads.ByName(workloadName)
	if err != nil {
		return err
	}
	mach, err := machine.ByName(machineName)
	if err != nil {
		return err
	}
	method, err := sampling.MethodByKey(methodKey)
	if err != nil {
		return err
	}

	p := spec.Build(scale)
	reference, err := ref.Collect(p)
	if err != nil {
		return err
	}
	// The sink shares the experiment harness's telemetry counters, so the
	// engine line below is computed by the same instrumentation the
	// observability plane serves — no CLI-local accounting.
	sink := &telemetry.Sink{}
	run, err := sampling.Collect(p, mach, method, sampling.Options{
		PeriodBase: period, Seed: seed, Telemetry: sink,
	})
	if err != nil {
		return err
	}

	var bp *profile.BlockProfile
	if run.Method.UseLBRStack {
		var ds lbr.DecodeStats
		bp, ds, err = lbr.BuildProfile(p, run)
		if err != nil {
			return err
		}
		fmt.Printf("LBR decode: %d stacks, %d segments, %d malformed\n",
			ds.Stacks, ds.Segments, ds.Malformed)
	} else {
		bp = profile.FromSamples(p, run)
	}

	errVal, err := analysis.AccuracyError(bp, reference)
	if err != nil {
		return err
	}
	fmt.Printf("workload %s on %s via %s (resolved: event=%s mechanism=%s period=%d)\n",
		spec.Name, mach, method.Key, run.Method.Event, run.Method.Precision, run.Period)
	e := sink.Snapshot("").Engine
	fmt.Printf("run: %d instructions (%d fast-path in %d strides, %d event-mode), %d cycles (IPC %.2f), %d samples, %d dropped PMIs\n",
		e.StrideInstrs+e.EventInstrs, e.StrideInstrs, e.Strides, e.EventInstrs,
		run.CPU.Cycles, run.CPU.IPC(), len(run.Samples), run.DroppedPMIs)
	fmt.Printf("engine: %d fallbacks (%s), %d fused pairs\n",
		e.FallbackTotal, fallbackLine(e.Fallbacks), e.FusedPairs)
	fmt.Printf("accuracy error: %.4f (paper metric, lower is better)\n\n", errVal)

	// Function table: estimated vs exact.
	fp := bp.ToFunctions()
	refRank := analysis.RefFunctionRanking(reference)
	refByFunc := make([]float64, p.NumFuncs())
	for b, ic := range reference.InstrCount {
		refByFunc[p.Blocks[b].Func] += float64(ic)
	}
	t := report.New(fmt.Sprintf("top %d functions (estimated vs exact instruction share)", top),
		"function", "est %", "exact %", "exact rank")
	rank := fp.Ranking()
	if top > len(rank) {
		top = len(rank)
	}
	refPos := make(map[int]int, len(refRank))
	for i, id := range refRank {
		refPos[id] = i + 1
	}
	total := float64(reference.NetInstructions)
	var estTotal float64
	for _, v := range fp.InstrEstimate {
		estTotal += v
	}
	if estTotal == 0 {
		estTotal = 1
	}
	for _, id := range rank[:top] {
		t.AddRow(p.Funcs[id].Name,
			fmt.Sprintf("%5.2f", 100*fp.InstrEstimate[id]/estTotal),
			fmt.Sprintf("%5.2f", 100*refByFunc[id]/total),
			fmt.Sprintf("%d", refPos[id]))
	}
	fmt.Println(t.String())

	agree := analysis.CompareRankings(rank, refRank, 10)
	fmt.Printf("top-10 ranking: exact=%v overlap=%.0f%% kendall-tau=%.2f\n",
		agree.ExactOrder, 100*agree.SetOverlap, agree.KendallTau)

	if traceDepth > 0 {
		// Re-run under a tracer to show the retirement stream texture
		// (burst markers make the §5.1 clustering visible).
		tr := trace.New(traceDepth, nil)
		if _, err := cpu.Run(p, mach.CPU, tr, 0); err != nil {
			return err
		}
		fmt.Printf("last %d retirements (│ marks same-cycle retirement bursts):\n%s\n",
			traceDepth, tr.Format(p))
	}

	if blocks && len(rank) > 0 {
		hot := p.Funcs[refRank[0]]
		bt := report.New(fmt.Sprintf("\nblocks of hottest function %s", hot.Name),
			"block", "addr", "len", "est instrs", "exact instrs")
		for _, blk := range hot.Blocks {
			bt.AddRow(blk.Label,
				fmt.Sprintf("%#x", program.DisplayAddr(blk.Start)),
				fmt.Sprintf("%d", blk.Len()),
				fmt.Sprintf("%.0f", bp.InstrEstimate[blk.ID]),
				fmt.Sprintf("%d", reference.InstrCount[blk.ID]))
		}
		fmt.Println(bt.String())
	}
	return nil
}
