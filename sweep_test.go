// Paper-scale sweep determinism: the acceptance bar for the parallel
// runner. A PaperScale() grid over three kernels × all three machines ×
// every Table 3 method must aggregate to byte-identical results at
// worker counts 1 and 8. This lives in the root package so the long
// paper-scale run gets its own test-binary time budget; -short skips it
// (the small-scale equivalent in internal/experiments always runs).
package pmutrust_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"pmutrust/internal/experiments"
	"pmutrust/internal/machine"
	"pmutrust/internal/sampling"
	"pmutrust/internal/workloads"
)

func TestPaperScaleSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale sweeps take minutes")
	}
	g := experiments.Grid{
		Workloads: workloads.Kernels()[:3],
		Machines:  machine.All(),
		Methods:   sampling.Registry(),
	}
	var got [][]byte
	for _, workers := range []int{1, 8} {
		r := experiments.NewRunner(experiments.PaperScale(), 42)
		ms, err := r.Sweep(g, experiments.SweepOptions{Parallel: workers})
		if err != nil {
			t.Fatalf("Sweep(parallel=%d): %v", workers, err)
		}
		b, err := json.Marshal(ms)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, b)
	}
	if !bytes.Equal(got[0], got[1]) {
		t.Errorf("paper-scale sweep differs between 1 and 8 workers:\n1: %s\n8: %s",
			got[0], got[1])
	}
}
