module pmutrust

go 1.24
