package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// A nil sink must accept every call and snapshot to zeros — the disabled
// state needs no guards at call sites.
func TestNilSinkSafe(t *testing.T) {
	var s *Sink
	s.AddEngine(&EngineCounters{Strides: 1})
	s.AddEngine(nil)
	s.CountRun(VariantFull)
	s.ObserveCellWall(time.Millisecond)
	s.CountCells(3, 4)
	s.CountRef(true)
	s.CountLease(true)
	s.CountShardDone()
	s.ObserveHeartbeat(time.Second)
	snap := s.Snapshot("abc")
	if snap.RunID != "abc" || snap.Schema != SnapshotSchema {
		t.Fatalf("nil snapshot header: %+v", snap)
	}
	if snap.Engine.FallbackTotal != 0 || snap.Sweep.CellsMeasured != 0 {
		t.Fatalf("nil snapshot not zero: %+v", snap)
	}
	// All keys must still be present (readers index them unconditionally).
	if len(snap.Engine.Fallbacks) != NumFallbackReasons || len(snap.Engine.Runs) != NumVariants {
		t.Fatalf("nil snapshot missing keys: %+v", snap.Engine)
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("nil snapshot invalid: %v", err)
	}
}

func TestSinkAccumulatesAndValidates(t *testing.T) {
	s := &Sink{}
	c := &EngineCounters{Strides: 2, StrideInstrs: 2000, EventInstrs: 17, FusedPairs: 5}
	c.Fallbacks[FallbackOverflow] = 3
	c.Fallbacks[FallbackMuxDeadline] = 1
	s.AddEngine(c)
	s.AddEngine(c)
	s.CountRun(VariantFull)
	s.CountRun(VariantInterp)
	s.CountCells(10, 4)
	s.CountRef(true)
	s.CountRef(false)
	s.CountLease(false)
	s.CountLease(true)
	s.CountShardDone()
	s.ObserveHeartbeat(2 * time.Millisecond)
	s.ObserveHeartbeat(time.Millisecond)

	snap := s.Snapshot("run1")
	if err := snap.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := snap.Engine.FallbackTotal; got != 8 {
		t.Errorf("FallbackTotal = %d, want 8", got)
	}
	if snap.Engine.Fallbacks["overflow_adjacent"] != 6 || snap.Engine.Fallbacks["mux_deadline"] != 2 {
		t.Errorf("fallback buckets: %v", snap.Engine.Fallbacks)
	}
	if snap.Engine.Strides != 4 || snap.Engine.StrideInstrs != 4000 || snap.Engine.EventInstrs != 34 {
		t.Errorf("engine: %+v", snap.Engine)
	}
	if snap.Engine.Runs["full"] != 1 || snap.Engine.Runs["interp"] != 1 || snap.Engine.Runs["lean"] != 0 {
		t.Errorf("runs: %v", snap.Engine.Runs)
	}
	if snap.Sweep.CellsMeasured != 10 || snap.Sweep.CellsStored != 4 ||
		snap.Sweep.RefsMeasured != 1 || snap.Sweep.RefsServed != 1 {
		t.Errorf("sweep: %+v", snap.Sweep)
	}
	if snap.Fleet.LeasesAcquired != 2 || snap.Fleet.LeaseSteals != 1 || snap.Fleet.ShardsCompleted != 1 {
		t.Errorf("fleet: %+v", snap.Fleet)
	}
	if snap.Fleet.Heartbeats != 2 || snap.Fleet.HeartbeatLagMaxNs != uint64(2*time.Millisecond) {
		t.Errorf("heartbeats: %+v", snap.Fleet)
	}
}

func TestFallbackBucketSumInvariant(t *testing.T) {
	snap := (&Sink{}).Snapshot("")
	snap.Engine.Fallbacks["ibs_tag"] = 2
	if err := snap.Validate(); err == nil {
		t.Fatal("Validate accepted buckets that do not sum to total")
	}
	snap.Engine.FallbackTotal = 2
	if err := snap.Validate(); err != nil {
		t.Fatalf("Validate rejected consistent snapshot: %v", err)
	}
	snap.Engine.Fallbacks["bogus"] = 0
	if err := snap.Validate(); err == nil {
		t.Fatal("Validate accepted unknown fallback key")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h histogram
	h.observe(0)
	h.observe(1024)            // still bucket 0 (<= first edge)
	h.observe(1025)            // bucket 1
	h.observe(time.Hour * 100) // overflow bucket
	s := h.snapshot()
	if s.Count != 4 || s.Counts[0] != 2 || s.Counts[1] != 1 || s.Counts[histMaxBucket] != 1 {
		t.Fatalf("histogram: %+v", s)
	}
	if len(s.UpperBoundsNs) != histMaxBucket || s.UpperBoundsNs[0] != 1024 || s.UpperBoundsNs[1] != 2048 {
		t.Fatalf("edges: %v", s.UpperBoundsNs)
	}
}

func TestMerge(t *testing.T) {
	a := (&Sink{}).Snapshot("r")
	a.Engine.Fallbacks["armed_pebs"] = 1
	a.Engine.FallbackTotal = 1
	a.Fleet.Workers = 1
	a.Fleet.HeartbeatLagMaxNs = 50
	b := (&Sink{}).Snapshot("r")
	b.Engine.Fallbacks["armed_pebs"] = 2
	b.Engine.FallbackTotal = 2
	b.Fleet.Workers = 1
	b.Fleet.HeartbeatLagMaxNs = 70

	m := a.Merge(b)
	if err := m.Validate(); err != nil {
		t.Fatalf("merged invalid: %v", err)
	}
	if m.RunID != "r" {
		t.Errorf("RunID = %q, want r", m.RunID)
	}
	if m.Engine.Fallbacks["armed_pebs"] != 3 || m.Engine.FallbackTotal != 3 {
		t.Errorf("merged fallbacks: %v total %d", m.Engine.Fallbacks, m.Engine.FallbackTotal)
	}
	if m.Fleet.Workers != 2 || m.Fleet.HeartbeatLagMaxNs != 70 {
		t.Errorf("merged fleet: %+v", m.Fleet)
	}

	b.RunID = "other"
	if got := a.Merge(b).RunID; got != "" {
		t.Errorf("mismatched run IDs merged to %q, want empty", got)
	}
	b.RunID = ""
	if got := a.Merge(b).RunID; got != "r" {
		t.Errorf("empty+set run IDs merged to %q, want r", got)
	}
}

func TestMarshalCanonicalDeterministic(t *testing.T) {
	s := &Sink{}
	s.AddEngine(&EngineCounters{Strides: 1, Fallbacks: [NumFallbackReasons]uint64{1, 2, 3, 4, 5, 6}})
	s.CountRun(VariantLean)
	one, err := s.Snapshot("x").MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	two, err := s.Snapshot("x").MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one, two) {
		t.Fatalf("canonical form not stable:\n%s\nvs\n%s", one, two)
	}
	if !bytes.HasSuffix(one, []byte("\n")) {
		t.Error("canonical form not newline terminated")
	}
}

func TestPersistRoundTripAndLoadDir(t *testing.T) {
	dir := Dir(t.TempDir())
	s := &Sink{}
	s.CountCells(5, 2)
	c := &EngineCounters{}
	c.Fallbacks[FallbackSchedDeadline] = 7
	s.AddEngine(c)
	snapA := s.Snapshot("run")
	snapA.Fleet.Workers = 1
	if err := WriteSnapshot(dir, "worker-a", snapA); err != nil {
		t.Fatal(err)
	}
	snapB := (&Sink{}).Snapshot("run")
	snapB.Fleet.Workers = 1
	snapB.Sweep.CellsStored = 3
	if err := WriteSnapshot(dir, "worker-b", snapB); err != nil {
		t.Fatal(err)
	}

	got, err := ReadSnapshot(filepath.Join(dir, "worker-a.json"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Sweep.CellsMeasured != 5 || got.Engine.Fallbacks["sched_deadline"] != 7 {
		t.Fatalf("round trip: %+v", got)
	}

	merged, n, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || merged.Fleet.Workers != 2 || merged.Sweep.CellsStored != 5 || merged.RunID != "run" {
		t.Fatalf("LoadDir: n=%d %+v", n, merged)
	}

	// Missing directory is an empty fleet.
	empty, n, err := LoadDir(filepath.Join(t.TempDir(), "nope"))
	if err != nil || n != 0 || empty.Schema != SnapshotSchema {
		t.Fatalf("LoadDir missing dir: n=%d err=%v", n, err)
	}

	// A corrupt document fails loudly instead of being silently skipped.
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadDir(dir); err == nil {
		t.Fatal("LoadDir accepted corrupt document")
	}
}

func TestDeriveRunID(t *testing.T) {
	a := DeriveRunID("sweep", "fingerprint")
	if len(a) != 16 {
		t.Fatalf("run ID %q not 16 hex chars", a)
	}
	if a != DeriveRunID("sweep", "fingerprint") {
		t.Error("run ID not stable")
	}
	if a == DeriveRunID("sweepf", "ingerprint") {
		t.Error("part boundaries not separated")
	}
}

func TestHandlerEndpoints(t *testing.T) {
	s := &Sink{}
	s.CountCells(1, 0)
	h := Handler(
		func() Snapshot { return s.Snapshot("hid") },
		func() (any, bool) { return map[string]int{"done": 3, "total": 9}, true },
	)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v", err)
	}
	if snap.RunID != "hid" || snap.Sweep.CellsMeasured != 1 {
		t.Fatalf("/metrics body: %+v", snap)
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("/metrics snapshot invalid: %v", err)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/progress", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"done": 3`) {
		t.Fatalf("/progress: %d %s", rec.Code, rec.Body.String())
	}

	none := Handler(func() Snapshot { return Snapshot{Schema: SnapshotSchema} },
		func() (any, bool) { return nil, false })
	rec = httptest.NewRecorder()
	none.ServeHTTP(rec, httptest.NewRequest("GET", "/progress", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("/progress before first observation: %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", rec.Code)
	}
}

func TestRenderSummary(t *testing.T) {
	s := &Sink{}
	c := &EngineCounters{Strides: 3, StrideInstrs: 900, EventInstrs: 100, FusedPairs: 12}
	c.Fallbacks[FallbackOverflow] = 2
	c.Fallbacks[FallbackHW4LSB] = 5
	s.AddEngine(c)
	s.CountRun(VariantFull)
	s.CountCells(4, 2)
	s.ObserveCellWall(3 * time.Millisecond)
	snap := s.Snapshot("rid")

	out := RenderSummary(snap)
	for _, want := range []string{
		"run rid", "1 runs", "full=1",
		"900 fast-path (90.0%) in 3 strides, 100 event-mode",
		"fused pairs: 12",
		"fallbacks: 7 (hw_4lsb=5 overflow_adjacent=2)",
		"4 cells measured, 2 served from store",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if got := RenderSummary(Snapshot{Schema: SnapshotSchema}); !strings.Contains(got, "no telemetry") {
		t.Errorf("empty summary: %q", got)
	}
}

func TestLoggerModes(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, true, nil...)
	log.Info("hello", "shard", 3)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("JSON mode output not JSON: %v (%s)", err, buf.String())
	}
	if rec["msg"] != "hello" || rec["shard"] != float64(3) {
		t.Fatalf("JSON record: %v", rec)
	}

	buf.Reset()
	log = NewLogger(&buf, false)
	log.Info("hello", "shard", 3)
	out := buf.String()
	if !strings.Contains(out, "msg=hello") || !strings.Contains(out, "shard=3") {
		t.Fatalf("text record: %q", out)
	}
	if strings.Contains(out, "time=") {
		t.Fatalf("text record carries timestamp: %q", out)
	}
}
