package telemetry

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// SnapshotSchema is the snapshot document version, bumped on
// incompatible field changes so stale dashboards fail loudly.
const SnapshotSchema = 1

// Snapshot is the canonical JSON telemetry document: what `pmubench
// -telemetry` writes, workers persist under dir/telemetry/, the
// coordinator's /metrics endpoint serves (merged across the fleet), and
// `pmureport -telemetry` renders. Marshaling is deterministic for fixed
// counter values — struct fields in declaration order, map keys sorted
// by encoding/json — while the values themselves are deterministic
// except where noted (wall-time histogram counts, heartbeat lag).
type Snapshot struct {
	// Schema is the document version (SnapshotSchema).
	Schema int `json:"schema"`
	// RunID ties this snapshot to a run's structured logs and results
	// store (DeriveRunID; a sweep uses its plan fingerprint).
	RunID string `json:"run_id,omitempty"`
	// Engine aggregates the per-run monitor-chain counters.
	Engine EngineStats `json:"engine"`
	// Sweep aggregates cell/reference cache behavior.
	Sweep SweepStats `json:"sweep"`
	// Fleet aggregates sweepd worker behavior; zero outside worker mode.
	Fleet FleetStats `json:"fleet"`
}

// EngineStats is the engine section of a snapshot.
type EngineStats struct {
	// Runs counts collection runs by execution variant (full / lean /
	// nop / interp).
	Runs map[string]uint64 `json:"runs"`
	// Strides / StrideInstrs count fast-path stride flushes and the
	// instructions they covered; EventInstrs counts per-instruction
	// OnRetire deliveries (all interpreter instructions plus fast-engine
	// event-mode instructions).
	Strides      uint64 `json:"strides"`
	StrideInstrs uint64 `json:"stride_instrs"`
	EventInstrs  uint64 `json:"event_instrs"`
	// FusedPairs counts decode-time superinstruction fusions, summed
	// over runs.
	FusedPairs uint64 `json:"fused_pairs"`
	// Fallbacks buckets zero headroom grants by refusing layer; the
	// buckets sum to FallbackTotal by construction (exactly one bucket
	// per zero grant), and readers re-verify the invariant.
	Fallbacks     map[string]uint64 `json:"fallbacks"`
	FallbackTotal uint64            `json:"fallback_total"`
}

// SweepStats is the sweep section of a snapshot.
type SweepStats struct {
	// CellsMeasured / CellsStored split grid cells into executed vs
	// served from the results store.
	CellsMeasured uint64 `json:"cells_measured"`
	CellsStored   uint64 `json:"cells_stored"`
	// RefsMeasured / RefsServed split reference-profile lookups into
	// collected vs served from the reference memo.
	RefsMeasured uint64 `json:"refs_measured"`
	RefsServed   uint64 `json:"refs_served"`
	// CellWallNs is the per-cell wall-time histogram. Bucket edges are
	// fixed; counts depend on host timing (the one non-deterministic
	// part of the document, alongside heartbeat lag).
	CellWallNs HistStats `json:"cell_wall_ns"`
}

// FleetStats is the per-worker (or fleet-merged) section of a snapshot.
type FleetStats struct {
	// Workers counts the worker snapshots merged into this document
	// (1 in a single worker's own snapshot).
	Workers uint64 `json:"workers"`
	// LeasesAcquired counts shard leases won; LeaseSteals the subset
	// that took over an expired or superseded predecessor (gen > 1).
	LeasesAcquired uint64 `json:"leases_acquired"`
	LeaseSteals    uint64 `json:"lease_steals"`
	// ShardsCompleted counts shards run to completion and done-marked.
	ShardsCompleted uint64 `json:"shards_completed"`
	// Heartbeats counts lease renewals; the lag fields report how far
	// behind the nominal TTL/3 cadence they fired (host scheduling
	// noise — not deterministic).
	Heartbeats        uint64 `json:"heartbeats"`
	HeartbeatLagMaxNs uint64 `json:"heartbeat_lag_max_ns"`
	HeartbeatLagSumNs uint64 `json:"heartbeat_lag_sum_ns"`
}

// histMaxBucket is the histogram's overflow bucket index: bucket i < max
// counts observations with value <= histEdge(i), the last bucket
// everything beyond the largest edge.
const histMaxBucket = 24

// histEdge returns the fixed upper bound (inclusive, in nanoseconds) of
// bucket i: 1.024µs · 2^i, spanning ~1µs to ~4.8h before overflow. The
// edges are constants of the format — histogram output is deterministic
// modulo timing, never modulo configuration.
func histEdge(i int) uint64 { return 1024 << uint(i) }

// histogram is the atomic accumulation form behind Sink.ObserveCellWall.
type histogram struct {
	counts [histMaxBucket + 1]atomic.Uint64
	sum    atomic.Uint64
	n      atomic.Uint64
}

func (h *histogram) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	ns := uint64(d)
	// Smallest i with ns <= 1024<<i, i.e. the bit length of (ns-1)/1024
	// (values <= 1024ns land in bucket 0).
	b := 0
	if ns > 0 {
		b = bits.Len64((ns - 1) >> 10)
	}
	if b > histMaxBucket {
		b = histMaxBucket
	}
	h.counts[b].Add(1)
	h.sum.Add(ns)
	h.n.Add(1)
}

func (h *histogram) snapshot() HistStats {
	s := HistStats{
		UpperBoundsNs: make([]uint64, histMaxBucket),
		Counts:        make([]uint64, histMaxBucket+1),
	}
	for i := 0; i < histMaxBucket; i++ {
		s.UpperBoundsNs[i] = histEdge(i)
	}
	for i := range s.Counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Count = h.n.Load()
	s.SumNs = h.sum.Load()
	return s
}

// HistStats is the snapshot form of a log-bucketed histogram: bucket i
// counts observations <= UpperBoundsNs[i]; the final bucket (one longer
// than the bounds) is the overflow.
type HistStats struct {
	UpperBoundsNs []uint64 `json:"upper_bounds_ns"`
	Counts        []uint64 `json:"counts"`
	Count         uint64   `json:"count"`
	SumNs         uint64   `json:"sum_ns"`
}

// merge adds o's counts into h, tolerating an empty (zero) side.
func (h HistStats) merge(o HistStats) HistStats {
	if h.Count == 0 && len(h.Counts) == 0 {
		return o
	}
	if o.Count == 0 && len(o.Counts) == 0 {
		return h
	}
	out := h
	out.Counts = append([]uint64(nil), h.Counts...)
	for i := 0; i < len(out.Counts) && i < len(o.Counts); i++ {
		out.Counts[i] += o.Counts[i]
	}
	out.Count += o.Count
	out.SumNs += o.SumNs
	return out
}

// Merge returns the sum of two snapshots — the coordinator's fleet-wide
// view over per-worker documents. Counters add, lag maxima take the max,
// and the run ID survives only when both sides agree (merging different
// runs yields an unset ID rather than a lie).
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := s
	out.Schema = SnapshotSchema
	if s.RunID != o.RunID {
		if s.RunID == "" {
			out.RunID = o.RunID
		} else if o.RunID != "" {
			out.RunID = ""
		}
	}
	out.Engine.Runs = mergeCounts(s.Engine.Runs, o.Engine.Runs)
	out.Engine.Strides += o.Engine.Strides
	out.Engine.StrideInstrs += o.Engine.StrideInstrs
	out.Engine.EventInstrs += o.Engine.EventInstrs
	out.Engine.FusedPairs += o.Engine.FusedPairs
	out.Engine.Fallbacks = mergeCounts(s.Engine.Fallbacks, o.Engine.Fallbacks)
	out.Engine.FallbackTotal += o.Engine.FallbackTotal
	out.Sweep.CellsMeasured += o.Sweep.CellsMeasured
	out.Sweep.CellsStored += o.Sweep.CellsStored
	out.Sweep.RefsMeasured += o.Sweep.RefsMeasured
	out.Sweep.RefsServed += o.Sweep.RefsServed
	out.Sweep.CellWallNs = s.Sweep.CellWallNs.merge(o.Sweep.CellWallNs)
	out.Fleet.Workers += o.Fleet.Workers
	out.Fleet.LeasesAcquired += o.Fleet.LeasesAcquired
	out.Fleet.LeaseSteals += o.Fleet.LeaseSteals
	out.Fleet.ShardsCompleted += o.Fleet.ShardsCompleted
	out.Fleet.Heartbeats += o.Fleet.Heartbeats
	if o.Fleet.HeartbeatLagMaxNs > out.Fleet.HeartbeatLagMaxNs {
		out.Fleet.HeartbeatLagMaxNs = o.Fleet.HeartbeatLagMaxNs
	}
	out.Fleet.HeartbeatLagSumNs += o.Fleet.HeartbeatLagSumNs
	return out
}

// mergeCounts sums two string-keyed counter maps.
func mergeCounts(a, b map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(a)+len(b))
	for k, v := range a {
		out[k] += v
	}
	for k, v := range b {
		out[k] += v
	}
	return out
}

// Validate checks the document invariants a reader relies on: known
// schema, known fallback keys, and buckets summing exactly to the total.
func (s Snapshot) Validate() error {
	if s.Schema != SnapshotSchema {
		return fmt.Errorf("telemetry: snapshot schema %d, want %d", s.Schema, SnapshotSchema)
	}
	var sum uint64
	for k, v := range s.Engine.Fallbacks {
		if _, err := ParseFallbackReason(k); err != nil {
			return err
		}
		sum += v
	}
	if sum != s.Engine.FallbackTotal {
		return fmt.Errorf("telemetry: fallback buckets sum to %d but fallback_total is %d",
			sum, s.Engine.FallbackTotal)
	}
	return nil
}

// MarshalCanonical renders the snapshot as indented canonical JSON
// (struct field order plus encoding/json's sorted map keys), newline
// terminated.
func (s Snapshot) MarshalCanonical() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("telemetry: marshal snapshot: %w", err)
	}
	return append(out, '\n'), nil
}
