package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Handler builds the observability plane served under -obs-addr:
//
//	/metrics       the canonical JSON snapshot (fleet-merged when the
//	               snapshot function merges persisted worker documents)
//	/progress      machine-readable sweep progress from the progress
//	               function (404 until the first observation exists)
//	/debug/pprof/  the standard runtime profiles
//
// Both functions are called per request, so the plane always serves
// current state without its own refresh loop.
func Handler(snapshot func() Snapshot, progress func() (any, bool)) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		data, err := snapshot().MarshalCanonical()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		p, ok := progress()
		if !ok {
			http.Error(w, "no progress observed yet", http.StatusNotFound)
			return
		}
		data, err := json.MarshalIndent(p, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(data, '\n'))
	})
	// Mount pprof explicitly rather than via http.DefaultServeMux so the
	// plane works no matter what else the process registered globally.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
