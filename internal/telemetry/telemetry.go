// Package telemetry is the zero-cost-when-disabled instrumentation layer
// of the simulator: per-run engine counters carried by the monitor chain,
// an atomic Sink that aggregates them across runs, sweeps and worker
// fleets, and a canonical JSON Snapshot that the observability surfaces
// (pmubench -telemetry/-obs-addr, pmureport -telemetry, the sweepd
// coordinator's /metrics endpoint) all render from.
//
// Design rules, enforced by the differential battery and the benchgate:
//
//   - Telemetry observes, never perturbs. Counters live outside
//     cpu.Result and sampling.Run, so bit-identity checks (DiffRuns)
//     never see them, and nothing the simulation computes ever reads
//     them back.
//   - The engine hot loop gains no per-instruction work. EngineCounters
//     increments happen only on paths that are already slow: a
//     FastHeadroom zero grant (a fallback), a BulkRetire flush (once per
//     stride), a per-instruction OnRetire delivery (event mode and the
//     reference interpreter, which pay a full monitor call anyway), and
//     once-per-run decode bookkeeping.
//   - Atomics live only in the Sink, which is published to at run / cell
//     / shard granularity. Every Sink method is safe on a nil receiver,
//     so call sites need no guards and a nil sink costs one predictable
//     branch per run, not per instruction.
//
// telemetry is a leaf package (standard library only): cpu, pmu, sched,
// sampling, experiments and sweepd all import it without cycles.
package telemetry

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync/atomic"
	"time"
)

// FallbackReason buckets why a FastHeadroom call granted zero
// instructions — i.e. why the fast engine fell back to per-instruction
// event mode at that point. Each zero grant increments exactly one
// bucket (the monitor chain attributes the first layer that refused),
// so the buckets always sum to the total number of fallback events.
type FallbackReason uint8

const (
	// FallbackOverflow is the overflow-adjacent window: the sampling
	// counter is within one event of its reload value, or an imprecise
	// PMI is still riding out its skid.
	FallbackOverflow FallbackReason = iota
	// FallbackArmedPEBS is an armed PEBS capture window waiting for an
	// eligible occurrence.
	FallbackArmedPEBS
	// FallbackMuxDeadline is a multiplexer rotation deadline the next
	// instruction could reach.
	FallbackMuxDeadline
	// FallbackSchedDeadline is a scheduler timeslice deadline the next
	// instruction could reach.
	FallbackSchedDeadline
	// FallbackIBSTag is a displaced IBS tag waiting to report.
	FallbackIBSTag
	// FallbackHW4LSB is the overflow-adjacent window under IBS hardware
	// 4-LSB period randomization, split out because tiny randomized
	// reload values keep the unit chronically near a boundary — the
	// dominant fallback cause on the AMD model.
	FallbackHW4LSB

	// NumFallbackReasons sizes per-reason arrays.
	NumFallbackReasons = int(FallbackHW4LSB) + 1
)

// String returns the snapshot key of the reason.
func (r FallbackReason) String() string {
	switch r {
	case FallbackOverflow:
		return "overflow_adjacent"
	case FallbackArmedPEBS:
		return "armed_pebs"
	case FallbackMuxDeadline:
		return "mux_deadline"
	case FallbackSchedDeadline:
		return "sched_deadline"
	case FallbackIBSTag:
		return "ibs_tag"
	case FallbackHW4LSB:
		return "hw_4lsb"
	default:
		return "unknown"
	}
}

// Variant names which execution path served a run, mirroring the engine's
// monitor-specialized loop selection (cpu.Variant) plus the reference
// interpreter. Defined here rather than aliased so telemetry stays a
// leaf package.
type Variant uint8

const (
	// VariantFull is the general fast-engine stride loop.
	VariantFull Variant = iota
	// VariantLean is the reduced-bookkeeping fast-engine loop.
	VariantLean
	// VariantNop is the no-monitor timing loop.
	VariantNop
	// VariantInterp is the per-instruction reference interpreter.
	VariantInterp

	// NumVariants sizes per-variant arrays.
	NumVariants = int(VariantInterp) + 1
)

// String returns the snapshot key of the variant.
func (v Variant) String() string {
	switch v {
	case VariantFull:
		return "full"
	case VariantLean:
		return "lean"
	case VariantNop:
		return "nop"
	case VariantInterp:
		return "interp"
	default:
		return "unknown"
	}
}

// EngineCounters is the per-run counter block carried by a monitor chain
// (the PMU owns one; a wrapping Mux or scheduler task shares it). Plain
// uint64s, no atomics: one chain observes one single-threaded run, and
// the whole block is published to a Sink once at run end. Incrementing
// happens only on already-slow paths — see the package comment.
type EngineCounters struct {
	// Strides counts BulkRetire flushes (one per fast-path stride);
	// StrideInstrs is the instructions they covered.
	Strides, StrideInstrs uint64
	// EventInstrs counts instructions delivered one at a time through
	// OnRetire: every instruction of an interpreter run, and the
	// event-mode (fallback) instructions of a fast-engine run.
	EventInstrs uint64
	// FusedPairs counts decode-time superinstruction fusions in the
	// run's predecoded program (cmp+jcc and ALU/mem/FP pairs) — a
	// per-run static count, recorded once at decode.
	FusedPairs uint64
	// Fallbacks buckets FastHeadroom zero grants by the layer that
	// refused; exactly one bucket increments per zero grant.
	Fallbacks [NumFallbackReasons]uint64
}

// FallbackTotal returns the total number of zero headroom grants.
func (c *EngineCounters) FallbackTotal() uint64 {
	var t uint64
	for _, v := range c.Fallbacks {
		t += v
	}
	return t
}

// Sink aggregates telemetry across runs, cells, shards and (via Snapshot
// merging) whole worker fleets. All methods are safe on a nil receiver
// — a nil *Sink is the disabled state and costs one branch per call
// site, which are all at run/cell/shard granularity.
type Sink struct {
	runs         [NumVariants]atomic.Uint64
	strides      atomic.Uint64
	strideInstrs atomic.Uint64
	eventInstrs  atomic.Uint64
	fusedPairs   atomic.Uint64
	fallbacks    [NumFallbackReasons]atomic.Uint64

	cellsMeasured atomic.Uint64
	cellsStored   atomic.Uint64
	refsMeasured  atomic.Uint64
	refsServed    atomic.Uint64
	cellWall      histogram

	leasesAcquired  atomic.Uint64
	leaseSteals     atomic.Uint64
	shardsCompleted atomic.Uint64
	heartbeats      atomic.Uint64
	hbLagMaxNs      atomic.Uint64
	hbLagSumNs      atomic.Uint64
}

// AddEngine publishes one run's counter block into the sink.
func (s *Sink) AddEngine(c *EngineCounters) {
	if s == nil || c == nil {
		return
	}
	s.strides.Add(c.Strides)
	s.strideInstrs.Add(c.StrideInstrs)
	s.eventInstrs.Add(c.EventInstrs)
	s.fusedPairs.Add(c.FusedPairs)
	for i, v := range c.Fallbacks {
		if v != 0 {
			s.fallbacks[i].Add(v)
		}
	}
}

// CountRun records which execution variant served one run.
func (s *Sink) CountRun(v Variant) {
	if s == nil {
		return
	}
	s.runs[v].Add(1)
}

// ObserveCellWall records one cell measurement's wall-clock time in the
// log-bucketed histogram.
func (s *Sink) ObserveCellWall(d time.Duration) {
	if s == nil {
		return
	}
	s.cellWall.observe(d)
}

// CountCells records a sweep's served/measured split: measured cells were
// executed this run, stored cells were served from the results store.
func (s *Sink) CountCells(measured, stored uint64) {
	if s == nil {
		return
	}
	s.cellsMeasured.Add(measured)
	s.cellsStored.Add(stored)
}

// CountRef records one reference-profile lookup (served from the memo
// store, or freshly collected).
func (s *Sink) CountRef(served bool) {
	if s == nil {
		return
	}
	if served {
		s.refsServed.Add(1)
	} else {
		s.refsMeasured.Add(1)
	}
}

// CountLease records one shard lease acquisition; a steal is a takeover
// of an expired or superseded predecessor (generation > 1).
func (s *Sink) CountLease(steal bool) {
	if s == nil {
		return
	}
	s.leasesAcquired.Add(1)
	if steal {
		s.leaseSteals.Add(1)
	}
}

// CountShardDone records one shard run to completion.
func (s *Sink) CountShardDone() {
	if s == nil {
		return
	}
	s.shardsCompleted.Add(1)
}

// ObserveHeartbeat records one lease heartbeat and how far behind its
// nominal cadence it fired (lag 0 for an on-time beat).
func (s *Sink) ObserveHeartbeat(lag time.Duration) {
	if s == nil {
		return
	}
	if lag < 0 {
		lag = 0
	}
	s.heartbeats.Add(1)
	s.hbLagSumNs.Add(uint64(lag))
	for {
		cur := s.hbLagMaxNs.Load()
		if uint64(lag) <= cur || s.hbLagMaxNs.CompareAndSwap(cur, uint64(lag)) {
			return
		}
	}
}

// Snapshot captures the sink's current totals as the canonical snapshot
// document. Safe on a nil receiver (returns the zero snapshot).
func (s *Sink) Snapshot(runID string) Snapshot {
	snap := Snapshot{Schema: SnapshotSchema, RunID: runID}
	snap.Engine.Runs = map[string]uint64{}
	snap.Engine.Fallbacks = map[string]uint64{}
	for v := Variant(0); int(v) < NumVariants; v++ {
		snap.Engine.Runs[v.String()] = 0
	}
	for r := FallbackReason(0); int(r) < NumFallbackReasons; r++ {
		snap.Engine.Fallbacks[r.String()] = 0
	}
	if s == nil {
		return snap
	}
	for v := Variant(0); int(v) < NumVariants; v++ {
		snap.Engine.Runs[v.String()] = s.runs[v].Load()
	}
	snap.Engine.Strides = s.strides.Load()
	snap.Engine.StrideInstrs = s.strideInstrs.Load()
	snap.Engine.EventInstrs = s.eventInstrs.Load()
	snap.Engine.FusedPairs = s.fusedPairs.Load()
	for r := FallbackReason(0); int(r) < NumFallbackReasons; r++ {
		v := s.fallbacks[r].Load()
		snap.Engine.Fallbacks[r.String()] = v
		snap.Engine.FallbackTotal += v
	}
	snap.Sweep.CellsMeasured = s.cellsMeasured.Load()
	snap.Sweep.CellsStored = s.cellsStored.Load()
	snap.Sweep.RefsMeasured = s.refsMeasured.Load()
	snap.Sweep.RefsServed = s.refsServed.Load()
	snap.Sweep.CellWallNs = s.cellWall.snapshot()
	snap.Fleet.LeasesAcquired = s.leasesAcquired.Load()
	snap.Fleet.LeaseSteals = s.leaseSteals.Load()
	snap.Fleet.ShardsCompleted = s.shardsCompleted.Load()
	snap.Fleet.Heartbeats = s.heartbeats.Load()
	snap.Fleet.HeartbeatLagMaxNs = s.hbLagMaxNs.Load()
	snap.Fleet.HeartbeatLagSumNs = s.hbLagSumNs.Load()
	return snap
}

// DeriveRunID derives a stable run identifier from its parts — the
// handle that ties a run's structured logs, persisted snapshots and
// results store together. The same parts always produce the same ID
// (FNV-1a over the joined parts), so a resumed sweep keeps its identity.
func DeriveRunID(parts ...string) string {
	h := fnv.New64a()
	for i, p := range parts {
		if i > 0 {
			h.Write([]byte{0})
		}
		h.Write([]byte(p))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// ParseFallbackReason maps a snapshot key back to its reason, for
// readers validating snapshot documents.
func ParseFallbackReason(key string) (FallbackReason, error) {
	for r := FallbackReason(0); int(r) < NumFallbackReasons; r++ {
		if r.String() == key {
			return r, nil
		}
	}
	return 0, fmt.Errorf("telemetry: unknown fallback reason %q (want %s)",
		key, strings.Join(fallbackKeys(), ", "))
}

// fallbackKeys lists every reason key in bucket order.
func fallbackKeys() []string {
	keys := make([]string, NumFallbackReasons)
	for r := FallbackReason(0); int(r) < NumFallbackReasons; r++ {
		keys[r] = r.String()
	}
	return keys
}
