package telemetry

import (
	"io"
	"log/slog"
)

// NewLogger builds the structured logger used by every binary and the
// sweepd fleet: a JSON handler when jsonMode is set (machine-ingestable,
// one object per line) and a plain text handler otherwise. The given
// attrs — typically the run ID, and for workers the owner — are attached
// to every record so fleet logs can be joined against snapshots and the
// results store by run_id alone.
func NewLogger(w io.Writer, jsonMode bool, attrs ...slog.Attr) *slog.Logger {
	var h slog.Handler
	if jsonMode {
		h = slog.NewJSONHandler(w, nil)
	} else {
		h = slog.NewTextHandler(w, &slog.HandlerOptions{
			ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
				// Timestamps in text mode are console noise and make test
				// output nondeterministic; JSON mode keeps them for ingestion.
				if a.Key == slog.TimeKey && len(groups) == 0 {
					return slog.Attr{}
				}
				return a
			},
		})
	}
	if len(attrs) > 0 {
		h = h.WithAttrs(attrs)
	}
	return slog.New(h)
}
