package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// DirName is the telemetry subdirectory of a sweep directory: each
// worker persists (and re-persists) its own snapshot there, so a
// crashed fleet leaves its last observed state behind for post-mortem
// reads, and the coordinator's /metrics endpoint serves the merged view.
const DirName = "telemetry"

// Dir returns the telemetry directory under a sweep root.
func Dir(root string) string { return filepath.Join(root, DirName) }

// WriteSnapshot atomically persists s as dir/<name>.json (temp +
// rename), creating dir as needed. Each writer owns its name — workers
// use their owner ID — so persistence is single-writer per file, like
// the results store's shard files.
func WriteSnapshot(dir, name string, s Snapshot) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("telemetry: persist: %w", err)
	}
	data, err := s.MarshalCanonical()
	if err != nil {
		return err
	}
	final := filepath.Join(dir, name+".json")
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("telemetry: persist: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("telemetry: persist: %w", err)
	}
	return nil
}

// ReadSnapshot loads one persisted snapshot document.
func ReadSnapshot(path string) (Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("telemetry: parse %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return Snapshot{}, fmt.Errorf("telemetry: %s: %w", path, err)
	}
	return s, nil
}

// LoadDir merges every *.json snapshot under dir (sorted name order, so
// the merge is deterministic) and reports how many documents it merged.
// A missing directory is an empty fleet, not an error — the coordinator
// can serve /metrics before any worker has persisted.
func LoadDir(dir string) (Snapshot, int, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return Snapshot{Schema: SnapshotSchema}, 0, nil
	}
	if err != nil {
		return Snapshot{}, 0, fmt.Errorf("telemetry: load %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	merged := Snapshot{Schema: SnapshotSchema}
	n := 0
	for _, name := range names {
		s, err := ReadSnapshot(filepath.Join(dir, name))
		if err != nil {
			return Snapshot{}, 0, err
		}
		merged = merged.Merge(s)
		n++
	}
	return merged, n, nil
}
