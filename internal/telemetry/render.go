package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// RenderSummary renders a snapshot as the human-readable summary shared
// by `pmureport -telemetry` and the pmubench/pmuprof end-of-run prints,
// so every surface describes a run with the same numbers and vocabulary.
// Sections with no observations are omitted.
func RenderSummary(s Snapshot) string {
	var b strings.Builder
	if s.RunID != "" {
		fmt.Fprintf(&b, "run %s\n", s.RunID)
	}

	e := s.Engine
	var runs uint64
	for _, v := range e.Runs {
		runs += v
	}
	if runs > 0 || e.Strides > 0 || e.EventInstrs > 0 {
		fmt.Fprintf(&b, "engine: %d runs (%s)\n", runs, countsLine(e.Runs))
		total := e.StrideInstrs + e.EventInstrs
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(e.StrideInstrs) / float64(total)
		}
		fmt.Fprintf(&b, "  instructions: %d fast-path (%.1f%%) in %d strides, %d event-mode\n",
			e.StrideInstrs, pct, e.Strides, e.EventInstrs)
		fmt.Fprintf(&b, "  fused pairs: %d\n", e.FusedPairs)
		fmt.Fprintf(&b, "  fallbacks: %d (%s)\n", e.FallbackTotal, countsLine(e.Fallbacks))
	}

	sw := s.Sweep
	if sw.CellsMeasured+sw.CellsStored+sw.RefsMeasured+sw.RefsServed > 0 {
		fmt.Fprintf(&b, "sweep: %d cells measured, %d served from store; %d refs measured, %d served from memo\n",
			sw.CellsMeasured, sw.CellsStored, sw.RefsMeasured, sw.RefsServed)
		if h := sw.CellWallNs; h.Count > 0 {
			mean := time.Duration(h.SumNs / h.Count)
			fmt.Fprintf(&b, "  cell wall time: mean %v, p50 ~%v, p99 ~%v over %d cells\n",
				mean.Round(time.Microsecond), h.quantile(0.50), h.quantile(0.99), h.Count)
		}
	}

	f := s.Fleet
	if f.LeasesAcquired+f.ShardsCompleted+f.Heartbeats > 0 {
		fmt.Fprintf(&b, "fleet: %d workers, %d leases (%d steals), %d shards completed\n",
			f.Workers, f.LeasesAcquired, f.LeaseSteals, f.ShardsCompleted)
		if f.Heartbeats > 0 {
			fmt.Fprintf(&b, "  heartbeats: %d, lag mean %v max %v\n", f.Heartbeats,
				time.Duration(f.HeartbeatLagSumNs/f.Heartbeats).Round(time.Microsecond),
				time.Duration(f.HeartbeatLagMaxNs).Round(time.Microsecond))
		}
	}

	if b.Len() == 0 {
		return "no telemetry recorded\n"
	}
	return b.String()
}

// countsLine formats a counter map as "k=v" pairs in sorted key order,
// skipping zero entries; "none" if all are zero.
func countsLine(m map[string]uint64) string {
	keys := make([]string, 0, len(m))
	for k, v := range m {
		if v != 0 {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return "none"
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, m[k])
	}
	return strings.Join(parts, " ")
}

// quantile estimates a histogram quantile as the upper bound of the
// bucket containing it — coarse by design, since bucket edges are the
// only resolution the format keeps.
func (h HistStats) quantile(q float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	target := uint64(q * float64(h.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			if i < len(h.UpperBoundsNs) {
				return time.Duration(h.UpperBoundsNs[i])
			}
			break
		}
	}
	if n := len(h.UpperBoundsNs); n > 0 {
		return time.Duration(h.UpperBoundsNs[n-1])
	}
	return 0
}
