// Package sampling is the event-based-sampling engine: it programs a
// simulated PMU according to one of the paper's sampling methods (Table 3)
// and collects samples from a workload run on a given machine.
//
// This package, together with internal/profile and internal/lbr, is the
// reproduction of the paper's primary contribution: a harness that
// measures how method choices (event precision, period primality, period
// randomization, LBR usage) change basic-block profile accuracy.
package sampling

import (
	"fmt"

	"pmutrust/internal/machine"
	"pmutrust/internal/pmu"
	"pmutrust/internal/stats"
)

// IPFix selects the sample-address correction applied during attribution.
type IPFix uint8

const (
	// FixNone attributes the recorded IP as-is.
	FixNone IPFix = iota
	// FixLBRTop undoes the precise-mechanism IP+1 using the top LBR
	// entry: if the recorded IP equals the most recent branch target, the
	// trigger was the branch source; otherwise it was the previous
	// sequential instruction (§6.2, Table 3 "IP+1 offset fix").
	FixLBRTop
)

// String returns the fix name.
func (f IPFix) String() string {
	switch f {
	case FixNone:
		return "none"
	case FixLBRTop:
		return "lbr-top"
	default:
		return "unknown"
	}
}

// PeriodKind distinguishes round from prime sampling periods.
type PeriodKind uint8

const (
	// PeriodRound uses the base period as-is (e.g. 2,000,000).
	PeriodRound PeriodKind = iota
	// PeriodPrime uses the smallest prime >= base (e.g. 2,000,003).
	PeriodPrime
)

// String returns the kind name.
func (k PeriodKind) String() string {
	switch k {
	case PeriodRound:
		return "round"
	case PeriodPrime:
		return "prime"
	default:
		return "unknown"
	}
}

// Method is one row of the paper's Table 3: a complete description of how
// to sample and how to turn the samples into a basic-block profile.
type Method struct {
	// Key is the short stable identifier used in tables and flags.
	Key string
	// Name is the human-readable method name from Table 3.
	Name string
	// Event is the counted event.
	Event pmu.Event
	// Precision is the capture mechanism requested. The engine lowers it
	// to what the machine supports (see Resolve).
	Precision pmu.Precision
	// PeriodKind selects round or prime periods.
	PeriodKind PeriodKind
	// Randomize requests software period randomization.
	Randomize bool
	// UseLBRStack makes profile construction consume full LBR stacks
	// (the "LBR method"); the PMI address is ignored.
	UseLBRStack bool
	// Adaptive enables perf-style frequency mode: the period is retuned
	// after every sample to hold a constant time between samples. Not a
	// Table 3 row — mainline perf's default behaviour, provided for the
	// freq-vs-fixed experiment (A7).
	Adaptive bool
	// Fix is the attribution-time IP correction.
	Fix IPFix
	// Comment is the Table 3 "Comments" column.
	Comment string
	// Drawback is the Table 3 "Drawbacks" column.
	Drawback string
}

// NeedsLBR reports whether the method requires an LBR facility.
func (m Method) NeedsLBR() bool { return m.UseLBRStack || m.Fix == FixLBRTop }

// String implements fmt.Stringer.
func (m Method) String() string { return m.Key }

// Registry returns the paper's method taxonomy (Table 3), leftmost
// (classic) to rightmost (LBR), in the order the results tables use.
func Registry() []Method {
	return []Method{
		{
			Key:        "classic",
			Name:       "Default (classic)",
			Event:      pmu.EvInstRetired,
			Precision:  pmu.Imprecise,
			PeriodKind: PeriodRound,
			Comment:    "Used by default in many tools. Uses a fixed-function counter to free up general counters.",
			Drawback:   "The period is fixed and round which increases the risk of synchronization; the hardware event is imprecise.",
		},
		{
			Key:        "precise",
			Name:       "Precise event",
			Event:      pmu.EvInstRetired,
			Precision:  pmu.PrecisePEBS,
			PeriodKind: PeriodRound,
			Comment:    "Uses a precise mechanism to capture the event location (IP+1).",
			Drawback:   "The distribution of samples is not guaranteed.",
		},
		{
			Key:        "precise+rand",
			Name:       "Precise event with randomization",
			Event:      pmu.EvInstRetired,
			Precision:  pmu.PrecisePEBS,
			PeriodKind: PeriodRound,
			Randomize:  true,
			Comment:    "A randomized sampling period to avoid synchronization risk.",
			Drawback:   "The distribution of samples is not guaranteed.",
		},
		{
			Key:        "precise+prime",
			Name:       "Precise event with prime period",
			Event:      pmu.EvInstRetired,
			Precision:  pmu.PrecisePEBS,
			PeriodKind: PeriodPrime,
			Comment:    "Prime periods reduce resonance which leads to improved accuracy.",
			Drawback:   "Lack of randomization; overall low accuracy in cases like the Latency-Biased kernel.",
		},
		{
			Key:        "precise+prime+rand",
			Name:       "Precise event with randomized prime period",
			Event:      pmu.EvInstRetired,
			Precision:  pmu.PrecisePEBS,
			PeriodKind: PeriodPrime,
			Randomize:  true,
			Comment:    "Randomization applied on the prime period further improves accuracy.",
			Drawback:   "Still overall low accuracy in some cases.",
		},
		{
			Key:        "pdir+ipfix",
			Name:       "Precise event with distribution fix plus IP+1 offset fix",
			Event:      pmu.EvInstRetired,
			Precision:  pmu.PreciseDist,
			PeriodKind: PeriodPrime,
			Randomize:  true,
			Fix:        FixLBRTop,
			Comment:    "The top address from the LBR backtrace determines which basic block the trigger occurred in, fixing IP+1.",
			Drawback:   "Good for large basic blocks; some inaccuracies for small ones.",
		},
		{
			Key:         "lbr",
			Name:        "Last Branch Record",
			Event:       pmu.EvBrTaken,
			Precision:   pmu.Imprecise,
			PeriodKind:  PeriodPrime,
			UseLBRStack: true,
			Comment:     "Full LBR-based basic block execution count accounting.",
			Drawback:    "Per-block errors can still reach 30-50% for some blocks; collection and post-processing overhead.",
		},
	}
}

// FreqMode returns the perf-default frequency-mode variant of the classic
// method: imprecise event, period retuned to a constant sample rate. It
// is not part of Table 3; experiment A7 contrasts it with fixed periods.
func FreqMode() Method {
	return Method{
		Key:        "freq",
		Name:       "Frequency mode (perf default)",
		Event:      pmu.EvInstRetired,
		Precision:  pmu.Imprecise,
		PeriodKind: PeriodRound,
		Adaptive:   true,
		Comment:    "perf -F style: period feedback targets a constant time between samples (~1ms on hardware).",
		Drawback:   "Sampling becomes time-uniform: the profile measures cycles, not instruction counts, biasing blocks by their CPI.",
	}
}

// MethodByKey returns the registry method with the given key.
func MethodByKey(key string) (Method, error) {
	for _, m := range Registry() {
		if m.Key == key {
			return m, nil
		}
	}
	return Method{}, fmt.Errorf("sampling: unknown method %q", key)
}

// Resolve lowers a method onto a machine, returning the effective method
// and whether the machine can run it at all.
//
// Lowering mirrors §4.2 of the paper:
//   - PEBS/PDIR on AMD degrade to IBS (the only precise mechanism there),
//     which counts *uops* rather than instructions, and — being a
//     hardware facility — applies 4-LSB hardware period randomization
//     whenever randomization is requested (software randomization was
//     unavailable in the AMD driver).
//   - PDIR on Westmere degrades to plain PEBS (no PREC_DIST event).
//   - LBR methods and the LBR-top IP fix require an LBR facility; AMD
//     cannot run them.
func Resolve(m Method, mach machine.Machine) (Method, bool) {
	switch m.Precision {
	case pmu.PrecisePEBS, pmu.PreciseDist:
		if mach.Vendor == machine.AMD {
			if !mach.HasIBS {
				return m, false
			}
			m.Precision = pmu.PreciseIBS
			m.Event = pmu.EvUopsRetired
		} else if m.Precision == pmu.PreciseDist && !mach.HasPDIR {
			m.Precision = pmu.PrecisePEBS
		}
	case pmu.PreciseIBS:
		if !mach.HasIBS {
			return m, false
		}
	}
	// On hardware with the §6.2 exact-IP fix, precise records already
	// carry the trigger IP: the LBR-based software fix is unnecessary
	// (and would mis-correct), so it is dropped — along with the LBR
	// capture it required.
	if mach.HasHWIPFix && m.Fix == FixLBRTop {
		m.Fix = FixNone
	}
	if m.NeedsLBR() && !mach.HasLBR {
		return m, false
	}
	return m, true
}

// EffectivePeriod computes the period the PMU is programmed with: the base
// adjusted for kind (prime periods take the next prime >= base) and for
// the event unit (uop-based events scale the period by the typical
// uops-per-instruction ratio so sample counts stay comparable).
func EffectivePeriod(m Method, base uint64) uint64 {
	p := base
	switch m.Event {
	case pmu.EvUopsRetired:
		// Tools using uop events scale the period by an assumed
		// uops-per-instruction ratio to keep the sampling rate similar.
		// 1.25 is the conventional estimate.
		p = p * 5 / 4
	case pmu.EvBrTaken:
		// Taken-branch periods are scaled by the typical enterprise
		// instructions-per-taken-branch ratio (~8, within the 6-12 band
		// of Yasin et al. [13]) so the PMI rate matches the other
		// methods.
		p = base / 8
		if p == 0 {
			p = 1
		}
	}
	if m.PeriodKind == PeriodPrime {
		p = stats.NextPrime(p)
	}
	return p
}
