package sampling_test

// Grid-level engine equivalence: every (workload × machine × method) cell
// of the reproduction must produce bit-identical Runs — samples, LBR
// contents, counters, cpu.Result — under the interpreter and the fast
// engine. EngineBoth performs the diff internally and fails the collection
// on any divergence, so the assertion here is simply that collection
// succeeds.

import (
	"errors"
	"testing"

	"pmutrust/internal/cpu"
	"pmutrust/internal/machine"
	"pmutrust/internal/pmu"
	"pmutrust/internal/program"
	"pmutrust/internal/sampling"
	"pmutrust/internal/workloads"
)

// gridMethods returns Table 3 plus the frequency-mode variant.
func gridMethods() []sampling.Method {
	return append(sampling.Registry(), sampling.FreqMode())
}

// TestEngineGridBitIdentical sweeps the small-scale grid under EngineBoth.
func TestEngineGridBitIdentical(t *testing.T) {
	specs := workloads.Kernels()
	if !testing.Short() {
		specs = append(specs, workloads.Apps()...)
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			p := spec.Build(0.25)
			for _, mach := range machine.All() {
				for _, m := range gridMethods() {
					if _, ok := sampling.Resolve(m, mach); !ok {
						continue
					}
					_, err := sampling.Collect(p, mach, m, sampling.Options{
						PeriodBase: 1000,
						Seed:       42,
						Engine:     sampling.EngineBoth,
					})
					if err != nil {
						t.Errorf("%s/%s/%s: %v", spec.Name, mach.Name, m.Key, err)
					}
				}
			}
		})
	}
}

// TestEngineGridFuzzPrograms runs EngineBoth over randomized programs too:
// the workload grid only covers shapes humans wrote.
func TestEngineGridFuzzPrograms(t *testing.T) {
	n := uint64(60)
	if testing.Short() {
		n = 15
	}
	cfg := program.DefaultGenConfig()
	mach := machine.IvyBridge()
	for seed := uint64(0); seed < n; seed++ {
		p := program.Random(seed, cfg)
		for _, m := range gridMethods() {
			if _, ok := sampling.Resolve(m, mach); !ok {
				continue
			}
			_, err := sampling.Collect(p, mach, m, sampling.Options{
				PeriodBase: 200,
				Seed:       seed,
				Engine:     sampling.EngineBoth,
			})
			if err != nil {
				t.Fatalf("seed %d method %s: %v", seed, m.Key, err)
			}
		}
	}
}

// muxGrid returns the event-list configurations the multiplexed engine
// equivalence sweeps run: within-budget, overcommitted round-robin at two
// timeslices, and the starving priority policy.
func muxGrid() []struct {
	Name      string
	Events    []pmu.Event
	Timeslice uint64
	Policy    pmu.MuxPolicy
} {
	menu := []pmu.Event{
		pmu.EvInstRetired, pmu.EvBrTaken, pmu.EvLoad, pmu.EvStore, pmu.EvCondBr,
		pmu.EvUopsRetired, pmu.EvFPOp, pmu.EvBrMispred, pmu.EvCall, pmu.EvRet,
	}
	return []struct {
		Name      string
		Events    []pmu.Event
		Timeslice uint64
		Policy    pmu.MuxPolicy
	}{
		{"fits", menu[:3], 0, pmu.MuxRoundRobin},
		{"rr-n6", menu[:6], 0, pmu.MuxRoundRobin},
		{"rr-n10-short-slice", menu, 500, pmu.MuxRoundRobin},
		{"priority-n8", menu[:8], 0, pmu.MuxPriority},
	}
}

// TestEngineMuxGridBitIdentical: multiplexed collections — samples AND
// scaled counts — must be bit-identical between the engines over the
// event-list grid on every machine (the EngineBoth path diffs Counts and
// MuxRotations through DiffRuns).
func TestEngineMuxGridBitIdentical(t *testing.T) {
	specs := workloads.Kernels()
	if testing.Short() {
		specs = specs[:2]
	}
	classic, err := sampling.MethodByKey("classic")
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			p := spec.Build(0.25)
			for _, mach := range machine.All() {
				for _, mc := range muxGrid() {
					run, err := sampling.Collect(p, mach, classic, sampling.Options{
						PeriodBase:         1000,
						Seed:               42,
						Engine:             sampling.EngineBoth,
						Events:             mc.Events,
						MuxTimesliceCycles: mc.Timeslice,
						MuxPolicy:          mc.Policy,
					})
					if err != nil {
						t.Errorf("%s/%s/%s: %v", spec.Name, mach.Name, mc.Name, err)
						continue
					}
					if len(run.Counts) != len(mc.Events) {
						t.Errorf("%s/%s/%s: %d counts for %d events",
							spec.Name, mach.Name, mc.Name, len(run.Counts), len(mc.Events))
					}
				}
			}
		})
	}
}

// TestCollectMaxInstrs is the fast-path stride-overshoot regression: with
// a MaxInstrs bound, both engines must cut the run at exactly the same
// instruction with the same wrapped cpu.ErrInstrLimit — a stride must
// never run past the budget before the limit is noticed.
func TestCollectMaxInstrs(t *testing.T) {
	p := workloads.MustBuild("G4Box", 0.25)
	mach := machine.IvyBridge()
	m, err := sampling.MethodByKey("classic")
	if err != nil {
		t.Fatal(err)
	}
	for _, limit := range []uint64{1, 500, 12_345} {
		var errs [2]error
		for i, eng := range []sampling.EngineMode{sampling.EngineInterp, sampling.EngineFast} {
			_, err := sampling.Collect(p, mach, m, sampling.Options{
				PeriodBase: 100,
				Seed:       1,
				MaxInstrs:  limit,
				Engine:     eng,
			})
			if !errors.Is(err, cpu.ErrInstrLimit) {
				t.Fatalf("limit %d engine %s: err = %v, want ErrInstrLimit", limit, eng, err)
			}
			errs[i] = err
		}
		if errs[0].Error() != errs[1].Error() {
			t.Fatalf("limit %d: error text diverges:\n  interp %q\n  fast   %q",
				limit, errs[0], errs[1])
		}
		// EngineBoth agrees with itself on limited runs too (identical
		// errors are not a divergence).
		_, err := sampling.Collect(p, mach, m, sampling.Options{
			PeriodBase: 100, Seed: 1, MaxInstrs: limit, Engine: sampling.EngineBoth,
		})
		if !errors.Is(err, cpu.ErrInstrLimit) {
			t.Fatalf("limit %d engine both: err = %v, want ErrInstrLimit", limit, err)
		}
	}
}

// TestDiffOutcome pins the comparison protocol shared by Collect's
// EngineBoth path and the ablation self-check: error-parity mismatches
// and error-text mismatches are divergences, and runs that failed with
// identical errors still have their partial streams diffed.
func TestDiffOutcome(t *testing.T) {
	mkRun := func(samples int) *sampling.Run {
		r := &sampling.Run{CPU: cpu.Result{Instructions: 10, Cycles: 20}}
		for i := 0; i < samples; i++ {
			r.Samples = append(r.Samples, pmuSample(uint32(i)))
		}
		return r
	}
	limitErr := errors.New("limit hit")

	if err := sampling.DiffOutcome(mkRun(2), nil, mkRun(2), nil); err != nil {
		t.Errorf("identical successful runs: %v", err)
	}
	if err := sampling.DiffOutcome(mkRun(2), limitErr, mkRun(2), nil); err == nil {
		t.Error("error-parity mismatch not reported")
	}
	if err := sampling.DiffOutcome(mkRun(2), limitErr, mkRun(2), errors.New("other")); err == nil {
		t.Error("error-text mismatch not reported")
	}
	if err := sampling.DiffOutcome(mkRun(2), limitErr, mkRun(2), errors.New("limit hit")); err != nil {
		t.Errorf("identically failing identical runs: %v", err)
	}
	// The regression the helper exists for: identical errors must not
	// mask a divergent partial stream.
	if err := sampling.DiffOutcome(mkRun(2), limitErr, mkRun(3), errors.New("limit hit")); err == nil {
		t.Error("divergent partial streams behind identical errors not reported")
	}
}

// pmuSample builds a minimal distinct sample for DiffOutcome tests.
func pmuSample(ip uint32) pmu.Sample {
	return pmu.Sample{IP: ip, TriggerIP: ip, Cycle: uint64(ip) + 1, Seq: uint64(ip) + 1, Period: 100}
}

// TestEngineByName pins the flag spellings.
func TestEngineByName(t *testing.T) {
	for _, tc := range []struct {
		name string
		want sampling.EngineMode
		ok   bool
	}{
		{"fast", sampling.EngineFast, true},
		{"interp", sampling.EngineInterp, true},
		{"both", sampling.EngineBoth, true},
		{"turbo", 0, false},
	} {
		got, err := sampling.EngineByName(tc.name)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("EngineByName(%q) = %v, %v", tc.name, got, err)
		}
	}
}
