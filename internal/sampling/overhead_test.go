package sampling

import (
	"math"
	"testing"

	"pmutrust/internal/cpu"
	"pmutrust/internal/machine"
)

func TestSampleCostCycles(t *testing.T) {
	mach := machine.IvyBridge()
	mkRun := func(key string) *Run {
		m, err := MethodByKey(key)
		if err != nil {
			t.Fatal(err)
		}
		resolved, _ := Resolve(m, mach)
		return &Run{Machine: mach, Method: resolved}
	}
	plain := mkRun("precise").SampleCostCycles()
	fixed := mkRun("pdir+ipfix").SampleCostCycles()
	full := mkRun("lbr").SampleCostCycles()
	if plain != mach.PMICostCycles {
		t.Errorf("plain cost = %d, want %d", plain, mach.PMICostCycles)
	}
	if fixed != mach.PMICostCycles+mach.LBRReadCostCycles {
		t.Errorf("ipfix cost = %d", fixed)
	}
	if full != mach.PMICostCycles+uint64(mach.LBRDepth)*mach.LBRReadCostCycles {
		t.Errorf("full-LBR cost = %d", full)
	}
	if !(plain < fixed && fixed < full) {
		t.Error("cost ordering broken")
	}
}

func TestOverheadAtHWPeriod(t *testing.T) {
	mach := machine.IvyBridge()
	m, _ := MethodByKey("precise")
	resolved, _ := Resolve(m, mach)
	run := &Run{
		Machine: mach,
		Method:  resolved,
		CPU:     cpu.Result{Instructions: 1_000_000, Cycles: 1_000_000}, // CPI 1
	}
	// At period 2M and CPI 1: cost/(cost+2M).
	cost := float64(mach.PMICostCycles)
	want := cost / (cost + 2_000_000)
	if got := run.OverheadAtHWPeriod(2_000_000); math.Abs(got-want) > 1e-12 {
		t.Errorf("overhead = %v, want %v", got, want)
	}
	// Degenerate inputs.
	if run.OverheadAtHWPeriod(0) != 0 {
		t.Error("zero period overhead")
	}
	empty := &Run{Machine: mach, Method: resolved}
	if empty.OverheadAtHWPeriod(1000) != 0 {
		t.Error("zero-instruction overhead")
	}
	// Monotone: longer periods, less overhead.
	if run.OverheadAtHWPeriod(1_000_000) <= run.OverheadAtHWPeriod(4_000_000) {
		t.Error("overhead not monotone in period")
	}
}
