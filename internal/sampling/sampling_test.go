package sampling

import (
	"errors"
	"testing"

	"pmutrust/internal/machine"
	"pmutrust/internal/pmu"
	"pmutrust/internal/program"
	"pmutrust/internal/stats"
)

func TestRegistryMatchesTable3(t *testing.T) {
	reg := Registry()
	wantKeys := []string{"classic", "precise", "precise+rand", "precise+prime",
		"precise+prime+rand", "pdir+ipfix", "lbr"}
	if len(reg) != len(wantKeys) {
		t.Fatalf("registry size = %d", len(reg))
	}
	for i, want := range wantKeys {
		m := reg[i]
		if m.Key != want {
			t.Errorf("method %d = %s, want %s", i, m.Key, want)
		}
		if m.Name == "" || m.Comment == "" || m.Drawback == "" {
			t.Errorf("%s missing Table 3 text", m.Key)
		}
	}
	// Spot-check the Table 3 semantics.
	classic := reg[0]
	if classic.Precision != pmu.Imprecise || classic.PeriodKind != PeriodRound || classic.Randomize {
		t.Error("classic method parameters wrong")
	}
	pdir := reg[5]
	if pdir.Precision != pmu.PreciseDist || pdir.Fix != FixLBRTop || pdir.PeriodKind != PeriodPrime {
		t.Error("pdir+ipfix parameters wrong")
	}
	lbrM := reg[6]
	if !lbrM.UseLBRStack || lbrM.Event != pmu.EvBrTaken {
		t.Error("lbr parameters wrong")
	}
}

func TestMethodByKey(t *testing.T) {
	m, err := MethodByKey("precise+prime")
	if err != nil || m.PeriodKind != PeriodPrime {
		t.Errorf("MethodByKey: %v %v", m, err)
	}
	if _, err := MethodByKey("bogus"); err == nil {
		t.Error("bogus key accepted")
	}
}

func TestResolveLowering(t *testing.T) {
	amd := machine.MagnyCours()
	wsm := machine.Westmere()
	ivb := machine.IvyBridge()

	// PEBS on AMD lowers to IBS with uop event.
	precise, _ := MethodByKey("precise")
	r, ok := Resolve(precise, amd)
	if !ok || r.Precision != pmu.PreciseIBS || r.Event != pmu.EvUopsRetired {
		t.Errorf("precise on AMD = %+v ok=%v", r, ok)
	}
	// PDIR on Westmere lowers to PEBS... but pdir+ipfix needs LBR, which
	// Westmere has, so it stays runnable with PEBS precision.
	pdir, _ := MethodByKey("pdir+ipfix")
	r, ok = Resolve(pdir, wsm)
	if !ok || r.Precision != pmu.PrecisePEBS {
		t.Errorf("pdir on Westmere = %+v ok=%v", r, ok)
	}
	// PDIR on IvyBridge stays PDIR.
	r, ok = Resolve(pdir, ivb)
	if !ok || r.Precision != pmu.PreciseDist {
		t.Errorf("pdir on IvyBridge = %+v ok=%v", r, ok)
	}
	// LBR methods are impossible on AMD.
	lbrM, _ := MethodByKey("lbr")
	if _, ok := Resolve(lbrM, amd); ok {
		t.Error("lbr resolved on MagnyCours")
	}
	if _, ok := Resolve(pdir, amd); ok {
		t.Error("pdir+ipfix (needs LBR) resolved on MagnyCours")
	}
	// Everything resolves on IvyBridge.
	for _, m := range Registry() {
		if _, ok := Resolve(m, ivb); !ok {
			t.Errorf("%s does not resolve on IvyBridge", m.Key)
		}
	}
}

func TestEffectivePeriod(t *testing.T) {
	precise, _ := MethodByKey("precise")
	if got := EffectivePeriod(precise, 2000); got != 2000 {
		t.Errorf("round period = %d", got)
	}
	prime, _ := MethodByKey("precise+prime")
	if got := EffectivePeriod(prime, 2000); got != 2003 {
		t.Errorf("prime period = %d", got)
	}
	if got := EffectivePeriod(prime, 2_000_000); got != 2_000_003 {
		t.Errorf("paper prime period = %d", got)
	}
	// Uop events scale by 1.25.
	ibs := prime
	ibs.Event = pmu.EvUopsRetired
	if got := EffectivePeriod(ibs, 2000); got != stats.NextPrime(2500) {
		t.Errorf("uop period = %d", got)
	}
	// Taken-branch events scale by 1/8.
	lbrM, _ := MethodByKey("lbr")
	if got := EffectivePeriod(lbrM, 2000); got != stats.NextPrime(250) {
		t.Errorf("taken period = %d", got)
	}
	if got := EffectivePeriod(lbrM, 4); got < 1 {
		t.Errorf("tiny period = %d", got)
	}
}

// loopProgram is a small deterministic workload for collection tests.
func loopProgram(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder("loop")
	f := b.Func("main")
	e := f.Block("entry")
	e.Movi(1, 50_000)
	l := f.Block("loop")
	l.Addi(2, 2, 1)
	l.Xor(3, 3, 2)
	l.Addi(1, 1, -1)
	l.Cmpi(1, 0)
	l.Jnz("loop")
	f.Block("exit").Halt()
	return b.MustBuild()
}

func TestCollectBasics(t *testing.T) {
	p := loopProgram(t)
	m, _ := MethodByKey("precise+prime")
	run, err := Collect(p, machine.IvyBridge(), m, Options{PeriodBase: 1000, Seed: 1})
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if run.Period != 1009 {
		t.Errorf("period = %d, want 1009", run.Period)
	}
	if len(run.Samples) == 0 {
		t.Fatal("no samples")
	}
	wantSamples := int(run.CPU.Instructions / run.Period)
	got := len(run.Samples)
	if got < wantSamples-2 || got > wantSamples+2 {
		t.Errorf("samples = %d, want ~%d", got, wantSamples)
	}
	for _, s := range run.Samples {
		if int(s.IP) >= len(p.Code) {
			t.Fatalf("sample IP %d out of code range", s.IP)
		}
	}
}

func TestCollectUnsupported(t *testing.T) {
	p := loopProgram(t)
	m, _ := MethodByKey("lbr")
	_, err := Collect(p, machine.MagnyCours(), m, Options{PeriodBase: 1000, Seed: 1})
	var unsup *ErrUnsupported
	if !errors.As(err, &unsup) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
	if unsup.Machine != "MagnyCours" || unsup.Method != "lbr" {
		t.Errorf("ErrUnsupported fields: %+v", unsup)
	}
}

func TestCollectZeroPeriodRejected(t *testing.T) {
	p := loopProgram(t)
	m, _ := MethodByKey("classic")
	if _, err := Collect(p, machine.IvyBridge(), m, Options{Seed: 1}); err == nil {
		t.Error("zero period accepted")
	}
}

func TestCollectDeterminism(t *testing.T) {
	p := loopProgram(t)
	m, _ := MethodByKey("precise+prime+rand")
	a, err := Collect(p, machine.IvyBridge(), m, Options{PeriodBase: 1000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect(p, machine.IvyBridge(), m, Options{PeriodBase: 1000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Samples) != len(b.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		if a.Samples[i].IP != b.Samples[i].IP || a.Samples[i].Cycle != b.Samples[i].Cycle {
			t.Fatalf("sample %d differs", i)
		}
	}
	// Different seed must (with randomization) give a different stream.
	c, err := Collect(p, machine.IvyBridge(), m, Options{PeriodBase: 1000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < len(a.Samples) && i < len(c.Samples); i++ {
		if a.Samples[i].IP != c.Samples[i].IP {
			same = false
			break
		}
	}
	if same && len(a.Samples) == len(c.Samples) {
		t.Error("different seeds produced identical randomized runs")
	}
}

func TestCollectLBRCaptures(t *testing.T) {
	p := loopProgram(t)
	m, _ := MethodByKey("lbr")
	run, err := Collect(p, machine.Westmere(), m, Options{PeriodBase: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Samples) == 0 {
		t.Fatal("no samples")
	}
	for _, s := range run.Samples {
		if len(s.LBR) == 0 {
			t.Fatal("LBR method sample without stack")
		}
		if len(s.LBR) > machine.Westmere().LBRDepth {
			t.Fatalf("stack deeper than hardware: %d", len(s.LBR))
		}
	}
}

func TestAMDRandomizationUsesHW4LSB(t *testing.T) {
	p := loopProgram(t)
	m, _ := MethodByKey("precise+prime+rand")
	run, err := Collect(p, machine.MagnyCours(), m, Options{PeriodBase: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if run.Method.Precision != pmu.PreciseIBS {
		t.Errorf("resolved precision = %s", run.Method.Precision)
	}
	// The displaced-tag model must fire at least sometimes.
	displaced := 0
	for _, s := range run.Samples {
		if s.IP != s.TriggerIP {
			displaced++
		}
	}
	if displaced == 0 {
		t.Error("AMD hw randomization produced no displaced tags")
	}
}

func TestStringersAndHelpers(t *testing.T) {
	if FixNone.String() == "" || FixLBRTop.String() == "" || IPFix(9).String() != "unknown" {
		t.Error("IPFix strings")
	}
	if PeriodRound.String() != "round" || PeriodPrime.String() != "prime" || PeriodKind(9).String() != "unknown" {
		t.Error("PeriodKind strings")
	}
	m, _ := MethodByKey("lbr")
	if !m.NeedsLBR() || m.String() != "lbr" {
		t.Error("method helpers")
	}
	m, _ = MethodByKey("classic")
	if m.NeedsLBR() {
		t.Error("classic needs LBR?")
	}
}
