package sampling

import (
	"fmt"

	"pmutrust/internal/cpu"
	"pmutrust/internal/machine"
	"pmutrust/internal/pmu"
	"pmutrust/internal/program"
	"pmutrust/internal/telemetry"
)

// EngineMode selects which execution engine Collect drives — or both, for
// self-checking runs. The engines are bit-identical (enforced by the
// differential harness), so the mode never changes results, only speed.
type EngineMode uint8

const (
	// EngineFast (the zero value, hence the default) runs the block-stride
	// fast-path executor.
	EngineFast EngineMode = iota
	// EngineInterp runs the per-instruction reference interpreter.
	EngineInterp
	// EngineBoth runs both engines and fails the collection with a
	// divergence error unless every observable — cpu.Result, sample
	// stream, LBR contents, overflow/drop counters, error text — is
	// bit-identical. Twice the cost; meant for CI smoke and debugging.
	EngineBoth
)

// String returns the flag spelling of the mode.
func (e EngineMode) String() string {
	switch e {
	case EngineFast:
		return "fast"
	case EngineInterp:
		return "interp"
	case EngineBoth:
		return "both"
	default:
		return "unknown"
	}
}

// EngineByName parses a -engine flag value.
func EngineByName(name string) (EngineMode, error) {
	switch name {
	case "fast":
		return EngineFast, nil
	case "interp":
		return EngineInterp, nil
	case "both":
		return EngineBoth, nil
	default:
		return EngineFast, fmt.Errorf("sampling: unknown engine %q (want fast, interp or both)", name)
	}
}

// Options controls one collection run.
type Options struct {
	// PeriodBase is the base sampling period in instructions; Table 3's
	// example is 2,000,000 on real hardware. The experiment harness scales
	// it down together with workload sizes (see internal/experiments).
	PeriodBase uint64
	// Seed seeds period randomization. Runs differing only in Seed model
	// the paper's repeated measurements.
	Seed uint64
	// MaxInstrs bounds the simulated run as a safety net (0 = default).
	// The bound is exact under both engines: a fast-path stride is capped
	// so it can never overshoot the limit.
	MaxInstrs uint64
	// LBRContention is the fraction of samples whose LBR snapshot is
	// stolen by a concurrent call-stack-mode consumer (§6.2's collision
	// concern). Zero for exclusive LBR ownership.
	LBRContention float64
	// Engine selects the execution engine (default EngineFast).
	Engine EngineMode
	// Events requests additional counting events alongside the sampling
	// method, perf-stat style. When the list exceeds the machine's
	// physical counter budget the virtualized PMU layer (pmu.Mux)
	// time-multiplexes the counters and Run.Counts carries both the exact
	// ground truth and the perf-style scaled estimate per event.
	Events []pmu.Event
	// MuxTimesliceCycles is the multiplexer's rotation timeslice in
	// simulated cycles (0 = pmu.DefaultMuxTimeslice). Ignored without
	// Events.
	MuxTimesliceCycles uint64
	// MuxPolicy selects the multiplexer's rotation policy (default
	// round-robin). Ignored without Events.
	MuxPolicy pmu.MuxPolicy
	// Tenants enables the multi-tenant mode: N simulated programs
	// time-share one simulated core under the timeslice scheduler of
	// internal/sched, each with its own virtualized PMU context. 0 and 1
	// both mean a single exclusive tenant. Collect itself rejects N > 1 —
	// multi-tenant collections go through sched.Collect, which consumes
	// the scheduling fields below (sampling stays import-free of sched).
	Tenants int
	// SchedTimesliceCycles is the scheduler period in simulated cycles:
	// each of the N tenants runs PeriodCycles/N per round, CFS-style, so
	// the context-switch rate grows with the tenant count (0 =
	// sched.DefaultPeriodCycles). Ignored without Tenants > 1.
	SchedTimesliceCycles uint64
	// SchedSwitchCostCycles overrides the machine's context-switch cost
	// (Machine.CtxSwitchCostCycles) for the scheduler's switch-in leak
	// model. Ignored without Tenants > 1.
	SchedSwitchCostCycles uint64
	// Telemetry, when non-nil, receives each run's engine counters and
	// variant at run end. Telemetry observes, never perturbs: it is not
	// part of Run, so bit-identity checks (DiffRuns) never see it, and a
	// nil sink costs one branch per run.
	Telemetry *telemetry.Sink
}

// SchedStats reports the scheduling noise one tenant's run absorbed under
// the multi-tenant scheduler (internal/sched); nil Run.Sched means the
// run was collected single-tenant. Plain data so DiffRuns can compare it
// without importing sched.
type SchedStats struct {
	// Tenants is the tenant count of the collection; Tenant is this run's
	// index within it.
	Tenants int `json:"tenants"`
	Tenant  int `json:"tenant"`
	// Switches is the number of scheduler deadlines serviced (context
	// switches this tenant was descheduled at).
	Switches uint64 `json:"switches"`
	// DrainedInFlight counts preemptions that caught an in-flight capture
	// (pending PMI, armed PEBS window, displaced IBS tag): the tenant
	// lost the sample, and its successor received it as a foreign sample.
	DrainedInFlight uint64 `json:"drained_in_flight"`
	// ForeignSamples counts samples in this run's stream that belong to
	// the predecessor tenant (its drained in-flight captures delivered
	// after the switch, attributed here at this tenant's resume IP).
	ForeignSamples uint64 `json:"foreign_samples"`
	// KernelLeakInstrs is the total number of kernel switch-path
	// instructions that retired with this tenant's counters live.
	KernelLeakInstrs uint64 `json:"kernel_leak_instrs"`
	// KernelSamplesLost counts counter overflows that landed inside a
	// kernel leak window: the PMI sampled kernel code, invisible to a
	// user-space profile, so the sample is gone.
	KernelSamplesLost uint64 `json:"kernel_samples_lost"`
	// Migrations counts machine-model migrations applied to this tenant.
	Migrations uint64 `json:"migrations"`
}

// Run is the outcome of sampling one workload on one machine with one
// method.
type Run struct {
	// Machine is the platform the run executed on.
	Machine machine.Machine
	// Requested is the method as requested (registry form).
	Requested Method
	// Method is the method after lowering onto the machine.
	Method Method
	// Period is the effective programmed period in event units.
	Period uint64
	// Samples are the collected PMU samples.
	Samples []pmu.Sample
	// CPU is the hardware-truth run summary.
	CPU cpu.Result
	// Overflows and DroppedPMIs report collection health.
	Overflows, DroppedPMIs uint64
	// Counts holds the multiplexed counting results, in Options.Events
	// order; nil when no counting events were requested.
	Counts []pmu.MuxCount
	// MuxRotations is the number of counter rotations the multiplexer
	// serviced (0 when the request list fits the physical budget).
	MuxRotations uint64
	// Sched reports the scheduling noise absorbed under the multi-tenant
	// scheduler; nil for single-tenant collections.
	Sched *SchedStats
}

// SampleCostCycles returns the modelled cost of collecting one sample:
// one PMI (interrupt entry, handler, buffer write) plus, for
// LBR-capturing configurations, the MSR reads for the full stack. The
// constants live on the Machine and follow the Bitzes & Nowak overhead
// study [38] the paper cites for the "overhead (in collection and
// post-processing)" drawback of LBR methods (Table 3).
func (r *Run) SampleCostCycles() uint64 {
	perSample := r.Machine.PMICostCycles
	switch {
	case r.Method.UseLBRStack:
		// Full-stack methods read every LBR entry pair.
		perSample += uint64(r.Machine.LBRDepth) * r.Machine.LBRReadCostCycles
	case r.Method.Fix == FixLBRTop:
		// The IP+1 offset fix needs only the top entry (§6.2 suggests
		// hardware could provide it for free).
		perSample += r.Machine.LBRReadCostCycles
	}
	return perSample
}

// OverheadAtHWPeriod estimates collection overhead as a fraction of total
// runtime when sampling every hwPeriod instructions on real hardware:
// cost / (cost + inter-sample interval), with the interval derived from
// the run's measured cycles-per-instruction.
//
// The hardware period is a parameter because the simulator runs scaled-
// down workloads with proportionally scaled-down periods (DESIGN.md §2
// "Scaling"); overhead, unlike the accuracy error, does not survive that
// scaling and must be evaluated at the deployment period (the paper's
// 2,000,000, or ~1ms of instructions).
func (r *Run) OverheadAtHWPeriod(hwPeriod uint64) float64 {
	if r.CPU.Instructions == 0 || hwPeriod == 0 {
		return 0
	}
	cpi := float64(r.CPU.Cycles) / float64(r.CPU.Instructions)
	interval := float64(hwPeriod) * cpi
	cost := float64(r.SampleCostCycles())
	return cost / (cost + interval)
}

// ErrUnsupported is wrapped in errors returned when a machine cannot run a
// method (e.g. any LBR method on Magny-Cours).
type ErrUnsupported struct {
	Machine string
	Method  string
}

// Error implements error.
func (e *ErrUnsupported) Error() string {
	return fmt.Sprintf("sampling: machine %s does not support method %s", e.Machine, e.Method)
}

// Cell is the lowered per-run configuration Collect programs the PMU
// with: the resolved method, the effective period, the sampling-unit
// config and (when counting events are requested) the multiplexer config
// with the machine's physical counter budget split around the pinned
// sampling counter. It is exported so the multi-tenant scheduler
// (internal/sched) applies exactly the same lowering rules per tenant
// without duplicating them.
type Cell struct {
	// Resolved is the method after lowering onto the machine.
	Resolved Method
	// Period is the effective programmed period in event units.
	Period uint64
	// PMU programs the sampling unit.
	PMU pmu.Config
	// Mux programs the multiplexer; meaningful only when UseMux is set.
	Mux pmu.MuxConfig
	// UseMux reports whether counting events were requested.
	UseMux bool
}

// CounterBudget splits a machine's physical counters around the pinned
// sampling counter: classic imprecise inst_retired sampling rides the
// fixed counter where one exists (Table 3: "Uses a fixed-function counter
// to free up general counters"); precise mechanisms and other events pin
// a general counter. Shared by Collect's mux setup and the scheduler's
// migration mode, which must re-derive the budget on the target machine.
func CounterBudget(mach machine.Machine, resolved Method) (genFree int, fixedFree bool) {
	genFree = mach.NumGenCounters
	fixedFree = mach.HasFixedCounter
	if fixedFree && resolved.Event == pmu.EvInstRetired && resolved.Precision == pmu.Imprecise {
		fixedFree = false
	} else {
		genFree--
	}
	return genFree, fixedFree
}

// PrepareCell lowers (machine, method, options) to the per-run PMU and
// multiplexer configuration — the pure front half of Collect.
func PrepareCell(mach machine.Machine, m Method, opt Options) (Cell, error) {
	resolved, ok := Resolve(m, mach)
	if !ok {
		return Cell{}, &ErrUnsupported{Machine: mach.Name, Method: m.Key}
	}
	if opt.PeriodBase == 0 {
		return Cell{}, fmt.Errorf("sampling: zero period base")
	}
	period := EffectivePeriod(resolved, opt.PeriodBase)

	rand := pmu.RandNone
	if resolved.Randomize {
		switch {
		case resolved.Precision == pmu.PreciseIBS && mach.HasHW4LSBRandom:
			// The AMD driver cannot randomize in software; IBS hardware
			// randomizes the 4 LSBs instead (§4.2).
			rand = pmu.RandHW4LSB
		case mach.HasSWPeriodRandom:
			rand = pmu.RandSoftware
		}
	}

	cell := Cell{
		Resolved: resolved,
		Period:   period,
		PMU: pmu.Config{
			Event:         resolved.Event,
			Precision:     resolved.Precision,
			Period:        period,
			Rand:          rand,
			SkidCycles:    mach.SkidCycles,
			CaptureLBR:    resolved.NeedsLBR(),
			LBRDepth:      mach.LBRDepth,
			Seed:          opt.Seed,
			FreqMode:      resolved.Adaptive,
			LBRContention: opt.LBRContention,
			HWExactIP:     mach.HasHWIPFix,
		},
	}
	if len(opt.Events) > 0 {
		genFree, fixedFree := CounterBudget(mach, resolved)
		cell.UseMux = true
		cell.Mux = pmu.MuxConfig{
			Events:            opt.Events,
			TimesliceCycles:   opt.MuxTimesliceCycles,
			Policy:            opt.MuxPolicy,
			GenCounters:       genFree,
			FixedCounterFree:  fixedFree,
			MaxCyclesPerInstr: mach.CPU.MaxRetireCyclesPerInstr(),
		}
	}
	return cell, nil
}

// Collect runs p on mach while sampling with method m.
func Collect(p *program.Program, mach machine.Machine, m Method, opt Options) (*Run, error) {
	if opt.Tenants > 1 {
		// Multi-tenant collections need the scheduler layer above this
		// package; keeping the rejection here means a stray Tenants value
		// can never silently collect single-tenant.
		return nil, fmt.Errorf("sampling: Options.Tenants = %d: multi-tenant collection goes through sched.Collect", opt.Tenants)
	}
	cell, err := PrepareCell(mach, m, opt)
	if err != nil {
		return nil, err
	}
	resolved, period := cell.Resolved, cell.Period

	// runOnce always returns the Run, even when the cpu run errored — the
	// partial sample stream (and partial multiplexed counts) is what
	// EngineBoth diffs on identically failing runs. Collect's public
	// contract (nil Run on error) is restored by the switch below.
	runOnce := func(eng cpu.Engine) (*Run, error) {
		unit := pmu.New(cell.PMU)
		var mon cpu.Monitor = unit
		var mux *pmu.Mux
		if cell.UseMux {
			mux = pmu.NewMux(cell.Mux, unit)
			mon = mux
		}
		cpuRes, err := cpu.RunEngine(p, mach.CPU, mon, opt.MaxInstrs, eng)
		run := &Run{
			Machine:     mach,
			Requested:   m,
			Method:      resolved,
			Period:      period,
			Samples:     unit.Samples(),
			CPU:         cpuRes,
			Overflows:   unit.Overflows,
			DroppedPMIs: unit.DroppedPMIs,
		}
		if mux != nil {
			run.Counts = mux.Finish(cpuRes.Cycles)
			run.MuxRotations = mux.Rotations
		}
		if sink := opt.Telemetry; sink != nil {
			sink.AddEngine(unit.EngineCounters())
			if eng == cpu.EngineInterp {
				sink.CountRun(telemetry.VariantInterp)
			} else {
				sink.CountRun(cpu.FastVariant(mon).TelemetryVariant())
			}
		}
		if err != nil {
			return run, fmt.Errorf("sampling: run %s on %s: %w", p.Name, mach.Name, err)
		}
		return run, nil
	}

	switch opt.Engine {
	case EngineInterp:
		run, err := runOnce(cpu.EngineInterp)
		if err != nil {
			return nil, err
		}
		return run, nil
	case EngineBoth:
		ir, ierr := runOnce(cpu.EngineInterp)
		fr, ferr := runOnce(cpu.EngineFast)
		if err := DiffOutcome(ir, ierr, fr, ferr); err != nil {
			return nil, fmt.Errorf("engine divergence on %s/%s/%s: %w", p.Name, mach.Name, m.Key, err)
		}
		if ferr != nil {
			return nil, ferr
		}
		return fr, nil
	default:
		run, err := runOnce(cpu.EngineFast)
		if err != nil {
			return nil, err
		}
		return run, nil
	}
}

// DiffOutcome compares two engines' outcomes of the same cell: error
// parity and text first, then every Run observable via DiffRuns —
// including the partial streams of runs that ended in identical errors,
// so a divergence hiding behind a shared failure (e.g. an instruction
// limit) is still caught. Both runs must be non-nil; a is conventionally
// the reference engine's.
func DiffOutcome(a *Run, aErr error, b *Run, bErr error) error {
	switch {
	case (aErr == nil) != (bErr == nil):
		return fmt.Errorf("interp err=%v, fast err=%v", aErr, bErr)
	case aErr != nil && aErr.Error() != bErr.Error():
		return fmt.Errorf("interp error %q vs fast error %q", aErr.Error(), bErr.Error())
	}
	return DiffRuns(a, b)
}

// DiffRuns reports the first observable difference between two runs of the
// same cell, or nil when they are bit-identical. It is the shared
// divergence check behind EngineBoth, the differential tests and the CI
// both-engine smoke sweep.
func DiffRuns(a, b *Run) error {
	if a.CPU != b.CPU {
		return fmt.Errorf("cpu result diverges:\n  a %+v\n  b %+v", a.CPU, b.CPU)
	}
	if a.Period != b.Period {
		return fmt.Errorf("period diverges: %d vs %d", a.Period, b.Period)
	}
	if a.Overflows != b.Overflows || a.DroppedPMIs != b.DroppedPMIs {
		return fmt.Errorf("collection health diverges: overflows %d/%d, dropped %d/%d",
			a.Overflows, b.Overflows, a.DroppedPMIs, b.DroppedPMIs)
	}
	if a.MuxRotations != b.MuxRotations {
		return fmt.Errorf("mux rotations diverge: %d vs %d", a.MuxRotations, b.MuxRotations)
	}
	if (a.Sched == nil) != (b.Sched == nil) {
		return fmt.Errorf("sched stats presence diverges: %+v vs %+v", a.Sched, b.Sched)
	}
	if a.Sched != nil && *a.Sched != *b.Sched {
		return fmt.Errorf("sched stats diverge:\n  a %+v\n  b %+v", *a.Sched, *b.Sched)
	}
	if len(a.Counts) != len(b.Counts) {
		return fmt.Errorf("mux count-list length diverges: %d vs %d", len(a.Counts), len(b.Counts))
	}
	for i := range a.Counts {
		if a.Counts[i] != b.Counts[i] {
			return fmt.Errorf("mux count %d (%s) diverges:\n  a %+v\n  b %+v",
				i, a.Counts[i].Event, a.Counts[i], b.Counts[i])
		}
	}
	if len(a.Samples) != len(b.Samples) {
		return fmt.Errorf("sample count diverges: %d vs %d", len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		sa, sb := a.Samples[i], b.Samples[i]
		if sa.IP != sb.IP || sa.TriggerIP != sb.TriggerIP || sa.Cycle != sb.Cycle ||
			sa.Seq != sb.Seq || sa.Period != sb.Period {
			return fmt.Errorf("sample %d diverges:\n  a %+v\n  b %+v", i, sa, sb)
		}
		if (sa.LBR == nil) != (sb.LBR == nil) || len(sa.LBR) != len(sb.LBR) {
			return fmt.Errorf("sample %d LBR shape diverges: %v vs %v", i, sa.LBR, sb.LBR)
		}
		for j := range sa.LBR {
			if sa.LBR[j] != sb.LBR[j] {
				return fmt.Errorf("sample %d LBR[%d] diverges: %+v vs %+v", i, j, sa.LBR[j], sb.LBR[j])
			}
		}
	}
	return nil
}
