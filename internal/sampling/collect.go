package sampling

import (
	"fmt"

	"pmutrust/internal/cpu"
	"pmutrust/internal/machine"
	"pmutrust/internal/pmu"
	"pmutrust/internal/program"
)

// Options controls one collection run.
type Options struct {
	// PeriodBase is the base sampling period in instructions; Table 3's
	// example is 2,000,000 on real hardware. The experiment harness scales
	// it down together with workload sizes (see internal/experiments).
	PeriodBase uint64
	// Seed seeds period randomization. Runs differing only in Seed model
	// the paper's repeated measurements.
	Seed uint64
	// MaxInstrs bounds the simulated run as a safety net (0 = default).
	MaxInstrs uint64
	// LBRContention is the fraction of samples whose LBR snapshot is
	// stolen by a concurrent call-stack-mode consumer (§6.2's collision
	// concern). Zero for exclusive LBR ownership.
	LBRContention float64
}

// Run is the outcome of sampling one workload on one machine with one
// method.
type Run struct {
	// Machine is the platform the run executed on.
	Machine machine.Machine
	// Requested is the method as requested (registry form).
	Requested Method
	// Method is the method after lowering onto the machine.
	Method Method
	// Period is the effective programmed period in event units.
	Period uint64
	// Samples are the collected PMU samples.
	Samples []pmu.Sample
	// CPU is the hardware-truth run summary.
	CPU cpu.Result
	// Overflows and DroppedPMIs report collection health.
	Overflows, DroppedPMIs uint64
}

// SampleCostCycles returns the modelled cost of collecting one sample:
// one PMI (interrupt entry, handler, buffer write) plus, for
// LBR-capturing configurations, the MSR reads for the full stack. The
// constants live on the Machine and follow the Bitzes & Nowak overhead
// study [38] the paper cites for the "overhead (in collection and
// post-processing)" drawback of LBR methods (Table 3).
func (r *Run) SampleCostCycles() uint64 {
	perSample := r.Machine.PMICostCycles
	switch {
	case r.Method.UseLBRStack:
		// Full-stack methods read every LBR entry pair.
		perSample += uint64(r.Machine.LBRDepth) * r.Machine.LBRReadCostCycles
	case r.Method.Fix == FixLBRTop:
		// The IP+1 offset fix needs only the top entry (§6.2 suggests
		// hardware could provide it for free).
		perSample += r.Machine.LBRReadCostCycles
	}
	return perSample
}

// OverheadAtHWPeriod estimates collection overhead as a fraction of total
// runtime when sampling every hwPeriod instructions on real hardware:
// cost / (cost + inter-sample interval), with the interval derived from
// the run's measured cycles-per-instruction.
//
// The hardware period is a parameter because the simulator runs scaled-
// down workloads with proportionally scaled-down periods (DESIGN.md §2
// "Scaling"); overhead, unlike the accuracy error, does not survive that
// scaling and must be evaluated at the deployment period (the paper's
// 2,000,000, or ~1ms of instructions).
func (r *Run) OverheadAtHWPeriod(hwPeriod uint64) float64 {
	if r.CPU.Instructions == 0 || hwPeriod == 0 {
		return 0
	}
	cpi := float64(r.CPU.Cycles) / float64(r.CPU.Instructions)
	interval := float64(hwPeriod) * cpi
	cost := float64(r.SampleCostCycles())
	return cost / (cost + interval)
}

// ErrUnsupported is wrapped in errors returned when a machine cannot run a
// method (e.g. any LBR method on Magny-Cours).
type ErrUnsupported struct {
	Machine string
	Method  string
}

// Error implements error.
func (e *ErrUnsupported) Error() string {
	return fmt.Sprintf("sampling: machine %s does not support method %s", e.Machine, e.Method)
}

// Collect runs p on mach while sampling with method m.
func Collect(p *program.Program, mach machine.Machine, m Method, opt Options) (*Run, error) {
	resolved, ok := Resolve(m, mach)
	if !ok {
		return nil, &ErrUnsupported{Machine: mach.Name, Method: m.Key}
	}
	if opt.PeriodBase == 0 {
		return nil, fmt.Errorf("sampling: zero period base")
	}
	period := EffectivePeriod(resolved, opt.PeriodBase)

	rand := pmu.RandNone
	if resolved.Randomize {
		switch {
		case resolved.Precision == pmu.PreciseIBS && mach.HasHW4LSBRandom:
			// The AMD driver cannot randomize in software; IBS hardware
			// randomizes the 4 LSBs instead (§4.2).
			rand = pmu.RandHW4LSB
		case mach.HasSWPeriodRandom:
			rand = pmu.RandSoftware
		}
	}

	cfg := pmu.Config{
		Event:         resolved.Event,
		Precision:     resolved.Precision,
		Period:        period,
		Rand:          rand,
		SkidCycles:    mach.SkidCycles,
		CaptureLBR:    resolved.NeedsLBR(),
		LBRDepth:      mach.LBRDepth,
		Seed:          opt.Seed,
		FreqMode:      resolved.Adaptive,
		LBRContention: opt.LBRContention,
		HWExactIP:     mach.HasHWIPFix,
	}
	unit := pmu.New(cfg)

	cpuRes, err := cpu.Run(p, mach.CPU, unit, opt.MaxInstrs)
	if err != nil {
		return nil, fmt.Errorf("sampling: run %s on %s: %w", p.Name, mach.Name, err)
	}
	return &Run{
		Machine:     mach,
		Requested:   m,
		Method:      resolved,
		Period:      period,
		Samples:     unit.Samples(),
		CPU:         cpuRes,
		Overflows:   unit.Overflows,
		DroppedPMIs: unit.DroppedPMIs,
	}, nil
}
