package sampling_test

// Telemetry must observe without perturbing: attaching a Sink may not
// change any run observable under either engine, and the counters it
// gathers must account for every retired instruction with fallback
// buckets that sum exactly to the total number of fallback events.

import (
	"testing"

	"pmutrust/internal/machine"
	"pmutrust/internal/sampling"
	"pmutrust/internal/telemetry"
	"pmutrust/internal/workloads"
)

// TestTelemetryDoesNotPerturb reruns the differential battery with a sink
// attached: EngineBoth diffs the interpreter against the fast engine
// internally, and the run with telemetry must stay bit-identical to the
// run without it.
func TestTelemetryDoesNotPerturb(t *testing.T) {
	specs := workloads.Kernels()
	if testing.Short() {
		specs = specs[:2]
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			p := spec.Build(0.25)
			sink := &telemetry.Sink{}
			for _, mach := range machine.All() {
				for _, m := range gridMethods() {
					if _, ok := sampling.Resolve(m, mach); !ok {
						continue
					}
					bare, err := sampling.Collect(p, mach, m, sampling.Options{
						PeriodBase: 1000,
						Seed:       42,
						Engine:     sampling.EngineFast,
					})
					if err != nil {
						t.Fatalf("%s/%s/%s bare: %v", spec.Name, mach.Name, m.Key, err)
					}
					// Both engines, sink attached — the differential check
					// runs inside Collect.
					observed, err := sampling.Collect(p, mach, m, sampling.Options{
						PeriodBase: 1000,
						Seed:       42,
						Engine:     sampling.EngineBoth,
						Telemetry:  sink,
					})
					if err != nil {
						t.Fatalf("%s/%s/%s with sink: %v", spec.Name, mach.Name, m.Key, err)
					}
					if err := sampling.DiffRuns(bare, observed); err != nil {
						t.Fatalf("%s/%s/%s: telemetry perturbed the run: %v",
							spec.Name, mach.Name, m.Key, err)
					}
				}
			}
			if err := sink.Snapshot("").Validate(); err != nil {
				t.Fatalf("snapshot after battery: %v", err)
			}
		})
	}
}

// TestTelemetryAccountsEveryInstruction: for any single run, fast-path
// stride instructions plus event-mode instructions must equal the
// engine's retired-instruction count exactly, the per-variant run count
// must record the run, and the fallback buckets must sum to the total.
func TestTelemetryAccountsEveryInstruction(t *testing.T) {
	p := workloads.MustBuild("G4Box", 0.25)
	for _, mach := range machine.All() {
		for _, m := range gridMethods() {
			if _, ok := sampling.Resolve(m, mach); !ok {
				continue
			}
			for _, eng := range []sampling.EngineMode{sampling.EngineFast, sampling.EngineInterp} {
				sink := &telemetry.Sink{}
				run, err := sampling.Collect(p, mach, m, sampling.Options{
					PeriodBase: 1000,
					Seed:       7,
					Engine:     eng,
					Telemetry:  sink,
				})
				if err != nil {
					t.Fatalf("%s/%s/%v: %v", mach.Name, m.Key, eng, err)
				}
				snap := sink.Snapshot("")
				if err := snap.Validate(); err != nil {
					t.Fatalf("%s/%s/%v: %v", mach.Name, m.Key, eng, err)
				}
				e := snap.Engine
				if got := e.StrideInstrs + e.EventInstrs; got != run.CPU.Instructions {
					t.Errorf("%s/%s/%v: telemetry saw %d instructions (stride %d + event %d), run retired %d",
						mach.Name, m.Key, eng, got, e.StrideInstrs, e.EventInstrs, run.CPU.Instructions)
				}
				var runs uint64
				for _, v := range e.Runs {
					runs += v
				}
				if runs != 1 {
					t.Errorf("%s/%s/%v: %d runs recorded, want 1 (%v)", mach.Name, m.Key, eng, runs, e.Runs)
				}
				if eng == sampling.EngineInterp {
					if e.Runs["interp"] != 1 {
						t.Errorf("%s/%s: interp run recorded as %v", mach.Name, m.Key, e.Runs)
					}
					if e.Strides != 0 || e.StrideInstrs != 0 {
						t.Errorf("%s/%s: interpreter run recorded strides: %+v", mach.Name, m.Key, e)
					}
				}
			}
		}
	}
}
