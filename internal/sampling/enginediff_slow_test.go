//go:build slow

package sampling_test

// Paper-scale engine equivalence (go test -tags slow): the full grid at
// the PaperScale regime (8x workloads, period base 4000 — the same
// samples-per-run ratio as the paper's 2,000,000-instruction periods),
// every cell self-checked bit-for-bit by EngineBoth.

import (
	"testing"

	"pmutrust/internal/machine"
	"pmutrust/internal/sampling"
	"pmutrust/internal/workloads"
)

// TestEngineMuxGridBitIdenticalPaperScale: the multiplexed event-list
// grid at the paper regime — thousands of rotation windows per run — must
// stay bit-identical across engines on all machines.
func TestEngineMuxGridBitIdenticalPaperScale(t *testing.T) {
	classic, err := sampling.MethodByKey("classic")
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range workloads.Kernels() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			p := spec.Build(8)
			for _, mach := range machine.All() {
				for _, mc := range muxGrid() {
					_, err := sampling.Collect(p, mach, classic, sampling.Options{
						PeriodBase:         4000,
						Seed:               42,
						Engine:             sampling.EngineBoth,
						Events:             mc.Events,
						MuxTimesliceCycles: mc.Timeslice,
						MuxPolicy:          mc.Policy,
					})
					if err != nil {
						t.Errorf("%s/%s/%s: %v", spec.Name, mach.Name, mc.Name, err)
					}
				}
			}
		})
	}
}

func TestEngineGridBitIdenticalPaperScale(t *testing.T) {
	specs := append(workloads.Kernels(), workloads.Apps()...)
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			p := spec.Build(8)
			for _, mach := range machine.All() {
				for _, m := range gridMethods() {
					if _, ok := sampling.Resolve(m, mach); !ok {
						continue
					}
					_, err := sampling.Collect(p, mach, m, sampling.Options{
						PeriodBase: 4000,
						Seed:       42,
						Engine:     sampling.EngineBoth,
					})
					if err != nil {
						t.Errorf("%s/%s/%s: %v", spec.Name, mach.Name, m.Key, err)
					}
				}
			}
		})
	}
}
