// Package core composes the sampling, profiling and analysis machinery
// into the paper's end product: a trust assessment for PMU-based profiles
// of a given workload on a given machine, with a method recommendation
// following §6.3 ("sample on a modern platform with support for precise
// distributed events, while using a prime period ... for ultimate sampling
// performance ... employ LBR-based methods").
//
// Assess answers the practical question the paper leaves its readers with:
// "on this machine, for this workload, which sampling setup should I trust,
// and how much error am I carrying if I stay with the defaults?"
package core

import (
	"fmt"
	"strings"

	"pmutrust/internal/analysis"
	"pmutrust/internal/lbr"
	"pmutrust/internal/machine"
	"pmutrust/internal/profile"
	"pmutrust/internal/program"
	"pmutrust/internal/ref"
	"pmutrust/internal/sampling"
	"pmutrust/internal/stats"
)

// Options controls an assessment.
type Options struct {
	// PeriodBase is the base sampling period in instructions.
	PeriodBase uint64
	// Seed seeds randomized methods; repeats use Seed, Seed+1, ...
	Seed uint64
	// Repeats averages each method over this many runs (default 3).
	Repeats int
}

// MethodResult is one evaluated method.
type MethodResult struct {
	// Method is the registry method (pre-lowering).
	Method sampling.Method
	// Resolved is the method after lowering onto the machine.
	Resolved sampling.Method
	// Supported reports whether the machine can run the method at all.
	Supported bool
	// Err is the measured accuracy error (mean over repeats).
	Err float64
	// Samples is the sample count of the last repeat.
	Samples int
}

// Assessment is the outcome of evaluating the full method registry.
type Assessment struct {
	// Workload names the assessed program.
	Workload string
	// Machine is the platform assessed.
	Machine machine.Machine
	// Results holds one entry per registry method, in registry order.
	Results []MethodResult
	// Best is the supported method with the lowest error.
	Best MethodResult
	// DefaultPenalty is err(classic)/err(best): how much accuracy a user
	// of the default tool setup leaves on the table.
	DefaultPenalty float64
	// Recommendation is the §6.3-style narrative, grounded in the
	// measurements above.
	Recommendation string
}

// Assess evaluates every registry method for p on mach.
func Assess(p *program.Program, mach machine.Machine, opt Options) (*Assessment, error) {
	if opt.PeriodBase == 0 {
		return nil, fmt.Errorf("core: zero period base")
	}
	if opt.Repeats <= 0 {
		opt.Repeats = 3
	}
	reference, err := ref.Collect(p)
	if err != nil {
		return nil, fmt.Errorf("core: reference: %w", err)
	}

	a := &Assessment{Workload: p.Name, Machine: mach}
	var classicErr float64
	for _, m := range sampling.Registry() {
		mr := MethodResult{Method: m}
		resolved, ok := sampling.Resolve(m, mach)
		if !ok {
			mr.Err = -1
			a.Results = append(a.Results, mr)
			continue
		}
		mr.Supported = true
		mr.Resolved = resolved
		var errs []float64
		for rep := 0; rep < opt.Repeats; rep++ {
			run, err := sampling.Collect(p, mach, m, sampling.Options{
				PeriodBase: opt.PeriodBase,
				Seed:       opt.Seed + uint64(rep),
			})
			if err != nil {
				return nil, fmt.Errorf("core: %s: %w", m.Key, err)
			}
			var bp *profile.BlockProfile
			if run.Method.UseLBRStack {
				bp, _, err = lbr.BuildProfile(p, run)
				if err != nil {
					return nil, err
				}
			} else {
				bp = profile.FromSamples(p, run)
			}
			e, err := analysis.AccuracyError(bp, reference)
			if err != nil {
				return nil, err
			}
			errs = append(errs, e)
			mr.Samples = len(run.Samples)
		}
		mr.Err = stats.Mean(errs)
		if m.Key == "classic" {
			classicErr = mr.Err
		}
		if !a.Best.Supported || mr.Err < a.Best.Err {
			a.Best = mr
		}
		a.Results = append(a.Results, mr)
	}
	if a.Best.Supported && a.Best.Err > 0 {
		a.DefaultPenalty = classicErr / a.Best.Err
	}
	a.Recommendation = recommend(a)
	return a, nil
}

// recommend turns the measurements into the paper's §6.3 advice, phrased
// for the specific machine and backed by the measured numbers.
func recommend(a *Assessment) string {
	var b strings.Builder
	fmt.Fprintf(&b, "On %s, the most trustworthy method for %s is %q (error %.4f).",
		a.Machine.Name, a.Workload, a.Best.Method.Key, a.Best.Err)
	if a.DefaultPenalty > 1.2 {
		fmt.Fprintf(&b, " The default tool setup (classic sampling) carries %.1fx that error.",
			a.DefaultPenalty)
	}
	switch {
	case a.Machine.HasPDIR:
		b.WriteString(" This platform has precisely distributed events (PDIR):" +
			" prefer INST_RETIRED.PREC_DIST with a prime period, and use" +
			" LBR-based block counts when the post-processing cost is acceptable (§6.3).")
	case a.Machine.HasLBR:
		b.WriteString(" No PDIR on this platform: PEBS precision is distribution-biased," +
			" so LBR-based methods are the main path to trustworthy block counts" +
			" (the paper notes LBR works especially well on Westmere, §7).")
	case a.Machine.HasIBS:
		b.WriteString(" This platform samples uops (IBS) rather than instructions and has" +
			" no LBR: expect a high error floor, keep prime periods, and avoid the" +
			" hardware period randomization, which worsens results (§5.1).")
	}
	return b.String()
}

// Table renders the assessment as rows of (method, error, samples), for
// CLI display.
func (a *Assessment) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trust assessment: %s on %s\n", a.Workload, a.Machine)
	for _, mr := range a.Results {
		marker := " "
		if mr.Supported && mr.Method.Key == a.Best.Method.Key {
			marker = "*"
		}
		if !mr.Supported {
			fmt.Fprintf(&b, "%s %-20s unsupported\n", marker, mr.Method.Key)
			continue
		}
		fmt.Fprintf(&b, "%s %-20s err %.4f  (%d samples, mechanism %s)\n",
			marker, mr.Method.Key, mr.Err, mr.Samples, mr.Resolved.Precision)
	}
	b.WriteString(a.Recommendation)
	b.WriteString("\n")
	return b.String()
}
