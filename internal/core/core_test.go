package core

import (
	"strings"
	"testing"

	"pmutrust/internal/machine"
	"pmutrust/internal/workloads"
)

func TestAssessIvyBridge(t *testing.T) {
	p := workloads.MustBuild("G4Box", 0.2)
	a, err := Assess(p, machine.IvyBridge(), Options{PeriodBase: 1000, Seed: 3, Repeats: 1})
	if err != nil {
		t.Fatalf("Assess: %v", err)
	}
	if len(a.Results) != 7 {
		t.Fatalf("results = %d", len(a.Results))
	}
	for _, mr := range a.Results {
		if !mr.Supported {
			t.Errorf("%s unsupported on IvyBridge", mr.Method.Key)
		}
		if mr.Err < 0 || mr.Err > 2 {
			t.Errorf("%s err out of range: %v", mr.Method.Key, mr.Err)
		}
	}
	// The best method on IVB must be one of the advanced ones.
	if a.Best.Method.Key == "classic" {
		t.Error("classic assessed as best on IvyBridge")
	}
	if a.DefaultPenalty <= 1 {
		t.Errorf("default penalty %.2f <= 1", a.DefaultPenalty)
	}
	if !strings.Contains(a.Recommendation, "PDIR") {
		t.Errorf("IVB recommendation does not mention PDIR: %s", a.Recommendation)
	}
	if !strings.Contains(a.Table(), "err") {
		t.Error("table rendering empty")
	}
}

func TestAssessMagnyCours(t *testing.T) {
	p := workloads.MustBuild("Test40", 0.2)
	a, err := Assess(p, machine.MagnyCours(), Options{PeriodBase: 1000, Seed: 3, Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	unsupported := 0
	for _, mr := range a.Results {
		if !mr.Supported {
			unsupported++
			if mr.Err != -1 {
				t.Error("unsupported method carries an error value")
			}
		}
	}
	// pdir+ipfix and lbr need LBR: both unsupported on AMD.
	if unsupported != 2 {
		t.Errorf("unsupported methods = %d, want 2", unsupported)
	}
	if !strings.Contains(a.Recommendation, "IBS") {
		t.Errorf("AMD recommendation does not mention IBS: %s", a.Recommendation)
	}
	if !strings.Contains(a.Table(), "unsupported") {
		t.Error("table does not mark unsupported methods")
	}
}

func TestAssessWestmereMentionsLBR(t *testing.T) {
	p := workloads.MustBuild("CallChain", 0.2)
	a, err := Assess(p, machine.Westmere(), Options{PeriodBase: 1000, Seed: 3, Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.Recommendation, "LBR") {
		t.Errorf("Westmere recommendation does not mention LBR: %s", a.Recommendation)
	}
}

func TestAssessValidation(t *testing.T) {
	p := workloads.MustBuild("G4Box", 0.05)
	if _, err := Assess(p, machine.IvyBridge(), Options{}); err == nil {
		t.Error("zero period accepted")
	}
}

func TestAssessRepeatsDefault(t *testing.T) {
	p := workloads.MustBuild("LatencyBiased", 0.05)
	a, err := Assess(p, machine.IvyBridge(), Options{PeriodBase: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Best.Samples == 0 {
		t.Error("no samples recorded")
	}
}
