package report

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pmutrust/internal/results"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureRecords is a small two-workload, two-machine, three-method
// store slice with an unsupported cell, a failed cell and a missing
// coordinate — enough to exercise every render branch.
func fixtureRecords() []results.Record {
	mk := func(w, m, k string, err float64, supported bool) results.Record {
		rec := results.Record{
			Identity: results.Identity{
				Workload: w, Machine: m, Method: k,
				Scale: "small", WorkloadScale: 1, PeriodBase: 2000, Seed: 42, Repeats: 1,
			},
			Err: err, Samples: 100, Supported: supported,
		}
		if err >= 0 {
			rec.PerRepeat = []float64{err}
		}
		rec.Key = rec.Identity.Key()
		return rec
	}
	return []results.Record{
		mk("G4Box", "IvyBridge", "classic", 0.52, true),
		mk("G4Box", "IvyBridge", "precise", 0.31, true),
		mk("G4Box", "IvyBridge", "lbr", 0.04, true),
		mk("G4Box", "Westmere", "classic", 0.61, true),
		mk("G4Box", "Westmere", "precise", 0.33, true),
		mk("G4Box", "Westmere", "lbr", 0.07, true),
		mk("Test40", "IvyBridge", "classic", 0.44, true),
		mk("Test40", "IvyBridge", "precise", 0.2, true),
		mk("Test40", "IvyBridge", "lbr", 0.11, true),
		mk("Test40", "Westmere", "classic", 0.5, true),
		mk("Test40", "Westmere", "lbr", -1, false), // unsupported
		// Test40/Westmere/precise deliberately absent (interrupted run).
	}
}

var (
	workloadOrder = []string{"G4Box", "Test40"}
	machineOrder  = []string{"Westmere", "IvyBridge"}
	methodOrder   = []string{"classic", "precise", "lbr"}
)

// checkGolden compares got against testdata/<name>, rewriting it under
// -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/report -update` to create)", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestMatrixGolden(t *testing.T) {
	m := Matrix("Regenerated Table 4: kernel accuracy errors", fixtureRecords(),
		workloadOrder, machineOrder, methodOrder)
	checkGolden(t, "matrix.txt", m.String())
	checkGolden(t, "matrix.md", m.Markdown())
	checkGolden(t, "matrix.csv", m.CSV())
}

func TestMethodRankingGolden(t *testing.T) {
	m := MethodRanking("Regenerated Table 6: method ranking per machine", fixtureRecords(),
		machineOrder, methodOrder)
	checkGolden(t, "ranking.txt", m.String())
}

func TestFactorsGolden(t *testing.T) {
	m := Factors("Regenerated Table 7: improvement over classic", "classic", fixtureRecords(),
		methodOrder)
	checkGolden(t, "factors.txt", m.String())
}

// TestStoreRoundTripRender is the durability acceptance check: writing
// records to a store file, loading it back, and re-rendering must give
// byte-identical tables — file order and JSON round-tripping must not
// leak into the output.
func TestStoreRoundTripRender(t *testing.T) {
	recs := fixtureRecords()
	direct := Matrix("t", recs, workloadOrder, machineOrder, methodOrder)

	path := filepath.Join(t.TempDir(), "store.jsonl")
	st, err := results.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	// Insert in reverse to prove render order comes from the records,
	// not the file.
	for i := len(recs) - 1; i >= 0; i-- {
		if err := st.Put(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	ld, err := results.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	reloaded := Matrix("t", ld.Records(), workloadOrder, machineOrder, methodOrder)
	for _, render := range []struct{ name, a, b string }{
		{"String", direct.String(), reloaded.String()},
		{"Markdown", direct.Markdown(), reloaded.Markdown()},
		{"CSV", direct.CSV(), reloaded.CSV()},
	} {
		if render.a != render.b {
			t.Errorf("%s render not byte-identical after store round-trip:\n%s\nvs\n%s",
				render.name, render.a, render.b)
		}
	}
}

func TestCompareRecords(t *testing.T) {
	old := fixtureRecords()
	newer := fixtureRecords()
	// Regress one cell beyond tolerance, improve another, lose a third.
	for i := range newer {
		switch {
		case newer[i].Workload == "G4Box" && newer[i].Machine == "IvyBridge" && newer[i].Method == "lbr":
			newer[i].Err = 0.2 // 0.04 -> 0.2: regression
		case newer[i].Workload == "Test40" && newer[i].Machine == "IvyBridge" && newer[i].Method == "precise":
			newer[i].Err = 0.05 // 0.2 -> 0.05: improvement
		case newer[i].Workload == "G4Box" && newer[i].Machine == "Westmere" && newer[i].Method == "classic":
			newer[i].Err = -1 // measured -> failed: lost cell
			newer[i].Failed = true
		}
	}
	// Drop two cells from the new store entirely: a measured one (a
	// failed sweep cell is never stored, so absence = lost measurement)
	// and the unsupported one (absence of a cell that never measured is
	// a shrunk grid, not a regression).
	var pruned []results.Record
	for _, rec := range newer {
		if rec.Workload == "Test40" && rec.Machine == "IvyBridge" && rec.Method == "classic" {
			continue
		}
		if rec.Workload == "Test40" && rec.Machine == "Westmere" && rec.Method == "lbr" {
			continue
		}
		pruned = append(pruned, rec)
	}
	newer = pruned

	diffs, regressions, tbl := CompareRecords(old, newer, 0.01)
	if regressions != 3 {
		t.Errorf("regressions = %d, want 3 (worse cell, failed cell, vanished measured cell):\n%s", regressions, tbl)
	}
	byCoord := make(map[string]CellDiff)
	for _, d := range diffs {
		byCoord[d.Workload+"/"+d.Machine+"/"+d.Method] = d
	}
	if d := byCoord["G4Box/IvyBridge/lbr"]; !d.Regressed {
		t.Errorf("worse cell not flagged: %+v", d)
	}
	if d := byCoord["G4Box/Westmere/classic"]; !d.Regressed {
		t.Errorf("lost cell not flagged: %+v", d)
	}
	if d := byCoord["Test40/IvyBridge/precise"]; d.Regressed {
		t.Errorf("improvement flagged as regression: %+v", d)
	}
	if d := byCoord["Test40/IvyBridge/classic"]; !d.Regressed {
		t.Errorf("vanished measured cell not flagged: %+v", d)
	}
	if d := byCoord["Test40/Westmere/lbr"]; d.Regressed {
		t.Errorf("vanished unsupported cell flagged as regression: %+v", d)
	}
	for _, want := range []string{"REGRESSED", "improved", "lost"} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("compare table missing %q:\n%s", want, tbl)
		}
	}

	// Identical stores: no diffs, no regressions.
	if diffs, regressions, _ := CompareRecords(old, old, 0.01); len(diffs) != 0 || regressions != 0 {
		t.Errorf("self-compare produced %d diffs, %d regressions", len(diffs), regressions)
	}

	// Within tolerance: changed but not regressed.
	slight := fixtureRecords()
	slight[0].Err += 0.005
	if _, regressions, _ := CompareRecords(old, slight, 0.01); regressions != 0 {
		t.Errorf("within-tolerance change counted as regression")
	}
}

func TestCSV(t *testing.T) {
	tbl := New("ignored title", "a", "b")
	tbl.AddRow("x,y", `quote"me`)
	tbl.Note = "ignored note"
	got := tbl.CSV()
	want := "a,b\n\"x,y\",\"quote\"\"me\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}
