// Package report renders experiment results as aligned plain-text and
// Markdown tables, matching the row/column structure of the paper's
// Tables 1-3 so outputs can be compared side by side with the original.
package report

import (
	"encoding/csv"
	"fmt"
	"strings"
)

// Table is a simple rectangular table with a title and column headers.
type Table struct {
	// Title is printed above the table.
	Title string
	// Note is printed below the table (provenance, caveats).
	Note string
	// Headers are the column names; Headers[0] names the row-label column.
	Headers []string
	// Rows hold cells as pre-formatted strings.
	Rows [][]string
}

// New creates an empty table.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row. Short rows are padded with empty cells; long rows
// panic (a harness bug).
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Headers) {
		panic(fmt.Sprintf("report: row has %d cells, table has %d columns",
			len(cells), len(t.Headers)))
	}
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// widths computes per-column display widths.
func (t *Table) widths() []int {
	w := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		w[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	w := t.widths()
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", w[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored Markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Headers)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "\n%s\n", t.Note)
	}
	return b.String()
}

// CSV renders the table as RFC 4180 comma-separated values: a header
// row then the data rows. Title and Note are not emitted — CSV output
// feeds spreadsheets and diff tools, which want pure rectangles.
func (t *Table) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	w.Write(t.Headers)
	for _, row := range t.Rows {
		w.Write(row)
	}
	w.Flush()
	return b.String()
}

// Fmt formats a float with 3 significant digits, using "-" for NaN
// sentinel values (negative errors are impossible; the harness passes -1
// for unsupported cells).
func Fmt(v float64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%.4f", v)
}

// FmtFactor formats an improvement factor as "3.2x".
func FmtFactor(v float64) string {
	if v <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", v)
}
