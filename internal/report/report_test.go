package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := New("demo", "name", "value")
	t.AddRow("alpha", "1.0")
	t.AddRow("beta")
	t.Note = "note line"
	return t
}

func TestStringLayout(t *testing.T) {
	out := sample().String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title, header, separator, 2 rows, note.
	if len(lines) != 6 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.Contains(lines[2], "----") {
		t.Errorf("separator = %q", lines[2])
	}
	if !strings.HasPrefix(lines[3], "alpha") || !strings.Contains(lines[3], "1.0") {
		t.Errorf("row = %q", lines[3])
	}
	if lines[5] != "note line" {
		t.Errorf("note = %q", lines[5])
	}
	// Columns aligned: header and row "value" columns start at the same
	// offset.
	hIdx := strings.Index(lines[1], "value")
	rIdx := strings.Index(lines[3], "1.0")
	if hIdx != rIdx {
		t.Errorf("column misaligned: header %d, row %d", hIdx, rIdx)
	}
}

func TestMarkdown(t *testing.T) {
	md := sample().Markdown()
	for _, want := range []string{"### demo", "| name | value |", "|---|---|", "| alpha | 1.0 |", "note line"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q in:\n%s", want, md)
		}
	}
}

func TestAddRowPadsAndPanics(t *testing.T) {
	tbl := New("t", "a", "b", "c")
	tbl.AddRow("x") // short row padded
	if len(tbl.Rows[0]) != 3 {
		t.Errorf("row not padded: %v", tbl.Rows[0])
	}
	defer func() {
		if recover() == nil {
			t.Error("oversized row did not panic")
		}
	}()
	tbl.AddRow("1", "2", "3", "4")
}

func TestFmtHelpers(t *testing.T) {
	if Fmt(-1) != "-" {
		t.Error("negative sentinel")
	}
	if Fmt(0.12345) != "0.1234" && Fmt(0.12345) != "0.1235" {
		t.Errorf("Fmt = %q", Fmt(0.12345))
	}
	if FmtFactor(3.25) != "3.2x" && FmtFactor(3.25) != "3.3x" {
		t.Errorf("FmtFactor = %q", FmtFactor(3.25))
	}
	if FmtFactor(0) != "-" || FmtFactor(-2) != "-" {
		t.Error("factor sentinel")
	}
}

func TestEmptyTable(t *testing.T) {
	tbl := New("", "only")
	out := tbl.String()
	if strings.Contains(out, "\n\n\n") {
		t.Errorf("stray blank lines:\n%q", out)
	}
	if tbl.Markdown() == "" {
		t.Error("empty markdown")
	}
}
