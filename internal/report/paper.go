package report

import (
	"fmt"
	"sort"

	"pmutrust/internal/results"
	"pmutrust/internal/stats"
)

// This file assembles stored measurement records back into the paper's
// table shapes, so `pmureport` can regenerate every accuracy table from
// a results store without re-measuring. All assembly is deterministic:
// row and column orders come from the caller's canonical orders (paper
// order), with any names the store holds beyond them appended sorted, so
// the same store always renders to the same bytes.

// order returns the caller's preferred order filtered to names actually
// present, with unknown names appended sorted.
func order(preferred []string, present map[string]bool) []string {
	out := make([]string, 0, len(present))
	seen := make(map[string]bool, len(present))
	for _, n := range preferred {
		if present[n] && !seen[n] {
			out = append(out, n)
			seen[n] = true
		}
	}
	var extra []string
	for n := range present {
		if !seen[n] {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// collect indexes records by (workload, machine, method) and returns the
// name sets on each axis. On duplicate coordinates the record later in
// the input slice wins — with Store.Records() that is canonical key
// order, which is deterministic but arbitrary across configurations, so
// callers rendering stores that may hold several configurations (e.g.
// resumed with a different seed or scale) should detect and surface that
// (pmureport warns; see distinctConfigs).
func collect(recs []results.Record) (byCell map[[3]string]results.Record, workloads, machines, methods map[string]bool) {
	byCell = make(map[[3]string]results.Record, len(recs))
	workloads = make(map[string]bool)
	machines = make(map[string]bool)
	methods = make(map[string]bool)
	for _, r := range recs {
		byCell[[3]string{r.Workload, r.Machine, r.Method}] = r
		workloads[r.Workload] = true
		machines[r.Machine] = true
		methods[r.Method] = true
	}
	return
}

// Matrix renders records in the paper's accuracy-matrix shape: one row
// per workload × machine, one column per method — the layout of Tables 1
// and 2 (and of the regenerated Tables 4 and 5 in pmureport). Orders are
// the caller's canonical axis orders; cells absent from the store render
// as "-".
func Matrix(title string, recs []results.Record, workloadOrder, machineOrder, methodOrder []string) *Table {
	byCell, wl, mc, mt := collect(recs)
	wls := order(workloadOrder, wl)
	mcs := order(machineOrder, mc)
	mts := order(methodOrder, mt)

	headers := append([]string{"workload", "machine"}, mts...)
	t := New(title, headers...)
	for _, w := range wls {
		for _, m := range mcs {
			row := []string{w, m}
			any := false
			for _, k := range mts {
				rec, ok := byCell[[3]string{w, m, k}]
				if !ok {
					row = append(row, "-")
					continue
				}
				any = true
				row = append(row, Fmt(rec.Err))
			}
			if any {
				t.AddRow(row...)
			}
		}
	}
	return t
}

// MethodRanking renders, per machine, each method's geometric-mean error
// over all stored workloads, best first — the "which method should I
// trust on this box" summary (the regenerated Table 6 in pmureport).
// Failed and unsupported cells are excluded from the geomean; a method
// with no measured cell on a machine is omitted from that machine's
// ranking.
func MethodRanking(title string, recs []results.Record, machineOrder, methodOrder []string) *Table {
	byCell, wl, mc, mt := collect(recs)
	mcs := order(machineOrder, mc)
	mts := order(methodOrder, mt)
	var wls []string
	for w := range wl {
		wls = append(wls, w)
	}
	sort.Strings(wls)

	t := New(title, "machine", "rank", "method", "geomean err", "cells")
	for _, m := range mcs {
		type entry struct {
			method string
			gm     float64
			n      int
		}
		var entries []entry
		for _, k := range mts {
			var errs []float64
			for _, w := range wls {
				if rec, ok := byCell[[3]string{w, m, k}]; ok && rec.Err >= 0 {
					errs = append(errs, rec.Err)
				}
			}
			if len(errs) > 0 {
				entries = append(entries, entry{k, stats.GeoMean(errs), len(errs)})
			}
		}
		sort.SliceStable(entries, func(i, j int) bool { return entries[i].gm < entries[j].gm })
		for i, e := range entries {
			t.AddRow(m, fmt.Sprintf("%d", i+1), e.method, Fmt(e.gm), fmt.Sprintf("%d", e.n))
		}
	}
	t.Note = "Geometric mean of accuracy errors over all stored workloads; lower is better, rank 1 is the machine's most trustworthy method."
	return t
}

// Factors renders per-method improvement factors over a baseline method
// (the regenerated Table 7 in pmureport): for every workload × machine
// where both the baseline and the method measured successfully, the
// factor is baselineErr/methodErr, summarized as geomean/min/max.
func Factors(title, baseline string, recs []results.Record, methodOrder []string) *Table {
	byCell, wl, mc, mt := collect(recs)
	mts := order(methodOrder, mt)
	var wls, mcs []string
	for w := range wl {
		wls = append(wls, w)
	}
	for m := range mc {
		mcs = append(mcs, m)
	}
	sort.Strings(wls)
	sort.Strings(mcs)

	t := New(title, "method", "vs "+baseline+" geomean", "min", "max", "cells")
	for _, k := range mts {
		if k == baseline {
			continue
		}
		var factors []float64
		for _, w := range wls {
			for _, m := range mcs {
				b, okB := byCell[[3]string{w, m, baseline}]
				v, okV := byCell[[3]string{w, m, k}]
				if okB && okV && b.Err > 0 && v.Err > 0 {
					factors = append(factors, b.Err/v.Err)
				}
			}
		}
		if len(factors) == 0 {
			t.AddRow(k, "-", "-", "-", "0")
			continue
		}
		lo, hi := factors[0], factors[0]
		for _, f := range factors {
			if f < lo {
				lo = f
			}
			if f > hi {
				hi = f
			}
		}
		t.AddRow(k, FmtFactor(stats.GeoMean(factors)), FmtFactor(lo), FmtFactor(hi),
			fmt.Sprintf("%d", len(factors)))
	}
	t.Note = "Factor = baseline error / method error on cells where both measured; >1.0x means the method is more accurate than " + baseline + "."
	return t
}

// CellDiff is one (workload, machine, method) coordinate's change
// between two stores.
type CellDiff struct {
	Workload, Machine, Method string
	// OldErr and NewErr are the accuracy errors (-1 = unsupported,
	// failed, or absent from that store).
	OldErr, NewErr float64
	// Regressed marks an accuracy regression beyond the tolerance: the
	// new error exceeds the old by more than tol, or a previously
	// measured cell now has no valid measurement.
	Regressed bool
}

// CompareRecords diffs two stores cell-by-cell by (workload, machine,
// method) coordinate and returns every coordinate whose error changed
// (beyond exact equality) plus a rendered table. The second result is
// the number of regressions: cells whose error grew by more than tol,
// and cells that lost their measurement — including cells absent from
// the new store that the old store had measured, because a sweep never
// stores failed cells, so "started failing" manifests as absence.
// Coordinates only in the new store ("added", "now measured") and
// absent coordinates the old store couldn't measure either are listed
// for context but are not regressions.
func CompareRecords(oldRecs, newRecs []results.Record, tol float64) ([]CellDiff, int, *Table) {
	oldBy, wlO, mcO, mtO := collect(oldRecs)
	newBy, wlN, mcN, mtN := collect(newRecs)
	union := func(a, b map[string]bool) map[string]bool {
		u := make(map[string]bool, len(a)+len(b))
		for k := range a {
			u[k] = true
		}
		for k := range b {
			u[k] = true
		}
		return u
	}
	wls := order(nil, union(wlO, wlN))
	mcs := order(nil, union(mcO, mcN))
	mts := order(nil, union(mtO, mtN))

	errOf := func(by map[[3]string]results.Record, c [3]string) (float64, bool) {
		rec, ok := by[c]
		if !ok {
			return -1, false
		}
		return rec.Err, true
	}

	var diffs []CellDiff
	regressions := 0
	t := New("store comparison (old vs new accuracy error)",
		"workload", "machine", "method", "old", "new", "delta", "verdict")
	for _, w := range wls {
		for _, m := range mcs {
			for _, k := range mts {
				c := [3]string{w, m, k}
				oe, okO := errOf(oldBy, c)
				ne, okN := errOf(newBy, c)
				if !okO && !okN {
					continue
				}
				if oe == ne && okO && okN {
					continue // unchanged, keep the diff table readable
				}
				d := CellDiff{Workload: w, Machine: m, Method: k, OldErr: oe, NewErr: ne}
				verdict, delta := "changed", "-"
				switch {
				case !okO:
					verdict = "added"
				case !okN && oe >= 0:
					// Failed cells are never stored (SweepCached skips
					// them so resumes retry), so a cell that started
					// failing shows up as absent — that is a lost
					// measurement, not a shrunk grid.
					verdict = "REGRESSED (lost)"
					d.Regressed = true
				case !okN:
					verdict = "removed"
				case oe >= 0 && ne >= 0:
					delta = fmt.Sprintf("%+.4f", ne-oe)
					if ne-oe > tol {
						verdict = "REGRESSED"
						d.Regressed = true
					} else if oe-ne > tol {
						verdict = "improved"
					}
				case oe >= 0 && ne < 0:
					// Measured before, unsupported/failed now: the cell
					// lost its measurement.
					verdict = "REGRESSED (lost)"
					d.Regressed = true
				case oe < 0 && ne >= 0:
					verdict = "now measured"
				}
				if d.Regressed {
					regressions++
				}
				diffs = append(diffs, d)
				t.AddRow(w, m, k, Fmt(oe), Fmt(ne), delta, verdict)
			}
		}
	}
	t.Note = fmt.Sprintf("%d cell(s) differ, %d regression(s) beyond tolerance %.4f; unchanged cells omitted.",
		len(diffs), regressions, tol)
	return diffs, regressions, t
}
