//go:build slow

package cpu_test

// Paper-scale differential fuzz (go test -tags slow): BigGenConfig
// programs run into the millions of dynamic instructions, crossing
// thousands of sampling periods per PMU configuration — the same regime
// as the paper's PeriodBase 2,000,000 runs, scaled like the experiment
// harness scales everything else.

import (
	"testing"

	"pmutrust/internal/program"
)

func TestFuzzEngineEquivalenceSlow(t *testing.T) {
	cfg := program.BigGenConfig()
	const maxInstrs = 20_000_000
	for seed := uint64(0); seed < 200; seed++ {
		p := program.Random(seed, cfg)
		msg := diffProgram(p, maxInstrs)
		if msg == "" {
			continue
		}
		min := cfg.Shrink(func(c program.GenConfig) bool {
			return diffProgram(program.Random(seed, c), maxInstrs) != ""
		})
		minMsg := diffProgram(program.Random(seed, min), maxInstrs)
		t.Fatalf("engine divergence at seed %d\n  original cfg %+v: %s\n  minimal cfg %+v: %s\n  minimal program (%d instrs):\n%s",
			seed, cfg, msg, min, minMsg,
			program.Random(seed, min).NumInstrs(), disasmProgram(program.Random(seed, min)))
	}
}
