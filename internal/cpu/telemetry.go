package cpu

import (
	"pmutrust/internal/isa"
	"pmutrust/internal/telemetry"
)

// EngineObserver is the optional monitor refinement the telemetry layer
// rides on: a monitor that implements it exposes a per-run counter block
// the engines and the monitor chain record into. The PMU owns the block;
// wrapping monitors (the mux, a scheduler task) share the inner unit's
// pointer so one run publishes exactly one set of counters. The engines
// consult the interface once at setup — never inside a stride — so a
// monitor without it (or a nil sink downstream) costs nothing.
type EngineObserver interface {
	EngineCounters() *telemetry.EngineCounters
}

// TelemetryVariant maps an engine loop variant to its telemetry key.
// telemetry is a leaf package and defines its own Variant enum; this is
// the single conversion point.
func (v Variant) TelemetryVariant() telemetry.Variant {
	switch v {
	case VariantFull:
		return telemetry.VariantFull
	case VariantLean:
		return telemetry.VariantLean
	case VariantNop:
		return telemetry.VariantNop
	default:
		return telemetry.VariantInterp
	}
}

// recordFused credits the predecoded program's superinstruction fusions
// to an observing monitor's counter block: a per-run static count,
// recorded once at decode time (the stride loops never touch it).
func recordFused(fm FastMonitor, code []fastInstr) {
	o, ok := fm.(EngineObserver)
	if !ok {
		return
	}
	c := o.EngineCounters()
	if c == nil {
		return
	}
	var fused uint64
	for i := range code {
		if code[i].op >= isa.Op(isa.NumOps) {
			fused++
		}
	}
	c.FusedPairs += fused
}
