package cpu_test

// The differential harness: the fast engine's one non-negotiable contract
// is bit-identical behaviour with the reference interpreter — same Result,
// same monitor-visible stream, same samples, same errors. These tests
// enforce it three ways:
//
//  1. forced event mode: a FastMonitor with zero headroom makes RunFast
//     deliver every RetireEvent through its per-instruction path; the
//     event stream must equal the interpreter's, field for field;
//  2. mixed strides: a monitor with adversarial headroom schedules
//     (including the PMU itself, whose overflow cadence straddles every
//     block shape) must see identical aggregate and sample state;
//  3. fuzz: randomized Builder-DSL programs (internal/program.Random) hunt
//     divergence on programs no human wrote, shrinking to a minimal
//     reproducer on failure.

import (
	"fmt"
	"testing"

	"pmutrust/internal/cpu"
	"pmutrust/internal/isa"
	"pmutrust/internal/pmu"
	"pmutrust/internal/program"
	"pmutrust/internal/workloads"
)

// streamRecorder forces event mode (zero headroom) and records the full
// retirement stream.
type streamRecorder struct {
	evs []cpu.RetireEvent
}

func (r *streamRecorder) OnRetire(ev cpu.RetireEvent)             { r.evs = append(r.evs, ev) }
func (r *streamRecorder) FastHeadroom() uint64                    { return 0 }
func (r *streamRecorder) WantBranches() bool                      { return false }
func (r *streamRecorder) OnFastBranch(from, to uint32, op isa.Op) {}
func (r *streamRecorder) BulkRetire(c cpu.BulkCounts)             {}

// interpRecorder is a plain Monitor (no FastMonitor), used to record the
// interpreter's stream.
type interpRecorder struct {
	evs []cpu.RetireEvent
}

func (r *interpRecorder) OnRetire(ev cpu.RetireEvent) { r.evs = append(r.evs, ev) }

// mixRecorder drives the engine through adversarial stride/event mode
// transitions: headroom grants cycle through a fixed schedule including
// zeros, while aggregate counts from both paths are accumulated.
type mixRecorder struct {
	schedule []uint64
	pos      int
	grants   int
	instrs   uint64 // bulk + event instructions
	uops     uint64
	branches uint64
	brStream []uint32 // OnFastBranch froms + event-mode taken froms
}

func (r *mixRecorder) OnRetire(ev cpu.RetireEvent) {
	r.instrs++
	r.uops += uint64(ev.Uops)
	if ev.Taken {
		r.branches++
		r.brStream = append(r.brStream, ev.Idx)
	}
}

func (r *mixRecorder) FastHeadroom() uint64 {
	h := r.schedule[r.pos%len(r.schedule)]
	r.pos++
	r.grants++
	return h
}

func (r *mixRecorder) WantBranches() bool { return true }

func (r *mixRecorder) OnFastBranch(from, to uint32, op isa.Op) {
	r.branches++
	r.brStream = append(r.brStream, from)
}

func (r *mixRecorder) BulkRetire(c cpu.BulkCounts) {
	r.instrs += c.Instrs
	r.uops += c.Uops
}

// leanStreamRecorder is the lean-classified twin of streamRecorder: it
// hints only Result-shaped bulk classes and wants no branch stream, so
// RunFast selects the lean loop; zero headroom then forces the lean
// event-mode path, whose stream must match the interpreter's too.
type leanStreamRecorder struct {
	evs []cpu.RetireEvent
}

func (r *leanStreamRecorder) OnRetire(ev cpu.RetireEvent)             { r.evs = append(r.evs, ev) }
func (r *leanStreamRecorder) FastHeadroom() uint64                    { return 0 }
func (r *leanStreamRecorder) WantBranches() bool                      { return false }
func (r *leanStreamRecorder) OnFastBranch(from, to uint32, op isa.Op) {}
func (r *leanStreamRecorder) BulkRetire(c cpu.BulkCounts)             {}
func (r *leanStreamRecorder) BulkClasses() cpu.BulkClass {
	return cpu.BulkInstrs | cpu.BulkUops | cpu.BulkTakenBranches
}

// leanMixRecorder drives the lean loop through adversarial stride/event
// transitions, accumulating totals from both delivery paths.
type leanMixRecorder struct {
	schedule []uint64
	pos      int
	instrs   uint64
	uops     uint64
	taken    uint64
	cond     uint64
	mispred  uint64
}

func (r *leanMixRecorder) OnRetire(ev cpu.RetireEvent) {
	r.instrs++
	r.uops += uint64(ev.Uops)
	if ev.Taken {
		r.taken++
	}
	if ev.Mispred {
		r.mispred++
	}
	switch ev.Op {
	case isa.OpJz, isa.OpJnz, isa.OpJlt, isa.OpJge:
		r.cond++
	}
}

func (r *leanMixRecorder) FastHeadroom() uint64 {
	h := r.schedule[r.pos%len(r.schedule)]
	r.pos++
	return h
}

func (r *leanMixRecorder) WantBranches() bool                      { return false }
func (r *leanMixRecorder) OnFastBranch(from, to uint32, op isa.Op) {}

func (r *leanMixRecorder) BulkRetire(c cpu.BulkCounts) {
	r.instrs += c.Instrs
	r.uops += c.Uops
	r.taken += c.TakenBranches
	r.cond += c.CondBranches
	r.mispred += c.Mispredicts
}

func (r *leanMixRecorder) BulkClasses() cpu.BulkClass {
	return cpu.BulkInstrs | cpu.BulkUops | cpu.BulkTakenBranches |
		cpu.BulkCondBranches | cpu.BulkMispredicts
}

// diffResults compares the two engines' Result structs.
func diffResults(a, b cpu.Result) error {
	if a != b {
		return fmt.Errorf("Result diverges:\n  interp %+v\n  fast   %+v", a, b)
	}
	return nil
}

// diffErrs compares run errors (nil-ness and text).
func diffErrs(a, b error) error {
	switch {
	case a == nil && b == nil:
		return nil
	case (a == nil) != (b == nil):
		return fmt.Errorf("error divergence: interp err=%v, fast err=%v", a, b)
	case a.Error() != b.Error():
		return fmt.Errorf("error text diverges:\n  interp %q\n  fast   %q", a.Error(), b.Error())
	}
	return nil
}

// diffStreams compares full retirement streams event by event.
func diffStreams(a, b []cpu.RetireEvent) error {
	if len(a) != len(b) {
		return fmt.Errorf("stream length diverges: interp %d, fast %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("event %d diverges:\n  interp %+v\n  fast   %+v", i, a[i], b[i])
		}
	}
	return nil
}

// diffSamples compares PMU sample slices field by field, LBR included.
func diffSamples(a, b []pmu.Sample) error {
	if len(a) != len(b) {
		return fmt.Errorf("sample count diverges: interp %d, fast %d", len(a), len(b))
	}
	for i := range a {
		sa, sb := a[i], b[i]
		if sa.IP != sb.IP || sa.TriggerIP != sb.TriggerIP || sa.Cycle != sb.Cycle ||
			sa.Seq != sb.Seq || sa.Period != sb.Period {
			return fmt.Errorf("sample %d diverges:\n  interp %+v\n  fast   %+v", i, sa, sb)
		}
		if (sa.LBR == nil) != (sb.LBR == nil) || len(sa.LBR) != len(sb.LBR) {
			return fmt.Errorf("sample %d LBR shape diverges: interp %v, fast %v", i, sa.LBR, sb.LBR)
		}
		for j := range sa.LBR {
			if sa.LBR[j] != sb.LBR[j] {
				return fmt.Errorf("sample %d LBR[%d] diverges: interp %+v, fast %+v",
					i, j, sa.LBR[j], sb.LBR[j])
			}
		}
	}
	return nil
}

// diffPMU runs p under both engines with identical PMU configs and
// compares every observable.
func diffPMU(p *program.Program, cpuCfg cpu.Config, pmuCfg pmu.Config, maxInstrs uint64) error {
	ui := pmu.New(pmuCfg)
	ri, erri := cpu.Run(p, cpuCfg, ui, maxInstrs)
	uf := pmu.New(pmuCfg)
	rf, errf := cpu.RunFast(p, cpuCfg, uf, maxInstrs)
	if err := diffErrs(erri, errf); err != nil {
		return err
	}
	if err := diffResults(ri, rf); err != nil {
		return err
	}
	if ui.Overflows != uf.Overflows || ui.DroppedPMIs != uf.DroppedPMIs || ui.TotalEvents != uf.TotalEvents {
		return fmt.Errorf("PMU totals diverge: interp ovf=%d drop=%d tot=%d, fast ovf=%d drop=%d tot=%d",
			ui.Overflows, ui.DroppedPMIs, ui.TotalEvents, uf.Overflows, uf.DroppedPMIs, uf.TotalEvents)
	}
	return diffSamples(ui.Samples(), uf.Samples())
}

// pmuConfigGrid returns PMU configurations covering every mechanism and
// boundary regime: tiny periods keep the counter permanently near
// overflow, skid windows force event-mode stretches, HW 4-LSB
// randomization lands reload values inside would-be strides, LBR capture
// exercises the branch stream, frequency mode retunes periods at every
// sample.
func pmuConfigGrid(seed uint64) []pmu.Config {
	return []pmu.Config{
		{Event: pmu.EvInstRetired, Precision: pmu.Imprecise, Period: 97, SkidCycles: 20, Seed: seed},
		{Event: pmu.EvInstRetired, Precision: pmu.Imprecise, Period: 2, SkidCycles: 5, Seed: seed},
		{Event: pmu.EvInstRetired, Precision: pmu.PrecisePEBS, Period: 101, Rand: pmu.RandSoftware, Seed: seed},
		{Event: pmu.EvInstRetired, Precision: pmu.PreciseDist, Period: 89, CaptureLBR: true, LBRDepth: 8, Seed: seed},
		{Event: pmu.EvUopsRetired, Precision: pmu.PreciseIBS, Period: 64, Rand: pmu.RandHW4LSB, Seed: seed},
		{Event: pmu.EvUopsRetired, Precision: pmu.PreciseIBS, Period: 17, Rand: pmu.RandHW4LSB, Seed: seed},
		{Event: pmu.EvBrTaken, Precision: pmu.Imprecise, Period: 13, SkidCycles: 10,
			CaptureLBR: true, LBRDepth: 4, LBRContention: 0.3, Seed: seed},
		{Event: pmu.EvInstRetired, Precision: pmu.Imprecise, Period: 50, SkidCycles: 15,
			FreqMode: true, TargetIntervalCycles: 120, Seed: seed},
		{Event: pmu.EvInstRetired, Precision: pmu.PrecisePEBS, Period: 1, Seed: seed},
	}
}

// muxConfigGrid returns multiplexer configurations covering the regimes
// the fast engine can get wrong: static schedules (no rotation), rotating
// round-robin schedules with timeslices longer and shorter than the
// worst-case per-instruction cycle bound, the fixed-counter rule, and the
// starving priority policy.
func muxConfigGrid(cpuCfg cpu.Config) []pmu.MuxConfig {
	menu := []pmu.Event{
		pmu.EvInstRetired, pmu.EvUopsRetired, pmu.EvBrTaken, pmu.EvCondBr,
		pmu.EvBrMispred, pmu.EvLoad, pmu.EvStore, pmu.EvFPOp, pmu.EvCall, pmu.EvRet,
	}
	c := cpuCfg.MaxRetireCyclesPerInstr()
	return []pmu.MuxConfig{
		{Events: menu[:3], GenCounters: 4, TimesliceCycles: 200, MaxCyclesPerInstr: c},
		{Events: menu, GenCounters: 3, TimesliceCycles: 120, MaxCyclesPerInstr: c},
		{Events: menu, GenCounters: 2, FixedCounterFree: true, TimesliceCycles: 900, MaxCyclesPerInstr: c},
		{Events: menu, GenCounters: 2, Policy: pmu.MuxPriority, TimesliceCycles: 150, MaxCyclesPerInstr: c},
		{Events: menu[:6], GenCounters: 1, TimesliceCycles: 30, MaxCyclesPerInstr: c},
	}
}

// diffMux runs p under both engines with a multiplexed monitor — bare and
// wrapping a sampling PMU — and compares the counting outcome, rotation
// sequence and (when wrapped) the inner sample stream.
func diffMux(p *program.Program, cpuCfg cpu.Config, muxCfg pmu.MuxConfig, maxInstrs uint64) error {
	pmuCfg := pmu.Config{Event: pmu.EvInstRetired, Precision: pmu.PreciseDist, Period: 173, Seed: 11}
	for _, withInner := range []bool{false, true} {
		var innerI, innerF *pmu.PMU
		var monI, monF cpu.FastMonitor
		if withInner {
			innerI, innerF = pmu.New(pmuCfg), pmu.New(pmuCfg)
			monI, monF = innerI, innerF
		}
		muxI := pmu.NewMux(muxCfg, monI)
		ri, erri := cpu.Run(p, cpuCfg, muxI, maxInstrs)
		muxF := pmu.NewMux(muxCfg, monF)
		rf, errf := cpu.RunFast(p, cpuCfg, muxF, maxInstrs)
		if err := diffErrs(erri, errf); err != nil {
			return fmt.Errorf("inner=%v: %w", withInner, err)
		}
		if err := diffResults(ri, rf); err != nil {
			return fmt.Errorf("inner=%v: %w", withInner, err)
		}
		if muxI.Rotations != muxF.Rotations {
			return fmt.Errorf("inner=%v: rotations diverge: interp %d, fast %d",
				withInner, muxI.Rotations, muxF.Rotations)
		}
		ci, cf := muxI.Finish(ri.Cycles), muxF.Finish(rf.Cycles)
		for i := range ci {
			if ci[i] != cf[i] {
				return fmt.Errorf("inner=%v: count %d (%s) diverges:\n  interp %+v\n  fast   %+v",
					withInner, i, ci[i].Event, ci[i], cf[i])
			}
		}
		if withInner {
			if err := diffSamples(innerI.Samples(), innerF.Samples()); err != nil {
				return fmt.Errorf("inner sampling: %w", err)
			}
		}
	}
	return nil
}

// diffProgram runs the whole differential battery on one program; returns
// a description of the first divergence, or "".
//
// The stream-recording and tiny-period sections run under a tighter
// instruction cap than the PMU sections: they materialize per-instruction
// (or per-period-of-2) state in memory, and a capped prefix diff catches
// the same divergences — both engines always run under the same cap, so
// the comparison stays exact.
func diffProgram(p *program.Program, maxInstrs uint64) string {
	cpuCfg := cpu.DefaultConfig()
	streamCap := maxInstrs
	if streamCap == 0 || streamCap > 150_000 {
		streamCap = 150_000
	}

	// Forced event mode: full stream equality.
	ir := &interpRecorder{}
	ri, erri := cpu.Run(p, cpuCfg, ir, streamCap)
	sr := &streamRecorder{}
	rf, errf := cpu.RunFast(p, cpuCfg, sr, streamCap)
	if err := diffErrs(erri, errf); err != nil {
		return "forced event mode: " + err.Error()
	}
	if err := diffResults(ri, rf); err != nil {
		return "forced event mode: " + err.Error()
	}
	if err := diffStreams(ir.evs, sr.evs); err != nil {
		return "forced event mode: " + err.Error()
	}

	// Adversarial stride schedules: aggregate equality.
	for _, schedule := range [][]uint64{
		{1 << 40},
		{1, 0, 2, 0, 3, 7},
		{0, 0, 5, 1, 0, 1000},
		{2, 2, 2, 0},
	} {
		mr := &mixRecorder{schedule: schedule}
		rm, errm := cpu.RunFast(p, cpuCfg, mr, streamCap)
		if err := diffErrs(erri, errm); err != nil {
			return fmt.Sprintf("mix schedule %v: %v", schedule, err)
		}
		if err := diffResults(ri, rm); err != nil {
			return fmt.Sprintf("mix schedule %v: %v", schedule, err)
		}
		if mr.instrs != ri.Instructions || mr.uops != ri.Uops || mr.branches != ri.TakenBranches {
			return fmt.Sprintf("mix schedule %v: monitor totals diverge: instrs %d/%d uops %d/%d branches %d/%d",
				schedule, mr.instrs, ri.Instructions, mr.uops, ri.Uops, mr.branches, ri.TakenBranches)
		}
		// The taken-branch stream must arrive in retirement order
		// regardless of which path delivered each branch.
		want := 0
		for _, ev := range ir.evs {
			if ev.Taken {
				if want >= len(mr.brStream) || mr.brStream[want] != ev.Idx {
					return fmt.Sprintf("mix schedule %v: branch stream diverges at %d", schedule, want)
				}
				want++
			}
		}
		if erri == nil && want != len(mr.brStream) {
			return fmt.Sprintf("mix schedule %v: branch stream has %d extra entries", schedule, len(mr.brStream)-want)
		}
	}

	// Lean variant, forced event mode: the counting-only loop's
	// per-instruction path must deliver the identical stream.
	lsr := &leanStreamRecorder{}
	rl, errl := cpu.RunFast(p, cpuCfg, lsr, streamCap)
	if err := diffErrs(erri, errl); err != nil {
		return "lean event mode: " + err.Error()
	}
	if err := diffResults(ri, rl); err != nil {
		return "lean event mode: " + err.Error()
	}
	if err := diffStreams(ir.evs, lsr.evs); err != nil {
		return "lean event mode: " + err.Error()
	}

	// Lean variant, adversarial stride schedules: flush-time deltas plus
	// event-mode stretches must reproduce the interpreter's totals.
	for _, schedule := range [][]uint64{
		{1 << 40},
		{1, 0, 2, 0, 3, 7},
		{0, 0, 5, 1, 0, 1000},
	} {
		lm := &leanMixRecorder{schedule: schedule}
		rm, errm := cpu.RunFast(p, cpuCfg, lm, streamCap)
		if err := diffErrs(erri, errm); err != nil {
			return fmt.Sprintf("lean mix schedule %v: %v", schedule, err)
		}
		if err := diffResults(ri, rm); err != nil {
			return fmt.Sprintf("lean mix schedule %v: %v", schedule, err)
		}
		if lm.instrs != ri.Instructions || lm.uops != ri.Uops || lm.taken != ri.TakenBranches ||
			lm.cond != ri.CondBranches || lm.mispred != ri.Mispredicts {
			return fmt.Sprintf("lean mix schedule %v: monitor totals diverge: instrs %d/%d uops %d/%d taken %d/%d cond %d/%d mispred %d/%d",
				schedule, lm.instrs, ri.Instructions, lm.uops, ri.Uops,
				lm.taken, ri.TakenBranches, lm.cond, ri.CondBranches, lm.mispred, ri.Mispredicts)
		}
	}

	// Nop variant: the monitor-free loop has no monitor observables, but
	// its Result and error must still be bit-identical.
	rn, errn := cpu.RunFast(p, cpuCfg, cpu.NopMonitor{}, streamCap)
	if err := diffErrs(erri, errn); err != nil {
		return "nop variant: " + err.Error()
	}
	if err := diffResults(ri, rn); err != nil {
		return "nop variant: " + err.Error()
	}

	// PMU configurations: sample-stream equality. Tiny periods sample
	// every few instructions — cap those runs so the sample slices stay
	// small; long-period configs get the full run.
	for ci, pmuCfg := range pmuConfigGrid(7) {
		cap := maxInstrs
		if pmuCfg.Period < 32 && (cap == 0 || cap > 30_000) {
			cap = 30_000
		}
		if err := diffPMU(p, cpuCfg, pmuCfg, cap); err != nil {
			return fmt.Sprintf("pmu config %d (%s/%s): %v", ci, pmuCfg.Event, pmuCfg.Precision, err)
		}
	}

	// Multiplexed counting: rotation deadlines are fast-path fallback
	// points, and the per-event counts, window accounting and rotation
	// sequence must be engine-independent, bare and wrapped around a
	// sampling unit. Contended configurations interpret a slice of every
	// rotation window, so cap the run length like the tiny-period PMU
	// section does.
	for mi, muxCfg := range muxConfigGrid(cpuCfg) {
		cap := maxInstrs
		if cap == 0 || cap > 200_000 {
			cap = 200_000
		}
		if err := diffMux(p, cpuCfg, muxCfg, cap); err != nil {
			return fmt.Sprintf("mux config %d: %v", mi, err)
		}
	}
	return ""
}

// TestEnginesMatchOnWorkloads diffs both engines across the real workload
// set (kernels and, outside -short, applications).
func TestEnginesMatchOnWorkloads(t *testing.T) {
	specs := workloads.Kernels()
	if !testing.Short() {
		specs = append(specs, workloads.Apps()...)
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			p := spec.Build(0.1)
			if msg := diffProgram(p, 0); msg != "" {
				t.Fatalf("%s: %s", spec.Name, msg)
			}
		})
	}
}

// TestEnginesMatchMaxInstrs: the instruction limit must cut both engines
// at the same instruction with the same error — a fast-path stride must
// not overshoot the budget.
func TestEnginesMatchMaxInstrs(t *testing.T) {
	p := workloads.MustBuild("G4Box", 0.1)
	for _, limit := range []uint64{1, 2, 7, 100, 1001, 99_999} {
		ir := &interpRecorder{}
		ri, erri := cpu.Run(p, cpu.DefaultConfig(), ir, limit)
		sr := &streamRecorder{}
		rf, errf := cpu.RunFast(p, cpu.DefaultConfig(), sr, limit)
		if err := diffErrs(erri, errf); err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
		if err := diffResults(ri, rf); err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
		if ri.Instructions != limit {
			t.Fatalf("limit %d: interpreter retired %d", limit, ri.Instructions)
		}
		// A striding monitor must also see exactly the limit.
		mr := &mixRecorder{schedule: []uint64{1 << 40}}
		if _, err := cpu.RunFast(p, cpu.DefaultConfig(), mr, limit); err != cpu.ErrInstrLimit {
			t.Fatalf("limit %d: fast stride err = %v", limit, err)
		}
		if mr.instrs != limit {
			t.Fatalf("limit %d: fast stride retired %d", limit, mr.instrs)
		}
	}
}

// TestEnginesMatchRunErrors: engine errors (call stack overflow, empty
// ret) carry identical text on both paths.
func TestEnginesMatchRunErrors(t *testing.T) {
	deep := program.NewBuilder("deep")
	main := deep.Func("main")
	main.Block("body").Call("f")
	main.Block("exit").Halt()
	f := deep.Func("f")
	f.Block("body").Call("f") // unbounded recursion
	f.Block("exit").Ret()
	p, err := deep.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := cpu.DefaultConfig()
	cfg.MaxCallDepth = 16
	_, erri := cpu.Run(p, cfg, &interpRecorder{}, 0)
	_, errf := cpu.RunFast(p, cfg, &streamRecorder{}, 0)
	if erri == nil || errf == nil {
		t.Fatalf("expected overflow errors, got interp=%v fast=%v", erri, errf)
	}
	if err := diffErrs(erri, errf); err != nil {
		t.Fatal(err)
	}
}

// fuzzCount returns the number of fuzzed programs for the default run.
func fuzzCount() int {
	if testing.Short() {
		return 150
	}
	return 1000
}

// TestFuzzEngineEquivalence is the randomized differential property test:
// generated programs, full battery, shrink on failure.
func TestFuzzEngineEquivalence(t *testing.T) {
	cfg := program.DefaultGenConfig()
	const maxInstrs = 5_000_000 // safety net; both engines must agree even if hit
	n := fuzzCount()
	for seed := uint64(0); seed < uint64(n); seed++ {
		p := program.Random(seed, cfg)
		msg := diffProgram(p, maxInstrs)
		if msg == "" {
			continue
		}
		min := cfg.Shrink(func(c program.GenConfig) bool {
			return diffProgram(program.Random(seed, c), maxInstrs) != ""
		})
		minMsg := diffProgram(program.Random(seed, min), maxInstrs)
		t.Fatalf("engine divergence at seed %d\n  original cfg %+v: %s\n  minimal cfg %+v: %s\n  minimal program (%d instrs):\n%s",
			seed, cfg, msg, min, minMsg,
			program.Random(seed, min).NumInstrs(), disasmProgram(program.Random(seed, min)))
	}
}

// TestDiffBatteryCoversAllVariants pins the variant classification of
// every monitor shape the differential battery drives through RunFast:
// the fuzz battery only proves what it covers, so the covered set must
// provably span all three specialized loops plus the interpreter
// fallback. If a classification rule changes and silently reroutes a
// battery monitor to a different loop, this test fails before the
// coverage gap can hide.
func TestDiffBatteryCoversAllVariants(t *testing.T) {
	type entry struct {
		name string
		mon  cpu.Monitor
		want cpu.Variant
	}
	entries := []entry{
		{"interpRecorder", &interpRecorder{}, cpu.VariantInterp},
		{"streamRecorder", &streamRecorder{}, cpu.VariantFull},
		{"mixRecorder", &mixRecorder{schedule: []uint64{1}}, cpu.VariantFull},
		{"leanStreamRecorder", &leanStreamRecorder{}, cpu.VariantLean},
		{"leanMixRecorder", &leanMixRecorder{schedule: []uint64{1}}, cpu.VariantLean},
		{"NopMonitor", cpu.NopMonitor{}, cpu.VariantNop},
	}
	// The PMU grid must exercise both the lean loop (counting-shaped
	// events, no LBR) and the full loop (LBR capture wants the branch
	// stream).
	for i, cfg := range pmuConfigGrid(7) {
		want := cpu.VariantLean
		if cfg.CaptureLBR {
			want = cpu.VariantFull
		}
		entries = append(entries, entry{fmt.Sprintf("pmu[%d]", i), pmu.New(cfg), want})
	}
	// Mux monitors hint the union over their event set: the three-event
	// grid config counts only Result-shaped classes and stays lean, the
	// rest count loads/stores/FP/call-ret and need the full loop.
	cpuCfg := cpu.DefaultConfig()
	for i, cfg := range muxConfigGrid(cpuCfg) {
		want := cpu.VariantFull
		if i == 0 {
			want = cpu.VariantLean
		}
		entries = append(entries, entry{fmt.Sprintf("mux[%d]", i), pmu.NewMux(cfg, nil), want})
	}
	covered := map[cpu.Variant]bool{}
	for _, e := range entries {
		got := cpu.FastVariant(e.mon)
		if got != e.want {
			t.Errorf("%s: FastVariant = %v, want %v", e.name, got, e.want)
		}
		covered[got] = true
	}
	for _, v := range []cpu.Variant{cpu.VariantInterp, cpu.VariantNop, cpu.VariantLean, cpu.VariantFull} {
		if !covered[v] {
			t.Errorf("differential battery covers no %v monitor", v)
		}
	}
}

// disasmProgram renders a small program for failure reports.
func disasmProgram(p *program.Program) string {
	out := ""
	for i := range p.Code {
		out += fmt.Sprintf("  %4d: %s\n", i, p.Code[i].Disasm())
		if i > 400 {
			out += "  ... (truncated)\n"
			break
		}
	}
	return out
}
