package cpu

import (
	"pmutrust/internal/isa"
	"pmutrust/internal/program"
)

// Engine selects the execution engine for a run. Both engines are
// bit-identical in every observable: Result, the monitor-visible event
// stream (for the fast engine, the bulk-advance contract below), and error
// text. The differential harness in this package and internal/sampling
// enforces that equivalence on the full workload grid and on fuzzed
// programs.
type Engine uint8

const (
	// EngineFast is the block-stride fast-path executor (RunFast), the
	// default everywhere: same results, a multiple of the speed.
	EngineFast Engine = iota
	// EngineInterp is the per-instruction reference interpreter (Run).
	EngineInterp
)

// String returns the engine name used by flags and benchmarks.
func (e Engine) String() string {
	switch e {
	case EngineFast:
		return "fast"
	case EngineInterp:
		return "interp"
	default:
		return "unknown"
	}
}

// RunEngine dispatches Run or RunFast according to eng.
func RunEngine(p *program.Program, cfg Config, mon Monitor, maxInstrs uint64, eng Engine) (Result, error) {
	if eng == EngineInterp {
		return Run(p, cfg, mon, maxInstrs)
	}
	return RunFast(p, cfg, mon, maxInstrs)
}

// BulkCounts is the per-event-class retirement total of one fast-path
// stride — everything a counting PMU can observe about a stride without
// seeing individual instructions. The fields mirror the countable events
// of internal/pmu. The Result-shaped classes (instructions, uops, taken
// branches, conditional branches, mispredicts) are computed as deltas of
// the engine's own run counters at flush time; the remaining classes cost
// one increment in the already-dispatched opcode case of the full loop,
// so richer multiplexed counting (loads, stores, FP ops, call/ret pairs)
// never forces the engine out of stride mode.
type BulkCounts struct {
	// Instrs is the number of retired instructions.
	Instrs uint64
	// Uops is the number of retired micro-ops.
	Uops uint64
	// TakenBranches counts retired taken control transfers.
	TakenBranches uint64
	// CondBranches counts retired conditional branches (taken or not).
	CondBranches uint64
	// Mispredicts counts mispredicted conditional branches.
	Mispredicts uint64
	// Loads and Stores count retired memory operations.
	Loads, Stores uint64
	// FPOps counts retired floating-point arithmetic (fadd/fmul/fdiv/fma).
	FPOps uint64
	// Calls and Rets count retired calls and returns.
	Calls, Rets uint64
}

// BulkClass is a bitmask over the fields of BulkCounts. Monitors use it
// (through BulkClassHinter) to declare which classes they actually read,
// which lets RunFast pick a specialized stride loop that skips the
// bookkeeping for every class the monitor ignores.
type BulkClass uint16

const (
	// BulkInstrs selects BulkCounts.Instrs.
	BulkInstrs BulkClass = 1 << iota
	// BulkUops selects BulkCounts.Uops.
	BulkUops
	// BulkTakenBranches selects BulkCounts.TakenBranches.
	BulkTakenBranches
	// BulkCondBranches selects BulkCounts.CondBranches.
	BulkCondBranches
	// BulkMispredicts selects BulkCounts.Mispredicts.
	BulkMispredicts
	// BulkLoads selects BulkCounts.Loads.
	BulkLoads
	// BulkStores selects BulkCounts.Stores.
	BulkStores
	// BulkFPOps selects BulkCounts.FPOps.
	BulkFPOps
	// BulkCalls selects BulkCounts.Calls.
	BulkCalls
	// BulkRets selects BulkCounts.Rets.
	BulkRets

	// BulkAll selects every class — the conservative default for monitors
	// that do not hint.
	BulkAll BulkClass = 1<<10 - 1
)

// leanBulkClasses are the classes the lean stride loop materializes: the
// ones the engine tracks for Result anyway, so their BulkCounts fields
// are flush-time deltas with zero per-instruction cost.
const leanBulkClasses = BulkInstrs | BulkUops | BulkTakenBranches | BulkCondBranches | BulkMispredicts

// BulkClassHinter is an optional refinement of FastMonitor: a monitor
// that implements it promises to read only the hinted BulkCounts fields
// in BulkRetire — every other field may arrive as zero. The hint (and
// WantBranches) must be constant over a run: RunFast consults both once
// at setup to select a specialized loop. The PMU hints the class of its
// configured event; the mux hints the union over its event set plus its
// inner unit's hint.
type BulkClassHinter interface {
	BulkClasses() BulkClass
}

// FastMonitor is the bulk-advance contract a Monitor may implement to let
// RunFast skip per-instruction event delivery. The protocol:
//
//   - FastHeadroom returns how many instructions the monitor can absorb
//     with no observable action of any kind — no sample, no overflow, no
//     interrupt bookkeeping, no counter rotation. 0 means "I must see
//     every retirement": the engine then delivers full RetireEvents
//     through OnRetire, exactly as the interpreter does, and asks again
//     after each one.
//   - While striding inside a headroom grant the engine does not call
//     OnRetire at all. It accumulates per-event-class totals (BulkCounts)
//     and flushes them with one BulkRetire call before the next
//     FastHeadroom query, the next OnRetire, or run end — so the monitor's
//     counters are exact at every point where it could observe them.
//   - If WantBranches reports true, the engine additionally reports every
//     retired taken branch during a stride via OnFastBranch, in retirement
//     order (the LBR ring must see all taken branches even when no sample
//     is near).
//
// The PMU and the multiplexed virtual PMU (internal/pmu PMU and Mux) are
// the production implementations; NopMonitor implements it trivially.
type FastMonitor interface {
	Monitor

	// FastHeadroom returns the number of instructions that can retire
	// without any monitor-observable action beyond bulk counting and the
	// branch stream; 0 demands per-instruction OnRetire delivery.
	FastHeadroom() uint64

	// WantBranches reports whether OnFastBranch must be called for every
	// taken branch retired inside a stride.
	WantBranches() bool

	// OnFastBranch records one retired taken branch (from, to are code
	// indices; op distinguishes calls and returns for call-stack-filtered
	// consumers).
	OnFastBranch(from, to uint32, op isa.Op)

	// BulkRetire accounts a completed stride's totals. The engine
	// guarantees the stride fits inside the last FastHeadroom grant.
	BulkRetire(c BulkCounts)
}

// NopMonitor's FastMonitor implementation: unlimited headroom, nothing
// recorded, so timing-only runs take the fast path end to end.

// FastHeadroom implements FastMonitor.
func (NopMonitor) FastHeadroom() uint64 { return 1 << 40 }

// WantBranches implements FastMonitor.
func (NopMonitor) WantBranches() bool { return false }

// OnFastBranch implements FastMonitor.
func (NopMonitor) OnFastBranch(from, to uint32, op isa.Op) {}

// BulkRetire implements FastMonitor.
func (NopMonitor) BulkRetire(c BulkCounts) {}

// BulkClasses implements BulkClassHinter: a NopMonitor reads nothing.
func (NopMonitor) BulkClasses() BulkClass { return 0 }

// Variant identifies which specialized execution loop RunFast selects for
// a monitor. The variants differ only in which bookkeeping they elide —
// every observable (Result, event stream, bulk totals, branch stream,
// error text) is bit-identical across all of them and the interpreter;
// the differential harness runs its full battery against each.
type Variant uint8

const (
	// VariantFull is the fully general stride loop: per-class bulk
	// accumulation and the OnFastBranch stream. Selected for any
	// FastMonitor that wants branches, reads classes beyond the
	// Result-shaped set, or does not hint.
	VariantFull Variant = iota
	// VariantLean is the counting-only loop: no branch stream, and every
	// bulk class the monitor reads is a flush-time delta of the engine's
	// own run counters — the stride body carries no monitor bookkeeping
	// at all. Selected for hinting monitors whose classes fit the
	// Result-shaped set (a sampling PMU on a Result-shaped event, a mux
	// over Result-shaped events with a conforming or absent inner unit).
	VariantLean
	// VariantNop is the monitor-free loop: no headroom protocol, no
	// flushes, no streams. Selected for NopMonitor (timing-only runs).
	VariantNop
	// VariantInterp marks a monitor with no FastMonitor implementation:
	// RunFast falls back to the reference interpreter.
	VariantInterp
)

// String returns the variant name used by tests and diagnostics.
func (v Variant) String() string {
	switch v {
	case VariantFull:
		return "full"
	case VariantLean:
		return "lean"
	case VariantNop:
		return "nop"
	case VariantInterp:
		return "interp"
	default:
		return "unknown"
	}
}

// FastVariant reports the specialized loop RunFast will select for mon.
// Exported so the differential suites can prove they cover every variant.
func FastVariant(mon Monitor) Variant {
	fm, ok := mon.(FastMonitor)
	if !ok {
		return VariantInterp
	}
	if _, ok := fm.(NopMonitor); ok {
		return VariantNop
	}
	if h, ok := fm.(BulkClassHinter); ok &&
		!fm.WantBranches() && h.BulkClasses()&^leanBulkClasses == 0 {
		return VariantLean
	}
	return VariantFull
}

// Decoded-instruction flag bits (fastInstr.fl), used by the generic
// (event-mode) body.
const (
	fReads1 = 1 << iota // reads Src1
	fReads2             // reads Src2
	fReadsF             // reads flags
	fWrites             // writes Dst
	fSetsF              // sets flags
	fCond               // conditional branch
)

// fastInstr is one predecoded instruction: the opcode's static property
// table (latency, uops, operand flags) flattened into the instruction so
// the stride loop never chases opInfo through method calls. The immediate
// and the branch target are mutually exclusive in the ISA (branches and
// calls carry no immediate operand), so they share one field and the
// whole record packs into 16 bytes — four instructions per cache line.
type fastInstr struct {
	imm  int64 // immediate, or the control-transfer target for jmp/jcc/call
	op   isa.Op
	dst  uint8
	src1 uint8
	src2 uint8
	lat  uint8
	uops uint8
	fl   uint8
}

// decodeProgram flattens p into the predecoded fast representation. The
// basic-block structure is what makes the stride loop's shape legal:
// program.Validate guarantees control transfers only terminate blocks and
// only target block heads, so a stride is a chain of whole blocks in which
// every instruction's successor is statically pc+1 except at block
// terminators — exactly the cases the specialized switch handles.
// Decode-time fused superinstructions: a cmp/cmpi whose immediate
// successor is a conditional branch that no control transfer targets
// (reachable only by falling out of the compare). The stride loops execute
// the pair in one dispatch, halving loop overhead on it; event mode
// executes the head as its plain compare and the branch as itself. The
// values sit directly after the ISA opcodes so the dispatch switches stay
// dense jump tables.
const (
	opCmpJz isa.Op = isa.Op(isa.NumOps) + iota
	opCmpJnz
	opCmpJlt
	opCmpJge
	opCmpiJz
	opCmpiJnz
	opCmpiJlt
	opCmpiJge
)

// ALU/memory/FP pair superinstructions: any fusable head glued to an
// untargeted successor from the same class (or an unconditional jmp). The
// head's opcode is rewritten to its opPair form; the glued instruction's
// entry stays intact and is read as the pair's second half.
const (
	opPairMov   isa.Op = isa.Op(isa.NumOps) + 8 + 0
	opPairMovi  isa.Op = isa.Op(isa.NumOps) + 8 + 1
	opPairAdd   isa.Op = isa.Op(isa.NumOps) + 8 + 2
	opPairAddi  isa.Op = isa.Op(isa.NumOps) + 8 + 3
	opPairSub   isa.Op = isa.Op(isa.NumOps) + 8 + 4
	opPairMul   isa.Op = isa.Op(isa.NumOps) + 8 + 5
	opPairDiv   isa.Op = isa.Op(isa.NumOps) + 8 + 6
	opPairRem   isa.Op = isa.Op(isa.NumOps) + 8 + 7
	opPairAnd   isa.Op = isa.Op(isa.NumOps) + 8 + 8
	opPairOr    isa.Op = isa.Op(isa.NumOps) + 8 + 9
	opPairXor   isa.Op = isa.Op(isa.NumOps) + 8 + 10
	opPairShl   isa.Op = isa.Op(isa.NumOps) + 8 + 11
	opPairShr   isa.Op = isa.Op(isa.NumOps) + 8 + 12
	opPairLoad  isa.Op = isa.Op(isa.NumOps) + 8 + 13
	opPairStore isa.Op = isa.Op(isa.NumOps) + 8 + 14
	opPairFadd  isa.Op = isa.Op(isa.NumOps) + 8 + 15
	opPairFmul  isa.Op = isa.Op(isa.NumOps) + 8 + 16
	opPairFdiv  isa.Op = isa.Op(isa.NumOps) + 8 + 17
	opPairFma   isa.Op = isa.Op(isa.NumOps) + 8 + 18
)

// pairPlain maps opPair opcodes (offset by opPairMov) back to the head's
// plain opcode, for event-mode execution and fusability checks.
var pairPlain = [...]isa.Op{
	isa.OpMov,
	isa.OpMovi,
	isa.OpAdd,
	isa.OpAddi,
	isa.OpSub,
	isa.OpMul,
	isa.OpDiv,
	isa.OpRem,
	isa.OpAnd,
	isa.OpOr,
	isa.OpXor,
	isa.OpShl,
	isa.OpShr,
	isa.OpLoad,
	isa.OpStore,
	isa.OpFadd,
	isa.OpFmul,
	isa.OpFdiv,
	isa.OpFma,
}

// unfuse maps a fused decode-time opcode back to the plain opcode of its
// head instruction.
func unfuse(op isa.Op) isa.Op {
	switch {
	case op >= opPairMov:
		return pairPlain[op-opPairMov]
	case op >= opCmpiJz:
		return isa.OpCmpi
	default:
		return isa.OpCmp
	}
}

func decodeProgram(p *program.Program) []fastInstr {
	code := make([]fastInstr, len(p.Code))
	for i := range p.Code {
		in := &p.Code[i]
		op := in.Op
		d := fastInstr{
			imm:  in.Imm,
			op:   op,
			dst:  uint8(in.Dst),
			src1: uint8(in.Src1),
			src2: uint8(in.Src2),
		}
		switch op {
		case isa.OpJmp, isa.OpJz, isa.OpJnz, isa.OpJlt, isa.OpJge, isa.OpCall:
			d.imm = int64(in.Target)
		}
		if op.Valid() {
			d.lat = op.Latency()
			d.uops = op.Uops()
			var fl uint8
			if op.ReadsSrc1() {
				fl |= fReads1
			}
			if op.ReadsSrc2() {
				fl |= fReads2
			}
			if op.ReadsFlags() {
				fl |= fReadsF
			}
			if op.WritesDst() {
				fl |= fWrites
			}
			if op.SetsFlags() {
				fl |= fSetsF
			}
			if op.IsCondBranch() {
				fl |= fCond
			}
			d.fl = fl
		}
		code[i] = d
	}

	// Fusion pass: mark every instruction a control transfer can land on
	// (branch/call targets, return addresses, function entries), then fuse
	// each compare whose successor is an untargeted conditional branch.
	targeted := make([]bool, len(p.Code)+1)
	for i := range p.Code {
		in := &p.Code[i]
		switch in.Op {
		case isa.OpJmp, isa.OpJz, isa.OpJnz, isa.OpJlt, isa.OpJge:
			if int(in.Target) < len(targeted) {
				targeted[in.Target] = true
			}
		case isa.OpCall:
			if int(in.Target) < len(targeted) {
				targeted[in.Target] = true
			}
			targeted[i+1] = true // a ret lands on the call's successor
		}
	}
	for _, f := range p.Funcs {
		if int(f.Start) < len(targeted) {
			targeted[f.Start] = true
		}
	}
	for i := 0; i+1 < len(code); {
		if targeted[i+1] {
			i++
			continue
		}
		head, second := code[i].op, code[i+1].op
		if head == isa.OpCmp || head == isa.OpCmpi {
			var fused isa.Op
			switch second {
			case isa.OpJz:
				fused = opCmpJz
			case isa.OpJnz:
				fused = opCmpJnz
			case isa.OpJlt:
				fused = opCmpJlt
			case isa.OpJge:
				fused = opCmpJge
			}
			if fused != 0 {
				if head == isa.OpCmpi {
					fused += opCmpiJz - opCmpJz
				}
				code[i].op = fused
				i += 2
				continue
			}
			i++
			continue
		}
		if hf, ok := pairHeadOp(head); ok && pairSecondOK(second) {
			code[i].op = hf
			i += 2
			continue
		}
		i++
	}
	return code
}

// regState is one architectural register's simulation state: its value and
// the cycle its last writer completes. Interleaving the two halves the
// cache lines the stride loops touch per operand.
type regState struct {
	val   int64
	ready uint64
}

// fastMem sizes the run's memory to the next power of two (at least one
// word) so address wrapping is a mask, exactly like the interpreter's
// state. Callers derive the mask as int64(len(mem)-1) so the bounds-check
// prover sees every masked index fit the slice.
func fastMem(p *program.Program) []int64 {
	memWords := 1
	for memWords < p.MemWords {
		memWords <<= 1
	}
	return make([]int64, memWords)
}

// predictUpdate is predict and update fused into one table access, used
// by the fast engine's stride loops (the interpreter keeps the two-step
// form; semantics are identical and the differential harness proves it).
func (pr *predictor) predictUpdate(pc uint32, taken bool) bool {
	// Mask against len(t)-1 (== pr.mask by construction in init) so the
	// prove pass elides the table bounds checks in the inlined hot loops;
	// the impossible empty-table guard gives it the len ≥ 1 fact it needs.
	t := pr.table
	if len(t) == 0 {
		return false
	}
	i := int(pc) & (len(t) - 1)
	c := t[i]
	if taken {
		if c < 3 {
			t[i] = c + 1
		}
	} else {
		if c > 0 {
			t[i] = c - 1
		}
	}
	return c >= 2
}

// RunFast executes p to completion under cfg, like Run, but advances in
// block-structured strides whenever mon (a FastMonitor) reports headroom:
// inside a stride no RetireEvents are built and no per-instruction monitor
// calls are made — retirement totals are flushed in bulk at observation
// boundaries, and the stride loop runs a per-opcode specialized body
// (operand readiness, latency and writeback folded into each case; taken
// branches handled at block terminators, appending to the monitor's LBR
// stream when it wants them). The engine drops to the generic
// per-instruction event path whenever the monitor demands it (for the PMU:
// counter within one block of overflow, armed PEBS capture window, pending
// imprecise PMI or displaced IBS tag).
//
// The loop itself is specialized to the monitor's shape at setup (see
// Variant and FastVariant): NopMonitor runs a monitor-free loop,
// counting-only monitors whose bulk classes fit the Result-shaped set run
// a loop whose stride body carries no monitor bookkeeping at all, and
// everything else runs the fully general loop. Interface dispatch on the
// monitor therefore never appears inside a stride — only at flush
// boundaries and in event mode.
//
// Functional semantics, the timing model, Result, the sample stream and
// error text are bit-identical to Run across every variant; the
// differential harness in this package and internal/sampling enforces it.
// Opcodes must be valid and register indices < isa.NumRegs —
// program.Validate checks both, and Build never produces anything else.
// The contract holds for validated programs only: on unvalidated garbage
// the engines may differ (both panic on invalid opcodes, but an
// out-of-range register panics the interpreter while the fast path's
// deliberately oversized register file reads phantom zeros).
//
// A monitor that does not implement FastMonitor falls back to Run.
func RunFast(p *program.Program, cfg Config, mon Monitor, maxInstrs uint64) (Result, error) {
	cfg = cfg.withDefaults()
	if maxInstrs == 0 {
		maxInstrs = 1 << 40
	}
	switch FastVariant(mon) {
	case VariantInterp:
		return Run(p, cfg, mon, maxInstrs)
	case VariantNop:
		return runFastNop(p, cfg, maxInstrs)
	case VariantLean:
		return runFastLean(p, cfg, mon.(FastMonitor), maxInstrs)
	default:
		return runFastFull(p, cfg, mon.(FastMonitor), maxInstrs)
	}
}

// fastResult folds the hoisted counters back into a Result.
func fastResult(instrs, uops, cycles, taken, cond, mispred uint64) Result {
	return Result{
		Instructions:  instrs,
		Uops:          uops,
		Cycles:        cycles,
		TakenBranches: taken,
		CondBranches:  cond,
		Mispredicts:   mispred,
	}
}

// pairHeadOp returns the opPair opcode for a fusable pair head.
func pairHeadOp(op isa.Op) (isa.Op, bool) {
	for i, p := range pairPlain {
		if p == op {
			return opPairMov + isa.Op(i), true
		}
	}
	return 0, false
}

// pairSecondOK reports whether op may be glued as the second half of a
// pair: any fusable head class, or an unconditional jmp.
func pairSecondOK(op isa.Op) bool {
	if op == isa.OpJmp {
		return true
	}
	_, ok := pairHeadOp(op)
	return ok
}
