package cpu

import (
	"fmt"

	"pmutrust/internal/isa"
	"pmutrust/internal/program"
)

// Engine selects the execution engine for a run. Both engines are
// bit-identical in every observable: Result, the monitor-visible event
// stream (for the fast engine, the bulk-advance contract below), and error
// text. The differential harness in this package and internal/sampling
// enforces that equivalence on the full workload grid and on fuzzed
// programs.
type Engine uint8

const (
	// EngineFast is the block-stride fast-path executor (RunFast), the
	// default everywhere: same results, a multiple of the speed.
	EngineFast Engine = iota
	// EngineInterp is the per-instruction reference interpreter (Run).
	EngineInterp
)

// String returns the engine name used by flags and benchmarks.
func (e Engine) String() string {
	switch e {
	case EngineFast:
		return "fast"
	case EngineInterp:
		return "interp"
	default:
		return "unknown"
	}
}

// RunEngine dispatches Run or RunFast according to eng.
func RunEngine(p *program.Program, cfg Config, mon Monitor, maxInstrs uint64, eng Engine) (Result, error) {
	if eng == EngineInterp {
		return Run(p, cfg, mon, maxInstrs)
	}
	return RunFast(p, cfg, mon, maxInstrs)
}

// BulkCounts is the per-event-class retirement total of one fast-path
// stride — everything a counting PMU can observe about a stride without
// seeing individual instructions. The fields mirror the countable events
// of internal/pmu: per-opcode-class counts are accumulated by the stride
// loop at the cost of one increment in the already-dispatched opcode
// case, so richer multiplexed counting (loads, stores, FP ops, call/ret
// pairs, mispredicts) never forces the engine out of stride mode.
type BulkCounts struct {
	// Instrs is the number of retired instructions.
	Instrs uint64
	// Uops is the number of retired micro-ops.
	Uops uint64
	// TakenBranches counts retired taken control transfers.
	TakenBranches uint64
	// CondBranches counts retired conditional branches (taken or not).
	CondBranches uint64
	// Mispredicts counts mispredicted conditional branches.
	Mispredicts uint64
	// Loads and Stores count retired memory operations.
	Loads, Stores uint64
	// FPOps counts retired floating-point arithmetic (fadd/fmul/fdiv/fma).
	FPOps uint64
	// Calls and Rets count retired calls and returns.
	Calls, Rets uint64
}

// FastMonitor is the bulk-advance contract a Monitor may implement to let
// RunFast skip per-instruction event delivery. The protocol:
//
//   - FastHeadroom returns how many instructions the monitor can absorb
//     with no observable action of any kind — no sample, no overflow, no
//     interrupt bookkeeping, no counter rotation. 0 means "I must see
//     every retirement": the engine then delivers full RetireEvents
//     through OnRetire, exactly as the interpreter does, and asks again
//     after each one.
//   - While striding inside a headroom grant the engine does not call
//     OnRetire at all. It accumulates per-event-class totals (BulkCounts)
//     and flushes them with one BulkRetire call before the next
//     FastHeadroom query, the next OnRetire, or run end — so the monitor's
//     counters are exact at every point where it could observe them.
//   - If WantBranches reports true, the engine additionally reports every
//     retired taken branch during a stride via OnFastBranch, in retirement
//     order (the LBR ring must see all taken branches even when no sample
//     is near).
//
// The PMU and the multiplexed virtual PMU (internal/pmu PMU and Mux) are
// the production implementations; NopMonitor implements it trivially.
type FastMonitor interface {
	Monitor

	// FastHeadroom returns the number of instructions that can retire
	// without any monitor-observable action beyond bulk counting and the
	// branch stream; 0 demands per-instruction OnRetire delivery.
	FastHeadroom() uint64

	// WantBranches reports whether OnFastBranch must be called for every
	// taken branch retired inside a stride.
	WantBranches() bool

	// OnFastBranch records one retired taken branch (from, to are code
	// indices; op distinguishes calls and returns for call-stack-filtered
	// consumers).
	OnFastBranch(from, to uint32, op isa.Op)

	// BulkRetire accounts a completed stride's totals. The engine
	// guarantees the stride fits inside the last FastHeadroom grant.
	BulkRetire(c BulkCounts)
}

// NopMonitor's FastMonitor implementation: unlimited headroom, nothing
// recorded, so timing-only runs take the fast path end to end.

// FastHeadroom implements FastMonitor.
func (NopMonitor) FastHeadroom() uint64 { return 1 << 40 }

// WantBranches implements FastMonitor.
func (NopMonitor) WantBranches() bool { return false }

// OnFastBranch implements FastMonitor.
func (NopMonitor) OnFastBranch(from, to uint32, op isa.Op) {}

// BulkRetire implements FastMonitor.
func (NopMonitor) BulkRetire(c BulkCounts) {}

// Decoded-instruction flag bits (fastInstr.fl), used by the generic
// (event-mode) body.
const (
	fReads1 = 1 << iota // reads Src1
	fReads2             // reads Src2
	fReadsF             // reads flags
	fWrites             // writes Dst
	fSetsF              // sets flags
	fCond               // conditional branch
)

// fastInstr is one predecoded instruction: the opcode's static property
// table (latency, uops, operand flags) flattened into the instruction so
// the stride loop never chases opInfo through method calls.
type fastInstr struct {
	imm    int64
	target int32
	op     isa.Op
	dst    uint8
	src1   uint8
	src2   uint8
	lat    uint8
	uops   uint8
	fl     uint8
}

// decodeProgram flattens p into the predecoded fast representation. The
// basic-block structure is what makes the stride loop's shape legal:
// program.Validate guarantees control transfers only terminate blocks and
// only target block heads, so a stride is a chain of whole blocks in which
// every instruction's successor is statically pc+1 except at block
// terminators — exactly the cases the specialized switch handles.
func decodeProgram(p *program.Program) []fastInstr {
	code := make([]fastInstr, len(p.Code))
	for i := range p.Code {
		in := &p.Code[i]
		op := in.Op
		d := fastInstr{
			imm:    in.Imm,
			target: in.Target,
			op:     op,
			dst:    uint8(in.Dst),
			src1:   uint8(in.Src1),
			src2:   uint8(in.Src2),
		}
		if op.Valid() {
			d.lat = op.Latency()
			d.uops = op.Uops()
			var fl uint8
			if op.ReadsSrc1() {
				fl |= fReads1
			}
			if op.ReadsSrc2() {
				fl |= fReads2
			}
			if op.ReadsFlags() {
				fl |= fReadsF
			}
			if op.WritesDst() {
				fl |= fWrites
			}
			if op.SetsFlags() {
				fl |= fSetsF
			}
			if op.IsCondBranch() {
				fl |= fCond
			}
			d.fl = fl
		}
		code[i] = d
	}
	return code
}

// RunFast executes p to completion under cfg, like Run, but advances in
// block-structured strides whenever mon (a FastMonitor) reports headroom:
// inside a stride no RetireEvents are built and no per-instruction monitor
// calls are made — retirement totals are flushed in bulk at observation
// boundaries, and the stride loop runs a per-opcode specialized body
// (operand readiness, latency and writeback folded into each case; taken
// branches handled at block terminators, appending to the monitor's LBR
// stream when it wants them). The engine drops to the generic
// per-instruction event path whenever the monitor demands it (for the PMU:
// counter within one block of overflow, armed PEBS capture window, pending
// imprecise PMI or displaced IBS tag).
//
// Functional semantics, the timing model, Result, the sample stream and
// error text are bit-identical to Run; the differential harness in this
// package and internal/sampling enforces it. Opcodes must be valid and
// register indices < isa.NumRegs — program.Validate checks both, and
// Build never produces anything else. The contract holds for validated
// programs only: on unvalidated garbage the engines may differ (both
// panic on invalid opcodes, but an out-of-range register panics the
// interpreter while the fast path's deliberately oversized register file
// reads phantom zeros).
//
// A monitor that does not implement FastMonitor falls back to Run.
func RunFast(p *program.Program, cfg Config, mon Monitor, maxInstrs uint64) (Result, error) {
	fm, ok := mon.(FastMonitor)
	if !ok {
		return Run(p, cfg, mon, maxInstrs)
	}
	cfg = cfg.withDefaults()
	if maxInstrs == 0 {
		maxInstrs = 1 << 40
	}
	code := decodeProgram(p)

	// Architectural state (mirrors state in engine.go). The register files
	// are sized 256 so uint8 operand indices never need a bounds check in
	// the stride loop; validated programs only touch the first NumRegs
	// entries.
	memWords := 1
	for memWords < p.MemWords {
		memWords <<= 1
	}
	mem := make([]int64, memWords)
	memMask := int64(memWords - 1)
	stack := make([]uint32, 0, 64)
	var regs [256]int64
	var regReady [256]uint64
	var flags int64
	var pred predictor
	pred.init(cfg.PredictorBits)

	// Timing and count state, hoisted to locals so the stride loop keeps
	// it in registers; folded into Result at the exit points.
	var flagsReady, dispCycle, retCycle, redirect uint64
	var dispCount, retCount int
	var instrs, uopsDone, takenBr, condBr, mispred uint64

	dw, rw := cfg.DispatchWidth, cfg.RetireWidth
	mispen, bubble := cfg.MispredictPenalty, cfg.TakenBranchBubble
	maxDepth := cfg.MaxCallDepth
	wantBr := fm.WantBranches()

	pc := int32(p.Funcs[0].Start)

	// Stride accounting: headroom is the remainder of the monitor's last
	// grant; acc holds retired-but-not-yet-flushed per-class totals
	// (uopsDone is updated only when acc.Uops is folded in, so Result.Uops
	// is read as uopsDone after a flush).
	var headroom uint64
	var acc BulkCounts

	// Cold-path error state (call overflow / ret underflow), reached by
	// goto so the hot loop carries no error plumbing.
	var pendingErr error
	var nDone uint64 // instructions completed in the failing stride

	for {
		if headroom == 0 {
			if acc.Instrs != 0 {
				uopsDone += acc.Uops
				fm.BulkRetire(acc)
				acc = BulkCounts{}
			}
			headroom = fm.FastHeadroom()
		}

		if headroom == 0 {
			// ---- event mode: one instruction, generic body, full event ----
			in := &code[pc]
			idx := uint32(pc)

			d := dispCycle
			if dispCount >= dw {
				d++
				dispCount = 0
			}
			if redirect > d {
				d = redirect
				dispCount = 0
			}
			dispCycle = d
			dispCount++

			ready := d
			fl := in.fl
			if fl&fReads1 != 0 {
				ready = max(ready, regReady[in.src1])
			}
			if fl&fReads2 != 0 {
				ready = max(ready, regReady[in.src2])
			}
			if fl&fReadsF != 0 {
				ready = max(ready, flagsReady)
			}
			complete := ready + uint64(in.lat)

			var taken, halt bool
			var target int32
			next := pc + 1
			switch in.op {
			case isa.OpNop:
			case isa.OpMov:
				regs[in.dst] = regs[in.src1]
			case isa.OpMovi:
				regs[in.dst] = in.imm
			case isa.OpAdd:
				regs[in.dst] = regs[in.src1] + regs[in.src2]
			case isa.OpAddi:
				regs[in.dst] = regs[in.src1] + in.imm
			case isa.OpSub:
				regs[in.dst] = regs[in.src1] - regs[in.src2]
			case isa.OpMul:
				regs[in.dst] = regs[in.src1] * regs[in.src2]
			case isa.OpDiv:
				if v := regs[in.src2]; v != 0 {
					regs[in.dst] = regs[in.src1] / v
				} else {
					regs[in.dst] = 0
				}
			case isa.OpRem:
				if v := regs[in.src2]; v != 0 {
					regs[in.dst] = regs[in.src1] % v
				} else {
					regs[in.dst] = 0
				}
			case isa.OpAnd:
				regs[in.dst] = regs[in.src1] & regs[in.src2]
			case isa.OpOr:
				regs[in.dst] = regs[in.src1] | regs[in.src2]
			case isa.OpXor:
				regs[in.dst] = regs[in.src1] ^ regs[in.src2]
			case isa.OpShl:
				regs[in.dst] = regs[in.src1] << uint(in.imm&63)
			case isa.OpShr:
				regs[in.dst] = int64(uint64(regs[in.src1]) >> uint(in.imm&63))
			case isa.OpLoad:
				regs[in.dst] = mem[(regs[in.src1]+in.imm)&memMask]
			case isa.OpStore:
				mem[(regs[in.src2]+in.imm)&memMask] = regs[in.src1]
			case isa.OpFadd:
				regs[in.dst] = regs[in.src1] + regs[in.src2]
			case isa.OpFmul:
				regs[in.dst] = regs[in.src1] * regs[in.src2]
			case isa.OpFdiv:
				if v := regs[in.src2]; v != 0 {
					regs[in.dst] = regs[in.src1] / v
				} else {
					regs[in.dst] = 0
				}
			case isa.OpFma:
				regs[in.dst] += regs[in.src1] * regs[in.src2]
			case isa.OpCmp:
				flags = regs[in.src1] - regs[in.src2]
			case isa.OpCmpi:
				flags = regs[in.src1] - in.imm
			case isa.OpJmp:
				taken, target, next = true, in.target, in.target
			case isa.OpJz:
				if flags == 0 {
					taken, target, next = true, in.target, in.target
				}
			case isa.OpJnz:
				if flags != 0 {
					taken, target, next = true, in.target, in.target
				}
			case isa.OpJlt:
				if flags < 0 {
					taken, target, next = true, in.target, in.target
				}
			case isa.OpJge:
				if flags >= 0 {
					taken, target, next = true, in.target, in.target
				}
			case isa.OpCall:
				if len(stack) >= maxDepth {
					pendingErr = errCallOverflow(len(stack))
					nDone = 0
					goto fail
				}
				stack = append(stack, uint32(pc+1))
				taken, target, next = true, in.target, in.target
			case isa.OpRet:
				if len(stack) == 0 {
					pendingErr = errEmptyRet
					nDone = 0
					goto fail
				}
				ra := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				taken, target, next = true, int32(ra), int32(ra)
			case isa.OpHalt:
				halt = true
			default:
				panic(fmt.Sprintf("cpu: invalid opcode %d at index %d", in.op, idx))
			}

			if fl&fWrites != 0 {
				regReady[in.dst] = complete
			}
			if fl&fSetsF != 0 {
				flagsReady = complete
			}

			evMispred := false
			if fl&fCond != 0 {
				condBr++
				predTaken := pred.predict(idx)
				pred.update(idx, taken)
				if predTaken != taken {
					mispred++
					evMispred = true
					redirect = complete + mispen
				} else if taken {
					redirect = d + 1 + bubble
				}
			} else if taken {
				redirect = d + 1 + bubble
			}

			rc := complete
			if rc < retCycle {
				rc = retCycle
			}
			if rc == retCycle {
				if retCount >= rw {
					rc++
					retCount = 0
				}
			} else {
				retCount = 0
			}
			retCycle = rc
			retCount++

			instrs++
			uopsDone += uint64(in.uops)
			if taken {
				takenBr++
			}

			fm.OnRetire(RetireEvent{
				Idx:     idx,
				Cycle:   rc,
				Seq:     instrs,
				Op:      in.op,
				Uops:    in.uops,
				Taken:   taken,
				Mispred: evMispred,
				Target:  uint32(target),
			})

			if halt {
				return fastResult(instrs, uopsDone, retCycle, takenBr, condBr, mispred), nil
			}
			if instrs >= maxInstrs {
				return fastResult(instrs, uopsDone, retCycle, takenBr, condBr, mispred), ErrInstrLimit
			}
			pc = next
			continue
		}

		// ---- stride mode: specialized per-opcode loop, no per-instruction
		// monitor calls; taken branches stream to the LBR only when the
		// monitor wants them.
		{
			n := headroom
			if left := maxInstrs - instrs; n > left {
				n = left
			}
			executed := n
			halted := false

			for i := n; i > 0; i-- {
				in := &code[pc]

				d := dispCycle
				if dispCount >= dw {
					d++
					dispCount = 0
				}
				if redirect > d {
					d = redirect
					dispCount = 0
				}
				dispCycle = d
				dispCount++

				var complete uint64
				next := pc + 1
				switch in.op {
				case isa.OpNop:
					complete = d + uint64(in.lat)
				case isa.OpMov:
					complete = max(d, regReady[in.src1]) + uint64(in.lat)
					regs[in.dst] = regs[in.src1]
					regReady[in.dst] = complete
				case isa.OpMovi:
					complete = d + uint64(in.lat)
					regs[in.dst] = in.imm
					regReady[in.dst] = complete
				case isa.OpAdd:
					complete = max(d, regReady[in.src1], regReady[in.src2]) + uint64(in.lat)
					regs[in.dst] = regs[in.src1] + regs[in.src2]
					regReady[in.dst] = complete
				case isa.OpAddi:
					complete = max(d, regReady[in.src1]) + uint64(in.lat)
					regs[in.dst] = regs[in.src1] + in.imm
					regReady[in.dst] = complete
				case isa.OpSub:
					complete = max(d, regReady[in.src1], regReady[in.src2]) + uint64(in.lat)
					regs[in.dst] = regs[in.src1] - regs[in.src2]
					regReady[in.dst] = complete
				case isa.OpMul:
					complete = max(d, regReady[in.src1], regReady[in.src2]) + uint64(in.lat)
					regs[in.dst] = regs[in.src1] * regs[in.src2]
					regReady[in.dst] = complete
				case isa.OpDiv:
					complete = max(d, regReady[in.src1], regReady[in.src2]) + uint64(in.lat)
					if v := regs[in.src2]; v != 0 {
						regs[in.dst] = regs[in.src1] / v
					} else {
						regs[in.dst] = 0
					}
					regReady[in.dst] = complete
				case isa.OpRem:
					complete = max(d, regReady[in.src1], regReady[in.src2]) + uint64(in.lat)
					if v := regs[in.src2]; v != 0 {
						regs[in.dst] = regs[in.src1] % v
					} else {
						regs[in.dst] = 0
					}
					regReady[in.dst] = complete
				case isa.OpAnd:
					complete = max(d, regReady[in.src1], regReady[in.src2]) + uint64(in.lat)
					regs[in.dst] = regs[in.src1] & regs[in.src2]
					regReady[in.dst] = complete
				case isa.OpOr:
					complete = max(d, regReady[in.src1], regReady[in.src2]) + uint64(in.lat)
					regs[in.dst] = regs[in.src1] | regs[in.src2]
					regReady[in.dst] = complete
				case isa.OpXor:
					complete = max(d, regReady[in.src1], regReady[in.src2]) + uint64(in.lat)
					regs[in.dst] = regs[in.src1] ^ regs[in.src2]
					regReady[in.dst] = complete
				case isa.OpShl:
					complete = max(d, regReady[in.src1]) + uint64(in.lat)
					regs[in.dst] = regs[in.src1] << uint(in.imm&63)
					regReady[in.dst] = complete
				case isa.OpShr:
					complete = max(d, regReady[in.src1]) + uint64(in.lat)
					regs[in.dst] = int64(uint64(regs[in.src1]) >> uint(in.imm&63))
					regReady[in.dst] = complete
				case isa.OpLoad:
					complete = max(d, regReady[in.src1]) + uint64(in.lat)
					regs[in.dst] = mem[(regs[in.src1]+in.imm)&memMask]
					regReady[in.dst] = complete
					acc.Loads++
				case isa.OpStore:
					complete = max(d, regReady[in.src1], regReady[in.src2]) + uint64(in.lat)
					mem[(regs[in.src2]+in.imm)&memMask] = regs[in.src1]
					acc.Stores++
				case isa.OpFadd:
					complete = max(d, regReady[in.src1], regReady[in.src2]) + uint64(in.lat)
					regs[in.dst] = regs[in.src1] + regs[in.src2]
					regReady[in.dst] = complete
					acc.FPOps++
				case isa.OpFmul:
					complete = max(d, regReady[in.src1], regReady[in.src2]) + uint64(in.lat)
					regs[in.dst] = regs[in.src1] * regs[in.src2]
					regReady[in.dst] = complete
					acc.FPOps++
				case isa.OpFdiv:
					complete = max(d, regReady[in.src1], regReady[in.src2]) + uint64(in.lat)
					if v := regs[in.src2]; v != 0 {
						regs[in.dst] = regs[in.src1] / v
					} else {
						regs[in.dst] = 0
					}
					regReady[in.dst] = complete
					acc.FPOps++
				case isa.OpFma:
					complete = max(d, regReady[in.src1], regReady[in.src2]) + uint64(in.lat)
					regs[in.dst] += regs[in.src1] * regs[in.src2]
					regReady[in.dst] = complete
					acc.FPOps++
				case isa.OpCmp:
					complete = max(d, regReady[in.src1], regReady[in.src2]) + uint64(in.lat)
					flags = regs[in.src1] - regs[in.src2]
					flagsReady = complete
				case isa.OpCmpi:
					complete = max(d, regReady[in.src1]) + uint64(in.lat)
					flags = regs[in.src1] - in.imm
					flagsReady = complete
				case isa.OpJmp:
					complete = d + uint64(in.lat)
					next = in.target
					redirect = d + 1 + bubble
					takenBr++
					acc.TakenBranches++
					if wantBr {
						fm.OnFastBranch(uint32(pc), uint32(in.target), in.op)
					}
				case isa.OpJz, isa.OpJnz, isa.OpJlt, isa.OpJge:
					complete = max(d, flagsReady) + uint64(in.lat)
					var taken bool
					switch in.op {
					case isa.OpJz:
						taken = flags == 0
					case isa.OpJnz:
						taken = flags != 0
					case isa.OpJlt:
						taken = flags < 0
					default:
						taken = flags >= 0
					}
					condBr++
					acc.CondBranches++
					idx := uint32(pc)
					predTaken := pred.predict(idx)
					pred.update(idx, taken)
					if predTaken != taken {
						mispred++
						acc.Mispredicts++
						redirect = complete + mispen
					} else if taken {
						redirect = d + 1 + bubble
					}
					if taken {
						next = in.target
						takenBr++
						acc.TakenBranches++
						if wantBr {
							fm.OnFastBranch(idx, uint32(in.target), in.op)
						}
					}
				case isa.OpCall:
					complete = d + uint64(in.lat)
					if len(stack) >= maxDepth {
						pendingErr = errCallOverflow(len(stack))
						nDone = n - i
						goto fail
					}
					stack = append(stack, uint32(pc+1))
					next = in.target
					redirect = d + 1 + bubble
					takenBr++
					acc.TakenBranches++
					acc.Calls++
					if wantBr {
						fm.OnFastBranch(uint32(pc), uint32(in.target), in.op)
					}
				case isa.OpRet:
					complete = d + uint64(in.lat)
					if len(stack) == 0 {
						pendingErr = errEmptyRet
						nDone = n - i
						goto fail
					}
					ra := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					next = int32(ra)
					redirect = d + 1 + bubble
					takenBr++
					acc.TakenBranches++
					acc.Rets++
					if wantBr {
						fm.OnFastBranch(uint32(pc), ra, in.op)
					}
				case isa.OpHalt:
					complete = d + uint64(in.lat)
					halted = true
				default:
					panic(fmt.Sprintf("cpu: invalid opcode %d at index %d", in.op, pc))
				}

				acc.Uops += uint64(in.uops)

				rc := complete
				if rc < retCycle {
					rc = retCycle
				}
				if rc == retCycle {
					if retCount >= rw {
						rc++
						retCount = 0
					}
				} else {
					retCount = 0
				}
				retCycle = rc
				retCount++

				if halted {
					executed = n - i + 1
					break
				}
				pc = next
			}

			instrs += executed
			headroom -= executed
			acc.Instrs += executed
			if halted {
				uopsDone += acc.Uops
				fm.BulkRetire(acc)
				return fastResult(instrs, uopsDone, retCycle, takenBr, condBr, mispred), nil
			}
			if instrs >= maxInstrs {
				uopsDone += acc.Uops
				fm.BulkRetire(acc)
				return fastResult(instrs, uopsDone, retCycle, takenBr, condBr, mispred), ErrInstrLimit
			}
		}
		continue

	fail:
		// A call/ret fault aborts the run before the faulting instruction
		// retires (matching the interpreter): account the stride's
		// completed prefix, flush, and wrap the error exactly as Run does.
		instrs += nDone
		acc.Instrs += nDone
		if acc.Instrs != 0 {
			uopsDone += acc.Uops
			fm.BulkRetire(acc)
		}
		return fastResult(instrs, uopsDone, retCycle, takenBr, condBr, mispred),
			runErr(uint32(pc), &p.Code[pc], pendingErr)
	}
}

// fastResult folds the hoisted counters back into a Result.
func fastResult(instrs, uops, cycles, taken, cond, mispred uint64) Result {
	return Result{
		Instructions:  instrs,
		Uops:          uops,
		Cycles:        cycles,
		TakenBranches: taken,
		CondBranches:  cond,
		Mispredicts:   mispred,
	}
}
