package cpu

import (
	"fmt"

	"pmutrust/internal/isa"
	"pmutrust/internal/program"
)

// runFastNop is the monitor-free specialized loop, selected for
// NopMonitor: timing-only runs with no headroom protocol, no flushes and
// no streams. Result and error text are bit-identical to the other
// variants and the interpreter.
func runFastNop(p *program.Program, cfg Config, maxInstrs uint64) (Result, error) {
	code := decodeProgram(p)

	mem := fastMem(p)
	_ = mem[0] // fastMem returns at least one word; lets prove elide masked-index checks
	memMask := int64(len(mem) - 1)
	stack := make([]uint32, 0, 64)
	var rf [256]regState
	var flags int64
	var pred predictor
	pred.init(cfg.PredictorBits)

	var flagsReady, dispCycle, retCycle, redirect uint64
	var dispCount, retCount int
	var uopsDone, takenBr, condBr, mispred uint64

	dw, rw := cfg.DispatchWidth, cfg.RetireWidth
	mispen, bubble := cfg.MispredictPenalty, cfg.TakenBranchBubble
	maxDepth := cfg.MaxCallDepth

	pc := int32(p.Funcs[0].Start)

	var pendingErr error
	var instrs uint64

	n := maxInstrs
	for i := n; i > 0; i-- {
		in := &code[pc]

		d := dispCycle
		if dispCount >= dw {
			d++
			dispCount = 0
		}
		if redirect > d {
			d = redirect
			dispCount = 0
		}
		dispCycle = d
		dispCount++

		var complete uint64
		next := pc + 1
		switch in.op {
		case isa.OpNop:
			complete = d + uint64(in.lat)
		case isa.OpMov:
			complete = max(d, rf[in.src1].ready) + uint64(in.lat)
			rf[in.dst].val = rf[in.src1].val
			rf[in.dst].ready = complete
		case isa.OpMovi:
			complete = d + uint64(in.lat)
			rf[in.dst].val = in.imm
			rf[in.dst].ready = complete
		case isa.OpAdd:
			complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
			rf[in.dst].val = rf[in.src1].val + rf[in.src2].val
			rf[in.dst].ready = complete
		case isa.OpAddi:
			complete = max(d, rf[in.src1].ready) + uint64(in.lat)
			rf[in.dst].val = rf[in.src1].val + in.imm
			rf[in.dst].ready = complete
		case isa.OpSub:
			complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
			rf[in.dst].val = rf[in.src1].val - rf[in.src2].val
			rf[in.dst].ready = complete
		case isa.OpMul:
			complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
			rf[in.dst].val = rf[in.src1].val * rf[in.src2].val
			rf[in.dst].ready = complete
		case isa.OpDiv:
			complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
			if v := rf[in.src2].val; v != 0 {
				rf[in.dst].val = rf[in.src1].val / v
			} else {
				rf[in.dst].val = 0
			}
			rf[in.dst].ready = complete
		case isa.OpRem:
			complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
			if v := rf[in.src2].val; v != 0 {
				rf[in.dst].val = rf[in.src1].val % v
			} else {
				rf[in.dst].val = 0
			}
			rf[in.dst].ready = complete
		case isa.OpAnd:
			complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
			rf[in.dst].val = rf[in.src1].val & rf[in.src2].val
			rf[in.dst].ready = complete
		case isa.OpOr:
			complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
			rf[in.dst].val = rf[in.src1].val | rf[in.src2].val
			rf[in.dst].ready = complete
		case isa.OpXor:
			complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
			rf[in.dst].val = rf[in.src1].val ^ rf[in.src2].val
			rf[in.dst].ready = complete
		case isa.OpShl:
			complete = max(d, rf[in.src1].ready) + uint64(in.lat)
			rf[in.dst].val = rf[in.src1].val << uint(in.imm&63)
			rf[in.dst].ready = complete
		case isa.OpShr:
			complete = max(d, rf[in.src1].ready) + uint64(in.lat)
			rf[in.dst].val = int64(uint64(rf[in.src1].val) >> uint(in.imm&63))
			rf[in.dst].ready = complete
		case isa.OpLoad:
			complete = max(d, rf[in.src1].ready) + uint64(in.lat)
			rf[in.dst].val = mem[(rf[in.src1].val+in.imm)&memMask]
			rf[in.dst].ready = complete
		case isa.OpStore:
			complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
			mem[(rf[in.src2].val+in.imm)&memMask] = rf[in.src1].val
		case isa.OpFadd:
			complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
			rf[in.dst].val = rf[in.src1].val + rf[in.src2].val
			rf[in.dst].ready = complete
		case isa.OpFmul:
			complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
			rf[in.dst].val = rf[in.src1].val * rf[in.src2].val
			rf[in.dst].ready = complete
		case isa.OpFdiv:
			complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
			if v := rf[in.src2].val; v != 0 {
				rf[in.dst].val = rf[in.src1].val / v
			} else {
				rf[in.dst].val = 0
			}
			rf[in.dst].ready = complete
		case isa.OpFma:
			complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
			rf[in.dst].val += rf[in.src1].val * rf[in.src2].val
			rf[in.dst].ready = complete
		case isa.OpCmp:
			complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
			flags = rf[in.src1].val - rf[in.src2].val
			flagsReady = complete
		case isa.OpCmpi:
			complete = max(d, rf[in.src1].ready) + uint64(in.lat)
			flags = rf[in.src1].val - in.imm
			flagsReady = complete
		case opCmpJz, opCmpJnz, opCmpJlt, opCmpJge, opCmpiJz, opCmpiJnz, opCmpiJlt, opCmpiJge:
			// Fused compare+branch: the compare retires here, then the
			// branch at pc+1 dispatches in the same iteration. The compare
			// already applied any pending redirect, so the branch dispatch
			// only needs the width rollover.
			op := in.op
			if op >= opCmpiJz {
				complete = max(d, rf[in.src1].ready) + uint64(in.lat)
				flags = rf[in.src1].val - in.imm
			} else {
				complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
				flags = rf[in.src1].val - rf[in.src2].val
			}
			flagsReady = complete
			uopsDone += uint64(in.uops)
			if complete > retCycle {
				retCycle = complete
				retCount = 1
			} else if retCount >= rw {
				retCycle++
				retCount = 1
			} else {
				retCount++
			}
			if i == 1 {
				// The grant ends at the compare; the branch runs at the
				// top of the next stride (or in event mode).
				pc++
				continue
			}
			i--
			jin := &code[pc+1]
			d2 := d
			if dispCount >= dw {
				d2++
				dispCount = 0
			}
			dispCycle = d2
			dispCount++
			complete = max(d2, flagsReady) + uint64(jin.lat)
			var taken bool
			switch op {
			case opCmpJz, opCmpiJz:
				taken = flags == 0
			case opCmpJnz, opCmpiJnz:
				taken = flags != 0
			case opCmpJlt, opCmpiJlt:
				taken = flags < 0
			default:
				taken = flags >= 0
			}
			condBr++
			idx := uint32(pc) + 1
			predTaken := pred.predictUpdate(idx, taken)
			if predTaken != taken {
				mispred++
				redirect = complete + mispen
			} else if taken {
				redirect = d2 + 1 + bubble
			}
			next = pc + 2
			if taken {
				next = int32(jin.imm)
				takenBr++
			}
			uopsDone += uint64(jin.uops)
			if complete > retCycle {
				retCycle = complete
				retCount = 1
			} else if retCount >= rw {
				retCycle++
				retCount = 1
			} else {
				retCount++
			}
			pc = next
			continue
		case isa.OpJmp:
			complete = d + uint64(in.lat)
			next = int32(in.imm)
			redirect = d + 1 + bubble
			takenBr++
		case isa.OpJz, isa.OpJnz, isa.OpJlt, isa.OpJge:
			complete = max(d, flagsReady) + uint64(in.lat)
			var taken bool
			switch in.op {
			case isa.OpJz:
				taken = flags == 0
			case isa.OpJnz:
				taken = flags != 0
			case isa.OpJlt:
				taken = flags < 0
			default:
				taken = flags >= 0
			}
			condBr++
			predTaken := pred.predictUpdate(uint32(pc), taken)
			if predTaken != taken {
				mispred++
				redirect = complete + mispen
			} else if taken {
				redirect = d + 1 + bubble
			}
			if taken {
				next = int32(in.imm)
				takenBr++
			}
		case isa.OpCall:
			complete = d + uint64(in.lat)
			if len(stack) >= maxDepth {
				pendingErr = errCallOverflow(len(stack))
				instrs = n - i
				goto fail
			}
			stack = append(stack, uint32(pc+1))
			next = int32(in.imm)
			redirect = d + 1 + bubble
			takenBr++
		case isa.OpRet:
			complete = d + uint64(in.lat)
			if len(stack) == 0 {
				pendingErr = errEmptyRet
				instrs = n - i
				goto fail
			}
			ra := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			next = int32(ra)
			redirect = d + 1 + bubble
			takenBr++
		case isa.OpHalt:
			complete = d + uint64(in.lat)
			uopsDone += uint64(in.uops)
			if complete > retCycle {
				retCycle = complete
			} else if retCount >= rw {
				retCycle++
			}
			instrs = n - i + 1
			return fastResult(instrs, uopsDone, retCycle, takenBr, condBr, mispred), nil
		case opPairMov:
			complete = max(d, rf[in.src1].ready) + uint64(in.lat)
			rf[in.dst].val = rf[in.src1].val
			rf[in.dst].ready = complete
			goto pairSecond
		case opPairMovi:
			complete = d + uint64(in.lat)
			rf[in.dst].val = in.imm
			rf[in.dst].ready = complete
			goto pairSecond
		case opPairAdd:
			complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
			rf[in.dst].val = rf[in.src1].val + rf[in.src2].val
			rf[in.dst].ready = complete
			goto pairSecond
		case opPairAddi:
			complete = max(d, rf[in.src1].ready) + uint64(in.lat)
			rf[in.dst].val = rf[in.src1].val + in.imm
			rf[in.dst].ready = complete
			goto pairSecond
		case opPairSub:
			complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
			rf[in.dst].val = rf[in.src1].val - rf[in.src2].val
			rf[in.dst].ready = complete
			goto pairSecond
		case opPairMul:
			complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
			rf[in.dst].val = rf[in.src1].val * rf[in.src2].val
			rf[in.dst].ready = complete
			goto pairSecond
		case opPairDiv:
			complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
			if v := rf[in.src2].val; v != 0 {
				rf[in.dst].val = rf[in.src1].val / v
			} else {
				rf[in.dst].val = 0
			}
			rf[in.dst].ready = complete
			goto pairSecond
		case opPairRem:
			complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
			if v := rf[in.src2].val; v != 0 {
				rf[in.dst].val = rf[in.src1].val % v
			} else {
				rf[in.dst].val = 0
			}
			rf[in.dst].ready = complete
			goto pairSecond
		case opPairAnd:
			complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
			rf[in.dst].val = rf[in.src1].val & rf[in.src2].val
			rf[in.dst].ready = complete
			goto pairSecond
		case opPairOr:
			complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
			rf[in.dst].val = rf[in.src1].val | rf[in.src2].val
			rf[in.dst].ready = complete
			goto pairSecond
		case opPairXor:
			complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
			rf[in.dst].val = rf[in.src1].val ^ rf[in.src2].val
			rf[in.dst].ready = complete
			goto pairSecond
		case opPairShl:
			complete = max(d, rf[in.src1].ready) + uint64(in.lat)
			rf[in.dst].val = rf[in.src1].val << uint(in.imm&63)
			rf[in.dst].ready = complete
			goto pairSecond
		case opPairShr:
			complete = max(d, rf[in.src1].ready) + uint64(in.lat)
			rf[in.dst].val = int64(uint64(rf[in.src1].val) >> uint(in.imm&63))
			rf[in.dst].ready = complete
			goto pairSecond
		case opPairFadd:
			complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
			rf[in.dst].val = rf[in.src1].val + rf[in.src2].val
			rf[in.dst].ready = complete
			goto pairSecond
		case opPairFmul:
			complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
			rf[in.dst].val = rf[in.src1].val * rf[in.src2].val
			rf[in.dst].ready = complete
			goto pairSecond
		case opPairFdiv:
			complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
			if v := rf[in.src2].val; v != 0 {
				rf[in.dst].val = rf[in.src1].val / v
			} else {
				rf[in.dst].val = 0
			}
			rf[in.dst].ready = complete
			goto pairSecond
		case opPairFma:
			complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
			rf[in.dst].val += rf[in.src1].val * rf[in.src2].val
			rf[in.dst].ready = complete
			goto pairSecond
		case opPairLoad:
			complete = max(d, rf[in.src1].ready) + uint64(in.lat)
			rf[in.dst].val = mem[(rf[in.src1].val+in.imm)&memMask]
			rf[in.dst].ready = complete
			goto pairSecond
		case opPairStore:
			complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
			mem[(rf[in.src2].val+in.imm)&memMask] = rf[in.src1].val
			goto pairSecond
		default:
			panic(fmt.Sprintf("cpu: invalid opcode %d at index %d", in.op, pc))
		}

		uopsDone += uint64(in.uops)

		if complete > retCycle {
			retCycle = complete
			retCount = 1
		} else if retCount >= rw {
			retCycle++
			retCount = 1
		} else {
			retCount++
		}

		pc = next
		continue

	pairSecond:
		// Second half of a fused pair: retire the head, then dispatch
		// the glued instruction at pc+1 in the same iteration. The head
		// applied any pending redirect and set none itself, so the
		// glued dispatch only needs the width rollover.
		uopsDone += uint64(in.uops)
		if complete > retCycle {
			retCycle = complete
			retCount = 1
		} else if retCount >= rw {
			retCycle++
			retCount = 1
		} else {
			retCount++
		}
		if i == 1 {
			// The grant ends at the head; the glued instruction runs
			// at the top of the next stride (or in event mode).
			pc++
			continue
		}
		i--
		jin := &code[pc+1]
		d2 := d
		if dispCount >= dw {
			d2++
			dispCount = 0
		}
		dispCycle = d2
		dispCount++
		next = pc + 2
		switch jin.op {
		case isa.OpMov:
			complete = max(d2, rf[jin.src1].ready) + uint64(jin.lat)
			rf[jin.dst].val = rf[jin.src1].val
			rf[jin.dst].ready = complete
		case isa.OpMovi:
			complete = d2 + uint64(jin.lat)
			rf[jin.dst].val = jin.imm
			rf[jin.dst].ready = complete
		case isa.OpAdd:
			complete = max(d2, rf[jin.src1].ready, rf[jin.src2].ready) + uint64(jin.lat)
			rf[jin.dst].val = rf[jin.src1].val + rf[jin.src2].val
			rf[jin.dst].ready = complete
		case isa.OpAddi:
			complete = max(d2, rf[jin.src1].ready) + uint64(jin.lat)
			rf[jin.dst].val = rf[jin.src1].val + jin.imm
			rf[jin.dst].ready = complete
		case isa.OpSub:
			complete = max(d2, rf[jin.src1].ready, rf[jin.src2].ready) + uint64(jin.lat)
			rf[jin.dst].val = rf[jin.src1].val - rf[jin.src2].val
			rf[jin.dst].ready = complete
		case isa.OpMul:
			complete = max(d2, rf[jin.src1].ready, rf[jin.src2].ready) + uint64(jin.lat)
			rf[jin.dst].val = rf[jin.src1].val * rf[jin.src2].val
			rf[jin.dst].ready = complete
		case isa.OpDiv:
			complete = max(d2, rf[jin.src1].ready, rf[jin.src2].ready) + uint64(jin.lat)
			if v := rf[jin.src2].val; v != 0 {
				rf[jin.dst].val = rf[jin.src1].val / v
			} else {
				rf[jin.dst].val = 0
			}
			rf[jin.dst].ready = complete
		case isa.OpRem:
			complete = max(d2, rf[jin.src1].ready, rf[jin.src2].ready) + uint64(jin.lat)
			if v := rf[jin.src2].val; v != 0 {
				rf[jin.dst].val = rf[jin.src1].val % v
			} else {
				rf[jin.dst].val = 0
			}
			rf[jin.dst].ready = complete
		case isa.OpAnd:
			complete = max(d2, rf[jin.src1].ready, rf[jin.src2].ready) + uint64(jin.lat)
			rf[jin.dst].val = rf[jin.src1].val & rf[jin.src2].val
			rf[jin.dst].ready = complete
		case isa.OpOr:
			complete = max(d2, rf[jin.src1].ready, rf[jin.src2].ready) + uint64(jin.lat)
			rf[jin.dst].val = rf[jin.src1].val | rf[jin.src2].val
			rf[jin.dst].ready = complete
		case isa.OpXor:
			complete = max(d2, rf[jin.src1].ready, rf[jin.src2].ready) + uint64(jin.lat)
			rf[jin.dst].val = rf[jin.src1].val ^ rf[jin.src2].val
			rf[jin.dst].ready = complete
		case isa.OpShl:
			complete = max(d2, rf[jin.src1].ready) + uint64(jin.lat)
			rf[jin.dst].val = rf[jin.src1].val << uint(jin.imm&63)
			rf[jin.dst].ready = complete
		case isa.OpShr:
			complete = max(d2, rf[jin.src1].ready) + uint64(jin.lat)
			rf[jin.dst].val = int64(uint64(rf[jin.src1].val) >> uint(jin.imm&63))
			rf[jin.dst].ready = complete
		case isa.OpFadd:
			complete = max(d2, rf[jin.src1].ready, rf[jin.src2].ready) + uint64(jin.lat)
			rf[jin.dst].val = rf[jin.src1].val + rf[jin.src2].val
			rf[jin.dst].ready = complete
		case isa.OpFmul:
			complete = max(d2, rf[jin.src1].ready, rf[jin.src2].ready) + uint64(jin.lat)
			rf[jin.dst].val = rf[jin.src1].val * rf[jin.src2].val
			rf[jin.dst].ready = complete
		case isa.OpFdiv:
			complete = max(d2, rf[jin.src1].ready, rf[jin.src2].ready) + uint64(jin.lat)
			if v := rf[jin.src2].val; v != 0 {
				rf[jin.dst].val = rf[jin.src1].val / v
			} else {
				rf[jin.dst].val = 0
			}
			rf[jin.dst].ready = complete
		case isa.OpFma:
			complete = max(d2, rf[jin.src1].ready, rf[jin.src2].ready) + uint64(jin.lat)
			rf[jin.dst].val += rf[jin.src1].val * rf[jin.src2].val
			rf[jin.dst].ready = complete
		case isa.OpLoad:
			complete = max(d2, rf[jin.src1].ready) + uint64(jin.lat)
			rf[jin.dst].val = mem[(rf[jin.src1].val+jin.imm)&memMask]
			rf[jin.dst].ready = complete
		case isa.OpStore:
			complete = max(d2, rf[jin.src1].ready, rf[jin.src2].ready) + uint64(jin.lat)
			mem[(rf[jin.src2].val+jin.imm)&memMask] = rf[jin.src1].val
		case isa.OpJmp:
			complete = d2 + uint64(jin.lat)
			next = int32(jin.imm)
			redirect = d2 + 1 + bubble
			takenBr++
		default:
			panic(fmt.Sprintf("cpu: unfusable glued opcode %d at index %d", jin.op, pc+1))
		}
		uopsDone += uint64(jin.uops)
		if complete > retCycle {
			retCycle = complete
			retCount = 1
		} else if retCount >= rw {
			retCycle++
			retCount = 1
		} else {
			retCount++
		}
		pc = next
	}
	return fastResult(n, uopsDone, retCycle, takenBr, condBr, mispred), ErrInstrLimit

fail:
	// A call/ret fault aborts the run before the faulting instruction
	// retires, wrapping the error exactly as the interpreter does.
	return fastResult(instrs, uopsDone, retCycle, takenBr, condBr, mispred),
		runErr(uint32(pc), &p.Code[pc], pendingErr)
}
