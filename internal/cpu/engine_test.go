package cpu

import (
	"errors"
	"testing"

	"pmutrust/internal/isa"
	"pmutrust/internal/program"
)

// straightLine builds "main: movi r1,n; loop: addi r1,-1; cmpi r1,0; jnz
// loop; halt" — the minimal countdown loop.
func countdown(t *testing.T, n int64) *program.Program {
	t.Helper()
	b := program.NewBuilder("countdown")
	f := b.Func("main")
	e := f.Block("entry")
	e.Movi(1, n)
	l := f.Block("loop")
	l.Addi(1, 1, -1)
	l.Cmpi(1, 0)
	l.Jnz("loop")
	x := f.Block("exit")
	x.Halt()
	return b.MustBuild()
}

// eventCollector records the retirement stream.
type eventCollector struct {
	events []RetireEvent
}

func (c *eventCollector) OnRetire(ev RetireEvent) { c.events = append(c.events, ev) }

func TestCountdownSemantics(t *testing.T) {
	p := countdown(t, 5)
	c := &eventCollector{}
	res, err := Run(p, DefaultConfig(), c, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 1 movi + 5*(addi+cmpi+jnz) + halt = 17.
	if res.Instructions != 17 {
		t.Errorf("instructions = %d, want 17", res.Instructions)
	}
	// jnz taken 4 times (the 5th falls through).
	if res.TakenBranches != 4 {
		t.Errorf("taken = %d, want 4", res.TakenBranches)
	}
	if res.CondBranches != 5 {
		t.Errorf("cond = %d, want 5", res.CondBranches)
	}
	if len(c.events) != int(res.Instructions) {
		t.Errorf("monitor saw %d events", len(c.events))
	}
	last := c.events[len(c.events)-1]
	if last.Op != isa.OpHalt {
		t.Errorf("last event op = %s", last.Op)
	}
	if res.IPC() <= 0 {
		t.Error("non-positive IPC")
	}
}

func TestRetireStreamInvariants(t *testing.T) {
	p := countdown(t, 1000)
	c := &eventCollector{}
	cfg := DefaultConfig()
	if _, err := Run(p, cfg, c, 0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var prevCycle uint64
	inCycle := 0
	for i, ev := range c.events {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has Seq %d", i, ev.Seq)
		}
		if ev.Cycle < prevCycle {
			t.Fatalf("retirement cycle went backwards at %d: %d < %d", i, ev.Cycle, prevCycle)
		}
		if ev.Cycle == prevCycle {
			inCycle++
			if inCycle > cfg.RetireWidth {
				t.Fatalf("more than %d instructions retired in cycle %d", cfg.RetireWidth, ev.Cycle)
			}
		} else {
			inCycle = 1
		}
		prevCycle = ev.Cycle
	}
}

func TestFunctionalMatchesTimed(t *testing.T) {
	p := countdown(t, 777)
	c := &eventCollector{}
	tres, err := Run(p, DefaultConfig(), c, 0)
	if err != nil {
		t.Fatal(err)
	}
	var seq []uint32
	fres, err := RunFunctional(p, funcCollector{&seq}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fres.Instructions != tres.Instructions || fres.TakenBranches != tres.TakenBranches {
		t.Fatalf("functional/timed disagree: %+v vs %+v", fres, tres)
	}
	for i, idx := range seq {
		if c.events[i].Idx != idx {
			t.Fatalf("dynamic instruction %d differs: timed %d, functional %d",
				i, c.events[i].Idx, idx)
		}
	}
}

type funcCollector struct{ seq *[]uint32 }

func (f funcCollector) OnExec(idx uint32) { *f.seq = append(*f.seq, idx) }

func TestInstructionLimit(t *testing.T) {
	p := countdown(t, 1_000_000)
	_, err := Run(p, DefaultConfig(), NopMonitor{}, 100)
	if !errors.Is(err, ErrInstrLimit) {
		t.Errorf("err = %v, want ErrInstrLimit", err)
	}
	_, err = RunFunctional(p, nil, 100)
	if !errors.Is(err, ErrInstrLimit) {
		t.Errorf("functional err = %v, want ErrInstrLimit", err)
	}
}

func TestLatencyCreatesStalls(t *testing.T) {
	// A dependent chain of divides must retire far slower than a chain of
	// independent adds of the same length.
	build := func(op isa.Op) *program.Program {
		b := program.NewBuilder("lat")
		f := b.Func("main")
		e := f.Block("entry")
		e.Movi(1, 100)
		e.Movi(2, 3)
		l := f.Block("loop")
		for i := 0; i < 10; i++ {
			l.Raw(isa.Instr{Op: op, Dst: 3, Src1: 3, Src2: 2, Target: -1})
		}
		l.Addi(1, 1, -1)
		l.Cmpi(1, 0)
		l.Jnz("loop")
		f.Block("exit").Halt()
		return b.MustBuild()
	}
	fast, err := Run(build(isa.OpAdd), DefaultConfig(), NopMonitor{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(build(isa.OpDiv), DefaultConfig(), NopMonitor{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Cycles < fast.Cycles*5 {
		t.Errorf("dependent divides not slow enough: %d vs %d cycles", slow.Cycles, fast.Cycles)
	}
}

func TestRetirementBursts(t *testing.T) {
	// After a long-latency instruction, the piled-up independent
	// instructions must retire in multi-instruction bursts.
	b := program.NewBuilder("burst")
	f := b.Func("main")
	e := f.Block("entry")
	e.Movi(1, 50)
	e.Movi(2, 3)
	l := f.Block("loop")
	l.Div(3, 3, 2) // stall head
	for i := 0; i < 8; i++ {
		l.Addi(4, 4, 1) // independent fillers
	}
	l.Addi(1, 1, -1)
	l.Cmpi(1, 0)
	l.Jnz("loop")
	f.Block("exit").Halt()
	p := b.MustBuild()

	c := &eventCollector{}
	if _, err := Run(p, DefaultConfig(), c, 0); err != nil {
		t.Fatal(err)
	}
	// Count cycles in which >= 3 instructions retired together.
	bursts := 0
	run := 1
	for i := 1; i < len(c.events); i++ {
		if c.events[i].Cycle == c.events[i-1].Cycle {
			run++
			if run == 3 {
				bursts++
			}
		} else {
			run = 1
		}
	}
	if bursts < 40 {
		t.Errorf("only %d 3-wide retirement bursts observed; burst model broken", bursts)
	}
}

func TestBranchEvents(t *testing.T) {
	p := countdown(t, 3)
	c := &eventCollector{}
	if _, err := Run(p, DefaultConfig(), c, 0); err != nil {
		t.Fatal(err)
	}
	loopStart := p.Funcs[0].Blocks[1].Start
	for _, ev := range c.events {
		if ev.Op == isa.OpJnz && ev.Taken {
			if ev.Target != uint32(loopStart) {
				t.Errorf("taken jnz target = %d, want %d", ev.Target, loopStart)
			}
		}
		if ev.Op == isa.OpJnz && !ev.Taken && ev.Target != 0 {
			t.Errorf("not-taken branch carries target %d", ev.Target)
		}
	}
}

func TestCallStackErrors(t *testing.T) {
	t.Run("overflow", func(t *testing.T) {
		b := program.NewBuilder("rec")
		f := b.Func("main")
		blk := f.Block("entry")
		blk.Call("main") // infinite recursion
		blk.Halt()
		p := b.MustBuild()
		cfg := DefaultConfig()
		cfg.MaxCallDepth = 16
		if _, err := Run(p, cfg, NopMonitor{}, 0); err == nil {
			t.Error("no error for call stack overflow")
		}
	})
}

func TestMemoryOps(t *testing.T) {
	// store then load round-trips through memory.
	b := program.NewBuilder("mem")
	f := b.Func("main")
	e := f.Block("entry")
	e.Movi(1, 42)
	e.Movi(2, 100) // address
	e.Store(1, 2, 0)
	e.Load(3, 2, 0)
	e.Movi(4, 0) // sentinel for flags
	e.Sub(4, 3, 1)
	e.Cmpi(4, 0)
	e.Jz("good")
	bad := f.Block("bad")
	bad.Movi(5, 666)
	good := f.Block("good")
	good.Halt()
	p := b.MustBuild()

	c := &eventCollector{}
	if _, err := Run(p, DefaultConfig(), c, 0); err != nil {
		t.Fatal(err)
	}
	// The jz must be taken (load returned the stored value).
	for _, ev := range c.events {
		if ev.Op == isa.OpJz && !ev.Taken {
			t.Error("store/load round-trip failed: jz not taken")
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	d := c.withDefaults()
	if d.DispatchWidth <= 0 || d.RetireWidth <= 0 || d.PredictorBits <= 0 || d.MaxCallDepth <= 0 {
		t.Errorf("withDefaults left zero fields: %+v", d)
	}
	// Explicit values survive.
	c = Config{DispatchWidth: 2, RetireWidth: 3}
	d = c.withDefaults()
	if d.DispatchWidth != 2 || d.RetireWidth != 3 {
		t.Errorf("withDefaults clobbered explicit values: %+v", d)
	}
}

func TestPredictorLearnsLoop(t *testing.T) {
	p := countdown(t, 10_000)
	res, err := Run(p, DefaultConfig(), NopMonitor{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(res.Mispredicts) / float64(res.CondBranches)
	if rate > 0.01 {
		t.Errorf("loop branch mispredict rate %.3f; predictor not learning", rate)
	}
}
