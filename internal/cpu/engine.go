package cpu

import (
	"errors"
	"fmt"

	"pmutrust/internal/isa"
	"pmutrust/internal/program"
)

// RetireEvent describes one retired instruction, delivered to the Monitor
// in program (retirement) order with non-decreasing cycles.
type RetireEvent struct {
	// Idx is the code-array index (the instruction's address).
	Idx uint32
	// Cycle is the retirement cycle.
	Cycle uint64
	// Seq is the 1-based dynamic instruction number.
	Seq uint64
	// Op is the opcode.
	Op isa.Op
	// Uops is the micro-op count of the instruction.
	Uops uint8
	// Taken reports whether this instruction was a taken control
	// transfer (always true for jmp/call/ret, condition-dependent for
	// conditional branches).
	Taken bool
	// Mispred reports whether this instruction was a mispredicted
	// conditional branch (always false for other ops).
	Mispred bool
	// Target is the dynamic branch target when Taken.
	Target uint32
}

// Monitor observes the retirement stream. The PMU (internal/pmu) is the
// production implementation; tests use counting monitors.
type Monitor interface {
	OnRetire(ev RetireEvent)
}

// NopMonitor discards all events; useful for timing-only runs.
type NopMonitor struct{}

// OnRetire implements Monitor.
func (NopMonitor) OnRetire(RetireEvent) {}

// Result summarizes a completed run.
type Result struct {
	// Instructions is the number of retired instructions (including halt).
	Instructions uint64
	// Uops is the number of retired micro-ops.
	Uops uint64
	// Cycles is the retirement cycle of the final instruction.
	Cycles uint64
	// TakenBranches counts taken control transfers.
	TakenBranches uint64
	// CondBranches counts retired conditional branches.
	CondBranches uint64
	// Mispredicts counts mispredicted conditional branches.
	Mispredicts uint64
}

// IPC returns retired instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// ErrInstrLimit is returned when a run exceeds its instruction budget,
// which for the deterministic, halting workloads in this repository
// indicates a workload construction bug.
var ErrInstrLimit = errors.New("cpu: instruction limit exceeded")

// state is the architectural + microarchitectural state of a run.
type state struct {
	prog    *program.Program
	code    []isa.Instr
	regs    [isa.NumRegs]int64
	flags   int64 // sign of last comparison: <0, 0, >0
	mem     []int64
	memMask int64
	stack   []uint32
	pc      int32

	// timing
	regReady   [isa.NumRegs]uint64
	flagsReady uint64
	dispCycle  uint64
	dispCount  int
	retCycle   uint64
	retCount   int
	redirect   uint64 // earliest fetch cycle for the next instruction

	pred predictor
	cfg  Config
}

func newState(p *program.Program, cfg Config) *state {
	memWords := 1
	for memWords < p.MemWords {
		memWords <<= 1
	}
	s := &state{
		prog:    p,
		code:    p.Code,
		mem:     make([]int64, memWords),
		memMask: int64(memWords - 1),
		stack:   make([]uint32, 0, 64),
		pc:      int32(p.Funcs[0].Start),
		cfg:     cfg,
	}
	s.pred.init(cfg.PredictorBits)
	return s
}

// Run executes p to completion under cfg, delivering every retirement to
// mon. maxInstrs bounds the run (0 means a default of 2^40).
func Run(p *program.Program, cfg Config, mon Monitor, maxInstrs uint64) (Result, error) {
	cfg = cfg.withDefaults()
	s := newState(p, cfg)
	if maxInstrs == 0 {
		maxInstrs = 1 << 40
	}
	var res Result
	for {
		in := &s.code[s.pc]
		idx := uint32(s.pc)

		// ---- dispatch timing ----
		d := s.dispCycle
		if s.dispCount >= cfg.DispatchWidth {
			d++
			s.dispCount = 0
		}
		if s.redirect > d {
			d = s.redirect
			s.dispCount = 0
		}
		s.dispCycle = d
		s.dispCount++

		// ---- operand readiness ----
		ready := d
		op := in.Op
		if op.ReadsSrc1() && s.regReady[in.Src1] > ready {
			ready = s.regReady[in.Src1]
		}
		if op.ReadsSrc2() && s.regReady[in.Src2] > ready {
			ready = s.regReady[in.Src2]
		}
		if op.ReadsFlags() && s.flagsReady > ready {
			ready = s.flagsReady
		}
		complete := ready + uint64(op.Latency())

		// ---- functional execution ----
		taken, target, next, halt, err := s.step(in)
		if err != nil {
			return res, runErr(idx, in, err)
		}

		// ---- writeback timing ----
		if op.WritesDst() {
			s.regReady[in.Dst] = complete
		}
		if op.SetsFlags() {
			s.flagsReady = complete
		}

		// ---- control-flow timing ----
		mispred := false
		if op.IsCondBranch() {
			res.CondBranches++
			predTaken := s.pred.predict(idx)
			s.pred.update(idx, taken)
			if predTaken != taken {
				res.Mispredicts++
				mispred = true
				// Redirect resolves when the branch executes.
				s.redirect = complete + cfg.MispredictPenalty
			} else if taken {
				s.redirect = d + 1 + cfg.TakenBranchBubble
			}
		} else if taken {
			// Unconditional transfers: correctly predicted, front-end
			// bubble only.
			s.redirect = d + 1 + cfg.TakenBranchBubble
		}

		// ---- in-order retirement ----
		rc := complete
		if rc < s.retCycle {
			rc = s.retCycle
		}
		if rc == s.retCycle {
			if s.retCount >= cfg.RetireWidth {
				rc++
				s.retCount = 0
			}
		} else {
			s.retCount = 0
		}
		s.retCycle = rc
		s.retCount++

		res.Instructions++
		res.Uops += uint64(op.Uops())
		if taken {
			res.TakenBranches++
		}
		res.Cycles = rc

		mon.OnRetire(RetireEvent{
			Idx:     idx,
			Cycle:   rc,
			Seq:     res.Instructions,
			Op:      op,
			Uops:    op.Uops(),
			Taken:   taken,
			Mispred: mispred,
			Target:  uint32(target),
		})

		if halt {
			return res, nil
		}
		if res.Instructions >= maxInstrs {
			return res, ErrInstrLimit
		}
		s.pc = next
	}
}

// runErr wraps an execution error with the faulting instruction's address
// and disassembly. Both engines route their errors through it, so error
// text is part of the bit-identical contract the differential harness
// checks.
func runErr(idx uint32, in *isa.Instr, err error) error {
	return fmt.Errorf("at %#x (%s): %w",
		program.DisplayAddr(int(idx)), in.Disasm(), err)
}

// errCallOverflow and errEmptyRet are shared by both engines (see runErr).
func errCallOverflow(depth int) error {
	return fmt.Errorf("call stack overflow (depth %d)", depth)
}

var errEmptyRet = errors.New("return with empty call stack")

// step executes one instruction functionally: updates registers, flags,
// memory and the call stack, and returns the control-flow outcome.
func (s *state) step(in *isa.Instr) (taken bool, target, next int32, halt bool, err error) {
	next = s.pc + 1
	switch in.Op {
	case isa.OpNop:
	case isa.OpMov:
		s.regs[in.Dst] = s.regs[in.Src1]
	case isa.OpMovi:
		s.regs[in.Dst] = in.Imm
	case isa.OpAdd:
		s.regs[in.Dst] = s.regs[in.Src1] + s.regs[in.Src2]
	case isa.OpAddi:
		s.regs[in.Dst] = s.regs[in.Src1] + in.Imm
	case isa.OpSub:
		s.regs[in.Dst] = s.regs[in.Src1] - s.regs[in.Src2]
	case isa.OpMul:
		s.regs[in.Dst] = s.regs[in.Src1] * s.regs[in.Src2]
	case isa.OpDiv:
		if v := s.regs[in.Src2]; v != 0 {
			s.regs[in.Dst] = s.regs[in.Src1] / v
		} else {
			s.regs[in.Dst] = 0
		}
	case isa.OpRem:
		if v := s.regs[in.Src2]; v != 0 {
			s.regs[in.Dst] = s.regs[in.Src1] % v
		} else {
			s.regs[in.Dst] = 0
		}
	case isa.OpAnd:
		s.regs[in.Dst] = s.regs[in.Src1] & s.regs[in.Src2]
	case isa.OpOr:
		s.regs[in.Dst] = s.regs[in.Src1] | s.regs[in.Src2]
	case isa.OpXor:
		s.regs[in.Dst] = s.regs[in.Src1] ^ s.regs[in.Src2]
	case isa.OpShl:
		s.regs[in.Dst] = s.regs[in.Src1] << uint(in.Imm&63)
	case isa.OpShr:
		s.regs[in.Dst] = int64(uint64(s.regs[in.Src1]) >> uint(in.Imm&63))
	case isa.OpLoad:
		s.regs[in.Dst] = s.mem[(s.regs[in.Src1]+in.Imm)&s.memMask]
	case isa.OpStore:
		s.mem[(s.regs[in.Src2]+in.Imm)&s.memMask] = s.regs[in.Src1]
	case isa.OpFadd:
		s.regs[in.Dst] = s.regs[in.Src1] + s.regs[in.Src2]
	case isa.OpFmul:
		s.regs[in.Dst] = s.regs[in.Src1] * s.regs[in.Src2]
	case isa.OpFdiv:
		if v := s.regs[in.Src2]; v != 0 {
			s.regs[in.Dst] = s.regs[in.Src1] / v
		} else {
			s.regs[in.Dst] = 0
		}
	case isa.OpFma:
		s.regs[in.Dst] += s.regs[in.Src1] * s.regs[in.Src2]
	case isa.OpCmp:
		s.flags = s.regs[in.Src1] - s.regs[in.Src2]
	case isa.OpCmpi:
		s.flags = s.regs[in.Src1] - in.Imm
	case isa.OpJmp:
		taken, target, next = true, in.Target, in.Target
	case isa.OpJz:
		if s.flags == 0 {
			taken, target, next = true, in.Target, in.Target
		}
	case isa.OpJnz:
		if s.flags != 0 {
			taken, target, next = true, in.Target, in.Target
		}
	case isa.OpJlt:
		if s.flags < 0 {
			taken, target, next = true, in.Target, in.Target
		}
	case isa.OpJge:
		if s.flags >= 0 {
			taken, target, next = true, in.Target, in.Target
		}
	case isa.OpCall:
		if len(s.stack) >= s.cfg.MaxCallDepth {
			return false, 0, 0, false, errCallOverflow(len(s.stack))
		}
		s.stack = append(s.stack, uint32(s.pc+1))
		taken, target, next = true, in.Target, in.Target
	case isa.OpRet:
		if len(s.stack) == 0 {
			return false, 0, 0, false, errEmptyRet
		}
		ra := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		taken, target, next = true, int32(ra), int32(ra)
	case isa.OpHalt:
		halt = true
	default:
		return false, 0, 0, false, fmt.Errorf("invalid opcode %d", in.Op)
	}
	return taken, target, next, halt, nil
}

// predictor is a table of 2-bit saturating counters for conditional branch
// direction prediction. Prediction quality shapes the cycle distribution of
// branchy code, which feeds the skid and shadow effects.
type predictor struct {
	table []uint8
	mask  uint32
}

func (pr *predictor) init(bits int) {
	size := 1 << bits
	pr.table = make([]uint8, size)
	pr.mask = uint32(size - 1)
	// Initialize to weakly-taken: loops predict well almost immediately.
	for i := range pr.table {
		pr.table[i] = 2
	}
}

func (pr *predictor) predict(pc uint32) bool {
	return pr.table[pc&pr.mask] >= 2
}

func (pr *predictor) update(pc uint32, taken bool) {
	c := pr.table[pc&pr.mask]
	if taken {
		if c < 3 {
			pr.table[pc&pr.mask] = c + 1
		}
	} else {
		if c > 0 {
			pr.table[pc&pr.mask] = c - 1
		}
	}
}
