package cpu

import (
	"fmt"

	"pmutrust/internal/isa"
	"pmutrust/internal/program"
)

// runFastLean is the counting-only specialized loop, selected when the
// monitor hints (BulkClassHinter) that every bulk class it reads is one
// the engine tracks for Result anyway, and it wants no branch stream.
// The stride body then carries no monitor bookkeeping at all: BulkCounts
// are reconstructed at flush boundaries as deltas of the run counters.
// Headroom grants, event-mode fallback and every observable are identical
// to runFastFull — only the elided (monitor-ignored) bulk classes and the
// absent OnFastBranch calls differ, and the monitor declared it cannot
// see either.
func runFastLean(p *program.Program, cfg Config, fm FastMonitor, maxInstrs uint64) (Result, error) {
	code := decodeProgram(p)
	recordFused(fm, code)

	mem := fastMem(p)
	_ = mem[0] // fastMem returns at least one word; lets prove elide masked-index checks
	memMask := int64(len(mem) - 1)
	stack := make([]uint32, 0, 64)
	var rf [256]regState
	var flags int64
	var pred predictor
	pred.init(cfg.PredictorBits)

	var flagsReady, dispCycle, retCycle, redirect uint64
	var dispCount, retCount int
	var instrs, uopsDone, takenBr, condBr, mispred uint64

	dw, rw := cfg.DispatchWidth, cfg.RetireWidth
	mispen, bubble := cfg.MispredictPenalty, cfg.TakenBranchBubble
	maxDepth := cfg.MaxCallDepth

	pc := int32(p.Funcs[0].Start)

	// Flush snapshots: the run counters at the last BulkRetire or
	// per-instruction delivery. A flush sends the deltas.
	var headroom uint64
	var flInstrs, flUops, flTaken, flCond, flMispred uint64

	var pendingErr error
	var nDone uint64 // instructions completed in the failing stride

	for {
		if headroom == 0 {
			if instrs != flInstrs {
				fm.BulkRetire(BulkCounts{
					Instrs:        instrs - flInstrs,
					Uops:          uopsDone - flUops,
					TakenBranches: takenBr - flTaken,
					CondBranches:  condBr - flCond,
					Mispredicts:   mispred - flMispred,
				})
				flInstrs, flUops, flTaken, flCond, flMispred =
					instrs, uopsDone, takenBr, condBr, mispred
			}
			headroom = fm.FastHeadroom()
		}

		if headroom == 0 {
			// ---- event mode: one instruction, generic body, full event ----
			in := &code[pc]
			idx := uint32(pc)

			d := dispCycle
			if dispCount >= dw {
				d++
				dispCount = 0
			}
			if redirect > d {
				d = redirect
				dispCount = 0
			}
			dispCycle = d
			dispCount++

			ready := d
			fl := in.fl
			if fl&fReads1 != 0 {
				ready = max(ready, rf[in.src1].ready)
			}
			if fl&fReads2 != 0 {
				ready = max(ready, rf[in.src2].ready)
			}
			if fl&fReadsF != 0 {
				ready = max(ready, flagsReady)
			}
			complete := ready + uint64(in.lat)

			op := in.op
			if op >= opCmpJz {
				// Fused head: event mode executes it as its plain head
				// instruction; the glued successor follows as itself.
				op = unfuse(op)
			}

			var taken, halt bool
			var target int32
			next := pc + 1
			switch op {
			case isa.OpNop:
			case isa.OpMov:
				rf[in.dst].val = rf[in.src1].val
			case isa.OpMovi:
				rf[in.dst].val = in.imm
			case isa.OpAdd:
				rf[in.dst].val = rf[in.src1].val + rf[in.src2].val
			case isa.OpAddi:
				rf[in.dst].val = rf[in.src1].val + in.imm
			case isa.OpSub:
				rf[in.dst].val = rf[in.src1].val - rf[in.src2].val
			case isa.OpMul:
				rf[in.dst].val = rf[in.src1].val * rf[in.src2].val
			case isa.OpDiv:
				if v := rf[in.src2].val; v != 0 {
					rf[in.dst].val = rf[in.src1].val / v
				} else {
					rf[in.dst].val = 0
				}
			case isa.OpRem:
				if v := rf[in.src2].val; v != 0 {
					rf[in.dst].val = rf[in.src1].val % v
				} else {
					rf[in.dst].val = 0
				}
			case isa.OpAnd:
				rf[in.dst].val = rf[in.src1].val & rf[in.src2].val
			case isa.OpOr:
				rf[in.dst].val = rf[in.src1].val | rf[in.src2].val
			case isa.OpXor:
				rf[in.dst].val = rf[in.src1].val ^ rf[in.src2].val
			case isa.OpShl:
				rf[in.dst].val = rf[in.src1].val << uint(in.imm&63)
			case isa.OpShr:
				rf[in.dst].val = int64(uint64(rf[in.src1].val) >> uint(in.imm&63))
			case isa.OpLoad:
				rf[in.dst].val = mem[(rf[in.src1].val+in.imm)&memMask]
			case isa.OpStore:
				mem[(rf[in.src2].val+in.imm)&memMask] = rf[in.src1].val
			case isa.OpFadd:
				rf[in.dst].val = rf[in.src1].val + rf[in.src2].val
			case isa.OpFmul:
				rf[in.dst].val = rf[in.src1].val * rf[in.src2].val
			case isa.OpFdiv:
				if v := rf[in.src2].val; v != 0 {
					rf[in.dst].val = rf[in.src1].val / v
				} else {
					rf[in.dst].val = 0
				}
			case isa.OpFma:
				rf[in.dst].val += rf[in.src1].val * rf[in.src2].val
			case isa.OpCmp:
				flags = rf[in.src1].val - rf[in.src2].val
			case isa.OpCmpi:
				flags = rf[in.src1].val - in.imm
			case isa.OpJmp:
				taken, target, next = true, int32(in.imm), int32(in.imm)
			case isa.OpJz:
				if flags == 0 {
					taken, target, next = true, int32(in.imm), int32(in.imm)
				}
			case isa.OpJnz:
				if flags != 0 {
					taken, target, next = true, int32(in.imm), int32(in.imm)
				}
			case isa.OpJlt:
				if flags < 0 {
					taken, target, next = true, int32(in.imm), int32(in.imm)
				}
			case isa.OpJge:
				if flags >= 0 {
					taken, target, next = true, int32(in.imm), int32(in.imm)
				}
			case isa.OpCall:
				if len(stack) >= maxDepth {
					pendingErr = errCallOverflow(len(stack))
					nDone = 0
					goto fail
				}
				stack = append(stack, uint32(pc+1))
				taken, target, next = true, int32(in.imm), int32(in.imm)
			case isa.OpRet:
				if len(stack) == 0 {
					pendingErr = errEmptyRet
					nDone = 0
					goto fail
				}
				ra := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				taken, target, next = true, int32(ra), int32(ra)
			case isa.OpHalt:
				halt = true
			default:
				panic(fmt.Sprintf("cpu: invalid opcode %d at index %d", in.op, idx))
			}

			if fl&fWrites != 0 {
				rf[in.dst].ready = complete
			}
			if fl&fSetsF != 0 {
				flagsReady = complete
			}

			evMispred := false
			if fl&fCond != 0 {
				condBr++
				predTaken := pred.predictUpdate(idx, taken)
				if predTaken != taken {
					mispred++
					evMispred = true
					redirect = complete + mispen
				} else if taken {
					redirect = d + 1 + bubble
				}
			} else if taken {
				redirect = d + 1 + bubble
			}

			rc := complete
			if rc < retCycle {
				rc = retCycle
			}
			if rc == retCycle {
				if retCount >= rw {
					rc++
					retCount = 0
				}
			} else {
				retCount = 0
			}
			retCycle = rc
			retCount++

			instrs++
			uopsDone += uint64(in.uops)
			if taken {
				takenBr++
			}

			fm.OnRetire(RetireEvent{
				Idx:     idx,
				Cycle:   rc,
				Seq:     instrs,
				Op:      op,
				Uops:    in.uops,
				Taken:   taken,
				Mispred: evMispred,
				Target:  uint32(target),
			})
			flInstrs, flUops, flTaken, flCond, flMispred =
				instrs, uopsDone, takenBr, condBr, mispred

			if halt {
				return fastResult(instrs, uopsDone, retCycle, takenBr, condBr, mispred), nil
			}
			if instrs >= maxInstrs {
				return fastResult(instrs, uopsDone, retCycle, takenBr, condBr, mispred), ErrInstrLimit
			}
			pc = next
			continue
		}

		// ---- stride mode: specialized per-opcode loop with no monitor
		// work of any kind — the lean contract guarantees nothing in here
		// is observable until the flush.
		{
			n := headroom
			if left := maxInstrs - instrs; n > left {
				n = left
			}
			executed := n
			halted := false

			for i := n; i > 0; i-- {
				in := &code[pc]

				d := dispCycle
				if dispCount >= dw {
					d++
					dispCount = 0
				}
				if redirect > d {
					d = redirect
					dispCount = 0
				}
				dispCycle = d
				dispCount++

				var complete uint64
				next := pc + 1
				switch in.op {
				case isa.OpNop:
					complete = d + uint64(in.lat)
				case isa.OpMov:
					complete = max(d, rf[in.src1].ready) + uint64(in.lat)
					rf[in.dst].val = rf[in.src1].val
					rf[in.dst].ready = complete
				case isa.OpMovi:
					complete = d + uint64(in.lat)
					rf[in.dst].val = in.imm
					rf[in.dst].ready = complete
				case isa.OpAdd:
					complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
					rf[in.dst].val = rf[in.src1].val + rf[in.src2].val
					rf[in.dst].ready = complete
				case isa.OpAddi:
					complete = max(d, rf[in.src1].ready) + uint64(in.lat)
					rf[in.dst].val = rf[in.src1].val + in.imm
					rf[in.dst].ready = complete
				case isa.OpSub:
					complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
					rf[in.dst].val = rf[in.src1].val - rf[in.src2].val
					rf[in.dst].ready = complete
				case isa.OpMul:
					complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
					rf[in.dst].val = rf[in.src1].val * rf[in.src2].val
					rf[in.dst].ready = complete
				case isa.OpDiv:
					complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
					if v := rf[in.src2].val; v != 0 {
						rf[in.dst].val = rf[in.src1].val / v
					} else {
						rf[in.dst].val = 0
					}
					rf[in.dst].ready = complete
				case isa.OpRem:
					complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
					if v := rf[in.src2].val; v != 0 {
						rf[in.dst].val = rf[in.src1].val % v
					} else {
						rf[in.dst].val = 0
					}
					rf[in.dst].ready = complete
				case isa.OpAnd:
					complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
					rf[in.dst].val = rf[in.src1].val & rf[in.src2].val
					rf[in.dst].ready = complete
				case isa.OpOr:
					complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
					rf[in.dst].val = rf[in.src1].val | rf[in.src2].val
					rf[in.dst].ready = complete
				case isa.OpXor:
					complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
					rf[in.dst].val = rf[in.src1].val ^ rf[in.src2].val
					rf[in.dst].ready = complete
				case isa.OpShl:
					complete = max(d, rf[in.src1].ready) + uint64(in.lat)
					rf[in.dst].val = rf[in.src1].val << uint(in.imm&63)
					rf[in.dst].ready = complete
				case isa.OpShr:
					complete = max(d, rf[in.src1].ready) + uint64(in.lat)
					rf[in.dst].val = int64(uint64(rf[in.src1].val) >> uint(in.imm&63))
					rf[in.dst].ready = complete
				case isa.OpLoad:
					complete = max(d, rf[in.src1].ready) + uint64(in.lat)
					rf[in.dst].val = mem[(rf[in.src1].val+in.imm)&memMask]
					rf[in.dst].ready = complete
				case isa.OpStore:
					complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
					mem[(rf[in.src2].val+in.imm)&memMask] = rf[in.src1].val
				case isa.OpFadd:
					complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
					rf[in.dst].val = rf[in.src1].val + rf[in.src2].val
					rf[in.dst].ready = complete
				case isa.OpFmul:
					complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
					rf[in.dst].val = rf[in.src1].val * rf[in.src2].val
					rf[in.dst].ready = complete
				case isa.OpFdiv:
					complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
					if v := rf[in.src2].val; v != 0 {
						rf[in.dst].val = rf[in.src1].val / v
					} else {
						rf[in.dst].val = 0
					}
					rf[in.dst].ready = complete
				case isa.OpFma:
					complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
					rf[in.dst].val += rf[in.src1].val * rf[in.src2].val
					rf[in.dst].ready = complete
				case isa.OpCmp:
					complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
					flags = rf[in.src1].val - rf[in.src2].val
					flagsReady = complete
				case isa.OpCmpi:
					complete = max(d, rf[in.src1].ready) + uint64(in.lat)
					flags = rf[in.src1].val - in.imm
					flagsReady = complete
				case opCmpJz, opCmpJnz, opCmpJlt, opCmpJge, opCmpiJz, opCmpiJnz, opCmpiJlt, opCmpiJge:
					// Fused compare+branch: the compare retires here, then the
					// branch at pc+1 dispatches in the same iteration. The compare
					// already applied any pending redirect, so the branch dispatch
					// only needs the width rollover.
					op := in.op
					if op >= opCmpiJz {
						complete = max(d, rf[in.src1].ready) + uint64(in.lat)
						flags = rf[in.src1].val - in.imm
					} else {
						complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
						flags = rf[in.src1].val - rf[in.src2].val
					}
					flagsReady = complete
					uopsDone += uint64(in.uops)
					if complete > retCycle {
						retCycle = complete
						retCount = 1
					} else if retCount >= rw {
						retCycle++
						retCount = 1
					} else {
						retCount++
					}
					if i == 1 {
						// The grant ends at the compare; the branch runs at the
						// top of the next stride (or in event mode).
						pc++
						continue
					}
					i--
					jin := &code[pc+1]
					d2 := d
					if dispCount >= dw {
						d2++
						dispCount = 0
					}
					dispCycle = d2
					dispCount++
					complete = max(d2, flagsReady) + uint64(jin.lat)
					var taken bool
					switch op {
					case opCmpJz, opCmpiJz:
						taken = flags == 0
					case opCmpJnz, opCmpiJnz:
						taken = flags != 0
					case opCmpJlt, opCmpiJlt:
						taken = flags < 0
					default:
						taken = flags >= 0
					}
					condBr++
					idx := uint32(pc) + 1
					predTaken := pred.predictUpdate(idx, taken)
					if predTaken != taken {
						mispred++
						redirect = complete + mispen
					} else if taken {
						redirect = d2 + 1 + bubble
					}
					next = pc + 2
					if taken {
						next = int32(jin.imm)
						takenBr++
					}
					uopsDone += uint64(jin.uops)
					if complete > retCycle {
						retCycle = complete
						retCount = 1
					} else if retCount >= rw {
						retCycle++
						retCount = 1
					} else {
						retCount++
					}
					pc = next
					continue
				case isa.OpJmp:
					complete = d + uint64(in.lat)
					next = int32(in.imm)
					redirect = d + 1 + bubble
					takenBr++
				case isa.OpJz, isa.OpJnz, isa.OpJlt, isa.OpJge:
					complete = max(d, flagsReady) + uint64(in.lat)
					var taken bool
					switch in.op {
					case isa.OpJz:
						taken = flags == 0
					case isa.OpJnz:
						taken = flags != 0
					case isa.OpJlt:
						taken = flags < 0
					default:
						taken = flags >= 0
					}
					condBr++
					predTaken := pred.predictUpdate(uint32(pc), taken)
					if predTaken != taken {
						mispred++
						redirect = complete + mispen
					} else if taken {
						redirect = d + 1 + bubble
					}
					if taken {
						next = int32(in.imm)
						takenBr++
					}
				case isa.OpCall:
					complete = d + uint64(in.lat)
					if len(stack) >= maxDepth {
						pendingErr = errCallOverflow(len(stack))
						nDone = n - i
						goto fail
					}
					stack = append(stack, uint32(pc+1))
					next = int32(in.imm)
					redirect = d + 1 + bubble
					takenBr++
				case isa.OpRet:
					complete = d + uint64(in.lat)
					if len(stack) == 0 {
						pendingErr = errEmptyRet
						nDone = n - i
						goto fail
					}
					ra := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					next = int32(ra)
					redirect = d + 1 + bubble
					takenBr++
				case isa.OpHalt:
					complete = d + uint64(in.lat)
					uopsDone += uint64(in.uops)
					if complete > retCycle {
						retCycle = complete
						retCount = 1
					} else if retCount >= rw {
						retCycle++
						retCount = 1
					} else {
						retCount++
					}
					halted = true
					executed = n - i + 1
					goto strideDone
				case opPairMov:
					complete = max(d, rf[in.src1].ready) + uint64(in.lat)
					rf[in.dst].val = rf[in.src1].val
					rf[in.dst].ready = complete
					goto pairSecond
				case opPairMovi:
					complete = d + uint64(in.lat)
					rf[in.dst].val = in.imm
					rf[in.dst].ready = complete
					goto pairSecond
				case opPairAdd:
					complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
					rf[in.dst].val = rf[in.src1].val + rf[in.src2].val
					rf[in.dst].ready = complete
					goto pairSecond
				case opPairAddi:
					complete = max(d, rf[in.src1].ready) + uint64(in.lat)
					rf[in.dst].val = rf[in.src1].val + in.imm
					rf[in.dst].ready = complete
					goto pairSecond
				case opPairSub:
					complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
					rf[in.dst].val = rf[in.src1].val - rf[in.src2].val
					rf[in.dst].ready = complete
					goto pairSecond
				case opPairMul:
					complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
					rf[in.dst].val = rf[in.src1].val * rf[in.src2].val
					rf[in.dst].ready = complete
					goto pairSecond
				case opPairDiv:
					complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
					if v := rf[in.src2].val; v != 0 {
						rf[in.dst].val = rf[in.src1].val / v
					} else {
						rf[in.dst].val = 0
					}
					rf[in.dst].ready = complete
					goto pairSecond
				case opPairRem:
					complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
					if v := rf[in.src2].val; v != 0 {
						rf[in.dst].val = rf[in.src1].val % v
					} else {
						rf[in.dst].val = 0
					}
					rf[in.dst].ready = complete
					goto pairSecond
				case opPairAnd:
					complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
					rf[in.dst].val = rf[in.src1].val & rf[in.src2].val
					rf[in.dst].ready = complete
					goto pairSecond
				case opPairOr:
					complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
					rf[in.dst].val = rf[in.src1].val | rf[in.src2].val
					rf[in.dst].ready = complete
					goto pairSecond
				case opPairXor:
					complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
					rf[in.dst].val = rf[in.src1].val ^ rf[in.src2].val
					rf[in.dst].ready = complete
					goto pairSecond
				case opPairShl:
					complete = max(d, rf[in.src1].ready) + uint64(in.lat)
					rf[in.dst].val = rf[in.src1].val << uint(in.imm&63)
					rf[in.dst].ready = complete
					goto pairSecond
				case opPairShr:
					complete = max(d, rf[in.src1].ready) + uint64(in.lat)
					rf[in.dst].val = int64(uint64(rf[in.src1].val) >> uint(in.imm&63))
					rf[in.dst].ready = complete
					goto pairSecond
				case opPairFadd:
					complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
					rf[in.dst].val = rf[in.src1].val + rf[in.src2].val
					rf[in.dst].ready = complete
					goto pairSecond
				case opPairFmul:
					complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
					rf[in.dst].val = rf[in.src1].val * rf[in.src2].val
					rf[in.dst].ready = complete
					goto pairSecond
				case opPairFdiv:
					complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
					if v := rf[in.src2].val; v != 0 {
						rf[in.dst].val = rf[in.src1].val / v
					} else {
						rf[in.dst].val = 0
					}
					rf[in.dst].ready = complete
					goto pairSecond
				case opPairFma:
					complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
					rf[in.dst].val += rf[in.src1].val * rf[in.src2].val
					rf[in.dst].ready = complete
					goto pairSecond
				case opPairLoad:
					complete = max(d, rf[in.src1].ready) + uint64(in.lat)
					rf[in.dst].val = mem[(rf[in.src1].val+in.imm)&memMask]
					rf[in.dst].ready = complete
					goto pairSecond
				case opPairStore:
					complete = max(d, rf[in.src1].ready, rf[in.src2].ready) + uint64(in.lat)
					mem[(rf[in.src2].val+in.imm)&memMask] = rf[in.src1].val
					goto pairSecond
				default:
					panic(fmt.Sprintf("cpu: invalid opcode %d at index %d", in.op, pc))
				}

				uopsDone += uint64(in.uops)

				if complete > retCycle {
					retCycle = complete
					retCount = 1
				} else if retCount >= rw {
					retCycle++
					retCount = 1
				} else {
					retCount++
				}

				pc = next
				continue

			pairSecond:
				// Second half of a fused pair: retire the head, then dispatch
				// the glued instruction at pc+1 in the same iteration. The head
				// applied any pending redirect and set none itself, so the
				// glued dispatch only needs the width rollover.
				uopsDone += uint64(in.uops)
				if complete > retCycle {
					retCycle = complete
					retCount = 1
				} else if retCount >= rw {
					retCycle++
					retCount = 1
				} else {
					retCount++
				}
				if i == 1 {
					// The grant ends at the head; the glued instruction runs
					// at the top of the next stride (or in event mode).
					pc++
					continue
				}
				i--
				jin := &code[pc+1]
				d2 := d
				if dispCount >= dw {
					d2++
					dispCount = 0
				}
				dispCycle = d2
				dispCount++
				next = pc + 2
				switch jin.op {
				case isa.OpMov:
					complete = max(d2, rf[jin.src1].ready) + uint64(jin.lat)
					rf[jin.dst].val = rf[jin.src1].val
					rf[jin.dst].ready = complete
				case isa.OpMovi:
					complete = d2 + uint64(jin.lat)
					rf[jin.dst].val = jin.imm
					rf[jin.dst].ready = complete
				case isa.OpAdd:
					complete = max(d2, rf[jin.src1].ready, rf[jin.src2].ready) + uint64(jin.lat)
					rf[jin.dst].val = rf[jin.src1].val + rf[jin.src2].val
					rf[jin.dst].ready = complete
				case isa.OpAddi:
					complete = max(d2, rf[jin.src1].ready) + uint64(jin.lat)
					rf[jin.dst].val = rf[jin.src1].val + jin.imm
					rf[jin.dst].ready = complete
				case isa.OpSub:
					complete = max(d2, rf[jin.src1].ready, rf[jin.src2].ready) + uint64(jin.lat)
					rf[jin.dst].val = rf[jin.src1].val - rf[jin.src2].val
					rf[jin.dst].ready = complete
				case isa.OpMul:
					complete = max(d2, rf[jin.src1].ready, rf[jin.src2].ready) + uint64(jin.lat)
					rf[jin.dst].val = rf[jin.src1].val * rf[jin.src2].val
					rf[jin.dst].ready = complete
				case isa.OpDiv:
					complete = max(d2, rf[jin.src1].ready, rf[jin.src2].ready) + uint64(jin.lat)
					if v := rf[jin.src2].val; v != 0 {
						rf[jin.dst].val = rf[jin.src1].val / v
					} else {
						rf[jin.dst].val = 0
					}
					rf[jin.dst].ready = complete
				case isa.OpRem:
					complete = max(d2, rf[jin.src1].ready, rf[jin.src2].ready) + uint64(jin.lat)
					if v := rf[jin.src2].val; v != 0 {
						rf[jin.dst].val = rf[jin.src1].val % v
					} else {
						rf[jin.dst].val = 0
					}
					rf[jin.dst].ready = complete
				case isa.OpAnd:
					complete = max(d2, rf[jin.src1].ready, rf[jin.src2].ready) + uint64(jin.lat)
					rf[jin.dst].val = rf[jin.src1].val & rf[jin.src2].val
					rf[jin.dst].ready = complete
				case isa.OpOr:
					complete = max(d2, rf[jin.src1].ready, rf[jin.src2].ready) + uint64(jin.lat)
					rf[jin.dst].val = rf[jin.src1].val | rf[jin.src2].val
					rf[jin.dst].ready = complete
				case isa.OpXor:
					complete = max(d2, rf[jin.src1].ready, rf[jin.src2].ready) + uint64(jin.lat)
					rf[jin.dst].val = rf[jin.src1].val ^ rf[jin.src2].val
					rf[jin.dst].ready = complete
				case isa.OpShl:
					complete = max(d2, rf[jin.src1].ready) + uint64(jin.lat)
					rf[jin.dst].val = rf[jin.src1].val << uint(jin.imm&63)
					rf[jin.dst].ready = complete
				case isa.OpShr:
					complete = max(d2, rf[jin.src1].ready) + uint64(jin.lat)
					rf[jin.dst].val = int64(uint64(rf[jin.src1].val) >> uint(jin.imm&63))
					rf[jin.dst].ready = complete
				case isa.OpFadd:
					complete = max(d2, rf[jin.src1].ready, rf[jin.src2].ready) + uint64(jin.lat)
					rf[jin.dst].val = rf[jin.src1].val + rf[jin.src2].val
					rf[jin.dst].ready = complete
				case isa.OpFmul:
					complete = max(d2, rf[jin.src1].ready, rf[jin.src2].ready) + uint64(jin.lat)
					rf[jin.dst].val = rf[jin.src1].val * rf[jin.src2].val
					rf[jin.dst].ready = complete
				case isa.OpFdiv:
					complete = max(d2, rf[jin.src1].ready, rf[jin.src2].ready) + uint64(jin.lat)
					if v := rf[jin.src2].val; v != 0 {
						rf[jin.dst].val = rf[jin.src1].val / v
					} else {
						rf[jin.dst].val = 0
					}
					rf[jin.dst].ready = complete
				case isa.OpFma:
					complete = max(d2, rf[jin.src1].ready, rf[jin.src2].ready) + uint64(jin.lat)
					rf[jin.dst].val += rf[jin.src1].val * rf[jin.src2].val
					rf[jin.dst].ready = complete
				case isa.OpLoad:
					complete = max(d2, rf[jin.src1].ready) + uint64(jin.lat)
					rf[jin.dst].val = mem[(rf[jin.src1].val+jin.imm)&memMask]
					rf[jin.dst].ready = complete
				case isa.OpStore:
					complete = max(d2, rf[jin.src1].ready, rf[jin.src2].ready) + uint64(jin.lat)
					mem[(rf[jin.src2].val+jin.imm)&memMask] = rf[jin.src1].val
				case isa.OpJmp:
					complete = d2 + uint64(jin.lat)
					next = int32(jin.imm)
					redirect = d2 + 1 + bubble
					takenBr++
				default:
					panic(fmt.Sprintf("cpu: unfusable glued opcode %d at index %d", jin.op, pc+1))
				}
				uopsDone += uint64(jin.uops)
				if complete > retCycle {
					retCycle = complete
					retCount = 1
				} else if retCount >= rw {
					retCycle++
					retCount = 1
				} else {
					retCount++
				}
				pc = next
			}
		strideDone:

			instrs += executed
			headroom -= executed
			if halted || instrs >= maxInstrs {
				fm.BulkRetire(BulkCounts{
					Instrs:        instrs - flInstrs,
					Uops:          uopsDone - flUops,
					TakenBranches: takenBr - flTaken,
					CondBranches:  condBr - flCond,
					Mispredicts:   mispred - flMispred,
				})
				res := fastResult(instrs, uopsDone, retCycle, takenBr, condBr, mispred)
				if halted {
					return res, nil
				}
				return res, ErrInstrLimit
			}
		}
		continue

	fail:
		// A call/ret fault aborts the run before the faulting instruction
		// retires (matching the interpreter): account the stride's
		// completed prefix, flush, and wrap the error exactly as Run does.
		instrs += nDone
		if instrs != flInstrs {
			fm.BulkRetire(BulkCounts{
				Instrs:        instrs - flInstrs,
				Uops:          uopsDone - flUops,
				TakenBranches: takenBr - flTaken,
				CondBranches:  condBr - flCond,
				Mispredicts:   mispred - flMispred,
			})
		}
		return fastResult(instrs, uopsDone, retCycle, takenBr, condBr, mispred),
			runErr(uint32(pc), &p.Code[pc], pendingErr)
	}
}
