package cpu

import (
	"fmt"

	"pmutrust/internal/program"
)

// FuncMonitor observes the functional retirement stream (no timing).
type FuncMonitor interface {
	// OnExec is called once per executed instruction with its code index.
	OnExec(idx uint32)
}

// FuncResult summarizes a functional run.
type FuncResult struct {
	// Instructions is the number of executed instructions.
	Instructions uint64
	// TakenBranches counts taken control transfers.
	TakenBranches uint64
	// Uops counts executed micro-ops.
	Uops uint64
}

// RunFunctional executes p without the timing model, calling mon.OnExec for
// every instruction. It is the reference ("Pin") execution path: exact,
// faster than the timed run, and — by construction — retiring the identical
// dynamic instruction sequence (asserted by tests in this package).
//
// mon may be nil to run for the counters only.
func RunFunctional(p *program.Program, mon FuncMonitor, maxInstrs uint64) (FuncResult, error) {
	s := newState(p, DefaultConfig())
	if maxInstrs == 0 {
		maxInstrs = 1 << 40
	}
	var res FuncResult
	for {
		in := &s.code[s.pc]
		idx := uint32(s.pc)
		taken, _, next, halt, err := s.step(in)
		if err != nil {
			return res, fmt.Errorf("at %#x (%s): %w",
				program.DisplayAddr(int(idx)), in.Disasm(), err)
		}
		res.Instructions++
		res.Uops += uint64(in.Op.Uops())
		if taken {
			res.TakenBranches++
		}
		if mon != nil {
			mon.OnExec(idx)
		}
		if halt {
			return res, nil
		}
		if res.Instructions >= maxInstrs {
			return res, ErrInstrLimit
		}
		s.pc = next
	}
}
