// Package cpu implements the deterministic processor simulator that
// replaces the paper's physical machines (AMD Magny-Cours, Intel Westmere,
// Intel Ivy Bridge).
//
// The simulator combines exact functional execution with a retirement-
// timing model. Functional execution provides ground truth (the role Pin
// plays in the paper); the timing model produces the retirement-stream
// phenomena that make event-based sampling inaccurate:
//
//   - long-latency instructions stall in-order retirement (the "shadow"
//     effect of Chen et al. §3.1);
//   - stalled instructions then retire in RetireWidth-wide bursts (the
//     "out-of-order clustering of uops ... retired in bursts" the paper
//     blames for CallChain behaviour, §5.1);
//   - interrupt delivery latency detaches the sampled IP from the
//     triggering instruction (the "skid" effect);
//   - branch mispredictions and taken-branch fetch bubbles spread work
//     unevenly over cycles.
//
// The model is not cycle-accurate against any real core, and does not need
// to be: the paper's claims are about *relative* accuracy of sampling
// methods, which depends only on these qualitative retirement behaviours.
package cpu

import "pmutrust/internal/isa"

// Config describes one simulated core. Machine presets live in
// internal/machine; this package only interprets the numbers.
type Config struct {
	// DispatchWidth is the number of instructions the front end can
	// deliver per cycle.
	DispatchWidth int
	// RetireWidth is the number of instructions that can retire per
	// cycle. This is the knob behind retirement bursts: after a stall,
	// up to RetireWidth instructions leave in one cycle.
	RetireWidth int
	// MispredictPenalty is the fetch-redirect cost in cycles of a
	// mispredicted conditional branch.
	MispredictPenalty uint64
	// TakenBranchBubble is the front-end bubble in cycles after any
	// correctly-predicted taken control transfer.
	TakenBranchBubble uint64
	// PredictorBits is the log2 size of the 2-bit direction predictor
	// table. Zero selects the default (12: 4096 entries).
	PredictorBits int
	// MaxCallDepth bounds the simulated call stack; exceeding it is a
	// workload bug reported as an error. Zero selects the default (1024).
	MaxCallDepth int
}

// DefaultConfig returns a generic 4-wide out-of-order core configuration.
func DefaultConfig() Config {
	return Config{
		DispatchWidth:     4,
		RetireWidth:       4,
		MispredictPenalty: 14,
		TakenBranchBubble: 1,
		PredictorBits:     12,
		MaxCallDepth:      1024,
	}
}

// MaxRetireCyclesPerInstr returns a proven upper bound on how far the
// retirement clock can advance per retired instruction under this
// configuration. Derivation (both engines share the timing model): the
// next instruction's dispatch cycle is at most the previous retirement
// cycle plus max(MispredictPenalty, TakenBranchBubble+1) (a redirect is
// the only way dispatch jumps ahead, and every redirect source — a
// mispredict resolving at a completion cycle, or a taken-branch bubble —
// is bounded by an already-retired instruction's cycle); operand-ready
// times are completion cycles of retired producers, so they cannot push
// past that; execution adds at most isa.MaxLatency; and the retire-width
// rule adds at most one more cycle. The mux (internal/pmu Mux) divides a
// cycle deadline by this bound to obtain an instruction headroom that can
// never cross the deadline mid-stride; one extra cycle of slack is
// included so the bound stays safe under small timing-model edits.
func (c Config) MaxRetireCyclesPerInstr() uint64 {
	c = c.withDefaults()
	worst := c.MispredictPenalty
	if b := c.TakenBranchBubble + 1; b > worst {
		worst = b
	}
	return uint64(isa.MaxLatency) + worst + 2
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.DispatchWidth <= 0 {
		c.DispatchWidth = d.DispatchWidth
	}
	if c.RetireWidth <= 0 {
		c.RetireWidth = d.RetireWidth
	}
	if c.PredictorBits <= 0 {
		c.PredictorBits = d.PredictorBits
	}
	if c.MaxCallDepth <= 0 {
		c.MaxCallDepth = d.MaxCallDepth
	}
	return c
}
