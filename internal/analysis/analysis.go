// Package analysis scores estimated profiles against the reference, using
// the paper's accuracy-error metric (§3.3) and the derived comparisons the
// results sections report: improvement factors and top-N function-ranking
// agreement.
package analysis

import (
	"fmt"
	"math"

	"pmutrust/internal/profile"
	"pmutrust/internal/ref"
)

// AccuracyError computes the paper's metric:
//
//	Err(x) = Σ_bb |InstrCount_x[bb] − InstrCount_REF[bb]| / net_instruction_count
//
// 0 is perfect; 2 is the worst possible for a mass-preserving estimate
// (everything attributed to the wrong blocks counts twice).
func AccuracyError(est *profile.BlockProfile, reference *ref.Profile) (float64, error) {
	if est.Prog != reference.Prog {
		return 0, fmt.Errorf("analysis: profile and reference are for different programs")
	}
	if reference.NetInstructions == 0 {
		return 0, fmt.Errorf("analysis: reference has zero instructions")
	}
	sum := 0.0
	for b := range reference.InstrCount {
		sum += math.Abs(est.InstrEstimate[b] - float64(reference.InstrCount[b]))
	}
	return sum / float64(reference.NetInstructions), nil
}

// PerBlockErrors returns |est−ref|/ref per block for blocks the reference
// says executed, keyed by block ID. Blocks with zero reference count are
// skipped (relative error is undefined there). The paper's Table 3 notes
// LBR per-block errors "can still reach 30-50% ... for some basic blocks";
// this is the quantity behind that remark.
func PerBlockErrors(est *profile.BlockProfile, reference *ref.Profile) map[int]float64 {
	out := make(map[int]float64)
	for b, rc := range reference.InstrCount {
		if rc == 0 {
			continue
		}
		out[b] = math.Abs(est.InstrEstimate[b]-float64(rc)) / float64(rc)
	}
	return out
}

// ImprovementFactor returns how many times smaller err is than base
// (base/err). Both must be collected against the same reference. A factor
// above 1 means err improves on base. Degenerate inputs (zero err) return
// +Inf, matching the intuitive reading "perfect".
func ImprovementFactor(base, err float64) float64 {
	if err == 0 {
		if base == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return base / err
}

// RankAgreement compares an estimated top-N function ranking with the
// reference ranking.
type RankAgreement struct {
	// N is the requested depth.
	N int
	// ExactOrder reports whether the top-N sequences are identical.
	ExactOrder bool
	// SetOverlap is |est∩ref| / N for the top-N sets.
	SetOverlap float64
	// KendallTau is the rank correlation over the union of both top-N
	// sets (1 = same order, −1 = reversed).
	KendallTau float64
}

// CompareRankings evaluates agreement between est's and ref's top-N
// function rankings. refRank and estRank are full rankings (function IDs
// in descending hotness).
func CompareRankings(estRank, refRank []int, n int) RankAgreement {
	if n > len(refRank) {
		n = len(refRank)
	}
	if n > len(estRank) {
		n = len(estRank)
	}
	ra := RankAgreement{N: n, ExactOrder: true}
	for i := 0; i < n; i++ {
		if estRank[i] != refRank[i] {
			ra.ExactOrder = false
			break
		}
	}
	if n == 0 {
		return ra
	}

	refTop := make(map[int]int, n) // id -> position
	for i := 0; i < n; i++ {
		refTop[refRank[i]] = i
	}
	overlap := 0
	estPos := make(map[int]int, n)
	for i := 0; i < n; i++ {
		estPos[estRank[i]] = i
		if _, ok := refTop[estRank[i]]; ok {
			overlap++
		}
	}
	ra.SetOverlap = float64(overlap) / float64(n)

	// Kendall tau over the IDs present in both top-N lists.
	var common []int
	for i := 0; i < n; i++ {
		if _, ok := estPos[refRank[i]]; ok {
			common = append(common, refRank[i])
		}
	}
	if len(common) < 2 {
		ra.KendallTau = 1
		return ra
	}
	concordant, discordant := 0, 0
	for i := 0; i < len(common); i++ {
		for j := i + 1; j < len(common); j++ {
			a, b := common[i], common[j]
			// ref order: a before b (by construction of common).
			if estPos[a] < estPos[b] {
				concordant++
			} else {
				discordant++
			}
		}
	}
	ra.KendallTau = float64(concordant-discordant) / float64(concordant+discordant)
	return ra
}

// RefFunctionRanking converts a reference profile to a function ranking
// comparable with profile.FunctionProfile.Ranking.
func RefFunctionRanking(r *ref.Profile) []int {
	fp := &profile.FunctionProfile{
		Prog:          r.Prog,
		InstrEstimate: make([]float64, r.Prog.NumFuncs()),
	}
	for b, ic := range r.InstrCount {
		fp.InstrEstimate[r.Prog.Blocks[b].Func] += float64(ic)
	}
	return fp.Ranking()
}
