package analysis

import (
	"fmt"
	"math"

	"pmutrust/internal/isa"
	"pmutrust/internal/profile"
	"pmutrust/internal/ref"
)

// Energy attribution: §2.1 motivates accurate block profiles with
// "code level energy-efficiency monitors demand accuracy by using metrics
// such as Watts-per-instruction (WPI)". This file propagates block-count
// errors into per-block energy estimates under a per-class energy model,
// quantifying how profile inaccuracy corrupts energy attribution.

// EnergyModel maps instruction classes to energy per executed
// instruction, in picojoules. Magnitudes follow the usual integer-vs-
// divider-vs-memory ratios of published core energy breakdowns; only the
// ratios matter for the error metric.
type EnergyModel map[isa.Class]float64

// DefaultEnergyModel returns the standard model.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		isa.ClassALU:    5,
		isa.ClassMul:    12,
		isa.ClassDiv:    90,
		isa.ClassFP:     18,
		isa.ClassFPDiv:  110,
		isa.ClassMem:    25,
		isa.ClassBranch: 6,
		isa.ClassOther:  2,
	}
}

// BlockEnergy returns the energy of one execution of each block under the
// model, in picojoules, indexed by block ID.
func BlockEnergy(p *profile.BlockProfile, model EnergyModel) []float64 {
	out := make([]float64, p.Prog.NumBlocks())
	for i, blk := range p.Prog.Blocks {
		var e float64
		for _, in := range blk.Instrs {
			e += model[in.Op.ClassOf()]
		}
		out[i] = e
	}
	return out
}

// EnergyError computes the paper-style accuracy error on *energy*
// attribution: the sum of absolute per-block energy deviations between
// the estimated and exact profiles, normalized by total energy. Because
// energy per instruction varies across blocks (a divide block is ~18x an
// ALU block), energy errors can exceed instruction-count errors whenever
// a method's misattribution correlates with expensive instructions —
// which is precisely what the skid/shadow bias does.
func EnergyError(est *profile.BlockProfile, reference *ref.Profile, model EnergyModel) (float64, error) {
	if est.Prog != reference.Prog {
		return 0, fmt.Errorf("analysis: profile and reference are for different programs")
	}
	if model == nil {
		model = DefaultEnergyModel()
	}
	prog := reference.Prog
	perExec := make([]float64, prog.NumBlocks())
	for i, blk := range prog.Blocks {
		for _, in := range blk.Instrs {
			perExec[i] += model[in.Op.ClassOf()]
		}
	}
	var totalEnergy, errSum float64
	for b := range perExec {
		exact := float64(reference.ExecCount[b]) * perExec[b]
		estimated := est.ExecEstimate[b] * perExec[b]
		totalEnergy += exact
		errSum += math.Abs(estimated - exact)
	}
	if totalEnergy == 0 {
		return 0, fmt.Errorf("analysis: zero total energy")
	}
	return errSum / totalEnergy, nil
}

// WPIByFunction returns estimated energy-per-instruction (picojoules) per
// function ID — the WPI metric of §2.1 at function granularity.
func WPIByFunction(est *profile.BlockProfile, model EnergyModel) []float64 {
	if model == nil {
		model = DefaultEnergyModel()
	}
	prog := est.Prog
	energy := make([]float64, prog.NumFuncs())
	instrs := make([]float64, prog.NumFuncs())
	perExec := BlockEnergy(est, model)
	for b, blk := range prog.Blocks {
		f := blk.Func
		energy[f] += est.ExecEstimate[b] * perExec[b]
		instrs[f] += est.InstrEstimate[b]
	}
	out := make([]float64, prog.NumFuncs())
	for f := range out {
		if instrs[f] > 0 {
			out[f] = energy[f] / instrs[f]
		}
	}
	return out
}
