package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"pmutrust/internal/profile"
	"pmutrust/internal/program"
	"pmutrust/internal/ref"
)

// fixedRef fabricates a reference profile over a 3-block program.
func fixedRef(t *testing.T) (*program.Program, *ref.Profile) {
	t.Helper()
	b := program.NewBuilder("p")
	f := b.Func("main")
	e := f.Block("a")
	e.Addi(1, 1, 1)
	e.Addi(1, 1, 1)
	mid := f.Block("b")
	mid.Addi(2, 2, 1)
	end := f.Block("c")
	end.Halt()
	p := b.MustBuild()

	r := &ref.Profile{
		Prog:            p,
		ExecCount:       []uint64{100, 100, 1},
		InstrCount:      []uint64{200, 100, 1},
		NetInstructions: 301,
	}
	return p, r
}

func TestAccuracyErrorZeroForExact(t *testing.T) {
	p, r := fixedRef(t)
	bp := profile.NewBlockProfile(p)
	for i, ic := range r.InstrCount {
		bp.InstrEstimate[i] = float64(ic)
	}
	e, err := AccuracyError(bp, r)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Errorf("exact profile error = %v", e)
	}
}

func TestAccuracyErrorKnownValue(t *testing.T) {
	p, r := fixedRef(t)
	bp := profile.NewBlockProfile(p)
	bp.InstrEstimate[0] = 100 // -100
	bp.InstrEstimate[1] = 200 // +100
	bp.InstrEstimate[2] = 1
	e, err := AccuracyError(bp, r)
	if err != nil {
		t.Fatal(err)
	}
	want := 200.0 / 301.0
	if math.Abs(e-want) > 1e-12 {
		t.Errorf("error = %v, want %v", e, want)
	}
}

func TestAccuracyErrorMismatchedPrograms(t *testing.T) {
	p, r := fixedRef(t)
	_ = p
	q, _ := fixedRef(t)
	bp := profile.NewBlockProfile(q)
	if _, err := AccuracyError(bp, r); err == nil {
		t.Error("mismatched programs accepted")
	}
}

func TestAccuracyErrorZeroReference(t *testing.T) {
	p, r := fixedRef(t)
	r.NetInstructions = 0
	bp := profile.NewBlockProfile(p)
	if _, err := AccuracyError(bp, r); err == nil {
		t.Error("zero-instruction reference accepted")
	}
}

func TestPerBlockErrors(t *testing.T) {
	p, r := fixedRef(t)
	bp := profile.NewBlockProfile(p)
	bp.InstrEstimate[0] = 150 // 25% off
	bp.InstrEstimate[1] = 100 // exact
	bp.InstrEstimate[2] = 2   // 100% off
	pb := PerBlockErrors(bp, r)
	if math.Abs(pb[0]-0.25) > 1e-12 || pb[1] != 0 || math.Abs(pb[2]-1) > 1e-12 {
		t.Errorf("per-block errors = %v", pb)
	}
	// Zero-reference blocks are skipped.
	r.InstrCount[2] = 0
	pb = PerBlockErrors(bp, r)
	if _, ok := pb[2]; ok {
		t.Error("zero-reference block not skipped")
	}
}

func TestImprovementFactor(t *testing.T) {
	if got := ImprovementFactor(0.4, 0.1); got != 4 {
		t.Errorf("factor = %v", got)
	}
	if got := ImprovementFactor(0.1, 0.4); got != 0.25 {
		t.Errorf("degradation factor = %v", got)
	}
	if !math.IsInf(ImprovementFactor(0.5, 0), 1) {
		t.Error("perfect estimate not +Inf")
	}
	if ImprovementFactor(0, 0) != 1 {
		t.Error("0/0 not 1")
	}
}

func TestCompareRankingsExact(t *testing.T) {
	ra := CompareRankings([]int{1, 2, 3, 4}, []int{1, 2, 3, 4}, 4)
	if !ra.ExactOrder || ra.SetOverlap != 1 || ra.KendallTau != 1 {
		t.Errorf("identical rankings: %+v", ra)
	}
}

func TestCompareRankingsReversed(t *testing.T) {
	ra := CompareRankings([]int{4, 3, 2, 1}, []int{1, 2, 3, 4}, 4)
	if ra.ExactOrder {
		t.Error("reversed marked exact")
	}
	if ra.SetOverlap != 1 {
		t.Errorf("overlap = %v", ra.SetOverlap)
	}
	if ra.KendallTau != -1 {
		t.Errorf("tau = %v", ra.KendallTau)
	}
}

func TestCompareRankingsPartialOverlap(t *testing.T) {
	ra := CompareRankings([]int{1, 2, 9, 8}, []int{1, 2, 3, 4}, 4)
	if ra.ExactOrder {
		t.Error("partial marked exact")
	}
	if ra.SetOverlap != 0.5 {
		t.Errorf("overlap = %v", ra.SetOverlap)
	}
	if ra.KendallTau != 1 {
		t.Errorf("tau over common prefix = %v", ra.KendallTau)
	}
}

func TestCompareRankingsTruncation(t *testing.T) {
	// n larger than the rankings clamps.
	ra := CompareRankings([]int{1, 2}, []int{1, 2}, 10)
	if ra.N != 2 || !ra.ExactOrder {
		t.Errorf("clamped comparison: %+v", ra)
	}
	ra = CompareRankings(nil, nil, 5)
	if ra.N != 0 {
		t.Errorf("empty comparison: %+v", ra)
	}
}

func TestRefFunctionRanking(t *testing.T) {
	p, r := fixedRef(t)
	_ = p
	rank := RefFunctionRanking(r)
	if len(rank) != 1 || rank[0] != 0 {
		t.Errorf("single-function ranking = %v", rank)
	}
}

// Property: AccuracyError is non-negative and zero only for exact
// estimates (over non-negative estimates).
func TestQuickAccuracyErrorProperties(t *testing.T) {
	p, r := fixedRef(t)
	f := func(a, b, c uint16) bool {
		bp := profile.NewBlockProfile(p)
		bp.InstrEstimate[0] = float64(a)
		bp.InstrEstimate[1] = float64(b)
		bp.InstrEstimate[2] = float64(c)
		e, err := AccuracyError(bp, r)
		if err != nil || e < 0 {
			return false
		}
		exact := uint64(a) == r.InstrCount[0] && uint64(b) == r.InstrCount[1] && uint64(c) == r.InstrCount[2]
		return (e == 0) == exact
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the error metric satisfies the triangle-style monotonicity of
// scaling — doubling all deviations doubles the error.
func TestQuickAccuracyErrorLinearity(t *testing.T) {
	p, r := fixedRef(t)
	f := func(a, b, c int16) bool {
		bp1 := profile.NewBlockProfile(p)
		bp2 := profile.NewBlockProfile(p)
		devs := []float64{float64(a), float64(b), float64(c)}
		for i, ic := range r.InstrCount {
			bp1.InstrEstimate[i] = float64(ic) + devs[i]
			bp2.InstrEstimate[i] = float64(ic) + 2*devs[i]
		}
		e1, err1 := AccuracyError(bp1, r)
		e2, err2 := AccuracyError(bp2, r)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(e2-2*e1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
