package analysis

import (
	"math"
	"testing"

	"pmutrust/internal/isa"
	"pmutrust/internal/lbr"
	"pmutrust/internal/machine"
	"pmutrust/internal/profile"
	"pmutrust/internal/ref"
	"pmutrust/internal/sampling"
	"pmutrust/internal/workloads"
)

func TestDefaultEnergyModelCoversAllClasses(t *testing.T) {
	model := DefaultEnergyModel()
	for op := isa.Op(0); op < isa.Op(isa.NumOps); op++ {
		if _, ok := model[op.ClassOf()]; !ok {
			t.Errorf("class %s (op %s) has no energy entry", op.ClassOf(), op)
		}
	}
	if model[isa.ClassDiv] <= model[isa.ClassALU] {
		t.Error("divider not more expensive than ALU")
	}
}

func TestEnergyErrorExactProfile(t *testing.T) {
	p := workloads.MustBuild("LatencyBiased", 0.02)
	reference, err := ref.Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	bp := profile.NewBlockProfile(p)
	for b, ec := range reference.ExecCount {
		bp.ExecEstimate[b] = float64(ec)
		bp.InstrEstimate[b] = float64(reference.InstrCount[b])
	}
	e, err := EnergyError(bp, reference, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Errorf("exact profile energy error = %v", e)
	}
}

// TestEnergyErrorAmplifiedBySkidBias: on LatencyBiased, classic sampling's
// misattribution correlates with the expensive divide, so the energy
// error must exceed LBR's, and the classic energy error must be
// substantial — the §2.1 WPI motivation, demonstrated.
func TestEnergyErrorAmplifiedBySkidBias(t *testing.T) {
	p := workloads.MustBuild("LatencyBiased", 0.2)
	reference, err := ref.Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	measure := func(key string) float64 {
		m, err := sampling.MethodByKey(key)
		if err != nil {
			t.Fatal(err)
		}
		run, err := sampling.Collect(p, machine.IvyBridge(), m, sampling.Options{
			PeriodBase: 1000, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		var bp *profile.BlockProfile
		if run.Method.UseLBRStack {
			bp, _, err = lbr.BuildProfile(p, run)
			if err != nil {
				t.Fatal(err)
			}
		} else {
			bp = profile.FromSamples(p, run)
		}
		e, err := EnergyError(bp, reference, nil)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	classic := measure("classic")
	lbrErr := measure("lbr")
	if classic < 0.3 {
		t.Errorf("classic energy error %.4f suspiciously small", classic)
	}
	if lbrErr >= classic/2 {
		t.Errorf("LBR energy error %.4f not clearly below classic %.4f", lbrErr, classic)
	}
}

func TestEnergyErrorValidation(t *testing.T) {
	p := workloads.MustBuild("G4Box", 0.01)
	q := workloads.MustBuild("Test40", 0.01)
	refP, err := ref.Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EnergyError(profile.NewBlockProfile(q), refP, nil); err == nil {
		t.Error("mismatched programs accepted")
	}
}

func TestWPIByFunction(t *testing.T) {
	p := workloads.MustBuild("LatencyBiased", 0.02)
	reference, err := ref.Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	bp := profile.NewBlockProfile(p)
	for b, ec := range reference.ExecCount {
		bp.ExecEstimate[b] = float64(ec)
		bp.InstrEstimate[b] = float64(reference.InstrCount[b])
	}
	wpi := WPIByFunction(bp, nil)
	if len(wpi) != p.NumFuncs() {
		t.Fatalf("wpi size = %d", len(wpi))
	}
	// main contains divides: its WPI must exceed the pure-ALU floor.
	model := DefaultEnergyModel()
	if wpi[0] <= model[isa.ClassALU] {
		t.Errorf("main WPI %.2f not above ALU floor", wpi[0])
	}
	if math.IsNaN(wpi[0]) || math.IsInf(wpi[0], 0) {
		t.Error("WPI not finite")
	}
}

func TestBlockEnergy(t *testing.T) {
	p := workloads.MustBuild("LatencyBiased", 0.01)
	bp := profile.NewBlockProfile(p)
	be := BlockEnergy(bp, DefaultEnergyModel())
	// The odd (divide) block must out-cost the even (add) block.
	var odd, even float64
	for i, blk := range p.Blocks {
		switch blk.Label {
		case "odd":
			odd = be[i]
		case "even":
			even = be[i]
		}
	}
	if odd <= even {
		t.Errorf("divide block energy %.1f not above add block %.1f", odd, even)
	}
}
