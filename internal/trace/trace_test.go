package trace

import (
	"strings"
	"testing"

	"pmutrust/internal/cpu"
	"pmutrust/internal/workloads"
)

func TestRingRetention(t *testing.T) {
	tr := New(4, nil)
	for i := 0; i < 10; i++ {
		tr.OnRetire(cpu.RetireEvent{Seq: uint64(i + 1), Cycle: uint64(i)})
	}
	if tr.Count() != 10 {
		t.Errorf("count = %d", tr.Count())
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("retained = %d", len(ev))
	}
	if ev[0].Seq != 7 || ev[3].Seq != 10 {
		t.Errorf("retention window wrong: %v..%v", ev[0].Seq, ev[3].Seq)
	}
}

func TestPartialFill(t *testing.T) {
	tr := New(8, nil)
	tr.OnRetire(cpu.RetireEvent{Seq: 1})
	tr.OnRetire(cpu.RetireEvent{Seq: 2})
	ev := tr.Events()
	if len(ev) != 2 || ev[0].Seq != 1 {
		t.Errorf("partial fill: %v", ev)
	}
}

func TestForwarding(t *testing.T) {
	var got []uint64
	sink := monitorFunc(func(ev cpu.RetireEvent) { got = append(got, ev.Seq) })
	tr := New(2, sink)
	for i := 0; i < 5; i++ {
		tr.OnRetire(cpu.RetireEvent{Seq: uint64(i + 1)})
	}
	if len(got) != 5 {
		t.Errorf("forwarded %d of 5", len(got))
	}
}

type monitorFunc func(cpu.RetireEvent)

func (f monitorFunc) OnRetire(ev cpu.RetireEvent) { f(ev) }

func TestDefaultDepth(t *testing.T) {
	tr := New(0, nil)
	if len(tr.ring) != 64 {
		t.Errorf("default depth = %d", len(tr.ring))
	}
}

func TestFormatAgainstRealRun(t *testing.T) {
	p := workloads.MustBuild("LatencyBiased", 0.001)
	tr := New(32, nil)
	if _, err := cpu.Run(p, cpu.DefaultConfig(), tr, 0); err != nil {
		t.Fatal(err)
	}
	out := tr.Format(p)
	if !strings.Contains(out, "main.") {
		t.Errorf("format lacks symbolization:\n%s", out)
	}
	if !strings.Contains(out, "halt") {
		t.Errorf("last events must include the halt:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != 32 {
		t.Errorf("formatted lines = %d, want 32", lines)
	}
}

func TestBurstHistogram(t *testing.T) {
	tr := New(16, nil)
	// Cycles: 1,1,1,2,3,3 → bursts of 3, 1, 2.
	for _, c := range []uint64{1, 1, 1, 2, 3, 3} {
		tr.OnRetire(cpu.RetireEvent{Cycle: c})
	}
	h := tr.BurstHistogram()
	if h[3] != 1 || h[1] != 1 || h[2] != 1 {
		t.Errorf("histogram = %v", h)
	}
	if len(New(4, nil).BurstHistogram()) != 0 {
		t.Error("empty tracer histogram not empty")
	}
}
