// Package trace provides a bounded retirement-stream tracer: a ring
// buffer of the most recent retirement events, with symbolized text
// rendering. The experiment harness never needs it (profiles are built
// from PMU samples), but the debugging tools do — pmuprof can dump the
// instructions surrounding a sample to show *why* a method misattributed
// it, which is how the skid/shadow/burst effects in this repository were
// validated by eye against §3.1 of the paper.
package trace

import (
	"fmt"
	"strings"

	"pmutrust/internal/cpu"
	"pmutrust/internal/program"
)

// Tracer is a cpu.Monitor recording the last N retirement events.
// A Tracer can wrap another monitor (e.g. the PMU) so that tracing and
// sampling observe the identical stream.
type Tracer struct {
	ring  []cpu.RetireEvent
	pos   int
	count uint64
	next  cpu.Monitor
}

// New creates a tracer keeping the last depth events, forwarding each
// event to next (which may be nil).
func New(depth int, next cpu.Monitor) *Tracer {
	if depth <= 0 {
		depth = 64
	}
	return &Tracer{ring: make([]cpu.RetireEvent, depth), next: next}
}

// OnRetire implements cpu.Monitor.
func (t *Tracer) OnRetire(ev cpu.RetireEvent) {
	t.ring[t.pos] = ev
	t.pos = (t.pos + 1) % len(t.ring)
	t.count++
	if t.next != nil {
		t.next.OnRetire(ev)
	}
}

// Count returns the total number of events observed.
func (t *Tracer) Count() uint64 { return t.count }

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []cpu.RetireEvent {
	n := len(t.ring)
	if t.count < uint64(n) {
		n = int(t.count)
	}
	out := make([]cpu.RetireEvent, n)
	start := t.pos - n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < n; i++ {
		out[i] = t.ring[(start+i)%len(t.ring)]
	}
	return out
}

// Format renders the retained events as a symbolized listing: sequence
// number, cycle, address, block, disassembly, and retirement-burst
// markers (a "│" connects events that retired in the same cycle, making
// the burst structure §5.1 blames for PEBS bias directly visible).
func (t *Tracer) Format(p *program.Program) string {
	var b strings.Builder
	events := t.Events()
	for i, ev := range events {
		burst := " "
		if i > 0 && events[i-1].Cycle == ev.Cycle {
			burst = "│"
		}
		blk := p.Blocks[p.BlockOf[ev.Idx]]
		taken := ""
		if ev.Taken {
			tb := p.Blocks[p.BlockOf[ev.Target]]
			taken = fmt.Sprintf("  -> %s", tb.FullName(p))
		}
		fmt.Fprintf(&b, "%10d  cyc %-10d %s %#08x  %-22s %s%s\n",
			ev.Seq, ev.Cycle, burst,
			program.DisplayAddr(int(ev.Idx)), blk.FullName(p),
			p.Code[ev.Idx].Disasm(), taken)
	}
	return b.String()
}

// BurstHistogram summarizes the retirement-burst size distribution of the
// retained window: how many retirement cycles completed 1, 2, ... events.
func (t *Tracer) BurstHistogram() map[int]int {
	hist := make(map[int]int)
	events := t.Events()
	if len(events) == 0 {
		return hist
	}
	run := 1
	for i := 1; i < len(events); i++ {
		if events[i].Cycle == events[i-1].Cycle {
			run++
			continue
		}
		hist[run]++
		run = 1
	}
	hist[run]++
	return hist
}
