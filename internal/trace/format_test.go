package trace

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pmutrust/internal/program"
	"pmutrust/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite golden files")

// tinyProgram builds a small two-function program covering every wire
// feature: multiple blocks, calls, conditional branches, memory.
func tinyProgram(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder("tiny")
	b.SetMemWords(64)
	f := b.Func("main")
	entry := f.Block("entry")
	entry.Movi(8, 3)
	loop := f.Block("loop")
	loop.Call("work")
	loop.Addi(8, 8, -1)
	loop.Cmpi(8, 0)
	loop.Jnz("loop")
	exit := f.Block("exit")
	exit.Halt()

	w := b.Func("work")
	body := w.Block("body")
	body.Load(1, 0, 0)
	body.Fadd(1, 1, 1)
	body.Store(1, 0, 1)
	body.Ret()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestRoundTripBitIdentical: every workload in the registry (kernels,
// apps, phased) plus the tiny program survives record → encode →
// decode with a bit-identical Program and byte-identical re-encoding.
func TestRoundTripBitIdentical(t *testing.T) {
	progs := []*program.Program{tinyProgram(t)}
	for _, s := range workloads.All() {
		progs = append(progs, s.Build(0.05))
	}
	for _, p := range progs {
		e := Record(p, Meta{Source: "workload:" + p.Name, Scale: 0.05})
		line, err := Encode(e)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		got, err := Decode(line)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if !reflect.DeepEqual(got.Program, p) {
			t.Errorf("%s: replayed program differs from the original", p.Name)
		}
		if got.Meta != e.Meta {
			t.Errorf("%s: meta round trip: %+v != %+v", p.Name, got.Meta, e.Meta)
		}
		line2, err := Encode(got)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if !bytes.Equal(line, line2) {
			t.Errorf("%s: re-encoding a decoded entry changed the bytes", p.Name)
		}
	}
}

// TestGoldenTrace pins the on-disk bytes of a recorded program: any
// unintentional format drift (field order, defaults, fingerprints)
// fails here before it breaks someone's stored traces. Regenerate with
// `go test ./internal/trace -update` — and bump FormatV if the change
// is real.
func TestGoldenTrace(t *testing.T) {
	spec, err := workloads.BuiltinPhasedSpec("PhasedBurst")
	if err != nil {
		t.Fatal(err)
	}
	p, err := workloads.BuildPhased(spec, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	line, err := Encode(Record(p, Meta{
		SpecFP: spec.Fingerprint(), Source: "spec:PhasedBurst", Scale: 0.02,
	}))
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "phasedburst.trace")
	if *update {
		if err := os.WriteFile(golden, line, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/trace -update` to create)", err)
	}
	if !bytes.Equal(line, want) {
		t.Fatalf("recorded trace differs from golden %s; if the format change is intended, bump FormatV and run -update", golden)
	}
	// The golden file itself must replay.
	entries, err := ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || !reflect.DeepEqual(entries[0].Program, p) {
		t.Fatal("golden trace does not replay to the recorded program")
	}
}

// TestTornTail: like the results store, only a torn FINAL line is
// tolerated; interior corruption errors.
func TestTornTail(t *testing.T) {
	p := tinyProgram(t)
	line, err := Encode(Record(p, Meta{}))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	torn := filepath.Join(dir, "torn.trace")
	data := append(append([]byte{}, line...), line...)
	data = append(data, line[:len(line)/3]...) // killed writer residue
	if err := os.WriteFile(torn, data, 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadFile(torn)
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2 (torn tail dropped)", len(entries))
	}

	// A complete final line without a trailing newline is also treated
	// as torn (matching results.Open, which re-writes it on resume).
	unterminated := filepath.Join(dir, "unterminated.trace")
	if err := os.WriteFile(unterminated, append(append([]byte{}, line...), line[:len(line)-1]...), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err = ReadFile(unterminated)
	if err != nil || len(entries) != 1 {
		t.Fatalf("unterminated tail: entries=%d err=%v, want 1, nil", len(entries), err)
	}

	// Interior corruption is an error, not a skip: silently dropping a
	// middle entry would renumber everything after it.
	interior := filepath.Join(dir, "interior.trace")
	bad := append(append([]byte{}, line[:len(line)/3]...), '\n')
	if err := os.WriteFile(interior, append(bad, line...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(interior); err == nil {
		t.Fatal("interior corruption went undetected")
	}
}

// TestVersionGate: entries from a future format version are rejected
// with an error that names both versions, and non-trace JSONL is
// rejected by format name.
func TestVersionGate(t *testing.T) {
	p := tinyProgram(t)
	line, err := Encode(Record(p, Meta{}))
	if err != nil {
		t.Fatal(err)
	}
	future := bytes.Replace(line,
		[]byte(fmt.Sprintf(`"v":%d`, FormatV)),
		[]byte(fmt.Sprintf(`"v":%d`, FormatV+1)), 1)
	if bytes.Equal(future, line) {
		t.Fatal("test setup: version field not found")
	}
	_, err = Decode(future)
	if err == nil {
		t.Fatal("future version accepted")
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("version %d", FormatV+1)) ||
		!strings.Contains(err.Error(), fmt.Sprintf("v%d", FormatV)) {
		t.Errorf("version error does not name both versions: %v", err)
	}

	if _, err := Decode([]byte(`{"v":1,"format":"results-store"}` + "\n")); err == nil {
		t.Error("foreign format accepted")
	}
}

// TestFingerprintGuard: flipping program bytes inside an otherwise
// well-formed entry is caught by the prog_fp check.
func TestFingerprintGuard(t *testing.T) {
	p := tinyProgram(t)
	line, err := Encode(Record(p, Meta{}))
	if err != nil {
		t.Fatal(err)
	}
	// Change an immediate inside the program payload (3 → 4 in the
	// first Movi) without touching the recorded fingerprint.
	tampered := bytes.Replace(line, []byte(`[2,8,0,0,3,-1]`), []byte(`[2,8,0,0,4,-1]`), 1)
	if bytes.Equal(tampered, line) {
		t.Fatal("test setup: expected instruction tuple not found")
	}
	_, err = Decode(tampered)
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("tampered program accepted (err=%v)", err)
	}
}

// TestWriteReadFile: the file API round-trips multiple entries in order.
func TestWriteReadFile(t *testing.T) {
	p1, p2 := tinyProgram(t), workloads.MustBuild("G4Box", 0.02)
	path := filepath.Join(t.TempDir(), "multi.trace")
	if err := WriteFile(path, Record(p1, Meta{Source: "a"}), Record(p2, Meta{Source: "b"})); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Meta.Name != "tiny" || entries[1].Meta.Name != "G4Box" {
		t.Fatalf("unexpected entries: %+v", entries)
	}
	last, err := ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if last.Meta.Name != "G4Box" || !reflect.DeepEqual(last.Program, p2) {
		t.Fatal("ReplayFile did not return the last entry bit-identically")
	}
	if _, err := ReplayFile(filepath.Join(t.TempDir(), "missing.trace")); err == nil {
		t.Error("missing file accepted")
	}
}
