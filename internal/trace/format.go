package trace

// The versioned on-disk program trace: record any built program (plus
// the fingerprint of the spec that generated it) as one self-contained
// JSONL line; replay reconstructs a bit-identical program.Program.
// Record/replay is what makes generated workloads durable artifacts —
// a spec review, a bug report or a CI job can ship the exact program
// bytes instead of "run the generator and hope nothing drifted".
//
// Format contract (docs/WORKLOADS.md specifies it for authors):
//
//   - One entry per line; a file is an append-only log of entries.
//   - Every entry carries the format name and version; a reader
//     rejects versions newer than it understands with an explicit
//     error instead of guessing.
//   - Every entry carries prog_fp, the fingerprint of its canonical
//     program encoding; Decode recomputes and compares it, so silent
//     corruption of program bytes cannot replay.
//   - Encoding is canonical: Encode(Decode(line)) == line, and
//     recording the same program with the same metadata yields the
//     same bytes at any parallelism (no timestamps, no map iteration).
//   - ReadFile tolerates a torn tail exactly like the results store:
//     only a malformed or unterminated FINAL line is dropped (a killed
//     writer's residue); anything malformed earlier is corruption and
//     errors loudly.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"pmutrust/internal/isa"
	"pmutrust/internal/program"
	"pmutrust/internal/stats"
)

// FormatV is the trace format version this build reads and writes.
const FormatV = 1

// formatName guards against feeding some other JSONL (say, a results
// store) to the trace reader.
const formatName = "pmutrust-trace"

// Meta is an entry's provenance: where the program came from and how to
// regenerate it.
type Meta struct {
	// Name is the program/workload name.
	Name string `json:"name"`
	// SpecFP is the generating PhasedSpec's fingerprint ("" when the
	// program did not come from a spec).
	SpecFP string `json:"spec_fp,omitempty"`
	// Source describes provenance for humans: "spec:<name>",
	// "workload:<name>", ...
	Source string `json:"source,omitempty"`
	// Scale is the build scale the program was generated at.
	Scale float64 `json:"scale,omitempty"`
}

// Entry is one recorded program with its metadata.
type Entry struct {
	Meta    Meta
	Program *program.Program
}

// Record captures a built program as an Entry, stamping the program
// name into the metadata.
func Record(p *program.Program, meta Meta) Entry {
	meta.Name = p.Name
	return Entry{Meta: meta, Program: p}
}

// Wire types. Field order is the canonical byte order; do not reorder
// without bumping FormatV.
type wireEntry struct {
	V      int     `json:"v"`
	Format string  `json:"format"`
	Name   string  `json:"name"`
	SpecFP string  `json:"spec_fp,omitempty"`
	Source string  `json:"source,omitempty"`
	Scale  float64 `json:"scale,omitempty"`
	// ProgFP is the stats.Fingerprint of the canonical Program JSON.
	ProgFP  string      `json:"prog_fp"`
	Program wireProgram `json:"program"`
}

type wireProgram struct {
	Name     string     `json:"name"`
	MemWords int        `json:"mem_words,omitempty"`
	Funcs    []wireFunc `json:"funcs"`
}

type wireFunc struct {
	Name   string      `json:"name"`
	Blocks []wireBlock `json:"blocks"`
}

type wireBlock struct {
	Label string `json:"label"`
	// Instrs is the instruction list, each as the 6-tuple
	// [op, dst, src1, src2, imm, target].
	Instrs [][6]int64 `json:"instrs"`
}

// encodeProgram lowers a Program to its wire form. Only the authoritative
// structure is serialized (function names, block labels, instructions,
// memory size); IDs, offsets and the lookup tables are derived data that
// Decode rebuilds — they cannot go out of sync with the code.
func encodeProgram(p *program.Program) wireProgram {
	wp := wireProgram{Name: p.Name, MemWords: p.MemWords}
	for _, f := range p.Funcs {
		wf := wireFunc{Name: f.Name}
		for _, b := range f.Blocks {
			wb := wireBlock{Label: b.Label}
			for _, in := range b.Instrs {
				wb.Instrs = append(wb.Instrs, [6]int64{
					int64(in.Op), int64(in.Dst), int64(in.Src1), int64(in.Src2),
					in.Imm, int64(in.Target),
				})
			}
			wf.Blocks = append(wf.Blocks, wb)
		}
		wp.Funcs = append(wp.Funcs, wf)
	}
	return wp
}

// progFingerprint content-addresses a wire program.
func progFingerprint(wp wireProgram) string {
	canon, err := json.Marshal(wp)
	if err != nil {
		panic(fmt.Sprintf("trace: marshal program: %v", err))
	}
	return stats.Fingerprint(0, string(canon))
}

// decodeProgram rebuilds a full Program from its wire form, re-deriving
// IDs, offsets and the code-index lookup tables, then re-validates the
// structural invariants. The result is bit-identical to the recorded
// Program (reflect.DeepEqual; the golden tests pin this).
func decodeProgram(wp wireProgram) (*program.Program, error) {
	p := &program.Program{Name: wp.Name, MemWords: wp.MemWords}
	for fi, wf := range wp.Funcs {
		f := &program.Function{Name: wf.Name, ID: fi, Start: len(p.Code)}
		for _, wb := range wf.Blocks {
			b := &program.Block{
				Label: wb.Label,
				ID:    len(p.Blocks),
				Func:  fi,
				Start: len(p.Code),
			}
			for _, w := range wb.Instrs {
				if w[0] < 0 || int(w[0]) >= isa.NumOps {
					return nil, fmt.Errorf("trace: block %s.%s: invalid opcode %d", wf.Name, wb.Label, w[0])
				}
				for _, r := range w[1:4] {
					if r < 0 || r >= isa.NumRegs {
						return nil, fmt.Errorf("trace: block %s.%s: register %d out of range", wf.Name, wb.Label, r)
					}
				}
				in := isa.Instr{
					Op: isa.Op(w[0]), Dst: isa.Reg(w[1]), Src1: isa.Reg(w[2]), Src2: isa.Reg(w[3]),
					Imm: w[4], Target: int32(w[5]),
				}
				b.Instrs = append(b.Instrs, in)
				p.Code = append(p.Code, in)
				p.BlockOf = append(p.BlockOf, int32(b.ID))
				p.FuncOf = append(p.FuncOf, int32(fi))
			}
			f.Blocks = append(f.Blocks, b)
			p.Blocks = append(p.Blocks, b)
		}
		f.End = len(p.Code)
		p.Funcs = append(p.Funcs, f)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("trace: replayed program invalid: %w", err)
	}
	return p, nil
}

// Encode serializes an entry as one canonical JSONL line (newline
// included). Equal entries encode to equal bytes.
func Encode(e Entry) ([]byte, error) {
	if e.Program == nil {
		return nil, fmt.Errorf("trace: encode: nil program")
	}
	wp := encodeProgram(e.Program)
	we := wireEntry{
		V: FormatV, Format: formatName,
		Name: e.Meta.Name, SpecFP: e.Meta.SpecFP, Source: e.Meta.Source, Scale: e.Meta.Scale,
		ProgFP:  progFingerprint(wp),
		Program: wp,
	}
	line, err := json.Marshal(we)
	if err != nil {
		return nil, fmt.Errorf("trace: encode: %w", err)
	}
	return append(line, '\n'), nil
}

// Decode parses one entry line: version-gates, verifies the program
// fingerprint, and rebuilds the program. The returned Program is
// validated and bit-identical to the one recorded.
func Decode(line []byte) (Entry, error) {
	// Version-gate on a minimal probe first: a future version may have
	// reshaped the program payload, and the error for that must name
	// the version mismatch, not a JSON shape mismatch.
	var probe struct {
		V      int    `json:"v"`
		Format string `json:"format"`
	}
	if err := json.Unmarshal(line, &probe); err != nil {
		return Entry{}, fmt.Errorf("trace: malformed entry: %w", err)
	}
	if probe.Format != formatName {
		return Entry{}, fmt.Errorf("trace: not a %s entry (format %q)", formatName, probe.Format)
	}
	if probe.V != FormatV {
		return Entry{}, fmt.Errorf("trace: format version %d is not supported by this build (it reads and writes v%d); re-record the trace with matching tools", probe.V, FormatV)
	}
	var we wireEntry
	if err := json.Unmarshal(line, &we); err != nil {
		return Entry{}, fmt.Errorf("trace: malformed entry: %w", err)
	}
	if got := progFingerprint(we.Program); got != we.ProgFP {
		return Entry{}, fmt.Errorf("trace: entry %q: program fingerprint %s does not match recorded %s (corrupt entry)", we.Name, got, we.ProgFP)
	}
	p, err := decodeProgram(we.Program)
	if err != nil {
		return Entry{}, err
	}
	return Entry{
		Meta:    Meta{Name: we.Name, SpecFP: we.SpecFP, Source: we.Source, Scale: we.Scale},
		Program: p,
	}, nil
}

// WriteFile writes entries to path (truncating), one line each.
func WriteFile(path string, entries ...Entry) error {
	var buf bytes.Buffer
	for _, e := range entries {
		line, err := Encode(e)
		if err != nil {
			return err
		}
		buf.Write(line)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// ReadFile loads every entry in a trace file, in file order. Torn-tail
// semantics match the results store: only a malformed or unterminated
// final line (the residue of a killed writer) is silently dropped;
// a malformed line anywhere else is corruption and an error.
func ReadFile(path string) ([]Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	var out []Entry
	br := bufio.NewReader(f)
	for lineNo := 1; ; lineNo++ {
		line, rerr := br.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			return nil, fmt.Errorf("trace: read %s: %w", path, rerr)
		}
		complete := rerr == nil // false on an EOF-terminated (torn) tail
		if len(line) > 0 && complete {
			e, derr := Decode(line)
			if derr != nil {
				return nil, fmt.Errorf("trace: %s:%d: %w", path, lineNo, derr)
			}
			out = append(out, e)
		}
		if rerr == io.EOF {
			return out, nil
		}
	}
}

// ReplayFile replays the last entry of a trace file — the common CLI
// case (wlgen -replay). Multi-entry files are logs; later entries are
// newer recordings.
func ReplayFile(path string) (Entry, error) {
	entries, err := ReadFile(path)
	if err != nil {
		return Entry{}, err
	}
	if len(entries) == 0 {
		return Entry{}, fmt.Errorf("trace: %s: no complete entries", path)
	}
	return entries[len(entries)-1], nil
}
