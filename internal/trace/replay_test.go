package trace

import (
	"path/filepath"
	"testing"

	"pmutrust/internal/machine"
	"pmutrust/internal/sampling"
	"pmutrust/internal/workloads"
)

// TestReplaySamplingDeterminism is the acceptance check for record/
// replay: a replayed program must produce a bit-identical sampling Run
// — every sample, every counter, under both engines — not just an
// equal-looking program. Run-level equality is what makes a trace a
// substitute for the generator in experiments.
func TestReplaySamplingDeterminism(t *testing.T) {
	spec, err := workloads.BuiltinPhasedSpec("PhasedAlt")
	if err != nil {
		t.Fatal(err)
	}
	orig, err := workloads.BuildPhased(spec, 0.05)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "alt.trace")
	if err := WriteFile(path, Record(orig, Meta{SpecFP: spec.Fingerprint(), Source: "spec:PhasedAlt", Scale: 0.05})); err != nil {
		t.Fatal(err)
	}
	replayed, err := ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}

	method, err := sampling.MethodByKey("precise+rand")
	if err != nil {
		t.Fatal(err)
	}
	opt := sampling.Options{
		PeriodBase: 2000,
		Seed:       7,
		Engine:     sampling.EngineBoth, // differential: fast vs reference must already agree
	}
	mach := machine.IvyBridge()
	runOrig, err := sampling.Collect(orig, mach, method, opt)
	if err != nil {
		t.Fatal(err)
	}
	runReplay, err := sampling.Collect(replayed.Program, mach, method, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := sampling.DiffRuns(runOrig, runReplay); err != nil {
		t.Fatalf("replayed program diverged from the original under sampling: %v", err)
	}
}
