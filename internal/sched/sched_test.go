package sched_test

import (
	"strconv"
	"strings"
	"testing"

	"pmutrust/internal/machine"
	"pmutrust/internal/pmu"
	"pmutrust/internal/program"
	"pmutrust/internal/sampling"
	"pmutrust/internal/sched"
	"pmutrust/internal/workloads"
)

// tenantProgs builds n distinct tenant programs from the kernel workload
// set at the test scale.
func tenantProgs(t *testing.T, n int, scale float64) []*program.Program {
	t.Helper()
	specs := workloads.Kernels()
	progs := make([]*program.Program, n)
	for i := range progs {
		progs[i] = specs[i%len(specs)].Build(scale)
	}
	return progs
}

// TestContextSwitchCosts pins the per-machine context-switch save/restore
// cost and the kernel-leak accounting derived from it: the costs follow
// the dispatch-width ordering of the platforms, and every switch leaks
// cost/8 kernel instructions into the switched-in tenant's counters.
func TestContextSwitchCosts(t *testing.T) {
	want := map[string]uint64{
		"MagnyCours": 1800,
		"Westmere":   1500,
		"IvyBridge":  1350,
		"FutureGen":  1350, // inherits the Ivy Bridge core
	}
	for _, mach := range machine.AllExtended() {
		if got := mach.CtxSwitchCostCycles; got != want[mach.Name] {
			t.Errorf("%s: CtxSwitchCostCycles = %d, want %d", mach.Name, got, want[mach.Name])
		}
	}

	// The leak accounting on a real run: total leaked instructions are
	// exactly switches × (cost/8), for both the machine default and an
	// explicit override.
	progs := tenantProgs(t, 2, 0.25)
	classic := mustMethod(t, "classic")
	for _, switchCost := range []uint64{0, 4000} {
		mach := machine.Westmere()
		runs, err := sched.Collect(progs, mach, classic, sched.Options{
			Options: sampling.Options{
				PeriodBase:            1000,
				Seed:                  42,
				SchedSwitchCostCycles: switchCost,
			},
		})
		if err != nil {
			t.Fatalf("switchCost %d: %v", switchCost, err)
		}
		effCost := switchCost
		if effCost == 0 {
			effCost = mach.CtxSwitchCostCycles
		}
		for i, run := range runs {
			s := run.Sched
			if s == nil {
				t.Fatalf("tenant %d: nil Sched stats", i)
			}
			if s.Switches == 0 {
				t.Errorf("tenant %d: no context switches recorded", i)
			}
			if wantLeak := s.Switches * (effCost / 8); s.KernelLeakInstrs != wantLeak {
				t.Errorf("tenant %d switchCost %d: KernelLeakInstrs = %d, want %d (switches %d)",
					i, switchCost, s.KernelLeakInstrs, wantLeak, s.Switches)
			}
		}
	}
}

// TestKernelEventUnits pins the kernel switch-path event mix the leak
// model applies — per 16 instructions: 16 inst, 20 uops, 3 taken
// branches, 4 conditional branches, 1 mispredict, 5 loads, 4 stores,
// 1 call, 1 ret, 0 FP.
func TestKernelEventUnits(t *testing.T) {
	for _, tc := range []struct {
		e    pmu.Event
		want uint64
	}{
		{pmu.EvInstRetired, 160},
		{pmu.EvUopsRetired, 200},
		{pmu.EvBrTaken, 30},
		{pmu.EvCondBr, 40},
		{pmu.EvBrMispred, 10},
		{pmu.EvLoad, 50},
		{pmu.EvStore, 40},
		{pmu.EvCall, 10},
		{pmu.EvRet, 10},
		{pmu.EvFPOp, 0},
	} {
		if got := pmu.KernelEventUnits(tc.e, 160); got != tc.want {
			t.Errorf("KernelEventUnits(%s, 160) = %d, want %d", tc.e, got, tc.want)
		}
	}
}

func mustMethod(t *testing.T, key string) sampling.Method {
	t.Helper()
	m, err := sampling.MethodByKey(key)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSingleTenantMatchesCollect: with one tenant and no migration the
// scheduler must be invisible — the Run is bit-identical to an
// unscheduled sampling.Collect, with no Sched stats attached. This is
// the zero-noise baseline the tenant experiment tables anchor on.
func TestSingleTenantMatchesCollect(t *testing.T) {
	p := workloads.MustBuild("G4Box", 0.25)
	opt := sampling.Options{PeriodBase: 1000, Seed: 42}
	for _, mach := range machine.All() {
		for _, m := range sampling.Registry() {
			if _, ok := sampling.Resolve(m, mach); !ok {
				continue
			}
			base, err := sampling.Collect(p, mach, m, opt)
			if err != nil {
				t.Fatalf("%s/%s baseline: %v", mach.Name, m.Key, err)
			}
			runs, err := sched.Collect([]*program.Program{p}, mach, m, sched.Options{Options: opt})
			if err != nil {
				t.Fatalf("%s/%s sched: %v", mach.Name, m.Key, err)
			}
			if len(runs) != 1 {
				t.Fatalf("%s/%s: %d runs for one tenant", mach.Name, m.Key, len(runs))
			}
			if runs[0].Sched != nil {
				t.Errorf("%s/%s: single-tenant run has Sched stats %+v", mach.Name, m.Key, runs[0].Sched)
			}
			if err := sampling.DiffRuns(base, runs[0]); err != nil {
				t.Errorf("%s/%s: single-tenant run differs from baseline: %v", mach.Name, m.Key, err)
			}
		}
	}
}

// TestCollectRejectsTenants pins the layering guards: sampling.Collect
// refuses multi-tenant options, and sched.Collect validates its own
// inputs.
func TestCollectRejectsTenants(t *testing.T) {
	p := workloads.MustBuild("G4Box", 0.25)
	mach := machine.IvyBridge()
	classic := mustMethod(t, "classic")

	_, err := sampling.Collect(p, mach, classic, sampling.Options{
		PeriodBase: 1000, Seed: 1, Tenants: 2,
	})
	if err == nil || !strings.Contains(err.Error(), "sched.Collect") {
		t.Errorf("sampling.Collect with Tenants=2: err = %v, want pointer to sched.Collect", err)
	}

	if _, err := sched.Collect(nil, mach, classic, sched.Options{}); err == nil {
		t.Error("sched.Collect with no programs: no error")
	}
	_, err = sched.Collect([]*program.Program{p, p}, mach, classic, sched.Options{
		Options: sampling.Options{PeriodBase: 1000, Tenants: 4},
	})
	if err == nil {
		t.Error("sched.Collect with Tenants=4 but 2 programs: no error")
	}
	_, err = sched.Collect([]*program.Program{p, p}, mach, classic, sched.Options{
		Options: sampling.Options{PeriodBase: 1000, SchedTimesliceCycles: 1},
	})
	if err == nil {
		t.Error("sched.Collect with a 1-cycle period for 2 tenants: no error")
	}
}

// TestSchedStatsAccounting checks the noise bookkeeping on a two-tenant
// run: switch counts, drained-capture/foreign-sample conservation, and
// the tenant indexing of the stats.
func TestSchedStatsAccounting(t *testing.T) {
	progs := tenantProgs(t, 2, 0.25)
	// Classic on Magny-Cours: 120-cycle skid keeps PMIs in flight long
	// enough that short slices regularly catch one.
	mach := machine.MagnyCours()
	runs, err := sched.Collect(progs, mach, mustMethod(t, "classic"), sched.Options{
		Options: sampling.Options{
			PeriodBase:           200,
			Seed:                 7,
			SchedTimesliceCycles: 2000,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var drained, foreign uint64
	for i, run := range runs {
		s := run.Sched
		if s == nil {
			t.Fatalf("tenant %d: nil Sched", i)
		}
		if s.Tenants != 2 || s.Tenant != i {
			t.Errorf("tenant %d: stats indexed as %d/%d", i, s.Tenant, s.Tenants)
		}
		if s.Switches == 0 {
			t.Errorf("tenant %d: no switches", i)
		}
		drained += s.DrainedInFlight
		foreign += s.ForeignSamples
		// Samples must stay Seq-sorted after the foreign merge.
		for j := 1; j < len(run.Samples); j++ {
			if run.Samples[j].Seq < run.Samples[j-1].Seq {
				t.Fatalf("tenant %d: samples out of Seq order at %d", i, j)
			}
		}
	}
	if drained == 0 {
		t.Error("no drained in-flight captures on a skid-heavy config; cross-tenant skid model inert")
	}
	if foreign == 0 {
		t.Error("no foreign samples delivered")
	}
	if foreign > drained {
		t.Errorf("foreign samples (%d) exceed drained captures (%d)", foreign, drained)
	}
}

// TestPDIRImmuneToDrain: PDIR never holds pending capture state, so
// preemption can never drain a capture from it (Table 3's distribution
// guarantee survives scheduling).
func TestPDIRImmuneToDrain(t *testing.T) {
	progs := tenantProgs(t, 4, 0.25)
	runs, err := sched.Collect(progs, machine.IvyBridge(), mustMethod(t, "pdir+ipfix"), sched.Options{
		Options: sampling.Options{PeriodBase: 200, Seed: 7, SchedTimesliceCycles: 2000},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, run := range runs {
		if run.Sched.DrainedInFlight != 0 || run.Sched.ForeignSamples != 0 {
			t.Errorf("tenant %d: pdir drained %d / foreign %d, want 0/0",
				i, run.Sched.DrainedInFlight, run.Sched.ForeignSamples)
		}
	}
}

// TestMigration: tenants rotated across all three paper machines at every
// switch must count one migration per switch and stay engine-identical.
func TestMigration(t *testing.T) {
	progs := tenantProgs(t, 2, 0.25)
	runs, err := sched.Collect(progs, machine.IvyBridge(), mustMethod(t, "classic"), sched.Options{
		Options: sampling.Options{
			PeriodBase: 1000,
			Seed:       42,
			Engine:     sampling.EngineBoth,
		},
		Migrate: machine.All(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, run := range runs {
		if run.Sched.Migrations != run.Sched.Switches {
			t.Errorf("tenant %d: %d migrations for %d switches",
				i, run.Sched.Migrations, run.Sched.Switches)
		}
	}

	// Migration with a single tenant still schedules (no delegation).
	one, err := sched.Collect(progs[:1], machine.IvyBridge(), mustMethod(t, "classic"), sched.Options{
		Options: sampling.Options{PeriodBase: 1000, Seed: 42, Engine: sampling.EngineBoth},
		Migrate: machine.All(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if one[0].Sched == nil || one[0].Sched.Migrations == 0 {
		t.Error("single-tenant migration run did not migrate")
	}
	if one[0].Sched.ForeignSamples != 0 {
		t.Error("single tenant received foreign samples from itself")
	}
}

// TestMigrationMux: migration re-places multiplexed events on the target
// machine's counter budget mid-run, under both engines. Magny-Cours has
// no fixed counter while the Intel parts do, so rotating across all
// three exercises Repartition's budget changes in both directions.
func TestMigrationMux(t *testing.T) {
	progs := tenantProgs(t, 2, 0.25)
	events := []pmu.Event{
		pmu.EvInstRetired, pmu.EvBrTaken, pmu.EvLoad,
		pmu.EvStore, pmu.EvCondBr, pmu.EvUopsRetired,
	}
	runs, err := sched.Collect(progs, machine.Westmere(), mustMethod(t, "classic"), sched.Options{
		Options: sampling.Options{
			PeriodBase: 1000,
			Seed:       42,
			Engine:     sampling.EngineBoth,
			Events:     events,
		},
		Migrate: machine.All(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, run := range runs {
		if len(run.Counts) != len(events) {
			t.Errorf("tenant %d: %d counts for %d events", i, len(run.Counts), len(events))
		}
	}
}

// TestTenantDeterminism: repeated collections with identical inputs are
// bit-identical, run by run.
func TestTenantDeterminism(t *testing.T) {
	progs := tenantProgs(t, 4, 0.25)
	opt := sched.Options{
		Options: sampling.Options{PeriodBase: 500, Seed: 11},
	}
	a, err := sched.Collect(progs, machine.Westmere(), mustMethod(t, "precise"), opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sched.Collect(progs, machine.Westmere(), mustMethod(t, "precise"), opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if err := sampling.DiffRuns(a[i], b[i]); err != nil {
			t.Errorf("tenant %d: repeat run differs: %v", i, err)
		}
	}
}

// TestTenantGridBitIdentical is the scheduler's slice of the
// differential battery: every (tenant count × machine × method) cell
// must be bit-identical across the interpreter and the fast engine —
// scheduler deadlines are fast-path fallback points exactly like mux
// rotation deadlines. EngineBoth diffs internally (including foreign
// merges and SchedStats via DiffRuns), so success is the assertion.
func TestTenantGridBitIdentical(t *testing.T) {
	methods := append(sampling.Registry(), sampling.FreqMode())
	counts := []int{2, 4}
	if testing.Short() {
		counts = []int{2}
	}
	for _, n := range counts {
		n := n
		t.Run(tenantName(n), func(t *testing.T) {
			t.Parallel()
			progs := tenantProgs(t, n, 0.25)
			for _, mach := range machine.All() {
				for _, m := range methods {
					if _, ok := sampling.Resolve(m, mach); !ok {
						continue
					}
					_, err := sched.Collect(progs, mach, m, sched.Options{
						Options: sampling.Options{
							PeriodBase: 1000,
							Seed:       42,
							Engine:     sampling.EngineBoth,
						},
					})
					if err != nil {
						t.Errorf("n=%d %s/%s: %v", n, mach.Name, m.Key, err)
					}
				}
			}
		})
	}
}

// TestTenantFuzzPrograms extends the fuzz battery to scheduled runs:
// randomized tenant programs under EngineBoth, with short slices to
// maximize deadline/boundary interactions.
func TestTenantFuzzPrograms(t *testing.T) {
	n := uint64(25)
	if testing.Short() {
		n = 8
	}
	cfg := program.DefaultGenConfig()
	mach := machine.IvyBridge()
	methods := append(sampling.Registry(), sampling.FreqMode())
	for seed := uint64(0); seed < n; seed++ {
		progs := []*program.Program{
			program.Random(seed, cfg),
			program.Random(seed+1000, cfg),
		}
		for _, m := range methods {
			if _, ok := sampling.Resolve(m, mach); !ok {
				continue
			}
			_, err := sched.Collect(progs, mach, m, sched.Options{
				Options: sampling.Options{
					PeriodBase:           200,
					Seed:                 seed,
					Engine:               sampling.EngineBoth,
					SchedTimesliceCycles: 600,
				},
			})
			if err != nil {
				t.Fatalf("seed %d method %s: %v", seed, m.Key, err)
			}
		}
	}
}

func tenantName(n int) string {
	return "n" + strconv.Itoa(n)
}
