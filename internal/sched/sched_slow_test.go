//go:build slow

package sched_test

// Paper-scale multi-tenant engine equivalence (go test -tags slow): the
// tenant grid at the PaperScale regime (8x workloads, period base 4000),
// every cell self-checked bit-for-bit by EngineBoth — scheduler
// deadlines are fast-path fallback points exactly like mux rotation
// deadlines, so the fast engine must reproduce the interpreter's sample
// streams, foreign-sample merges and noise accounting at full scale.

import (
	"testing"

	"pmutrust/internal/machine"
	"pmutrust/internal/program"
	"pmutrust/internal/sampling"
	"pmutrust/internal/sched"
	"pmutrust/internal/workloads"
)

// buildTenants builds n paper-scale copies of one workload — the
// homogeneous tenancy the tenants experiment measures.
func buildTenants(spec workloads.Spec, n int) []*program.Program {
	progs := make([]*program.Program, n)
	for i := range progs {
		progs[i] = spec.Build(8)
	}
	return progs
}

// slowTenantMethods is the tenant-experiment method set: one
// representative per attribution family (imprecise EBS, precise EBS,
// PDIR, LBR-stack) — the families whose scheduling-noise behavior
// differs, without re-running near-identical precise variants.
func slowTenantMethods(t *testing.T) []sampling.Method {
	t.Helper()
	var ms []sampling.Method
	for _, key := range []string{"classic", "precise", "pdir+ipfix", "lbr"} {
		m, err := sampling.MethodByKey(key)
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
	}
	return ms
}

// TestTenantGridBitIdenticalPaperScale: the full tenant grid — paper
// kernels x machines x method families x tenant counts — at the paper
// regime under EngineBoth. Any engine divergence fails the cell with a
// sample-level diff.
func TestTenantGridBitIdenticalPaperScale(t *testing.T) {
	for _, spec := range workloads.Kernels() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			methods := slowTenantMethods(t)
			for _, mach := range machine.All() {
				for _, m := range methods {
					if _, ok := sampling.Resolve(m, mach); !ok {
						continue
					}
					for _, n := range []int{2, 8} {
						runs, err := sched.Collect(buildTenants(spec, n), mach, m, sched.Options{
							Options: sampling.Options{
								PeriodBase: 4000,
								Seed:       42,
								Engine:     sampling.EngineBoth,
							},
						})
						if err != nil {
							t.Errorf("%s/%s/%s n=%d: %v", spec.Name, mach.Name, m.Key, n, err)
							continue
						}
						if len(runs) != n {
							t.Errorf("%s/%s/%s n=%d: %d runs", spec.Name, mach.Name, m.Key, n, len(runs))
						}
					}
				}
			}
		})
	}
}

// TestTenantMigrationBitIdenticalPaperScale: cross-model migration at
// every context switch — the PMU repartitions and the skid model changes
// mid-run — must also stay bit-identical across engines at paper scale.
func TestTenantMigrationBitIdenticalPaperScale(t *testing.T) {
	for _, spec := range workloads.Kernels() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			for _, m := range slowTenantMethods(t) {
				runs, err := sched.Collect(buildTenants(spec, 4), machine.Westmere(), m, sched.Options{
					Options: sampling.Options{
						PeriodBase: 4000,
						Seed:       7,
						Engine:     sampling.EngineBoth,
					},
					Migrate: machine.All(),
				})
				if err != nil {
					t.Errorf("%s/%s: %v", spec.Name, m.Key, err)
					continue
				}
				for i, run := range runs {
					if run.Sched == nil || run.Sched.Migrations == 0 {
						t.Errorf("%s/%s tenant %d: never migrated (%+v)", spec.Name, m.Key, i, run.Sched)
					}
				}
			}
		})
	}
}
