// Package sched is the multi-tenant OS layer of the simulator: a
// timeslice scheduler that runs N simulated programs ("tenants") on one
// simulated core, with per-task PMU context save/restore layered on the
// virtualized counters of internal/pmu.
//
// The paper's trust argument assumes a mostly quiet machine; real perf
// deployments time-share the PMU across processes. The scheduler models
// the noise sources that sharing adds, each at its mechanistic cause:
//
//   - Context-switch counter leakage: perf restores a task's counters on
//     switch-in before the kernel switch path finishes retiring, so a
//     stretch of kernel instructions leaks into every tenant's counts
//     (PMU.InjectKernelEvents / Mux.InjectKernel). Overflows landing in
//     the kernel window sample kernel code and are lost to a user-space
//     profile.
//   - Cross-tenant skid: a preemption that catches an in-flight capture
//     (a PMI riding out its skid, an armed PEBS window, a displaced IBS
//     tag) drains it — the interrupt fires after the switch, against the
//     successor tenant, which receives a foreign sample attributed at its
//     resume IP. PDIR is immune: it never holds pending capture state.
//   - Migration: a tenant may be rotated across machine models at switch
//     points, repointing its PMI skid and re-placing its multiplexed
//     events on the target's counter budget (execution timing stays on
//     the home machine — a documented approximation).
//
// Each tenant executes on its own local clock; the round-robin global
// schedule enters only through the deterministic cross-tenant coupling
// (foreign-sample delivery). Scheduler deadlines are fast-path fallback
// points exactly like mux rotation deadlines — serviced at the first
// retirement whose cycle reaches them, before that retirement is counted
// — so every tenant run is bit-identical across the interpreter and
// every fast-engine variant.
//
// Import boundaries: sched sits above cpu, pmu, machine and sampling,
// and below experiments — it must never import internal/experiments.
package sched

import (
	"fmt"
	"strconv"

	"pmutrust/internal/cpu"
	"pmutrust/internal/isa"
	"pmutrust/internal/machine"
	"pmutrust/internal/pmu"
	"pmutrust/internal/program"
	"pmutrust/internal/sampling"
	"pmutrust/internal/stats"
	"pmutrust/internal/telemetry"
)

// DefaultPeriodCycles is the scheduler period in simulated cycles when
// Options.SchedTimesliceCycles is zero: each of N tenants runs
// PeriodCycles/N per round, CFS-style, so the context-switch rate grows
// with the tenant count while the period stays fixed — the behavior of a
// loaded CFS runqueue. Like pmu.DefaultMuxTimeslice it is scaled down
// with the workloads (a real sched_latency_ns of ~6ms is millions of
// cycles).
const DefaultPeriodCycles = 16000

// kernelInstrsPerSwitchCycle converts a context-switch cycle cost into
// leaked kernel instructions: the switch tail retires roughly one
// instruction per 8 cycles (cache-cold, serializing kernel code).
const kernelInstrsPerSwitchCycle = 8

// Options extends sampling.Options with the scheduler-only knobs.
type Options struct {
	sampling.Options
	// Migrate, when non-empty, rotates each tenant across these machine
	// models round-robin at every context switch: the PMI skid is
	// repointed and multiplexed events are re-placed on the target's
	// counter budget. Execution timing stays on the home machine.
	Migrate []machine.Machine
}

// mark records where a tenant resumed after one of its context switches:
// the first retirement of the new timeslice. Foreign samples from the
// predecessor tenant are attributed here.
type mark struct {
	IP    uint32
	Cycle uint64
	Seq   uint64
}

// task wraps a tenant's monitor chain (PMU, optionally behind a Mux) and
// services scheduler deadlines on its local clock. It implements
// cpu.FastMonitor with the same conservative-clock pattern as pmu.Mux:
// deadlines are serviced at the first retirement whose cycle reaches
// them, before that retirement is counted, and FastHeadroom never grants
// instructions that could reach the deadline.
type task struct {
	unit *pmu.PMU
	mux  *pmu.Mux        // nil without counting events
	mon  cpu.FastMonitor // mux when present, else unit

	slice        uint64
	kernelLeak   uint64 // leaked kernel instructions per switch-in
	maxCyc       uint64 // machine worst-case cycles per instruction
	nextDeadline uint64
	// estCycle is a conservative upper bound on the retirement cycle:
	// exact after every OnRetire, advanced by maxCyc per strided
	// instruction in BulkRetire. Only headroom grants read it.
	estCycle uint64

	migrate  []machine.Machine
	resolved sampling.Method
	migIdx   int

	marks  []mark
	drains []bool // drains[k]: service k caught an in-flight capture
	stats  sampling.SchedStats

	// tele is the tenant's telemetry counter block — the unit's own, so
	// the whole chain (task → mux → PMU) records into one block.
	tele *telemetry.EngineCounters
}

// service handles one scheduler deadline at retirement ev: the tenant is
// switched out and back in (its intervening descheduled time does not
// advance its local clock — tenants run on local clocks, see the package
// comment). Order matters and is part of the bit-identical contract:
// drain in-flight captures, leak the switch-in kernel window, apply any
// migration, then mark the resume point.
func (t *task) service(ev cpu.RetireEvent) {
	drained := t.unit.Preempt()
	t.drains = append(t.drains, drained)
	if drained {
		t.stats.DrainedInFlight++
	}

	drops := t.unit.InjectKernelEvents(t.kernelLeak)
	t.stats.KernelLeakInstrs += t.kernelLeak
	t.stats.KernelSamplesLost += drops
	if t.mux != nil {
		t.mux.InjectKernel(t.kernelLeak)
	}

	if len(t.migrate) > 0 {
		tgt := t.migrate[t.migIdx%len(t.migrate)]
		t.migIdx++
		t.unit.SetSkidCycles(tgt.SkidCycles)
		if t.mux != nil {
			gen, fixed := sampling.CounterBudget(tgt, t.resolved)
			t.mux.Repartition(gen, fixed, ev.Cycle)
		}
		t.stats.Migrations++
	}

	t.marks = append(t.marks, mark{IP: ev.Idx, Cycle: ev.Cycle, Seq: ev.Seq})
	t.stats.Switches++
	t.nextDeadline = ev.Cycle + t.slice
}

// OnRetire implements cpu.Monitor: service a due deadline before the
// retirement is counted, then forward down the monitor chain.
func (t *task) OnRetire(ev cpu.RetireEvent) {
	if ev.Cycle >= t.nextDeadline {
		t.service(ev)
	}
	t.estCycle = ev.Cycle
	t.mon.OnRetire(ev)
}

// FastHeadroom implements cpu.FastMonitor: the lesser of the wrapped
// chain's grant and the deadline grant, which divides the remaining
// cycle distance by the worst-case per-instruction advance so no strided
// retirement can reach the deadline. A drifted conservative clock grants
// zero; the next OnRetire resynchronizes it.
// A zero deadline grant returns before consulting the wrapped chain, so
// exactly one layer attributes each fallback event (headroom queries are
// pure modulo telemetry); when the chain is the refuser it has already
// counted its reason.
func (t *task) FastHeadroom() uint64 {
	if t.estCycle >= t.nextDeadline {
		t.tele.Fallbacks[telemetry.FallbackSchedDeadline]++
		return 0
	}
	h := (t.nextDeadline - t.estCycle - 1) / t.maxCyc
	if h == 0 {
		t.tele.Fallbacks[telemetry.FallbackSchedDeadline]++
		return 0
	}
	if ih := t.mon.FastHeadroom(); ih < h {
		h = ih
	}
	return h
}

// WantBranches implements cpu.FastMonitor by delegation.
func (t *task) WantBranches() bool { return t.mon.WantBranches() }

// OnFastBranch implements cpu.FastMonitor by delegation.
func (t *task) OnFastBranch(from, to uint32, op isa.Op) {
	t.mon.OnFastBranch(from, to, op)
}

// BulkRetire implements cpu.FastMonitor: advance the conservative clock
// and forward the stride. The headroom grant guarantees no deadline lies
// inside it.
func (t *task) BulkRetire(c cpu.BulkCounts) {
	t.estCycle += c.Instrs * t.maxCyc
	t.mon.BulkRetire(c)
}

// BulkClasses implements cpu.BulkClassHinter: the task itself reads only
// Instrs (for the conservative clock); the rest is the wrapped chain's
// hint.
func (t *task) BulkClasses() cpu.BulkClass {
	cl := cpu.BulkInstrs
	if h, ok := t.mon.(cpu.BulkClassHinter); ok {
		return cl | h.BulkClasses()
	}
	return cpu.BulkAll
}

var _ cpu.FastMonitor = (*task)(nil)

// TenantSeed derives tenant t's period-randomization seed from the cell
// seed. Tenant 0 uses the cell seed unchanged — with one tenant and no
// migration the whole collection is bit-identical to sampling.Collect,
// the zero-noise baseline the experiment tables anchor on.
func TenantSeed(base uint64, t int) uint64 {
	if t == 0 {
		return base
	}
	return stats.DeriveSeed(base, "tenant", strconv.Itoa(t))
}

// Collect runs the tenant programs under the timeslice scheduler on mach,
// all sampled with method m, and returns one Run per tenant in program
// order. Each Run carries its scheduling-noise accounting in Run.Sched.
//
// With a single tenant and no migration the scheduler is pure overhead,
// so Collect delegates to sampling.Collect — the returned Run (nil
// Sched) is bit-identical to an unscheduled collection.
func Collect(progs []*program.Program, mach machine.Machine, m sampling.Method, opt Options) ([]*sampling.Run, error) {
	n := len(progs)
	if n == 0 {
		return nil, fmt.Errorf("sched: no tenant programs")
	}
	if opt.Tenants != 0 && opt.Tenants != n {
		return nil, fmt.Errorf("sched: Options.Tenants = %d but %d programs", opt.Tenants, n)
	}
	if n == 1 && len(opt.Migrate) == 0 {
		o := opt.Options
		o.Tenants = 0
		run, err := sampling.Collect(progs[0], mach, m, o)
		if err != nil {
			return nil, err
		}
		return []*sampling.Run{run}, nil
	}

	period := opt.SchedTimesliceCycles
	if period == 0 {
		period = DefaultPeriodCycles
	}
	slice := period / uint64(n)
	if slice == 0 {
		return nil, fmt.Errorf("sched: period %d cycles too short for %d tenants", period, n)
	}
	switchCost := opt.SchedSwitchCostCycles
	if switchCost == 0 {
		switchCost = mach.CtxSwitchCostCycles
	}
	kernelLeak := switchCost / kernelInstrsPerSwitchCycle

	runAll := func(eng cpu.Engine) ([]*sampling.Run, []*task, []error) {
		runs := make([]*sampling.Run, n)
		tasks := make([]*task, n)
		errs := make([]error, n)
		for i, p := range progs {
			runs[i], tasks[i], errs[i] = runTenant(p, mach, m, opt, i, slice, kernelLeak, eng)
			if runs[i] == nil {
				// Cell lowering failed (unsupported method, bad period):
				// identical for every tenant and engine, so fail fast.
				return runs, tasks, errs
			}
		}
		mergeForeign(runs, tasks)
		return runs, tasks, errs
	}

	finish := func(runs []*sampling.Run, errs []error) ([]*sampling.Run, error) {
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return runs, nil
	}

	switch opt.Engine {
	case sampling.EngineInterp:
		runs, _, errs := runAll(cpu.EngineInterp)
		return finish(runs, errs)
	case sampling.EngineBoth:
		ir, _, ierrs := runAll(cpu.EngineInterp)
		fr, _, ferrs := runAll(cpu.EngineFast)
		for i := range progs {
			if ir[i] == nil || fr[i] == nil {
				// Lowering errors carry no engine-dependent state.
				break
			}
			if err := sampling.DiffOutcome(ir[i], ierrs[i], fr[i], ferrs[i]); err != nil {
				return nil, fmt.Errorf("engine divergence on tenant %d %s/%s/%s: %w",
					i, progs[i].Name, mach.Name, m.Key, err)
			}
		}
		return finish(fr, ferrs)
	default:
		runs, _, errs := runAll(cpu.EngineFast)
		return finish(runs, errs)
	}
}

// runTenant executes one tenant under the scheduler. Like
// sampling.Collect's inner run, it returns the Run even when the cpu run
// errored, so EngineBoth can diff identically failing runs; a nil Run
// means cell lowering failed before execution.
func runTenant(p *program.Program, mach machine.Machine, m sampling.Method, opt Options,
	tenant int, slice, kernelLeak uint64, eng cpu.Engine) (*sampling.Run, *task, error) {

	topt := opt.Options
	topt.Seed = TenantSeed(opt.Seed, tenant)
	cell, err := sampling.PrepareCell(mach, m, topt)
	if err != nil {
		return nil, nil, err
	}

	unit := pmu.New(cell.PMU)
	tk := &task{
		unit:         unit,
		mon:          unit,
		slice:        slice,
		kernelLeak:   kernelLeak,
		maxCyc:       mach.CPU.MaxRetireCyclesPerInstr(),
		nextDeadline: slice,
		migrate:      opt.Migrate,
		resolved:     cell.Resolved,
		tele:         unit.EngineCounters(),
	}
	if cell.UseMux {
		tk.mux = pmu.NewMux(cell.Mux, unit)
		tk.mon = tk.mux
	}

	cpuRes, err := cpu.RunEngine(p, mach.CPU, tk, topt.MaxInstrs, eng)
	if sink := topt.Telemetry; sink != nil {
		sink.AddEngine(unit.EngineCounters())
		if eng == cpu.EngineInterp {
			sink.CountRun(telemetry.VariantInterp)
		} else {
			sink.CountRun(cpu.FastVariant(tk).TelemetryVariant())
		}
	}
	run := &sampling.Run{
		Machine:     mach,
		Requested:   m,
		Method:      cell.Resolved,
		Period:      cell.Period,
		Samples:     unit.Samples(),
		CPU:         cpuRes,
		Overflows:   unit.Overflows,
		DroppedPMIs: unit.DroppedPMIs,
	}
	if tk.mux != nil {
		run.Counts = tk.mux.Finish(cpuRes.Cycles)
		run.MuxRotations = tk.mux.Rotations
	}
	if err != nil {
		return run, tk, fmt.Errorf("sched: tenant %d run %s on %s: %w", tenant, p.Name, mach.Name, err)
	}
	return run, tk, nil
}

// mergeForeign delivers each tenant's drained in-flight captures as
// foreign samples into its round-robin successor's stream and fills in
// every Run's SchedStats. The coupling rule is deterministic and local:
// predecessor p's drain at its service k lands at successor
// u = (p+1) mod N's recorded resume mark for the same service index —
// the slice-start retirement where, in the interleaved global schedule,
// the late interrupt would fire (the service-index alignment is a
// one-slice approximation of that schedule; tenants are simulated on
// local clocks). The foreign sample carries the mark's IP/cycle/seq, the
// predecessor's nominal period, and no LBR snapshot (the facility was
// reset by the switch; profile builders skip short-LBR samples).
func mergeForeign(runs []*sampling.Run, tasks []*task) {
	n := len(runs)
	for u := 0; u < n; u++ {
		p := (u - 1 + n) % n
		if p == u {
			continue // single tenant (migration-only): no cross-tenant skid
		}
		var foreign []pmu.Sample
		for k, drained := range tasks[p].drains {
			if !drained || k >= len(tasks[u].marks) {
				continue
			}
			mk := tasks[u].marks[k]
			foreign = append(foreign, pmu.Sample{
				IP:        mk.IP,
				TriggerIP: mk.IP,
				Cycle:     mk.Cycle,
				Seq:       mk.Seq,
				Period:    runs[p].Period,
			})
		}
		tasks[u].stats.ForeignSamples = uint64(len(foreign))
		if len(foreign) > 0 {
			runs[u].Samples = mergeBySeq(runs[u].Samples, foreign)
		}
	}
	for t, tk := range tasks {
		s := tk.stats
		s.Tenants = n
		s.Tenant = t
		runs[t].Sched = &s
	}
}

// mergeBySeq merges two Seq-sorted sample streams, foreign samples
// ordered before own samples with equal or later Seq (the interrupt
// fires before the marked retirement's own overflow could).
func mergeBySeq(own, foreign []pmu.Sample) []pmu.Sample {
	out := make([]pmu.Sample, 0, len(own)+len(foreign))
	i, j := 0, 0
	for i < len(own) && j < len(foreign) {
		if foreign[j].Seq <= own[i].Seq {
			out = append(out, foreign[j])
			j++
		} else {
			out = append(out, own[i])
			i++
		}
	}
	out = append(out, own[i:]...)
	out = append(out, foreign[j:]...)
	return out
}
