package machine

import "testing"

func TestAllMachines(t *testing.T) {
	ms := All()
	if len(ms) != 3 {
		t.Fatalf("machines = %d", len(ms))
	}
	names := []string{"MagnyCours", "Westmere", "IvyBridge"}
	for i, want := range names {
		if ms[i].Name != want {
			t.Errorf("machine %d = %s, want %s", i, ms[i].Name, want)
		}
		if ms[i].String() == "" {
			t.Error("empty machine string")
		}
		if ms[i].CPU.DispatchWidth <= 0 || ms[i].CPU.RetireWidth <= 0 {
			t.Errorf("%s has no core widths", want)
		}
		if ms[i].SkidCycles == 0 {
			t.Errorf("%s has zero skid", want)
		}
	}
}

func TestPaperFeatureMatrix(t *testing.T) {
	amd := MagnyCours()
	if amd.Vendor != AMD {
		t.Error("MagnyCours vendor")
	}
	if amd.HasLBR || amd.HasPEBS || amd.HasPDIR || amd.HasFixedCounter {
		t.Error("MagnyCours must have no LBR/PEBS/PDIR/fixed counter (§4.2)")
	}
	if !amd.HasIBS || !amd.HasHW4LSBRandom || amd.HasSWPeriodRandom {
		t.Error("MagnyCours IBS/randomization flags wrong")
	}

	wsm := Westmere()
	if wsm.Vendor != Intel || !wsm.HasPEBS || !wsm.HasLBR || !wsm.HasFixedCounter {
		t.Error("Westmere base features wrong")
	}
	if wsm.HasPDIR {
		t.Error("Westmere must not have PDIR (PREC_DIST arrives with Ivy Bridge)")
	}
	if wsm.LBRDepth != 16 {
		t.Errorf("Westmere LBR depth = %d", wsm.LBRDepth)
	}

	ivb := IvyBridge()
	if !ivb.HasPDIR || !ivb.HasPEBS || !ivb.HasLBR || !ivb.HasFixedCounter {
		t.Error("IvyBridge features wrong")
	}
	if ivb.HasIBS {
		t.Error("IvyBridge has IBS")
	}
}

func TestSkidOrdering(t *testing.T) {
	// The AMD skid is the largest, Ivy Bridge the smallest — the paper's
	// platform ranking for imprecise sampling quality.
	if !(MagnyCours().SkidCycles > Westmere().SkidCycles) {
		t.Error("AMD skid not largest")
	}
	if !(Westmere().SkidCycles > IvyBridge().SkidCycles) {
		t.Error("Westmere skid not above IvyBridge")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"MagnyCours", "Westmere", "IvyBridge"} {
		m, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%s): %v", name, err)
		}
		if m.Name != name {
			t.Errorf("ByName(%s) returned %s", name, m.Name)
		}
	}
	if _, err := ByName("Skylake"); err == nil {
		t.Error("ByName(Skylake) did not fail")
	}
}

func TestVendorString(t *testing.T) {
	if AMD.String() != "AMD" || Intel.String() != "Intel" {
		t.Error("vendor names")
	}
	if Vendor(9).String() != "unknown" {
		t.Error("invalid vendor name")
	}
}
