package machine

import "testing"

func TestAllMachines(t *testing.T) {
	ms := All()
	if len(ms) != 3 {
		t.Fatalf("machines = %d", len(ms))
	}
	names := []string{"MagnyCours", "Westmere", "IvyBridge"}
	for i, want := range names {
		if ms[i].Name != want {
			t.Errorf("machine %d = %s, want %s", i, ms[i].Name, want)
		}
		if ms[i].String() == "" {
			t.Error("empty machine string")
		}
		if ms[i].CPU.DispatchWidth <= 0 || ms[i].CPU.RetireWidth <= 0 {
			t.Errorf("%s has no core widths", want)
		}
		if ms[i].SkidCycles == 0 {
			t.Errorf("%s has zero skid", want)
		}
	}
}

// TestPaperFeatureMatrix is the table-driven feature-invariant gate: each
// machine's counter budget, fixed-counter rule, precise mechanisms, LBR
// facility and period-randomization capabilities must match the paper's
// §4.1-4.2 platform descriptions, so edits to this package (the counter
// multiplexer reads the budgets) cannot drift the evaluation platforms
// silently.
func TestPaperFeatureMatrix(t *testing.T) {
	cases := []struct {
		make   func() Machine
		vendor Vendor

		genCounters  int
		fixedCounter bool

		pebs, pdir, ibs bool

		lbr      bool
		lbrDepth int

		swRandom, hw4lsb bool
	}{
		{
			// §4.2: no LBR, no fixed counter, IBS as the only precise
			// mechanism, no software period randomization in the driver,
			// 4 per-core general counters (fam10h).
			make: MagnyCours, vendor: AMD,
			genCounters: 4, fixedCounter: false,
			pebs: false, pdir: false, ibs: true,
			lbr: false, lbrDepth: 0,
			swRandom: false, hw4lsb: true,
		},
		{
			// §4.1-4.2: fixed counter, PEBS but no PDIR (PREC_DIST arrives
			// with Ivy Bridge), 16-deep LBR, 4 programmable counters.
			make: Westmere, vendor: Intel,
			genCounters: 4, fixedCounter: true,
			pebs: true, pdir: false, ibs: false,
			lbr: true, lbrDepth: 16,
			swRandom: true, hw4lsb: false,
		},
		{
			// §4.1-4.2: fixed counter, PEBS and PDIR, 16-deep LBR,
			// 4 programmable counters.
			make: IvyBridge, vendor: Intel,
			genCounters: 4, fixedCounter: true,
			pebs: true, pdir: true, ibs: false,
			lbr: true, lbrDepth: 16,
			swRandom: true, hw4lsb: false,
		},
	}
	for _, tc := range cases {
		m := tc.make()
		t.Run(m.Name, func(t *testing.T) {
			if m.Vendor != tc.vendor {
				t.Errorf("vendor = %s, want %s", m.Vendor, tc.vendor)
			}
			if m.NumGenCounters != tc.genCounters {
				t.Errorf("general counters = %d, want %d", m.NumGenCounters, tc.genCounters)
			}
			if m.HasFixedCounter != tc.fixedCounter {
				t.Errorf("fixed counter = %v, want %v", m.HasFixedCounter, tc.fixedCounter)
			}
			if m.HasPEBS != tc.pebs {
				t.Errorf("PEBS = %v, want %v", m.HasPEBS, tc.pebs)
			}
			if m.HasPDIR != tc.pdir {
				t.Errorf("PDIR = %v, want %v", m.HasPDIR, tc.pdir)
			}
			if m.HasIBS != tc.ibs {
				t.Errorf("IBS = %v, want %v", m.HasIBS, tc.ibs)
			}
			if m.HasLBR != tc.lbr || m.LBRDepth != tc.lbrDepth {
				t.Errorf("LBR = %v depth %d, want %v depth %d",
					m.HasLBR, m.LBRDepth, tc.lbr, tc.lbrDepth)
			}
			if m.HasSWPeriodRandom != tc.swRandom {
				t.Errorf("software randomization = %v, want %v", m.HasSWPeriodRandom, tc.swRandom)
			}
			if m.HasHW4LSBRandom != tc.hw4lsb {
				t.Errorf("HW 4-LSB randomization = %v, want %v", m.HasHW4LSBRandom, tc.hw4lsb)
			}
			if m.HasHWIPFix {
				t.Error("a 2015 evaluation platform claims the §6.2 hardware IP fix")
			}
			// The multiplexer requires a nonzero physical budget, and the
			// PMI/LBR cost constants feed the overhead experiment.
			if m.NumGenCounters <= 0 {
				t.Error("no general counters to multiplex")
			}
			if m.PMICostCycles == 0 || m.LBRReadCostCycles == 0 {
				t.Error("zero collection-cost constants")
			}
		})
	}
	// FutureGen is IvyBridge plus the §6.2 recommendations; its counter
	// budget must not drift from its base machine.
	fg, ivb := FutureGen(), IvyBridge()
	if fg.NumGenCounters != ivb.NumGenCounters || fg.HasFixedCounter != ivb.HasFixedCounter {
		t.Error("FutureGen counter budget drifted from IvyBridge")
	}
	if !fg.HasHWIPFix || fg.LBRDepth != 32 {
		t.Error("FutureGen §6.2 features wrong")
	}
}

func TestSkidOrdering(t *testing.T) {
	// The AMD skid is the largest, Ivy Bridge the smallest — the paper's
	// platform ranking for imprecise sampling quality.
	if !(MagnyCours().SkidCycles > Westmere().SkidCycles) {
		t.Error("AMD skid not largest")
	}
	if !(Westmere().SkidCycles > IvyBridge().SkidCycles) {
		t.Error("Westmere skid not above IvyBridge")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"MagnyCours", "Westmere", "IvyBridge"} {
		m, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%s): %v", name, err)
		}
		if m.Name != name {
			t.Errorf("ByName(%s) returned %s", name, m.Name)
		}
	}
	if _, err := ByName("Skylake"); err == nil {
		t.Error("ByName(Skylake) did not fail")
	}
}

func TestVendorString(t *testing.T) {
	if AMD.String() != "AMD" || Intel.String() != "Intel" {
		t.Error("vendor names")
	}
	if Vendor(9).String() != "unknown" {
		t.Error("invalid vendor name")
	}
}
