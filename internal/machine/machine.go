// Package machine defines the three evaluation platforms of the paper as
// simulator configurations: AMD Magny-Cours (Opteron 6164 HE), Intel
// Westmere (Xeon X5650) and Intel Ivy Bridge (Xeon E3-1265L).
//
// A Machine is a bag of feature flags and magnitudes consumed by the
// sampling engine (internal/sampling): which precise mechanisms exist,
// whether there is an LBR facility and how deep it is, and how large the
// PMI skid is. The CPU core parameters differ slightly per machine to give
// each platform its own timing texture, mirroring §4.1-4.2 of the paper.
package machine

import (
	"fmt"

	"pmutrust/internal/cpu"
)

// Vendor distinguishes the two PMU families modelled.
type Vendor uint8

const (
	// AMD is the Magny-Cours family (IBS, no LBR, no fixed counter).
	AMD Vendor = iota
	// Intel is the Core family (PEBS, LBR, fixed counters, and on Ivy
	// Bridge the PDIR event).
	Intel
)

// String returns the vendor name.
func (v Vendor) String() string {
	switch v {
	case AMD:
		return "AMD"
	case Intel:
		return "Intel"
	default:
		return "unknown"
	}
}

// Machine describes one evaluation platform.
type Machine struct {
	// Name is the short platform name used in result tables
	// ("MagnyCours", "Westmere", "IvyBridge").
	Name string
	// Model is the human-readable CPU model from the paper.
	Model string
	// Vendor is the PMU family.
	Vendor Vendor
	// CPU is the core timing configuration.
	CPU cpu.Config
	// HasFixedCounter reports whether an architectural fixed
	// instructions-retired counter exists (the classic method prefers it;
	// Magny-Cours lacks one, §4.2). The fixed counter can host only
	// EvInstRetired, and only in imprecise/counting mode — the
	// fixed-counter rule the counter multiplexer (internal/pmu Mux)
	// schedules around.
	HasFixedCounter bool
	// NumGenCounters is the number of general-purpose programmable
	// counters: 4 on all three evaluation platforms (AMD fam10h has four
	// per-core counters; Nehalem/Westmere and Ivy Bridge expose four
	// programmable counters per thread). Requested events beyond the
	// budget are time-multiplexed by internal/pmu's Mux.
	NumGenCounters int
	// HasPEBS reports whether the PEBS precise mechanism exists.
	HasPEBS bool
	// HasPDIR reports whether the precisely-distributed
	// INST_RETIRED.PREC_DIST event exists (Ivy Bridge only).
	HasPDIR bool
	// HasIBS reports whether AMD Instruction Based Sampling exists.
	HasIBS bool
	// HasLBR reports whether a Last Branch Record facility exists.
	HasLBR bool
	// LBRDepth is the number of LBR entries (16 on both Intel parts).
	LBRDepth int
	// SkidCycles is the PMI delivery latency for imprecise sampling.
	SkidCycles uint64
	// HasSWPeriodRandom reports whether the perf build on this platform
	// can randomize periods in software (unavailable on the AMD driver at
	// the time of the paper, §4.2).
	HasSWPeriodRandom bool
	// HasHW4LSBRandom reports whether the hardware randomizes the 4 least
	// significant period bits (AMD IBS).
	HasHW4LSBRandom bool
	// HasHWIPFix reports whether the PMU implements the paper's §6.2
	// hardware recommendation: precise records carry the *triggering*
	// instruction's IP rather than IP+1, "removing the workaround burden
	// in drivers" and "avoiding collisions on LBRs". No 2015 machine has
	// it; the FutureGen model explores what it would buy.
	HasHWIPFix bool
	// PMICostCycles is the cost of taking one PMI and logging a plain
	// sample (interrupt entry, handler, buffer write). Bitzes & Nowak
	// [38] measure 2-3k cycles per PMI for perf-era kernels.
	PMICostCycles uint64
	// LBRReadCostCycles is the additional cost of reading one LBR entry
	// pair (two MSR reads) inside the handler.
	LBRReadCostCycles uint64
	// CtxSwitchCostCycles is the kernel-path cost of one context switch
	// with per-task PMU state save/restore: the scheduler switch itself
	// plus perf's counter save on switch-out and reprogram/restore on
	// switch-in (a handful of MSR writes per counter). The multi-tenant
	// scheduler (internal/sched) turns this into counter leakage — the
	// restored counters run while the tail of the switch path retires
	// kernel instructions. Wider cores drain and refill faster, so the
	// cost follows the dispatch-width ordering of the three platforms.
	CtxSwitchCostCycles uint64
}

// defaultPMICost and defaultLBRReadCost apply to all three machines; the
// numbers follow the overhead study in [38].
const (
	defaultPMICost     = 2600
	defaultLBRReadCost = 70
)

// String implements fmt.Stringer.
func (m Machine) String() string {
	return fmt.Sprintf("%s (%s %s)", m.Name, m.Vendor, m.Model)
}

// MagnyCours returns the AMD Opteron 6164 HE ("Magny-Cours") model:
// no LBR, no fixed counter, imprecise RETIRED_INSTRUCTIONS with a large
// skid, and IBS as the only precise mechanism (uop-based). Hardware
// randomizes the 4 LSBs of the IBS period.
func MagnyCours() Machine {
	return Machine{
		Name:   "MagnyCours",
		Model:  "Opteron 6164 HE",
		Vendor: AMD,
		CPU: cpu.Config{
			DispatchWidth:     3,
			RetireWidth:       3,
			MispredictPenalty: 12,
			TakenBranchBubble: 1,
		},
		HasFixedCounter:     false,
		NumGenCounters:      4,
		HasPEBS:             false,
		HasPDIR:             false,
		HasIBS:              true,
		HasLBR:              false,
		LBRDepth:            0,
		SkidCycles:          120,
		HasSWPeriodRandom:   false,
		HasHW4LSBRandom:     true,
		PMICostCycles:       defaultPMICost,
		LBRReadCostCycles:   defaultLBRReadCost,
		CtxSwitchCostCycles: 1800,
	}
}

// Westmere returns the Intel Xeon X5650 ("Westmere", 1st-gen Core i7)
// model: fixed counter, PEBS, 16-deep LBR, no PDIR.
func Westmere() Machine {
	return Machine{
		Name:   "Westmere",
		Model:  "Xeon X5650",
		Vendor: Intel,
		CPU: cpu.Config{
			DispatchWidth:     4,
			RetireWidth:       4,
			MispredictPenalty: 17,
			TakenBranchBubble: 1,
		},
		HasFixedCounter:     true,
		NumGenCounters:      4,
		HasPEBS:             true,
		HasPDIR:             false,
		HasIBS:              false,
		HasLBR:              true,
		LBRDepth:            16,
		SkidCycles:          60,
		HasSWPeriodRandom:   true,
		HasHW4LSBRandom:     false,
		PMICostCycles:       defaultPMICost,
		LBRReadCostCycles:   defaultLBRReadCost,
		CtxSwitchCostCycles: 1500,
	}
}

// IvyBridge returns the Intel Xeon E3-1265L ("Ivy Bridge", 3rd-gen Core)
// model: fixed counter, PEBS, PDIR, 16-deep LBR.
func IvyBridge() Machine {
	return Machine{
		Name:   "IvyBridge",
		Model:  "Xeon E3-1265L",
		Vendor: Intel,
		CPU: cpu.Config{
			DispatchWidth:     4,
			RetireWidth:       4,
			MispredictPenalty: 14,
			TakenBranchBubble: 1,
		},
		HasFixedCounter:     true,
		NumGenCounters:      4,
		HasPEBS:             true,
		HasPDIR:             true,
		HasIBS:              false,
		HasLBR:              true,
		LBRDepth:            16,
		SkidCycles:          45,
		HasSWPeriodRandom:   true,
		HasHW4LSBRandom:     false,
		PMICostCycles:       defaultPMICost,
		LBRReadCostCycles:   defaultLBRReadCost,
		CtxSwitchCostCycles: 1350,
	}
}

// FutureGen returns a hypothetical machine implementing the paper's §6.2
// hardware recommendations on an Ivy Bridge core: the precise-record IP+1
// is fixed in hardware (records carry the triggering IP), and the LBR is
// deepened to 32 entries (as Skylake later shipped). It is not part of
// the paper's evaluation; experiment A9 uses it to quantify the
// recommendations.
func FutureGen() Machine {
	m := IvyBridge()
	m.Name = "FutureGen"
	m.Model = "hypothetical (§6.2 recommendations)"
	m.HasHWIPFix = true
	m.LBRDepth = 32
	return m
}

// All returns the three paper machines in the paper's presentation order.
func All() []Machine {
	return []Machine{MagnyCours(), Westmere(), IvyBridge()}
}

// AllExtended returns the paper machines plus the §6.2 FutureGen model.
func AllExtended() []Machine {
	return append(All(), FutureGen())
}

// ByName returns the machine with the given name (including FutureGen),
// or an error.
func ByName(name string) (Machine, error) {
	for _, m := range AllExtended() {
		if m.Name == name {
			return m, nil
		}
	}
	return Machine{}, fmt.Errorf("machine: unknown machine %q", name)
}
