// Package storetest is the executable contract every results.Store
// backend must honor. A backend registers a Harness (how to open, reopen
// and injure its backing storage) and TestStore runs the shared suite:
// append durability across reopens, torn-tail tolerance, deterministic
// duplicate resolution, and concurrent appenders. internal/results runs
// it against both shipped backends (FileStore and DirStore); a new
// backend — an sqlite or HTTP store — starts by passing this suite.
package storetest

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"pmutrust/internal/results"
)

// Harness adapts one backend to the suite. Open and Reopen operate on
// the same backing storage for the lifetime of one subtest: the suite
// always Closes the current store before calling Reopen.
type Harness struct {
	// Open creates a fresh, empty store on new backing storage.
	Open func(t *testing.T) results.Store
	// Reopen opens the same backing storage again after a Close — the
	// crash/resume entry point.
	Reopen func(t *testing.T) results.Store
	// Tear, if non-nil, appends a torn (half-written, unterminated)
	// record to the backing storage, simulating a writer killed
	// mid-append. Backends without a byte-level backing may leave it nil
	// to skip the torn-tail subtest.
	Tear func(t *testing.T)
}

// Rec builds a distinct, fully-populated test record. Different tags
// address different cells; the same tag always rebuilds the identical
// record.
func Rec(tag string, err float64) results.Record {
	return results.Record{
		Identity: results.Identity{
			Workload: "W" + tag, Machine: "IvyBridge", Method: "lbr",
			Scale: "small", WorkloadScale: 1, PeriodBase: 2000, Seed: 42, Repeats: 1,
		},
		Err: err, PerRepeat: []float64{err}, Samples: 100, Supported: true,
	}
}

// TestStore runs the backend contract suite against h.
func TestStore(t *testing.T, h Harness) {
	t.Run("AppendDurability", func(t *testing.T) { testAppendDurability(t, h) })
	t.Run("TornTailTolerance", func(t *testing.T) { testTornTail(t, h) })
	t.Run("DuplicateDedupe", func(t *testing.T) { testDuplicateDedupe(t, h) })
	t.Run("ConcurrentAppenders", func(t *testing.T) { testConcurrentAppenders(t, h) })
}

// testAppendDurability: every Put survives Close + Reopen, with the
// payload intact, the key stamped, and Records() in canonical order.
func testAppendDurability(t *testing.T, h Harness) {
	st := h.Open(t)
	want := []results.Record{Rec("c", 0.3), Rec("a", 0.1), Rec("b", 0.2)}
	for _, rec := range want {
		if err := st.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Puts are visible before any reopen (the store is also the live
	// cache the sweep layer reads through).
	if st.Len() != len(want) {
		t.Fatalf("Len = %d before close, want %d", st.Len(), len(want))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re := h.Reopen(t)
	defer re.Close()
	if re.Len() != len(want) {
		t.Fatalf("Len = %d after reopen, want %d", re.Len(), len(want))
	}
	for _, rec := range want {
		got, ok := re.Get(rec.Identity.Key())
		if !ok {
			t.Fatalf("record %s missing after reopen", rec.Workload)
		}
		if got.Err != rec.Err || got.Samples != rec.Samples || !got.Supported {
			t.Errorf("reloaded record differs: got %+v want %+v", got, rec)
		}
		if got.V != results.SchemaV || got.Key != rec.Identity.Key() {
			t.Errorf("stamped fields wrong: v=%d key=%q", got.V, got.Key)
		}
	}
	recs := re.Records()
	for i := 1; i < len(recs); i++ {
		if recs[i-1].Workload > recs[i].Workload {
			t.Errorf("Records not in canonical order: %s before %s",
				recs[i-1].Workload, recs[i].Workload)
		}
	}
}

// testTornTail: a half-written final record (writer killed mid-append)
// costs exactly that record — earlier records survive, later appends
// land cleanly, and nothing else is disturbed.
func testTornTail(t *testing.T, h Harness) {
	if h.Tear == nil {
		t.Skip("backend has no byte-level backing to tear")
	}
	st := h.Open(t)
	if err := st.Put(Rec("a", 0.1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(Rec("b", 0.2)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	h.Tear(t)

	re := h.Reopen(t)
	if re.Len() != 2 {
		t.Fatalf("Len = %d after torn tail, want 2 (torn record dropped, others kept)", re.Len())
	}
	// Appending after recovery must land on a clean boundary: the new
	// record must not glue onto the torn fragment.
	if err := re.Put(Rec("c", 0.3)); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2 := h.Reopen(t)
	defer re2.Close()
	if re2.Len() != 3 {
		t.Fatalf("Len = %d after recovery+append+reopen, want 3", re2.Len())
	}
	if _, ok := re2.Get(Rec("c", 0.3).Identity.Key()); !ok {
		t.Error("post-recovery append lost")
	}
}

// testDuplicateDedupe: conflicting Puts of one key resolve to exactly
// one record, and the resolution follows the store-wide rule every
// backend must share — among all records with a key, the one whose
// canonical JSON encoding is lexicographically smallest wins. The rule
// is a pure function of the record set (not of Put order, file order or
// timing), so any two backends holding the same records agree on every
// winner; pinning the rule here, in the suite both shipped backends run,
// is the cross-backend agreement check.
func testDuplicateDedupe(t *testing.T, h Harness) {
	st := h.Open(t)
	a := Rec("dup", 0.125)
	b := Rec("dup", 0.5) // same identity, different payload
	if a.Identity.Key() != b.Identity.Key() {
		t.Fatal("test records must collide on key")
	}
	if err := st.Put(a); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(b); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d after duplicate puts, want 1", st.Len())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	var winners []results.Record
	for i := 0; i < 2; i++ {
		re := h.Reopen(t)
		if re.Len() != 1 {
			t.Fatalf("reopen %d: Len = %d, want 1", i, re.Len())
		}
		got, ok := re.Get(a.Identity.Key())
		if !ok {
			t.Fatalf("reopen %d: duplicate key missing", i)
		}
		winners = append(winners, got)
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(winners[0], winners[1]) {
		t.Errorf("dedupe not deterministic across reopens:\n%+v\n%+v", winners[0], winners[1])
	}
	// The winner must be the one the store-wide rule elects: smallest
	// canonical JSON encoding among the stamped candidates. Computing the
	// expectation here, outside any backend, is what keeps every backend
	// on the same rule.
	want := smallestEncoding(t, a, b)
	if !reflect.DeepEqual(winners[0], want) {
		t.Errorf("winner violates the store-wide duplicate rule:\n got %+v\nwant %+v", winners[0], want)
	}
}

// smallestEncoding stamps the candidates the way Put does and returns
// the one the store-wide duplicate rule elects.
func smallestEncoding(t *testing.T, recs ...results.Record) results.Record {
	t.Helper()
	var win results.Record
	var winEnc []byte
	for _, rec := range recs {
		rec.V = results.SchemaV
		if rec.Key == "" {
			rec.Key = rec.Identity.Key()
		}
		enc, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		if winEnc == nil || string(enc) < string(winEnc) {
			win, winEnc = rec, enc
		}
	}
	return win
}

// testConcurrentAppenders: racing Puts through one handle neither lose
// nor corrupt records. Run under -race this doubles as the data-race
// gate for the backend's append path.
func testConcurrentAppenders(t *testing.T, h Harness) {
	st := h.Open(t)
	const writers, per = 8, 16
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := st.Put(Rec(fmt.Sprintf("w%d-%d", w, i), 0.1)); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()
	if st.Len() != writers*per {
		t.Errorf("Len = %d after concurrent puts, want %d", st.Len(), writers*per)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re := h.Reopen(t)
	defer re.Close()
	if re.Len() != writers*per {
		t.Errorf("Len = %d after reopen, want %d (interleaved appends corrupted the log?)",
			re.Len(), writers*per)
	}
	// Spot-check payload integrity through a JSON round trip of one
	// record per writer.
	for w := 0; w < writers; w++ {
		rec := Rec(fmt.Sprintf("w%d-%d", w, per-1), 0.1)
		got, ok := re.Get(rec.Identity.Key())
		if !ok {
			t.Errorf("writer %d record missing", w)
			continue
		}
		gb, _ := json.Marshal(got.Identity)
		wb, _ := json.Marshal(rec.Identity)
		if string(gb) != string(wb) {
			t.Errorf("writer %d identity corrupted: %s != %s", w, gb, wb)
		}
	}
}
