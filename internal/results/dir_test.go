package results

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// dirRec builds a test record addressed by workload name.
func dirRec(workload string, err float64) Record {
	return Record{
		Identity: Identity{
			Workload: workload, Machine: "IvyBridge", Method: "lbr",
			Scale: "small", WorkloadScale: 1, PeriodBase: 2000, Seed: 42, Repeats: 1,
		},
		Err: err, PerRepeat: []float64{err}, Samples: 100, Supported: true,
	}
}

// writeShardFile writes records as JSONL lines under dir/name.jsonl.
func writeShardFile(t *testing.T, dir, name string, recs ...Record) {
	t.Helper()
	var b strings.Builder
	for _, rec := range recs {
		rec.V = SchemaV
		if rec.Key == "" {
			rec.Key = rec.Identity.Key()
		}
		line, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	if err := os.WriteFile(filepath.Join(dir, name+".jsonl"), []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestDirStoreMergeOnRead: records land in per-writer files and every
// reader sees the union.
func TestDirStoreMergeOnRead(t *testing.T) {
	dir := t.TempDir()
	w1, err := OpenDir(dir, "shard-0000.g1")
	if err != nil {
		t.Fatal(err)
	}
	w2, err := OpenDir(dir, "shard-0001.g1")
	if err != nil {
		t.Fatal(err)
	}
	if err := w1.Put(dirRec("A", 0.1)); err != nil {
		t.Fatal(err)
	}
	if err := w2.Put(dirRec("B", 0.2)); err != nil {
		t.Fatal(err)
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	merged, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != 2 {
		t.Fatalf("merged Len = %d, want 2", merged.Len())
	}
	for _, w := range []string{"A", "B"} {
		if _, ok := merged.Get(dirRec(w, 0).Identity.Key()); !ok {
			t.Errorf("record %s missing from merge", w)
		}
	}
	// A writer opening later sees earlier writers' records too — the
	// merge-on-read a resuming shard owner relies on to skip completed
	// cells.
	w3, err := OpenDir(dir, "shard-0000.g2")
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if w3.Len() != 2 {
		t.Errorf("new writer sees %d records, want 2", w3.Len())
	}
}

// TestDirStoreDedupeRulePinned pins the duplicate rule: among records
// sharing a key, the lexicographically smallest canonical JSON encoding
// wins — independent of which file holds which candidate. The same two
// conflicting payloads are written under swapped file names and the
// winner must not move.
func TestDirStoreDedupeRulePinned(t *testing.T) {
	lo := dirRec("Dup", 0.125) // "err":0.125 sorts before "err":0.5
	hi := dirRec("Dup", 0.5)
	key := lo.Identity.Key()

	for name, layout := range map[string]struct{ first, second Record }{
		"lo-in-first-file":  {lo, hi},
		"lo-in-second-file": {hi, lo},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			writeShardFile(t, dir, "shard-0000.g1", layout.first)
			writeShardFile(t, dir, "shard-0000.g2", layout.second)
			st, err := LoadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if st.Len() != 1 {
				t.Fatalf("Len = %d, want 1", st.Len())
			}
			got, ok := st.Get(key)
			if !ok {
				t.Fatal("duplicate key missing")
			}
			if got.Err != lo.Err {
				t.Errorf("winner Err = %v, want %v (smallest canonical encoding must win regardless of file order)",
					got.Err, lo.Err)
			}
		})
	}
}

// TestDirStorePutAppliesMergeRule: the live in-memory view applies the
// same rule as a reload, so a DirStore never disagrees with what LoadDir
// would see.
func TestDirStorePutAppliesMergeRule(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenDir(dir, "w1")
	if err != nil {
		t.Fatal(err)
	}
	lo := dirRec("Dup", 0.125)
	hi := dirRec("Dup", 0.5)
	// Put the winner first, then the loser: the view must keep the
	// winner even though the loser was put last.
	if err := st.Put(lo); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(hi); err != nil {
		t.Fatal(err)
	}
	if got, _ := st.Get(lo.Identity.Key()); got.Err != lo.Err {
		t.Errorf("live view Err = %v, want %v", got.Err, lo.Err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := re.Get(lo.Identity.Key()); got.Err != lo.Err {
		t.Errorf("reload Err = %v, want %v", got.Err, lo.Err)
	}
}

// TestDirStoreForeignTornTailTolerated: a torn tail in another writer's
// file (that writer may be alive, mid-append) is skipped on read and the
// file is left untouched.
func TestDirStoreForeignTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	writeShardFile(t, dir, "shard-0000.g1", dirRec("A", 0.1))
	foreign := filepath.Join(dir, "shard-0000.g1.jsonl")
	f, err := os.OpenFile(foreign, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":1,"key":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, err := os.Stat(foreign)
	if err != nil {
		t.Fatal(err)
	}

	st, err := OpenDir(dir, "shard-0000.g2")
	if err != nil {
		t.Fatalf("OpenDir with foreign torn tail: %v", err)
	}
	defer st.Close()
	if st.Len() != 1 {
		t.Errorf("Len = %d, want 1 (torn record dropped)", st.Len())
	}
	after, err := os.Stat(foreign)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size() {
		t.Errorf("foreign file size changed %d -> %d: foreign files must never be truncated",
			before.Size(), after.Size())
	}
}

// TestDirStoreInteriorCorruptionRejected: like FileStore, a malformed
// line that is not the final one is corruption, not tolerance.
func TestDirStoreInteriorCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	rec := dirRec("A", 0.1)
	rec.V = SchemaV
	rec.Key = rec.Identity.Key()
	line, _ := json.Marshal(rec)
	content := "not json at all\n" + string(line) + "\n"
	if err := os.WriteFile(filepath.Join(dir, "bad.jsonl"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir); err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Errorf("interior corruption not rejected: %v", err)
	}
}

// TestDirStoreIgnoresNonShardFiles: only *.jsonl files participate in
// the merge — lease files, plans and done markers live alongside.
func TestDirStoreIgnoresNonShardFiles(t *testing.T) {
	dir := t.TempDir()
	writeShardFile(t, dir, "shard-0000.g1", dirRec("A", 0.1))
	if err := os.WriteFile(filepath.Join(dir, "plan.json"), []byte("not a record"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "sub.jsonl"), 0o755); err != nil {
		t.Fatal(err)
	}
	st, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Errorf("Len = %d, want 1", st.Len())
	}
}

// TestOpenDirRequiresWriter pins the unique-writer precondition.
func TestOpenDirRequiresWriter(t *testing.T) {
	if _, err := OpenDir(t.TempDir(), ""); err == nil {
		t.Error("OpenDir with empty writer name not rejected")
	}
}
