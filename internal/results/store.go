package results

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// Store is the pluggable results backend the sweep layer measures into
// and the report layer renders from: a keyed set of Records addressed by
// their identity fingerprint. Two backends ship with the package — the
// append-only single-file JSONL FileStore and the sharded-directory
// DirStore distributed sweeps merge on read — and the contract both must
// honor (append durability, torn-tail tolerance, deterministic duplicate
// resolution, concurrent appenders) is executable as the
// internal/results/storetest suite.
type Store interface {
	// Put stores rec (stamping V and, if empty, Key from the identity),
	// appending it durably for file-backed stores. Safe for concurrent
	// use.
	Put(rec Record) error
	// Get returns the record stored under key.
	Get(key string) (Record, bool)
	// Len returns the number of distinct keys stored.
	Len() int
	// Records returns all records sorted by (workload, machine, method,
	// key) — a canonical order independent of backing-file order, so
	// renders from a store are deterministic however the sweep was
	// scheduled or resumed.
	Records() []Record
	// Path names the backing file or directory ("" for memory-only).
	Path() string
	// Close flushes and releases the append handle, if any. The store
	// stays readable.
	Close() error
}

// FileStore is a Store backed by a single append-only JSONL file. Puts
// append one line each straight to the file (the file is the log), so a
// sweep whose *process* is killed mid-run keeps every completed cell,
// and Open tolerates the torn final line such a kill can leave behind.
// Appends are not fsynced per Put (that would serialize the sweep on the
// disk); Close syncs, so only an OS crash or power loss between a Put
// and Close can lose records — and a resumed sweep simply re-measures
// those cells. A FileStore is safe for concurrent use — sweep workers
// Put from many goroutines.
//
// Duplicate keys resolve by the store-wide rule (see merge): the record
// with the lexicographically smallest canonical JSON encoding wins,
// independent of Put or line order. Re-putting an identical identity
// re-states the same value, so the rule is invisible in normal operation
// — it only pins which candidate survives when payloads genuinely
// conflict, and it pins the *same* winner a DirStore merge would elect.
type FileStore struct {
	mu   sync.Mutex
	path string
	f    *os.File // append handle; nil for a memory-only store
	recs map[string]Record
	// enc holds the canonical encoding of the winning record per key —
	// the comparison column of the duplicate rule.
	enc map[string][]byte
}

var _ Store = (*FileStore)(nil)

// NewMemory returns an unbacked store, for tests and one-shot renders.
func NewMemory() *FileStore {
	return &FileStore{recs: make(map[string]Record), enc: make(map[string][]byte)}
}

// merge applies the store-wide duplicate rule shared by every backend
// (and pinned by the storetest contract suite): among all records
// sharing a key, the one whose canonical JSON encoding (json.Marshal of
// the parsed, stamped record) is lexicographically smallest wins. The
// rule is a pure function of the record *set* — independent of file
// names, file order, line order and Put order — so a single-file store,
// a shard-directory merge-on-read and any future backend all elect the
// same winner from the same candidates. Measurements are pure functions
// of their content-addressed identity, so genuine conflicts only arise
// from corruption or version skew; the rule's job is to keep even those
// deterministic. recs is the backend's live view and enc its comparison
// column; the caller must hold the backend lock and pass a V-stamped,
// keyed record.
func merge(recs map[string]Record, enc map[string][]byte, rec Record) error {
	canon, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("results: marshal record: %w", err)
	}
	if old, ok := enc[rec.Key]; ok && bytes.Compare(old, canon) <= 0 {
		return nil
	}
	enc[rec.Key] = canon
	recs[rec.Key] = rec
	return nil
}

// Create truncates (or creates) path and returns an empty store writing
// to it.
func Create(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("results: create store: %w", err)
	}
	return &FileStore{path: path, f: f, recs: make(map[string]Record), enc: make(map[string][]byte)}, nil
}

// Open loads the records already present at path (creating the file if
// missing) and returns a store that appends to it — the resume entry
// point. If the file ends in a torn line (a writer was killed mid-append)
// the tail is truncated away so subsequent appends start on a clean line
// boundary; a malformed line elsewhere is an error, since silently
// dropping an interior record would make a resumed sweep re-measure — and
// re-append — cells the file already holds.
func Open(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("results: open store: %w", err)
	}
	s := &FileStore{path: path, f: f, recs: make(map[string]Record), enc: make(map[string][]byte)}
	good, err := scanRecords(path, f, func(_ []byte, rec Record) {
		merge(s.recs, s.enc, rec)
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	// Drop a torn tail, then position at the new end for appends.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("results: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("results: seek: %w", err)
	}
	return s, nil
}

// Load reads a store file read-only (no append handle). Renderers and
// the compare path use it; Put on a loaded store keeps records in memory
// only.
func Load(path string) (*FileStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("results: load store: %w", err)
	}
	defer f.Close()
	s := &FileStore{path: path, recs: make(map[string]Record), enc: make(map[string][]byte)}
	if _, err := scanRecords(path, f, func(_ []byte, rec Record) {
		merge(s.recs, s.enc, rec)
	}); err != nil {
		return nil, err
	}
	return s, nil
}

// scanRecords parses JSONL records from r, calling emit with each
// well-formed line and its parsed record, and returns the byte offset
// just past the last well-formed line. Only a malformed or truncated
// *final* line is tolerated (it is not emitted and not counted in the
// returned offset); anything malformed earlier is corruption. Both store
// backends read through this, so torn-tail semantics cannot drift
// between them.
func scanRecords(path string, r io.Reader, emit func(line []byte, rec Record)) (good int64, err error) {
	br := bufio.NewReader(r)
	var off int64
	for lineNo := 1; ; lineNo++ {
		line, rerr := br.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			// Only a clean end-of-file qualifies as a torn tail; a real
			// read error must propagate, or Open would truncate away
			// valid records past a transient I/O failure.
			return 0, fmt.Errorf("results: read store: %w", rerr)
		}
		complete := rerr == nil // false on EOF-terminated (torn) tail
		if len(line) > 0 {
			var rec Record
			if jerr := json.Unmarshal(line, &rec); jerr != nil {
				if complete {
					return 0, fmt.Errorf("results: %s:%d: malformed record: %v", path, lineNo, jerr)
				}
				return off, nil // torn tail: ignore, report clean offset
			}
			if rec.V != SchemaV {
				return 0, fmt.Errorf("results: %s:%d: schema v%d, want v%d", path, lineNo, rec.V, SchemaV)
			}
			if !complete {
				// A full JSON object without a trailing newline still
				// counts as torn: re-measure it on resume rather than
				// risk gluing the next append onto it.
				return off, nil
			}
			emit(line, rec)
			off += int64(len(line))
		}
		if rerr == io.EOF {
			return off, nil
		}
	}
}

// Put stores rec (stamping V and, if empty, Key from the identity) and,
// for file-backed stores, appends its JSONL line.
func (s *FileStore) Put(rec Record) error {
	rec.V = SchemaV
	if rec.Key == "" {
		rec.Key = rec.Identity.Key()
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("results: marshal record: %w", err)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f != nil {
		if _, err := s.f.Write(line); err != nil {
			return fmt.Errorf("results: append record: %w", err)
		}
	}
	return merge(s.recs, s.enc, rec)
}

// Get returns the record stored under key.
func (s *FileStore) Get(key string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.recs[key]
	return rec, ok
}

// Len returns the number of distinct keys stored.
func (s *FileStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Records returns all records in the canonical store order (see Store).
func (s *FileStore) Records() []Record {
	s.mu.Lock()
	out := make([]Record, 0, len(s.recs))
	for _, rec := range s.recs {
		out = append(out, rec)
	}
	s.mu.Unlock()
	sortRecords(out)
	return out
}

// sortRecords orders records by (workload, machine, method, key) — the
// canonical render order shared by every backend.
func sortRecords(out []Record) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Machine != b.Machine {
			return a.Machine < b.Machine
		}
		if a.Method != b.Method {
			return a.Method < b.Method
		}
		return a.Key < b.Key
	})
}

// Path returns the backing file path ("" for memory-only stores).
func (s *FileStore) Path() string { return s.path }

// Close fsyncs and releases the append handle, if any. The store stays
// readable.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	syncErr := s.f.Sync()
	err := s.f.Close()
	s.f = nil
	if err == nil {
		err = syncErr
	}
	return err
}
