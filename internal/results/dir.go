package results

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// DirStore is a Store backed by a directory of JSONL shard files, the
// backend of distributed sweeps: every writer appends to its own file
// (named after the writer, so two processes never interleave lines), and
// reads merge every "*.jsonl" file in the directory. A killed writer
// costs nothing but its in-flight record: its completed lines stay in
// its file and are visible to every later reader.
//
// # Duplicate resolution
//
// A retried shard can legitimately put the same cell into two files —
// the first owner was killed (or superseded) after measuring it, the
// second owner measured it again. Because measurements are pure
// functions of the content-addressed identity, such duplicates are
// byte-identical in practice; but the merge must still pin a rule that
// cannot depend on file enumeration order, or two readers of the same
// directory could disagree. The rule, applied uniformly on read and on
// Put:
//
//	among all records sharing a key, the one whose canonical JSON
//	encoding (json.Marshal of the parsed record) is lexicographically
//	smallest wins.
//
// The rule is a pure function of the record *set* — independent of file
// names, file order, and line order — so every reader of a shard
// directory resolves duplicates identically, which is what makes
// distributed renders byte-identical to single-process ones. FileStore
// applies the same store-wide rule (see merge), so moving records
// between backends can never flip a duplicate's winner.
//
// # Torn tails
//
// Loading tolerates a torn final line in every file — foreign files
// belong to writers that may still be alive mid-append, so they are
// never modified; the store's *own* append file (a crashed predecessor
// with the same writer name) is truncated back to the last clean line
// boundary before appending, exactly like FileStore Open.
type DirStore struct {
	mu   sync.Mutex
	dir  string
	path string   // own append file; "" for read-only merges
	f    *os.File // append handle; nil for read-only merges
	recs map[string]Record
	// enc holds the canonical encoding of the winning record per key —
	// the comparison column of the duplicate rule.
	enc map[string][]byte
}

var _ Store = (*DirStore)(nil)

// OpenDir merges the records of every *.jsonl file under dir (creating
// dir if missing) and returns a store appending to dir/<writer>.jsonl.
// writer must be unique among live writers of the directory — lines of a
// shared append file would interleave; distributed workers derive it
// from their (shard, lease generation) pair, which the lease protocol
// makes single-owner.
func OpenDir(dir, writer string) (*DirStore, error) {
	if writer == "" {
		return nil, fmt.Errorf("results: OpenDir needs a writer name")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("results: create store dir: %w", err)
	}
	s := &DirStore{
		dir:  dir,
		path: filepath.Join(dir, writer+".jsonl"),
		recs: make(map[string]Record),
		enc:  make(map[string][]byte),
	}
	if err := s.loadAll(); err != nil {
		return nil, err
	}
	// Open the own file read-write: a crashed predecessor with this
	// writer name may have left a torn tail that appends must not glue
	// onto.
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("results: open shard file: %w", err)
	}
	good, err := scanRecords(s.path, f, func([]byte, Record) {})
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("results: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("results: seek: %w", err)
	}
	s.f = f
	return s, nil
}

// LoadDir returns a read-only merged view of every *.jsonl file under
// dir — the merge-on-read entry point for renderers and coordinators.
// Put on a loaded store keeps records in memory only.
func LoadDir(dir string) (*DirStore, error) {
	s := &DirStore{
		dir:  dir,
		recs: make(map[string]Record),
		enc:  make(map[string][]byte),
	}
	if err := s.loadAll(); err != nil {
		return nil, err
	}
	return s, nil
}

// shardFiles lists the *.jsonl files under dir, sorted for a stable scan
// order (the merge rule does not depend on it, but stable iteration
// keeps error messages and debugging deterministic).
func shardFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("results: read store dir: %w", err)
	}
	var files []string
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".jsonl" {
			continue
		}
		files = append(files, filepath.Join(dir, e.Name()))
	}
	sort.Strings(files)
	return files, nil
}

// loadAll merges every shard file into the in-memory view. Foreign files
// are read-only (their torn tails tolerated, never truncated: the writer
// may be alive mid-append).
func (s *DirStore) loadAll() error {
	files, err := shardFiles(s.dir)
	if err != nil {
		return err
	}
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("results: open shard file: %w", err)
		}
		_, err = scanRecords(path, f, func(_ []byte, rec Record) {
			s.merge(rec)
		})
		f.Close()
		if err != nil {
			return err
		}
	}
	return nil
}

// merge applies the store-wide duplicate rule (see the shared merge in
// store.go). It must be called with a V-stamped, keyed record.
func (s *DirStore) merge(rec Record) error {
	return merge(s.recs, s.enc, rec)
}

// Put stores rec (stamping V and, if empty, Key from the identity) and,
// for writable stores, appends its JSONL line to the store's own shard
// file. The in-memory view applies the same duplicate rule as a reload,
// so a DirStore's live state always equals what LoadDir would see —
// putting a record that loses to an already-merged duplicate appends the
// line but leaves the view unchanged.
func (s *DirStore) Put(rec Record) error {
	rec.V = SchemaV
	if rec.Key == "" {
		rec.Key = rec.Identity.Key()
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("results: marshal record: %w", err)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f != nil {
		if _, err := s.f.Write(line); err != nil {
			return fmt.Errorf("results: append record: %w", err)
		}
	}
	return s.merge(rec)
}

// Get returns the record stored under key.
func (s *DirStore) Get(key string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.recs[key]
	return rec, ok
}

// Len returns the number of distinct keys stored.
func (s *DirStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Records returns all records in the canonical store order (see Store).
func (s *DirStore) Records() []Record {
	s.mu.Lock()
	out := make([]Record, 0, len(s.recs))
	for _, rec := range s.recs {
		out = append(out, rec)
	}
	s.mu.Unlock()
	sortRecords(out)
	return out
}

// Path returns the store directory.
func (s *DirStore) Path() string { return s.dir }

// WriterPath returns the store's own append file ("" for read-only
// merges). The fault-injection harness tears this file's tail to
// simulate a writer killed mid-append.
func (s *DirStore) WriterPath() string { return s.path }

// Close fsyncs and releases the append handle, if any. The store stays
// readable.
func (s *DirStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	syncErr := s.f.Sync()
	err := s.f.Close()
	s.f = nil
	if err == nil {
		err = syncErr
	}
	return err
}
