// Package results persists per-cell sweep measurements as durable,
// diffable artifacts. A store holds JSONL Record lines, each keyed by a
// content address over the cell's full configuration tuple — (workload,
// machine, method, scale, period, base seed, repeats), the same identity
// stats.DeriveSeed hashes for the cell's random streams. Because
// measurements are deterministic functions of that tuple, a store
// doubles as a cache: a resumed sweep skips every cell whose key is
// already present and is guaranteed to reproduce the uninterrupted run
// bit for bit.
//
// Store is the pluggable backend interface. FileStore (one append-only
// JSONL file) serves single-process sweeps; DirStore (a directory of
// per-writer JSONL shard files, merged on read with a deterministic
// duplicate rule) serves distributed coordinator/worker sweeps, where a
// retried shard can legitimately record the same cell twice. The
// storetest subpackage is the executable contract every backend must
// pass.
package results

import (
	"strconv"

	"pmutrust/internal/stats"
)

// SchemaV is the store line format version, bumped on incompatible
// Record changes so old artifacts fail loudly instead of misparse.
const SchemaV = 1

// Identity is the configuration tuple that fully determines one sweep
// cell's measurement. Two cells with equal identities draw the same seeds
// and therefore produce identical results.
type Identity struct {
	// Workload, Machine and Method name the grid cell.
	Workload string `json:"workload"`
	Machine  string `json:"machine"`
	Method   string `json:"method"`
	// Scale names the experiment scale ("paper", "small", ...).
	Scale string `json:"scale"`
	// WorkloadScale is the scale's workload iteration multiplier.
	WorkloadScale float64 `json:"workload_scale"`
	// PeriodBase is the base sampling period in instructions.
	PeriodBase uint64 `json:"period_base"`
	// Seed is the base seed the per-repeat seeds derive from.
	Seed uint64 `json:"seed"`
	// Repeats is how many repeats were averaged.
	Repeats int `json:"repeats"`
}

// Key returns the identity's content address: a 16-hex-digit fingerprint
// over every field. The store is keyed by it, so any configuration change
// — a different seed, period, scale or repeat count — addresses different
// cells and can never serve stale measurements.
func (id Identity) Key() string {
	return stats.Fingerprint(id.Seed,
		id.Workload, id.Machine, id.Method, id.Scale,
		// 'g' formatting round-trips float64 exactly, so distinct
		// workload scales never alias.
		strconv.FormatFloat(id.WorkloadScale, 'g', -1, 64),
		strconv.FormatUint(id.PeriodBase, 10),
		strconv.Itoa(id.Repeats))
}

// RefMethod is the reserved method name under which ground-truth
// reference profiles are addressed. It can never collide with a real
// sampling method key (sampling method keys never start with "__"), so
// reference records and measurement records occupy disjoint key spaces
// even if they ever share a store — though by convention they live in a
// sidecar store of their own (see experiments.Runner.RefStore).
const RefMethod = "__ref__"

// RefData is the memoized payload of one ground-truth reference run:
// exactly the fields ref.Collect computes from a functional execution.
// A reference depends only on (workload, workload scale) — no machine,
// period or seed — so its identity zeroes every other field and uses
// RefMethod as the method.
type RefData struct {
	// Blocks is the block count of the profiled program, stored so a
	// loaded record can be validated against the program it claims to
	// describe before ExecCount is trusted.
	Blocks int `json:"blocks"`
	// NetInstructions is the total retired instruction count.
	NetInstructions uint64 `json:"net_instructions"`
	// TakenBranches is the total taken-branch count.
	TakenBranches uint64 `json:"taken_branches"`
	// ExecCount[b] is the exact execution count of block ID b.
	ExecCount []uint64 `json:"exec_count"`
}

// Record is one stored measurement: the identity that addresses it plus
// the measured payload (mirroring experiments.Measurement).
type Record struct {
	// V is the line schema version (SchemaV).
	V int `json:"v"`
	// Key is the identity's content address, stored redundantly so a
	// store file is greppable and diffs are self-describing.
	Key string `json:"key"`
	Identity
	// Err is the accuracy error averaged over successful repeats; -1 for
	// unsupported or failed cells.
	Err float64 `json:"err"`
	// PerRepeat holds the individual repeat errors, in repeat order.
	PerRepeat []float64 `json:"per_repeat,omitempty"`
	// Samples is the sample count of the first successful repeat.
	Samples int `json:"samples"`
	// Supported reports whether the machine can run the method.
	Supported bool `json:"supported"`
	// Failed reports that at least one repeat errored.
	Failed bool `json:"failed,omitempty"`
	// Ref carries the ground-truth reference payload for records
	// addressed under RefMethod; nil on measurement records.
	Ref *RefData `json:"ref,omitempty"`
}
