package results

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func testRec(workload, method string, err float64) Record {
	return Record{
		Identity: Identity{
			Workload: workload, Machine: "IvyBridge", Method: method,
			Scale: "small", WorkloadScale: 1, PeriodBase: 2000, Seed: 42, Repeats: 1,
		},
		Err: err, PerRepeat: []float64{err}, Samples: 100, Supported: true,
	}
}

func TestIdentityKeyContentAddressed(t *testing.T) {
	id := testRec("G4Box", "lbr", 0.1).Identity
	if id.Key() != id.Key() {
		t.Error("key not deterministic")
	}
	if len(id.Key()) != 16 {
		t.Errorf("key %q not 16 hex digits", id.Key())
	}
	// Every identity field must feed the address.
	mutants := []Identity{id, id, id, id, id, id, id, id}
	mutants[0].Workload = "Test40"
	mutants[1].Machine = "Westmere"
	mutants[2].Method = "classic"
	mutants[3].Scale = "paper"
	mutants[4].WorkloadScale = 8
	mutants[5].PeriodBase = 4000
	mutants[6].Seed = 43
	mutants[7].Repeats = 3
	for i, m := range mutants {
		if m.Key() == id.Key() {
			t.Errorf("mutant %d does not change the key", i)
		}
	}
}

func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{testRec("G4Box", "lbr", 0.1), testRec("G4Box", "classic", 0.5), testRec("Test40", "lbr", 0.2)}
	for _, rec := range want {
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	ld, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if ld.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", ld.Len(), len(want))
	}
	for _, rec := range want {
		got, ok := ld.Get(rec.Identity.Key())
		if !ok {
			t.Fatalf("record %s/%s missing after reload", rec.Workload, rec.Method)
		}
		if got.Err != rec.Err || got.Samples != rec.Samples || !got.Supported {
			t.Errorf("reloaded record differs: %+v vs %+v", got, rec)
		}
		if got.V != SchemaV || got.Key != rec.Identity.Key() {
			t.Errorf("stamped fields wrong: v=%d key=%q", got.V, got.Key)
		}
	}
	// Records() is canonically sorted regardless of insertion order.
	recs := ld.Records()
	for i := 1; i < len(recs); i++ {
		if recs[i-1].Workload > recs[i].Workload {
			t.Errorf("Records not sorted: %s before %s", recs[i-1].Workload, recs[i].Workload)
		}
	}
}

func TestOpenToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testRec("G4Box", "lbr", 0.1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a writer killed mid-append: half a JSON line, no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":1,"key":"dead`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := Open(path)
	if err != nil {
		t.Fatalf("Open with torn tail: %v", err)
	}
	if re.Len() != 1 {
		t.Fatalf("Len = %d after torn tail, want 1", re.Len())
	}
	// Appending after recovery must land on a clean line boundary.
	if err := re.Put(testRec("Test40", "classic", 0.3)); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	ld, err := Load(path)
	if err != nil {
		t.Fatalf("reload after recovery: %v", err)
	}
	if ld.Len() != 2 {
		t.Fatalf("Len = %d after recovery+append, want 2", ld.Len())
	}
}

func TestLoadRejectsInteriorCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	good := `{"v":1,"key":"k1","workload":"G4Box","machine":"IvyBridge","method":"lbr","scale":"small","workload_scale":1,"period_base":2000,"seed":42,"repeats":1,"err":0.1,"samples":1,"supported":true}`
	content := "not json at all\n" + good + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Errorf("interior corruption not rejected: %v", err)
	}
}

func TestLoadRejectsSchemaMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	if err := os.WriteFile(path, []byte(`{"v":99,"key":"k"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("schema mismatch not rejected: %v", err)
	}
}

// TestStoreDuplicateRuleUnified pins the store-wide duplicate rule on
// the FileStore side: the record with the smallest canonical JSON
// encoding wins its key regardless of Put order, so a FileStore and a
// DirStore holding the same record set always elect the same winner
// (the storetest suite checks the DirStore half and the cross-backend
// agreement).
func TestStoreDuplicateRuleUnified(t *testing.T) {
	lo := testRec("G4Box", "lbr", 0.125) // "err":0.125 sorts before "err":0.5
	hi := testRec("G4Box", "lbr", 0.5)
	for name, order := range map[string][2]Record{
		"lo-first": {lo, hi},
		"hi-first": {hi, lo},
	} {
		s := NewMemory()
		for _, rec := range order {
			if err := s.Put(rec); err != nil {
				t.Fatal(err)
			}
		}
		got, _ := s.Get(lo.Identity.Key())
		if got.Err != lo.Err || s.Len() != 1 {
			t.Errorf("%s: smallest encoding did not win: %+v len=%d", name, got, s.Len())
		}
	}
}

func TestStoreConcurrentPut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	workloads := []string{"A", "B", "C", "D", "E", "F", "G", "H"}
	var wg sync.WaitGroup
	for _, w := range workloads {
		wg.Add(1)
		go func(w string) {
			defer wg.Done()
			if err := s.Put(testRec(w, "lbr", 0.1)); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ld, err := Load(path)
	if err != nil {
		t.Fatalf("reload after concurrent puts: %v", err)
	}
	if ld.Len() != len(workloads) {
		t.Errorf("Len = %d, want %d (interleaved writes corrupted the log?)", ld.Len(), len(workloads))
	}
}
