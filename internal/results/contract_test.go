package results_test

import (
	"os"
	"path/filepath"
	"testing"

	"pmutrust/internal/results"
	"pmutrust/internal/results/storetest"
)

// tear appends a half-written, unterminated record to path — the bytes a
// writer killed mid-append leaves behind.
func tear(t *testing.T, path string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":1,"key":"torn-mid-wri`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFileStoreContract runs the backend contract suite against the
// single-file JSONL store. Open gives each subtest a fresh file;
// Reopen/Tear operate on the file Open last created.
func TestFileStoreContract(t *testing.T) {
	var path string
	storetest.TestStore(t, storetest.Harness{
		Open: func(t *testing.T) results.Store {
			path = filepath.Join(t.TempDir(), "store.jsonl")
			st, err := results.Create(path)
			if err != nil {
				t.Fatal(err)
			}
			return st
		},
		Reopen: func(t *testing.T) results.Store {
			st, err := results.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			return st
		},
		Tear: func(t *testing.T) { tear(t, path) },
	})
}

// TestDirStoreContract runs the backend contract suite against the
// sharded-directory store, with a single writer appending to its own
// shard file (the multi-writer merge has its own tests in dir_test.go).
// Open gives each subtest a fresh directory; Reopen/Tear operate on the
// directory Open last created.
func TestDirStoreContract(t *testing.T) {
	var dir string
	storetest.TestStore(t, storetest.Harness{
		Open: func(t *testing.T) results.Store {
			dir = filepath.Join(t.TempDir(), "cells")
			st, err := results.OpenDir(dir, "w1")
			if err != nil {
				t.Fatal(err)
			}
			return st
		},
		Reopen: func(t *testing.T) results.Store {
			st, err := results.OpenDir(dir, "w1")
			if err != nil {
				t.Fatal(err)
			}
			return st
		},
		// Tear the store's own shard file: OpenDir must truncate it back
		// to a clean boundary before appending, like FileStore Open.
		Tear: func(t *testing.T) { tear(t, filepath.Join(dir, "w1.jsonl")) },
	})
}
