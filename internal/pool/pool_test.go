package pool

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsAllJobs(t *testing.T) {
	for _, workers := range []int{0, 1, 4, 100} {
		var ran [50]atomic.Bool
		if err := ForEach(len(ran), workers, 0, func(i int) error {
			if ran[i].Swap(true) {
				return fmt.Errorf("job %d ran twice", i)
			}
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ran {
			if !ran[i].Load() {
				t.Fatalf("workers=%d: job %d never ran", workers, i)
			}
		}
	}
}

func TestForEachFirstErrorByIndex(t *testing.T) {
	for _, workers := range []int{1, 8} {
		err := ForEach(20, workers, 0, func(i int) error {
			if i == 3 || i == 17 {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Errorf("workers=%d: err = %v, want job 3's error", workers, err)
		}
	}
}

func TestForEachKeepsGoingAfterError(t *testing.T) {
	var ran atomic.Int32
	err := ForEach(10, 2, 0, func(i int) error {
		ran.Add(1)
		return errors.New("boom")
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := ran.Load(); got != 10 {
		t.Errorf("ran %d jobs after first error, want all 10", got)
	}
}

func TestForEachTimeout(t *testing.T) {
	err := ForEach(1000, 2, time.Nanosecond, func(i int) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestForEachZeroJobs(t *testing.T) {
	if err := ForEach(0, 4, 0, func(i int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}
