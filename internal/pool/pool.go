// Package pool provides the bounded worker pool shared by the experiment
// sweep layer and the CLIs: deterministic error selection by job index,
// an optional wall-clock timeout, and a goroutine-free sequential fast
// path. Keeping one implementation means pool semantics (which job's
// error wins, what a timeout abandons) cannot drift between callers.
package pool

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ErrTimeout is wrapped in the error ForEach returns when the timeout
// fires before every job was dispatched.
var ErrTimeout = errors.New("pool: timed out")

// ForEach runs jobs 0..n-1 on a bounded worker pool and blocks until
// all dispatched jobs finish. workers <= 0 means runtime.GOMAXPROCS(0);
// timeout 0 means none. Every job runs even when earlier ones fail; the
// returned error is the first failure by job index, independent of
// completion order. The timeout bounds dispatch, not execution: when it
// fires, running jobs complete, undispatched jobs are dropped, and a
// timeout error (wrapping ErrTimeout) wins over job errors — but a run
// whose jobs were all dispatched before the deadline completes normally
// (jobs are not interruptible).
func ForEach(n, workers int, timeout time.Duration, job func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	if workers <= 1 && timeout == 0 {
		// Sequential fast path: no goroutines, errors still collected
		// from every job.
		var first error
		for i := 0; i < n; i++ {
			if err := job(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}

	var deadline <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		deadline = timer.C
	}

	idx := make(chan int)
	errs := make([]error, n)
	var timedOut atomic.Bool
	go func() {
		defer close(idx)
		for i := 0; i < n; i++ {
			select {
			case idx <- i:
			case <-deadline:
				timedOut.Store(true)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = job(i)
			}
		}()
	}
	wg.Wait()

	if timedOut.Load() {
		return fmt.Errorf("%w after %v", ErrTimeout, timeout)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
