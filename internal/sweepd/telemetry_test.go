package sweepd

// Worker telemetry: every fleet member persists a validated snapshot
// under dir/telemetry/, the returned WorkerStats are a projection of
// that same snapshot (so console summary and /metrics can never
// disagree), and the merged fleet document counts its members.

import (
	"sync"
	"testing"
	"time"

	"pmutrust/internal/telemetry"
)

// TestWorkerPersistsTelemetrySnapshot runs a two-worker fleet and checks
// the per-worker snapshots and their merge.
func TestWorkerPersistsTelemetrySnapshot(t *testing.T) {
	dir := t.TempDir()
	p := testPlan(3)
	if err := WritePlan(dir, p); err != nil {
		t.Fatal(err)
	}

	const fleet = 2
	stats := make([]WorkerStats, fleet)
	var wg sync.WaitGroup
	for i := 0; i < fleet; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &Worker{Dir: dir, Owner: string(rune('a' + i)), TTL: time.Second, Parallel: 2}
			var err error
			stats[i], err = w.Run()
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	// Each worker's persisted snapshot validates, carries the plan
	// fingerprint as run ID, claims exactly one worker, and projects to
	// the stats the worker returned.
	for i := 0; i < fleet; i++ {
		owner := string(rune('a' + i))
		snap, err := telemetry.ReadSnapshot(
			telemetry.Dir(dir) + "/worker-" + owner + ".json")
		if err != nil {
			t.Fatalf("worker %s snapshot: %v", owner, err)
		}
		if snap.RunID != p.Fingerprint {
			t.Errorf("worker %s snapshot run ID = %q, want plan fingerprint %q",
				owner, snap.RunID, p.Fingerprint)
		}
		if snap.Fleet.Workers != 1 {
			t.Errorf("worker %s snapshot claims %d workers, want 1", owner, snap.Fleet.Workers)
		}
		if got := StatsFromSnapshot(snap); got != stats[i] {
			t.Errorf("worker %s: snapshot projects to %+v, Run returned %+v", owner, got, stats[i])
		}
	}

	// The merged fleet document: counts both members, keeps the shared
	// run ID, and accounts for the whole sweep.
	merged, n, err := telemetry.LoadDir(telemetry.Dir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if n != fleet {
		t.Fatalf("LoadDir merged %d snapshots, want %d", n, fleet)
	}
	if err := merged.Validate(); err != nil {
		t.Fatalf("merged snapshot: %v", err)
	}
	if merged.Fleet.Workers != fleet {
		t.Errorf("merged snapshot counts %d workers, want %d", merged.Fleet.Workers, fleet)
	}
	if merged.RunID != p.Fingerprint {
		t.Errorf("merged run ID = %q, want %q (all members share the plan fingerprint)",
			merged.RunID, p.Fingerprint)
	}
	if got := int(merged.Sweep.CellsMeasured + merged.Sweep.CellsStored); got != p.NumCells() {
		t.Errorf("fleet telemetry accounts for %d cells, plan has %d", got, p.NumCells())
	}
	if int(merged.Fleet.ShardsCompleted) != len(p.Shards) {
		t.Errorf("fleet telemetry counts %d completed shards, want %d",
			merged.Fleet.ShardsCompleted, len(p.Shards))
	}
	if merged.Engine.FallbackTotal == 0 {
		t.Error("fleet measured real cells but recorded no fallback events")
	}
}

// TestCoordinatorLastProgress pins the observability-plane hook: before
// Run no observation exists, after a completed sweep the last
// observation reports every shard done.
func TestCoordinatorLastProgress(t *testing.T) {
	dir := t.TempDir()
	c := &Coordinator{Dir: dir, Plan: testPlan(2), PollInterval: 20 * time.Millisecond}
	if _, ok := c.LastProgress(); ok {
		t.Fatal("LastProgress reports an observation before Run")
	}

	workerDone := make(chan error, 1)
	go func() {
		w := &Worker{Dir: dir, Owner: "ext", TTL: time.Second, Parallel: 2}
		_, err := w.Run()
		workerDone <- err
	}()
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := <-workerDone; err != nil {
		t.Fatal(err)
	}

	p, ok := c.LastProgress()
	if !ok {
		t.Fatal("LastProgress reports no observation after a completed sweep")
	}
	if p.ShardsDone != p.ShardsTotal || p.ShardsTotal != 2 {
		t.Errorf("final progress = %+v, want shards 2/2 done", p)
	}
}
