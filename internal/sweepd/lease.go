package sweepd

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Lease protocol
//
// A shard's lease is a sequence of generation-numbered JSON files,
// "shard-0003.g000002.json"; the highest generation present is the
// current lease. Acquiring works by *creating the next generation*
// exclusively: the contender writes a temp file and hard-links it to the
// generation's name — link(2) is atomic and fails if the name exists, so
// however many workers contend for an expired lease, exactly one wins
// each generation and the losers see fs.ErrExist. Content appears
// atomically with the name (the temp file is fully written first), so a
// lease file can never be observed half-written.
//
// The owner heartbeats by rewriting its own generation file (temp +
// rename) with a pushed-out expiry, after checking it is still the
// highest generation — if a contender has already claimed g+1 (the
// owner's clock stalled past its TTL), the heartbeat reports
// ErrSuperseded and the old owner must abandon the shard. The window
// between an owner's last heartbeat check and a steal can let both
// measure the same in-flight cell; that is safe by construction — cells
// are pure functions of their identity, duplicates land in different
// shard files, and merge-on-read resolves them with results.DirStore's
// deterministic rule. What the protocol *must* guarantee is only that
// each generation has a unique owner, so no two processes ever append to
// the same shard file.
//
// Nothing here reads file mtimes or relies on clock agreement between
// workers beyond the TTL granularity: expiry compares the wall-clock
// instant embedded in the lease against the reader's own clock, so TTLs
// should comfortably exceed worst-case clock skew between fleet members
// (seconds, not milliseconds, for multi-host sweeps).

// ErrHeld reports that a shard's lease is currently owned (or was won by
// another contender in the same race). Callers move on to other shards
// and retry later.
var ErrHeld = errors.New("sweepd: shard lease held")

// ErrSuperseded reports that a later lease generation exists: the
// holder expired and another worker took over. The old owner must stop
// working the shard.
var ErrSuperseded = errors.New("sweepd: lease superseded")

// leaseRecord is the lease file payload.
type leaseRecord struct {
	V               int    `json:"v"`
	Shard           int    `json:"shard"`
	Gen             uint64 `json:"gen"`
	Owner           string `json:"owner"`
	ExpiresUnixNano int64  `json:"expires_unix_nano"`
}

const leaseV = 1

// Lease is an acquired shard lease. The owner must Heartbeat it more
// often than its TTL (TTL/3 is the conventional cadence) and abandon the
// shard on ErrSuperseded.
type Lease struct {
	// Shard is the leased shard index; Gen the won generation; Owner the
	// acquiring owner id.
	Shard int
	Gen   uint64
	Owner string

	dir string // the leases directory
}

// leaseFileName returns the file name for one (shard, generation).
func leaseFileName(shard int, gen uint64) string {
	return fmt.Sprintf("shard-%04d.g%06d.json", shard, gen)
}

// scanLease returns the highest-generation lease record for shard, or
// ok=false when the shard has never been leased.
func scanLease(dir string, shard int) (rec leaseRecord, ok bool, err error) {
	prefix := fmt.Sprintf("shard-%04d.g", shard)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return rec, false, fmt.Errorf("sweepd: scan leases: %w", err)
	}
	var names []string
	for _, e := range ents {
		if n := e.Name(); strings.HasPrefix(n, prefix) && strings.HasSuffix(n, ".json") {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return rec, false, nil
	}
	// Generation numbers are zero-padded, so the lexicographically
	// greatest name is the highest generation.
	sort.Strings(names)
	name := names[len(names)-1]
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return rec, false, fmt.Errorf("sweepd: read lease: %w", err)
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		// Lease files appear atomically with full content (link from a
		// written temp file), so a malformed one is corruption, not a
		// race.
		return rec, false, fmt.Errorf("sweepd: corrupt lease %s: %v", name, err)
	}
	if rec.V != leaseV {
		return rec, false, fmt.Errorf("sweepd: lease %s version v%d, want v%d", name, rec.V, leaseV)
	}
	return rec, true, nil
}

// writeLeaseTemp writes rec to a unique temp file in dir and returns its
// path.
func writeLeaseTemp(dir string, rec leaseRecord) (string, error) {
	data, err := json.Marshal(rec)
	if err != nil {
		return "", fmt.Errorf("sweepd: marshal lease: %w", err)
	}
	f, err := os.CreateTemp(dir, ".lease-*")
	if err != nil {
		return "", fmt.Errorf("sweepd: lease temp: %w", err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		os.Remove(f.Name())
		return "", fmt.Errorf("sweepd: write lease: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return "", fmt.Errorf("sweepd: write lease: %w", err)
	}
	return f.Name(), nil
}

// Acquire attempts to claim shard's lease for owner with the given TTL,
// evaluated at time now. It returns ErrHeld when the lease is live (or
// another contender won the same race); any other error is structural
// (I/O, corruption). On success the caller owns the shard until the
// lease expires and must heartbeat to keep it.
func Acquire(dir string, shard int, owner string, ttl time.Duration, now time.Time) (*Lease, error) {
	cur, ok, err := scanLease(dir, shard)
	if err != nil {
		return nil, err
	}
	next := uint64(1)
	if ok {
		if cur.ExpiresUnixNano > now.UnixNano() {
			return nil, fmt.Errorf("shard %d held by %s (gen %d): %w", shard, cur.Owner, cur.Gen, ErrHeld)
		}
		next = cur.Gen + 1
	}
	rec := leaseRecord{
		V: leaseV, Shard: shard, Gen: next, Owner: owner,
		ExpiresUnixNano: now.Add(ttl).UnixNano(),
	}
	tmp, err := writeLeaseTemp(dir, rec)
	if err != nil {
		return nil, err
	}
	linkErr := os.Link(tmp, filepath.Join(dir, leaseFileName(shard, next)))
	os.Remove(tmp)
	if linkErr != nil {
		if errors.Is(linkErr, fs.ErrExist) {
			// Another contender created this generation first.
			return nil, fmt.Errorf("shard %d generation %d lost to a concurrent claim: %w", shard, next, ErrHeld)
		}
		return nil, fmt.Errorf("sweepd: link lease: %w", linkErr)
	}
	return &Lease{Shard: shard, Gen: next, Owner: owner, dir: dir}, nil
}

// Heartbeat pushes the lease expiry to now+ttl. It first re-scans the
// shard: if a higher generation exists — or the lease record is no
// longer this owner's — the lease was stolen after expiry and Heartbeat
// returns ErrSuperseded; the owner must stop working the shard (its
// already-appended records stay valid).
func (l *Lease) Heartbeat(ttl time.Duration, now time.Time) error {
	cur, ok, err := scanLease(l.dir, l.Shard)
	if err != nil {
		return err
	}
	if !ok || cur.Gen != l.Gen || cur.Owner != l.Owner {
		return fmt.Errorf("shard %d gen %d (owner %s): current is gen %d owner %s: %w",
			l.Shard, l.Gen, l.Owner, cur.Gen, cur.Owner, ErrSuperseded)
	}
	rec := leaseRecord{
		V: leaseV, Shard: l.Shard, Gen: l.Gen, Owner: l.Owner,
		ExpiresUnixNano: now.Add(ttl).UnixNano(),
	}
	tmp, err := writeLeaseTemp(l.dir, rec)
	if err != nil {
		return err
	}
	// Rename over our own generation file: atomic, and only the owner
	// ever targets this name (contenders only ever create *new*
	// generations), so no write is ever lost to interleaving.
	if err := os.Rename(tmp, filepath.Join(l.dir, leaseFileName(l.Shard, l.Gen))); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("sweepd: heartbeat: %w", err)
	}
	return nil
}

// doneRecord marks a completed shard.
type doneRecord struct {
	V     int    `json:"v"`
	Shard int    `json:"shard"`
	Gen   uint64 `json:"gen"`
	Owner string `json:"owner"`
}

// doneFileName returns the completion-marker name for a shard.
func doneFileName(shard int) string { return fmt.Sprintf("shard-%04d.json", shard) }

// markDone writes shard's completion marker (atomic; overwriting an
// existing marker is harmless — both writers finished the same work).
func markDone(dir string, shard int, owner string, gen uint64) error {
	data, err := json.Marshal(doneRecord{V: leaseV, Shard: shard, Gen: gen, Owner: owner})
	if err != nil {
		return fmt.Errorf("sweepd: marshal done marker: %w", err)
	}
	f, err := os.CreateTemp(dir, ".done-*")
	if err != nil {
		return fmt.Errorf("sweepd: done temp: %w", err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		os.Remove(f.Name())
		return fmt.Errorf("sweepd: write done marker: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return fmt.Errorf("sweepd: write done marker: %w", err)
	}
	if err := os.Rename(f.Name(), filepath.Join(dir, doneFileName(shard))); err != nil {
		os.Remove(f.Name())
		return fmt.Errorf("sweepd: write done marker: %w", err)
	}
	return nil
}

// isDone reports whether shard has a completion marker.
func isDone(dir string, shard int) (bool, error) {
	_, err := os.Stat(filepath.Join(dir, doneFileName(shard)))
	if err == nil {
		return true, nil
	}
	if os.IsNotExist(err) {
		return false, nil
	}
	return false, fmt.Errorf("sweepd: stat done marker: %w", err)
}

// countDone returns how many of n shards are done-marked.
func countDone(dir string, n int) (int, error) {
	count := 0
	for s := 0; s < n; s++ {
		done, err := isDone(dir, s)
		if err != nil {
			return 0, err
		}
		if done {
			count++
		}
	}
	return count, nil
}

// ownerID derives a fleet-unique owner id for this process.
func ownerID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "unknown"
	}
	return host + "-" + strconv.Itoa(os.Getpid())
}
