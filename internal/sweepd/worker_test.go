package sweepd

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"pmutrust/internal/experiments"
	"pmutrust/internal/results"
)

// runFleet runs n in-process workers over dir concurrently and returns
// their stats. In-process goroutines share nothing but the sweep
// directory, so this exercises the same lease and merge paths as real
// processes (the subprocess + SIGKILL coverage lives in the integration
// test).
func runFleet(t *testing.T, dir string, n int) []WorkerStats {
	t.Helper()
	stats := make([]WorkerStats, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &Worker{Dir: dir, Owner: string(rune('a' + i)), TTL: time.Second, Parallel: 2}
			stats[i], errs[i] = w.Run()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	return stats
}

// TestFleetSweepByteIdenticalToSingleProcess is the core distributed
// guarantee at unit scale: two workers racing over four shards produce a
// merged store from which a fresh runner renders byte-identical
// measurements to an undistributed sweep, measuring nothing itself.
func TestFleetSweepByteIdenticalToSingleProcess(t *testing.T) {
	g := testGrid()
	dir := t.TempDir()
	p := testPlan(4)
	if err := WritePlan(dir, p); err != nil {
		t.Fatal(err)
	}

	fleet := runFleet(t, dir, 2)

	taken, completed := 0, 0
	for _, s := range fleet {
		taken += s.ShardsTaken
		completed += s.ShardsCompleted
	}
	if completed != len(p.Shards) {
		t.Fatalf("fleet completed %d shards, want %d", completed, len(p.Shards))
	}
	if taken != len(p.Shards) {
		t.Errorf("fleet took %d leases for %d shards (no worker died, so no retries expected)", taken, len(p.Shards))
	}

	// Reference: a plain single-process sweep on a fresh runner.
	refRunner := experiments.NewRunner(experiments.SmallScale(), 42)
	want, err := refRunner.Sweep(g, experiments.SweepOptions{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Distributed render: fresh runner + merged store; everything must be
	// store-served.
	st, err := results.LoadDir(CellsDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != g.Size() {
		t.Fatalf("merged store holds %d cells, want %d", st.Len(), g.Size())
	}
	r2 := experiments.NewRunner(experiments.SmallScale(), 42)
	got, stats, err := r2.SweepCached(g, st, experiments.SweepOptions{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Measured != 0 || stats.Cached != g.Size() {
		t.Fatalf("render stats = %+v, want all %d cells cached and 0 measured", stats, g.Size())
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("distributed render differs from single-process sweep:\n got %s\nwant %s", gotJSON, wantJSON)
	}
}

// TestWorkerServesPredecessorCells pins the resume contract: cells a
// dead predecessor already appended are served from the merged store,
// never re-measured.
func TestWorkerServesPredecessorCells(t *testing.T) {
	dir := t.TempDir()
	p := testPlan(1)
	if err := WritePlan(dir, p); err != nil {
		t.Fatal(err)
	}
	r, err := p.Runner()
	if err != nil {
		t.Fatal(err)
	}

	// A "predecessor" measured the first 3 cells into its own shard file
	// and then died (no done marker, lease long expired).
	pre, err := results.OpenDir(CellsDir(dir), shardWriter(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	const preMeasured = 3
	for _, ref := range p.Shards[0][:preMeasured] {
		c, err := ref.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		m, err := r.Measure(c.Workload, c.Machine, c.Method)
		if err != nil {
			t.Fatal(err)
		}
		if err := pre.Put(r.CellRecord(c, m)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pre.Close(); err != nil {
		t.Fatal(err)
	}

	w := &Worker{Dir: dir, Owner: "successor", TTL: time.Second, Parallel: 2}
	stats, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Served != preMeasured {
		t.Errorf("Served = %d, want %d (predecessor's cells must not be re-measured)", stats.Served, preMeasured)
	}
	if want := p.NumCells() - preMeasured; stats.Measured != want {
		t.Errorf("Measured = %d, want %d", stats.Measured, want)
	}
	if stats.ShardsCompleted != 1 {
		t.Errorf("ShardsCompleted = %d, want 1", stats.ShardsCompleted)
	}
	st, err := results.LoadDir(CellsDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != p.NumCells() {
		t.Errorf("merged store holds %d cells, want %d", st.Len(), p.NumCells())
	}
}

// TestWorkerSharesReferenceMemo pins the fleet-wide reference memo: a
// worker collects each workload's ground truth into dir/refs exactly
// once, and a worker attaching to a directory whose refs are already
// populated (a predecessor or fleet-mate collected them) serves every
// reference from the memo and re-executes none — while the measurements
// it produces stay byte-identical to an unmemoized single-process sweep.
func TestWorkerSharesReferenceMemo(t *testing.T) {
	g := testGrid()
	nWorkloads := len(g.Workloads)

	// Cold directory: the lone worker collects every reference.
	dir1 := t.TempDir()
	if err := WritePlan(dir1, testPlan(2)); err != nil {
		t.Fatal(err)
	}
	w1 := &Worker{Dir: dir1, Owner: "cold", TTL: time.Second, Parallel: 2}
	s1, err := w1.Run()
	if err != nil {
		t.Fatal(err)
	}
	if s1.RefsCollected != nWorkloads || s1.RefsServed != 0 {
		t.Errorf("cold worker refs = %d collected / %d served, want %d / 0",
			s1.RefsCollected, s1.RefsServed, nWorkloads)
	}
	refs, err := results.LoadDir(RefsDir(dir1))
	if err != nil {
		t.Fatal(err)
	}
	if refs.Len() != nWorkloads {
		t.Errorf("refs dir holds %d records, want %d", refs.Len(), nWorkloads)
	}

	// Warm directory: ground truth pre-collected (as a fleet-mate would
	// have), cells still unmeasured — the worker must serve every
	// reference and collect none.
	dir2 := t.TempDir()
	p := testPlan(2)
	if err := WritePlan(dir2, p); err != nil {
		t.Fatal(err)
	}
	r, err := p.Runner()
	if err != nil {
		t.Fatal(err)
	}
	pre, err := results.OpenDir(RefsDir(dir2), "pre")
	if err != nil {
		t.Fatal(err)
	}
	r.RefStore = pre
	for _, spec := range g.Workloads {
		if _, err := r.Reference(spec); err != nil {
			t.Fatal(err)
		}
	}
	if err := pre.Close(); err != nil {
		t.Fatal(err)
	}
	w2 := &Worker{Dir: dir2, Owner: "warm", TTL: time.Second, Parallel: 2}
	s2, err := w2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if s2.RefsServed != nWorkloads || s2.RefsCollected != 0 {
		t.Errorf("warm worker refs = %d collected / %d served, want 0 / %d",
			s2.RefsCollected, s2.RefsServed, nWorkloads)
	}

	// Both sweeps must render byte-identically to a plain run: the memo
	// cannot perturb a single downstream number.
	want, err := experiments.NewRunner(experiments.SmallScale(), 42).Sweep(g, experiments.SweepOptions{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)
	for _, dir := range []string{dir1, dir2} {
		st, err := results.LoadDir(CellsDir(dir))
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := experiments.NewRunner(experiments.SmallScale(), 42).
			SweepCached(g, st, experiments.SweepOptions{Parallel: 1})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Measured != 0 {
			t.Errorf("%s: render re-measured %d cells, want 0", dir, stats.Measured)
		}
		gotJSON, _ := json.Marshal(got)
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Errorf("%s: memoized sweep render differs from plain sweep", dir)
		}
	}
}

// TestWorkerSkipsDoneShards: a worker attaching to a finished sweep
// exits immediately without taking a lease.
func TestWorkerSkipsDoneShards(t *testing.T) {
	dir := t.TempDir()
	p := testPlan(2)
	if err := WritePlan(dir, p); err != nil {
		t.Fatal(err)
	}
	runFleet(t, dir, 1)

	w := &Worker{Dir: dir, Owner: "late", TTL: time.Second}
	stats, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ShardsTaken != 0 || stats.Measured != 0 {
		t.Errorf("late worker stats = %+v, want nothing taken or measured", stats)
	}
}

// TestCoordinatorObservesExternalWorker: a coordinator with no local
// fleet plans the sweep, watches an externally attached (in-process)
// worker drain it, streams progress, and returns once every shard is
// done-marked.
func TestCoordinatorObservesExternalWorker(t *testing.T) {
	dir := t.TempDir()
	var progress bytes.Buffer
	c := &Coordinator{
		Dir:          dir,
		Plan:         testPlan(3),
		Progress:     &progress,
		PollInterval: 20 * time.Millisecond,
	}

	workerDone := make(chan error, 1)
	go func() {
		w := &Worker{Dir: dir, Owner: "ext", TTL: time.Second, Parallel: 2}
		_, err := w.Run()
		workerDone <- err
	}()

	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := <-workerDone; err != nil {
		t.Fatal(err)
	}
	out := progress.String()
	if !strings.Contains(out, "shards 3/3 done") {
		t.Errorf("progress stream missing completion line:\n%s", out)
	}
}

func TestProgressString(t *testing.T) {
	p := Progress{CellsDone: 3, CellsTotal: 12, ShardsDone: 1, ShardsTotal: 4,
		Elapsed: 90 * time.Second, ETA: 270 * time.Second}
	s := p.String()
	for _, want := range []string{"cells 3/12", "25.0%", "shards 1/4 done", "1m30s", "4m30s"} {
		if !strings.Contains(s, want) {
			t.Errorf("Progress.String() = %q, missing %q", s, want)
		}
	}
	if s := (Progress{CellsTotal: 5, ETA: -1}).String(); !strings.Contains(s, "eta ?") {
		t.Errorf("unknown ETA renders %q, want 'eta ?'", s)
	}
}
