package sweepd

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"os/exec"
	"sync"
	"time"

	"pmutrust/internal/results"
)

// Progress is one coordinator observation of a running sweep. The JSON
// form (snake_case, durations in nanoseconds) is what the -obs-addr
// /progress endpoint serves.
type Progress struct {
	// CellsDone / CellsTotal count distinct completed cells across every
	// shard file (merge-on-read, so retries never double-count).
	CellsDone  int `json:"cells_done"`
	CellsTotal int `json:"cells_total"`
	// ShardsDone / ShardsTotal count done-marked shards.
	ShardsDone  int `json:"shards_done"`
	ShardsTotal int `json:"shards_total"`
	// Elapsed is the time since the coordinator started observing; ETA
	// extrapolates the measured completion rate over the remaining cells
	// (negative while no rate is measurable yet).
	Elapsed time.Duration `json:"elapsed_ns"`
	ETA     time.Duration `json:"eta_ns"`
}

// String renders the one-line progress form the coordinator streams.
func (p Progress) String() string {
	pct := 100.0
	if p.CellsTotal > 0 {
		pct = 100 * float64(p.CellsDone) / float64(p.CellsTotal)
	}
	eta := "?"
	if p.ETA >= 0 {
		eta = p.ETA.Round(time.Second).String()
	}
	return fmt.Sprintf("cells %d/%d (%.1f%%), shards %d/%d done, elapsed %s, eta %s",
		p.CellsDone, p.CellsTotal, pct, p.ShardsDone, p.ShardsTotal,
		p.Elapsed.Round(time.Second), eta)
}

// Coordinator runs one distributed sweep: it writes the shard plan into
// the shared directory, optionally spawns local worker processes, and
// streams progress until every shard is done-marked. It never measures
// cells itself and holds no leases — killing and restarting the
// coordinator is as safe as killing a worker (WritePlan re-accepts an
// identical plan).
type Coordinator struct {
	// Dir is the shared sweep directory.
	Dir string
	// Plan is the sweep to run (see NewPlan).
	Plan *Plan
	// Workers is how many local worker processes to spawn through
	// WorkerCmd; 0 with a nil WorkerCmd means external workers attach on
	// their own (the coordinator then only plans and observes).
	Workers int
	// WorkerCmd builds the command for local worker i. The command must
	// run a sweepd worker against Dir and exit when the sweep is done —
	// `pmubench -worker -sweep-dir Dir` (the CLIs wire this up).
	WorkerCmd func(i int) *exec.Cmd
	// Progress, when non-nil, receives one line whenever the observed
	// (cells, shards) state changes — the human-facing progress stream.
	// The same observations are queryable through LastProgress, which is
	// what the -obs-addr /progress endpoint serves.
	Progress io.Writer
	// Logger, when non-nil, receives structured worker lifecycle events
	// (spawns, exits); the progress stream stays on Progress.
	Logger *slog.Logger
	// PollInterval is the observation cadence (default 1s).
	PollInterval time.Duration

	mu   sync.Mutex
	last Progress
	seen bool
}

// LastProgress returns the most recent observation of the running sweep
// and whether one has been made yet. Safe for concurrent use — the HTTP
// observability plane calls it from request goroutines while Run polls.
func (c *Coordinator) LastProgress() (Progress, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last, c.seen
}

// recordProgress publishes one observation for LastProgress readers.
func (c *Coordinator) recordProgress(p Progress) {
	c.mu.Lock()
	c.last, c.seen = p, true
	c.mu.Unlock()
}

// workerExit pairs a worker index with its exit error.
type workerExit struct {
	i   int
	err error
}

// log returns the coordinator's structured logger, or a discarding one
// when none is attached.
func (c *Coordinator) log() *slog.Logger {
	if c.Logger != nil {
		return c.Logger
	}
	return slog.New(slog.DiscardHandler)
}

// observe snapshots sweep progress by merge-on-read.
func (c *Coordinator) observe(start time.Time, firstDone int) (Progress, error) {
	st, err := results.LoadDir(CellsDir(c.Dir))
	if err != nil {
		return Progress{}, err
	}
	done, err := countDone(doneDir(c.Dir), len(c.Plan.Shards))
	if err != nil {
		return Progress{}, err
	}
	p := Progress{
		CellsDone:   st.Len(),
		CellsTotal:  c.Plan.NumCells(),
		ShardsDone:  done,
		ShardsTotal: len(c.Plan.Shards),
		Elapsed:     time.Since(start),
		ETA:         -1,
	}
	// Rate from cells completed *under this coordinator's watch*: a
	// resumed sweep must not let pre-existing records inflate the rate.
	p.ETA = etaFor(p.CellsDone-firstDone, p.CellsTotal-p.CellsDone, p.Elapsed)
	return p, nil
}

// etaFor extrapolates the measured completion rate (newCells finished
// over elapsed) across the remaining cells. It returns -1 — rendered as
// "?" — when no rate is measurable yet, and also when the extrapolation
// exceeds time.Duration's range: converting an out-of-range float64 to
// int64 is not defined to saturate in Go, so a near-zero rate early in a
// huge sweep could otherwise render as a negative or nonsense ETA
// instead of the honest "unknown".
func etaFor(newCells, remaining int, elapsed time.Duration) time.Duration {
	if newCells <= 0 || elapsed <= 0 {
		return -1
	}
	rate := float64(newCells) / elapsed.Seconds()
	eta := float64(remaining) / rate * float64(time.Second)
	if eta >= float64(math.MaxInt64) {
		return -1
	}
	return time.Duration(eta)
}

// Run plans the sweep, spawns the local workers, and blocks until every
// shard is done-marked. Worker crashes are survivable — the remaining
// fleet takes over expired leases — so Run fails only when the whole
// fleet has exited with shards still unfinished (or on structural
// errors: unwritable directory, corrupt plan).
func (c *Coordinator) Run() error {
	if err := WritePlan(c.Dir, c.Plan); err != nil {
		return err
	}
	poll := c.PollInterval
	if poll <= 0 {
		poll = time.Second
	}

	// Spawn the local fleet.
	exits := make(chan workerExit, c.Workers)
	var cmds []*exec.Cmd
	if c.WorkerCmd != nil {
		for i := 0; i < c.Workers; i++ {
			cmd := c.WorkerCmd(i)
			if err := cmd.Start(); err != nil {
				for _, running := range cmds {
					running.Process.Kill()
				}
				return fmt.Errorf("sweepd: spawn worker %d: %w", i, err)
			}
			cmds = append(cmds, cmd)
			go func(i int, cmd *exec.Cmd) {
				exits <- workerExit{i, cmd.Wait()}
			}(i, cmd)
		}
		c.log().Info("spawned workers",
			"workers", len(cmds), "shards", len(c.Plan.Shards), "cells", c.Plan.NumCells(),
			"run_id", c.Plan.Fingerprint)
	}

	start := time.Now()
	firstDone := -1
	exited := 0
	var workerErrs []error
	var last Progress
	for {
		p, err := c.observe(start, max(firstDone, 0))
		if err != nil {
			return err
		}
		if firstDone < 0 {
			firstDone = p.CellsDone
		}
		c.recordProgress(p)
		if c.Progress != nil && (p.CellsDone != last.CellsDone || p.ShardsDone != last.ShardsDone) {
			fmt.Fprintf(c.Progress, "sweepd: %s\n", p)
		}
		last = p
		if p.ShardsDone == p.ShardsTotal {
			break
		}
		select {
		case e := <-exits:
			exited++
			if e.err != nil {
				// A crashed worker is a warning, not a failure: its
				// lease expires and the fleet absorbs the shard.
				c.log().Warn("worker exited", "worker", e.i, "err", e.err)
				workerErrs = append(workerErrs, fmt.Errorf("worker %d: %w", e.i, e.err))
			}
			if len(cmds) > 0 && exited == len(cmds) {
				// The whole local fleet is gone with work remaining.
				// (With external workers the sweep could still finish,
				// but a coordinator that spawned its own fleet has
				// nothing left to wait for.)
				return errors.Join(
					append([]error{fmt.Errorf("sweepd: all %d workers exited with %d/%d shards done",
						len(cmds), p.ShardsDone, p.ShardsTotal)}, workerErrs...)...)
			}
		case <-time.After(poll):
		}
	}

	// Sweep complete: the fleet exits on its own once it observes the
	// done markers; reap it so no worker outlives the coordinator.
	deadline := time.After(30 * time.Second)
	for exited < len(cmds) {
		select {
		case e := <-exits:
			exited++
			if e.err != nil {
				c.log().Warn("worker exited", "worker", e.i, "err", e.err)
			}
		case <-deadline:
			for _, cmd := range cmds {
				cmd.Process.Kill()
			}
			return fmt.Errorf("sweepd: sweep done but %d workers did not exit; killed", len(cmds)-exited)
		}
	}
	return nil
}
