package sweepd

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pmutrust/internal/experiments"
	"pmutrust/internal/machine"
	"pmutrust/internal/sampling"
	"pmutrust/internal/workloads"
)

// testGrid is the small grid the sweepd tests plan over: two kernels
// across two machines and three methods (12 cells), including cells the
// registries mark unsupported.
func testGrid() experiments.Grid {
	return experiments.Grid{
		Workloads: workloads.Kernels()[:2],
		Machines:  machine.All()[:2],
		Methods:   sampling.Registry()[:3],
	}
}

func testPlan(shards int) *Plan {
	return NewPlan("table1", experiments.SmallScale(), 42, testGrid(), shards)
}

func TestNewPlanPartition(t *testing.T) {
	g := testGrid()
	cells := g.Cells()
	p := testPlan(5)
	if len(p.Shards) != 5 {
		t.Fatalf("shards = %d, want 5", len(p.Shards))
	}
	if p.NumCells() != len(cells) {
		t.Fatalf("NumCells = %d, want %d", p.NumCells(), len(cells))
	}
	// Concatenated shards must reproduce the canonical cell order, and
	// the split must be balanced to within one cell.
	i := 0
	for s, shard := range p.Shards {
		if len(shard) < len(cells)/5 || len(shard) > len(cells)/5+1 {
			t.Errorf("shard %d has %d cells; want %d or %d", s, len(shard), len(cells)/5, len(cells)/5+1)
		}
		for _, ref := range shard {
			c := cells[i]
			if ref.Workload != c.Workload.Name || ref.Machine != c.Machine.Name || ref.Method != c.Method.Key {
				t.Fatalf("shard %d ref %+v != canonical cell %d (%s/%s/%s)",
					s, ref, i, c.Workload.Name, c.Machine.Name, c.Method.Key)
			}
			i++
		}
	}
	if i != len(cells) {
		t.Fatalf("shards cover %d cells, want %d", i, len(cells))
	}
}

func TestNewPlanClampsShards(t *testing.T) {
	g := testGrid()
	if p := testPlan(10 * g.Size()); len(p.Shards) != g.Size() {
		t.Errorf("oversharded plan got %d shards, want one per cell (%d)", len(p.Shards), g.Size())
	}
	if p := testPlan(-3); len(p.Shards) != 1 {
		t.Errorf("negative shard count got %d shards, want 1", len(p.Shards))
	}
}

func TestPlanFingerprintDeterministic(t *testing.T) {
	a, b := testPlan(4), testPlan(4)
	if a.Fingerprint != b.Fingerprint {
		t.Errorf("re-planning changed the fingerprint: %s vs %s", a.Fingerprint, b.Fingerprint)
	}
	if c := testPlan(3); c.Fingerprint == a.Fingerprint {
		t.Error("different shard counts share a fingerprint")
	}
	if d := NewPlan("table1", experiments.SmallScale(), 43, testGrid(), 4); d.Fingerprint == a.Fingerprint {
		t.Error("different seeds share a fingerprint")
	}
}

func TestPlanRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p := testPlan(4)
	if err := WritePlan(dir, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPlan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != p.Fingerprint || got.NumCells() != p.NumCells() {
		t.Fatalf("round trip lost the plan: got %s/%d cells, want %s/%d",
			got.Fingerprint, got.NumCells(), p.Fingerprint, p.NumCells())
	}
	// Rewriting the identical plan is a no-op (resume), a different plan
	// is rejected (cross-contamination).
	if err := WritePlan(dir, p); err != nil {
		t.Fatalf("rewriting the same plan: %v", err)
	}
	if err := WritePlan(dir, testPlan(3)); err == nil || !strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("writing a different plan into a live sweep dir: err = %v, want 'different sweep'", err)
	}
}

func TestReadPlanMissing(t *testing.T) {
	if _, err := ReadPlan(t.TempDir()); !os.IsNotExist(err) {
		t.Fatalf("missing plan: err = %v, want os.IsNotExist", err)
	}
}

func TestReadPlanTamperDetected(t *testing.T) {
	dir := t.TempDir()
	if err := WritePlan(dir, testPlan(2)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, planName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), `"seed": 42`, `"seed": 43`, 1)
	if tampered == string(data) {
		t.Fatal("tamper substitution did not apply")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPlan(dir); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("tampered plan: err = %v, want fingerprint mismatch", err)
	}
}

func TestCellRefResolve(t *testing.T) {
	p := testPlan(1)
	for _, ref := range p.Shards[0] {
		c, err := ref.Resolve()
		if err != nil {
			t.Fatalf("resolve %+v: %v", ref, err)
		}
		if c.Workload.Name != ref.Workload || c.Machine.Name != ref.Machine || c.Method.Key != ref.Method {
			t.Fatalf("resolve %+v returned %s/%s/%s", ref, c.Workload.Name, c.Machine.Name, c.Method.Key)
		}
	}
	if _, err := (CellRef{Workload: "no-such", Machine: "no-such", Method: "no-such"}).Resolve(); err == nil {
		t.Fatal("resolving an unregistered ref succeeded")
	}
}
