package sweepd

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

var t0 = time.Unix(1_700_000_000, 0)

func TestAcquireFreshAndHeld(t *testing.T) {
	dir := t.TempDir()
	l, err := Acquire(dir, 3, "a", time.Minute, t0)
	if err != nil {
		t.Fatal(err)
	}
	if l.Shard != 3 || l.Gen != 1 || l.Owner != "a" {
		t.Fatalf("lease = %+v, want shard 3 gen 1 owner a", l)
	}
	// Live lease: every contender sees ErrHeld until expiry.
	if _, err := Acquire(dir, 3, "b", time.Minute, t0.Add(59*time.Second)); !errors.Is(err, ErrHeld) {
		t.Fatalf("acquire of live lease: err = %v, want ErrHeld", err)
	}
	// A different shard is independent.
	if _, err := Acquire(dir, 4, "b", time.Minute, t0); err != nil {
		t.Fatalf("acquire of other shard: %v", err)
	}
}

func TestAcquireAfterExpiry(t *testing.T) {
	dir := t.TempDir()
	if _, err := Acquire(dir, 0, "a", time.Minute, t0); err != nil {
		t.Fatal(err)
	}
	l, err := Acquire(dir, 0, "b", time.Minute, t0.Add(2*time.Minute))
	if err != nil {
		t.Fatalf("acquire of expired lease: %v", err)
	}
	if l.Gen != 2 || l.Owner != "b" {
		t.Fatalf("steal produced %+v, want gen 2 owner b", l)
	}
}

// TestAcquireExpiredLeaseContention is the lease-safety race test: many
// workers contend for the same expired lease at the same instant, and
// exactly one may win the next generation (the others must see ErrHeld,
// never a structural error and never a shared win). Run under -race this
// also proves Acquire is internally race-free.
func TestAcquireExpiredLeaseContention(t *testing.T) {
	dir := t.TempDir()
	if _, err := Acquire(dir, 7, "dead", time.Millisecond, t0); err != nil {
		t.Fatal(err)
	}
	now := t0.Add(time.Minute) // well past expiry for every contender

	const contenders = 16
	var wg sync.WaitGroup
	wins := make([]*Lease, contenders)
	errs := make([]error, contenders)
	for i := 0; i < contenders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wins[i], errs[i] = Acquire(dir, 7, fmt.Sprintf("w%02d", i), time.Minute, now)
		}(i)
	}
	wg.Wait()

	var winners []*Lease
	for i := range wins {
		switch {
		case wins[i] != nil:
			winners = append(winners, wins[i])
		case !errors.Is(errs[i], ErrHeld):
			t.Errorf("contender %d: err = %v, want ErrHeld", i, errs[i])
		}
	}
	if len(winners) != 1 {
		t.Fatalf("%d contenders won the expired lease, want exactly 1: %+v", len(winners), winners)
	}
	if winners[0].Gen != 2 {
		t.Errorf("winner gen = %d, want 2", winners[0].Gen)
	}
	// The winner's heartbeat still works; a fresh contender still loses.
	if err := winners[0].Heartbeat(time.Minute, now.Add(time.Second)); err != nil {
		t.Errorf("winner heartbeat: %v", err)
	}
	if _, err := Acquire(dir, 7, "late", time.Minute, now.Add(2*time.Second)); !errors.Is(err, ErrHeld) {
		t.Errorf("late contender: err = %v, want ErrHeld", err)
	}
}

func TestHeartbeatExtendsLease(t *testing.T) {
	dir := t.TempDir()
	l, err := Acquire(dir, 0, "a", time.Minute, t0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Heartbeat(time.Minute, t0.Add(50*time.Second)); err != nil {
		t.Fatal(err)
	}
	// Past the original expiry but inside the renewed one.
	if _, err := Acquire(dir, 0, "b", time.Minute, t0.Add(100*time.Second)); !errors.Is(err, ErrHeld) {
		t.Fatalf("acquire inside renewed lease: err = %v, want ErrHeld", err)
	}
}

// TestHeartbeatAfterStealSuperseded pins the takeover contract: once a
// contender claims the next generation of an expired lease, the old
// owner's heartbeat must fail with ErrSuperseded — under -race, with the
// steal and the heartbeat racing from separate goroutines.
func TestHeartbeatAfterStealSuperseded(t *testing.T) {
	dir := t.TempDir()
	l, err := Acquire(dir, 5, "old", 10*time.Millisecond, t0)
	if err != nil {
		t.Fatal(err)
	}
	now := t0.Add(time.Minute)

	stolen := make(chan *Lease, 1)
	go func() {
		nl, err := Acquire(dir, 5, "thief", time.Minute, now)
		if err != nil {
			t.Error(err)
		}
		stolen <- nl
	}()

	// Heartbeat concurrently with the steal: each attempt either still
	// succeeds (steal not yet linked) or reports ErrSuperseded; once the
	// steal lands, ErrSuperseded is guaranteed. TTL 0 keeps the lease
	// expired from the thief's viewpoint no matter how the calls
	// interleave (a positive TTL here could renew the lease forever and
	// lock the thief out).
	for {
		err := l.Heartbeat(0, now)
		if errors.Is(err, ErrSuperseded) {
			break
		}
		if err != nil {
			t.Fatalf("heartbeat: %v", err)
		}
	}
	nl := <-stolen
	if nl.Gen != l.Gen+1 || nl.Owner != "thief" {
		t.Fatalf("steal produced %+v, want gen %d owner thief", nl, l.Gen+1)
	}
	if err := nl.Heartbeat(time.Minute, now.Add(time.Second)); err != nil {
		t.Errorf("new owner heartbeat: %v", err)
	}
}

func TestDoneMarkers(t *testing.T) {
	dir := t.TempDir()
	for _, s := range []int{0, 2} {
		if done, err := isDone(dir, s); err != nil || done {
			t.Fatalf("isDone(%d) before marking = %v, %v", s, done, err)
		}
	}
	if err := markDone(dir, 2, "a", 1); err != nil {
		t.Fatal(err)
	}
	// Re-marking (two owners finishing the same work) is harmless.
	if err := markDone(dir, 2, "b", 2); err != nil {
		t.Fatal(err)
	}
	if done, err := isDone(dir, 2); err != nil || !done {
		t.Fatalf("isDone(2) = %v, %v, want true", done, err)
	}
	n, err := countDone(dir, 3)
	if err != nil || n != 1 {
		t.Fatalf("countDone = %d, %v, want 1", n, err)
	}
}
