package sweepd

import (
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"pmutrust/internal/experiments"
	"pmutrust/internal/pool"
	"pmutrust/internal/results"
	"pmutrust/internal/sampling"
	"pmutrust/internal/telemetry"
)

// Fault injects failures into a worker for the crash/resume test
// harness. It is exported so the integration tests (and any operator
// drill) can exercise the exact code paths a production kill takes:
// faults act at the record-append boundary of the real worker loop, not
// in a simulation of it.
type Fault struct {
	// KillAfterRecords, when > 0, raises SIGKILL on the worker's own
	// process immediately after it has appended this many records — a
	// deterministic "worker died mid-shard". SIGKILL (not os.Exit) so no
	// deferred cleanup, lease release or stream flush runs, exactly like
	// an OOM kill.
	KillAfterRecords int
	// TornTail additionally writes half a record (no trailing newline)
	// to the worker's shard file just before the kill, simulating death
	// mid-append. Merge-on-read must drop exactly that fragment.
	TornTail bool
	// StallAfterRecords, when > 0, puts the worker to sleep for Stall
	// after appending this many records, while its heartbeat keeps the
	// lease alive — a deterministic window for an *external* SIGKILL.
	StallAfterRecords int
	// Stall is the stall duration (default 1 minute).
	Stall time.Duration
	// StallMarker, when non-empty, is a file path written with this
	// process's pid as the stall begins, so the killer knows exactly when
	// (and whom) to shoot.
	StallMarker string
}

// WorkerStats summarizes one worker's run. It is a projection of the
// worker's telemetry snapshot (see StatsFromSnapshot): the console
// summary and the /metrics document are derived from the same counters,
// so the two can never disagree.
type WorkerStats struct {
	// ShardsCompleted counts shards this worker ran to completion and
	// done-marked; ShardsTaken counts every lease it won (including
	// shards later abandoned to a supersession).
	ShardsCompleted, ShardsTaken int
	// Measured counts cells this worker measured and appended; Served
	// counts cells of its shards that merge-on-read found already
	// complete (a predecessor measured them before dying).
	Measured, Served int
	// RefsCollected counts ground-truth reference profiles this worker
	// executed; RefsServed counts those it loaded from the sweep's
	// shared reference memo (dir/refs) without re-executing.
	RefsCollected, RefsServed int
}

// StatsFromSnapshot projects a telemetry snapshot onto the worker's
// console-summary shape — the single source both surfaces render from.
func StatsFromSnapshot(s telemetry.Snapshot) WorkerStats {
	return WorkerStats{
		ShardsCompleted: int(s.Fleet.ShardsCompleted),
		ShardsTaken:     int(s.Fleet.LeasesAcquired),
		Measured:        int(s.Sweep.CellsMeasured),
		Served:          int(s.Sweep.CellsStored),
		RefsCollected:   int(s.Sweep.RefsMeasured),
		RefsServed:      int(s.Sweep.RefsServed),
	}
}

// Worker is one member of a sweep fleet: it claims shards from the plan
// in dir through expiring leases, measures each shard's missing cells
// into its own (shard, generation) file, and exits when every shard of
// the sweep is done-marked — regardless of who finished them.
type Worker struct {
	// Dir is the shared sweep directory (plan, leases, cells, done).
	Dir string
	// Owner uniquely identifies this worker in lease files; "" derives
	// host-pid.
	Owner string
	// TTL is the lease time-to-live. Heartbeats run at TTL/3, so a
	// worker that dies stops renewing and its shard becomes claimable
	// within one TTL. 0 means DefaultLeaseTTL.
	TTL time.Duration
	// Parallel bounds the worker's intra-shard measurement parallelism
	// (<= 0: GOMAXPROCS).
	Parallel int
	// Engine selects the execution engine (results are engine-independent).
	Engine sampling.EngineMode
	// Logger, when non-nil, receives one structured record per shard
	// event, carrying the run ID, shard, and lease generation as attrs
	// (see telemetry.NewLogger).
	Logger *slog.Logger
	// Fault, when non-nil, injects failures for the test harness.
	Fault *Fault
	// Now is the clock (nil: time.Now). Tests inject it to control
	// expiry without sleeping.
	Now func() time.Time

	faultPuts atomic.Int64
	// sink aggregates this worker's telemetry; Run persists snapshots of
	// it under dir/telemetry/ for the coordinator's fleet-merged view.
	sink *telemetry.Sink
}

// DefaultLeaseTTL balances takeover latency (a dead worker's shard is
// unclaimable for up to one TTL) against heartbeat traffic and clock
// skew tolerance on shared filesystems.
const DefaultLeaseTTL = 10 * time.Second

func (w *Worker) now() time.Time {
	if w.Now != nil {
		return w.Now()
	}
	return time.Now()
}

// log returns the worker's structured logger, or a discarding one when
// none is attached.
func (w *Worker) log() *slog.Logger {
	if w.Logger != nil {
		return w.Logger
	}
	return slog.New(slog.DiscardHandler)
}

// persist writes the worker's current snapshot under dir/telemetry/ so
// the coordinator's observability plane can serve a fleet-merged view
// mid-run. Best-effort: a failed write warns and the sweep continues —
// telemetry must never take down a measurement.
func (w *Worker) persist(runID string) {
	snap := w.sink.Snapshot(runID)
	// Each persisted worker snapshot claims one worker, so the merged
	// fleet document counts fleet members (the Sink itself cannot know).
	snap.Fleet.Workers = 1
	if err := telemetry.WriteSnapshot(telemetry.Dir(w.Dir), "worker-"+w.Owner, snap); err != nil {
		w.log().Warn("telemetry snapshot write failed", "err", err)
	}
}

// readPlanWait polls for the plan file, tolerating a worker that
// attaches moments before its coordinator finishes planning.
func readPlanWait(dir string, patience time.Duration, now func() time.Time) (*Plan, error) {
	deadline := now().Add(patience)
	for {
		p, err := ReadPlan(dir)
		if err == nil || !os.IsNotExist(err) {
			return p, err
		}
		if now().After(deadline) {
			return nil, fmt.Errorf("sweepd: no plan in %s after %v: %w", dir, patience, err)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// Run executes the worker loop until every shard of the plan is done.
// Measurement failures are collected per cell and joined into the
// returned error (the shard is still done-marked: failed cells are never
// stored, so a later render pass retries them — the same contract as
// single-process SweepCached). Supersession is not an error.
func (w *Worker) Run() (stats WorkerStats, err error) {
	if w.Owner == "" {
		w.Owner = ownerID()
	}
	if w.TTL <= 0 {
		w.TTL = DefaultLeaseTTL
	}
	w.sink = &telemetry.Sink{}
	p, err := readPlanWait(w.Dir, 10*time.Second, w.now)
	if err != nil {
		return stats, err
	}
	// The plan fingerprint is the sweep's run ID: every fleet member logs
	// and persists telemetry under it, which is what ties a shard file in
	// the results store to the log lines and snapshots that produced it.
	log := w.log().With("run_id", p.Fingerprint, "worker", w.Owner)
	r, err := p.Runner()
	if err != nil {
		return stats, err
	}
	r.Engine = w.Engine
	r.Telemetry = w.sink
	// Attach the fleet-shared reference memo: ground truth collected by
	// any earlier (or concurrent) fleet member is served from dir/refs
	// instead of re-executed. The owner name keeps this worker's appends
	// in a file of their own, like a cells shard.
	refs, err := results.OpenDir(RefsDir(w.Dir), w.Owner)
	if err != nil {
		return stats, err
	}
	defer refs.Close()
	r.RefStore = refs
	// The returned stats are a projection of the final snapshot — the
	// same document the observability plane serves — and that snapshot is
	// persisted no matter how the run ends.
	defer func() {
		w.persist(p.Fingerprint)
		stats = StatsFromSnapshot(w.sink.Snapshot(p.Fingerprint))
	}()

	n := len(p.Shards)
	// Stagger each worker's claim order by its owner hash so a fleet
	// spreads over the shards instead of stampeding shard 0.
	h := fnv.New32a()
	h.Write([]byte(w.Owner))
	start := 0
	if n > 0 {
		start = int(h.Sum32()) % n
	}

	var failures []error
	for {
		allDone, progress := true, false
		for k := 0; k < n; k++ {
			s := (start + k) % n
			done, err := isDone(doneDir(w.Dir), s)
			if err != nil {
				return stats, err
			}
			if done {
				continue
			}
			allDone = false
			lease, err := Acquire(leasesDir(w.Dir), s, w.Owner, w.TTL, w.now())
			if errors.Is(err, ErrHeld) {
				continue
			}
			if err != nil {
				return stats, err
			}
			progress = true
			// Generation 1 is a first claim; anything later is a takeover
			// of an expired or superseded predecessor — a steal.
			w.sink.CountLease(lease.Gen > 1)
			log.Info("claimed shard", "shard", s, "gen", lease.Gen, "cells", len(p.Shards[s]))
			err = w.runShard(p, r, s, lease, log)
			switch {
			case errors.Is(err, ErrSuperseded):
				log.Warn("abandoned shard", "shard", s, "gen", lease.Gen, "err", err)
			case err != nil:
				failures = append(failures, fmt.Errorf("shard %d: %w", s, err))
			default:
				w.sink.CountShardDone()
				log.Info("completed shard", "shard", s, "gen", lease.Gen)
			}
			w.persist(p.Fingerprint)
		}
		if allDone {
			return stats, errors.Join(failures...)
		}
		if !progress {
			// Every remaining shard is leased by someone else: wait for
			// done markers to appear or leases to expire.
			time.Sleep(waitSlice(w.TTL))
		}
	}
}

// waitSlice is the idle poll interval: responsive at test-scale TTLs,
// gentle on shared filesystems at production ones.
func waitSlice(ttl time.Duration) time.Duration {
	d := ttl / 4
	if d < 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// shardWriter names the results file of one (shard, generation) — the
// lease protocol guarantees a unique live owner per generation, which is
// what lets the file be single-writer.
func shardWriter(shard int, gen uint64) string {
	return fmt.Sprintf("shard-%04d.g%06d", shard, gen)
}

// runShard measures the shard's missing cells into this generation's
// file under a heartbeat. On supersession it stops between cells and
// returns ErrSuperseded without done-marking; completed appends stay.
func (w *Worker) runShard(p *Plan, r *experiments.Runner, shard int, lease *Lease, log *slog.Logger) error {
	st, err := results.OpenDir(CellsDir(w.Dir), shardWriter(shard, lease.Gen))
	if err != nil {
		return err
	}
	defer st.Close()

	// Resolve refs and split into already-present and missing cells —
	// the merge-on-read that makes a predecessor's completed cells
	// final.
	var missing []experiments.Cell
	var served uint64
	for _, ref := range p.Shards[shard] {
		c, err := ref.Resolve()
		if err != nil {
			return err
		}
		if _, ok := st.Get(r.CellIdentity(c).Key()); ok {
			served++
			continue
		}
		missing = append(missing, c)
	}

	// Heartbeat at TTL/3 until the shard is finished; a failed or
	// superseded heartbeat flips the stop flag the measure loop checks
	// between cells. Each beat also observes its own scheduling lag and
	// persists a snapshot, so a live worker's telemetry is visible to the
	// coordinator's observability plane mid-shard.
	var superseded atomic.Bool
	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	interval := w.TTL / 3
	go func() {
		defer close(hbDone)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		// Lag is measured against the real clock even when w.Now is
		// injected: the ticker runs on real time regardless.
		lastBeat := time.Now()
		for {
			select {
			case <-hbStop:
				return
			case <-tick.C:
				beat := time.Now()
				w.sink.ObserveHeartbeat(beat.Sub(lastBeat) - interval)
				lastBeat = beat
				if err := lease.Heartbeat(w.TTL, w.now()); err != nil {
					superseded.Store(true)
					return
				}
				w.persist(p.Fingerprint)
			}
		}
	}()
	stopHeartbeat := func() {
		close(hbStop)
		<-hbDone
	}

	var measured atomic.Int64
	err = pool.ForEach(len(missing), w.Parallel, 0, func(i int) error {
		if superseded.Load() {
			return nil // abandoned: the new owner measures the rest
		}
		c := missing[i]
		meas, err := r.Measure(c.Workload, c.Machine, c.Method)
		if err != nil {
			// Not stored: the cell stays missing and a later owner or
			// render pass retries it.
			return fmt.Errorf("%s/%s/%s: %w", c.Workload.Name, c.Machine.Name, c.Method.Key, err)
		}
		measured.Add(1)
		if perr := st.Put(r.CellRecord(c, meas)); perr != nil {
			return fmt.Errorf("%s/%s/%s: %w", c.Workload.Name, c.Machine.Name, c.Method.Key, perr)
		}
		w.faultStep(st)
		return nil
	})
	w.sink.CountCells(uint64(measured.Load()), served)
	stopHeartbeat()
	if superseded.Load() {
		return fmt.Errorf("shard %d gen %d: %w", shard, lease.Gen, ErrSuperseded)
	}
	// Sync records before the done marker so "done" implies durable.
	if cerr := st.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if derr := markDone(doneDir(w.Dir), shard, w.Owner, lease.Gen); derr != nil && err == nil {
		err = derr
	}
	return err
}

// faultStep advances the fault-injection state after one appended
// record.
func (w *Worker) faultStep(st *results.DirStore) {
	f := w.Fault
	if f == nil {
		return
	}
	n := int(w.faultPuts.Add(1))
	if f.StallAfterRecords > 0 && n == f.StallAfterRecords {
		stall := f.Stall
		if stall <= 0 {
			stall = time.Minute
		}
		w.log().Info("fault: stalling", "stall", stall, "records", n)
		if f.StallMarker != "" {
			os.WriteFile(f.StallMarker, []byte(strconv.Itoa(os.Getpid())), 0o644)
		}
		time.Sleep(stall)
	}
	if f.KillAfterRecords > 0 && n == f.KillAfterRecords {
		if f.TornTail {
			// Half a record, no newline: the bytes a kill lands on
			// mid-write. Written through a raw append so it bypasses the
			// store's framing entirely.
			if fh, err := os.OpenFile(st.WriterPath(), os.O_APPEND|os.O_WRONLY, 0o644); err == nil {
				fh.WriteString(`{"v":1,"key":"torn-mid-wri`)
				fh.Close()
			}
		}
		w.log().Info("fault: SIGKILL self", "records", n)
		proc, err := os.FindProcess(os.Getpid())
		if err == nil {
			proc.Kill() // SIGKILL on Unix: no deferred cleanup runs
		}
		select {} // unreachable once the signal lands
	}
}
