package sweepd

// The fault-injection integration harness: a sweep fleet of real worker
// subprocesses, one SIGKILLed by its own fault injector mid-shard after
// leaving a torn record tail, one SIGKILLed externally while stalled
// mid-shard — then a resume fleet that must finish the sweep such that
// the final render is byte-identical to a single-process reference with
// every cell measured exactly once across the whole ordeal.
//
// Workers re-exec this test binary: TestMain detects SWEEPD_TEST_WORKER
// in the environment and runs a Worker instead of the test suite, so the
// kills land on real processes with real lease files — no simulation.
//
// On failure the sweep directory is copied to $SWEEPD_TEST_ARTIFACT_DIR
// (when set) so CI can upload the shard files for post-mortem.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"pmutrust/internal/experiments"
	"pmutrust/internal/results"
	"pmutrust/internal/telemetry"
)

func TestMain(m *testing.M) {
	if os.Getenv("SWEEPD_TEST_WORKER") == "1" {
		runTestWorker()
		return
	}
	os.Exit(m.Run())
}

// runTestWorker is the subprocess side of the harness: a plain Worker
// over the shared sweep dir, with fault injection configured from the
// environment.
func runTestWorker() {
	atoi := func(k string) int {
		n, _ := strconv.Atoi(os.Getenv(k))
		return n
	}
	var fault *Fault
	if n := atoi("SWEEPD_TEST_KILL_AFTER"); n > 0 {
		fault = &Fault{KillAfterRecords: n, TornTail: os.Getenv("SWEEPD_TEST_TORN") == "1"}
	}
	if n := atoi("SWEEPD_TEST_STALL_AFTER"); n > 0 {
		fault = &Fault{StallAfterRecords: n, StallMarker: os.Getenv("SWEEPD_TEST_STALL_MARKER")}
	}
	ttl, err := time.ParseDuration(os.Getenv("SWEEPD_TEST_TTL"))
	if err != nil {
		ttl = DefaultLeaseTTL
	}
	w := &Worker{
		Dir:      os.Getenv("SWEEPD_TEST_DIR"),
		Owner:    os.Getenv("SWEEPD_TEST_OWNER"),
		TTL:      ttl,
		Parallel: 1, // one in-flight cell, so "killed mid-shard" is well-defined
		Logger:   telemetry.NewLogger(os.Stderr, false),
		Fault:    fault,
	}
	if _, err := w.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "test worker: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// spawnWorker re-execs the test binary as a sweep worker.
func spawnWorker(t *testing.T, dir, owner string, ttl time.Duration, extraEnv ...string) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"SWEEPD_TEST_WORKER=1",
		"SWEEPD_TEST_DIR="+dir,
		"SWEEPD_TEST_OWNER="+owner,
		"SWEEPD_TEST_TTL="+ttl.String(),
	)
	cmd.Env = append(cmd.Env, extraEnv...)
	cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

// saveArtifacts copies the sweep dir for CI upload when the test failed.
func saveArtifacts(t *testing.T, dir string) {
	t.Cleanup(func() {
		dest := os.Getenv("SWEEPD_TEST_ARTIFACT_DIR")
		if !t.Failed() || dest == "" {
			return
		}
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			rel, _ := filepath.Rel(dir, path)
			target := filepath.Join(dest, t.Name(), rel)
			if d.IsDir() {
				return os.MkdirAll(target, 0o755)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(target, data, 0o644)
		})
		if err != nil {
			t.Logf("saving artifacts to %s: %v", dest, err)
		} else {
			t.Logf("sweep dir saved to %s", filepath.Join(dest, t.Name()))
		}
	})
}

// waitExit waits for a spawned worker with a deadline.
func waitExit(t *testing.T, name string, cmd *exec.Cmd, timeout time.Duration) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		cmd.Process.Kill()
		t.Fatalf("%s did not exit within %v", name, timeout)
		return nil
	}
}

// countShardRecords counts complete (newline-terminated, parseable)
// records across every shard file, plus the files that end in a torn
// tail. Counting raw lines — not merged keys — is what catches double
// measurement: a cell measured twice appears as two records even though
// the merged view dedupes them.
func countShardRecords(t *testing.T, cellsDir string) (records int, tornFiles []string) {
	t.Helper()
	ents, err := os.ReadDir(cellsDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".jsonl") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(cellsDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if len(data) > 0 && !bytes.HasSuffix(data, []byte("\n")) {
			tornFiles = append(tornFiles, e.Name())
			data = data[:bytes.LastIndexByte(data, '\n')+1]
		}
		for _, line := range bytes.Split(data, []byte("\n")) {
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			if !json.Valid(line) {
				t.Errorf("%s: interior non-JSON line %q", e.Name(), line)
				continue
			}
			records++
		}
	}
	return records, tornFiles
}

// TestKillResumeByteIdentical is the acceptance test of the distributed
// sweep: 4 worker subprocesses, one self-SIGKILLs mid-shard right after
// writing a torn record tail, one is SIGKILLed from outside while
// stalled mid-shard, the survivors absorb the orphaned shards — and the
// final render must be byte-identical to a single-process reference with
// every cell measured exactly once (asserted two ways: raw shard-file
// record count equals the grid size, and the render's SweepStats show
// zero cells measured).
func TestKillResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess fault-injection test; skipped in -short")
	}
	dir := t.TempDir()
	saveArtifacts(t, dir)
	const ttl = time.Second
	p := testPlan(4) // 12 cells in 4 shards of 3
	if err := WritePlan(dir, p); err != nil {
		t.Fatal(err)
	}

	// Phase 1: the two victims, alone so they deterministically claim
	// shards and die mid-way through them.
	marker := filepath.Join(t.TempDir(), "stalled")
	torn := spawnWorker(t, dir, "victim-torn", ttl,
		"SWEEPD_TEST_KILL_AFTER=2", "SWEEPD_TEST_TORN=1")
	stall := spawnWorker(t, dir, "victim-stall", ttl,
		"SWEEPD_TEST_STALL_AFTER=1", "SWEEPD_TEST_STALL_MARKER="+marker)

	// The torn victim kills itself; SIGKILL surfaces as a non-nil Wait.
	if err := waitExit(t, "torn victim", torn, 30*time.Second); err == nil {
		t.Fatal("torn victim exited cleanly; want death by SIGKILL")
	}
	// The stall victim reports it is stalled mid-shard; shoot it.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(marker); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stall victim never reached its stall window")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := stall.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := waitExit(t, "stall victim", stall, 30*time.Second); err == nil {
		t.Fatal("stall victim exited cleanly; want death by SIGKILL")
	}

	// Both victims are dead mid-shard: no done markers, orphaned leases,
	// 3 completed records on disk (2 + 1), one of them under a torn tail.
	if n, err := countDone(doneDir(dir), len(p.Shards)); err != nil || n != 0 {
		t.Fatalf("victims done-marked %d shards (err %v); want 0", n, err)
	}
	if rec, tornFiles := countShardRecords(t, CellsDir(dir)); rec != 3 || len(tornFiles) != 1 {
		t.Fatalf("after victims: %d records, torn files %v; want 3 records, 1 torn file", rec, tornFiles)
	}

	// Phase 2: the resume fleet. The victims' leases expire within one
	// TTL; the survivors reclaim their shards, serve the completed cells
	// from the victims' files, and measure only what is missing.
	w3 := spawnWorker(t, dir, "healthy-3", ttl)
	w4 := spawnWorker(t, dir, "healthy-4", ttl)
	if err := waitExit(t, "healthy-3", w3, 60*time.Second); err != nil {
		t.Fatalf("healthy-3: %v", err)
	}
	if err := waitExit(t, "healthy-4", w4, 60*time.Second); err != nil {
		t.Fatalf("healthy-4: %v", err)
	}

	if n, err := countDone(doneDir(dir), len(p.Shards)); err != nil || n != len(p.Shards) {
		t.Fatalf("done shards = %d (err %v), want %d", n, err, len(p.Shards))
	}

	// Zero double measurement: every cell appears exactly once across the
	// raw shard files (the victims' records were resumed, not redone), and
	// the torn tail is still there, tolerated rather than repaired.
	records, tornFiles := countShardRecords(t, CellsDir(dir))
	if records != p.NumCells() {
		t.Errorf("%d records across shard files, want %d (each cell measured exactly once)", records, p.NumCells())
	}
	if len(tornFiles) != 1 {
		t.Errorf("torn files after resume = %v, want exactly the victim's", tornFiles)
	}

	// Byte identity: the merged store renders exactly what an
	// uninterrupted single-process sweep measures, without measuring.
	st, err := results.LoadDir(CellsDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != p.NumCells() {
		t.Fatalf("merged store has %d distinct cells, want %d", st.Len(), p.NumCells())
	}
	g := testGrid()
	r := experiments.NewRunner(experiments.SmallScale(), 42)
	got, stats, err := r.SweepCached(g, st, experiments.SweepOptions{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Measured != 0 || stats.Cached != g.Size() {
		t.Errorf("render stats = %+v, want all %d cached, 0 measured", stats, g.Size())
	}
	ref := experiments.NewRunner(experiments.SmallScale(), 42)
	want, err := ref.Sweep(g, experiments.SweepOptions{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("post-crash render differs from single-process reference:\n got %s\nwant %s", gotJSON, wantJSON)
	}

	// Determinism of the merge itself: a second independent read of the
	// sweep dir produces byte-identical records.
	st2, err := results.LoadDir(CellsDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(st.Records())
	b, _ := json.Marshal(st2.Records())
	if !bytes.Equal(a, b) {
		t.Error("two merge-on-read passes over the same sweep dir disagree")
	}
}
