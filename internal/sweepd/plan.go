// Package sweepd turns the one-shot sweep CLI into a sharded, resumable
// fleet: a coordinator partitions a (workload × machine × method) cell
// grid into leased shards, N worker processes claim shards through
// expiring lease files on a shared filesystem, and every completed cell
// is appended to a per-(shard, lease-generation) JSONL file that readers
// merge on read (results.DirStore). Because each cell is a pure,
// content-addressed function of its identity, a distributed sweep — even
// one that loses workers to SIGKILL mid-shard and retries their leases —
// renders byte-identically to a single-process run; the package's
// fault-injection test harness proves exactly that.
//
// Directory layout of a sweep (all under one shared root):
//
//	dir/plan.json                      the fingerprinted shard plan
//	dir/leases/shard-0003.g000002.json generation-numbered lease files
//	dir/cells/shard-0003.g000002.jsonl per-owner result shard files
//	dir/done/shard-0003.json           shard completion markers
//	dir/refs/<owner>.jsonl             memoized ground-truth references
package sweepd

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"pmutrust/internal/experiments"
	"pmutrust/internal/machine"
	"pmutrust/internal/sampling"
	"pmutrust/internal/stats"
	"pmutrust/internal/workloads"
)

// PlanV is the plan file format version, bumped on incompatible changes
// so stale sweep directories fail loudly instead of misparse.
const PlanV = 1

// CellRef names one grid cell by its coordinates. Workers resolve refs
// back to specs through the registries, so a plan is valid exactly when
// every ref names a registered workload, machine and method.
type CellRef struct {
	Workload string `json:"workload"`
	Machine  string `json:"machine"`
	Method   string `json:"method"`
}

// Plan is the coordinator-written contract of one distributed sweep: the
// full cell grid partitioned into shards, plus every knob that feeds the
// cells' content addresses. Workers reconstruct their Runner from it, so
// two processes of the same binary derive identical cell identities —
// the property that makes distributed results interchangeable with
// single-process ones.
type Plan struct {
	// V is the plan format version (PlanV).
	V int `json:"v"`
	// Experiment names the matrix experiment being swept ("table1",
	// "table2", "phased") — the coordinator's final render uses it; the
	// workers only need the cells.
	Experiment string `json:"experiment"`
	// Scale is the experiment scale name, resolved per process through
	// experiments.ScaleByName.
	Scale string `json:"scale"`
	// Seed is the base seed every cell's streams derive from.
	Seed uint64 `json:"seed"`
	// Fingerprint is a content address over every other field. ReadPlan
	// verifies it, and WritePlan refuses to overwrite a plan with a
	// different fingerprint — attaching workers to the wrong sweep, or
	// resuming one under changed configuration, fails loudly.
	Fingerprint string `json:"fingerprint"`
	// Shards holds the partitioned cell grid: contiguous, balanced
	// chunks of the canonical Grid.Cells order.
	Shards [][]CellRef `json:"shards"`
}

// planName is the plan file name under the sweep dir.
const planName = "plan.json"

// leasesDir, cellsDir and doneDir name the sweep-dir subdirectories.
func leasesDir(dir string) string { return filepath.Join(dir, "leases") }
func doneDir(dir string) string   { return filepath.Join(dir, "done") }

// CellsDir returns the shard-file directory of a sweep dir — the
// directory results.LoadDir merges to read a distributed sweep's
// records. Exported for the CLIs (pmureport renders straight from it).
func CellsDir(dir string) string { return filepath.Join(dir, "cells") }

// RefsDir returns the reference-memo directory of a sweep dir: a
// results.DirStore holding the fleet's ground-truth profiles under the
// reserved results.RefMethod key. Every worker appends to its own shard
// file there (writer-named, like cells), so each (workload, scale)
// reference is executed at most once per fleet member — and exactly
// once for the common case of one worker reaching it first and the rest
// attaching after its append is visible. Exported for the CLIs.
func RefsDir(dir string) string { return filepath.Join(dir, "refs") }

// InitDir creates the sweep directory layout.
func InitDir(dir string) error {
	for _, d := range []string{dir, leasesDir(dir), CellsDir(dir), doneDir(dir), RefsDir(dir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return fmt.Errorf("sweepd: init dir: %w", err)
		}
	}
	return nil
}

// NewPlan partitions g into at most shards contiguous chunks of the
// canonical cell order (never more than one shard per cell; at least
// one shard). The split is a pure function of (grid, shards), so
// re-planning the same sweep reproduces the same fingerprint.
func NewPlan(experiment string, scale experiments.Scale, seed uint64, g experiments.Grid, shards int) *Plan {
	cells := g.Cells()
	if shards < 1 {
		shards = 1
	}
	if shards > len(cells) && len(cells) > 0 {
		shards = len(cells)
	}
	p := &Plan{V: PlanV, Experiment: experiment, Scale: scale.Name, Seed: seed}
	for s := 0; s < shards; s++ {
		lo, hi := s*len(cells)/shards, (s+1)*len(cells)/shards
		chunk := make([]CellRef, 0, hi-lo)
		for _, c := range cells[lo:hi] {
			chunk = append(chunk, CellRef{
				Workload: c.Workload.Name,
				Machine:  c.Machine.Name,
				Method:   c.Method.Key,
			})
		}
		p.Shards = append(p.Shards, chunk)
	}
	p.Fingerprint = p.fingerprint()
	return p
}

// fingerprint content-addresses every plan field except Fingerprint
// itself.
func (p *Plan) fingerprint() string {
	labels := []string{
		strconv.Itoa(p.V), p.Experiment, p.Scale,
		strconv.Itoa(len(p.Shards)),
	}
	for _, shard := range p.Shards {
		labels = append(labels, strconv.Itoa(len(shard)))
		for _, c := range shard {
			labels = append(labels, c.Workload, c.Machine, c.Method)
		}
	}
	return stats.Fingerprint(p.Seed, labels...)
}

// NumCells returns the total cell count across shards.
func (p *Plan) NumCells() int {
	n := 0
	for _, s := range p.Shards {
		n += len(s)
	}
	return n
}

// Runner builds the experiments Runner every process of the fleet
// measures through: scale resolved by name, the plan's seed.
func (p *Plan) Runner() (*experiments.Runner, error) {
	scale, err := experiments.ScaleByName(p.Scale)
	if err != nil {
		return nil, fmt.Errorf("sweepd: plan: %w", err)
	}
	return experiments.NewRunner(scale, p.Seed), nil
}

// Resolve maps a cell ref back to the runnable cell through the
// workload, machine and method registries.
func (ref CellRef) Resolve() (experiments.Cell, error) {
	spec, err := workloads.ByName(ref.Workload)
	if err != nil {
		return experiments.Cell{}, fmt.Errorf("sweepd: plan cell: %w", err)
	}
	mach, err := machine.ByName(ref.Machine)
	if err != nil {
		return experiments.Cell{}, fmt.Errorf("sweepd: plan cell: %w", err)
	}
	m, err := sampling.MethodByKey(ref.Method)
	if err != nil {
		return experiments.Cell{}, fmt.Errorf("sweepd: plan cell: %w", err)
	}
	return experiments.Cell{Workload: spec, Machine: mach, Method: m}, nil
}

// WritePlan persists p under dir, creating the sweep layout. The write
// is atomic (temp + rename), and an existing plan is only accepted when
// its fingerprint matches — resuming the same sweep is a no-op, while
// pointing a coordinator at a directory holding a *different* sweep is
// an error rather than silent cross-contamination.
func WritePlan(dir string, p *Plan) error {
	if err := InitDir(dir); err != nil {
		return err
	}
	if existing, err := ReadPlan(dir); err == nil {
		if existing.Fingerprint != p.Fingerprint {
			return fmt.Errorf("sweepd: %s already holds a different sweep (plan fingerprint %s, want %s); use a fresh directory",
				dir, existing.Fingerprint, p.Fingerprint)
		}
		return nil
	} else if !os.IsNotExist(err) {
		return err
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return fmt.Errorf("sweepd: marshal plan: %w", err)
	}
	data = append(data, '\n')
	tmp := filepath.Join(dir, planName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("sweepd: write plan: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, planName)); err != nil {
		return fmt.Errorf("sweepd: write plan: %w", err)
	}
	return nil
}

// ReadPlan loads and verifies dir's plan. A missing plan file returns an
// error satisfying os.IsNotExist, so workers can poll for a coordinator
// that has not planned yet.
func ReadPlan(dir string) (*Plan, error) {
	data, err := os.ReadFile(filepath.Join(dir, planName))
	if err != nil {
		return nil, err
	}
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("sweepd: parse plan: %w", err)
	}
	if p.V != PlanV {
		return nil, fmt.Errorf("sweepd: plan version v%d, want v%d", p.V, PlanV)
	}
	if got := p.fingerprint(); got != p.Fingerprint {
		return nil, fmt.Errorf("sweepd: plan fingerprint mismatch (file says %s, content hashes to %s)",
			p.Fingerprint, got)
	}
	return &p, nil
}
