package sweepd

import (
	"math"
	"strings"
	"testing"
	"time"
)

// TestEtaForOverflowClamp pins the float→Duration overflow behavior of
// the coordinator's ETA extrapolation: a near-zero completion rate must
// clamp to the -1 sentinel (rendered "?") instead of converting an
// out-of-range float64 to int64, which Go does not define to saturate.
func TestEtaForOverflowClamp(t *testing.T) {
	// One cell done after an hour, with enough remaining cells that the
	// extrapolation exceeds time.Duration's ~292-year range.
	if got := etaFor(1, math.MaxInt32, 300_000*time.Hour); got != -1 {
		t.Errorf("overflowing ETA = %v, want -1 sentinel", got)
	}

	// The exact boundary: remaining/rate*1e9 lands right around
	// MaxInt64. Just below must stay finite and positive; at or above
	// must clamp.
	const maxSec = float64(math.MaxInt64) / float64(time.Second) // ~9.22e9 s
	elapsed := time.Hour
	rate := 1.0 / elapsed.Seconds()
	below := int(maxSec*rate) - 1 // remaining cells just under the limit
	if got := etaFor(1, below, elapsed); got < 0 {
		t.Errorf("in-range ETA (remaining=%d) = %v, want non-negative", below, got)
	}
	above := int(maxSec*rate) + 1
	if got := etaFor(1, above, elapsed); got != -1 {
		t.Errorf("boundary ETA (remaining=%d) = %v, want -1 sentinel", above, got)
	}

	// No measurable rate yet.
	if got := etaFor(0, 100, time.Minute); got != -1 {
		t.Errorf("zero-rate ETA = %v, want -1", got)
	}
	if got := etaFor(5, 100, 0); got != -1 {
		t.Errorf("zero-elapsed ETA = %v, want -1", got)
	}

	// Sane mid-range extrapolation: 10 cells in 10s, 50 remaining → 50s.
	if got := etaFor(10, 50, 10*time.Second); got != 50*time.Second {
		t.Errorf("ETA = %v, want 50s", got)
	}
}

// TestProgressRendersUnknownETA: the -1 sentinel renders as "?" in the
// streamed progress line.
func TestProgressRendersUnknownETA(t *testing.T) {
	p := Progress{CellsDone: 1, CellsTotal: 10, ShardsTotal: 4, Elapsed: time.Minute, ETA: -1}
	if s := p.String(); !strings.Contains(s, "eta ?") {
		t.Errorf("progress %q does not render unknown ETA as ?", s)
	}
	p.ETA = 90 * time.Second
	if s := p.String(); !strings.Contains(s, "eta 1m30s") {
		t.Errorf("progress %q does not render finite ETA", s)
	}
}
