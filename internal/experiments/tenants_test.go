package experiments

import (
	"fmt"
	"strings"
	"testing"

	"pmutrust/internal/machine"
	"pmutrust/internal/results"
	"pmutrust/internal/sampling"
)

// TestTenantsTable: the headline acceptance properties of the scheduling
// table — deterministic at any worker count and under the self-checking
// EngineBoth mode, with the n=1 column exactly matching the unscheduled
// accuracy cells.
func TestTenantsTable(t *testing.T) {
	counts := []int{1, 2, 4}
	render := func(parallel int, engine sampling.EngineMode) (string, []TenantMeasurement) {
		r := NewRunner(SmallScale(), 42)
		r.Parallel = parallel
		r.Engine = engine
		tb, ms, err := r.RunTenants(counts, 0)
		if err != nil {
			t.Fatal(err)
		}
		return tb.String(), ms
	}

	t1, ms := render(1, sampling.EngineFast)
	t8, _ := render(8, sampling.EngineFast)
	if t1 != t8 {
		t.Fatalf("table differs across worker counts:\n%s\nvs\n%s", t1, t8)
	}
	if !testing.Short() {
		tBoth, _ := render(4, sampling.EngineBoth)
		if t1 != tBoth {
			t.Fatalf("table differs under EngineBoth:\n%s\nvs\n%s", t1, tBoth)
		}
	}
	for _, mach := range machine.All() {
		if !strings.Contains(t1, mach.Name) {
			t.Errorf("table lacks machine %s:\n%s", mach.Name, t1)
		}
	}

	// Multi-tenant supported cells must have been scheduled (switches
	// recorded); single-tenant cells must not carry Sched stats.
	for _, m := range ms {
		if !m.Supported {
			continue
		}
		if m.Tenants == 1 {
			if m.Sched != nil {
				t.Errorf("%s/%s/%s: single-tenant cell has Sched stats", m.Workload, m.Machine, m.Key)
			}
			continue
		}
		if m.Sched == nil || m.Sched.Switches == 0 {
			t.Errorf("%s/%s/%s: multi-tenant cell unscheduled (%+v)", m.Workload, m.Machine, m.Key, m.Sched)
		}
	}
}

// TestTenantsBaselineMatch: the n=1 cell is collected by the unscheduled
// sampling path with the same derived seeds as the plain accuracy
// measurement, so the two values must be identical — not close, equal.
func TestTenantsBaselineMatch(t *testing.T) {
	r := NewRunner(SmallScale(), 42)
	specs := tenantWorkloads()
	if testing.Short() {
		// The property is seed-derivation equality, identical for every
		// workload; one suffices for the fast (and race) tier.
		specs = specs[:1]
	}
	for _, spec := range specs {
		for _, mach := range machine.All() {
			for _, m := range tenantMethods() {
				base, err := r.Measure(spec, mach, m)
				if err != nil {
					t.Fatal(err)
				}
				tn, err := r.MeasureTenants(spec, mach, m, 1, 0, 0)
				if err != nil {
					t.Fatal(err)
				}
				if tn.Err != base.Err || tn.Samples != base.Samples {
					t.Errorf("%s/%s/%s: n=1 cell (err %v, samples %d) != baseline (err %v, samples %d)",
						spec.Name, mach.Name, m.Key, tn.Err, tn.Samples, base.Err, base.Samples)
				}
			}
		}
	}
}

// TestTenantsTimesliceTable: the timeslice sweep renders and shorter
// slices schedule strictly more switches for the same tenant count.
func TestTenantsTimesliceTable(t *testing.T) {
	if testing.Short() {
		// Shape/monotonicity only — no concurrency beyond what
		// TestTenantsTable already exercises; skip in the fast tier.
		t.Skip("timeslice sweep is a default-tier test")
	}
	r := NewRunner(SmallScale(), 42)
	tb, ms, err := r.RunTenantsTimeslice(0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.String(), "ts=4000") {
		t.Errorf("table lacks timeslice column:\n%s", tb)
	}
	byCell := make(map[string]map[uint64]uint64) // workload/machine/method -> ts -> switches
	for _, m := range ms {
		if m.Sched == nil {
			continue
		}
		cell := m.Workload + "/" + m.Machine + "/" + m.Method
		if byCell[cell] == nil {
			byCell[cell] = make(map[uint64]uint64)
		}
		// Recover the timeslice from the synthetic key (tn-n04-ts16000-…).
		var n int
		var ts uint64
		if _, err := fmt.Sscanf(m.Key, "tn-n%02d-ts%05d", &n, &ts); err != nil {
			t.Fatalf("unparseable key %q: %v", m.Key, err)
		}
		byCell[cell][ts] = m.Sched.Switches
	}
	for cell, byTS := range byCell {
		if byTS[4000] <= byTS[64000] {
			t.Errorf("%s: %d switches at ts=4000 <= %d at ts=64000", cell, byTS[4000], byTS[64000])
		}
	}
}

// TestTenantsStoreResume: tenant cells are store-addressable like every
// other sweep — a warm resume re-measures nothing and renders
// byte-identically.
func TestTenantsStoreResume(t *testing.T) {
	path := t.TempDir() + "/tenants.jsonl"
	st, err := results.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(SmallScale(), 42)
	r.Store = st
	t1, _, err := r.RunTenants([]int{1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cold := r.StoreStats()
	if cold.Measured == 0 || cold.Cached != 0 {
		t.Fatalf("cold run stats: %+v", cold)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := results.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	r2 := NewRunner(SmallScale(), 42)
	r2.Store = st2
	t2, _, err := r2.RunTenants([]int{1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	warm := r2.StoreStats()
	if warm.Measured != 0 || warm.Cached != cold.Measured {
		t.Fatalf("warm run stats: %+v (cold %+v)", warm, cold)
	}
	if t1.String() != t2.String() {
		t.Fatalf("resumed table differs:\n%s\nvs\n%s", t1, t2)
	}
}

// TestTenantKeySelfSorting: zero-padded keys order by (count, timeslice)
// lexically, and the format is pinned for pmureport's "tn-" routing.
func TestTenantKeySelfSorting(t *testing.T) {
	if TenantKey(2, 16000, "classic") >= TenantKey(10, 16000, "classic") {
		t.Error("count ordering broken")
	}
	if TenantKey(4, 4000, "classic") >= TenantKey(4, 64000, "classic") {
		t.Error("timeslice ordering broken")
	}
	if TenantKey(4, 16000, "classic") != "tn-n04-ts16000-classic" {
		t.Errorf("key format drifted: %s", TenantKey(4, 16000, "classic"))
	}
}
