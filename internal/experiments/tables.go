package experiments

import (
	"fmt"

	"pmutrust/internal/analysis"
	"pmutrust/internal/lbr"
	"pmutrust/internal/machine"
	"pmutrust/internal/profile"
	"pmutrust/internal/report"
	"pmutrust/internal/sampling"
	"pmutrust/internal/stats"
	"pmutrust/internal/workloads"
)

// TableResult pairs the rendered table with the raw measurements so tests
// can assert the paper's qualitative findings on the same data users see.
type TableResult struct {
	Table *report.Table
	// Cells[workload][machine][method] is the measured accuracy error;
	// -1 marks unsupported combinations.
	Cells map[string]map[string]map[string]float64
	// Measurements holds the full per-cell results in Grid.Cells order
	// (workload, then machine, then method) — the machine-readable form
	// behind the rendered table.
	Measurements []Measurement
}

// Get returns the error for (workload, machine, method key); -1 when
// missing or unsupported.
func (tr *TableResult) Get(workload, mach, method string) float64 {
	if m1, ok := tr.Cells[workload]; ok {
		if m2, ok := m1[mach]; ok {
			if v, ok := m2[method]; ok {
				return v
			}
		}
	}
	return -1
}

// runMatrix measures every (workload, machine, method) combination
// through the parallel sweep layer — store-aware when the Runner has a
// results store attached — and renders one row per workload × machine,
// one column per method: the layout of the paper's Tables 1 and 2.
// Rendering walks the measurements in canonical grid order, so the table
// is identical at any worker count and whether cells were measured or
// served from the store.
func (r *Runner) runMatrix(title string, specs []workloads.Spec, machines []machine.Machine, methods []sampling.Method) (*TableResult, error) {
	ms, err := r.sweep(Grid{Workloads: specs, Machines: machines, Methods: methods})
	if err != nil {
		return nil, err
	}

	headers := []string{"workload", "machine"}
	for _, m := range methods {
		headers = append(headers, m.Key)
	}
	t := report.New(title, headers...)
	tr := &TableResult{Table: t, Cells: make(map[string]map[string]map[string]float64), Measurements: ms}

	i := 0
	for _, spec := range specs {
		tr.Cells[spec.Name] = make(map[string]map[string]float64)
		for _, mach := range machines {
			tr.Cells[spec.Name][mach.Name] = make(map[string]float64)
			row := []string{spec.Name, mach.Name}
			for _, m := range methods {
				meas := ms[i]
				i++
				tr.Cells[spec.Name][mach.Name][m.Key] = meas.Err
				row = append(row, report.Fmt(meas.Err))
			}
			t.AddRow(row...)
		}
	}
	return tr, nil
}

// RunTable1 reproduces Table 1: accuracy errors of all sampling methods on
// the four designated kernels, per machine (lower is better).
func (r *Runner) RunTable1() (*TableResult, error) {
	tr, err := r.runMatrix(
		"Table 1: sampling-method accuracy errors on kernels (lower is better)",
		workloads.Kernels(), machine.All(), sampling.Registry())
	if err == nil {
		tr.Table.Note = "\"-\" = method unsupported on machine (no LBR/PEBS on Magny-Cours, no PDIR on Westmere: lowered or skipped per §4.2)."
	}
	return tr, err
}

// RunTable2 reproduces Table 2: accuracy errors per machine/application.
func (r *Runner) RunTable2() (*TableResult, error) {
	tr, err := r.runMatrix(
		"Table 2: errors per machine/application (lower is better)",
		workloads.Apps(), machine.All(), sampling.Registry())
	if err == nil {
		tr.Table.Note = "Applications: SPEC CPU2006 enterprise-proxy subset analogs + FullCMS analog (see DESIGN.md for the substitution)."
	}
	return tr, err
}

// RunTable3 renders the method taxonomy (the paper's appendix Table 3).
// It is a documentation table: no measurement involved.
func RunTable3() *report.Table {
	t := report.New("Table 3: overview of reviewed sampling methods",
		"method", "event", "mechanism", "period", "randomization", "comment", "drawback")
	for _, m := range sampling.Registry() {
		rand := "no"
		if m.Randomize {
			rand = "yes"
		}
		t.AddRow(m.Key, m.Event.String(), m.Precision.String(),
			m.PeriodKind.String(), rand, m.Comment, m.Drawback)
	}
	return t
}

// FactorsResult summarizes the improvement-factor claims of §5.1/§5.2.
type FactorsResult struct {
	Table *report.Table
	// KernelLBROverClassic holds per kernel × Intel machine the factor by
	// which LBR improves on classic ("up to 18x, 3-6x on average").
	KernelLBROverClassic []float64
	// AppLBROverClassic and AppLBROverPrecise are the Table 2 derived
	// factors ("4-5x over classic, 1-10x over precise").
	AppLBROverClassic, AppLBROverPrecise []float64
}

// RunFactors derives the paper's improvement factors from the Table 1 and
// Table 2 matrices.
func (r *Runner) RunFactors(t1, t2 *TableResult) *FactorsResult {
	fr := &FactorsResult{}
	intel := []string{"Westmere", "IvyBridge"}

	t := report.New("Improvement factors (derived from Tables 1 and 2)",
		"scope", "comparison", "geomean", "min", "max")

	collect := func(tr *TableResult, specs []workloads.Spec, base, better string) []float64 {
		var out []float64
		for _, spec := range specs {
			for _, mach := range intel {
				b := tr.Get(spec.Name, mach, base)
				v := tr.Get(spec.Name, mach, better)
				if b > 0 && v > 0 {
					out = append(out, analysis.ImprovementFactor(b, v))
				}
			}
		}
		return out
	}

	fr.KernelLBROverClassic = collect(t1, workloads.Kernels(), "classic", "lbr")
	fr.AppLBROverClassic = collect(t2, workloads.Apps(), "classic", "lbr")
	fr.AppLBROverPrecise = collect(t2, workloads.Apps(), "precise", "lbr")

	addRow := func(scope, cmp string, xs []float64) {
		if len(xs) == 0 {
			t.AddRow(scope, cmp, "-", "-", "-")
			return
		}
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		t.AddRow(scope, cmp, report.FmtFactor(stats.GeoMean(xs)),
			report.FmtFactor(lo), report.FmtFactor(hi))
	}
	addRow("kernels (Intel)", "lbr vs classic", fr.KernelLBROverClassic)
	addRow("apps (Intel)", "lbr vs classic", fr.AppLBROverClassic)
	addRow("apps (Intel)", "lbr vs precise", fr.AppLBROverPrecise)
	t.Note = "Paper: LBR reduces kernel errors up to 18x (3-6x average); on apps 4-5x over classic and 1-10x over precise."
	fr.Table = t
	return fr
}

// IPFixResult is the §5.2 side experiment: on FullCMS, a precisely
// distributed event with the LBR IP+1 offset correction (but not full LBR
// profiles) improves ~5x over classic.
type IPFixResult struct {
	Table                        *report.Table
	ClassicErr, FixedErr, Factor float64
}

// RunIPFix measures the FullCMS IP-fix side experiment on Ivy Bridge.
func (r *Runner) RunIPFix() (*IPFixResult, error) {
	spec, err := workloads.ByName("FullCMS")
	if err != nil {
		return nil, err
	}
	ivb := machine.IvyBridge()
	classic, err := sampling.MethodByKey("classic")
	if err != nil {
		return nil, err
	}
	fixed, err := sampling.MethodByKey("pdir+ipfix")
	if err != nil {
		return nil, err
	}
	mc, err := r.Measure(spec, ivb, classic)
	if err != nil {
		return nil, err
	}
	mf, err := r.Measure(spec, ivb, fixed)
	if err != nil {
		return nil, err
	}
	res := &IPFixResult{
		ClassicErr: mc.Err,
		FixedErr:   mf.Err,
		Factor:     analysis.ImprovementFactor(mc.Err, mf.Err),
	}
	t := report.New("FullCMS on Ivy Bridge: precise-distribution + LBR IP+1 fix vs classic (§5.2)",
		"method", "error", "improvement")
	t.AddRow("classic", report.Fmt(mc.Err), "1.0x")
	t.AddRow("pdir+ipfix", report.Fmt(mf.Err), report.FmtFactor(res.Factor))
	t.Note = "Paper reports ~5x average per-basic-block accuracy improvement for this combination."
	res.Table = t
	return res, nil
}

// RankingResult is the §5.2 ordering observation: no method reproduces the
// FullCMS top-10 function ranking exactly.
type RankingResult struct {
	Table *report.Table
	// ExactByMethod maps method key to whether the top-10 matched exactly
	// on any machine that supports it.
	ExactByMethod map[string]bool
}

// RunRanking evaluates top-10 function-ranking agreement for FullCMS
// across all methods and machines.
func (r *Runner) RunRanking() (*RankingResult, error) {
	spec, err := workloads.ByName("FullCMS")
	if err != nil {
		return nil, err
	}
	p := r.Workload(spec)
	reference, err := r.Reference(spec)
	if err != nil {
		return nil, err
	}
	refRank := analysis.RefFunctionRanking(reference)

	t := report.New("FullCMS top-10 function ranking agreement (§5.2)",
		"machine", "method", "exact order", "set overlap", "kendall tau")
	res := &RankingResult{Table: t, ExactByMethod: make(map[string]bool)}

	for _, mach := range machine.All() {
		for _, m := range sampling.Registry() {
			resolved, ok := sampling.Resolve(m, mach)
			if !ok {
				continue
			}
			run, err := sampling.Collect(p, mach, m, sampling.Options{
				PeriodBase: r.Scale.PeriodBase,
				Seed:       r.Seed,
				Engine:     r.Engine,
				Telemetry:  r.Telemetry,
			})
			if err != nil {
				return nil, err
			}
			var bp *profile.BlockProfile
			if resolved.UseLBRStack {
				bp, _, err = lbr.BuildProfile(p, run)
				if err != nil {
					return nil, err
				}
			} else {
				bp = profile.FromSamples(p, run)
			}
			ra := analysis.CompareRankings(bp.ToFunctions().Ranking(), refRank, 10)
			exact := "no"
			if ra.ExactOrder {
				exact = "YES"
				res.ExactByMethod[m.Key] = true
			}
			t.AddRow(mach.Name, m.Key, exact,
				fmt.Sprintf("%.0f%%", 100*ra.SetOverlap),
				fmt.Sprintf("%.2f", ra.KendallTau))
		}
	}
	t.Note = "Paper: none of the methods produces the top 10 FullCMS functions in the right order."
	return res, nil
}
