package experiments

import (
	"fmt"

	"pmutrust/internal/analysis"
	"pmutrust/internal/cpu"
	"pmutrust/internal/lbr"
	"pmutrust/internal/machine"
	"pmutrust/internal/pmu"
	"pmutrust/internal/profile"
	"pmutrust/internal/report"
	"pmutrust/internal/sampling"
	"pmutrust/internal/stats"
	"pmutrust/internal/workloads"
)

// Ablations probe the design choices DESIGN.md §5 calls out. Each returns
// a rendered table plus the raw series so tests can assert monotonicity
// claims.

// SweepPoint is one (x, err) pair of an ablation sweep.
type SweepPoint struct {
	X   float64
	Err float64
}

// measureWith runs one custom-configured measurement: workload on machine
// with an explicitly built PMU config, bypassing the method registry. The
// profile is built as plain EBS unless useLBR is set.
func (r *Runner) measureWith(spec workloads.Spec, mach machine.Machine, cfg pmu.Config, m sampling.Method, useLBR bool) (float64, error) {
	p := r.Workload(spec)
	reference, err := r.Reference(spec)
	if err != nil {
		return 0, err
	}
	unit := pmu.New(cfg)
	eng := cpu.EngineFast
	if r.Engine == sampling.EngineInterp {
		eng = cpu.EngineInterp
	}
	cpuRes, runFailure := cpu.RunEngine(p, mach.CPU, unit, 0, eng)
	if r.Engine == sampling.EngineBoth {
		// Self-check against the interpreter through the same comparison
		// protocol Collect uses for the registry paths (error parity,
		// then every observable including the cpu.Result and the partial
		// streams of identically failing runs).
		ref := pmu.New(cfg)
		refRes, refErr := cpu.Run(p, mach.CPU, ref, 0)
		a := &sampling.Run{Machine: mach, Method: m, Period: cfg.Period, CPU: refRes,
			Samples: ref.Samples(), Overflows: ref.Overflows, DroppedPMIs: ref.DroppedPMIs}
		b := &sampling.Run{Machine: mach, Method: m, Period: cfg.Period, CPU: cpuRes,
			Samples: unit.Samples(), Overflows: unit.Overflows, DroppedPMIs: unit.DroppedPMIs}
		if err := sampling.DiffOutcome(a, refErr, b, runFailure); err != nil {
			return 0, fmt.Errorf("engine divergence on %s/%s (custom config): %w", spec.Name, mach.Name, err)
		}
	}
	if runFailure != nil {
		return 0, runFailure
	}
	run := &sampling.Run{
		Machine: mach,
		Method:  m,
		Period:  cfg.Period,
		Samples: unit.Samples(),
	}
	var bp *profile.BlockProfile
	if useLBR {
		bp, _, err = lbr.BuildProfile(p, run)
		if err != nil {
			return 0, err
		}
	} else {
		bp = profile.FromSamples(p, run)
	}
	return analysis.AccuracyError(bp, reference)
}

// AblateSkid (A1) sweeps the PMI delivery latency for classic sampling on
// the Latency-Biased kernel: the skid-as-delivery-time model predicts the
// error grows with skid until samples fully detach from their triggers.
func (r *Runner) AblateSkid() (*report.Table, []SweepPoint, error) {
	spec, err := workloads.ByName("LatencyBiased")
	if err != nil {
		return nil, nil, err
	}
	mach := machine.IvyBridge()
	classic, err := sampling.MethodByKey("classic")
	if err != nil {
		return nil, nil, err
	}
	t := report.New("A1: classic-sampling error vs PMI skid (LatencyBiased, IvyBridge core)",
		"skid (cycles)", "error")
	skids := []uint64{0, 5, 15, 30, 60, 120, 200}
	series := make([]SweepPoint, len(skids))
	err = r.forEach(len(skids), r.opts(), func(i int) error {
		cfg := pmu.Config{
			Event:      pmu.EvInstRetired,
			Precision:  pmu.Imprecise,
			Period:     r.Scale.PeriodBase,
			Rand:       pmu.RandSoftware, // isolate skid from resonance
			SkidCycles: skids[i],
			Seed:       r.Seed,
		}
		e, err := r.measureWith(spec, mach, cfg, classic, false)
		series[i] = SweepPoint{X: float64(skids[i]), Err: e}
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	for _, pt := range series {
		t.AddRow(fmt.Sprintf("%d", uint64(pt.X)), report.Fmt(pt.Err))
	}
	t.Note = "Skid reattaches samples to whatever stalls at PMI delivery; larger skid = stronger shadow bias."
	return t, series, nil
}

// AblatePeriod (A2) sweeps period size and primality for precise sampling
// on the CallChain kernel (iteration length 100): round periods that share
// a factor with the loop length resonate; primes do not.
func (r *Runner) AblatePeriod() (*report.Table, map[string][]SweepPoint, error) {
	spec, err := workloads.ByName("CallChain")
	if err != nil {
		return nil, nil, err
	}
	mach := machine.IvyBridge()
	precise, err := sampling.MethodByKey("precise")
	if err != nil {
		return nil, nil, err
	}
	t := report.New("A2: precise-sampling error vs period (CallChain, IvyBridge)",
		"base period", "round err", "prime err")
	bases := []uint64{500, 1000, 2000, 3000, 4000, 5000}
	// Job index interleaves (base, round|prime), primality innermost.
	errs := make([]float64, 2*len(bases))
	err = r.forEach(len(errs), r.opts(), func(i int) error {
		bi, pi := splitIdx(i, 2)
		base := bases[bi]
		period := base
		if pi == 1 {
			period = stats.NextPrime(base)
		}
		cfg := pmu.Config{
			Event:     pmu.EvInstRetired,
			Precision: pmu.PrecisePEBS,
			Period:    period,
			Rand:      pmu.RandNone,
			Seed:      r.Seed,
		}
		e, err := r.measureWith(spec, mach, cfg, precise, false)
		errs[i] = e
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	series := map[string][]SweepPoint{}
	for i, base := range bases {
		round, prime := errs[flatIdx(i, 0, 2)], errs[flatIdx(i, 1, 2)]
		series["round"] = append(series["round"], SweepPoint{X: float64(base), Err: round})
		series["prime"] = append(series["prime"], SweepPoint{X: float64(base), Err: prime})
		t.AddRow(fmt.Sprintf("%d", base), report.Fmt(round), report.Fmt(prime))
	}
	t.Note = "CallChain retires exactly 100 instructions per iteration; round periods divisible by common factors resonate."
	return t, series, nil
}

// AblateLBRDepth (A3) sweeps the LBR stack depth on G4Box: deeper stacks
// observe more segments per PMI, cutting estimator variance.
func (r *Runner) AblateLBRDepth() (*report.Table, []SweepPoint, error) {
	spec, err := workloads.ByName("G4Box")
	if err != nil {
		return nil, nil, err
	}
	mach := machine.IvyBridge()
	lbrM, err := sampling.MethodByKey("lbr")
	if err != nil {
		return nil, nil, err
	}
	t := report.New("A3: LBR-method error vs stack depth (G4Box, IvyBridge)",
		"LBR depth", "error")
	depths := []int{4, 8, 16, 32, 64}
	series := make([]SweepPoint, len(depths))
	err = r.forEach(len(depths), r.opts(), func(i int) error {
		cfg := pmu.Config{
			Event:      pmu.EvBrTaken,
			Precision:  pmu.Imprecise,
			Period:     sampling.EffectivePeriod(lbrM, r.Scale.PeriodBase),
			Rand:       pmu.RandNone,
			SkidCycles: mach.SkidCycles,
			CaptureLBR: true,
			LBRDepth:   depths[i],
			Seed:       r.Seed,
		}
		e, err := r.measureWith(spec, mach, cfg, lbrM, true)
		series[i] = SweepPoint{X: float64(depths[i]), Err: e}
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	for _, pt := range series {
		t.AddRow(fmt.Sprintf("%d", int(pt.X)), report.Fmt(pt.Err))
	}
	t.Note = "16 is the Westmere/Ivy Bridge hardware depth; 32 arrives with Skylake (the paper's 'valuable single resource', §6.2)."
	return t, series, nil
}

// AblateBurst (A4) sweeps the core retire width for PEBS vs PDIR on the
// Latency-Biased kernel: wider retirement means burstier streams, which
// hurts the armed PEBS capture but not PDIR — the root cause the paper
// conjectures for CallChain ("out-of-order clustering of uops ... retired
// in bursts", §5.1).
func (r *Runner) AblateBurst() (*report.Table, map[string][]SweepPoint, error) {
	spec, err := workloads.ByName("LatencyBiased")
	if err != nil {
		return nil, nil, err
	}
	t := report.New("A4: PEBS vs PDIR error vs retire width (LatencyBiased)",
		"retire width", "pebs err", "pdir err")
	m, err := sampling.MethodByKey("precise+prime+rand")
	if err != nil {
		return nil, nil, err
	}
	widths := []int{1, 2, 4, 6, 8}
	precisions := []pmu.Precision{pmu.PrecisePEBS, pmu.PreciseDist}
	// Job index interleaves (width, precision), precision innermost.
	errs := make([]float64, 2*len(widths))
	err = r.forEach(len(errs), r.opts(), func(i int) error {
		wi, pi := splitIdx(i, 2)
		mach := machine.IvyBridge()
		mach.CPU.RetireWidth = widths[wi]
		mach.CPU.DispatchWidth = widths[wi]
		cfg := pmu.Config{
			Event:     pmu.EvInstRetired,
			Precision: precisions[pi],
			Period:    stats.NextPrime(r.Scale.PeriodBase),
			Rand:      pmu.RandSoftware,
			Seed:      r.Seed,
		}
		e, err := r.measureWith(spec, mach, cfg, m, false)
		errs[i] = e
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	series := map[string][]SweepPoint{}
	for i, width := range widths {
		pebs, pdir := errs[flatIdx(i, 0, 2)], errs[flatIdx(i, 1, 2)]
		series[pmu.PrecisePEBS.String()] = append(series[pmu.PrecisePEBS.String()], SweepPoint{X: float64(width), Err: pebs})
		series[pmu.PreciseDist.String()] = append(series[pmu.PreciseDist.String()], SweepPoint{X: float64(width), Err: pdir})
		t.AddRow(fmt.Sprintf("%d", width), report.Fmt(pebs), report.Fmt(pdir))
	}
	t.Note = "PEBS cannot capture occurrences inside the arming burst; PDIR has no arming step."
	return t, series, nil
}

// AblateRandAmp (A5) sweeps the software randomization amplitude for
// precise sampling on CallChain: tiny amplitudes fail to break resonance,
// large ones are no better than moderate ones.
func (r *Runner) AblateRandAmp() (*report.Table, []SweepPoint, error) {
	spec, err := workloads.ByName("CallChain")
	if err != nil {
		return nil, nil, err
	}
	mach := machine.IvyBridge()
	m, err := sampling.MethodByKey("precise+rand")
	if err != nil {
		return nil, nil, err
	}
	t := report.New("A5: precise-sampling error vs randomization amplitude (CallChain, IvyBridge)",
		"amplitude (fraction of period)", "error")
	base := r.Scale.PeriodBase
	fracs := []float64{0, 0.001, 0.01, 0.05, 0.125, 0.25, 0.5}
	series := make([]SweepPoint, len(fracs))
	err = r.forEach(len(fracs), r.opts(), func(i int) error {
		frac := fracs[i]
		amp := uint64(float64(base) * frac)
		rand := pmu.RandSoftware
		if amp == 0 {
			rand = pmu.RandNone
			amp = 1
		}
		cfg := pmu.Config{
			Event:     pmu.EvInstRetired,
			Precision: pmu.PrecisePEBS,
			Period:    base,
			Rand:      rand,
			RandAmp:   amp,
			Seed:      r.Seed,
		}
		e, err := r.measureWith(spec, mach, cfg, m, false)
		series[i] = SweepPoint{X: frac, Err: e}
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	for _, pt := range series {
		t.AddRow(fmt.Sprintf("%.3f", pt.X), report.Fmt(pt.Err))
	}
	t.Note = "Resonance breaks once the jitter spans a few loop iterations; beyond that randomization buys nothing."
	return t, series, nil
}
