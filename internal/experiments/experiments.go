// Package experiments is the reproduction harness: it wires workloads,
// machines, sampling methods, profiles and the accuracy metric into the
// paper's experiments, and renders result tables with the same structure
// as the originals.
//
// Every table and figure of the paper maps to one Run* function here (see
// the per-experiment index in DESIGN.md); cmd/pmubench and bench_test.go
// are thin callers.
package experiments

import (
	"fmt"

	"pmutrust/internal/analysis"
	"pmutrust/internal/lbr"
	"pmutrust/internal/machine"
	"pmutrust/internal/profile"
	"pmutrust/internal/program"
	"pmutrust/internal/ref"
	"pmutrust/internal/sampling"
	"pmutrust/internal/stats"
	"pmutrust/internal/workloads"
)

// Scale bundles the knobs that shrink the paper's hardware-scale
// experiments onto the simulator (see DESIGN.md §2 "Scaling"). The ratio
// of workload size to sampling period — and hence samples per run — is
// kept in the same regime as the paper's.
type Scale struct {
	// Name identifies the scale in logs.
	Name string
	// Workload multiplies each workload's base iteration count.
	Workload float64
	// PeriodBase is the sampling period in instructions before
	// prime/randomization adjustments (the paper uses 2,000,000).
	PeriodBase uint64
	// Repeats is how many times each measurement runs with different
	// seeds; errors are averaged (the paper measures each kernel five
	// times, §4.1).
	Repeats int
}

// PaperScale is the default CLI/bench scale: ~10-50M instructions per
// workload, a few thousand samples per run.
func PaperScale() Scale {
	return Scale{Name: "paper", Workload: 8, PeriodBase: 4000, Repeats: 3}
}

// SmallScale keeps unit and integration tests fast.
func SmallScale() Scale {
	return Scale{Name: "small", Workload: 1, PeriodBase: 2000, Repeats: 1}
}

// Measurement is one (workload, machine, method) accuracy result.
type Measurement struct {
	Workload string
	Machine  string
	Method   string
	// Err is the paper's accuracy error, averaged over repeats; negative
	// when the machine does not support the method.
	Err float64
	// PerRepeat holds the individual repeat errors.
	PerRepeat []float64
	// Samples is the sample count of the last repeat.
	Samples int
	// Supported reports whether the machine can run the method.
	Supported bool
}

// Runner caches built workloads and reference profiles across experiments
// (reference collection dominates otherwise).
type Runner struct {
	Scale Scale
	// Seed is the base seed; repeat r of any measurement uses Seed+r.
	Seed uint64

	progs map[string]*program.Program
	refs  map[string]*ref.Profile
}

// NewRunner creates a runner at the given scale.
func NewRunner(s Scale, seed uint64) *Runner {
	return &Runner{
		Scale: s,
		Seed:  seed,
		progs: make(map[string]*program.Program),
		refs:  make(map[string]*ref.Profile),
	}
}

// Workload returns the built program for a workload spec, cached.
func (r *Runner) Workload(spec workloads.Spec) *program.Program {
	if p, ok := r.progs[spec.Name]; ok {
		return p
	}
	p := spec.Build(r.Scale.Workload)
	r.progs[spec.Name] = p
	return p
}

// Reference returns the exact profile for a workload, cached.
func (r *Runner) Reference(spec workloads.Spec) (*ref.Profile, error) {
	if rp, ok := r.refs[spec.Name]; ok {
		return rp, nil
	}
	rp, err := ref.Collect(r.Workload(spec))
	if err != nil {
		return nil, fmt.Errorf("experiments: reference for %s: %w", spec.Name, err)
	}
	r.refs[spec.Name] = rp
	return rp, nil
}

// MeasureOnce runs one (workload, machine, method) measurement with one
// seed and returns the accuracy error and the sample count.
func (r *Runner) MeasureOnce(spec workloads.Spec, mach machine.Machine, m sampling.Method, seed uint64) (float64, int, error) {
	p := r.Workload(spec)
	reference, err := r.Reference(spec)
	if err != nil {
		return 0, 0, err
	}
	run, err := sampling.Collect(p, mach, m, sampling.Options{
		PeriodBase: r.Scale.PeriodBase,
		Seed:       seed,
	})
	if err != nil {
		return 0, 0, err
	}
	var bp *profile.BlockProfile
	if run.Method.UseLBRStack {
		bp, _, err = lbr.BuildProfile(p, run)
		if err != nil {
			return 0, 0, err
		}
	} else {
		bp = profile.FromSamples(p, run)
	}
	e, err := analysis.AccuracyError(bp, reference)
	if err != nil {
		return 0, 0, err
	}
	return e, len(run.Samples), nil
}

// Measure runs the configured number of repeats and averages.
func (r *Runner) Measure(spec workloads.Spec, mach machine.Machine, m sampling.Method) (Measurement, error) {
	meas := Measurement{
		Workload: spec.Name,
		Machine:  mach.Name,
		Method:   m.Key,
	}
	if _, ok := sampling.Resolve(m, mach); !ok {
		meas.Err = -1
		return meas, nil
	}
	meas.Supported = true
	var errs []float64
	for rep := 0; rep < r.Scale.Repeats; rep++ {
		e, n, err := r.MeasureOnce(spec, mach, m, r.Seed+uint64(rep)*0x9e37)
		if err != nil {
			return meas, err
		}
		errs = append(errs, e)
		meas.Samples = n
	}
	meas.PerRepeat = errs
	meas.Err = stats.Mean(errs)
	return meas, nil
}
