// Package experiments is the reproduction harness: it wires workloads,
// machines, sampling methods, profiles and the accuracy metric into the
// paper's experiments, and renders result tables with the same structure
// as the originals.
//
// Every table and figure of the paper maps to one Run* function here (see
// the per-experiment index in DESIGN.md); cmd/pmubench and bench_test.go
// are thin callers.
package experiments

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"pmutrust/internal/analysis"
	"pmutrust/internal/lbr"
	"pmutrust/internal/machine"
	"pmutrust/internal/profile"
	"pmutrust/internal/program"
	"pmutrust/internal/ref"
	"pmutrust/internal/results"
	"pmutrust/internal/sampling"
	"pmutrust/internal/stats"
	"pmutrust/internal/telemetry"
	"pmutrust/internal/workloads"
)

// Scale bundles the knobs that shrink the paper's hardware-scale
// experiments onto the simulator (see DESIGN.md §2 "Scaling"). The ratio
// of workload size to sampling period — and hence samples per run — is
// kept in the same regime as the paper's.
type Scale struct {
	// Name identifies the scale in logs.
	Name string
	// Workload multiplies each workload's base iteration count.
	Workload float64
	// PeriodBase is the sampling period in instructions before
	// prime/randomization adjustments (the paper uses 2,000,000).
	PeriodBase uint64
	// Repeats is how many times each measurement runs with different
	// seeds; errors are averaged (the paper measures each kernel five
	// times, §4.1).
	Repeats int
}

// PaperScale is the default CLI/bench scale: ~10-50M instructions per
// workload, a few thousand samples per run.
func PaperScale() Scale {
	return Scale{Name: "paper", Workload: 8, PeriodBase: 4000, Repeats: 3}
}

// SmallScale keeps unit and integration tests fast.
func SmallScale() Scale {
	return Scale{Name: "small", Workload: 1, PeriodBase: 2000, Repeats: 1}
}

// ScaleByName resolves a scale name ("paper", "small") to its parameter
// set. Distributed sweep plans persist only the name, so every process
// of a fleet resolves identical parameters through this single table —
// the CLIs use it too.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "paper":
		return PaperScale(), nil
	case "small":
		return SmallScale(), nil
	}
	return Scale{}, fmt.Errorf("experiments: unknown scale %q", name)
}

// Measurement is one (workload, machine, method) accuracy result.
type Measurement struct {
	Workload string `json:"workload"`
	Machine  string `json:"machine"`
	Method   string `json:"method"`
	// Err is the paper's accuracy error, averaged over successful
	// repeats; -1 when the machine does not support the method
	// (Supported false) or when no repeat succeeded (Failed true).
	Err float64 `json:"err"`
	// PerRepeat holds the individual repeat errors, in repeat order.
	PerRepeat []float64 `json:"per_repeat,omitempty"`
	// Samples is the sample count of the first successful repeat (repeat
	// seeds are derived from the cell identity, so this is deterministic
	// regardless of execution order or worker count).
	Samples int `json:"samples"`
	// Supported reports whether the machine can run the method.
	Supported bool `json:"supported"`
	// Failed reports that at least one repeat errored, or that the cell
	// never produced a result (e.g. abandoned by a sweep timeout); when
	// no repeat succeeded, Err is -1 so a dead cell can never read as
	// perfect accuracy.
	Failed bool `json:"failed,omitempty"`
}

// Runner caches built workloads and reference profiles across experiments
// (reference collection dominates otherwise). A Runner is safe for
// concurrent use: the caches are mutex-guarded with single-flight build
// semantics, so two workers asking for the same workload never build it
// twice, and every derived seed depends only on the cell identity — the
// same grid produces bit-identical results at any worker count.
type Runner struct {
	Scale Scale
	// Seed is the base seed. Repeat rep of a (workload, machine, method)
	// cell draws its seed from stats.DeriveSeed(Seed, workload, machine,
	// method, rep), giving every cell an independent, collision-free
	// stream that does not depend on sweep order.
	Seed uint64
	// Parallel is the default worker count for Sweep and the parallel
	// table runners; <= 0 means runtime.GOMAXPROCS(0).
	Parallel int
	// Timeout stops each sweep from dispatching new cells past the given
	// wall-clock deadline; cells already running finish (jobs are not
	// interruptible). 0 means none.
	Timeout time.Duration
	// Engine selects the execution engine for every measurement (default
	// sampling.EngineFast). The engines are bit-identical, so results —
	// and store fingerprints — do not depend on this; EngineBoth
	// self-checks each cell at twice the cost.
	Engine sampling.EngineMode
	// Store, when non-nil, makes the matrix experiments (Tables 1 and 2)
	// incremental: grid cells already present in the store are served
	// from it and newly measured cells are appended (see SweepCached).
	// Any results.Store backend works — a FileStore for single-file
	// resume, a DirStore merged view for distributed sweeps.
	Store results.Store
	// RefStore, when non-nil, memoizes ground-truth reference profiles
	// across processes: Reference serves a workload's profile from the
	// store when a valid record exists and appends freshly collected ones
	// (see refcache.go). It is a sidecar of Store — reference records use
	// the reserved results.RefMethod key and never mix with measurements.
	RefStore results.Store
	// Telemetry, when non-nil, receives engine counters from every
	// measurement, per-cell wall-time observations, and the ref/store
	// served-vs-measured splits. Nil disables instrumentation at no cost.
	Telemetry *telemetry.Sink

	mu    sync.Mutex
	progs map[string]*progEntry
	refs  map[string]*refEntry
	// storeStats accumulates the served/measured split across every
	// store-aware sweep (see sweep and StoreStats).
	storeStats SweepStats
	// refStats accumulates the served/collected split of reference
	// lookups (see RefStats).
	refStats SweepStats
}

// progEntry is a single-flight slot for one built workload: the first
// worker to claim it runs Build inside the Once, later workers block on
// the Once and reuse the result.
type progEntry struct {
	once sync.Once
	p    *program.Program
}

// refEntry is the single-flight slot for one reference profile.
type refEntry struct {
	once sync.Once
	rp   *ref.Profile
	err  error
}

// NewRunner creates a runner at the given scale.
func NewRunner(s Scale, seed uint64) *Runner {
	return &Runner{
		Scale: s,
		Seed:  seed,
		progs: make(map[string]*progEntry),
		refs:  make(map[string]*refEntry),
	}
}

// Workload returns the built program for a workload spec, cached.
// Concurrent calls for the same spec build it exactly once.
func (r *Runner) Workload(spec workloads.Spec) *program.Program {
	r.mu.Lock()
	e, ok := r.progs[spec.Name]
	if !ok {
		e = &progEntry{}
		r.progs[spec.Name] = e
	}
	r.mu.Unlock()
	e.once.Do(func() { e.p = spec.Build(r.Scale.Workload) })
	return e.p
}

// Reference returns the exact profile for a workload, cached. Concurrent
// calls for the same spec collect it exactly once; a collection error is
// cached too, so a broken workload fails fast on every later call. With
// a RefStore attached, the profile is served from the store when a valid
// memo exists and memoized into it otherwise (see refcache.go), so
// across processes each (workload, scale) reference is executed once
// per store lifetime instead of once per process.
func (r *Runner) Reference(spec workloads.Spec) (*ref.Profile, error) {
	r.mu.Lock()
	e, ok := r.refs[spec.Name]
	if !ok {
		e = &refEntry{}
		r.refs[spec.Name] = e
	}
	r.mu.Unlock()
	e.once.Do(func() {
		if rp, ok := r.refFromStore(spec); ok {
			e.rp = rp
			r.mu.Lock()
			r.refStats.Cached++
			r.mu.Unlock()
			r.Telemetry.CountRef(true)
			return
		}
		rp, err := ref.Collect(r.Workload(spec))
		if err != nil {
			e.err = fmt.Errorf("experiments: reference for %s: %w", spec.Name, err)
			return
		}
		e.rp = rp
		r.putRef(spec, rp)
		r.mu.Lock()
		r.refStats.Measured++
		r.mu.Unlock()
		r.Telemetry.CountRef(false)
	})
	return e.rp, e.err
}

// repeatSeed derives the seed for one repeat of one grid cell. It is a
// pure function of (base seed, cell identity, repeat), which is what
// makes sweep results independent of scheduling.
func (r *Runner) repeatSeed(spec workloads.Spec, mach machine.Machine, m sampling.Method, rep int) uint64 {
	return stats.DeriveSeed(r.Seed, spec.Name, mach.Name, m.Key, strconv.Itoa(rep))
}

// MeasureOnce runs one (workload, machine, method) measurement with one
// seed and returns the accuracy error and the sample count.
func (r *Runner) MeasureOnce(spec workloads.Spec, mach machine.Machine, m sampling.Method, seed uint64) (float64, int, error) {
	p := r.Workload(spec)
	reference, err := r.Reference(spec)
	if err != nil {
		return 0, 0, err
	}
	run, err := sampling.Collect(p, mach, m, sampling.Options{
		PeriodBase: r.Scale.PeriodBase,
		Seed:       seed,
		Engine:     r.Engine,
		Telemetry:  r.Telemetry,
	})
	if err != nil {
		return 0, 0, err
	}
	var bp *profile.BlockProfile
	if run.Method.UseLBRStack {
		bp, _, err = lbr.BuildProfile(p, run)
		if err != nil {
			return 0, 0, err
		}
	} else {
		bp = profile.FromSamples(p, run)
	}
	e, err := analysis.AccuracyError(bp, reference)
	if err != nil {
		return 0, 0, err
	}
	return e, len(run.Samples), nil
}

// Measure runs the configured number of repeats and averages. Each
// repeat uses a seed derived from the cell identity (see repeatSeed);
// Samples records the count of the first successful repeat, so the field
// is well-defined under concurrency. When some repeats fail, the
// successful ones are still aggregated into the returned Measurement and
// the per-repeat failures come back joined into one error.
func (r *Runner) Measure(spec workloads.Spec, mach machine.Machine, m sampling.Method) (Measurement, error) {
	meas := Measurement{
		Workload: spec.Name,
		Machine:  mach.Name,
		Method:   m.Key,
	}
	if _, ok := sampling.Resolve(m, mach); !ok {
		meas.Err = -1
		return meas, nil
	}
	meas.Supported = true
	if r.Telemetry != nil {
		start := time.Now()
		defer func() { r.Telemetry.ObserveCellWall(time.Since(start)) }()
	}
	var errs []float64
	var failures []error
	for rep := 0; rep < r.Scale.Repeats; rep++ {
		e, n, err := r.MeasureOnce(spec, mach, m, r.repeatSeed(spec, mach, m, rep))
		if err != nil {
			failures = append(failures, fmt.Errorf("repeat %d: %w", rep, err))
			continue
		}
		if len(errs) == 0 {
			meas.Samples = n
		}
		errs = append(errs, e)
	}
	meas.PerRepeat = errs
	meas.Failed = len(failures) > 0
	if len(errs) > 0 {
		meas.Err = stats.Mean(errs)
	} else {
		meas.Err = -1
	}
	return meas, errors.Join(failures...)
}
