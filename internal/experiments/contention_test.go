package experiments

import "testing"

func TestRunLBRContention(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep takes seconds")
	}
	r := NewRunner(SmallScale(), 7)
	tbl, series, err := r.RunLBRContention()
	if err != nil {
		t.Fatalf("RunLBRContention: %v", err)
	}
	t.Logf("\n%s", tbl.String())
	if len(series) < 4 {
		t.Fatal("series too short")
	}
	// No contention must be the best point; full contention clearly the
	// worst, with a smooth degradation in between (allowing small noise).
	clean, full := series[0], series[len(series)-1]
	if clean.X != 0 || full.X != 1 {
		t.Fatal("sweep endpoints wrong")
	}
	if full.Err < clean.Err*2 {
		t.Errorf("full contention err %.4f not clearly above clean err %.4f",
			full.Err, clean.Err)
	}
	for i := 1; i < len(series); i++ {
		if series[i].Err < series[i-1].Err*0.8 {
			t.Errorf("error dropped sharply with more contention at x=%v: %.4f -> %.4f",
				series[i].X, series[i-1].Err, series[i].Err)
		}
	}
}
