package experiments

// The counter-multiplexing experiment family: how far can perf-style
// scaled counts (count * enabled/running) be trusted? The simulator runs
// the OS-style virtualized PMU (pmu.Mux) on top of each machine's
// physical counter budget and compares every scaled estimate against the
// exact ground-truth count it uniquely has — a new error-source axis next
// to the paper's sampling-method comparison: the x-axes are the number of
// requested events, the rotation timeslice, and (via the PhaseShift
// workload) how badly workload phases break the stationarity assumption
// behind the scaling.

import (
	"fmt"

	"pmutrust/internal/machine"
	"pmutrust/internal/pmu"
	"pmutrust/internal/report"
	"pmutrust/internal/results"
	"pmutrust/internal/sampling"
	"pmutrust/internal/stats"
	"pmutrust/internal/workloads"
)

// MuxEventMenu is the canonical request-list order: experiments that ask
// for "n events" request the first n. Instructions-retired comes first
// (the most commonly requested event; on Intel the classic sampler
// already holds the fixed counter, so even it needs a general counter
// here), then the rate-diverse rest.
func MuxEventMenu() []pmu.Event {
	return []pmu.Event{
		pmu.EvInstRetired, pmu.EvBrTaken, pmu.EvLoad, pmu.EvStore, pmu.EvCondBr,
		pmu.EvUopsRetired, pmu.EvFPOp, pmu.EvBrMispred, pmu.EvCall, pmu.EvRet,
	}
}

// MuxKey returns the synthetic method key a multiplexing cell is stored
// under, e.g. "mux-rr-n06-ts02000". The zero padding makes the keys
// lexically self-sorting, so report.Matrix orders columns by (policy,
// events, timeslice) without a bespoke comparator.
func MuxKey(policy pmu.MuxPolicy, nEvents int, timeslice uint64) string {
	return fmt.Sprintf("mux-%s-n%02d-ts%05d", policy, nEvents, timeslice)
}

// MuxMeasurement is one multiplexing cell: the counting-error summary of
// one (workload, machine, event list, timeslice, policy) run.
type MuxMeasurement struct {
	Workload string `json:"workload"`
	Machine  string `json:"machine"`
	// Key is the synthetic method key (MuxKey) the cell is stored under.
	Key string `json:"key"`
	// MeanErr and MaxErr summarize the per-event relative counting error
	// |scaled - exact| / exact over the requested events (starved events
	// count as error 1).
	MeanErr float64 `json:"mean_err"`
	// MaxErr is -1 when the cell was served from a results store, which
	// persists only the MeanErr summary (the repo's "-1 = not available"
	// convention, like Measurement.Err for dead cells).
	MaxErr float64 `json:"max_err"`
	// Rotations is the number of counter rotations serviced.
	Rotations uint64 `json:"rotations"`
	// Starved is the number of requested events that never held a
	// counter; -1 when served from a store (see MaxErr).
	Starved int `json:"starved"`
	// Counts holds the full per-event outcome (exact, raw, scaled,
	// enabled/running). Nil when the cell was served from a results store,
	// which persists only the summary.
	Counts []pmu.MuxCount `json:"counts,omitempty"`
}

// muxWorkloads returns the workload rows of the mux tables: two paper
// kernels with steady event mixes and two phased stress workloads that
// break the scaling assumption — the hand-built PhaseShift and the
// spec-generated PhasedBurst, whose burst schedule concentrates the FP
// phase into every 8th macro iteration at 6x intensity (the worst case
// for enabled/running extrapolation: the owned windows mostly miss the
// bursts).
func muxWorkloads() []workloads.Spec {
	var specs []workloads.Spec
	for _, name := range []string{"LatencyBiased", "G4Box", "PhaseShift", "PhasedBurst"} {
		s, err := workloads.ByName(name)
		if err != nil {
			panic(err)
		}
		specs = append(specs, s)
	}
	return specs
}

// muxIdentity returns the results-store identity of a multiplexing cell:
// the standard cell identity with the synthetic mux key on the method
// axis, so mux records coexist with accuracy records in one store and
// resume exactly like them.
func (r *Runner) muxIdentity(spec workloads.Spec, mach machine.Machine, key string) results.Identity {
	return results.Identity{
		Workload:      spec.Name,
		Machine:       mach.Name,
		Method:        key,
		Scale:         r.Scale.Name,
		WorkloadScale: r.Scale.Workload,
		PeriodBase:    r.Scale.PeriodBase,
		Seed:          r.Seed,
		Repeats:       r.Scale.Repeats,
	}
}

// muxCellKey resolves the timeslice default and derives the cell's
// synthetic method key — the single definition shared by measurement and
// store lookup, so the two can never key a cell differently.
func muxCellKey(events []pmu.Event, timeslice uint64, policy pmu.MuxPolicy) (uint64, string) {
	if timeslice == 0 {
		timeslice = pmu.DefaultMuxTimeslice
	}
	return timeslice, MuxKey(policy, len(events), timeslice)
}

// MeasureMux runs one multiplexed collection — classic sampling plus the
// requested counting events — and summarizes the multiplexing-induced
// counting error. A zero timeslice selects pmu.DefaultMuxTimeslice.
func (r *Runner) MeasureMux(spec workloads.Spec, mach machine.Machine, events []pmu.Event, timeslice uint64, policy pmu.MuxPolicy) (MuxMeasurement, error) {
	timeslice, key := muxCellKey(events, timeslice, policy)
	meas := MuxMeasurement{Workload: spec.Name, Machine: mach.Name, Key: key}

	classic, err := sampling.MethodByKey("classic")
	if err != nil {
		return meas, err
	}
	p := r.Workload(spec)
	run, err := sampling.Collect(p, mach, classic, sampling.Options{
		PeriodBase:         r.Scale.PeriodBase,
		Seed:               stats.DeriveSeed(r.Seed, spec.Name, mach.Name, key, "0"),
		Engine:             r.Engine,
		Events:             events,
		MuxTimesliceCycles: timeslice,
		MuxPolicy:          policy,
		Telemetry:          r.Telemetry,
	})
	if err != nil {
		return meas, err
	}
	meas.Rotations = run.MuxRotations
	meas.Counts = run.Counts
	var sum, max float64
	for _, c := range run.Counts {
		e := c.RelError()
		sum += e
		if e > max {
			max = e
		}
		if c.RunningCycles == 0 {
			meas.Starved++
		}
	}
	meas.MeanErr = sum / float64(len(run.Counts))
	meas.MaxErr = max
	return meas, nil
}

// measureMuxCell is the store-aware wrapper around MeasureMux: cells
// already in the Runner's store are served from it (summary only), new
// measurements are appended, and the served/measured split feeds
// StoreStats like every other cached sweep.
func (r *Runner) measureMuxCell(spec workloads.Spec, mach machine.Machine, events []pmu.Event, timeslice uint64, policy pmu.MuxPolicy) (MuxMeasurement, error) {
	timeslice, key := muxCellKey(events, timeslice, policy)
	if r.Store != nil {
		if rec, ok := r.Store.Get(r.muxIdentity(spec, mach, key).Key()); ok {
			r.mu.Lock()
			r.storeStats.Cached++
			r.mu.Unlock()
			return MuxMeasurement{
				Workload: rec.Workload, Machine: rec.Machine, Key: rec.Method,
				MeanErr: rec.Err, Rotations: uint64(rec.Samples),
				// The store persists only the summary; mark the
				// unrecoverable fields not-available rather than letting
				// them read as genuinely zero.
				MaxErr: -1, Starved: -1,
			}, nil
		}
	}
	meas, err := r.MeasureMux(spec, mach, events, timeslice, policy)
	if err != nil {
		return meas, err
	}
	if r.Store != nil {
		id := r.muxIdentity(spec, mach, key)
		rec := results.Record{
			Key:       id.Key(),
			Identity:  id,
			Err:       meas.MeanErr,
			Samples:   int(meas.Rotations),
			Supported: true,
		}
		if perr := r.Store.Put(rec); perr != nil {
			return meas, perr
		}
	}
	r.mu.Lock()
	r.storeStats.Measured++
	r.mu.Unlock()
	return meas, nil
}

// muxConfig is one column of a mux table.
type muxConfig struct {
	Label     string
	Events    []pmu.Event
	Timeslice uint64
	Policy    pmu.MuxPolicy
}

// muxMatrix measures a (workload × machine × config) grid on the worker
// pool and renders one row per workload × machine, one column per config
// — the shape every mux table shares. The cell text is the mean relative
// counting error.
func (r *Runner) muxMatrix(title string, configs []muxConfig) (*report.Table, []MuxMeasurement, error) {
	specs := muxWorkloads()
	machines := machine.All()
	perRow := len(configs)
	rows := len(specs) * len(machines)
	out := make([]MuxMeasurement, rows*perRow)

	err := r.forEach(len(out), r.opts(), func(i int) error {
		row, ci := splitIdx(i, perRow)
		si, mi := splitIdx(row, len(machines))
		cfg := configs[ci]
		meas, err := r.measureMuxCell(specs[si], machines[mi], cfg.Events, cfg.Timeslice, cfg.Policy)
		out[i] = meas
		if err != nil {
			return fmt.Errorf("%s/%s/%s: %w", specs[si].Name, machines[mi].Name, meas.Key, err)
		}
		return nil
	})
	if err != nil {
		return nil, out, err
	}

	headers := []string{"workload", "machine"}
	for _, c := range configs {
		headers = append(headers, c.Label)
	}
	t := report.New(title, headers...)
	for si, spec := range specs {
		for mi, mach := range machines {
			row := []string{spec.Name, mach.Name}
			for ci := range configs {
				row = append(row, report.Fmt(out[flatIdx(flatIdx(si, mi, len(machines)), ci, perRow)].MeanErr))
			}
			t.AddRow(row...)
		}
	}
	return t, out, nil
}

// RunMuxEvents measures multiplexing error against the number of
// requested events at the default timeslice under round-robin rotation.
// Within the counter budget the error is exactly zero; each event past it
// stretches every event's extrapolation further.
func (r *Runner) RunMuxEvents() (*report.Table, []MuxMeasurement, error) {
	menu := MuxEventMenu()
	var configs []muxConfig
	for _, n := range []int{2, 4, 6, 8, 10} {
		configs = append(configs, muxConfig{
			Label:  fmt.Sprintf("n=%d", n),
			Events: menu[:n],
		})
	}
	t, ms, err := r.muxMatrix(
		"Multiplexing error vs requested events (mean |scaled-exact|/exact; lower is better)",
		configs)
	if err == nil {
		t.Note = fmt.Sprintf(
			"Round-robin rotation, timeslice %d cycles; classic sampling pinned alongside. "+
				"All machines have 4 general counters; on Intel the sampler rides the fixed counter, on AMD it costs a general one.",
			uint64(pmu.DefaultMuxTimeslice))
	}
	return t, ms, err
}

// RunMuxTimeslice measures multiplexing error against the rotation
// timeslice at a fixed 8-event request list. Shorter timeslices sample
// each event's rate more often and track phases better — at the price of
// rotation overhead a real kernel would pay; the PhaseShift rows show the
// aliasing blow-up when windows and phases are commensurate.
func (r *Runner) RunMuxTimeslice() (*report.Table, []MuxMeasurement, error) {
	menu := MuxEventMenu()
	var configs []muxConfig
	for _, ts := range []uint64{250, 1000, 4000, 16000} {
		configs = append(configs, muxConfig{
			Label:     fmt.Sprintf("ts=%d", ts),
			Events:    menu[:8],
			Timeslice: ts,
		})
	}
	t, ms, err := r.muxMatrix(
		"Multiplexing error vs rotation timeslice, 8 requested events (lower is better)",
		configs)
	if err == nil {
		t.Note = "Round-robin rotation. PhaseShift alternates memory-only and FP/branch-only phases " +
			"about one timeslice long: scaled counts assume stationary rates, so its errors dwarf the steady kernels'."
	}
	return t, ms, err
}

// RunMuxPolicy contrasts the rotation policies at an 8-event request
// list: round-robin spreads estimation error over every event, priority
// gives the first events exact counts and the rest nothing.
func (r *Runner) RunMuxPolicy() (*report.Table, []MuxMeasurement, error) {
	menu := MuxEventMenu()
	configs := []muxConfig{
		{Label: "round-robin", Events: menu[:8]},
		{Label: "priority", Events: menu[:8], Policy: pmu.MuxPriority},
	}
	t, ms, err := r.muxMatrix(
		"Multiplexing error vs rotation policy, 8 requested events (lower is better)",
		configs)
	if err == nil {
		t.Note = "Priority scheduling is perf's pinned-event mode: scheduled events are exact, " +
			"overflow events are never counted (error 1 each, like perf's \"<not counted>\")."
	}
	return t, ms, err
}

// RunMuxCustom measures one explicit event list across the mux workloads
// and machines and renders the full per-event accounting — the table
// behind `pmubench -events`.
func (r *Runner) RunMuxCustom(events []pmu.Event, timeslice uint64, policy pmu.MuxPolicy) (*report.Table, []MuxMeasurement, error) {
	if len(events) == 0 {
		return nil, nil, fmt.Errorf("experiments: empty event list")
	}
	specs := muxWorkloads()
	machines := machine.All()
	out := make([]MuxMeasurement, len(specs)*len(machines))
	err := r.forEach(len(out), r.opts(), func(i int) error {
		si, mi := splitIdx(i, len(machines))
		meas, err := r.MeasureMux(specs[si], machines[mi], events, timeslice, policy)
		out[i] = meas
		if err != nil {
			return fmt.Errorf("%s/%s: %w", specs[si].Name, machines[mi].Name, err)
		}
		return nil
	})
	if err != nil {
		return nil, out, err
	}

	t := report.New(
		fmt.Sprintf("Multiplexed counting: %s (policy %s)", pmu.EventListString(events), policy),
		"workload", "machine", "event", "exact", "scaled", "rel err", "running/enabled", "rotations")
	for i, meas := range out {
		si, mi := splitIdx(i, len(machines))
		for _, c := range meas.Counts {
			exact, scaled, relErr, running := c.TableCells()
			t.AddRow(specs[si].Name, machines[mi].Name, c.Event.String(),
				exact, scaled, relErr, running, fmt.Sprintf("%d", meas.Rotations))
		}
	}
	t.Note = "scaled = raw * enabled/running, the estimate perf reports under multiplexing; " +
		"exact is the simulator's ground truth."
	return t, out, nil
}
