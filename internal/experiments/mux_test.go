package experiments

import (
	"strings"
	"testing"

	"pmutrust/internal/machine"
	"pmutrust/internal/pmu"
	"pmutrust/internal/results"
	"pmutrust/internal/sampling"
	"pmutrust/internal/workloads"
)

// TestMuxEventsTable: the headline acceptance property — the experiment
// emits a deterministic table covering all 3 machines, identical at any
// worker count and under the self-checking EngineBoth mode, with zero
// error inside the counter budget and growing error beyond it.
func TestMuxEventsTable(t *testing.T) {
	render := func(parallel int, engine sampling.EngineMode) (string, []MuxMeasurement) {
		r := NewRunner(SmallScale(), 42)
		r.Parallel = parallel
		r.Engine = engine
		tb, ms, err := r.RunMuxEvents()
		if err != nil {
			t.Fatal(err)
		}
		return tb.String(), ms
	}

	t1, ms := render(1, sampling.EngineFast)
	t4, _ := render(4, sampling.EngineFast)
	if t1 != t4 {
		t.Fatalf("table differs across worker counts:\n%s\nvs\n%s", t1, t4)
	}
	if !testing.Short() {
		tBoth, _ := render(2, sampling.EngineBoth)
		if t1 != tBoth {
			t.Fatalf("table differs under EngineBoth:\n%s\nvs\n%s", t1, tBoth)
		}
	}

	for _, mach := range machine.All() {
		if !strings.Contains(t1, mach.Name) {
			t.Errorf("table lacks machine %s:\n%s", mach.Name, t1)
		}
	}
	if !strings.Contains(t1, "PhaseShift") {
		t.Errorf("table lacks the phased workload:\n%s", t1)
	}

	// n=2 fits every machine's budget (4 general counters, sampler
	// pinned) — zero multiplexing error; n=10 cannot fit — nonzero.
	byKey := make(map[string][]MuxMeasurement)
	for _, m := range ms {
		byKey[m.Key] = append(byKey[m.Key], m)
	}
	for key, cells := range byKey {
		n2 := strings.Contains(key, "-n02-")
		for _, c := range cells {
			if n2 && (c.MeanErr != 0 || c.Rotations != 0) {
				t.Errorf("%s/%s/%s: within-budget cell has err %g, %d rotations",
					c.Workload, c.Machine, key, c.MeanErr, c.Rotations)
			}
			if strings.Contains(key, "-n10-") && c.Rotations == 0 {
				t.Errorf("%s/%s/%s: overcommitted cell never rotated", c.Workload, c.Machine, key)
			}
		}
	}
}

// TestMuxPhaseSensitivity: the phased workload must show (strictly) more
// multiplexing error than the steady kernels at the default timeslice —
// the "workload phase behavior" axis of the experiment family.
func TestMuxPhaseSensitivity(t *testing.T) {
	r := NewRunner(SmallScale(), 42)
	events := MuxEventMenu()[:8]
	mach := machine.IvyBridge()
	phase, err := r.MeasureMux(workloads.PhaseShiftSpec(), mach, events, 0, pmu.MuxRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := workloads.ByName("LatencyBiased")
	if err != nil {
		t.Fatal(err)
	}
	steady, err := r.MeasureMux(lb, mach, events, 0, pmu.MuxRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if phase.MeanErr <= steady.MeanErr {
		t.Errorf("phase sensitivity inverted: PhaseShift err %g <= LatencyBiased err %g",
			phase.MeanErr, steady.MeanErr)
	}
}

// TestMuxPolicyTable: priority starves exactly the overflow events while
// round-robin counts everything approximately.
func TestMuxPolicyTable(t *testing.T) {
	r := NewRunner(SmallScale(), 42)
	events := MuxEventMenu()[:8]
	lb, err := workloads.ByName("LatencyBiased")
	if err != nil {
		t.Fatal(err)
	}

	rr, err := r.MeasureMux(lb, machine.MagnyCours(), events, 0, pmu.MuxRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Starved != 0 {
		t.Errorf("round-robin starved %d events", rr.Starved)
	}
	prio, err := r.MeasureMux(lb, machine.MagnyCours(), events, 0, pmu.MuxPriority)
	if err != nil {
		t.Fatal(err)
	}
	// Magny-Cours: 4 general counters, no fixed, classic sampler pins one
	// — 3 left for 8 requested events, so 5 starve under priority.
	if prio.Starved != 5 {
		t.Errorf("priority starved %d events, want 5", prio.Starved)
	}
	if prio.Rotations != 0 {
		t.Errorf("priority policy rotated %d times", prio.Rotations)
	}
}

// TestMuxStoreResume: mux cells are store-addressable like accuracy
// cells — a warm resume re-measures nothing and renders byte-identically.
func TestMuxStoreResume(t *testing.T) {
	path := t.TempDir() + "/mux.jsonl"
	st, err := results.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(SmallScale(), 42)
	r.Store = st
	t1, _, err := r.RunMuxEvents()
	if err != nil {
		t.Fatal(err)
	}
	cold := r.StoreStats()
	if cold.Measured == 0 || cold.Cached != 0 {
		t.Fatalf("cold run stats: %+v", cold)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := results.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	r2 := NewRunner(SmallScale(), 42)
	r2.Store = st2
	t2, _, err := r2.RunMuxEvents()
	if err != nil {
		t.Fatal(err)
	}
	warm := r2.StoreStats()
	if warm.Measured != 0 || warm.Cached != cold.Measured {
		t.Fatalf("warm run stats: %+v (cold %+v)", warm, cold)
	}
	if t1.String() != t2.String() {
		t.Fatalf("resumed table differs:\n%s\nvs\n%s", t1, t2)
	}
}

// TestMuxCustomTable: the -events path renders per-event accounting rows.
func TestMuxCustomTable(t *testing.T) {
	r := NewRunner(SmallScale(), 42)
	events := []pmu.Event{pmu.EvLoad, pmu.EvStore, pmu.EvFPOp, pmu.EvBrTaken, pmu.EvCondBr}
	tb, ms, err := r.RunMuxCustom(events, 500, pmu.MuxRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(muxWorkloads())*len(machine.All()) {
		t.Fatalf("measurements = %d", len(ms))
	}
	s := tb.String()
	for _, e := range events {
		if !strings.Contains(s, e.String()) {
			t.Errorf("table lacks event %s", e)
		}
	}
	if _, _, err := r.RunMuxCustom(nil, 0, pmu.MuxRoundRobin); err == nil {
		t.Error("empty event list accepted")
	}
}

// TestMuxKeySelfSorting: the zero-padded keys must order by (policy,
// events, timeslice) lexically, since report.Matrix sorts unknown method
// columns as strings.
func TestMuxKeySelfSorting(t *testing.T) {
	if MuxKey(pmu.MuxRoundRobin, 2, 2000) >= MuxKey(pmu.MuxRoundRobin, 10, 2000) {
		t.Error("n ordering broken")
	}
	if MuxKey(pmu.MuxRoundRobin, 8, 250) >= MuxKey(pmu.MuxRoundRobin, 8, 16000) {
		t.Error("timeslice ordering broken")
	}
	if MuxKey(pmu.MuxRoundRobin, 8, 2000) != "mux-rr-n08-ts02000" {
		t.Errorf("key format drifted: %s", MuxKey(pmu.MuxRoundRobin, 8, 2000))
	}
}
