package experiments

import (
	"testing"
)

// TestTable1Shapes asserts the paper's qualitative kernel findings
// (DESIGN.md F1-F4) on the Table 1 matrix at small scale.
func TestTable1Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("table runs take a few seconds")
	}
	r := NewRunner(SmallScale(), 42)
	tr, err := r.RunTable1()
	if err != nil {
		t.Fatalf("RunTable1: %v", err)
	}
	t.Logf("\n%s", tr.Table.String())

	kernels := []string{"LatencyBiased", "CallChain", "G4Box", "Test40"}
	intel := []string{"Westmere", "IvyBridge"}

	// F1: LBR beats classic on every Intel kernel cell.
	for _, k := range kernels {
		for _, m := range intel {
			classic := tr.Get(k, m, "classic")
			lbrErr := tr.Get(k, m, "lbr")
			if lbrErr < 0 || classic < 0 {
				t.Errorf("%s/%s: missing cells (classic=%v lbr=%v)", k, m, classic, lbrErr)
				continue
			}
			if lbrErr >= classic {
				t.Errorf("F1 violated: %s/%s lbr %.4f >= classic %.4f", k, m, lbrErr, classic)
			}
		}
	}

	// F2: PDIR (pdir+ipfix) on IvyBridge strictly improves over plain
	// precise on LatencyBiased.
	pdir := tr.Get("LatencyBiased", "IvyBridge", "pdir+ipfix")
	prec := tr.Get("LatencyBiased", "IvyBridge", "precise")
	if pdir >= prec {
		t.Errorf("F2 violated: LatencyBiased/IVB pdir+ipfix %.4f >= precise %.4f", pdir, prec)
	}

	// F3 (kernel half): prime period improves on round period for the
	// CallChain kernel on Intel machines.
	for _, m := range intel {
		round := tr.Get("CallChain", m, "precise")
		prime := tr.Get("CallChain", m, "precise+prime")
		if prime >= round {
			t.Errorf("F3 violated: CallChain/%s precise+prime %.4f >= precise %.4f", m, prime, round)
		}
	}

	// F4: AMD is "consistently burdened with high error rates": the best
	// error achievable on Magny-Cours (no LBR, no PDIR, uop-based IBS) is
	// well above the best achievable on Ivy Bridge, for every kernel.
	// And the built-in 4-LSB hardware randomization makes AMD worse.
	best := func(mach, k string) float64 {
		b := -1.0
		for _, m := range []string{"classic", "precise", "precise+rand",
			"precise+prime", "precise+prime+rand", "pdir+ipfix", "lbr"} {
			v := tr.Get(k, mach, m)
			if v >= 0 && (b < 0 || v < b) {
				b = v
			}
		}
		return b
	}
	for _, k := range kernels {
		amdBest := best("MagnyCours", k)
		ivbBest := best("IvyBridge", k)
		if amdBest < ivbBest*1.5 {
			t.Errorf("F4 violated: %s MagnyCours best %.4f not clearly above IvyBridge best %.4f",
				k, amdBest, ivbBest)
		}
		noRand := tr.Get(k, "MagnyCours", "precise+prime")
		hwRand := tr.Get(k, "MagnyCours", "precise+prime+rand")
		if hwRand < noRand {
			t.Errorf("F4 violated: %s MagnyCours hw-rand %.4f better than no-rand %.4f",
				k, hwRand, noRand)
		}
	}
}
