package experiments

import (
	"testing"

	"pmutrust/internal/machine"
	"pmutrust/internal/sampling"
)

func TestRunFutureHW(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the kernel set four ways")
	}
	r := NewRunner(SmallScale(), 13)
	res, err := r.RunFutureHW()
	if err != nil {
		t.Fatalf("RunFutureHW: %v", err)
	}
	t.Logf("\n%s", res.Table.String())
	for _, k := range []string{"LatencyBiased", "CallChain", "G4Box", "Test40"} {
		// Clean: the hardware fix must be at least as good as the
		// software LBR-top fix (both are near-exact; allow 20% noise).
		if res.FutureClean[k] > res.IvyClean[k]*1.2 {
			t.Errorf("%s: FutureGen clean %.4f worse than IVB clean %.4f",
				k, res.FutureClean[k], res.IvyClean[k])
		}
		// Contended: FutureGen must be unaffected (within noise of its
		// clean number) while IVB degrades measurably.
		if res.FutureContended[k] > res.FutureClean[k]*1.25 {
			t.Errorf("%s: FutureGen degraded under contention: %.4f vs clean %.4f",
				k, res.FutureContended[k], res.FutureClean[k])
		}
		if res.IvyContended[k] < res.IvyClean[k]*1.1 {
			t.Errorf("%s: IVB software fix unaffected by contention (%.4f vs %.4f) — model broken?",
				k, res.IvyContended[k], res.IvyClean[k])
		}
	}
}

func TestFutureGenResolveDropsFix(t *testing.T) {
	// On FutureGen the pdir+ipfix method must lower to FixNone and stop
	// requiring the LBR.
	m, err := sampling.MethodByKey("pdir+ipfix")
	if err != nil {
		t.Fatal(err)
	}
	resolved, ok := sampling.Resolve(m, machine.FutureGen())
	if !ok {
		t.Fatal("pdir+ipfix unsupported on FutureGen")
	}
	if resolved.NeedsLBR() {
		t.Error("hardware-fixed machine still requires LBR for the IP fix")
	}
	// The paper machines keep the software fix.
	resolved, ok = sampling.Resolve(m, machine.IvyBridge())
	if !ok || !resolved.NeedsLBR() {
		t.Error("IvyBridge lost its software LBR fix")
	}
}
