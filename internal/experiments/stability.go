package experiments

import (
	"fmt"

	"pmutrust/internal/machine"
	"pmutrust/internal/report"
	"pmutrust/internal/sampling"
	"pmutrust/internal/stats"
	"pmutrust/internal/workloads"
)

// StabilityResult reports the across-seed spread of the accuracy error
// per method: the measurement-protocol question behind the paper's
// "each of our kernels ... is measured five times" (§4.1).
type StabilityResult struct {
	Table *report.Table
	// Spread maps method key to (stddev / mean) of the error across
	// seeds. Deterministic methods on deterministic workloads have zero
	// spread; randomized ones must stay tight for the paper's protocol
	// to be meaningful.
	Spread map[string]float64
}

// RunStability measures every method on one kernel with n different
// seeds and reports mean, stddev and relative spread.
func (r *Runner) RunStability(n int) (*StabilityResult, error) {
	if n <= 1 {
		n = 5 // the paper's repeat count
	}
	spec, err := workloads.ByName("G4Box")
	if err != nil {
		return nil, err
	}
	mach := machine.IvyBridge()

	t := report.New(fmt.Sprintf("Measurement stability over %d seeds (G4Box, IvyBridge)", n),
		"method", "mean err", "stddev", "rel spread")
	res := &StabilityResult{Table: t, Spread: make(map[string]float64)}
	var supported []sampling.Method
	for _, m := range sampling.Registry() {
		if _, ok := sampling.Resolve(m, mach); ok {
			supported = append(supported, m)
		}
	}
	// Job index interleaves (method, repeat), repeat innermost; the
	// summary is folded sequentially afterwards so the spread per method
	// is exact.
	errs := make([]float64, len(supported)*n)
	err = r.forEach(len(errs), r.opts(), func(i int) error {
		mi, rep := splitIdx(i, n)
		e, _, err := r.MeasureOnce(spec, mach, supported[mi], r.Seed+uint64(rep)*7919)
		errs[i] = e
		return err
	})
	if err != nil {
		return nil, err
	}
	for mi, m := range supported {
		var s stats.Summary
		for rep := 0; rep < n; rep++ {
			s.Add(errs[flatIdx(mi, rep, n)])
		}
		rel := 0.0
		if s.Mean() > 0 {
			rel = s.Stddev() / s.Mean()
		}
		res.Spread[m.Key] = rel
		t.AddRow(m.Key, report.Fmt(s.Mean()), report.Fmt(s.Stddev()),
			fmt.Sprintf("%.1f%%", 100*rel))
	}
	t.Note = "The paper measures each kernel five times; spreads stay in single-digit percents, so mean errors are meaningful."
	return res, nil
}
