package experiments

import "testing"

// TestIPFixSideExperiment asserts the §5.2 FullCMS side result: a precise
// distributed event with the LBR IP+1 fix clearly improves over classic
// (the paper reports ~5x).
func TestIPFixSideExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("takes seconds")
	}
	r := NewRunner(SmallScale(), 42)
	res, err := r.RunIPFix()
	if err != nil {
		t.Fatalf("RunIPFix: %v", err)
	}
	t.Logf("\n%s", res.Table.String())
	if res.Factor < 2 {
		t.Errorf("IP-fix improvement %.1fx below 2x (paper: ~5x)", res.Factor)
	}
	if res.FixedErr >= res.ClassicErr {
		t.Error("fixed method not better than classic")
	}
}

// TestRankingSideExperiment asserts the §5.2 ordering observation: no
// method reproduces the FullCMS top-10 function ranking exactly.
func TestRankingSideExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("takes tens of seconds")
	}
	r := NewRunner(SmallScale(), 42)
	res, err := r.RunRanking()
	if err != nil {
		t.Fatalf("RunRanking: %v", err)
	}
	t.Logf("\n%s", res.Table.String())
	for method, exact := range res.ExactByMethod {
		if exact {
			t.Errorf("method %s reproduced the exact top-10 order (paper: none does)", method)
		}
	}
	if len(res.Table.Rows) == 0 {
		t.Error("no ranking rows")
	}
}

// TestFactors asserts the §5.1/§5.2 improvement-factor claims in spirit:
// LBR improves on classic by multiple x on kernels and on applications.
func TestFactors(t *testing.T) {
	if testing.Short() {
		t.Skip("runs both tables")
	}
	r := NewRunner(SmallScale(), 42)
	t1, err := r.RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := r.RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	fr := r.RunFactors(t1, t2)
	t.Logf("\n%s", fr.Table.String())

	// Kernel LBR-vs-classic: every factor > 1 (paper: 3-6x average, up
	// to 18x).
	if len(fr.KernelLBROverClassic) == 0 {
		t.Fatal("no kernel factors")
	}
	for _, f := range fr.KernelLBROverClassic {
		if f <= 1 {
			t.Errorf("kernel LBR factor %.2f <= 1", f)
		}
	}
	// Application LBR-vs-classic: paper reports 4-5x; accept >= 2x on
	// every cell.
	for _, f := range fr.AppLBROverClassic {
		if f < 2 {
			t.Errorf("app LBR-vs-classic factor %.2f < 2", f)
		}
	}
	// Application LBR-vs-precise: paper reports 1-10x — i.e. never a
	// regression beyond noise.
	for _, f := range fr.AppLBROverPrecise {
		if f < 0.8 {
			t.Errorf("app LBR-vs-precise factor %.2f < 0.8", f)
		}
	}
}
