package experiments

import (
	"fmt"
	"sync/atomic"

	"pmutrust/internal/results"
)

// CellIdentity returns the results-store identity of one grid cell under
// this runner's configuration: the cell coordinates plus every scale and
// seed knob that feeds the measurement. Its Key() is the content address
// SweepCached caches under.
func (r *Runner) CellIdentity(c Cell) results.Identity {
	return results.Identity{
		Workload:      c.Workload.Name,
		Machine:       c.Machine.Name,
		Method:        c.Method.Key,
		Scale:         r.Scale.Name,
		WorkloadScale: r.Scale.Workload,
		PeriodBase:    r.Scale.PeriodBase,
		Seed:          r.Seed,
		Repeats:       r.Scale.Repeats,
	}
}

// CellRecord converts a completed measurement of cell c into its store
// form — the record SweepCached appends, and the one a distributed
// worker (internal/sweepd) appends to its shard file. Keeping the single
// conversion exported is what guarantees worker-written records are
// byte-compatible with single-process ones.
func (r *Runner) CellRecord(c Cell, m Measurement) results.Record {
	id := r.CellIdentity(c)
	return results.Record{
		Key:       id.Key(),
		Identity:  id,
		Err:       m.Err,
		PerRepeat: m.PerRepeat,
		Samples:   m.Samples,
		Supported: m.Supported,
		Failed:    m.Failed,
	}
}

// fromRecord reconstructs the measurement a stored record captured. It is
// the exact inverse of record over the measurement fields, which is what
// makes a resumed sweep's aggregate byte-identical to a fresh one.
func fromRecord(rec results.Record) Measurement {
	return Measurement{
		Workload:  rec.Workload,
		Machine:   rec.Machine,
		Method:    rec.Method,
		Err:       rec.Err,
		PerRepeat: rec.PerRepeat,
		Samples:   rec.Samples,
		Supported: rec.Supported,
		Failed:    rec.Failed,
	}
}

// SweepStats reports how a cached sweep split its work.
type SweepStats struct {
	// Cached is the number of cells served from the store.
	Cached int
	// Measured is the number of cells actually measured this run (and,
	// on success, appended to the store). Cells a sweep timeout
	// abandoned before dispatch count in neither field.
	Measured int
}

// SweepCached is Sweep with a persistent results store: cells whose
// content-addressed identity is already present in st are returned from
// the store without re-measuring, the rest are measured on the worker
// pool and appended to st as they complete. Failed cells are *not*
// stored, so a later resume retries them.
//
// Because measurements are pure functions of the cell identity (the same
// property that makes Sweep order-independent), serving a cell from the
// store is indistinguishable from re-measuring it: an interrupted sweep
// resumed against its store produces byte-identical aggregates to an
// uninterrupted run.
func (r *Runner) SweepCached(g Grid, st results.Store, opt SweepOptions) ([]Measurement, SweepStats, error) {
	cells := g.Cells()
	out := make([]Measurement, len(cells))
	var stats SweepStats

	// Partition into store hits (filled immediately) and misses
	// (dispatched to the pool). Miss slots are prefilled with the same
	// named no-result sentinel as Sweep, so a timeout leaves identifiable
	// Failed cells.
	var misses []int
	for i, c := range cells {
		if rec, ok := st.Get(r.CellIdentity(c).Key()); ok {
			out[i] = fromRecord(rec)
			continue
		}
		out[i] = Measurement{Workload: c.Workload.Name, Machine: c.Machine.Name, Method: c.Method.Key, Err: -1, Failed: true}
		misses = append(misses, i)
	}
	stats.Cached = len(cells) - len(misses)

	var measured atomic.Int64
	err := r.forEach(len(misses), opt, func(j int) error {
		i := misses[j]
		c := cells[i]
		measured.Add(1)
		meas, err := r.Measure(c.Workload, c.Machine, c.Method)
		out[i] = meas
		if err != nil {
			return fmt.Errorf("%s/%s/%s: %w", c.Workload.Name, c.Machine.Name, c.Method.Key, err)
		}
		if perr := st.Put(r.CellRecord(c, meas)); perr != nil {
			return fmt.Errorf("%s/%s/%s: %w", c.Workload.Name, c.Machine.Name, c.Method.Key, perr)
		}
		return nil
	})
	stats.Measured = int(measured.Load())
	r.Telemetry.CountCells(uint64(stats.Measured), uint64(stats.Cached))
	return out, stats, err
}

// sweep dispatches a grid through the store-aware path when the Runner
// has a Store attached, and through the plain parallel sweep otherwise.
// The matrix experiments (Tables 1 and 2) call this, which is what makes
// `pmubench -store` incremental end to end. Store-path stats accumulate
// on the Runner (see StoreStats).
func (r *Runner) sweep(g Grid) ([]Measurement, error) {
	if r.Store != nil {
		ms, stats, err := r.SweepCached(g, r.Store, r.opts())
		r.mu.Lock()
		r.storeStats.Cached += stats.Cached
		r.storeStats.Measured += stats.Measured
		r.mu.Unlock()
		return ms, err
	}
	return r.Sweep(g, r.opts())
}

// StoreStats returns the accumulated served/measured split of every
// store-aware sweep this Runner has dispatched — the observable behind
// `pmubench`'s end-of-run store summary (a fully warm resume reports
// zero measured).
func (r *Runner) StoreStats() SweepStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.storeStats
}
