package experiments

import (
	"fmt"

	"pmutrust/internal/analysis"
	"pmutrust/internal/lbr"
	"pmutrust/internal/machine"
	"pmutrust/internal/report"
	"pmutrust/internal/sampling"
	"pmutrust/internal/workloads"
)

// RunLBRContention (A8) degrades the LBR method by sharing the facility
// with a call-stack-mode consumer (perf --call-graph lbr running
// concurrently), sweeping the collision fraction. §6.2 argues for an IP+1
// fix in hardware precisely to free the LBR from such collisions; this
// experiment quantifies what the collision costs.
func (r *Runner) RunLBRContention() (*report.Table, []SweepPoint, error) {
	spec, err := workloads.ByName("G4Box")
	if err != nil {
		return nil, nil, err
	}
	p := r.Workload(spec)
	reference, err := r.Reference(spec)
	if err != nil {
		return nil, nil, err
	}
	mach := machine.IvyBridge()
	m, err := sampling.MethodByKey("lbr")
	if err != nil {
		return nil, nil, err
	}

	t := report.New("A8: LBR-method error vs call-stack-mode contention (G4Box, IvyBridge)",
		"contention", "error", "malformed segments")
	var series []SweepPoint
	for _, c := range []float64{0, 0.1, 0.25, 0.5, 0.75, 1.0} {
		run, err := sampling.Collect(p, mach, m, sampling.Options{
			PeriodBase:    r.Scale.PeriodBase,
			Seed:          r.Seed,
			LBRContention: c,
		})
		if err != nil {
			return nil, nil, err
		}
		bp, ds, err := lbr.BuildProfile(p, run)
		if err != nil {
			return nil, nil, err
		}
		e, err := analysis.AccuracyError(bp, reference)
		if err != nil {
			return nil, nil, err
		}
		series = append(series, SweepPoint{X: c, Err: e})
		t.AddRow(fmt.Sprintf("%.0f%%", 100*c), report.Fmt(e), fmt.Sprintf("%d", ds.Malformed))
	}
	t.Note = "Collisions replace taken-branch windows with call-stack-filtered ones; §6.2 proposes a hardware IP+1 fix to avoid sharing the LBR at all."
	return t, series, nil
}
