package experiments

import (
	"fmt"

	"pmutrust/internal/analysis"
	"pmutrust/internal/lbr"
	"pmutrust/internal/machine"
	"pmutrust/internal/report"
	"pmutrust/internal/sampling"
	"pmutrust/internal/workloads"
)

// RunLBRContention (A8) degrades the LBR method by sharing the facility
// with a call-stack-mode consumer (perf --call-graph lbr running
// concurrently), sweeping the collision fraction. §6.2 argues for an IP+1
// fix in hardware precisely to free the LBR from such collisions; this
// experiment quantifies what the collision costs.
func (r *Runner) RunLBRContention() (*report.Table, []SweepPoint, error) {
	spec, err := workloads.ByName("G4Box")
	if err != nil {
		return nil, nil, err
	}
	p := r.Workload(spec)
	reference, err := r.Reference(spec)
	if err != nil {
		return nil, nil, err
	}
	mach := machine.IvyBridge()
	m, err := sampling.MethodByKey("lbr")
	if err != nil {
		return nil, nil, err
	}

	t := report.New("A8: LBR-method error vs call-stack-mode contention (G4Box, IvyBridge)",
		"contention", "error", "malformed segments")
	contentions := []float64{0, 0.1, 0.25, 0.5, 0.75, 1.0}
	series := make([]SweepPoint, len(contentions))
	malformed := make([]int, len(contentions))
	err = r.forEach(len(contentions), r.opts(), func(i int) error {
		run, err := sampling.Collect(p, mach, m, sampling.Options{
			PeriodBase:    r.Scale.PeriodBase,
			Seed:          r.Seed,
			LBRContention: contentions[i],
			Engine:        r.Engine,
			Telemetry:     r.Telemetry,
		})
		if err != nil {
			return err
		}
		bp, ds, err := lbr.BuildProfile(p, run)
		if err != nil {
			return err
		}
		e, err := analysis.AccuracyError(bp, reference)
		if err != nil {
			return err
		}
		series[i] = SweepPoint{X: contentions[i], Err: e}
		malformed[i] = ds.Malformed
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	for i, pt := range series {
		t.AddRow(fmt.Sprintf("%.0f%%", 100*pt.X), report.Fmt(pt.Err), fmt.Sprintf("%d", malformed[i]))
	}
	t.Note = "Collisions replace taken-branch windows with call-stack-filtered ones; §6.2 proposes a hardware IP+1 fix to avoid sharing the LBR at all."
	return t, series, nil
}
