package experiments

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"pmutrust/internal/machine"
	"pmutrust/internal/pool"
	"pmutrust/internal/sampling"
	"pmutrust/internal/workloads"
)

// Grid enumerates a (workload × machine × method) experiment matrix —
// the shape of the paper's Tables 1 and 2 and of any full-factorial
// method comparison.
type Grid struct {
	Workloads []workloads.Spec
	Machines  []machine.Machine
	Methods   []sampling.Method
}

// Cell is one grid point.
type Cell struct {
	Workload workloads.Spec
	Machine  machine.Machine
	Method   sampling.Method
}

// Cells returns the grid's cells in canonical order: workloads outermost,
// then machines, then methods. Sweep results follow this order no matter
// how the cells were scheduled.
func (g Grid) Cells() []Cell {
	cells := make([]Cell, 0, len(g.Workloads)*len(g.Machines)*len(g.Methods))
	for _, spec := range g.Workloads {
		for _, mach := range g.Machines {
			for _, m := range g.Methods {
				cells = append(cells, Cell{Workload: spec, Machine: mach, Method: m})
			}
		}
	}
	return cells
}

// Size returns the number of cells in the grid.
func (g Grid) Size() int { return len(g.Workloads) * len(g.Machines) * len(g.Methods) }

// GridByName returns the cell grid of a named matrix experiment — the
// exact cells RunTable1, RunTable2 and RunPhased sweep. The distributed
// sweep planner (internal/sweepd) partitions these grids, so the mapping
// from experiment name to cell set must stay identical between the
// single-process and sharded paths.
func GridByName(name string) (Grid, error) {
	switch name {
	case "table1":
		return Grid{Workloads: workloads.Kernels(), Machines: machine.All(), Methods: sampling.Registry()}, nil
	case "table2":
		return Grid{Workloads: workloads.Apps(), Machines: machine.All(), Methods: sampling.Registry()}, nil
	case "phased":
		return Grid{Workloads: workloads.PhasedFamily(), Machines: machine.All(), Methods: sampling.Registry()}, nil
	}
	return Grid{}, fmt.Errorf("experiments: no cell grid for experiment %q (matrix experiments: table1, table2, phased)", name)
}

// SweepOptions bounds a sweep's parallelism and wall-clock time. The
// zero value inherits the Runner's Parallel and Timeout fields.
type SweepOptions struct {
	// Parallel is the worker count; <= 0 falls back to Runner.Parallel,
	// then to runtime.GOMAXPROCS(0).
	Parallel int
	// Timeout aborts the sweep after the given wall-clock time: cells
	// already running finish (cells are not interruptible), unstarted
	// cells are abandoned, and the sweep returns an error. A sweep whose
	// cells were all dispatched before the deadline completes normally.
	// 0 falls back to Runner.Timeout (0 = none).
	Timeout time.Duration
}

// Sweep measures every grid cell on a bounded worker pool and returns
// the measurements in Cells order. Because each cell's seeds derive from
// its identity and the Runner caches are single-flight, the result is
// bit-identical for any worker count. Cells whose measurement fails keep
// their partial Measurement in the slice; the first failure (in cell
// order) is returned as the error.
func (r *Runner) Sweep(g Grid, opt SweepOptions) ([]Measurement, error) {
	cells := g.Cells()
	out := make([]Measurement, len(cells))
	// Prefill cell identities so that on timeout an abandoned cell is a
	// named no-result entry (Failed, Err -1) rather than an anonymous
	// zero value — and distinguishable from a genuinely unsupported cell,
	// which has Failed false.
	for i, c := range cells {
		out[i] = Measurement{Workload: c.Workload.Name, Machine: c.Machine.Name, Method: c.Method.Key, Err: -1, Failed: true}
	}
	var measured atomic.Int64
	err := r.forEach(len(cells), opt, func(i int) error {
		c := cells[i]
		measured.Add(1)
		meas, err := r.Measure(c.Workload, c.Machine, c.Method)
		out[i] = meas
		if err != nil {
			return fmt.Errorf("%s/%s/%s: %w", c.Workload.Name, c.Machine.Name, c.Method.Key, err)
		}
		return nil
	})
	r.Telemetry.CountCells(uint64(measured.Load()), 0)
	return out, err
}

// opts returns the Runner's default sweep options; the internal table
// runners all dispatch through this so -parallel/-timeout apply
// uniformly.
func (r *Runner) opts() SweepOptions {
	return SweepOptions{Parallel: r.Parallel, Timeout: r.Timeout}
}

// flatIdx and splitIdx convert between a flat job index and the (outer,
// inner) coordinates of a grid whose inner axis is width wide. Table
// runners that interleave two sweep axes into one forEach index use this
// pair for both the job-side decode and the result-side lookup, so the
// two cannot drift apart.
func flatIdx(outer, inner, width int) int { return outer*width + inner }

func splitIdx(i, width int) (outer, inner int) { return i / width, i % width }

// forEach resolves the sweep options against the Runner's defaults and
// runs jobs 0..n-1 on the shared bounded worker pool (internal/pool):
// every job runs even when earlier ones fail (a sweep keeps its partial
// results), the returned error is the first failure by job index, and
// on timeout running jobs complete while unstarted ones are dropped.
func (r *Runner) forEach(n int, opt SweepOptions, job func(i int) error) error {
	workers := opt.Parallel
	if workers <= 0 {
		workers = r.Parallel
	}
	timeout := opt.Timeout
	if timeout == 0 {
		timeout = r.Timeout
	}
	err := pool.ForEach(n, workers, timeout, job)
	if errors.Is(err, pool.ErrTimeout) {
		// Keep pool.ErrTimeout in the chain so callers can errors.Is it.
		return fmt.Errorf("experiments: sweep timed out after %v (%w)", timeout, pool.ErrTimeout)
	}
	return err
}
