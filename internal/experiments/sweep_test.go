package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"pmutrust/internal/machine"
	"pmutrust/internal/pool"
	"pmutrust/internal/sampling"
	"pmutrust/internal/workloads"
)

// sweepGrid is the small-scale grid the concurrency tests run: two
// kernels across every machine and every Table 3 method, which exercises
// unsupported cells (Magny-Cours LBR) as well as supported ones.
func sweepGrid() Grid {
	return Grid{
		Workloads: workloads.Kernels()[:2],
		Machines:  machine.All(),
		Methods:   sampling.Registry(),
	}
}

func TestGridCellsOrder(t *testing.T) {
	g := sweepGrid()
	cells := g.Cells()
	if len(cells) != g.Size() {
		t.Fatalf("Cells() = %d, Size() = %d", len(cells), g.Size())
	}
	// Methods innermost, workloads outermost.
	nm := len(g.Methods)
	if cells[0].Method.Key != g.Methods[0].Key || cells[1].Method.Key != g.Methods[1].Key {
		t.Error("methods not innermost")
	}
	if cells[nm].Machine.Name != g.Machines[1].Name {
		t.Error("machines not middle")
	}
	if cells[len(cells)-1].Workload.Name != g.Workloads[len(g.Workloads)-1].Name {
		t.Error("workloads not outermost")
	}
}

// TestSweepDeterministicAcrossWorkerCounts is the core sweep guarantee:
// the same grid on fresh runners produces byte-identical measurement
// sets at worker counts 1 and 8 (run through JSON so "byte-identical"
// is literal). Not skipped in -short mode so the CI race job covers the
// worker pool.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	g := sweepGrid()
	var got [][]byte
	for _, workers := range []int{1, 8} {
		r := NewRunner(SmallScale(), 42)
		ms, err := r.Sweep(g, SweepOptions{Parallel: workers})
		if err != nil {
			t.Fatalf("Sweep(parallel=%d): %v", workers, err)
		}
		if len(ms) != g.Size() {
			t.Fatalf("Sweep(parallel=%d): %d results, want %d", workers, len(ms), g.Size())
		}
		b, err := json.Marshal(ms)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, b)
	}
	if !bytes.Equal(got[0], got[1]) {
		t.Errorf("worker counts 1 and 8 disagree:\n1: %s\n8: %s", got[0], got[1])
	}
}

// TestSweepMatchesSequentialMeasure pins the sweep to the Measure it
// wraps: cell i of the sweep equals a direct Measure of cell i.
func TestSweepMatchesSequentialMeasure(t *testing.T) {
	g := Grid{
		Workloads: workloads.Kernels()[:1],
		Machines:  []machine.Machine{machine.IvyBridge()},
		Methods:   sampling.Registry(),
	}
	r := NewRunner(SmallScale(), 7)
	ms, err := r.Sweep(g, SweepOptions{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	direct := NewRunner(SmallScale(), 7)
	for i, c := range g.Cells() {
		want, err := direct.Measure(c.Workload, c.Machine, c.Method)
		if err != nil {
			t.Fatal(err)
		}
		if ms[i].Err != want.Err || ms[i].Samples != want.Samples {
			t.Errorf("cell %d (%s/%s/%s): sweep %+v, direct %+v",
				i, c.Workload.Name, c.Machine.Name, c.Method.Key, ms[i], want)
		}
	}
}

// TestRepeatSeedsNoCollision checks the full evaluation grid (all
// workloads × machines × methods × paper repeats) derives pairwise
// distinct seeds.
func TestRepeatSeedsNoCollision(t *testing.T) {
	r := NewRunner(PaperScale(), 42)
	seen := make(map[uint64]string)
	for _, spec := range workloads.All() {
		for _, mach := range machine.All() {
			for _, m := range sampling.Registry() {
				for rep := 0; rep < r.Scale.Repeats; rep++ {
					s := r.repeatSeed(spec, mach, m, rep)
					id := spec.Name + "/" + mach.Name + "/" + m.Key
					if prev, dup := seen[s]; dup {
						t.Fatalf("seed collision: %s rep %d and %s share %#x", id, rep, prev, s)
					}
					seen[s] = id
				}
			}
		}
	}
}

// TestRunnerConcurrentSingleFlight hammers the caches from many
// goroutines: every caller must get the same built program and the same
// reference profile (single-flight), with no data race (-race in CI).
func TestRunnerConcurrentSingleFlight(t *testing.T) {
	r := NewRunner(SmallScale(), 1)
	spec, err := workloads.ByName("LatencyBiased")
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	progs := make([]interface{}, n)
	refs := make([]interface{}, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			progs[i] = r.Workload(spec)
			rp, err := r.Reference(spec)
			if err != nil {
				t.Error(err)
				return
			}
			refs[i] = rp
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if progs[i] != progs[0] {
			t.Fatal("concurrent Workload calls built the program more than once")
		}
		if refs[i] != refs[0] {
			t.Fatal("concurrent Reference calls collected the reference more than once")
		}
	}
}

func TestSweepTimeout(t *testing.T) {
	r := NewRunner(SmallScale(), 1)
	ms, err := r.Sweep(sweepGrid(), SweepOptions{Parallel: 2, Timeout: time.Nanosecond})
	if !errors.Is(err, pool.ErrTimeout) {
		t.Fatalf("expected pool.ErrTimeout in chain, got %v", err)
	}
	if !strings.Contains(err.Error(), "experiments: sweep timed out") {
		t.Fatalf("timeout error lost its message: %v", err)
	}
	// Abandoned cells keep their identity (no anonymous zero values) and
	// carry the Failed marker, so they cannot be mistaken for measured
	// unsupported-on-hardware cells (Failed false).
	abandoned := 0
	for i, c := range sweepGrid().Cells() {
		m := ms[i]
		if m.Workload != c.Workload.Name || m.Machine != c.Machine.Name || m.Method != c.Method.Key {
			t.Fatalf("cell %d lost identity: %+v", i, m)
		}
		if m.Failed {
			abandoned++
		}
	}
	if abandoned == 0 {
		t.Error("1ns timeout abandoned no cells")
	}
}

// TestMeasurePartialFailure drives Measure through repeats that all fail
// (zero period base makes sampling.Collect reject every repeat): the
// error must name each failed repeat, and the measurement must keep its
// identity fields rather than vanish.
func TestMeasurePartialFailure(t *testing.T) {
	s := SmallScale()
	s.PeriodBase = 0
	s.Repeats = 2
	r := NewRunner(s, 1)
	spec, _ := workloads.ByName("LatencyBiased")
	m, _ := sampling.MethodByKey("classic")
	meas, err := r.Measure(spec, machine.IvyBridge(), m)
	if err == nil {
		t.Fatal("expected error from zero period base")
	}
	for _, want := range []string{"repeat 0", "repeat 1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	if !meas.Supported || len(meas.PerRepeat) != 0 || meas.Samples != 0 {
		t.Errorf("partial measurement: %+v", meas)
	}
	// A dead cell must not read as measured: Err is the -1 sentinel and
	// Failed is set.
	if meas.Err != -1 || !meas.Failed {
		t.Errorf("failed cell not marked: Err=%v Failed=%v", meas.Err, meas.Failed)
	}
	if meas.Workload != spec.Name || meas.Method != m.Key {
		t.Errorf("measurement identity lost: %+v", meas)
	}
}

// TestMeasureSamplesDeterministic pins Samples to the first repeat's
// sample count: Measure must agree with a direct MeasureOnce at the
// repeat-0 seed, whatever the repeat count.
func TestMeasureSamplesDeterministic(t *testing.T) {
	s := SmallScale()
	s.Repeats = 3
	r := NewRunner(s, 9)
	spec, _ := workloads.ByName("G4Box")
	mach := machine.IvyBridge()
	m, _ := sampling.MethodByKey("precise+prime+rand")
	meas, err := r.Measure(spec, mach, m)
	if err != nil {
		t.Fatal(err)
	}
	_, n0, err := r.MeasureOnce(spec, mach, m, r.repeatSeed(spec, mach, m, 0))
	if err != nil {
		t.Fatal(err)
	}
	if meas.Samples != n0 {
		t.Errorf("Samples = %d, repeat-0 count = %d", meas.Samples, n0)
	}
}
