package experiments

import "testing"

// TestTable2Shapes asserts the paper's qualitative application findings
// (DESIGN.md F3 application half, F5) on the Table 2 matrix.
func TestTable2Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("table runs take tens of seconds")
	}
	r := NewRunner(SmallScale(), 42)
	tr, err := r.RunTable2()
	if err != nil {
		t.Fatalf("RunTable2: %v", err)
	}
	t.Logf("\n%s", tr.Table.String())

	apps := []string{"mcf", "povray", "omnetpp", "xalancbmk", "FullCMS"}
	intel := []string{"Westmere", "IvyBridge"}

	// F3 (application half): randomization has little to no impact on
	// full applications — the randomized variant changes the error by
	// less than 25% relative (the paper: "little to no impact", in
	// contrast to the multi-x kernel swings).
	for _, a := range apps {
		for _, m := range intel {
			plain := tr.Get(a, m, "precise")
			rand := tr.Get(a, m, "precise+rand")
			rel := rand/plain - 1
			if rel < 0 {
				rel = -rel
			}
			if rel > 0.25 {
				t.Errorf("F3(app) violated: %s/%s randomization changes error by %.0f%% (%.4f vs %.4f)",
					a, m, rel*100, rand, plain)
			}
		}
	}

	// F5: classic is the worst Intel method on every app; the pdir+ipfix
	// and lbr methods both clearly improve on it.
	for _, a := range apps {
		for _, m := range intel {
			classic := tr.Get(a, m, "classic")
			for _, better := range []string{"pdir+ipfix", "lbr"} {
				v := tr.Get(a, m, better)
				if v >= classic {
					t.Errorf("F5 violated: %s/%s %s %.4f >= classic %.4f", a, m, better, v, classic)
				}
			}
		}
	}

	// F5 (FullCMS exception): on FullCMS, pure LBR does not improve on
	// the precise-distribution+fix method (callchain-like workload).
	lbrErr := tr.Get("FullCMS", "IvyBridge", "lbr")
	fixErr := tr.Get("FullCMS", "IvyBridge", "pdir+ipfix")
	if lbrErr < fixErr {
		t.Errorf("F5(FullCMS) violated: lbr %.4f < pdir+ipfix %.4f", lbrErr, fixErr)
	}
}
