package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"pmutrust/internal/machine"
	"pmutrust/internal/pool"
	"pmutrust/internal/results"
	"pmutrust/internal/sampling"
	"pmutrust/internal/workloads"
)

// TestSweepCachedResumeByteIdentical is the resume acceptance check: a
// sweep interrupted partway (simulated by first sweeping only a slice of
// the grid into the store), then resumed over the full grid, must (a)
// re-execute only the missing cells and (b) aggregate byte-identically
// to an uninterrupted run — through a real store file reload in between,
// as `pmubench -store out.jsonl` then `-resume` would do.
func TestSweepCachedResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		// The -short (race) job still covers the cached path's
		// concurrency via TestSweepCachedMatchesSweep and the store's
		// via TestStoreConcurrentPut; three full-grid sweeps under the
		// race detector are too slow for it.
		t.Skip("full-grid resume determinism in -short mode")
	}
	full := sweepGrid()
	partial := full
	partial.Workloads = full.Workloads[:1]

	path := filepath.Join(t.TempDir(), "store.jsonl")
	st, err := results.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	r1 := NewRunner(SmallScale(), 42)
	if _, stats, err := r1.SweepCached(partial, st, SweepOptions{Parallel: 4}); err != nil {
		t.Fatal(err)
	} else if stats.Cached != 0 || stats.Measured != partial.Size() {
		t.Fatalf("first run stats = %+v, want all %d measured", stats, partial.Size())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume from the file, as a fresh process would.
	st2, err := results.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	r2 := NewRunner(SmallScale(), 42)
	resumed, stats, err := r2.SweepCached(full, st2, SweepOptions{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := partial.Size(); stats.Cached != want {
		t.Errorf("resume served %d cells from store, want %d", stats.Cached, want)
	}
	if want := full.Size() - partial.Size(); stats.Measured != want {
		t.Errorf("resume re-executed %d cells, want only the %d missing", stats.Measured, want)
	}

	// Uninterrupted baseline on a fresh runner and memory store.
	r3 := NewRunner(SmallScale(), 42)
	fresh, _, err := r3.SweepCached(full, results.NewMemory(), SweepOptions{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := json.Marshal(resumed)
	fb, _ := json.Marshal(fresh)
	if !bytes.Equal(rb, fb) {
		t.Errorf("resumed sweep differs from uninterrupted run:\nresumed: %s\nfresh:   %s", rb, fb)
	}
}

// TestSweepCachedMatchesSweep pins the cached path to the plain one on an
// empty store, and checks a second pass over a warm store is all hits.
func TestSweepCachedMatchesSweep(t *testing.T) {
	g := Grid{
		Workloads: workloads.Kernels()[:1],
		Machines:  []machine.Machine{machine.IvyBridge()},
		Methods:   sampling.Registry(),
	}
	st := results.NewMemory()
	r := NewRunner(SmallScale(), 7)
	cached, stats, err := r.SweepCached(g, st, SweepOptions{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cached != 0 || stats.Measured != g.Size() {
		t.Errorf("cold store stats = %+v", stats)
	}
	plain, err := NewRunner(SmallScale(), 7).Sweep(g, SweepOptions{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	cb, _ := json.Marshal(cached)
	pb, _ := json.Marshal(plain)
	if !bytes.Equal(cb, pb) {
		t.Errorf("SweepCached on empty store differs from Sweep:\ncached: %s\nplain:  %s", cb, pb)
	}

	warm, stats, err := r.SweepCached(g, st, SweepOptions{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cached != g.Size() || stats.Measured != 0 {
		t.Errorf("warm store stats = %+v, want all %d cached", stats, g.Size())
	}
	wb, _ := json.Marshal(warm)
	if !bytes.Equal(wb, cb) {
		t.Errorf("warm pass differs from cold pass")
	}
}

// TestSweepCachedTimeoutNotStored checks the retry contract: cells
// abandoned by a timeout are not written to the store, so a resume
// attempts them again.
func TestSweepCachedTimeoutNotStored(t *testing.T) {
	g := sweepGrid()
	st := results.NewMemory()
	r := NewRunner(SmallScale(), 1)
	ms, stats, err := r.SweepCached(g, st, SweepOptions{Parallel: 2, Timeout: time.Nanosecond})
	if !errors.Is(err, pool.ErrTimeout) {
		t.Fatalf("expected pool.ErrTimeout, got %v", err)
	}
	abandoned := 0
	for i, c := range g.Cells() {
		if ms[i].Failed {
			abandoned++
			if _, ok := st.Get(r.CellIdentity(c).Key()); ok {
				t.Errorf("abandoned cell %s/%s/%s leaked into the store",
					c.Workload.Name, c.Machine.Name, c.Method.Key)
			}
		}
	}
	if abandoned == 0 {
		t.Error("1ns timeout abandoned no cells")
	}
	if st.Len()+abandoned != g.Size() {
		t.Errorf("store holds %d records, %d abandoned, grid %d", st.Len(), abandoned, g.Size())
	}
	// Measured must count only cells that actually ran, not cells the
	// timeout abandoned before dispatch — it is the resume observable.
	if stats.Measured != g.Size()-abandoned {
		t.Errorf("stats.Measured = %d, want %d (grid %d minus %d abandoned)",
			stats.Measured, g.Size()-abandoned, g.Size(), abandoned)
	}
	if stats.Cached != 0 {
		t.Errorf("stats.Cached = %d on an empty store", stats.Cached)
	}
}

// TestRunMatrixUsesStore checks the end-to-end wiring: a Runner with a
// Store renders Table 1 identically to one without, and a second Runner
// resuming from the same store renders the identical table without
// re-measuring (its workload cache stays cold).
func TestRunMatrixUsesStore(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix render in -short mode")
	}
	st := results.NewMemory()
	r1 := NewRunner(SmallScale(), 42)
	r1.Store = st
	tr1, err := r1.RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewRunner(SmallScale(), 42).RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if tr1.Table.String() != plain.Table.String() {
		t.Error("store-backed Table 1 differs from plain run")
	}

	r2 := NewRunner(SmallScale(), 42)
	r2.Store = st
	tr2, err := r2.RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Table.String() != tr1.Table.String() {
		t.Error("resumed Table 1 render differs")
	}
	if len(r2.progs) != 0 {
		t.Errorf("resumed run built %d workloads, want 0 (all cells cached)", len(r2.progs))
	}
}
