package experiments

import (
	"reflect"
	"testing"

	"pmutrust/internal/machine"
	"pmutrust/internal/sampling"
	"pmutrust/internal/workloads"
)

// TestSweepEngineInvariant: a sweep's measurements — accuracy errors,
// per-repeat series, sample counts — are byte-identical whichever engine
// runs them, so stored results and fingerprints stay valid across engine
// switches.
func TestSweepEngineInvariant(t *testing.T) {
	kernels := workloads.Kernels()[:2]
	g := Grid{
		Workloads: kernels,
		Machines:  []machine.Machine{machine.IvyBridge(), machine.MagnyCours()},
		Methods:   sampling.Registry()[:3],
	}
	var got [2][]Measurement
	for i, eng := range []sampling.EngineMode{sampling.EngineInterp, sampling.EngineFast} {
		r := NewRunner(SmallScale(), 42)
		r.Engine = eng
		ms, err := r.Sweep(g, SweepOptions{Parallel: 2})
		if err != nil {
			t.Fatalf("engine %s: %v", eng, err)
		}
		got[i] = ms
	}
	if !reflect.DeepEqual(got[0], got[1]) {
		for i := range got[0] {
			if !reflect.DeepEqual(got[0][i], got[1][i]) {
				t.Errorf("cell %d diverges:\n  interp %+v\n  fast   %+v", i, got[0][i], got[1][i])
			}
		}
		t.Fatal("sweep measurements differ between engines")
	}
}
