package experiments

import (
	"testing"

	"pmutrust/internal/lbr"
	"pmutrust/internal/machine"
	"pmutrust/internal/sampling"
	"pmutrust/internal/workloads"
)

// TestDebugCallChainLBR is a diagnostic aid, skipped by default; run with
// -run DebugCallChainLBR -v to dump per-block attribution for the
// CallChain kernel under the LBR method.
func TestDebugCallChainLBR(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	r := NewRunner(SmallScale(), 42)
	spec, _ := workloads.ByName("CallChain")
	p := r.Workload(spec)
	reference, err := r.Reference(spec)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := sampling.MethodByKey("lbr")
	run, err := sampling.Collect(p, machine.IvyBridge(), m, sampling.Options{PeriodBase: r.Scale.PeriodBase, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	bp, ds, err := lbr.BuildProfile(p, run)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("period=%d samples=%d decode=%+v", run.Period, len(run.Samples), ds)
	for b, blk := range p.Blocks {
		t.Logf("block %-14s len=%2d ref=%9d est=%12.1f", blk.FullName(p), blk.Len(),
			reference.InstrCount[b], bp.InstrEstimate[b])
	}
	if len(run.Samples) > 0 {
		t.Logf("first stack: %v", run.Samples[0].LBR)
	}
}
