package experiments

import (
	"pmutrust/internal/ref"
	"pmutrust/internal/results"
	"pmutrust/internal/workloads"
)

// Reference memoization: ground-truth profiles are exact functional runs
// — pure functions of (workload, workload scale) — but collecting one
// costs a full per-instruction execution of the workload, which
// dominates short sweeps and is re-paid by every process of a
// distributed fleet. When a Runner has a RefStore attached, each
// reference run is content-addressed into it (under the reserved
// results.RefMethod key) the first time it is collected, and every later
// Runner pointed at the same store — a resumed pmubench, another sweepd
// worker generation, the coordinator's final render — serves it back
// without re-executing. Serving is observably identical to collecting:
// the memo holds the exact per-block counts, so a rebuilt profile is
// structurally equal to a fresh one and every downstream render is
// byte-identical.

// RefIdentity returns the store identity of one workload's ground-truth
// reference under this runner's scale. A reference depends only on the
// workload and its iteration scale — machine, method, period, seed and
// repeat knobs are zeroed so the address cannot fracture across sweep
// configurations that share ground truth.
func (r *Runner) RefIdentity(spec workloads.Spec) results.Identity {
	return results.Identity{
		Workload:      spec.Name,
		Method:        results.RefMethod,
		Scale:         r.Scale.Name,
		WorkloadScale: r.Scale.Workload,
	}
}

// refFromStore attempts to serve spec's reference profile from the
// RefStore. A stored record is validated against the built program
// before it is trusted (see ref.FromCounts); a missing or mismatching
// record reports !ok and the caller collects fresh.
func (r *Runner) refFromStore(spec workloads.Spec) (*ref.Profile, bool) {
	if r.RefStore == nil {
		return nil, false
	}
	rec, ok := r.RefStore.Get(r.RefIdentity(spec).Key())
	if !ok || rec.Ref == nil || rec.Ref.Blocks != len(rec.Ref.ExecCount) {
		return nil, false
	}
	rp, err := ref.FromCounts(r.Workload(spec), rec.Ref.ExecCount, rec.Ref.NetInstructions, rec.Ref.TakenBranches)
	if err != nil {
		// Shape mismatch: a stale memo from a changed workload
		// definition. Ignore it and re-collect; the fresh record will
		// carry the current shape.
		return nil, false
	}
	return rp, true
}

// putRef memoizes a freshly collected reference profile. Append errors
// are swallowed: the profile in hand is already correct, and a memo that
// failed to persist only costs a future re-collection.
func (r *Runner) putRef(spec workloads.Spec, rp *ref.Profile) {
	if r.RefStore == nil {
		return
	}
	id := r.RefIdentity(spec)
	_ = r.RefStore.Put(results.Record{
		Key:      id.Key(),
		Identity: id,
		Ref: &results.RefData{
			Blocks:          len(rp.ExecCount),
			NetInstructions: rp.NetInstructions,
			TakenBranches:   rp.TakenBranches,
			ExecCount:       rp.ExecCount,
		},
	})
}

// RefStats returns the served/collected split of every reference lookup
// this Runner has performed — the resume observable for reference
// memoization (a warm store reports zero collected).
func (r *Runner) RefStats() SweepStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.refStats
}
