package experiments

// The phased/bursty workload family: the spec-generated (and hand-built)
// phased workloads measured through the same (workload, machine, method)
// matrix as the paper tables. Where Tables 1 and 2 ask "how accurate is
// each sampling method on steady workloads", this family asks the same
// question on workloads whose event mixes shift or burst over time —
// the regime where period-fraction attribution and enabled/running
// scaling are least trustworthy.

import (
	"fmt"

	"pmutrust/internal/machine"
	"pmutrust/internal/sampling"
	"pmutrust/internal/workloads"
)

// RunPhased measures the registered phased family (workloads.PhasedFamily:
// the hand-built PhaseShift plus the built-in generated specs) across all
// machines and sampling methods. Store-aware like every matrix: with a
// results store attached, measured cells persist and reruns resume.
func (r *Runner) RunPhased() (*TableResult, error) {
	tr, err := r.runMatrix(
		"Table 9: sampling-method accuracy errors on phased/bursty workloads (lower is better)",
		workloads.PhasedFamily(), machine.All(), sampling.Registry())
	if err == nil {
		tr.Table.Note = "Phased family: PhaseShift (hand-built) + spec-generated alternate/burst/ramp schedules (docs/WORKLOADS.md); no paper counterpart — extends the accuracy matrix to non-stationary mixes."
	}
	return tr, err
}

// RunWorkloads measures an ad-hoc workload list through the standard
// matrix — the backend of `pmubench -spec`, which turns a user's spec
// file into a Spec and gets the full per-machine, per-method accuracy
// row for it, store-aware like the built-in tables.
func (r *Runner) RunWorkloads(title string, specs []workloads.Spec) (*TableResult, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("experiments: no workloads to measure")
	}
	return r.runMatrix(title, specs, machine.All(), sampling.Registry())
}
