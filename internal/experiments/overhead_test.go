package experiments

import "testing"

func TestRunOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep takes seconds")
	}
	r := NewRunner(SmallScale(), 7)
	tbl, series, err := r.RunOverhead()
	if err != nil {
		t.Fatalf("RunOverhead: %v", err)
	}
	t.Logf("\n%s", tbl.String())

	for _, key := range []string{"pdir+ipfix", "lbr"} {
		pts := series[key]
		if len(pts) < 3 {
			t.Fatalf("%s: %d points", key, len(pts))
		}
		// Overhead must decrease monotonically with growing period.
		for i := 1; i < len(pts); i++ {
			if pts[i].Overhead >= pts[i-1].Overhead {
				t.Errorf("%s: overhead not decreasing at period %d (%.4f -> %.4f)",
					key, pts[i].Period, pts[i-1].Overhead, pts[i].Overhead)
			}
		}
		// Shortest period must be more accurate than the longest.
		if pts[0].Err >= pts[len(pts)-1].Err {
			t.Errorf("%s: more samples did not improve accuracy (%.4f vs %.4f)",
				key, pts[0].Err, pts[len(pts)-1].Err)
		}
		for _, pt := range pts {
			if pt.Overhead <= 0 || pt.Overhead > 0.20 {
				t.Errorf("%s: overhead %.4f outside the plausible (0, 20%%] band", key, pt.Overhead)
			}
		}
	}
	// At equal base periods the LBR method must cost more per the model
	// (extra MSR reads) — compare the mid sweep point.
	mid := len(series["lbr"]) / 2
	if series["lbr"][mid].Overhead <= series["pdir+ipfix"][mid].Overhead {
		t.Error("LBR overhead not above plain-EBS overhead at equal base period")
	}
}
