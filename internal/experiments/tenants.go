package experiments

// The multi-tenant scheduling experiment family: how much accuracy does
// each sampling method lose when the machine is time-shared? The
// scheduler (internal/sched) runs N copies of the workload on one
// simulated core with per-task PMU save/restore; tenant 0 is the
// measured process and the others are interference. The simulator holds
// per-tenant ground truth — the same workload's exact reference profile
// — so the degradation is measured directly, per mechanism: kernel
// switch-path leakage, lost in-kernel samples, cross-tenant skid
// (foreign samples), against tenant count and scheduler timeslice. The
// single-tenant column is collected by the unscheduled sampling path and
// is bit-identical to the plain accuracy tables' cells: the zero-noise
// anchor.

import (
	"errors"
	"fmt"

	"pmutrust/internal/analysis"
	"pmutrust/internal/lbr"
	"pmutrust/internal/machine"
	"pmutrust/internal/profile"
	"pmutrust/internal/program"
	"pmutrust/internal/report"
	"pmutrust/internal/results"
	"pmutrust/internal/sampling"
	"pmutrust/internal/sched"
	"pmutrust/internal/stats"
	"pmutrust/internal/workloads"
)

// DefaultTenantCounts is the tenant-count sweep of the scheduling-noise
// table: exclusive, and 2/4/8-way time sharing.
func DefaultTenantCounts() []int { return []int{1, 2, 4, 8} }

// TenantKey returns the synthetic method key a scheduling cell is stored
// under, e.g. "tn-n04-ts16000-classic". Zero padding keeps the keys
// lexically self-sorting like MuxKey's.
func TenantKey(n int, timeslice uint64, method string) string {
	return fmt.Sprintf("tn-n%02d-ts%05d-%s", n, timeslice, method)
}

// TenantMeasurement is one scheduling cell: the accuracy of one sampling
// method for the measured tenant under one (tenant count, timeslice)
// scheduling regime.
type TenantMeasurement struct {
	Workload string `json:"workload"`
	Machine  string `json:"machine"`
	// Method is the sampling method key; Key is the synthetic store key
	// (TenantKey) carrying the scheduling regime.
	Method  string `json:"method"`
	Key     string `json:"key"`
	Tenants int    `json:"tenants"`
	// Err is the measured tenant's accuracy error averaged over
	// successful repeats; -1 when unsupported or all repeats failed.
	Err       float64   `json:"err"`
	PerRepeat []float64 `json:"per_repeat,omitempty"`
	// Samples is the measured tenant's sample count of the first repeat.
	Samples int `json:"samples"`
	// Sched is the measured tenant's noise accounting from the first
	// repeat; nil for single-tenant cells (no scheduling) and for cells
	// served from a results store, which persists only the summary.
	Sched     *sampling.SchedStats `json:"sched,omitempty"`
	Supported bool                 `json:"supported"`
	Failed    bool                 `json:"failed,omitempty"`
}

// tenantCellKey resolves the timeslice default and derives the cell's
// synthetic key — shared by measurement and store lookup like muxCellKey.
func tenantCellKey(n int, timeslice uint64, method string) (uint64, string) {
	if timeslice == 0 {
		timeslice = sched.DefaultPeriodCycles
	}
	return timeslice, TenantKey(n, timeslice, method)
}

// tenantIdentity is the results-store identity of a scheduling cell: the
// standard cell identity with the synthetic tenant key on the method
// axis.
func (r *Runner) tenantIdentity(spec workloads.Spec, mach machine.Machine, key string) results.Identity {
	return results.Identity{
		Workload:      spec.Name,
		Machine:       mach.Name,
		Method:        key,
		Scale:         r.Scale.Name,
		WorkloadScale: r.Scale.Workload,
		PeriodBase:    r.Scale.PeriodBase,
		Seed:          r.Seed,
		Repeats:       r.Scale.Repeats,
	}
}

// measureTenantsOnce runs one scheduled collection — n tenants all
// executing the workload (homogeneous tenancy, the self-interference
// worst case) — and returns the measured tenant's accuracy error, sample
// count and noise stats. The seed is the plain cell repeat seed: with
// n = 1 the scheduler delegates to sampling.Collect and the result is
// bit-identical to MeasureOnce's.
func (r *Runner) measureTenantsOnce(spec workloads.Spec, mach machine.Machine, m sampling.Method,
	n int, timeslice, switchCost uint64, seed uint64) (float64, int, *sampling.SchedStats, error) {

	p := r.Workload(spec)
	reference, err := r.Reference(spec)
	if err != nil {
		return 0, 0, nil, err
	}
	progs := make([]*program.Program, n)
	for i := range progs {
		progs[i] = p
	}
	runs, err := sched.Collect(progs, mach, m, sched.Options{
		Options: sampling.Options{
			PeriodBase:            r.Scale.PeriodBase,
			Seed:                  seed,
			Engine:                r.Engine,
			SchedTimesliceCycles:  timeslice,
			SchedSwitchCostCycles: switchCost,
			Telemetry:             r.Telemetry,
		},
	})
	if err != nil {
		return 0, 0, nil, err
	}
	run := runs[0]
	var bp *profile.BlockProfile
	if run.Method.UseLBRStack {
		bp, _, err = lbr.BuildProfile(p, run)
		if err != nil {
			return 0, 0, nil, err
		}
	} else {
		bp = profile.FromSamples(p, run)
	}
	e, err := analysis.AccuracyError(bp, reference)
	if err != nil {
		return 0, 0, nil, err
	}
	return e, len(run.Samples), run.Sched, nil
}

// MeasureTenants measures one scheduling cell over the configured
// repeats, mirroring Measure's aggregation conventions (derived repeat
// seeds, -1 for unsupported/dead cells, joined per-repeat failures).
func (r *Runner) MeasureTenants(spec workloads.Spec, mach machine.Machine, m sampling.Method,
	n int, timeslice, switchCost uint64) (TenantMeasurement, error) {

	timeslice, key := tenantCellKey(n, timeslice, m.Key)
	meas := TenantMeasurement{
		Workload: spec.Name,
		Machine:  mach.Name,
		Method:   m.Key,
		Key:      key,
		Tenants:  n,
	}
	if _, ok := sampling.Resolve(m, mach); !ok {
		meas.Err = -1
		return meas, nil
	}
	meas.Supported = true
	var errs []float64
	var failures []error
	for rep := 0; rep < r.Scale.Repeats; rep++ {
		e, cnt, sst, err := r.measureTenantsOnce(spec, mach, m, n, timeslice, switchCost,
			r.repeatSeed(spec, mach, m, rep))
		if err != nil {
			failures = append(failures, fmt.Errorf("repeat %d: %w", rep, err))
			continue
		}
		if len(errs) == 0 {
			meas.Samples = cnt
			meas.Sched = sst
		}
		errs = append(errs, e)
	}
	meas.PerRepeat = errs
	meas.Failed = len(failures) > 0
	if len(errs) > 0 {
		meas.Err = stats.Mean(errs)
	} else {
		meas.Err = -1
	}
	return meas, errors.Join(failures...)
}

// measureTenantCell is the store-aware wrapper around MeasureTenants:
// cached cells are served from the Runner's store (summary only), new
// ones are appended — the same incremental-sweep contract as
// measureMuxCell.
func (r *Runner) measureTenantCell(spec workloads.Spec, mach machine.Machine, m sampling.Method,
	n int, timeslice, switchCost uint64) (TenantMeasurement, error) {

	_, key := tenantCellKey(n, timeslice, m.Key)
	if r.Store != nil {
		if rec, ok := r.Store.Get(r.tenantIdentity(spec, mach, key).Key()); ok {
			r.mu.Lock()
			r.storeStats.Cached++
			r.mu.Unlock()
			return TenantMeasurement{
				Workload: rec.Workload, Machine: rec.Machine,
				Method: m.Key, Key: rec.Method, Tenants: n,
				Err: rec.Err, Samples: rec.Samples,
				Supported: rec.Supported, Failed: rec.Failed,
			}, nil
		}
	}
	meas, err := r.MeasureTenants(spec, mach, m, n, timeslice, switchCost)
	if err != nil {
		return meas, err
	}
	if r.Store != nil {
		id := r.tenantIdentity(spec, mach, key)
		rec := results.Record{
			Key:       id.Key(),
			Identity:  id,
			Err:       meas.Err,
			PerRepeat: meas.PerRepeat,
			Samples:   meas.Samples,
			Supported: meas.Supported,
			Failed:    meas.Failed,
		}
		if perr := r.Store.Put(rec); perr != nil {
			return meas, perr
		}
	}
	r.mu.Lock()
	r.storeStats.Measured++
	r.mu.Unlock()
	return meas, nil
}

// tenantWorkloads returns the workload rows of the scheduling tables: one
// latency-heavy and one branchy paper kernel, enough to show the noise
// mechanisms without squaring the grid.
func tenantWorkloads() []workloads.Spec {
	var specs []workloads.Spec
	for _, name := range []string{"LatencyBiased", "G4Box"} {
		s, err := workloads.ByName(name)
		if err != nil {
			panic(err)
		}
		specs = append(specs, s)
	}
	return specs
}

// tenantMethods returns one representative per capture mechanism:
// imprecise interrupt sampling, PEBS, the distribution-guaranteed PDIR
// with the IP fix, and the LBR profile — the mechanisms the scheduler's
// drain model treats differently.
func tenantMethods() []sampling.Method {
	var out []sampling.Method
	for _, key := range []string{"classic", "precise", "pdir+ipfix", "lbr"} {
		m, err := sampling.MethodByKey(key)
		if err != nil {
			panic(err)
		}
		out = append(out, m)
	}
	return out
}

// tenantColumn is one column of a scheduling table: a (tenant count,
// timeslice) regime.
type tenantColumn struct {
	Label     string
	Tenants   int
	Timeslice uint64
}

// tenantMatrix measures a (workload × machine × method × column) grid on
// the worker pool and renders one row per workload × machine × method,
// one column per scheduling regime. The cell text is the measured
// tenant's accuracy error.
func (r *Runner) tenantMatrix(title string, cols []tenantColumn, switchCost uint64) (*report.Table, []TenantMeasurement, error) {
	specs := tenantWorkloads()
	machines := machine.All()
	methods := tenantMethods()
	perRow := len(cols)
	rows := len(specs) * len(machines) * len(methods)
	out := make([]TenantMeasurement, rows*perRow)

	err := r.forEach(len(out), r.opts(), func(i int) error {
		row, ci := splitIdx(i, perRow)
		rest, di := splitIdx(row, len(methods))
		si, mi := splitIdx(rest, len(machines))
		col := cols[ci]
		meas, err := r.measureTenantCell(specs[si], machines[mi], methods[di],
			col.Tenants, col.Timeslice, switchCost)
		out[i] = meas
		if err != nil {
			return fmt.Errorf("%s/%s/%s: %w", specs[si].Name, machines[mi].Name, meas.Key, err)
		}
		return nil
	})
	if err != nil {
		return nil, out, err
	}

	headers := []string{"workload", "machine", "method"}
	for _, c := range cols {
		headers = append(headers, c.Label)
	}
	t := report.New(title, headers...)
	for si, spec := range specs {
		for mi, mach := range machines {
			for di, m := range methods {
				row := []string{spec.Name, mach.Name, m.Key}
				base := flatIdx(flatIdx(flatIdx(si, mi, len(machines)), di, len(methods)), 0, perRow)
				for ci := range cols {
					row = append(row, report.Fmt(out[base+ci].Err))
				}
				t.AddRow(row...)
			}
		}
	}
	return t, out, nil
}

// RunTenants measures per-method accuracy degradation against the tenant
// count at the default scheduler period — the "scheduling noise" table.
// The n=1 column is collected unscheduled and matches the plain accuracy
// tables bit for bit. A nil counts slice selects DefaultTenantCounts; a
// zero switchCost uses each machine's CtxSwitchCostCycles.
func (r *Runner) RunTenants(counts []int, switchCost uint64) (*report.Table, []TenantMeasurement, error) {
	if len(counts) == 0 {
		counts = DefaultTenantCounts()
	}
	var cols []tenantColumn
	for _, n := range counts {
		if n < 1 {
			return nil, nil, fmt.Errorf("experiments: tenant count %d < 1", n)
		}
		cols = append(cols, tenantColumn{Label: fmt.Sprintf("n=%d", n), Tenants: n})
	}
	t, ms, err := r.tenantMatrix(
		"Scheduling noise: accuracy error vs tenant count (lower is better)",
		cols, switchCost)
	if err == nil {
		t.Note = fmt.Sprintf(
			"CFS-style slices of %d/n cycles: the switch rate grows with the tenant count. "+
				"Each switch drains in-flight captures (foreign samples for the successor) and leaks "+
				"kernel switch-path events into the restored counters; n=1 is the unscheduled baseline.",
			uint64(sched.DefaultPeriodCycles))
	}
	return t, ms, err
}

// RunTenantsTimeslice measures accuracy degradation against the scheduler
// period at a fixed four-way tenancy: shorter slices mean more switches,
// more drained captures and more kernel leakage per retired instruction.
func (r *Runner) RunTenantsTimeslice(switchCost uint64) (*report.Table, []TenantMeasurement, error) {
	var cols []tenantColumn
	for _, ts := range []uint64{4000, 16000, 64000} {
		cols = append(cols, tenantColumn{
			Label:     fmt.Sprintf("ts=%d", ts),
			Tenants:   4,
			Timeslice: ts,
		})
	}
	t, ms, err := r.tenantMatrix(
		"Scheduling noise: accuracy error vs scheduler period, 4 tenants (lower is better)",
		cols, switchCost)
	if err == nil {
		t.Note = "Four tenants sharing one core; each runs period/4 cycles per slice. " +
			"PDIR never holds pending capture state, so it is immune to the cross-tenant skid drain " +
			"and degrades only through kernel leakage."
	}
	return t, ms, err
}
