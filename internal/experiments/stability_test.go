package experiments

import "testing"

func TestRunStability(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated measurements take seconds")
	}
	r := NewRunner(SmallScale(), 11)
	res, err := r.RunStability(5)
	if err != nil {
		t.Fatalf("RunStability: %v", err)
	}
	t.Logf("\n%s", res.Table.String())
	if len(res.Spread) != 7 {
		t.Fatalf("methods measured = %d", len(res.Spread))
	}
	// The paper's five-run protocol only makes sense if spreads are
	// small; enforce a generous bound of 30% relative per method.
	for key, rel := range res.Spread {
		if rel > 0.30 {
			t.Errorf("method %s: relative spread %.0f%% too large", key, 100*rel)
		}
	}
	// The deterministic methods (no randomization, fixed trigger
	// pattern) must be perfectly repeatable: classic uses fixed-period
	// imprecise sampling with no RNG influence apart from delivery
	// jitter, so allow small spread but not zero-check. At minimum the
	// precise (round, no rand) method on a deterministic workload is
	// tight.
	if res.Spread["precise"] > 0.10 {
		t.Errorf("precise method spread %.1f%% despite deterministic setup", 100*res.Spread["precise"])
	}
}
