package experiments

import (
	"fmt"

	"pmutrust/internal/analysis"
	"pmutrust/internal/machine"
	"pmutrust/internal/profile"
	"pmutrust/internal/report"
	"pmutrust/internal/sampling"
	"pmutrust/internal/workloads"
)

// FutureHWResult compares Ivy Bridge (software LBR-top IP fix) with the
// hypothetical FutureGen machine implementing §6.2's hardware exact-IP
// recommendation, with and without a competing LBR consumer.
type FutureHWResult struct {
	Table *report.Table
	// IvyClean/FutureClean map workload → error with exclusive LBR.
	IvyClean, FutureClean map[string]float64
	// IvyContended/FutureContended are the same under 50% call-stack-mode
	// LBR contention.
	IvyContended, FutureContended map[string]float64
}

// RunFutureHW (A9) quantifies the paper's §6.2 hardware recommendation:
// an exact-IP precise record needs no LBR read for the IP+1 fix, so it is
// immune to LBR collisions with call-stack profiling — and saves the MSR
// reads. Errors are measured for the pdir+ipfix method on both machines,
// clean and under 50% LBR contention.
func (r *Runner) RunFutureHW() (*FutureHWResult, error) {
	m, err := sampling.MethodByKey("pdir+ipfix")
	if err != nil {
		return nil, err
	}
	machines := []machine.Machine{machine.IvyBridge(), machine.FutureGen()}

	t := report.New("A9: §6.2 hardware IP-fix (FutureGen) vs software LBR fix (IvyBridge), pdir+ipfix",
		"workload", "IVB err", "FutureGen err", "IVB err @50% LBR contention", "FutureGen err @50%")
	res := &FutureHWResult{
		IvyClean: map[string]float64{}, FutureClean: map[string]float64{},
		IvyContended: map[string]float64{}, FutureContended: map[string]float64{},
	}

	measure := func(spec workloads.Spec, mach machine.Machine, contention float64) (float64, error) {
		p := r.Workload(spec)
		reference, err := r.Reference(spec)
		if err != nil {
			return 0, err
		}
		run, err := sampling.Collect(p, mach, m, sampling.Options{
			PeriodBase:    r.Scale.PeriodBase,
			Seed:          r.Seed,
			LBRContention: contention,
			Engine:        r.Engine,
			Telemetry:     r.Telemetry,
		})
		if err != nil {
			return 0, err
		}
		bp := profile.FromSamples(p, run)
		return analysis.AccuracyError(bp, reference)
	}

	kernels := workloads.Kernels()
	contentions := []float64{0, 0.5}
	// Job index interleaves (kernel, contention, machine), machine
	// innermost: i = flatIdx(kernel, flatIdx(contention, machine, M), C*M).
	perKernel := len(contentions) * len(machines)
	errs := make([]float64, len(kernels)*perKernel)
	err = r.forEach(len(errs), r.opts(), func(i int) error {
		ki, rest := splitIdx(i, perKernel)
		ci, mi := splitIdx(rest, len(machines))
		e, err := measure(kernels[ki], machines[mi], contentions[ci])
		errs[i] = e
		return err
	})
	if err != nil {
		return nil, err
	}
	for k, spec := range kernels {
		// Dispatch on machine name and contention value, not slice
		// position, so reordering machines cannot swap result columns.
		for ci, contention := range contentions {
			for mi, mach := range machines {
				e := errs[flatIdx(k, flatIdx(ci, mi, len(machines)), perKernel)]
				switch {
				case contention == 0 && mach.Name == "IvyBridge":
					res.IvyClean[spec.Name] = e
				case contention == 0:
					res.FutureClean[spec.Name] = e
				case mach.Name == "IvyBridge":
					res.IvyContended[spec.Name] = e
				default:
					res.FutureContended[spec.Name] = e
				}
			}
		}
		t.AddRow(spec.Name,
			report.Fmt(res.IvyClean[spec.Name]), report.Fmt(res.FutureClean[spec.Name]),
			report.Fmt(res.IvyContended[spec.Name]), report.Fmt(res.FutureContended[spec.Name]))
	}
	t.Note = fmt.Sprintf(
		"FutureGen implements §6.2: exact-IP precise records (no LBR read, no collision exposure). "+
			"Per-sample cost: IVB %d cycles (PMI+LBR top read) vs FutureGen %d (PMI only).",
		machine.IvyBridge().PMICostCycles+machine.IvyBridge().LBRReadCostCycles,
		machine.FutureGen().PMICostCycles)
	res.Table = t
	return res, nil
}
