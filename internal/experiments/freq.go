package experiments

import (
	"pmutrust/internal/machine"
	"pmutrust/internal/report"
	"pmutrust/internal/sampling"
	"pmutrust/internal/workloads"
)

// FreqResult pairs fixed-period and frequency-mode errors per workload.
type FreqResult struct {
	Table *report.Table
	// FixedErr and FreqErr are keyed by workload name.
	FixedErr, FreqErr map[string]float64
}

// RunFreqVsFixed (A7) contrasts perf's default frequency mode (period
// feedback targeting constant time between samples) with a fixed round
// period, on the kernels. Frequency mode makes sampling time-uniform —
// the resulting profile weights blocks by cycles rather than instruction
// counts, so workloads with CPI asymmetry (LatencyBiased) suffer most.
func (r *Runner) RunFreqVsFixed() (*FreqResult, error) {
	mach := machine.IvyBridge()
	fixed, err := sampling.MethodByKey("classic")
	if err != nil {
		return nil, err
	}
	freq := sampling.FreqMode()

	t := report.New("A7: fixed-period classic vs perf frequency mode (IvyBridge)",
		"workload", "fixed err", "freq err")
	res := &FreqResult{
		Table:    t,
		FixedErr: make(map[string]float64),
		FreqErr:  make(map[string]float64),
	}
	kernels := workloads.Kernels()
	// The (kernel, fixed|freq) matrix is a one-machine grid; Sweep's
	// canonical order puts methods innermost, matching the fold below.
	ms, err := r.Sweep(Grid{
		Workloads: kernels,
		Machines:  []machine.Machine{mach},
		Methods:   []sampling.Method{fixed, freq},
	}, r.opts())
	if err != nil {
		return nil, err
	}
	for i, spec := range kernels {
		mf, mq := ms[flatIdx(i, 0, 2)], ms[flatIdx(i, 1, 2)]
		res.FixedErr[spec.Name] = mf.Err
		res.FreqErr[spec.Name] = mq.Err
		t.AddRow(spec.Name, report.Fmt(mf.Err), report.Fmt(mq.Err))
	}
	t.Note = "Frequency mode trades period-choice pitfalls (resonance) for time-uniform sampling; neither approaches the precise/LBR methods."
	return res, nil
}
