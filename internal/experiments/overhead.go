package experiments

import (
	"fmt"

	"pmutrust/internal/analysis"
	"pmutrust/internal/lbr"
	"pmutrust/internal/machine"
	"pmutrust/internal/profile"
	"pmutrust/internal/report"
	"pmutrust/internal/sampling"
	"pmutrust/internal/workloads"
)

// OverheadPoint is one period setting of the error/overhead tradeoff.
type OverheadPoint struct {
	Period   uint64
	Err      float64
	Overhead float64
}

// RunOverhead (A6) sweeps the sampling period for the best plain-EBS
// method and the LBR method on an application workload, reporting both the
// accuracy error and the estimated collection overhead. This quantifies
// Table 3's LBR drawback — "overhead (in collection and post-processing)"
// — as a measurable error-vs-cost frontier.
func (r *Runner) RunOverhead() (*report.Table, map[string][]OverheadPoint, error) {
	spec, err := workloads.ByName("omnetpp")
	if err != nil {
		return nil, nil, err
	}
	p := r.Workload(spec)
	reference, err := r.Reference(spec)
	if err != nil {
		return nil, nil, err
	}
	mach := machine.IvyBridge()

	t := report.New("A6: accuracy vs collection overhead (omnetpp, IvyBridge)",
		"base period", "hw period", "pdir+ipfix err", "pdir+ipfix ovh", "lbr err", "lbr ovh")
	series := map[string][]OverheadPoint{}

	// Simulator periods map to hardware deployment periods by the scaling
	// factor of DESIGN.md §2: the paper's 2,000,000-instruction period
	// corresponds to the harness default of 4,000.
	const hwScale = 2_000_000 / 4_000

	bases := []uint64{500, 1000, 2000, 4000, 8000}
	keys := []string{"pdir+ipfix", "lbr"}
	// Job index interleaves (base, method), method innermost.
	points := make([]OverheadPoint, 2*len(bases))
	err = r.forEach(len(points), r.opts(), func(i int) error {
		bi, ki := splitIdx(i, len(keys))
		base := bases[bi]
		m, err := sampling.MethodByKey(keys[ki])
		if err != nil {
			return err
		}
		run, err := sampling.Collect(p, mach, m, sampling.Options{
			PeriodBase: base,
			Seed:       r.Seed,
			Engine:     r.Engine,
			Telemetry:  r.Telemetry,
		})
		if err != nil {
			return err
		}
		var bp *profile.BlockProfile
		if run.Method.UseLBRStack {
			bp, _, err = lbr.BuildProfile(p, run)
			if err != nil {
				return err
			}
		} else {
			bp = profile.FromSamples(p, run)
		}
		e, err := analysis.AccuracyError(bp, reference)
		if err != nil {
			return err
		}
		points[i] = OverheadPoint{Period: base, Err: e, Overhead: run.OverheadAtHWPeriod(base * hwScale)}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	for i, base := range bases {
		row := []string{fmt.Sprintf("%d", base), fmt.Sprintf("%d", base*hwScale)}
		for j, key := range keys {
			pt := points[flatIdx(i, j, len(keys))]
			series[key] = append(series[key], pt)
			row = append(row, report.Fmt(pt.Err), fmt.Sprintf("%.3f%%", 100*pt.Overhead))
		}
		t.AddRow(row...)
	}
	t.Note = "Overhead model: PMI cost + LBR MSR reads per sample ([38]) at the hardware-equivalent period; shorter periods buy accuracy with growing cost."
	return t, series, nil
}
