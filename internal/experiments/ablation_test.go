package experiments

import (
	"strings"
	"testing"
)

// The ablation tests assert the monotonicity/dominance claims DESIGN.md §5
// attaches to each design choice.

func TestAblateSkid(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep takes seconds")
	}
	r := NewRunner(SmallScale(), 7)
	tbl, series, err := r.AblateSkid()
	if err != nil {
		t.Fatalf("AblateSkid: %v", err)
	}
	t.Logf("\n%s", tbl.String())
	if len(series) < 4 {
		t.Fatalf("series too short: %d", len(series))
	}
	// Zero skid must be the best or near-best; the largest skid must be
	// clearly worse than zero skid.
	first, last := series[0], series[len(series)-1]
	if first.X != 0 {
		t.Fatalf("first point not zero skid")
	}
	if last.Err < first.Err*1.5 {
		t.Errorf("skid %v err %.4f not clearly above zero-skid err %.4f",
			last.X, last.Err, first.Err)
	}
}

func TestAblatePeriod(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep takes seconds")
	}
	r := NewRunner(SmallScale(), 7)
	tbl, series, err := r.AblatePeriod()
	if err != nil {
		t.Fatalf("AblatePeriod: %v", err)
	}
	t.Logf("\n%s", tbl.String())
	round, prime := series["round"], series["prime"]
	if len(round) != len(prime) {
		t.Fatal("series length mismatch")
	}
	// CallChain iterations are 100 instructions: every swept round period
	// is a multiple of 100 or 500, so each round point must be much worse
	// than its prime sibling.
	worse := 0
	for i := range round {
		if round[i].Err > prime[i].Err*2 {
			worse++
		}
	}
	if worse < len(round)-1 {
		t.Errorf("round periods beat prime periods too often: only %d/%d clearly worse",
			worse, len(round))
	}
}

func TestAblateLBRDepth(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep takes seconds")
	}
	r := NewRunner(SmallScale(), 7)
	tbl, series, err := r.AblateLBRDepth()
	if err != nil {
		t.Fatalf("AblateLBRDepth: %v", err)
	}
	t.Logf("\n%s", tbl.String())
	// Deeper stacks must help: depth 64 beats depth 4 by a wide margin.
	var at4, at64 float64
	for _, pt := range series {
		switch pt.X {
		case 4:
			at4 = pt.Err
		case 64:
			at64 = pt.Err
		}
	}
	if at64 >= at4 {
		t.Errorf("depth 64 err %.4f not below depth 4 err %.4f", at64, at4)
	}
}

func TestAblateBurst(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep takes seconds")
	}
	r := NewRunner(SmallScale(), 7)
	tbl, series, err := r.AblateBurst()
	if err != nil {
		t.Fatalf("AblateBurst: %v", err)
	}
	t.Logf("\n%s", tbl.String())
	pebs, pdir := series["pebs"], series["pdir"]
	// PDIR must dominate PEBS at every width; at width 1 (no bursts) they
	// converge.
	for i := range pebs {
		if pdir[i].Err > pebs[i].Err*1.05 {
			t.Errorf("width %v: pdir %.4f worse than pebs %.4f",
				pebs[i].X, pdir[i].Err, pebs[i].Err)
		}
	}
	// Wider retirement must not make PEBS better than it is at width 1.
	if pebs[len(pebs)-1].Err < pebs[0].Err*0.8 {
		t.Errorf("PEBS improves with wider bursts: %.4f (w=%v) vs %.4f (w=%v)",
			pebs[len(pebs)-1].Err, pebs[len(pebs)-1].X, pebs[0].Err, pebs[0].X)
	}
}

func TestAblateRandAmp(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep takes seconds")
	}
	r := NewRunner(SmallScale(), 7)
	tbl, series, err := r.AblateRandAmp()
	if err != nil {
		t.Fatalf("AblateRandAmp: %v", err)
	}
	t.Logf("\n%s", tbl.String())
	// No randomization resonates (CallChain + round base period);
	// moderate amplitude (12.5%) must be far better.
	var at0, atMid float64
	for _, pt := range series {
		switch pt.X {
		case 0:
			at0 = pt.Err
		case 0.125:
			atMid = pt.Err
		}
	}
	if atMid >= at0/2 {
		t.Errorf("randomization did not break resonance: amp0 %.4f, amp0.125 %.4f", at0, atMid)
	}
}

func TestTable3Rendering(t *testing.T) {
	tbl := RunTable3()
	s := tbl.String()
	for _, key := range []string{"classic", "precise", "pdir+ipfix", "lbr", "prime", "pebs"} {
		if !strings.Contains(s, key) {
			t.Errorf("Table 3 missing %q", key)
		}
	}
}
