package experiments

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"

	"pmutrust/internal/machine"
	"pmutrust/internal/results"
	"pmutrust/internal/sampling"
	"pmutrust/internal/workloads"
)

// TestPhasedIdentityKeysStable pins the results-store identity keys of
// the phased family (and one pre-existing workload as the control) under
// the canonical SmallScale/seed-42 runner. These hexes are what stored
// sweeps are addressed by: if this test fails, a change has silently
// invalidated every existing store file — either revert it or document
// the store-format break.
func TestPhasedIdentityKeysStable(t *testing.T) {
	want := map[string]string{
		"LatencyBiased": "6509494207d7f277", // control: pre-existing key unchanged
		"PhaseShift":    "8528d479b0394d2d",
		"PhasedAlt":     "55bde39dfa377337",
		"PhasedBurst":   "102011b9dff02eb6",
		"PhasedRamp":    "ebde8bf638321204",
	}
	r := NewRunner(SmallScale(), 42)
	classic, err := sampling.MethodByKey("classic")
	if err != nil {
		t.Fatal(err)
	}
	for name, wantKey := range want {
		spec, err := workloads.ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c := Cell{Workload: spec, Machine: machine.IvyBridge(), Method: classic}
		if got := r.CellIdentity(c).Key(); got != wantKey {
			t.Errorf("%s: identity key %s, want %s (store compatibility break)", name, got, wantKey)
		}
	}
}

// TestPhasedFamilyInMuxRows checks the registration side of the phased
// family: the mux tables gained the generated burst workload next to the
// hand-built PhaseShift.
func TestPhasedFamilyInMuxRows(t *testing.T) {
	names := make(map[string]bool)
	for _, s := range muxWorkloads() {
		names[s.Name] = true
	}
	for _, want := range []string{"PhaseShift", "PhasedBurst"} {
		if !names[want] {
			t.Errorf("mux workload rows missing %s: %v", want, names)
		}
	}
}

// TestRunPhasedStoreRoundTrip: RunPhased through a real store file, then
// a second run resuming from it. The resume must measure nothing and
// render a byte-identical table — the phased family obeys the same
// store/resume contract as Tables 1 and 2.
func TestRunPhasedStoreRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full phased matrix in -short mode")
	}
	path := filepath.Join(t.TempDir(), "store.jsonl")
	st, err := results.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	r1 := NewRunner(SmallScale(), 42)
	r1.Parallel = 4
	r1.Store = st
	tr1, err := r1.RunPhased()
	if err != nil {
		t.Fatal(err)
	}
	if stats := r1.StoreStats(); stats.Measured == 0 || stats.Cached != 0 {
		t.Fatalf("cold run stats = %+v", stats)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := results.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	r2 := NewRunner(SmallScale(), 42)
	r2.Parallel = 4
	r2.Store = st2
	tr2, err := r2.RunPhased()
	if err != nil {
		t.Fatal(err)
	}
	if stats := r2.StoreStats(); stats.Measured != 0 {
		t.Errorf("resume re-measured %d cells, want 0", stats.Measured)
	}
	if a, b := tr1.Table.String(), tr2.Table.String(); a != b {
		t.Errorf("resumed table differs:\n%s\nvs\n%s", a, b)
	}
	m1, _ := json.Marshal(tr1.Measurements)
	m2, _ := json.Marshal(tr2.Measurements)
	if !bytes.Equal(m1, m2) {
		t.Error("resumed measurements differ from cold run")
	}

	// Every row family member appears, and at least one cell measured a
	// real (non-negative) error on every workload.
	for _, spec := range workloads.PhasedFamily() {
		cells, ok := tr1.Cells[spec.Name]
		if !ok {
			t.Errorf("table missing workload %s", spec.Name)
			continue
		}
		found := false
		for _, byMethod := range cells {
			for _, v := range byMethod {
				if v >= 0 {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("no live measurement for %s", spec.Name)
		}
	}
}

// TestRunWorkloadsAdHoc: the pmubench -spec backend measures a
// user-supplied spec through the standard matrix.
func TestRunWorkloadsAdHoc(t *testing.T) {
	spec, err := workloads.BuiltinPhasedSpec("PhasedRamp")
	if err != nil {
		t.Fatal(err)
	}
	ws, err := spec.WorkloadSpec()
	if err != nil {
		t.Fatal(err)
	}
	// Rename to prove ad-hoc specs need no registry entry.
	ws.Name = "AdHocRamp"
	r := NewRunner(SmallScale(), 7)
	r.Parallel = 4
	tr, err := r.RunWorkloads("ad-hoc spec matrix", []workloads.Spec{ws})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.Cells["AdHocRamp"]; !ok {
		t.Fatalf("ad-hoc workload missing from table: %v", tr.Cells)
	}
	if _, err := r.RunWorkloads("empty", nil); err == nil {
		t.Error("empty workload list accepted")
	}
}
