package experiments

import (
	"testing"

	"pmutrust/internal/machine"
	"pmutrust/internal/sampling"
	"pmutrust/internal/workloads"
)

func TestRunnerCaching(t *testing.T) {
	r := NewRunner(SmallScale(), 1)
	spec, err := workloads.ByName("LatencyBiased")
	if err != nil {
		t.Fatal(err)
	}
	p1 := r.Workload(spec)
	p2 := r.Workload(spec)
	if p1 != p2 {
		t.Error("workload not cached")
	}
	ref1, err := r.Reference(spec)
	if err != nil {
		t.Fatal(err)
	}
	ref2, err := r.Reference(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ref1 != ref2 {
		t.Error("reference not cached")
	}
}

func TestMeasureUnsupported(t *testing.T) {
	r := NewRunner(SmallScale(), 1)
	spec, _ := workloads.ByName("LatencyBiased")
	m, _ := sampling.MethodByKey("lbr")
	meas, err := r.Measure(spec, machine.MagnyCours(), m)
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	if meas.Supported || meas.Err != -1 {
		t.Errorf("unsupported measurement: %+v", meas)
	}
}

func TestMeasureRepeats(t *testing.T) {
	s := SmallScale()
	s.Repeats = 3
	r := NewRunner(s, 1)
	spec, _ := workloads.ByName("LatencyBiased")
	m, _ := sampling.MethodByKey("precise+prime+rand")
	meas, err := r.Measure(spec, machine.IvyBridge(), m)
	if err != nil {
		t.Fatal(err)
	}
	if len(meas.PerRepeat) != 3 {
		t.Fatalf("repeats = %d", len(meas.PerRepeat))
	}
	// Randomized runs with different seeds should not all be identical.
	if meas.PerRepeat[0] == meas.PerRepeat[1] && meas.PerRepeat[1] == meas.PerRepeat[2] {
		t.Error("all repeats identical despite differing seeds")
	}
	// The mean lies within the repeat envelope.
	lo, hi := meas.PerRepeat[0], meas.PerRepeat[0]
	for _, e := range meas.PerRepeat {
		if e < lo {
			lo = e
		}
		if e > hi {
			hi = e
		}
	}
	if meas.Err < lo || meas.Err > hi {
		t.Errorf("mean %.4f outside [%v, %v]", meas.Err, lo, hi)
	}
}

func TestMeasureDeterministicAcrossRunners(t *testing.T) {
	spec, _ := workloads.ByName("G4Box")
	m, _ := sampling.MethodByKey("pdir+ipfix")
	a := NewRunner(SmallScale(), 5)
	b := NewRunner(SmallScale(), 5)
	ma, err := a.Measure(spec, machine.IvyBridge(), m)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := b.Measure(spec, machine.IvyBridge(), m)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Err != mb.Err {
		t.Errorf("same-seed runners disagree: %v vs %v", ma.Err, mb.Err)
	}
}

func TestScales(t *testing.T) {
	p := PaperScale()
	s := SmallScale()
	if p.Workload <= s.Workload {
		t.Error("paper scale not larger than small scale")
	}
	if p.Repeats < s.Repeats {
		t.Error("paper scale fewer repeats")
	}
	if p.PeriodBase == 0 || s.PeriodBase == 0 {
		t.Error("zero periods")
	}
	// Round-period resonance requires the scaled periods to stay
	// multiples of the CallChain iteration length (100).
	if p.PeriodBase%100 != 0 || s.PeriodBase%100 != 0 {
		t.Error("scaled periods must remain multiples of 100 for the resonance experiments")
	}
}

func TestTableResultGet(t *testing.T) {
	tr := &TableResult{Cells: map[string]map[string]map[string]float64{
		"w": {"m": {"k": 0.5}},
	}}
	if tr.Get("w", "m", "k") != 0.5 {
		t.Error("Get hit")
	}
	if tr.Get("w", "m", "other") != -1 || tr.Get("x", "m", "k") != -1 {
		t.Error("Get miss should be -1")
	}
}
