package experiments

import (
	"testing"

	"pmutrust/internal/cpu"
	"pmutrust/internal/isa"

	"pmutrust/internal/machine"
	"pmutrust/internal/pmu"
	"pmutrust/internal/sampling"
	"pmutrust/internal/workloads"
)

func TestFreqModeConvergesToTargetRate(t *testing.T) {
	p := workloads.MustBuild("G4Box", 0.3)
	freq := sampling.FreqMode()
	run, err := sampling.Collect(p, machine.IvyBridge(), freq, sampling.Options{
		PeriodBase: 2000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Samples) < 50 {
		t.Fatalf("samples = %d", len(run.Samples))
	}
	// After convergence, inter-sample cycle intervals should hover around
	// the target (PeriodBase cycles). Check the second half of the run.
	half := run.Samples[len(run.Samples)/2:]
	var sum float64
	for i := 1; i < len(half); i++ {
		sum += float64(half[i].Cycle - half[i-1].Cycle)
	}
	mean := sum / float64(len(half)-1)
	if mean < 1000 || mean > 4000 {
		t.Errorf("mean inter-sample interval %.0f cycles, want ≈2000", mean)
	}
	// The recorded per-sample periods must vary (feedback at work).
	first, varied := half[0].Period, false
	for _, s := range half {
		if s.Period != first {
			varied = true
			break
		}
	}
	if !varied {
		t.Error("frequency mode never adjusted the period")
	}
}

func TestFreqModeMassConservation(t *testing.T) {
	// Per-sample period weighting must keep the estimated instruction
	// mass near the true total even as periods drift.
	p := workloads.MustBuild("Test40", 0.3)
	freq := sampling.FreqMode()
	r := NewRunner(SmallScale(), 3)
	spec, _ := workloads.ByName("Test40")
	reference, err := r.Reference(spec)
	_ = reference
	if err != nil {
		t.Fatal(err)
	}
	_ = p
	e, n, err := r.MeasureOnce(spec, machine.IvyBridge(), freq, 3)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no samples")
	}
	if e < 0 || e > 2 {
		t.Errorf("freq-mode error out of range: %v", e)
	}
}

func TestRunFreqVsFixed(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the kernel set twice")
	}
	r := NewRunner(SmallScale(), 7)
	res, err := r.RunFreqVsFixed()
	if err != nil {
		t.Fatalf("RunFreqVsFixed: %v", err)
	}
	t.Logf("\n%s", res.Table.String())
	for _, k := range []string{"LatencyBiased", "CallChain", "G4Box", "Test40"} {
		if res.FixedErr[k] <= 0 || res.FreqErr[k] <= 0 {
			t.Errorf("%s: missing cells", k)
		}
	}
	// Frequency mode dodges resonance, so on CallChain (where the fixed
	// round period resonates) it must do better than fixed classic.
	if res.FreqErr["CallChain"] >= res.FixedErr["CallChain"] {
		t.Errorf("freq mode did not beat resonating fixed period on CallChain: %.4f vs %.4f",
			res.FreqErr["CallChain"], res.FixedErr["CallChain"])
	}
}

func TestFreqModePMUUnit(t *testing.T) {
	// Direct PMU check: with FreqMode the base period moves; without it
	// stays fixed.
	cfg := pmu.Config{
		Event: pmu.EvInstRetired, Precision: pmu.PreciseDist,
		Period: 100, FreqMode: true, TargetIntervalCycles: 500, Seed: 1,
	}
	unit := pmu.New(cfg)
	if unit.EffectiveBasePeriod() != 100 {
		t.Fatal("initial base period")
	}
	feedLinear(unit, 20_000)
	if unit.EffectiveBasePeriod() == 100 {
		t.Error("freq mode left the period untouched")
	}

	fixed := pmu.New(pmu.Config{
		Event: pmu.EvInstRetired, Precision: pmu.PreciseDist, Period: 100, Seed: 1,
	})
	feedLinear(fixed, 20_000)
	if fixed.EffectiveBasePeriod() != 100 {
		t.Error("fixed mode changed the period")
	}
}

func feedLinear(p *pmu.PMU, n int) {
	for i := 0; i < n; i++ {
		p.OnRetire(cpuEvent(uint32(i%509), uint64(i)))
	}
}

func cpuEvent(idx uint32, cycle uint64) cpu.RetireEvent {
	return cpu.RetireEvent{Idx: idx, Cycle: cycle, Seq: cycle + 1, Op: isa.OpAdd, Uops: 1}
}
