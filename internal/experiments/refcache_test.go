package experiments

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"

	"pmutrust/internal/machine"
	"pmutrust/internal/results"
	"pmutrust/internal/sampling"
	"pmutrust/internal/workloads"
)

// TestReferenceMemoization: a Runner with a RefStore collects each
// workload's ground truth once, appends it, and a second Runner over the
// same (reloaded) store serves every reference without re-executing —
// with the rebuilt profile structurally identical to a fresh one.
func TestReferenceMemoization(t *testing.T) {
	spec := workloads.Kernels()[0]
	path := filepath.Join(t.TempDir(), "store.jsonl.refs")

	st, err := results.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	r1 := NewRunner(SmallScale(), 42)
	r1.RefStore = st
	fresh, err := r1.Reference(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rs := r1.RefStats(); rs.Measured != 1 || rs.Cached != 0 {
		t.Fatalf("cold ref stats = %+v, want 1 collected", rs)
	}
	if st.Len() != 1 {
		t.Fatalf("ref store holds %d records, want 1", st.Len())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh process resuming against the same store file.
	st2, err := results.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	r2 := NewRunner(SmallScale(), 42)
	r2.RefStore = st2
	served, err := r2.Reference(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rs := r2.RefStats(); rs.Measured != 0 || rs.Cached != 1 {
		t.Fatalf("warm ref stats = %+v, want 1 served / 0 collected", rs)
	}
	if !reflect.DeepEqual(served.ExecCount, fresh.ExecCount) ||
		!reflect.DeepEqual(served.InstrCount, fresh.InstrCount) ||
		served.NetInstructions != fresh.NetInstructions ||
		served.TakenBranches != fresh.TakenBranches {
		t.Error("profile served from store differs from freshly collected one")
	}

	// Repeated lookups within one runner hit the in-process cache, not
	// the store counter.
	if _, err := r2.Reference(spec); err != nil {
		t.Fatal(err)
	}
	if rs := r2.RefStats(); rs.Cached != 1 {
		t.Errorf("in-process repeat reconsulted the store: %+v", rs)
	}
}

// TestReferenceMemoStaleShapeRecollected: a memo whose block count does
// not match the built program (a workload definition changed shape under
// an old store) is ignored and the reference re-collected, never trusted.
func TestReferenceMemoStaleShapeRecollected(t *testing.T) {
	spec := workloads.Kernels()[0]
	st := results.NewMemory()
	r := NewRunner(SmallScale(), 42)
	r.RefStore = st

	id := r.RefIdentity(spec)
	if err := st.Put(results.Record{
		Identity: id,
		Ref: &results.RefData{
			Blocks:          3,
			NetInstructions: 999,
			TakenBranches:   1,
			ExecCount:       []uint64{1, 2, 3}, // wrong shape for the real program
		},
	}); err != nil {
		t.Fatal(err)
	}

	rp, err := r.Reference(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rs := r.RefStats(); rs.Measured != 1 || rs.Cached != 0 {
		t.Fatalf("stale memo was served: stats %+v", rs)
	}
	if rp.NetInstructions == 999 {
		t.Error("stale memo's payload leaked into the profile")
	}
}

// TestRefIdentityDisjointFromMeasurements: reference records can never
// collide with measurement records, even in a shared store — the
// reserved method key addresses a disjoint key space, and the identity
// ignores machine/method/period/seed knobs so all sweep configurations
// at one scale share one ground truth.
func TestRefIdentityDisjointFromMeasurements(t *testing.T) {
	spec := workloads.Kernels()[0]
	r := NewRunner(SmallScale(), 42)
	refKey := r.RefIdentity(spec).Key()
	for _, m := range sampling.Registry() {
		c := Cell{Workload: spec, Machine: machine.IvyBridge(), Method: m}
		if r.CellIdentity(c).Key() == refKey {
			t.Fatalf("ref key collides with measurement cell %s", m.Key)
		}
	}
	// Different seeds and periods share the reference address; different
	// scales do not.
	r2 := NewRunner(SmallScale(), 7)
	if r2.RefIdentity(spec).Key() != refKey {
		t.Error("reference address depends on the base seed")
	}
	r3 := NewRunner(PaperScale(), 42)
	if r3.RefIdentity(spec).Key() == refKey {
		t.Error("reference address ignores the scale")
	}
}

// TestMeasureWithRefStoreByteIdentical: measurements made with a warm
// reference memo are byte-identical to measurements made with none —
// serving ground truth from the store is not allowed to perturb any
// downstream number.
func TestMeasureWithRefStoreByteIdentical(t *testing.T) {
	g := Grid{
		Workloads: workloads.Kernels()[:1],
		Machines:  []machine.Machine{machine.IvyBridge()},
		Methods:   sampling.Registry(),
	}
	refs := results.NewMemory()
	r1 := NewRunner(SmallScale(), 42)
	r1.RefStore = refs
	warmup, err := r1.Sweep(g, SweepOptions{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}

	r2 := NewRunner(SmallScale(), 42)
	r2.RefStore = refs
	served, err := r2.Sweep(g, SweepOptions{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rs := r2.RefStats(); rs.Measured != 0 || rs.Cached != len(g.Workloads) {
		t.Fatalf("second sweep ref stats = %+v, want all served", rs)
	}

	plain, err := NewRunner(SmallScale(), 42).Sweep(g, SweepOptions{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	wb, _ := json.Marshal(warmup)
	sb, _ := json.Marshal(served)
	pb, _ := json.Marshal(plain)
	if !bytes.Equal(sb, pb) || !bytes.Equal(wb, pb) {
		t.Errorf("ref-memoized sweep differs from plain sweep:\nwarm:   %s\nserved: %s\nplain:  %s", wb, sb, pb)
	}
}
