package isa

import (
	"strings"
	"testing"
)

func TestOpTableComplete(t *testing.T) {
	for op := Op(0); op < Op(NumOps); op++ {
		if op.Mnemonic() == "" || op.Mnemonic() == "invalid" {
			t.Errorf("op %d has no mnemonic", op)
		}
		if op.Latency() == 0 {
			t.Errorf("%s has zero latency", op)
		}
		if op.Uops() == 0 {
			t.Errorf("%s has zero uops", op)
		}
	}
	if Op(NumOps).Valid() {
		t.Error("out-of-range op reported valid")
	}
	if Op(200).Mnemonic() != "invalid" {
		t.Error("invalid op mnemonic")
	}
}

func TestBranchClassification(t *testing.T) {
	branches := []Op{OpJmp, OpJz, OpJnz, OpJlt, OpJge, OpCall, OpRet}
	for _, op := range branches {
		if !op.IsBranch() {
			t.Errorf("%s not classified as branch", op)
		}
		if op.ClassOf() != ClassBranch {
			t.Errorf("%s class = %s", op, op.ClassOf())
		}
	}
	conds := []Op{OpJz, OpJnz, OpJlt, OpJge}
	for _, op := range conds {
		if !op.IsCondBranch() {
			t.Errorf("%s not conditional", op)
		}
		if !op.ReadsFlags() {
			t.Errorf("%s does not read flags", op)
		}
	}
	if OpJmp.IsCondBranch() || OpCall.IsCondBranch() || OpRet.IsCondBranch() {
		t.Error("unconditional transfer classified conditional")
	}
	if !OpCall.IsCall() || OpRet.IsCall() {
		t.Error("call classification wrong")
	}
	if !OpRet.IsRet() || OpCall.IsRet() {
		t.Error("ret classification wrong")
	}
	for _, op := range []Op{OpAdd, OpDiv, OpLoad, OpNop, OpHalt, OpCmp} {
		if op.IsBranch() {
			t.Errorf("%s wrongly classified as branch", op)
		}
	}
}

func TestLatencyOrdering(t *testing.T) {
	// The cost model must keep the relationships the workloads rely on.
	if OpDiv.Latency() <= OpMul.Latency() {
		t.Error("div not slower than mul")
	}
	if OpMul.Latency() <= OpAdd.Latency() {
		t.Error("mul not slower than add")
	}
	if OpFdiv.Latency() <= OpFmul.Latency() {
		t.Error("fdiv not slower than fmul")
	}
	if OpLoad.Latency() <= OpAdd.Latency() {
		t.Error("load not slower than add")
	}
}

func TestMultiUopOps(t *testing.T) {
	// AMD IBS behaviour depends on these being multi-uop.
	for _, op := range []Op{OpDiv, OpRem, OpFdiv} {
		if op.Uops() < 2 {
			t.Errorf("%s has %d uops, want multi-uop", op, op.Uops())
		}
	}
	if OpStore.Uops() != 2 {
		t.Errorf("store uops = %d, want 2", OpStore.Uops())
	}
	if OpAdd.Uops() != 1 {
		t.Errorf("add uops = %d, want 1", OpAdd.Uops())
	}
}

func TestFlagsProtocol(t *testing.T) {
	if !OpCmp.SetsFlags() || !OpCmpi.SetsFlags() {
		t.Error("cmp ops do not set flags")
	}
	if OpAdd.SetsFlags() {
		t.Error("add sets flags")
	}
	if !OpAdd.WritesDst() || OpCmp.WritesDst() || OpStore.WritesDst() {
		t.Error("WritesDst wrong")
	}
	if !OpStore.ReadsSrc1() || !OpStore.ReadsSrc2() {
		t.Error("store operand reads wrong")
	}
	if OpMovi.ReadsSrc1() {
		t.Error("movi reads a source register")
	}
}

func TestDisasm(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpNop}, "nop"},
		{Instr{Op: OpMovi, Dst: 3, Imm: -7}, "movi r3, #-7"},
		{Instr{Op: OpAdd, Dst: 1, Src1: 2, Src2: 3}, "add r1, r2, r3"},
		{Instr{Op: OpAddi, Dst: 1, Src1: 1, Imm: 4}, "addi r1, r1, #4"},
		{Instr{Op: OpShl, Dst: 0, Src1: 0, Imm: 65}, "shl r0, r0, #1"},
		{Instr{Op: OpLoad, Dst: 5, Src1: 4, Imm: 8}, "load r5, [r4+8]"},
		{Instr{Op: OpStore, Src1: 5, Src2: 4, Imm: 0}, "store [r4+0], r5"},
		{Instr{Op: OpCmpi, Src1: 8, Imm: 0}, "cmpi r8, #0"},
		{Instr{Op: OpJnz, Target: 12}, "jnz @12"},
		{Instr{Op: OpCall, Target: 40}, "call @40"},
		{Instr{Op: OpRet}, "ret"},
		{Instr{Op: OpHalt}, "halt"},
	}
	for _, tc := range cases {
		if got := tc.in.Disasm(); got != tc.want {
			t.Errorf("Disasm(%v) = %q, want %q", tc.in.Op, got, tc.want)
		}
		if tc.in.String() != tc.in.Disasm() {
			t.Error("String != Disasm")
		}
	}
}

func TestClassStrings(t *testing.T) {
	classes := []Class{ClassALU, ClassMul, ClassDiv, ClassFP, ClassFPDiv, ClassMem, ClassBranch, ClassOther}
	seen := map[string]bool{}
	for _, c := range classes {
		s := c.String()
		if s == "" || s == "unknown" {
			t.Errorf("class %d has no name", c)
		}
		if seen[s] {
			t.Errorf("duplicate class name %q", s)
		}
		seen[s] = true
	}
	if Class(99).String() != "unknown" {
		t.Error("invalid class name")
	}
}

func TestDisasmAllOpsNonEmpty(t *testing.T) {
	for op := Op(0); op < Op(NumOps); op++ {
		in := Instr{Op: op, Dst: 1, Src1: 2, Src2: 3, Imm: 5, Target: 7}
		s := in.Disasm()
		if s == "" || strings.Contains(s, "?") {
			t.Errorf("Disasm(%s) = %q", op, s)
		}
	}
}

func TestMaxUopsMatchesTable(t *testing.T) {
	max := uint8(0)
	for op := Op(0); op < Op(NumOps); op++ {
		if u := op.Uops(); u > max {
			max = u
		}
	}
	if uint64(max) != MaxUops {
		t.Errorf("MaxUops = %d, but the opcode table peaks at %d", MaxUops, max)
	}
}

func TestMaxLatencyMatchesTable(t *testing.T) {
	max := uint8(0)
	for op := Op(0); op < Op(NumOps); op++ {
		if l := op.Latency(); l > max {
			max = l
		}
	}
	if uint64(max) != MaxLatency {
		t.Errorf("MaxLatency = %d, but the opcode table peaks at %d", MaxLatency, max)
	}
}
