package isa

import (
	"fmt"
	"strings"
)

// Disasm renders the instruction as assembly text. Branch targets are
// rendered as raw code indices; program.Disasm substitutes labels.
func (in Instr) Disasm() string {
	var b strings.Builder
	b.WriteString(in.Op.Mnemonic())
	args := in.operandStrings()
	if len(args) > 0 {
		b.WriteByte(' ')
		b.WriteString(strings.Join(args, ", "))
	}
	return b.String()
}

func (in Instr) operandStrings() []string {
	r := func(x Reg) string { return fmt.Sprintf("r%d", x) }
	switch in.Op {
	case OpNop, OpHalt:
		return nil
	case OpMov:
		return []string{r(in.Dst), r(in.Src1)}
	case OpMovi:
		return []string{r(in.Dst), fmt.Sprintf("#%d", in.Imm)}
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpFadd, OpFmul, OpFdiv, OpFma:
		return []string{r(in.Dst), r(in.Src1), r(in.Src2)}
	case OpAddi:
		return []string{r(in.Dst), r(in.Src1), fmt.Sprintf("#%d", in.Imm)}
	case OpShl, OpShr:
		return []string{r(in.Dst), r(in.Src1), fmt.Sprintf("#%d", in.Imm&63)}
	case OpLoad:
		return []string{r(in.Dst), fmt.Sprintf("[r%d+%d]", in.Src1, in.Imm)}
	case OpStore:
		return []string{fmt.Sprintf("[r%d+%d]", in.Src2, in.Imm), r(in.Src1)}
	case OpCmp:
		return []string{r(in.Src1), r(in.Src2)}
	case OpCmpi:
		return []string{r(in.Src1), fmt.Sprintf("#%d", in.Imm)}
	case OpJmp, OpJz, OpJnz, OpJlt, OpJge, OpCall:
		return []string{fmt.Sprintf("@%d", in.Target)}
	case OpRet:
		return nil
	default:
		return []string{"?"}
	}
}

// String implements fmt.Stringer.
func (in Instr) String() string { return in.Disasm() }
