// Package isa defines the synthetic instruction set executed by the CPU
// simulator (internal/cpu).
//
// The ISA is a small fixed-width RISC-like set, chosen so that the
// retirement-stream phenomena the paper studies — long-latency shadows,
// taken-branch density, multi-uop instructions, call/return chains — can
// all be expressed, while keeping the simulator fast enough to retire tens
// of millions of instructions per second.
//
// Addresses: every instruction occupies one slot in the program's flat code
// array; the slot index is the canonical "address". Display addresses
// multiply by 4 and add a base (see program.DisplayAddr) to look like the
// x86 profiles in the paper.
package isa

// Reg identifies one of the 16 general-purpose integer registers r0..r15.
// By convention the workload generators use r0..r7 as data registers,
// r8..r11 as loop counters, r12..r13 as LCG state for data-driven
// branching, and r14..r15 as scratch.
type Reg uint8

// NumRegs is the architectural register count.
const NumRegs = 16

// Op enumerates the instruction opcodes.
type Op uint8

const (
	// OpNop does nothing. 1 cycle, 1 uop.
	OpNop Op = iota
	// OpMov copies Src1 to Dst.
	OpMov
	// OpMovi loads the immediate Imm into Dst.
	OpMovi
	// OpAdd computes Dst = Src1 + Src2.
	OpAdd
	// OpAddi computes Dst = Src1 + Imm.
	OpAddi
	// OpSub computes Dst = Src1 - Src2.
	OpSub
	// OpMul computes Dst = Src1 * Src2. 3-cycle latency.
	OpMul
	// OpDiv computes Dst = Src1 / Src2 (0 if Src2 == 0; the simulator has
	// no faults). Long latency, multi-uop: the canonical "expensive"
	// instruction whose shadow distorts naive sampling.
	OpDiv
	// OpRem computes Dst = Src1 % Src2 (0 if Src2 == 0). Same cost as div.
	OpRem
	// OpAnd computes Dst = Src1 & Src2.
	OpAnd
	// OpOr computes Dst = Src1 | Src2.
	OpOr
	// OpXor computes Dst = Src1 ^ Src2.
	OpXor
	// OpShl computes Dst = Src1 << (Imm & 63).
	OpShl
	// OpShr computes Dst = Src1 >> (Imm & 63) (logical).
	OpShr
	// OpLoad loads Dst from memory word (Src1 + Imm) % memsize. Medium
	// latency, models an L1 hit; workloads emulate pointer chasing by
	// chaining loads through the address register.
	OpLoad
	// OpStore stores Src1 to memory word (Src2 + Imm) % memsize. 2 uops
	// (address generation + data), retiring as one instruction.
	OpStore
	// OpFadd is floating point add on the integer register file
	// (bit-pattern semantics are irrelevant to profiling; cost is what
	// matters). 3-cycle latency.
	OpFadd
	// OpFmul is floating point multiply. 5-cycle latency.
	OpFmul
	// OpFdiv is floating point divide: the longest-latency op.
	OpFdiv
	// OpFma is fused multiply-add: Dst = Src1*Src2 + Dst. 5 cycles, 1 uop.
	OpFma
	// OpCmp compares Src1 and Src2 and sets the (single, implicit) flags
	// register used by conditional branches.
	OpCmp
	// OpCmpi compares Src1 with Imm and sets flags.
	OpCmpi
	// OpJmp unconditionally branches to Target. Always taken.
	OpJmp
	// OpJz branches to Target when the last comparison was "equal".
	OpJz
	// OpJnz branches to Target when the last comparison was "not equal".
	OpJnz
	// OpJlt branches to Target when the last comparison was "less than"
	// (signed).
	OpJlt
	// OpJge branches to Target when the last comparison was "greater or
	// equal" (signed).
	OpJge
	// OpCall pushes the return address and branches to Target (a function
	// entry). Always taken; 2 uops.
	OpCall
	// OpRet pops the return address and branches to it. Always taken.
	OpRet
	// OpHalt terminates execution. Exactly one per program, in the exit
	// block of the entry function.
	OpHalt

	numOps
)

// NumOps is the number of defined opcodes.
const NumOps = int(numOps)

// Instr is one decoded instruction. Instructions are fixed-width and fully
// decoded at build time; the simulator never re-parses anything.
type Instr struct {
	// Op is the opcode.
	Op Op
	// Dst is the destination register for ops that write one.
	Dst Reg
	// Src1 and Src2 are source registers.
	Src1, Src2 Reg
	// Imm is the immediate operand (OpMovi, OpAddi, OpShl/OpShr shift
	// amounts, OpLoad/OpStore displacements, OpCmpi).
	Imm int64
	// Target is the code-array index this instruction branches to, for
	// branch/call ops. Resolved by the program builder; -1 when unused.
	Target int32
}

// Class groups opcodes by execution resource, for reporting and for the
// timing model.
type Class uint8

const (
	// ClassALU is single-cycle integer arithmetic/logic.
	ClassALU Class = iota
	// ClassMul is the integer multiplier.
	ClassMul
	// ClassDiv is the (long-latency) divider.
	ClassDiv
	// ClassFP is pipelined floating point.
	ClassFP
	// ClassFPDiv is the floating point divider.
	ClassFPDiv
	// ClassMem is load/store.
	ClassMem
	// ClassBranch is all control flow (jumps, calls, returns).
	ClassBranch
	// ClassOther is NOP and HALT.
	ClassOther
)

// opInfo is the static property table, indexed by Op.
var opInfo = [numOps]struct {
	mnemonic string
	latency  uint8
	uops     uint8
	class    Class
	cond     bool // conditional branch
	branch   bool // any control transfer
	call     bool
	ret      bool
	writes   bool // writes Dst
	reads1   bool // reads Src1
	reads2   bool // reads Src2
	setsF    bool // sets flags
	readsF   bool // reads flags
}{
	OpNop:   {"nop", 1, 1, ClassOther, false, false, false, false, false, false, false, false, false},
	OpMov:   {"mov", 1, 1, ClassALU, false, false, false, false, true, true, false, false, false},
	OpMovi:  {"movi", 1, 1, ClassALU, false, false, false, false, true, false, false, false, false},
	OpAdd:   {"add", 1, 1, ClassALU, false, false, false, false, true, true, true, false, false},
	OpAddi:  {"addi", 1, 1, ClassALU, false, false, false, false, true, true, false, false, false},
	OpSub:   {"sub", 1, 1, ClassALU, false, false, false, false, true, true, true, false, false},
	OpMul:   {"mul", 3, 1, ClassMul, false, false, false, false, true, true, true, false, false},
	OpDiv:   {"div", 22, 4, ClassDiv, false, false, false, false, true, true, true, false, false},
	OpRem:   {"rem", 22, 4, ClassDiv, false, false, false, false, true, true, true, false, false},
	OpAnd:   {"and", 1, 1, ClassALU, false, false, false, false, true, true, true, false, false},
	OpOr:    {"or", 1, 1, ClassALU, false, false, false, false, true, true, true, false, false},
	OpXor:   {"xor", 1, 1, ClassALU, false, false, false, false, true, true, true, false, false},
	OpShl:   {"shl", 1, 1, ClassALU, false, false, false, false, true, true, false, false, false},
	OpShr:   {"shr", 1, 1, ClassALU, false, false, false, false, true, true, false, false, false},
	OpLoad:  {"load", 4, 1, ClassMem, false, false, false, false, true, true, false, false, false},
	OpStore: {"store", 1, 2, ClassMem, false, false, false, false, false, true, true, false, false},
	OpFadd:  {"fadd", 3, 1, ClassFP, false, false, false, false, true, true, true, false, false},
	OpFmul:  {"fmul", 5, 1, ClassFP, false, false, false, false, true, true, true, false, false},
	OpFdiv:  {"fdiv", 24, 4, ClassFPDiv, false, false, false, false, true, true, true, false, false},
	OpFma:   {"fma", 5, 1, ClassFP, false, false, false, false, true, true, true, false, false},
	OpCmp:   {"cmp", 1, 1, ClassALU, false, false, false, false, false, true, true, true, false},
	OpCmpi:  {"cmpi", 1, 1, ClassALU, false, false, false, false, false, true, false, true, false},
	OpJmp:   {"jmp", 1, 1, ClassBranch, false, true, false, false, false, false, false, false, false},
	OpJz:    {"jz", 1, 1, ClassBranch, true, true, false, false, false, false, false, false, true},
	OpJnz:   {"jnz", 1, 1, ClassBranch, true, true, false, false, false, false, false, false, true},
	OpJlt:   {"jlt", 1, 1, ClassBranch, true, true, false, false, false, false, false, false, true},
	OpJge:   {"jge", 1, 1, ClassBranch, true, true, false, false, false, false, false, false, true},
	OpCall:  {"call", 2, 2, ClassBranch, false, true, true, false, false, false, false, false, false},
	OpRet:   {"ret", 2, 1, ClassBranch, false, true, false, true, false, false, false, false, false},
	OpHalt:  {"halt", 1, 1, ClassOther, false, false, false, false, false, false, false, false, false},
}

// MaxUops is the largest Uops() value of any defined opcode. The PMU's
// bulk-advance headroom conversion divides by it to turn a uop budget into
// a guaranteed-safe instruction count (internal/pmu FastHeadroom); a test
// asserts it stays in sync with the opcode table.
const MaxUops = 4

// MaxLatency is the largest Latency() value of any defined opcode (OpFdiv).
// cpu.Config.MaxRetireCyclesPerInstr folds it into the worst-case
// retirement-cycle advance per instruction, which the multiplexed PMU
// (internal/pmu Mux) uses to convert a cycle deadline into a
// guaranteed-safe instruction headroom; a test asserts it stays in sync
// with the opcode table.
const MaxLatency = 24

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < numOps }

// Mnemonic returns the assembly mnemonic.
func (o Op) Mnemonic() string {
	if !o.Valid() {
		return "invalid"
	}
	return opInfo[o].mnemonic
}

// Latency returns the execution latency in cycles.
func (o Op) Latency() uint8 { return opInfo[o].latency }

// Uops returns the number of micro-operations the instruction decodes to.
// Multi-uop instructions matter for AMD IBS, which samples uops rather
// than instructions (paper §6.2).
func (o Op) Uops() uint8 { return opInfo[o].uops }

// ClassOf returns the execution resource class.
func (o Op) ClassOf() Class { return opInfo[o].class }

// IsBranch reports whether the op is any control transfer (including calls
// and returns).
func (o Op) IsBranch() bool { return opInfo[o].branch }

// IsCondBranch reports whether the op is a conditional branch.
func (o Op) IsCondBranch() bool { return opInfo[o].cond }

// IsCall reports whether the op is a call.
func (o Op) IsCall() bool { return opInfo[o].call }

// IsRet reports whether the op is a return.
func (o Op) IsRet() bool { return opInfo[o].ret }

// WritesDst reports whether the op writes its Dst register.
func (o Op) WritesDst() bool { return opInfo[o].writes }

// ReadsSrc1 reports whether the op reads Src1.
func (o Op) ReadsSrc1() bool { return opInfo[o].reads1 }

// ReadsSrc2 reports whether the op reads Src2.
func (o Op) ReadsSrc2() bool { return opInfo[o].reads2 }

// SetsFlags reports whether the op writes the flags register.
func (o Op) SetsFlags() bool { return opInfo[o].setsF }

// ReadsFlags reports whether the op reads the flags register.
func (o Op) ReadsFlags() bool { return opInfo[o].readsF }

// String implements fmt.Stringer.
func (o Op) String() string { return o.Mnemonic() }

// ClassName returns a human-readable name for an execution class.
func (c Class) String() string {
	switch c {
	case ClassALU:
		return "alu"
	case ClassMul:
		return "mul"
	case ClassDiv:
		return "div"
	case ClassFP:
		return "fp"
	case ClassFPDiv:
		return "fpdiv"
	case ClassMem:
		return "mem"
	case ClassBranch:
		return "branch"
	case ClassOther:
		return "other"
	default:
		return "unknown"
	}
}
