package lbr

import (
	"math"
	"testing"

	"pmutrust/internal/machine"
	"pmutrust/internal/pmu"
	"pmutrust/internal/program"
	"pmutrust/internal/ref"
	"pmutrust/internal/sampling"
)

// chainProgram: a loop over three blocks connected by taken branches, so
// LBR decoding is fully exercised: body1 --jmp--> body2 --(fall)--> latch
// --jnz--> body1.
func chainProgram(t *testing.T, n int64) *program.Program {
	t.Helper()
	b := program.NewBuilder("chain")
	f := b.Func("main")
	e := f.Block("entry")
	e.Movi(1, n)
	b1 := f.Block("body1")
	b1.Addi(2, 2, 1)
	b1.Addi(2, 2, 2)
	b1.Jmp("body2")
	b2 := f.Block("body2")
	b2.Addi(3, 3, 1)
	latch := f.Block("latch")
	latch.Addi(1, 1, -1)
	latch.Cmpi(1, 0)
	latch.Jnz("body1")
	f.Block("exit").Halt()
	return b.MustBuild()
}

func lbrMethod(t *testing.T) sampling.Method {
	t.Helper()
	m, err := sampling.MethodByKey("lbr")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuildProfileRequiresLBRMethod(t *testing.T) {
	p := chainProgram(t, 10)
	m, _ := sampling.MethodByKey("classic")
	if _, _, err := BuildProfile(p, &sampling.Run{Method: m}); err == nil {
		t.Error("non-LBR method accepted")
	}
}

func TestDecodeSyntheticStack(t *testing.T) {
	p := chainProgram(t, 10)
	// Find the block boundaries.
	var body1, body2, latch *program.Block
	for _, blk := range p.Blocks {
		switch blk.Label {
		case "body1":
			body1 = blk
		case "body2":
			body2 = blk
		case "latch":
			latch = blk
		}
	}
	jmpIdx := uint32(body1.End() - 1)
	jnzIdx := uint32(latch.End() - 1)

	// One synthetic stack covering two loop iterations:
	// jnz→body1, jmp→body2, jnz→body1, jmp→body2.
	stack := []pmu.BranchRecord{
		{From: jnzIdx, To: uint32(body1.Start)},
		{From: jmpIdx, To: uint32(body2.Start)},
		{From: jnzIdx, To: uint32(body1.Start)},
		{From: jmpIdx, To: uint32(body2.Start)},
	}
	m := lbrMethod(t)
	run := &sampling.Run{
		Machine: machine.IvyBridge(),
		Method:  m,
		Period:  30, // 30 taken branches per PMI
		Samples: []pmu.Sample{{IP: 0, LBR: stack}},
	}
	bp, ds, err := BuildProfile(p, run)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Stacks != 1 || ds.Malformed != 0 {
		t.Errorf("decode stats: %+v", ds)
	}
	// Segments: body1 (×2: jnz→jmp is exactly body1), body2+latch (×1:
	// jmp target to next jnz source spans both). scale = 30/3 = 10.
	if ds.Segments != 3 {
		t.Errorf("segments = %d, want 3", ds.Segments)
	}
	if got := bp.ExecEstimate[body1.ID]; got != 20 {
		t.Errorf("body1 exec = %v, want 20", got)
	}
	if got := bp.ExecEstimate[body2.ID]; got != 10 {
		t.Errorf("body2 exec = %v, want 10", got)
	}
	if got := bp.ExecEstimate[latch.ID]; got != 10 {
		t.Errorf("latch exec = %v, want 10", got)
	}
	if got := bp.InstrEstimate[latch.ID]; got != 10*float64(latch.Len()) {
		t.Errorf("latch instrs = %v", got)
	}
}

func TestMalformedSegmentSkipped(t *testing.T) {
	p := chainProgram(t, 10)
	// A backwards segment: target after the next source.
	stack := []pmu.BranchRecord{
		{From: 50, To: uint32(len(p.Code) - 1)},
		{From: 0, To: 1},
	}
	run := &sampling.Run{
		Method:  lbrMethod(t),
		Period:  10,
		Samples: []pmu.Sample{{LBR: stack}},
	}
	_, ds, err := BuildProfile(p, run)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Malformed != 1 {
		t.Errorf("malformed = %d, want 1", ds.Malformed)
	}
}

func TestShortStacksIgnored(t *testing.T) {
	p := chainProgram(t, 10)
	run := &sampling.Run{
		Method:  lbrMethod(t),
		Period:  10,
		Samples: []pmu.Sample{{LBR: nil}, {LBR: []pmu.BranchRecord{{From: 1, To: 2}}}},
	}
	bp, ds, err := BuildProfile(p, run)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Stacks != 0 || bp.TotalSamples != 0 {
		t.Errorf("short stacks were decoded: %+v", ds)
	}
}

func TestEndToEndEstimateMatchesReference(t *testing.T) {
	// The headline property: LBR-estimated block instruction counts land
	// within a few percent of exact instrumentation on a real run.
	p := chainProgram(t, 60_000)
	reference, err := ref.Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sampling.Collect(p, machine.IvyBridge(), lbrMethod(t), sampling.Options{
		PeriodBase: 1000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	bp, ds, err := BuildProfile(p, run)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Malformed != 0 {
		t.Errorf("malformed segments on clean run: %d", ds.Malformed)
	}
	for i, blk := range p.Blocks {
		refCount := float64(reference.InstrCount[i])
		if refCount < float64(reference.NetInstructions)/100 {
			continue // skip cold blocks (entry/exit)
		}
		rel := math.Abs(bp.InstrEstimate[i]-refCount) / refCount
		if rel > 0.10 {
			t.Errorf("block %s: LBR estimate off by %.1f%% (est %.0f, ref %.0f)",
				blk.Label, 100*rel, bp.InstrEstimate[i], refCount)
		}
	}
}

func TestSegmentLengths(t *testing.T) {
	p := chainProgram(t, 5_000)
	run, err := sampling.Collect(p, machine.Westmere(), lbrMethod(t), sampling.Options{
		PeriodBase: 500, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	lengths := SegmentLengths(p, run)
	if len(lengths) == 0 {
		t.Fatal("no segments")
	}
	for _, l := range lengths {
		if l < 1 || l > len(p.Code) {
			t.Errorf("segment length %d out of range", l)
		}
	}
}
