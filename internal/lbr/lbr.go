// Package lbr implements Last-Branch-Record analysis: reconstructing basic
// block execution counts from sampled LBR stacks (§3.2 of the paper).
//
// An LBR stack is a window of the most recent taken branches, as
// source/target pairs <S_i, T_i>. Between a target T_i and the next source
// S_{i+1} the processor executed a straight-line run of code with no taken
// branches, so every basic block in [T_i, S_{i+1}] executed exactly once.
// Walking all consecutive pairs of every collected stack yields block
// execution counts; scaling by the sampling period over the window length
// makes the counts an estimate of the whole run (each PMI stands for
// Period taken branches, of which the stack exposes entries−1 segments).
package lbr

import (
	"fmt"

	"pmutrust/internal/pmu"
	"pmutrust/internal/profile"
	"pmutrust/internal/program"
	"pmutrust/internal/sampling"
)

// DecodeStats reports LBR decoding health; tests and the lbrdump tool use
// it to verify the decoder against ground truth.
type DecodeStats struct {
	// Stacks is the number of stacks decoded.
	Stacks int
	// Segments is the number of straight-line segments walked.
	Segments int
	// Blocks is the total number of block executions observed (before
	// scaling).
	Blocks int
	// Malformed counts segments whose target/source pair did not map to a
	// valid straight-line run (should be zero in this simulator; real
	// hardware produces these on e.g. context switches).
	Malformed int
}

// BuildProfile reconstructs a basic-block profile from the LBR stacks of
// run. The run must have been collected with a method that captures LBR
// stacks on a taken-branches event (sampling.Registry's "lbr" method).
func BuildProfile(prog *program.Program, run *sampling.Run) (*profile.BlockProfile, DecodeStats, error) {
	if !run.Method.UseLBRStack {
		return nil, DecodeStats{}, fmt.Errorf("lbr: method %s does not collect LBR stacks", run.Method.Key)
	}
	bp := profile.NewBlockProfile(prog)
	var ds DecodeStats
	for i := range run.Samples {
		s := &run.Samples[i]
		if len(s.LBR) < 2 {
			continue
		}
		ds.Stacks++
		// Each stack stands for Period taken-branch events; it exposes
		// len(LBR)-1 inter-branch segments. Every block observed in the
		// window therefore represents Period/(len-1) executions.
		scale := float64(run.Period) / float64(len(s.LBR)-1)
		walkStack(prog, s.LBR, &ds, func(blockID int) {
			bp.ExecEstimate[blockID] += scale
			bp.InstrEstimate[blockID] += scale * float64(prog.Blocks[blockID].Len())
			ds.Blocks++
		})
		bp.Samples[prog.BlockOf[s.LBR[len(s.LBR)-1].From]]++
		bp.TotalSamples++
	}
	return bp, ds, nil
}

// walkStack visits every basic block executed within the stack's
// straight-line segments, invoking visit once per block execution.
//
// For each consecutive pair of records (r_i, r_{i+1}), control flowed from
// r_i.To through sequential code to r_{i+1}.From (which is the next taken
// branch). Both endpoints are included. The branch record r_i itself also
// proves the *source block* of r_i executed, but that block is already
// covered as the endpoint of the previous segment; only the oldest
// record's source block would be missed, and it is excluded deliberately —
// the window's leading edge is truncated on real hardware too.
func walkStack(prog *program.Program, stack []pmu.BranchRecord, ds *DecodeStats, visit func(int)) {
	for i := 0; i+1 < len(stack); i++ {
		from := stack[i].To
		to := stack[i+1].From
		if from > to || int(to) >= len(prog.Code) {
			// A segment that runs "backwards" cannot be a straight-line
			// run; real tools drop these (interrupted stacks).
			ds.Malformed++
			continue
		}
		first := int(prog.BlockOf[from])
		last := int(prog.BlockOf[to])
		// The segment must begin at a block boundary: branch targets are
		// block starts by construction. The end is the *source* of the
		// next branch: the branch is the last instruction of its block,
		// so the final block is fully covered as well.
		ds.Segments++
		for b := first; b <= last; b++ {
			visit(b)
		}
	}
}

// SegmentLengths returns the distribution of straight-line segment lengths
// (in instructions) across all stacks of a run: the "effective number of
// instructions that the sample corresponds to" (§5.1, testG4Box
// discussion). Used by lbrdump and the ablation benches.
func SegmentLengths(prog *program.Program, run *sampling.Run) []int {
	var out []int
	for i := range run.Samples {
		s := &run.Samples[i]
		for j := 0; j+1 < len(s.LBR); j++ {
			from := s.LBR[j].To
			to := s.LBR[j+1].From
			if from > to || int(to) >= len(prog.Code) {
				continue
			}
			out = append(out, int(to-from)+1)
		}
	}
	return out
}
