package lbr

import (
	"fmt"

	"pmutrust/internal/profile"
	"pmutrust/internal/program"
	"pmutrust/internal/sampling"
)

// BuildEdgeProfile reconstructs a block-level control-flow edge profile
// from the LBR stacks of run — the PGO-grade output §2.1 motivates.
//
// Two kinds of edges are recovered:
//
//   - taken edges: every LBR record <S, T> is one traversal of the edge
//     block(S) → block(T). A window of n records stands for Period taken
//     branches, so each record is scaled by Period/n.
//   - fallthrough edges: within a straight-line segment (T_i, S_{i+1}),
//     consecutive blocks are connected by not-taken transitions; each
//     window exposes n−1 segments, scaled by Period/(n−1).
func BuildEdgeProfile(prog *program.Program, run *sampling.Run) (*profile.EdgeProfile, error) {
	if !run.Method.UseLBRStack {
		return nil, fmt.Errorf("lbr: method %s does not collect LBR stacks", run.Method.Key)
	}
	ep := profile.NewEdgeProfile(prog)
	codeLen := uint32(len(prog.Code))
	for i := range run.Samples {
		s := &run.Samples[i]
		n := len(s.LBR)
		if n < 2 {
			continue
		}
		takenScale := float64(run.Period) / float64(n)
		segScale := float64(run.Period) / float64(n-1)
		for j, rec := range s.LBR {
			if rec.From >= codeLen || rec.To >= codeLen {
				continue
			}
			ep.Add(int(prog.BlockOf[rec.From]), int(prog.BlockOf[rec.To]), takenScale)
			if j+1 < n {
				from := rec.To
				to := s.LBR[j+1].From
				if from > to || to >= codeLen {
					continue
				}
				first := int(prog.BlockOf[from])
				last := int(prog.BlockOf[to])
				for b := first; b < last; b++ {
					ep.Add(b, b+1, segScale)
				}
			}
		}
	}
	return ep, nil
}
