package lbr

import (
	"fmt"
	"sort"

	"pmutrust/internal/program"
	"pmutrust/internal/sampling"
)

// CallEdge is one caller→callee edge of the dynamic call graph, at
// function granularity.
type CallEdge struct {
	// Caller and Callee are function IDs.
	Caller, Callee int
}

// CallGraph is a dynamic call graph estimated from LBR call records —
// what perf's --call-graph lbr mode reconstructs. Counts are scaled
// call-execution estimates, like the block estimates of BuildProfile.
type CallGraph struct {
	// Prog is the profiled program.
	Prog *program.Program
	// Counts maps call edges to estimated traversal counts.
	Counts map[CallEdge]float64
}

// BuildCallGraph extracts the function-level call graph from the LBR
// stacks of run. Only call records (branches into a function entry from
// another function) contribute; returns and intra-function jumps are
// ignored.
func BuildCallGraph(prog *program.Program, run *sampling.Run) (*CallGraph, error) {
	if !run.Method.UseLBRStack {
		return nil, fmt.Errorf("lbr: method %s does not collect LBR stacks", run.Method.Key)
	}
	cg := &CallGraph{Prog: prog, Counts: make(map[CallEdge]float64)}
	codeLen := uint32(len(prog.Code))
	for i := range run.Samples {
		s := &run.Samples[i]
		n := len(s.LBR)
		if n == 0 {
			continue
		}
		scale := float64(run.Period) / float64(n)
		for _, rec := range s.LBR {
			if rec.From >= codeLen || rec.To >= codeLen {
				continue
			}
			caller := int(prog.FuncOf[rec.From])
			callee := int(prog.FuncOf[rec.To])
			if caller == callee {
				continue
			}
			// A cross-function branch landing on a function entry is a
			// call; landing elsewhere is a return (back to the call
			// continuation) and is skipped.
			if int(rec.To) != prog.Funcs[callee].Start {
				continue
			}
			cg.Counts[CallEdge{Caller: caller, Callee: callee}] += scale
		}
	}
	return cg, nil
}

// Callees returns callee function IDs of caller, hottest first.
func (cg *CallGraph) Callees(caller int) []int {
	type kv struct {
		id int
		c  float64
	}
	var out []kv
	for e, c := range cg.Counts {
		if e.Caller == caller {
			out = append(out, kv{e.Callee, c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].c != out[j].c {
			return out[i].c > out[j].c
		}
		return out[i].id < out[j].id
	})
	ids := make([]int, len(out))
	for i, e := range out {
		ids[i] = e.id
	}
	return ids
}

// TotalCalls returns the total estimated call count.
func (cg *CallGraph) TotalCalls() float64 {
	var sum float64
	for _, c := range cg.Counts {
		sum += c
	}
	return sum
}

// Format renders the call graph as indented text, hottest edges first per
// caller, with estimated counts.
func (cg *CallGraph) Format() string {
	p := cg.Prog
	var callers []int
	seen := make(map[int]bool)
	for e := range cg.Counts {
		if !seen[e.Caller] {
			seen[e.Caller] = true
			callers = append(callers, e.Caller)
		}
	}
	sort.Ints(callers)
	var b []byte
	for _, caller := range callers {
		b = append(b, fmt.Sprintf("%s\n", p.Funcs[caller].Name)...)
		for _, callee := range cg.Callees(caller) {
			c := cg.Counts[CallEdge{Caller: caller, Callee: callee}]
			b = append(b, fmt.Sprintf("  -> %-20s %12.0f\n", p.Funcs[callee].Name, c)...)
		}
	}
	return string(b)
}
