package lbr

import (
	"math"
	"strings"
	"testing"

	"pmutrust/internal/machine"
	"pmutrust/internal/program"
	"pmutrust/internal/sampling"
)

// callGraphProgram: main calls a() 3x and b() 1x per iteration; a calls
// leaf() once per invocation.
func callGraphProgram(t *testing.T, iters int64) *program.Program {
	t.Helper()
	bld := program.NewBuilder("cg")
	f := bld.Func("main")
	e := f.Block("entry")
	e.Movi(1, iters)
	loop := f.Block("loop")
	loop.Call("a")
	loop.Call("a")
	loop.Call("a")
	loop.Call("b")
	loop.Addi(1, 1, -1)
	loop.Cmpi(1, 0)
	loop.Jnz("loop")
	f.Block("exit").Halt()

	a := bld.Func("a")
	ab := a.Block("body")
	ab.Addi(2, 2, 1)
	ab.Call("leaf")
	ab.Ret()

	b := bld.Func("b")
	bb := b.Block("body")
	bb.Addi(3, 3, 1)
	bb.Ret()

	leaf := bld.Func("leaf")
	lb := leaf.Block("body")
	lb.Addi(4, 4, 1)
	lb.Ret()
	return bld.MustBuild()
}

func TestBuildCallGraph(t *testing.T) {
	p := callGraphProgram(t, 20_000)
	m, _ := sampling.MethodByKey("lbr")
	run, err := sampling.Collect(p, machine.IvyBridge(), m, sampling.Options{
		PeriodBase: 600, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cg, err := BuildCallGraph(p, run)
	if err != nil {
		t.Fatal(err)
	}
	id := func(name string) int { return p.FindFunc(name).ID }

	mainToA := cg.Counts[CallEdge{Caller: id("main"), Callee: id("a")}]
	mainToB := cg.Counts[CallEdge{Caller: id("main"), Callee: id("b")}]
	aToLeaf := cg.Counts[CallEdge{Caller: id("a"), Callee: id("leaf")}]
	if mainToA == 0 || mainToB == 0 || aToLeaf == 0 {
		t.Fatalf("missing call edges: a=%v b=%v leaf=%v", mainToA, mainToB, aToLeaf)
	}
	// Ratios: main→a is 3x main→b; a→leaf equals main→a. Allow 25%.
	if r := mainToA / mainToB; math.Abs(r-3) > 0.75 {
		t.Errorf("main→a / main→b = %.2f, want ≈3", r)
	}
	if r := aToLeaf / mainToA; math.Abs(r-1) > 0.25 {
		t.Errorf("a→leaf / main→a = %.2f, want ≈1", r)
	}
	// No bogus edges: b and leaf call nothing.
	for e := range cg.Counts {
		if e.Caller == id("b") || e.Caller == id("leaf") {
			t.Errorf("spurious edge from %s", p.Funcs[e.Caller].Name)
		}
	}
	// Callees ordering: a before b for main.
	callees := cg.Callees(id("main"))
	if len(callees) != 2 || callees[0] != id("a") {
		t.Errorf("callees of main = %v", callees)
	}
	if cg.TotalCalls() <= 0 {
		t.Error("total calls")
	}
	out := cg.Format()
	for _, want := range []string{"main", "-> a", "-> b", "-> leaf"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted call graph missing %q:\n%s", want, out)
		}
	}
}

func TestBuildCallGraphRequiresLBR(t *testing.T) {
	p := callGraphProgram(t, 10)
	m, _ := sampling.MethodByKey("classic")
	if _, err := BuildCallGraph(p, &sampling.Run{Method: m}); err == nil {
		t.Error("non-LBR method accepted")
	}
}

// TestCallGraphExactRatioAgainstReference cross-checks the LBR call-count
// estimates against exact edge counts at function granularity.
func TestCallGraphExactRatioAgainstReference(t *testing.T) {
	p := callGraphProgram(t, 20_000)
	m, _ := sampling.MethodByKey("lbr")
	run, err := sampling.Collect(p, machine.Westmere(), m, sampling.Options{
		PeriodBase: 600, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	cg, err := BuildCallGraph(p, run)
	if err != nil {
		t.Fatal(err)
	}
	id := func(name string) int { return p.FindFunc(name).ID }
	// Exact: 3 calls per iteration × 20k = 60k.
	got := cg.Counts[CallEdge{Caller: id("main"), Callee: id("a")}]
	if got < 45_000 || got > 75_000 {
		t.Errorf("main→a estimate %.0f, want ≈60000 ±25%%", got)
	}
}
