package lbr

import (
	"math"
	"testing"

	"pmutrust/internal/machine"
	"pmutrust/internal/profile"
	"pmutrust/internal/program"
	"pmutrust/internal/ref"
	"pmutrust/internal/sampling"
)

// nestedLoops builds a program with a known loop structure: an outer loop
// of No iterations whose body runs an inner loop of Ni iterations.
func nestedLoops(t *testing.T, outer, inner int64) *program.Program {
	t.Helper()
	b := program.NewBuilder("nested")
	f := b.Func("main")
	e := f.Block("entry")
	e.Movi(1, outer)
	oHead := f.Block("outerHead")
	oHead.Movi(2, inner)
	iHead := f.Block("innerHead")
	iHead.Addi(3, 3, 1)
	iHead.Addi(2, 2, -1)
	iHead.Cmpi(2, 0)
	iHead.Jnz("innerHead")
	oLatch := f.Block("outerLatch")
	oLatch.Addi(1, 1, -1)
	oLatch.Cmpi(1, 0)
	oLatch.Jnz("outerHead")
	f.Block("exit").Halt()
	return b.MustBuild()
}

func blockByLabel(p *program.Program, label string) *program.Block {
	for _, blk := range p.Blocks {
		if blk.Label == label {
			return blk
		}
	}
	return nil
}

func TestExactEdgeProfile(t *testing.T) {
	p := nestedLoops(t, 10, 7)
	ep, err := ref.CollectEdges(p)
	if err != nil {
		t.Fatal(err)
	}
	inner := blockByLabel(p, "innerHead").ID
	outer := blockByLabel(p, "outerHead").ID
	latch := blockByLabel(p, "outerLatch").ID
	// Inner backedge: 6 per outer iteration × 10.
	if got := ep.Counts[profile.Edge{From: inner, To: inner}]; got != 60 {
		t.Errorf("inner backedge = %v, want 60", got)
	}
	// Inner → outer latch fallthrough: once per outer iteration.
	if got := ep.Counts[profile.Edge{From: inner, To: latch}]; got != 10 {
		t.Errorf("inner→latch = %v, want 10", got)
	}
	// Outer backedge: 9.
	if got := ep.Counts[profile.Edge{From: latch, To: outer}]; got != 9 {
		t.Errorf("outer backedge = %v, want 9", got)
	}
}

func TestExactTripCounts(t *testing.T) {
	p := nestedLoops(t, 10, 7)
	ep, err := ref.CollectEdges(p)
	if err != nil {
		t.Fatal(err)
	}
	trips := ep.TripCounts()
	inner := blockByLabel(p, "innerHead").ID
	outer := blockByLabel(p, "outerHead").ID
	in, ok := trips[inner]
	if !ok {
		t.Fatal("inner loop not discovered")
	}
	if math.Abs(in.TripCount-7) > 1e-9 {
		t.Errorf("inner trip count = %v, want 7", in.TripCount)
	}
	out, ok := trips[outer]
	if !ok {
		t.Fatal("outer loop not discovered")
	}
	if math.Abs(out.TripCount-10) > 1e-9 {
		t.Errorf("outer trip count = %v, want 10", out.TripCount)
	}
}

func TestLBREdgeProfileMatchesExact(t *testing.T) {
	p := nestedLoops(t, 4000, 9)
	exact, err := ref.CollectEdges(p)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := sampling.MethodByKey("lbr")
	run, err := sampling.Collect(p, machine.IvyBridge(), m, sampling.Options{
		PeriodBase: 800, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	est, err := BuildEdgeProfile(p, run)
	if err != nil {
		t.Fatal(err)
	}
	// Accuracy tiers mirror the paper's Table 3 caveat that LBR per-block
	// errors "can still reach 30-50% ... for some basic blocks": the
	// hottest edge must land within 15%; every warm edge within 55%; and
	// the total edge mass within 10%.
	total := exact.Total()
	var hotEdge profile.Edge
	var hotCount float64
	for e, want := range exact.Counts {
		if want > hotCount {
			hotEdge, hotCount = e, want
		}
	}
	if rel := math.Abs(est.Counts[hotEdge]-hotCount) / hotCount; rel > 0.15 {
		t.Errorf("hottest edge %v: estimated %.0f, exact %.0f (%.0f%% off)",
			hotEdge, est.Counts[hotEdge], hotCount, 100*rel)
	}
	for e, want := range exact.Counts {
		if want < total/100 {
			continue
		}
		rel := math.Abs(est.Counts[e]-want) / want
		if rel > 0.55 {
			t.Errorf("edge %v→%v: estimated %.0f, exact %.0f (%.0f%% off)",
				e.From, e.To, est.Counts[e], want, 100*rel)
		}
	}
	if rel := math.Abs(est.Total()-total) / total; rel > 0.10 {
		t.Errorf("edge mass off by %.0f%%: est %.0f, exact %.0f", 100*rel, est.Total(), total)
	}
}

func TestLBRTripCountsCloseToTruth(t *testing.T) {
	p := nestedLoops(t, 4000, 9)
	m, _ := sampling.MethodByKey("lbr")
	run, err := sampling.Collect(p, machine.Westmere(), m, sampling.Options{
		PeriodBase: 800, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	est, err := BuildEdgeProfile(p, run)
	if err != nil {
		t.Fatal(err)
	}
	trips := est.TripCounts()
	inner := blockByLabel(p, "innerHead").ID
	in, ok := trips[inner]
	if !ok {
		t.Fatal("inner loop not discovered from LBR")
	}
	// LBR-derived trip counts are approximate: on perfectly periodic
	// loops the window-position clustering that hurts the CallChain
	// kernel (§5.1) also skews the backedge/entry ratio. Within ±40% is
	// the honest claim (the paper itself calls tripcounts "hard to
	// obtain", §2.1).
	if in.TripCount < 5.5 || in.TripCount > 12.5 {
		t.Errorf("LBR inner trip count = %.2f, want ≈9 (±40%%)", in.TripCount)
	}
}

func TestBuildEdgeProfileRequiresLBR(t *testing.T) {
	p := nestedLoops(t, 5, 3)
	m, _ := sampling.MethodByKey("classic")
	if _, err := BuildEdgeProfile(p, &sampling.Run{Method: m}); err == nil {
		t.Error("non-LBR method accepted")
	}
}

func TestEdgeProfileHelpers(t *testing.T) {
	p := nestedLoops(t, 5, 3)
	ep := profile.NewEdgeProfile(p)
	ep.Add(0, 1, 5)
	ep.Add(0, 2, 3)
	ep.Add(2, 1, 2)
	if ep.Total() != 10 {
		t.Errorf("total = %v", ep.Total())
	}
	out := ep.OutCounts(0)
	if out[1] != 5 || out[2] != 3 {
		t.Errorf("out counts = %v", out)
	}
	if ep.InCount(1) != 7 {
		t.Errorf("in count = %v", ep.InCount(1))
	}
}
