package program_test

import (
	"testing"

	"pmutrust/internal/program"
)

// TestRandomProgramsValid: every generated program passes the full
// structural validator (Build already runs it; re-check independently) and
// is deterministic in (seed, cfg).
func TestRandomProgramsValid(t *testing.T) {
	cfg := program.DefaultGenConfig()
	for seed := uint64(0); seed < 200; seed++ {
		p := program.Random(seed, cfg)
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		q := program.Random(seed, cfg)
		if len(q.Code) != len(p.Code) {
			t.Fatalf("seed %d: non-deterministic generation (%d vs %d instrs)",
				seed, len(p.Code), len(q.Code))
		}
		for i := range p.Code {
			if p.Code[i] != q.Code[i] {
				t.Fatalf("seed %d: instruction %d differs between generations", seed, i)
			}
		}
	}
}

// TestRandomProgramsVary: the generator actually explores the space —
// different seeds give different programs.
func TestRandomProgramsVary(t *testing.T) {
	cfg := program.DefaultGenConfig()
	sizes := map[int]bool{}
	for seed := uint64(0); seed < 50; seed++ {
		sizes[program.Random(seed, cfg).NumInstrs()] = true
	}
	if len(sizes) < 10 {
		t.Errorf("only %d distinct program sizes across 50 seeds", len(sizes))
	}
}

// TestShrinkConverges: Shrink reaches a fixed point and returns a config
// that still satisfies the predicate.
func TestShrinkConverges(t *testing.T) {
	cfg := program.BigGenConfig()
	// Predicate: "diverges" whenever Trips >= 5; minimal config has the
	// smallest Trips >= 5 reachable by halving, everything else floored.
	got := cfg.Shrink(func(c program.GenConfig) bool { return c.Trips >= 5 })
	if got.Trips < 5 {
		t.Fatalf("Shrink returned non-diverging config %+v", got)
	}
	if got.Funcs != 0 || got.Loops != 0 || got.Diamonds != 0 || got.BlockLen != 1 {
		t.Errorf("Shrink left reducible knobs: %+v", got)
	}
	if got.Trips/2 >= 5 {
		t.Errorf("Shrink stopped early on Trips: %+v", got)
	}
}
