// Package program models executable programs as functions of basic blocks,
// and provides a builder DSL the workload generators use to construct them.
//
// A built Program carries a flat code array plus constant-time lookup
// tables from any code index to its basic block and function. These tables
// are what makes sample attribution (internal/profile) and LBR decoding
// (internal/lbr) O(1) per sample, which in turn is what lets the benchmark
// harness run the paper's full method × machine × workload matrix.
package program

import (
	"fmt"

	"pmutrust/internal/isa"
)

// DisplayBase is the fake load address used when rendering instruction
// indices as addresses, purely cosmetic (profiles then resemble the paper's
// x86 tooling output).
const DisplayBase = 0x400000

// DisplayAddr converts a code index to a display address.
func DisplayAddr(idx int) uint64 { return DisplayBase + uint64(idx)*4 }

// Block is one basic block: a maximal straight-line instruction sequence
// with a single entry (its first instruction) and a single exit (its last).
// Only the last instruction may be a control transfer.
type Block struct {
	// Label is the block's unique (within its function) name.
	Label string
	// ID is the global block index assigned at build time.
	ID int
	// Func is the index of the owning function in Program.Funcs.
	Func int
	// Start is the code-array index of the first instruction.
	Start int
	// Instrs is the instruction sequence. Never empty after Build.
	Instrs []isa.Instr
}

// Len returns the number of instructions in the block.
func (b *Block) Len() int { return len(b.Instrs) }

// End returns the code-array index one past the last instruction.
func (b *Block) End() int { return b.Start + len(b.Instrs) }

// Terminator returns the last instruction.
func (b *Block) Terminator() isa.Instr { return b.Instrs[len(b.Instrs)-1] }

// FullName returns "func.label", unique within the program.
func (b *Block) FullName(p *Program) string {
	return p.Funcs[b.Func].Name + "." + b.Label
}

// Function is a named sequence of basic blocks. The first block is the
// entry point. Blocks are laid out in declaration order, so a block that
// does not end in an unconditional transfer falls through to the next
// declared block.
type Function struct {
	// Name is the function's unique name.
	Name string
	// ID is the function index in Program.Funcs.
	ID int
	// Blocks are the function's basic blocks in layout order.
	Blocks []*Block
	// Start and End delimit the function's code-array range.
	Start, End int
}

// Entry returns the function's entry block.
func (f *Function) Entry() *Block { return f.Blocks[0] }

// Program is a built, validated, immutable program.
type Program struct {
	// Name identifies the workload.
	Name string
	// Funcs is the function list; Funcs[0] is the program entry.
	Funcs []*Function
	// Blocks is the flattened block list across all functions, in address
	// order. Block IDs index this slice.
	Blocks []*Block
	// Code is the flat instruction array. Instruction "addresses" are
	// indices into this slice.
	Code []isa.Instr
	// BlockOf maps a code index to the ID of its containing block.
	BlockOf []int32
	// FuncOf maps a code index to the ID of its containing function.
	FuncOf []int32
	// MemWords is the number of 64-bit memory words the program needs.
	MemWords int
}

// NumInstrs returns the static instruction count.
func (p *Program) NumInstrs() int { return len(p.Code) }

// NumBlocks returns the number of basic blocks.
func (p *Program) NumBlocks() int { return len(p.Blocks) }

// NumFuncs returns the number of functions.
func (p *Program) NumFuncs() int { return len(p.Funcs) }

// BlockAt returns the block containing code index idx.
func (p *Program) BlockAt(idx int) *Block {
	return p.Blocks[p.BlockOf[idx]]
}

// FuncAt returns the function containing code index idx.
func (p *Program) FuncAt(idx int) *Function {
	return p.Funcs[p.FuncOf[idx]]
}

// FindFunc returns the function with the given name, or nil.
func (p *Program) FindFunc(name string) *Function {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Successors returns the possible successor block IDs of block b:
// the branch target (if any) and the fall-through (if the terminator can
// fall through). Used for CFG export and validation.
func (p *Program) Successors(b *Block) []int {
	term := b.Terminator()
	var succs []int
	if term.Op.IsBranch() && !term.Op.IsRet() {
		succs = append(succs, int(p.BlockOf[term.Target]))
	}
	fallsThrough := !term.Op.IsBranch() || term.Op.IsCondBranch() || term.Op.IsCall()
	if term.Op == isa.OpHalt {
		fallsThrough = false
	}
	if fallsThrough && b.End() < len(p.Code) {
		// Fall-through stays within the function by construction
		// (validated at build time).
		succs = append(succs, int(p.BlockOf[b.End()]))
	}
	return succs
}

// Validate re-checks the program's structural invariants. Build always
// returns validated programs; Validate exists so tests (including
// testing/quick properties over generated workloads) can assert the
// invariants independently.
func (p *Program) Validate() error {
	if len(p.Funcs) == 0 {
		return fmt.Errorf("program %q: no functions", p.Name)
	}
	if len(p.Code) == 0 {
		return fmt.Errorf("program %q: empty code", p.Name)
	}
	if len(p.BlockOf) != len(p.Code) || len(p.FuncOf) != len(p.Code) {
		return fmt.Errorf("program %q: lookup table size mismatch", p.Name)
	}
	next := 0
	for bi, b := range p.Blocks {
		if b.ID != bi {
			return fmt.Errorf("block %d: ID mismatch (%d)", bi, b.ID)
		}
		if b.Start != next {
			return fmt.Errorf("block %s: starts at %d, want %d", b.Label, b.Start, next)
		}
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block %s: empty", b.Label)
		}
		next = b.End()
		for i := b.Start; i < b.End(); i++ {
			if int(p.BlockOf[i]) != bi {
				return fmt.Errorf("BlockOf[%d] = %d, want %d", i, p.BlockOf[i], bi)
			}
			if int(p.FuncOf[i]) != b.Func {
				return fmt.Errorf("FuncOf[%d] = %d, want %d", i, p.FuncOf[i], b.Func)
			}
		}
		for i, in := range b.Instrs {
			if !in.Op.Valid() {
				return fmt.Errorf("block %s: invalid opcode %d at offset %d",
					b.Label, in.Op, i)
			}
			if in.Dst >= isa.NumRegs || in.Src1 >= isa.NumRegs || in.Src2 >= isa.NumRegs {
				return fmt.Errorf("block %s: register out of range in %s at offset %d",
					b.Label, in.Op, i)
			}
			if (in.Op.IsBranch() || in.Op == isa.OpHalt) && i != len(b.Instrs)-1 {
				return fmt.Errorf("block %s: terminator %s mid-block at offset %d",
					b.Label, in.Op, i)
			}
			if in.Op.IsBranch() && !in.Op.IsRet() {
				if in.Target < 0 || int(in.Target) >= len(p.Code) {
					return fmt.Errorf("block %s: branch target %d out of range", b.Label, in.Target)
				}
				tgtBlock := p.Blocks[p.BlockOf[in.Target]]
				if tgtBlock.Start != int(in.Target) {
					return fmt.Errorf("block %s: branch into middle of block %s",
						b.Label, tgtBlock.Label)
				}
				if in.Op.IsCall() {
					tf := p.Funcs[tgtBlock.Func]
					if tf.Start != int(in.Target) {
						return fmt.Errorf("block %s: call to non-entry block of %s",
							b.Label, tf.Name)
					}
				} else if tgtBlock.Func != b.Func {
					return fmt.Errorf("block %s: jump crosses into function %s",
						b.Label, p.Funcs[tgtBlock.Func].Name)
				}
			}
		}
	}
	if next != len(p.Code) {
		return fmt.Errorf("blocks cover %d instructions, code has %d", next, len(p.Code))
	}
	for fi, f := range p.Funcs {
		if f.ID != fi {
			return fmt.Errorf("function %s: ID mismatch", f.Name)
		}
		if len(f.Blocks) == 0 {
			return fmt.Errorf("function %s: no blocks", f.Name)
		}
		if f.Start != f.Blocks[0].Start || f.End != f.Blocks[len(f.Blocks)-1].End() {
			return fmt.Errorf("function %s: start/end out of sync with blocks", f.Name)
		}
		// The last block of a non-entry function must not fall through off
		// the end of the function.
		last := f.Blocks[len(f.Blocks)-1]
		term := last.Terminator()
		ends := term.Op.IsRet() || term.Op == isa.OpHalt || term.Op == isa.OpJmp
		if !ends {
			return fmt.Errorf("function %s: last block %s can fall off the function end",
				f.Name, last.Label)
		}
	}
	// Exactly one halt, in the entry function.
	halts := 0
	for i, in := range p.Code {
		if in.Op == isa.OpHalt {
			halts++
			if int(p.FuncOf[i]) != 0 {
				return fmt.Errorf("halt outside entry function at index %d", i)
			}
		}
	}
	if halts != 1 {
		return fmt.Errorf("program has %d halt instructions, want exactly 1", halts)
	}
	return nil
}
