package program

import (
	"fmt"
	"sort"
	"strings"
)

// Disasm renders the whole program as annotated assembly, with function and
// block labels and display addresses. Branch targets are shown using the
// target block's full name.
func (p *Program) Disasm() string {
	var b strings.Builder
	for _, f := range p.Funcs {
		fmt.Fprintf(&b, "\n%s:            ; func %d, %d blocks, [%#x..%#x)\n",
			f.Name, f.ID, len(f.Blocks), DisplayAddr(f.Start), DisplayAddr(f.End))
		for _, blk := range f.Blocks {
			fmt.Fprintf(&b, "  .%s:\n", blk.Label)
			for i, in := range blk.Instrs {
				text := in.Disasm()
				if in.Op.IsBranch() && !in.Op.IsRet() && in.Target >= 0 {
					tb := p.Blocks[p.BlockOf[in.Target]]
					text = in.Op.Mnemonic() + " " + tb.FullName(p)
				}
				fmt.Fprintf(&b, "    %#08x  %s\n", DisplayAddr(blk.Start+i), text)
			}
		}
	}
	return b.String()
}

// Dot renders the program's control-flow graph in Graphviz DOT format,
// one cluster per function, for visual inspection of generated workloads.
func (p *Program) Dot() string {
	var b strings.Builder
	b.WriteString("digraph cfg {\n  node [shape=box, fontname=\"monospace\"];\n")
	for _, f := range p.Funcs {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=%q;\n", f.ID, f.Name)
		for _, blk := range f.Blocks {
			fmt.Fprintf(&b, "    b%d [label=\"%s\\n%d instrs\"];\n", blk.ID, blk.Label, blk.Len())
		}
		b.WriteString("  }\n")
	}
	for _, blk := range p.Blocks {
		term := blk.Terminator()
		for _, s := range p.Successors(blk) {
			style := ""
			if term.Op.IsCall() && p.Blocks[s].Func != blk.Func {
				style = " [style=dashed]"
			}
			fmt.Fprintf(&b, "  b%d -> b%d%s;\n", blk.ID, s, style)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// StaticStats summarizes a program's static structure: the characteristics
// §2.3 of the paper uses to distinguish enterprise codes (small fragmented
// blocks) from HPC kernels.
type StaticStats struct {
	Name         string
	Funcs        int
	Blocks       int
	Instrs       int
	MeanBlockLen float64
	// BlockLenP50/P90 are block-length percentiles.
	BlockLenP50, BlockLenP90 float64
	// Branches is the static count of control transfers.
	Branches int
	// ClassCounts is the static opcode-class mix.
	ClassCounts map[string]int
}

// Stats computes static statistics.
func (p *Program) Stats() StaticStats {
	s := StaticStats{
		Name:        p.Name,
		Funcs:       len(p.Funcs),
		Blocks:      len(p.Blocks),
		Instrs:      len(p.Code),
		ClassCounts: make(map[string]int),
	}
	lens := make([]float64, len(p.Blocks))
	for i, blk := range p.Blocks {
		lens[i] = float64(blk.Len())
	}
	sort.Float64s(lens)
	total := 0.0
	for _, l := range lens {
		total += l
	}
	if len(lens) > 0 {
		s.MeanBlockLen = total / float64(len(lens))
		s.BlockLenP50 = lens[len(lens)/2]
		s.BlockLenP90 = lens[len(lens)*9/10]
	}
	for _, in := range p.Code {
		s.ClassCounts[in.Op.ClassOf().String()]++
		if in.Op.IsBranch() {
			s.Branches++
		}
	}
	return s
}

// String renders the stats as a short multi-line report.
func (s StaticStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s: %d funcs, %d blocks, %d instrs\n",
		s.Name, s.Funcs, s.Blocks, s.Instrs)
	fmt.Fprintf(&b, "  block length: mean %.1f, p50 %.0f, p90 %.0f\n",
		s.MeanBlockLen, s.BlockLenP50, s.BlockLenP90)
	fmt.Fprintf(&b, "  static branches: %d (%.1f%% of instrs)\n",
		s.Branches, 100*float64(s.Branches)/float64(max(1, s.Instrs)))
	classes := make([]string, 0, len(s.ClassCounts))
	for c := range s.ClassCounts {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	b.WriteString("  class mix:")
	for _, c := range classes {
		fmt.Fprintf(&b, " %s=%d", c, s.ClassCounts[c])
	}
	b.WriteString("\n")
	return b.String()
}
