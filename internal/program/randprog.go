package program

import (
	"fmt"

	"pmutrust/internal/isa"
)

// This file is the random-program generator behind the engine-equivalence
// fuzzers (internal/cpu, internal/sampling): programs no human wrote, built
// through the same Builder DSL the workloads use, and guaranteed to halt.
//
// Halting is by construction, not by luck:
//
//   - backward branches exist only as counted loops whose counter register
//     is written exclusively by the loop's own movi/addi/cmpi/jnz skeleton
//     — random body instructions never target r8..r11, and counter
//     registers are assigned per function (see loopCounter) so that no
//     call executed inside a loop's live window can reach a function that
//     writes the same counter;
//   - data-dependent branches (diamonds fed by LCG state in r12/r13) only
//     jump forward;
//   - calls only go to strictly later-declared functions, so the call
//     graph is acyclic and the call depth is bounded by the function
//     count.

// GenConfig bounds Random. Shrink walks these knobs down when hunting a
// minimal diverging program.
type GenConfig struct {
	// Funcs is the number of callee functions besides main (0..).
	Funcs int
	// Loops is the maximum number of counted loops per function.
	Loops int
	// Trips is the maximum trip count of one loop.
	Trips int64
	// BlockLen is the maximum length of one straight-line instruction run.
	BlockLen int
	// Diamonds is the maximum number of data-dependent forward diamonds
	// per function.
	Diamonds int
	// MemWords sizes the program's memory (0 selects the builder default).
	MemWords int
}

// DefaultGenConfig keeps fuzzed runs in the tens-of-thousands-of-
// instructions range: large enough to cross many sampling periods, small
// enough for thousands of programs per test run.
func DefaultGenConfig() GenConfig {
	return GenConfig{Funcs: 2, Loops: 2, Trips: 80, BlockLen: 10, Diamonds: 2, MemWords: 256}
}

// BigGenConfig is the paper-scale fuzz shape (-tags slow): deeper call
// chains, longer loops, millions of dynamic instructions.
func BigGenConfig() GenConfig {
	return GenConfig{Funcs: 3, Loops: 3, Trips: 300, BlockLen: 24, Diamonds: 3, MemWords: 1024}
}

// Shrink greedily minimizes cfg while diverges keeps reporting true, and
// returns the smallest still-diverging configuration found. Generation is
// deterministic in (seed, cfg), so the result pins down a minimal
// reproducer together with the seed that found the divergence.
func (c GenConfig) Shrink(diverges func(GenConfig) bool) GenConfig {
	cur := c
	for {
		improved := false
		for _, cand := range cur.shrinkSteps() {
			if diverges(cand) {
				cur = cand
				improved = true
				break
			}
		}
		if !improved {
			return cur
		}
	}
}

// shrinkSteps proposes one-knob reductions of c, largest first.
func (c GenConfig) shrinkSteps() []GenConfig {
	var out []GenConfig
	if c.Trips > 1 {
		d := c
		d.Trips = c.Trips / 2
		out = append(out, d)
	}
	if c.Funcs > 0 {
		d := c
		d.Funcs--
		out = append(out, d)
	}
	if c.Loops > 0 {
		d := c
		d.Loops--
		out = append(out, d)
	}
	if c.Diamonds > 0 {
		d := c
		d.Diamonds--
		out = append(out, d)
	}
	if c.BlockLen > 1 {
		d := c
		d.BlockLen = c.BlockLen / 2
		out = append(out, d)
	}
	return out
}

// genRNG is a self-contained splitmix64: the generator must not depend on
// higher layers (stats sits above program in the import order).
type genRNG struct{ s uint64 }

func (g *genRNG) next() uint64 {
	g.s += 0x9e3779b97f4a7c15
	z := g.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (g *genRNG) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(g.next() % uint64(n))
}

func (g *genRNG) int63n(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(g.next() % uint64(n))
}

// dataRegs are the registers random instructions may write: everything
// except the loop counters r8..r11 and the LCG state r12..r13.
var dataRegs = []isa.Reg{0, 1, 2, 3, 4, 5, 6, 7, 14, 15}

// Random generates a deterministic pseudo-random halting program from
// (seed, cfg). The result is built through Builder and therefore satisfies
// every Program invariant (Validate runs inside Build).
func Random(seed uint64, cfg GenConfig) *Program {
	g := &genRNG{s: seed ^ 0x5eed5eed5eed5eed}
	b := NewBuilder(fmt.Sprintf("rand-%d", seed))
	if cfg.MemWords > 0 {
		b.SetMemWords(cfg.MemWords)
	}

	nf := 1 + g.intn(cfg.Funcs+1) // main + callees
	fns := make([]*FuncBuilder, nf)
	names := make([]string, nf)
	for i := range fns {
		if i == 0 {
			names[i] = "main"
		} else {
			names[i] = fmt.Sprintf("f%d", i)
		}
		fns[i] = b.Func(names[i])
	}
	for i, f := range fns {
		gf := &funcGen{g: g, cfg: cfg, f: f, idx: i, names: names}
		gf.emit()
	}
	p, err := b.Build()
	if err != nil {
		// The generator is supposed to produce only valid programs; an
		// invalid one is a generator bug worth a loud crash in the fuzzer.
		panic(fmt.Sprintf("program: Random(%d, %+v): %v", seed, cfg, err))
	}
	return p
}

// funcGen holds per-function generation state.
type funcGen struct {
	g     *genRNG
	cfg   GenConfig
	f     *FuncBuilder
	idx   int // this function's index; calls go to strictly larger indices
	names []string

	blocks   int // label counter
	diamonds int
	cur      *BlockBuilder
}

// newBlock starts a new block with a generated label and makes it current.
// The block opens with a nop so it can never end up empty (Build rejects
// empty blocks; whether anything else lands in it depends on later rolls).
func (fg *funcGen) newBlock(kind string) *BlockBuilder {
	fg.blocks++
	fg.cur = fg.f.Block(fmt.Sprintf("%s%d", kind, fg.blocks))
	fg.cur.Nop()
	return fg.cur
}

// emit generates the function body: init block, a random sequence of
// straight runs, diamonds, calls and counted loops, then ret/halt.
func (fg *funcGen) emit() {
	g := fg.g
	init := fg.newBlock("entry")
	// Seed a few data registers and the LCG state so branches and memory
	// addresses vary between seeds.
	for i := 0; i < 4; i++ {
		init.Movi(dataRegs[g.intn(len(dataRegs))], int64(g.intn(4096))-2048)
	}
	init.Movi(12, int64(g.next()%1_000_003)+1)
	init.Movi(13, int64(g.next()%65_521)+1)

	segments := 1 + g.intn(3)
	loopsLeft := fg.cfg.Loops
	for s := 0; s < segments; s++ {
		switch {
		case loopsLeft > 0 && g.intn(2) == 0:
			loopsLeft--
			// Nested loops stay in main: a nest in every function of a
			// call chain would multiply trip counts into runaway dynamic
			// sizes.
			fg.emitLoop(fg.loopCounter(), fg.idx == 0 && loopsLeft > 0 && g.intn(3) == 0)
		case fg.diamonds < fg.cfg.Diamonds && g.intn(3) == 0:
			fg.emitDiamond()
		case g.intn(3) == 0:
			// A bare call (outside any loop) runs the callee once per
			// invocation: cheap, and it makes the builder split the block
			// mid-sequence — the call/return and block-split paths get
			// coverage without dynamic blowup.
			fg.emitCall(fg.cur)
			fg.emitStraight(fg.cur)
		default:
			fg.emitStraight(fg.cur)
		}
	}

	exit := fg.newBlock("exit")
	if fg.idx == 0 {
		exit.Halt()
	} else {
		exit.Ret()
	}
}

// emitStraight appends 1..BlockLen random non-control instructions to blk.
func (fg *funcGen) emitStraight(blk *BlockBuilder) {
	g := fg.g
	n := 1 + g.intn(fg.cfg.BlockLen)
	for i := 0; i < n; i++ {
		fg.emitRandInstr(blk)
	}
}

// emitRandInstr appends one random data instruction.
func (fg *funcGen) emitRandInstr(blk *BlockBuilder) {
	g := fg.g
	dst := dataRegs[g.intn(len(dataRegs))]
	s1 := isa.Reg(g.intn(isa.NumRegs)) // reads may touch any register
	s2 := isa.Reg(g.intn(isa.NumRegs))
	switch g.intn(20) {
	case 0:
		blk.Nop()
	case 1:
		blk.Mov(dst, s1)
	case 2:
		blk.Movi(dst, int64(g.intn(1<<16))-1<<15)
	case 3:
		blk.Add(dst, s1, s2)
	case 4:
		blk.Addi(dst, s1, int64(g.intn(256))-128)
	case 5:
		blk.Sub(dst, s1, s2)
	case 6:
		blk.Mul(dst, s1, s2)
	case 7:
		blk.Div(dst, s1, s2)
	case 8:
		blk.Rem(dst, s1, s2)
	case 9:
		blk.And(dst, s1, s2)
	case 10:
		blk.Or(dst, s1, s2)
	case 11:
		blk.Xor(dst, s1, s2)
	case 12:
		blk.Shl(dst, s1, int64(g.intn(64)))
	case 13:
		blk.Shr(dst, s1, int64(g.intn(64)))
	case 14:
		blk.Load(dst, s1, int64(g.intn(512)))
	case 15:
		blk.Store(s1, s2, int64(g.intn(512)))
	case 16:
		blk.Fadd(dst, s1, s2)
	case 17:
		blk.Fmul(dst, s1, s2)
	case 18:
		blk.Fdiv(dst, s1, s2)
	case 19:
		blk.Fma(dst, s1, s2)
	}
}

// lcgStep advances the r12/r13 LCG that feeds data-dependent branches.
func (fg *funcGen) lcgStep(blk *BlockBuilder) {
	blk.Raw(isa.Instr{Op: isa.OpMul, Dst: 12, Src1: 12, Src2: 13})
	blk.Raw(isa.Instr{Op: isa.OpAddi, Dst: 12, Src1: 12, Imm: 12345})
	blk.Raw(isa.Instr{Op: isa.OpShr, Dst: 14, Src1: 12, Imm: 5})
}

// emitCall appends a call to a strictly later function, if one exists.
func (fg *funcGen) emitCall(blk *BlockBuilder) {
	if fg.idx+1 >= len(fg.names) {
		return
	}
	callee := fg.idx + 1 + fg.g.intn(len(fg.names)-fg.idx-1)
	blk.Call(fg.names[callee])
}

// loopCounter assigns each function its loop counter register so counters
// never alias across a live call chain: main uses r8 (outer) and r9
// (nested; the nested body never calls), f1 uses r10, f2 uses r11, and
// f3 — reachable only through bare calls or f1's loop, never from inside
// main's nested loop — can safely reuse r9.
func (fg *funcGen) loopCounter() isa.Reg {
	switch fg.idx {
	case 0:
		return 8
	case 1:
		return 10
	case 2:
		return 11
	default:
		return 9
	}
}

// emitLoop generates a counted loop: movi header, body with random
// contents, addi/cmpi/jnz latch.
func (fg *funcGen) emitLoop(counter isa.Reg, nest bool) {
	g := fg.g
	maxTrips := fg.cfg.Trips
	if fg.idx > 0 && maxTrips > 4 {
		// Callee loops stay short: every function down an acyclic call
		// chain multiplies the dynamic instruction count by its trip
		// count.
		maxTrips = 4
	}
	trips := 1 + g.int63n(maxTrips)
	fg.cur.Movi(counter, trips)
	fg.blocks++
	bodyLabel := fmt.Sprintf("loop%d", fg.blocks)
	body := fg.f.Block(bodyLabel)
	fg.cur = body
	fg.emitStraight(body)
	fg.lcgStep(body)
	// Calls from loop bodies multiply callee bodies by the trip count, so
	// they stay near the top of the (acyclic) call chain; deeper functions
	// are still exercised through bare calls in straight segments. Main's
	// nested loop body never calls — that is what makes r9 reusable by f3.
	if fg.idx <= 1 && counter != 9 && g.intn(2) == 0 {
		fg.emitCall(fg.cur)
	}
	if nest && fg.idx == 0 && counter == 8 {
		fg.emitLoop(9, false)
	}
	if fg.diamonds < fg.cfg.Diamonds && g.intn(2) == 0 {
		fg.emitDiamond()
	}
	// The latch: decrement, test, backward branch. fg.cur may have moved
	// past the body block (diamond/nested loop); the backward target stays
	// the body head, the loop structure stays reducible.
	latch := fg.cur
	latch.Addi(counter, counter, -1)
	latch.Cmpi(counter, 0)
	latch.Jnz(bodyLabel)
	fg.newBlock("after")
}

// emitDiamond generates a forward if/else join on LCG-derived data.
func (fg *funcGen) emitDiamond() {
	g := fg.g
	fg.diamonds++
	n := fg.diamonds
	thenL := fmt.Sprintf("then%d", n)
	elseL := fmt.Sprintf("else%d", n)
	joinL := fmt.Sprintf("join%d", n)

	cond := fg.cur
	cond.Raw(isa.Instr{Op: isa.OpCmpi, Src1: 14, Imm: int64(g.intn(1 << 16))})
	switch g.intn(4) {
	case 0:
		cond.Jz(elseL)
	case 1:
		cond.Jnz(elseL)
	case 2:
		cond.Jlt(elseL)
	case 3:
		cond.Jge(elseL)
	}

	fg.blocks++
	then := fg.f.Block(thenL)
	fg.cur = then
	fg.emitStraight(then)
	then.Jmp(joinL)

	fg.blocks++
	els := fg.f.Block(elseL)
	fg.cur = els
	fg.emitStraight(els)

	fg.blocks++
	join := fg.f.Block(joinL)
	join.Nop()
	fg.cur = join
}
