package program

import (
	"fmt"

	"pmutrust/internal/isa"
)

// Builder assembles a Program from functions, blocks and instructions.
// Branch targets are symbolic labels resolved at Build time, so blocks and
// functions can reference each other in any order.
//
// Typical use (see internal/workloads for real examples):
//
//	b := program.NewBuilder("kernel")
//	f := b.Func("main")
//	loop := f.Block("loop")
//	loop.Addi(isa.Reg(8), isa.Reg(8), -1)
//	loop.Cmpi(isa.Reg(8), 0)
//	loop.Jnz("loop")
//	exit := f.Block("exit")
//	exit.Halt()
//	p, err := b.Build()
type Builder struct {
	name     string
	funcs    []*FuncBuilder
	byName   map[string]*FuncBuilder
	memWords int
}

// NewBuilder creates a builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, byName: make(map[string]*FuncBuilder)}
}

// SetMemWords declares how many 64-bit memory words the program uses.
// Loads and stores wrap modulo this size at execution time.
func (b *Builder) SetMemWords(n int) { b.memWords = n }

// Func declares a function. The first function declared is the program
// entry point. Declaring the same name twice panics: workload generators
// are compile-time-style code, and name collisions there are bugs, not
// runtime conditions.
func (b *Builder) Func(name string) *FuncBuilder {
	if _, dup := b.byName[name]; dup {
		panic(fmt.Sprintf("program: duplicate function %q", name))
	}
	f := &FuncBuilder{name: name, parent: b}
	b.funcs = append(b.funcs, f)
	b.byName[name] = f
	return f
}

// FuncBuilder accumulates the blocks of one function.
type FuncBuilder struct {
	name   string
	parent *Builder
	blocks []*BlockBuilder
}

// Name returns the function name.
func (f *FuncBuilder) Name() string { return f.name }

// Block declares a basic block. Blocks are laid out in declaration order;
// a block without a terminating control transfer falls through to the next
// declared block.
func (f *FuncBuilder) Block(label string) *BlockBuilder {
	for _, blk := range f.blocks {
		if blk.label == label {
			panic(fmt.Sprintf("program: duplicate block %q in function %q", label, f.name))
		}
	}
	blk := &BlockBuilder{label: label, fn: f}
	f.blocks = append(f.blocks, blk)
	return blk
}

// BlockBuilder accumulates the instructions of one basic block.
// The Op helper methods append one instruction each and return the builder
// for chaining.
type BlockBuilder struct {
	label  string
	fn     *FuncBuilder
	instrs []isa.Instr
	// targets[i] is the symbolic target of instrs[i] ("" when none):
	// "label" for intra-function jumps, "fn:" prefix for calls.
	targets []string
}

// Label returns the block label.
func (bb *BlockBuilder) Label() string { return bb.label }

func (bb *BlockBuilder) add(in isa.Instr, target string) *BlockBuilder {
	in.Target = -1
	bb.instrs = append(bb.instrs, in)
	bb.targets = append(bb.targets, target)
	return bb
}

// Raw appends a pre-built instruction with no symbolic target.
func (bb *BlockBuilder) Raw(in isa.Instr) *BlockBuilder { return bb.add(in, "") }

// Nop appends a no-op.
func (bb *BlockBuilder) Nop() *BlockBuilder {
	return bb.add(isa.Instr{Op: isa.OpNop}, "")
}

// Mov appends dst = src.
func (bb *BlockBuilder) Mov(dst, src isa.Reg) *BlockBuilder {
	return bb.add(isa.Instr{Op: isa.OpMov, Dst: dst, Src1: src}, "")
}

// Movi appends dst = imm.
func (bb *BlockBuilder) Movi(dst isa.Reg, imm int64) *BlockBuilder {
	return bb.add(isa.Instr{Op: isa.OpMovi, Dst: dst, Imm: imm}, "")
}

// Add appends dst = s1 + s2.
func (bb *BlockBuilder) Add(dst, s1, s2 isa.Reg) *BlockBuilder {
	return bb.add(isa.Instr{Op: isa.OpAdd, Dst: dst, Src1: s1, Src2: s2}, "")
}

// Addi appends dst = s1 + imm.
func (bb *BlockBuilder) Addi(dst, s1 isa.Reg, imm int64) *BlockBuilder {
	return bb.add(isa.Instr{Op: isa.OpAddi, Dst: dst, Src1: s1, Imm: imm}, "")
}

// Sub appends dst = s1 - s2.
func (bb *BlockBuilder) Sub(dst, s1, s2 isa.Reg) *BlockBuilder {
	return bb.add(isa.Instr{Op: isa.OpSub, Dst: dst, Src1: s1, Src2: s2}, "")
}

// Mul appends dst = s1 * s2.
func (bb *BlockBuilder) Mul(dst, s1, s2 isa.Reg) *BlockBuilder {
	return bb.add(isa.Instr{Op: isa.OpMul, Dst: dst, Src1: s1, Src2: s2}, "")
}

// Div appends dst = s1 / s2.
func (bb *BlockBuilder) Div(dst, s1, s2 isa.Reg) *BlockBuilder {
	return bb.add(isa.Instr{Op: isa.OpDiv, Dst: dst, Src1: s1, Src2: s2}, "")
}

// Rem appends dst = s1 % s2.
func (bb *BlockBuilder) Rem(dst, s1, s2 isa.Reg) *BlockBuilder {
	return bb.add(isa.Instr{Op: isa.OpRem, Dst: dst, Src1: s1, Src2: s2}, "")
}

// And appends dst = s1 & s2.
func (bb *BlockBuilder) And(dst, s1, s2 isa.Reg) *BlockBuilder {
	return bb.add(isa.Instr{Op: isa.OpAnd, Dst: dst, Src1: s1, Src2: s2}, "")
}

// Or appends dst = s1 | s2.
func (bb *BlockBuilder) Or(dst, s1, s2 isa.Reg) *BlockBuilder {
	return bb.add(isa.Instr{Op: isa.OpOr, Dst: dst, Src1: s1, Src2: s2}, "")
}

// Xor appends dst = s1 ^ s2.
func (bb *BlockBuilder) Xor(dst, s1, s2 isa.Reg) *BlockBuilder {
	return bb.add(isa.Instr{Op: isa.OpXor, Dst: dst, Src1: s1, Src2: s2}, "")
}

// Shl appends dst = s1 << k.
func (bb *BlockBuilder) Shl(dst, s1 isa.Reg, k int64) *BlockBuilder {
	return bb.add(isa.Instr{Op: isa.OpShl, Dst: dst, Src1: s1, Imm: k}, "")
}

// Shr appends dst = s1 >> k (logical).
func (bb *BlockBuilder) Shr(dst, s1 isa.Reg, k int64) *BlockBuilder {
	return bb.add(isa.Instr{Op: isa.OpShr, Dst: dst, Src1: s1, Imm: k}, "")
}

// Load appends dst = mem[(s1+disp) mod memWords].
func (bb *BlockBuilder) Load(dst, s1 isa.Reg, disp int64) *BlockBuilder {
	return bb.add(isa.Instr{Op: isa.OpLoad, Dst: dst, Src1: s1, Imm: disp}, "")
}

// Store appends mem[(s2+disp) mod memWords] = s1.
func (bb *BlockBuilder) Store(s1, s2 isa.Reg, disp int64) *BlockBuilder {
	return bb.add(isa.Instr{Op: isa.OpStore, Src1: s1, Src2: s2, Imm: disp}, "")
}

// Fadd appends dst = s1 + s2 (FP cost model).
func (bb *BlockBuilder) Fadd(dst, s1, s2 isa.Reg) *BlockBuilder {
	return bb.add(isa.Instr{Op: isa.OpFadd, Dst: dst, Src1: s1, Src2: s2}, "")
}

// Fmul appends dst = s1 * s2 (FP cost model).
func (bb *BlockBuilder) Fmul(dst, s1, s2 isa.Reg) *BlockBuilder {
	return bb.add(isa.Instr{Op: isa.OpFmul, Dst: dst, Src1: s1, Src2: s2}, "")
}

// Fdiv appends dst = s1 / s2 (FP cost model).
func (bb *BlockBuilder) Fdiv(dst, s1, s2 isa.Reg) *BlockBuilder {
	return bb.add(isa.Instr{Op: isa.OpFdiv, Dst: dst, Src1: s1, Src2: s2}, "")
}

// Fma appends dst = s1*s2 + dst (FP cost model).
func (bb *BlockBuilder) Fma(dst, s1, s2 isa.Reg) *BlockBuilder {
	return bb.add(isa.Instr{Op: isa.OpFma, Dst: dst, Src1: s1, Src2: s2}, "")
}

// Cmp appends flags = compare(s1, s2).
func (bb *BlockBuilder) Cmp(s1, s2 isa.Reg) *BlockBuilder {
	return bb.add(isa.Instr{Op: isa.OpCmp, Src1: s1, Src2: s2}, "")
}

// Cmpi appends flags = compare(s1, imm).
func (bb *BlockBuilder) Cmpi(s1 isa.Reg, imm int64) *BlockBuilder {
	return bb.add(isa.Instr{Op: isa.OpCmpi, Src1: s1, Imm: imm}, "")
}

// Jmp appends an unconditional jump to the labelled block in this function.
func (bb *BlockBuilder) Jmp(label string) *BlockBuilder {
	return bb.add(isa.Instr{Op: isa.OpJmp}, label)
}

// Jz appends a jump-if-equal to the labelled block.
func (bb *BlockBuilder) Jz(label string) *BlockBuilder {
	return bb.add(isa.Instr{Op: isa.OpJz}, label)
}

// Jnz appends a jump-if-not-equal to the labelled block.
func (bb *BlockBuilder) Jnz(label string) *BlockBuilder {
	return bb.add(isa.Instr{Op: isa.OpJnz}, label)
}

// Jlt appends a jump-if-less-than to the labelled block.
func (bb *BlockBuilder) Jlt(label string) *BlockBuilder {
	return bb.add(isa.Instr{Op: isa.OpJlt}, label)
}

// Jge appends a jump-if-greater-or-equal to the labelled block.
func (bb *BlockBuilder) Jge(label string) *BlockBuilder {
	return bb.add(isa.Instr{Op: isa.OpJge}, label)
}

// Call appends a call to the named function.
func (bb *BlockBuilder) Call(fn string) *BlockBuilder {
	return bb.add(isa.Instr{Op: isa.OpCall}, "fn:"+fn)
}

// Ret appends a return.
func (bb *BlockBuilder) Ret() *BlockBuilder {
	return bb.add(isa.Instr{Op: isa.OpRet}, "")
}

// Halt appends the program-terminating halt.
func (bb *BlockBuilder) Halt() *BlockBuilder {
	return bb.add(isa.Instr{Op: isa.OpHalt}, "")
}

// Build linearizes, resolves labels and validates. The builder must not be
// reused afterwards.
func (b *Builder) Build() (*Program, error) {
	if len(b.funcs) == 0 {
		return nil, fmt.Errorf("program %q: no functions", b.name)
	}
	p := &Program{Name: b.name, MemWords: b.memWords}
	if p.MemWords <= 0 {
		p.MemWords = 1 << 16 // 64K words (512 KiB): plenty for the workloads
	}

	// Pass 0: split blocks at mid-block control transfers. Calls (and any
	// other transfer written mid-block) terminate a basic block in the
	// profiling sense — the LBR decoder relies on every block having at
	// most one transfer, as its last instruction. Split blocks get
	// derived labels ("loop$1", ...) that cannot collide with user labels
	// and cannot be branched to (branches resolve to user labels only).
	for _, fb := range b.funcs {
		var split []*BlockBuilder
		for _, blkb := range fb.blocks {
			start, part := 0, 0
			cut := func(end int) {
				label := blkb.label
				if part > 0 {
					label = fmt.Sprintf("%s$%d", blkb.label, part)
				}
				split = append(split, &BlockBuilder{
					label:   label,
					fn:      fb,
					instrs:  blkb.instrs[start:end],
					targets: blkb.targets[start:end],
				})
				part++
				start = end
			}
			for i := range blkb.instrs {
				if blkb.instrs[i].Op.IsBranch() && i != len(blkb.instrs)-1 {
					cut(i + 1)
				}
			}
			cut(len(blkb.instrs))
		}
		fb.blocks = split
	}

	// Pass 1: lay out code, assign IDs and start indices.
	type pendingRef struct {
		codeIdx int
		fn      *FuncBuilder
		target  string
	}
	var refs []pendingRef
	blockStart := make(map[*FuncBuilder]map[string]int)
	idx := 0
	for fi, fb := range b.funcs {
		if len(fb.blocks) == 0 {
			return nil, fmt.Errorf("function %q: no blocks", fb.name)
		}
		fn := &Function{Name: fb.name, ID: fi, Start: idx}
		blockStart[fb] = make(map[string]int, len(fb.blocks))
		for _, blkb := range fb.blocks {
			if len(blkb.instrs) == 0 {
				return nil, fmt.Errorf("function %q: block %q is empty", fb.name, blkb.label)
			}
			blk := &Block{
				Label:  blkb.label,
				ID:     len(p.Blocks),
				Func:   fi,
				Start:  idx,
				Instrs: append([]isa.Instr(nil), blkb.instrs...),
			}
			blockStart[fb][blkb.label] = idx
			for i := range blk.Instrs {
				if t := blkb.targets[i]; t != "" {
					refs = append(refs, pendingRef{codeIdx: blk.Start + i, fn: fb, target: t})
				}
				idx++
			}
			p.Blocks = append(p.Blocks, blk)
			fn.Blocks = append(fn.Blocks, blk)
		}
		fn.End = idx
		p.Funcs = append(p.Funcs, fn)
	}

	// Pass 2: emit flat code and lookup tables.
	p.Code = make([]isa.Instr, 0, idx)
	p.BlockOf = make([]int32, idx)
	p.FuncOf = make([]int32, idx)
	for _, blk := range p.Blocks {
		for i := range blk.Instrs {
			p.BlockOf[blk.Start+i] = int32(blk.ID)
			p.FuncOf[blk.Start+i] = int32(blk.Func)
		}
		p.Code = append(p.Code, blk.Instrs...)
	}

	// Pass 3: resolve symbolic targets in both the flat code and the
	// per-block copies (kept in sync so disassembly of either view agrees).
	for _, ref := range refs {
		var tgt int
		if len(ref.target) > 3 && ref.target[:3] == "fn:" {
			callee, ok := b.byName[ref.target[3:]]
			if !ok {
				return nil, fmt.Errorf("function %q: call to undefined function %q",
					ref.fn.name, ref.target[3:])
			}
			tgt = blockStart[callee][callee.blocks[0].label]
		} else {
			start, ok := blockStart[ref.fn][ref.target]
			if !ok {
				return nil, fmt.Errorf("function %q: jump to undefined label %q",
					ref.fn.name, ref.target)
			}
			tgt = start
		}
		p.Code[ref.codeIdx].Target = int32(tgt)
		blk := p.Blocks[p.BlockOf[ref.codeIdx]]
		blk.Instrs[ref.codeIdx-blk.Start].Target = int32(tgt)
	}

	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("program %q: %w", b.name, err)
	}
	return p, nil
}

// MustBuild is Build that panics on error; for workload constructors whose
// programs are statically known to be valid.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
