package program

import (
	"strings"
	"testing"

	"pmutrust/internal/isa"
)

// tinyProgram builds a two-function program exercising every builder
// feature: fallthrough, conditional/unconditional jumps, calls, mid-block
// call splitting.
func tinyProgram(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("tiny")
	f := b.Func("main")
	entry := f.Block("entry")
	entry.Movi(1, 10)
	entry.Movi(2, 0)
	loop := f.Block("loop")
	loop.Call("work") // mid-block call: split point
	loop.Addi(1, 1, -1)
	loop.Cmpi(1, 0)
	loop.Jnz("loop")
	exit := f.Block("exit")
	exit.Halt()

	w := b.Func("work")
	wb := w.Block("body")
	wb.Addi(2, 2, 1)
	wb.Cmpi(2, 5)
	wb.Jlt("skip")
	big := w.Block("big")
	big.Add(2, 2, 2)
	skip := w.Block("skip")
	skip.Ret()

	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestBuildAndValidate(t *testing.T) {
	p := tinyProgram(t)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.NumFuncs() != 2 {
		t.Errorf("funcs = %d", p.NumFuncs())
	}
	// loop block split at the call: "loop" = [call], "loop$1" = rest.
	var labels []string
	for _, blk := range p.Funcs[0].Blocks {
		labels = append(labels, blk.Label)
	}
	want := "entry,loop,loop$1,exit"
	if got := strings.Join(labels, ","); got != want {
		t.Errorf("main blocks = %s, want %s", got, want)
	}
}

func TestLookupTables(t *testing.T) {
	p := tinyProgram(t)
	for i := range p.Code {
		blk := p.BlockAt(i)
		if i < blk.Start || i >= blk.End() {
			t.Fatalf("BlockAt(%d) = %s [%d,%d)", i, blk.Label, blk.Start, blk.End())
		}
		fn := p.FuncAt(i)
		if i < fn.Start || i >= fn.End {
			t.Fatalf("FuncAt(%d) out of range", i)
		}
		if p.Blocks[p.BlockOf[i]].Func != fn.ID {
			t.Fatalf("block/function tables disagree at %d", i)
		}
	}
}

func TestFindFunc(t *testing.T) {
	p := tinyProgram(t)
	if p.FindFunc("work") == nil {
		t.Error("FindFunc(work) = nil")
	}
	if p.FindFunc("nope") != nil {
		t.Error("FindFunc(nope) != nil")
	}
	if p.Funcs[0].Entry().Label != "entry" {
		t.Error("entry block wrong")
	}
}

func TestSuccessors(t *testing.T) {
	p := tinyProgram(t)
	find := func(fn, label string) *Block {
		for _, blk := range p.FindFunc(fn).Blocks {
			if blk.Label == label {
				return blk
			}
		}
		t.Fatalf("block %s.%s not found", fn, label)
		return nil
	}
	// "loop" ends in a call: successors are the callee entry and the
	// fallthrough.
	succs := p.Successors(find("main", "loop"))
	if len(succs) != 2 {
		t.Fatalf("call successors = %v", succs)
	}
	if p.Blocks[succs[0]].FullName(p) != "work.body" {
		t.Errorf("call target = %s", p.Blocks[succs[0]].FullName(p))
	}
	if p.Blocks[succs[1]].FullName(p) != "main.loop$1" {
		t.Errorf("call fallthrough = %s", p.Blocks[succs[1]].FullName(p))
	}
	// Conditional branch: target + fallthrough.
	succs = p.Successors(find("work", "body"))
	if len(succs) != 2 {
		t.Fatalf("cond successors = %v", succs)
	}
	// Halt and ret have no successors.
	if s := p.Successors(find("main", "exit")); len(s) != 0 {
		t.Errorf("halt successors = %v", s)
	}
	if s := p.Successors(find("work", "skip")); len(s) != 0 {
		t.Errorf("ret successors = %v", s)
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("no functions", func(t *testing.T) {
		if _, err := NewBuilder("x").Build(); err == nil {
			t.Error("no error for empty program")
		}
	})
	t.Run("empty block", func(t *testing.T) {
		b := NewBuilder("x")
		f := b.Func("main")
		f.Block("empty")
		if _, err := b.Build(); err == nil {
			t.Error("no error for empty block")
		}
	})
	t.Run("undefined label", func(t *testing.T) {
		b := NewBuilder("x")
		f := b.Func("main")
		f.Block("a").Jmp("nowhere")
		if _, err := b.Build(); err == nil {
			t.Error("no error for undefined label")
		}
	})
	t.Run("undefined callee", func(t *testing.T) {
		b := NewBuilder("x")
		f := b.Func("main")
		blk := f.Block("a")
		blk.Call("ghost")
		blk.Halt()
		if _, err := b.Build(); err == nil {
			t.Error("no error for undefined callee")
		}
	})
	t.Run("fall off function end", func(t *testing.T) {
		b := NewBuilder("x")
		f := b.Func("main")
		f.Block("a").Halt()
		g := b.Func("g")
		g.Block("b").Nop() // no ret: falls off the end
		if _, err := b.Build(); err == nil {
			t.Error("no error for falling off function end")
		}
	})
	t.Run("no halt", func(t *testing.T) {
		b := NewBuilder("x")
		f := b.Func("main")
		blk := f.Block("a")
		blk.Nop()
		blk.Jmp("a")
		if _, err := b.Build(); err == nil {
			t.Error("no error for missing halt")
		}
	})
}

func TestBuilderPanics(t *testing.T) {
	t.Run("duplicate function", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic for duplicate function")
			}
		}()
		b := NewBuilder("x")
		b.Func("f")
		b.Func("f")
	})
	t.Run("duplicate block", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic for duplicate block")
			}
		}()
		b := NewBuilder("x")
		f := b.Func("f")
		f.Block("a")
		f.Block("a")
	})
}

func TestDisasmOutput(t *testing.T) {
	p := tinyProgram(t)
	d := p.Disasm()
	for _, want := range []string{"main:", "work:", ".entry:", "call work.body", "jnz main.loop", "halt"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q", want)
		}
	}
}

func TestDotOutput(t *testing.T) {
	p := tinyProgram(t)
	d := p.Dot()
	for _, want := range []string{"digraph cfg", "cluster_0", "cluster_1", "->"} {
		if !strings.Contains(d, want) {
			t.Errorf("dot missing %q", want)
		}
	}
}

func TestStats(t *testing.T) {
	p := tinyProgram(t)
	s := p.Stats()
	if s.Instrs != len(p.Code) {
		t.Errorf("stats instrs = %d", s.Instrs)
	}
	if s.Blocks != p.NumBlocks() || s.Funcs != 2 {
		t.Errorf("stats shape wrong: %+v", s)
	}
	if s.Branches == 0 || s.MeanBlockLen <= 0 {
		t.Errorf("stats empty: %+v", s)
	}
	if s.String() == "" {
		t.Error("empty stats string")
	}
}

func TestDisplayAddr(t *testing.T) {
	if DisplayAddr(0) != DisplayBase {
		t.Error("DisplayAddr(0)")
	}
	if DisplayAddr(3) != DisplayBase+12 {
		t.Error("DisplayAddr(3)")
	}
}

func TestMemWordsDefault(t *testing.T) {
	p := tinyProgram(t)
	if p.MemWords <= 0 {
		t.Error("MemWords not defaulted")
	}
}

func TestMustBuildPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic on invalid program")
		}
	}()
	NewBuilder("bad").MustBuild()
}

// TestValidateDetectsCorruption corrupts a valid program in various ways
// and checks Validate notices each one (failure injection on the
// structural invariants).
func TestValidateDetectsCorruption(t *testing.T) {
	corruptions := []struct {
		name    string
		corrupt func(p *Program)
	}{
		{"blockOf wrong", func(p *Program) { p.BlockOf[2] = 0 }},
		{"funcOf wrong", func(p *Program) { p.FuncOf[len(p.Code)-1] = 0 }},
		{"branch into mid-block", func(p *Program) {
			// Aim the jnz into the middle of the entry block (2 instrs).
			mid := int32(p.Funcs[0].Entry().Start + 1)
			for i := range p.Code {
				if p.Code[i].Op == isa.OpJnz {
					p.Code[i].Target = mid
					blk := p.Blocks[p.BlockOf[i]]
					blk.Instrs[i-blk.Start].Target = mid
					return
				}
			}
		}},
		{"target out of range", func(p *Program) {
			for i := range p.Code {
				if p.Code[i].Op == isa.OpJnz {
					p.Code[i].Target = int32(len(p.Code)) + 5
					blk := p.Blocks[p.BlockOf[i]]
					blk.Instrs[i-blk.Start].Target = int32(len(p.Code)) + 5
					return
				}
			}
		}},
		{"invalid opcode", func(p *Program) {
			blk := p.Blocks[0]
			p.Code[blk.Start].Op = isa.Op(isa.NumOps)
			blk.Instrs[0].Op = isa.Op(isa.NumOps)
		}},
		{"register out of range", func(p *Program) {
			blk := p.Blocks[0]
			p.Code[blk.Start].Src1 = isa.NumRegs
			blk.Instrs[0].Src1 = isa.NumRegs
		}},
		{"second halt outside entry", func(p *Program) {
			// Replace work.skip's ret with halt.
			f := p.FindFunc("work")
			last := f.Blocks[len(f.Blocks)-1]
			last.Instrs[len(last.Instrs)-1] = isa.Instr{Op: isa.OpHalt}
			p.Code[last.End()-1] = isa.Instr{Op: isa.OpHalt}
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			p := tinyProgram(t)
			tc.corrupt(p)
			if err := p.Validate(); err == nil {
				t.Error("corruption not detected")
			}
		})
	}
}
