package workloads

import "pmutrust/internal/program"

// Application analogs (§4.3.5). Each configuration below reproduces the
// profile-relevant characteristics of its namesake; the table in DESIGN.md
// records the substitution rationale. The SPEC subset is the non-HPC
// C/C++ benchmarks the paper selects as enterprise proxies (mcf, povray,
// omnetpp, xalancbmk), plus the CERN FullCMS production workload.
func init() {
	register(Spec{
		Name: "mcf",
		Kind: App,
		Description: "429.mcf analog: network-simplex pointer chasing — dependent " +
			"load chains dominating the cycle budget, modest branchiness, INT only.",
		Build: func(scale float64) *program.Program {
			return Generate(GenConfig{
				Name:            "mcf",
				Seed:            0x6d6366, // "mcf"
				OuterIters:      55_000,
				Services:        6,
				ZipfSkew:        1.2,
				Depth:           2,
				FuncsPerLevel:   5,
				DiamondsMin:     2,
				DiamondsMax:     4,
				BodyMin:         3,
				BodyMax:         9,
				FPFrac:          0,
				DivFrac:         0.01,
				LoadFrac:        0.30,
				CallProb:        0.4,
				InnerLoopProb:   0.3,
				InnerIters:      6,
				PointerChase:    6,
				ChaseTableWords: 1 << 14,
			}, scale)
		},
	})
	register(Spec{
		Name: "povray",
		Kind: App,
		Description: "453.povray analog: ray tracing — FP-heavy medium blocks, " +
			"shallow call trees, occasional long-latency divides.",
		Build: func(scale float64) *program.Program {
			return Generate(GenConfig{
				Name:          "povray",
				Seed:          0x706f76, // "pov"
				OuterIters:    45_000,
				Services:      8,
				ZipfSkew:      1.1,
				Depth:         2,
				FuncsPerLevel: 6,
				DiamondsMin:   2,
				DiamondsMax:   5,
				BodyMin:       6,
				BodyMax:       16,
				FPFrac:        0.55,
				DivFrac:       0.04,
				LoadFrac:      0.10,
				CallProb:      0.35,
				InnerLoopProb: 0.5,
				InnerIters:    8,
			}, scale)
		},
	})
	register(Spec{
		Name: "omnetpp",
		Kind: App,
		Description: "471.omnetpp analog: discrete event simulation — INT, heavy " +
			"dispatch, medium call depth, queue-like loads.",
		Build: func(scale float64) *program.Program {
			return Generate(GenConfig{
				Name:          "omnetpp",
				Seed:          0x6f6d6e, // "omn"
				OuterIters:    60_000,
				Services:      12,
				ZipfSkew:      1.3,
				Depth:         3,
				FuncsPerLevel: 8,
				DiamondsMin:   2,
				DiamondsMax:   4,
				BodyMin:       3,
				BodyMax:       8,
				FPFrac:        0.02,
				DivFrac:       0.01,
				LoadFrac:      0.20,
				CallProb:      0.45,
				InnerLoopProb: 0.25,
				InnerIters:    4,
			}, scale)
		},
	})
	register(Spec{
		Name: "xalancbmk",
		Kind: App,
		Description: "483.xalancbmk analog: XSLT transformation — extremely branchy " +
			"short blocks, wide dispatch ladders, long-tail hotness.",
		Build: func(scale float64) *program.Program {
			return Generate(GenConfig{
				Name:          "xalancbmk",
				Seed:          0x78616c, // "xal"
				OuterIters:    65_000,
				Services:      16,
				ZipfSkew:      1.4,
				Depth:         3,
				FuncsPerLevel: 10,
				DiamondsMin:   3,
				DiamondsMax:   6,
				BodyMin:       2,
				BodyMax:       5,
				FPFrac:        0,
				DivFrac:       0.005,
				LoadFrac:      0.15,
				CallProb:      0.5,
				InnerLoopProb: 0.2,
				InnerIters:    3,
			}, scale)
		},
	})
	register(Spec{
		Name: "FullCMS",
		Kind: App,
		Description: "CERN FullCMS analog: Geant4 detector simulation — deep chains " +
			"of small fragmented FP methods; callchain-like periodic call structure " +
			"(the case where pure LBR stops paying off, §5.2).",
		Build: func(scale float64) *program.Program {
			return Generate(GenConfig{
				Name:          "FullCMS",
				Seed:          0x636d73, // "cms"
				OuterIters:    12_000,
				Services:      10,
				ZipfSkew:      1.15,
				Depth:         5,
				FuncsPerLevel: 8,
				DiamondsMin:   1,
				DiamondsMax:   3,
				BodyMin:       3,
				BodyMax:       8,
				FPFrac:        0.35,
				DivFrac:       0.02,
				LoadFrac:      0.12,
				CallProb:      0.65,
				InnerLoopProb: 0.15,
				InnerIters:    4,
				// The hot stepping loop: a deterministic 8-deep chain of
				// short methods run several times per event, giving the
				// workload its callchain-kernel character (§5.2).
				Chain: &ChainConfig{Depth: 8, Work: 6, Iters: 5},
			}, scale)
		},
	})
}
