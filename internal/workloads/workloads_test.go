package workloads

import (
	"testing"
	"testing/quick"

	"pmutrust/internal/cpu"
	"pmutrust/internal/ref"
)

func TestRegistryContents(t *testing.T) {
	kernels := Kernels()
	wantK := []string{"LatencyBiased", "CallChain", "G4Box", "Test40"}
	if len(kernels) != len(wantK) {
		t.Fatalf("kernels = %d", len(kernels))
	}
	for i, w := range wantK {
		if kernels[i].Name != w {
			t.Errorf("kernel %d = %s, want %s", i, kernels[i].Name, w)
		}
		if kernels[i].Kind != Kernel {
			t.Errorf("%s kind = %v", w, kernels[i].Kind)
		}
		if kernels[i].Description == "" {
			t.Errorf("%s lacks a description", w)
		}
	}
	apps := Apps()
	wantA := []string{"mcf", "povray", "omnetpp", "xalancbmk", "FullCMS"}
	if len(apps) != len(wantA) {
		t.Fatalf("apps = %d", len(apps))
	}
	for i, w := range wantA {
		if apps[i].Name != w {
			t.Errorf("app %d = %s, want %s", i, apps[i].Name, w)
		}
	}
	if len(All()) != len(kernels)+len(apps)+len(PhasedFamily()) {
		t.Error("All() size mismatch")
	}
	if _, err := ByName("mcf"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestCallChainIterationLength(t *testing.T) {
	// The documented resonance property: exactly 100 instructions per
	// iteration. Measure two scales and difference out the fixed
	// prologue/epilogue.
	p1 := CallChain(1.0 / 120) // 1000 iters
	p2 := CallChain(2.0 / 120) // 2000 iters
	r1, err := cpu.RunFunctional(p1, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cpu.RunFunctional(p2, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	perIter := (r2.Instructions - r1.Instructions) / 1000
	if perIter != 100 {
		t.Errorf("CallChain iteration = %d instructions, want 100", perIter)
	}
}

func TestCallChainEqualWork(t *testing.T) {
	// The ten chain functions must get near-equal instruction counts
	// (f10 is deliberately 3 instructions lighter, ~30% of one function's
	// share at most).
	p := CallChain(0.05)
	r, err := ref.Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	byFunc := make(map[string]uint64)
	for i, blk := range p.Blocks {
		byFunc[p.Funcs[blk.Func].Name] += r.InstrCount[i]
	}
	f1 := byFunc["f1"]
	for _, fn := range []string{"f2", "f3", "f4", "f5", "f6", "f7", "f8", "f9"} {
		if byFunc[fn] != f1 {
			t.Errorf("%s count %d != f1 count %d", fn, byFunc[fn], f1)
		}
	}
	if byFunc["f10"] >= f1 {
		t.Errorf("leaf f10 (%d) not lighter than f1 (%d)", byFunc["f10"], f1)
	}
}

func TestLatencyBiasedArmsBalanced(t *testing.T) {
	p := LatencyBiased(0.1)
	r, err := ref.Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	var even, odd uint64
	for i, blk := range p.Blocks {
		switch blk.Label {
		case "even":
			even = r.ExecCount[i]
		case "odd":
			odd = r.ExecCount[i]
		}
	}
	if even == 0 || odd == 0 {
		t.Fatal("arm not executed")
	}
	diff := int64(even) - int64(odd)
	if diff < -1 || diff > 1 {
		t.Errorf("arms unbalanced: even %d, odd %d", even, odd)
	}
}

func TestG4BoxEvenSplit(t *testing.T) {
	p := G4Box(0.05)
	r, err := ref.Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	byFunc := make(map[string]uint64)
	for i, blk := range p.Blocks {
		byFunc[p.Funcs[blk.Func].Name] += r.InstrCount[i]
	}
	in, out := float64(byFunc["inside"]), float64(byFunc["distanceToOut"])
	if in == 0 || out == 0 {
		t.Fatal("worker function not executed")
	}
	ratio := in / out
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("work split %f not even (§4.3.3 requires an even split)", ratio)
	}
}

func TestGeneratedDeterminism(t *testing.T) {
	a := Generate(GenConfig{
		Name: "g", Seed: 9, OuterIters: 100, Services: 3, ZipfSkew: 1.2,
		Depth: 2, FuncsPerLevel: 3, DiamondsMin: 1, DiamondsMax: 3,
		BodyMin: 2, BodyMax: 6, CallProb: 0.5,
	}, 1)
	b := Generate(GenConfig{
		Name: "g", Seed: 9, OuterIters: 100, Services: 3, ZipfSkew: 1.2,
		Depth: 2, FuncsPerLevel: 3, DiamondsMin: 1, DiamondsMax: 3,
		BodyMin: 2, BodyMax: 6, CallProb: 0.5,
	}, 1)
	if len(a.Code) != len(b.Code) {
		t.Fatalf("same seed, different code sizes: %d vs %d", len(a.Code), len(b.Code))
	}
	for i := range a.Code {
		if a.Code[i] != b.Code[i] {
			t.Fatalf("same seed, different instruction at %d", i)
		}
	}
	c := Generate(GenConfig{
		Name: "g", Seed: 10, OuterIters: 100, Services: 3, ZipfSkew: 1.2,
		Depth: 2, FuncsPerLevel: 3, DiamondsMin: 1, DiamondsMax: 3,
		BodyMin: 2, BodyMax: 6, CallProb: 0.5,
	}, 1)
	if len(a.Code) == len(c.Code) {
		same := true
		for i := range a.Code {
			if a.Code[i] != c.Code[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical programs")
		}
	}
}

func TestScaleOnlyChangesIterations(t *testing.T) {
	for _, spec := range All() {
		p1 := spec.Build(0.01)
		p2 := spec.Build(0.05)
		if len(p1.Code) != len(p2.Code) {
			t.Errorf("%s: scale changed static code size (%d vs %d)",
				spec.Name, len(p1.Code), len(p2.Code))
		}
	}
}

// Property: arbitrary generator configurations produce valid programs that
// halt.
func TestQuickGeneratedProgramsValidAndHalt(t *testing.T) {
	f := func(seed uint64, services, depth, funcs, dmin, dspan, bmin, bspan uint8) bool {
		cfg := GenConfig{
			Name:          "q",
			Seed:          seed,
			OuterIters:    20,
			Services:      1 + int(services%6),
			ZipfSkew:      1.1,
			Depth:         int(depth % 4),
			FuncsPerLevel: 1 + int(funcs%5),
			DiamondsMin:   1 + int(dmin%3),
			DiamondsMax:   1 + int(dmin%3) + int(dspan%3),
			BodyMin:       1 + int(bmin%4),
			BodyMax:       1 + int(bmin%4) + int(bspan%6),
			FPFrac:        0.2,
			DivFrac:       0.02,
			LoadFrac:      0.1,
			CallProb:      0.5,
			InnerLoopProb: 0.3,
			InnerIters:    3,
		}
		p := Generate(cfg, 1)
		if p.Validate() != nil {
			return false
		}
		_, err := cpu.RunFunctional(p, nil, 10_000_000)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestEnterpriseBranchDensity(t *testing.T) {
	// Yasin et al.: instructions per taken branch around 6-12 for
	// enterprise codes. Allow a wider guard band but catch regressions
	// that would change the sampling regime.
	for _, spec := range Apps() {
		p := spec.Build(0.02)
		res, err := cpu.RunFunctional(p, nil, 0)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		ratio := float64(res.Instructions) / float64(res.TakenBranches)
		if ratio < 4 || ratio > 16 {
			t.Errorf("%s: %.1f instructions per taken branch, outside 4-16", spec.Name, ratio)
		}
	}
}
