package workloads

import (
	"fmt"

	"pmutrust/internal/isa"
	"pmutrust/internal/program"
	"pmutrust/internal/stats"
)

// GenConfig parameterizes the synthetic application generator. Each field
// maps to a profile-relevant characteristic of the workload being
// imitated; see apps.go for the five paper configurations.
type GenConfig struct {
	// Name names the generated program.
	Name string
	// Seed makes the generated CFG deterministic.
	Seed uint64
	// OuterIters is the base trip count of the main driver loop (scaled
	// by Spec.Build's scale argument).
	OuterIters int
	// Services is the number of top-level "service" functions the driver
	// dispatches into (the workload's visible hotspots).
	Services int
	// ZipfSkew shapes service hotness: higher values concentrate time in
	// fewer services (enterprise long-tail profiles use ~1.1-1.5).
	ZipfSkew float64
	// Depth is the maximum call depth below a service (FullCMS uses deep
	// chains of short methods; povray stays shallow).
	Depth int
	// FuncsPerLevel is how many distinct functions exist at each level
	// below the services.
	FuncsPerLevel int
	// DiamondsMin/Max bound the number of if/else diamonds per function:
	// the block-fragmentation knob.
	DiamondsMin, DiamondsMax int
	// BodyMin/Max bound the straight-line instruction count of each
	// diamond arm; small values produce the 6-12 instructions-per-taken-
	// branch enterprise signature.
	BodyMin, BodyMax int
	// FPFrac, DivFrac, LoadFrac set the body instruction mix (remaining
	// fraction is single-cycle ALU).
	FPFrac, DivFrac, LoadFrac float64
	// CallProb is the chance a diamond join calls into the next level.
	CallProb float64
	// InnerLoopProb is the chance a function contains a small counted
	// inner loop; InnerIters is its trip count.
	InnerLoopProb float64
	// InnerIters is the inner loop trip count.
	InnerIters int
	// PointerChase, when positive, adds a dependent-load chain of this
	// length to every driver iteration (the mcf signature), walking a
	// permutation initialized at startup.
	PointerChase int
	// ChaseTableWords is the pointer-chase table size (power of two).
	ChaseTableWords int
	// Chain, when non-nil, embeds a deterministic deep call chain invoked
	// every driver iteration — the FullCMS signature: a hot, periodic
	// stepping loop of short methods (the "similar characteristics to the
	// callchain kernel" of §5.2) layered over the fragmented long tail.
	Chain *ChainConfig
}

// ChainConfig describes the embedded periodic call chain.
type ChainConfig struct {
	// Depth is the number of chained functions.
	Depth int
	// Work is the straight-line instruction count per chain function.
	Work int
	// Iters is how many times the chain runs per driver iteration.
	Iters int
}

// Registers used by generated code, in addition to the kernel conventions.
const (
	rGA    = isa.Reg(0) // general accumulators
	rGB    = isa.Reg(1)
	rGC    = isa.Reg(2)
	rGD    = isa.Reg(3)
	rChase = isa.Reg(4) // pointer-chase cursor
	rTmp2  = isa.Reg(5)
	rMask  = isa.Reg(6) // dispatch mask constant
	rInner = isa.Reg(10)
	rIdx   = isa.Reg(11)
)

// Generate builds a synthetic application program from cfg at the given
// scale. The static CFG depends only on cfg (including Seed); scale
// changes the driver trip count alone.
func Generate(cfg GenConfig, scale float64) *program.Program {
	g := &generator{
		cfg: cfg,
		rng: stats.NewRNG(cfg.Seed),
		b:   program.NewBuilder(cfg.Name),
	}
	return g.build(scale)
}

type generator struct {
	cfg      GenConfig
	rng      *stats.RNG
	b        *program.Builder
	shiftCtr int64
}

// nextShift cycles through LCG bit positions so distinct branch sites test
// pseudo-independent bits.
func (g *generator) nextShift() int64 {
	g.shiftCtr++
	return 1 + (g.shiftCtr*7)%53
}

func (g *generator) build(scale float64) *program.Program {
	cfg := g.cfg
	n := iters(cfg.OuterIters, scale)

	// Plan the function name grid before emitting anything: level 0 are
	// the services, deeper levels are shared helpers.
	names := make([][]string, cfg.Depth+1)
	for lvl := 0; lvl <= cfg.Depth; lvl++ {
		count := cfg.FuncsPerLevel
		if lvl == 0 {
			count = cfg.Services
		}
		for i := 0; i < count; i++ {
			names[lvl] = append(names[lvl], fmt.Sprintf("L%d_f%d", lvl, i))
		}
	}

	g.emitMain(n, names[0])
	if cfg.Chain != nil {
		g.emitChain(*cfg.Chain)
	}
	for lvl := 0; lvl <= cfg.Depth; lvl++ {
		var callees []string
		if lvl < cfg.Depth {
			callees = names[lvl+1]
		}
		for _, name := range names[lvl] {
			g.emitFunction(name, lvl, callees)
		}
	}
	if cfg.PointerChase > 0 {
		g.emitChaseSetup()
	}
	return g.b.MustBuild()
}

// emitMain builds the driver: init, optional pointer-chase setup call, a
// Zipf-dispatched service call per iteration, optional chase chain, latch.
func (g *generator) emitMain(n int64, services []string) {
	cfg := g.cfg
	f := g.b.Func("main")

	entry := f.Block("entry")
	entry.Movi(rN, n)
	entry.Movi(rGA, 0x5bd1e995)
	entry.Movi(rGB, 3)
	entry.Movi(rGC, 0x27d4eb2f)
	entry.Movi(rGD, 7)
	entry.Movi(rMask, 1023)
	lcgInit(entry, int64(cfg.Seed|1))
	if cfg.PointerChase > 0 {
		entry.Movi(rChase, 1)
		entry.Call("chaseSetup")
	}

	loop := f.Block("loop")
	lcgStep(loop)
	if cfg.Chain != nil {
		loop.Call("stepping")
	}
	loop.Shr(rT0, rLCG, 3)
	loop.And(rT0, rT0, rMask)

	// Dispatch ladder: service k handles rT0 in [thresh[k-1], thresh[k]).
	// Thresholds follow the Zipf CDF over 0..1023, so service 0 is the
	// hottest. Produces the short compare-and-branch blocks typical of
	// virtual dispatch in large object-oriented codes.
	zipf := stats.NewZipf(len(services), cfg.ZipfSkew)
	thresholds := zipfThresholds(zipf, 1024)
	for k := range services {
		if k < len(services)-1 {
			disp := f.Block(fmt.Sprintf("disp%d", k))
			disp.Cmpi(rT0, thresholds[k])
			disp.Jlt(fmt.Sprintf("call%d", k))
		} else {
			// Last service takes the remainder; fall directly into it.
			disp := f.Block(fmt.Sprintf("disp%d", k))
			disp.Jmp(fmt.Sprintf("call%d", k))
		}
	}
	for k, svc := range services {
		call := f.Block(fmt.Sprintf("call%d", k))
		call.Call(svc)
		call.Jmp("after")
	}

	after := f.Block("after")
	after.Addi(rGD, rGD, 1)
	if cfg.PointerChase > 0 {
		chase := f.Block("chase")
		for i := 0; i < cfg.PointerChase; i++ {
			chase.Load(rChase, rChase, 0)
		}
		chase.Add(rGA, rGA, rChase)
	}

	latch := f.Block("latch")
	latch.Addi(rN, rN, -1)
	latch.Cmpi(rN, 0)
	latch.Jnz("loop")

	exit := f.Block("exit")
	exit.Halt()
}

// zipfThresholds converts a Zipf distribution over k outcomes into
// cumulative integer thresholds on [0, span): outcome k covers
// [thresholds[k-1], thresholds[k]).
func zipfThresholds(z *stats.Zipf, span int) []int64 {
	out := make([]int64, z.N())
	for i := range out {
		out[i] = int64(z.CDF(i) * float64(span))
	}
	out[len(out)-1] = int64(span)
	return out
}

// emitFunction builds one generated function at the given level.
func (g *generator) emitFunction(name string, level int, callees []string) {
	cfg := g.cfg
	fn := g.b.Func(name)
	diamonds := g.rng.IntRange(cfg.DiamondsMin, cfg.DiamondsMax)
	// Deeper functions are smaller: fragmented short methods.
	if level > 0 && diamonds > 1 {
		diamonds = 1 + diamonds/(level+1)
	}

	entry := fn.Block("entry")
	g.emitBody(entry, g.rng.IntRange(cfg.BodyMin, cfg.BodyMax))

	for d := 0; d < diamonds; d++ {
		test := fn.Block(fmt.Sprintf("t%d", d))
		test.Shr(rT0, rLCG, g.nextShift())
		test.And(rT0, rT0, rOne)
		test.Cmpi(rT0, 0)
		test.Jnz(fmt.Sprintf("else%d", d))

		then := fn.Block(fmt.Sprintf("then%d", d))
		g.emitBody(then, g.rng.IntRange(cfg.BodyMin, cfg.BodyMax))
		then.Jmp(fmt.Sprintf("join%d", d))

		els := fn.Block(fmt.Sprintf("else%d", d))
		g.emitBody(els, g.rng.IntRange(cfg.BodyMin, cfg.BodyMax))

		join := fn.Block(fmt.Sprintf("join%d", d))
		if len(callees) > 0 && g.rng.Bool(cfg.CallProb) {
			join.Call(callees[g.rng.Intn(len(callees))])
		} else {
			join.Addi(rGD, rGD, 1)
		}
	}

	if cfg.InnerLoopProb > 0 && g.rng.Bool(cfg.InnerLoopProb) {
		pre := fn.Block("innerPre")
		pre.Movi(rInner, int64(cfg.InnerIters))
		body := fn.Block("innerBody")
		g.emitBody(body, g.rng.IntRange(cfg.BodyMin, cfg.BodyMax))
		body.Addi(rInner, rInner, -1)
		body.Cmpi(rInner, 0)
		body.Jnz("innerBody")
	}

	ret := fn.Block("ret")
	ret.Ret()
}

// emitBody appends n straight-line instructions with the configured class
// mix to bb.
func (g *generator) emitBody(bb *program.BlockBuilder, n int) {
	cfg := g.cfg
	for i := 0; i < n; i++ {
		r := g.rng.Float64()
		switch {
		case r < cfg.FPFrac:
			switch g.rng.Intn(3) {
			case 0:
				bb.Fadd(rGA, rGA, rGB)
			case 1:
				bb.Fmul(rGB, rGB, rGC)
			default:
				bb.Fma(rGC, rGA, rGB)
			}
		case r < cfg.FPFrac+cfg.DivFrac:
			if g.rng.Bool(0.5) {
				bb.Div(rGA, rGA, rGD)
			} else {
				bb.Fdiv(rGB, rGB, rGD)
			}
			bb.Addi(rGA, rGA, 0x55) // keep operands alive
			i++
		case r < cfg.FPFrac+cfg.DivFrac+cfg.LoadFrac:
			bb.Addi(rIdx, rIdx, 17)
			bb.Load(rTmp2, rIdx, 0)
			bb.Add(rGC, rGC, rTmp2)
			i += 2
		default:
			switch g.rng.Intn(4) {
			case 0:
				bb.Add(rGA, rGA, rGB)
			case 1:
				bb.Xor(rGB, rGB, rGC)
			case 2:
				bb.Addi(rGC, rGC, 0x1234)
			default:
				bb.Or(rGD, rGD, rGA)
			}
		}
	}
}

// emitChain builds the deterministic stepping loop: a "stepping" driver
// running a Depth-deep call chain Iters times. Every chain function does
// the same fixed FP-flavored work, so the structure (and its cycle timing)
// repeats exactly — the periodicity that makes LBR windows cluster on
// callchain-like code.
func (g *generator) emitChain(cc ChainConfig) {
	fn := g.b.Func("stepping")
	pre := fn.Block("pre")
	pre.Movi(rInner, int64(cc.Iters))

	body := fn.Block("body")
	body.Call("chain1")
	body.Addi(rInner, rInner, -1)
	body.Cmpi(rInner, 0)
	body.Jnz("body")

	done := fn.Block("done")
	done.Ret()

	for i := 1; i <= cc.Depth; i++ {
		cf := g.b.Func(fmt.Sprintf("chain%d", i))
		cb := cf.Block("body")
		for w := 0; w < cc.Work; w++ {
			switch w % 3 {
			case 0:
				cb.Fadd(rGA, rGA, rGB)
			case 1:
				cb.Fmul(rGB, rGB, rGC)
			default:
				cb.Addi(rGC, rGC, 5)
			}
		}
		if i < cc.Depth {
			cb.Call(fmt.Sprintf("chain%d", i+1))
		}
		cb.Ret()
	}
}

// emitChaseSetup builds the startup function that initializes the
// pointer-chase permutation: mem[i] = (i + stride) & (tableWords-1), a
// single cycle covering the whole table.
func (g *generator) emitChaseSetup() {
	words := g.cfg.ChaseTableWords
	if words <= 0 {
		words = 1 << 12
	}
	g.b.SetMemWords(words)
	const stride = 5741 // odd → full cycle over a power-of-two table

	fn := g.b.Func("chaseSetup")
	entry := fn.Block("entry")
	entry.Movi(rIdx, 0)
	entry.Movi(rTmp2, stride)

	loop := fn.Block("loop")
	loop.Add(rT0, rIdx, rTmp2)
	loop.Movi(rInner, int64(words-1))
	loop.And(rT0, rT0, rInner)
	loop.Store(rT0, rIdx, 0)
	loop.Addi(rIdx, rIdx, 1)
	loop.Cmpi(rIdx, int64(words))
	loop.Jlt("loop")

	done := fn.Block("done")
	done.Ret()
}
