package workloads

import "pmutrust/internal/program"

// PhaseShiftSpec returns the hand-built phased stress workload used by
// the counter-multiplexing experiment family (internal/experiments
// mux*). It is registered under Kind Phased: the paper's evaluation set
// (Tables 1 and 2) is exactly Kernels() and Apps(), which never return
// phased workloads, so the reproduction tables are unchanged while
// -workload listings, sweeps and the phased experiment family can all
// reach it by name.
//
// The workload alternates two phases with disjoint event mixes — a
// memory phase that is almost all loads and stores, then an FP/branch
// phase that is almost all floating-point arithmetic and data-driven
// conditional branches. Each phase lasts on the order of a rotation
// timeslice, so a time-multiplexed counter that owns, say, the load event
// only during FP phases extrapolates from windows where loads barely
// occur: the enabled/running scaling is exact only for stationary event
// rates, and this workload is the anti-stationary probe.
func PhaseShiftSpec() Spec {
	return Spec{
		Name: "PhaseShift",
		Kind: Phased,
		Description: "Alternating memory-only and FP/branch-only phases, each about one " +
			"multiplexing timeslice long; breaks the stationarity assumption behind " +
			"enabled/running count scaling.",
		Build: PhaseShift,
	}
}

func init() { register(PhaseShiftSpec()) }

// PhaseShift builds the phased workload. Per macro iteration: a memory
// phase of 120 load/store inner iterations (~840 instructions, load
// latency bound), then an FP/branch phase of 80 inner iterations
// (~880 instructions, FP latency plus mispredict bound). Scale multiplies
// the macro iteration count only, as everywhere else.
func PhaseShift(scale float64) *program.Program {
	macro := iters(400, scale)
	b := program.NewBuilder("PhaseShift")
	f := b.Func("main")

	entry := f.Block("entry")
	entry.Movi(rN, macro)
	entry.Movi(rX, 1<<30)
	entry.Movi(rY, 5)
	entry.Movi(rPtr, 0)
	lcgInit(entry, 0x9e3779b9)

	// ---- memory phase: loads and stores walking a word array ----
	memTop := f.Block("mem_top")
	memTop.Movi(rI, 120)

	mem := f.Block("mem")
	mem.Load(rVal, rPtr, 0)
	mem.Addi(rVal, rVal, 3)
	mem.Store(rVal, rPtr, 1)
	mem.Addi(rPtr, rPtr, 7)
	mem.Addi(rI, rI, -1)
	mem.Cmpi(rI, 0)
	mem.Jnz("mem")

	// ---- FP/branch phase: FP arithmetic with data-driven branching ----
	fpTop := f.Block("fp_top")
	fpTop.Movi(rI, 80)

	fp := f.Block("fp")
	fp.Fma(rX, rX, rY)
	fp.Fmul(rAcc, rX, rY)
	lcgStep(fp)
	fp.Shr(rT0, rLCG, 61)
	fp.Cmpi(rT0, 3)
	fp.Jlt("fp_low")

	fpHigh := f.Block("fp_high")
	fpHigh.Fadd(rX, rX, rY)
	fpHigh.Jmp("fp_latch")

	fpLow := f.Block("fp_low")
	fpLow.Fmul(rX, rX, rY)

	fpLatch := f.Block("fp_latch")
	fpLatch.Addi(rI, rI, -1)
	fpLatch.Cmpi(rI, 0)
	fpLatch.Jnz("fp")

	macroLatch := f.Block("macro_latch")
	macroLatch.Addi(rN, rN, -1)
	macroLatch.Cmpi(rN, 0)
	macroLatch.Jnz("mem_top")

	exit := f.Block("exit")
	exit.Halt()
	return b.MustBuild()
}
