package workloads

import (
	"testing"

	"pmutrust/internal/cpu"
	"pmutrust/internal/ref"
)

// TestAllWorkloadsBuildAndHalt builds every registered workload at a small
// scale, validates it, and runs it to completion both functionally and
// under the timing model, checking the two paths agree on retirement
// totals.
func TestAllWorkloadsBuildAndHalt(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			p := spec.Build(0.02)
			if err := p.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
			fres, err := cpu.RunFunctional(p, nil, 200_000_000)
			if err != nil {
				t.Fatalf("functional run: %v", err)
			}
			tres, err := cpu.Run(p, cpu.DefaultConfig(), cpu.NopMonitor{}, 200_000_000)
			if err != nil {
				t.Fatalf("timed run: %v", err)
			}
			if fres.Instructions != tres.Instructions {
				t.Errorf("instruction count mismatch: functional %d, timed %d",
					fres.Instructions, tres.Instructions)
			}
			if fres.TakenBranches != tres.TakenBranches {
				t.Errorf("taken branch mismatch: functional %d, timed %d",
					fres.TakenBranches, tres.TakenBranches)
			}
			if tres.Cycles < tres.Instructions/8 {
				t.Errorf("suspicious IPC > 8: %d instrs in %d cycles",
					tres.Instructions, tres.Cycles)
			}
			r, err := ref.Collect(p)
			if err != nil {
				t.Fatalf("ref: %v", err)
			}
			if r.NetInstructions != fres.Instructions {
				t.Errorf("ref net instructions %d != functional %d",
					r.NetInstructions, fres.Instructions)
			}
			var sum uint64
			for _, ic := range r.InstrCount {
				sum += ic
			}
			if sum != r.NetInstructions {
				t.Errorf("ref per-block instruction sum %d != net %d", sum, r.NetInstructions)
			}
			t.Logf("%s: %d instrs, %d blocks, %d funcs, IPC %.2f, taken/instr 1:%.1f",
				spec.Name, fres.Instructions, p.NumBlocks(), p.NumFuncs(),
				tres.IPC(), float64(fres.Instructions)/float64(max(1, int(fres.TakenBranches))))
		})
	}
}
