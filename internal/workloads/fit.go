package workloads

import (
	"fmt"

	"pmutrust/internal/isa"
	"pmutrust/internal/program"
)

// FitMix measures a program's static opcode-class distribution as a
// normalized MixSpec — the bridge from the existing kernels and
// application analogs to the phased generator: a phase with
// "from": "povray" draws from povray's fitted mix instead of a
// hand-tuned one. Each class is a latency band of the ISA, so this is
// the per-phase latency distribution as well.
//
// The fit is static (over p.Code), not dynamic: the registered
// workloads keep their CFGs constant across scales, so the static
// histogram is scale-free and deterministic with no execution needed.
// Control-flow scaffolding (jmp/call/ret/halt) is excluded — the
// generator re-adds its own structure — while conditional branches
// count toward the branch class, together with their cmp.
func FitMix(p *program.Program) MixSpec {
	var m MixSpec
	for _, in := range p.Code {
		switch in.Op {
		case isa.OpMul:
			m.Mul++
		case isa.OpDiv, isa.OpRem:
			m.Div++
		case isa.OpFadd, isa.OpFmul, isa.OpFma:
			m.FP++
		case isa.OpFdiv:
			m.FPDiv++
		case isa.OpLoad:
			m.Load++
		case isa.OpStore:
			m.Store++
		case isa.OpJz, isa.OpJnz, isa.OpJlt, isa.OpJge:
			m.Branch++
		case isa.OpJmp, isa.OpCall, isa.OpRet, isa.OpHalt, isa.OpCmp, isa.OpCmpi:
			// Structural (or folded into the branch class below).
		default:
			m.ALU++
		}
	}
	total := m.total()
	if total == 0 {
		// A program of pure scaffolding; give the generator something
		// harmless rather than a zero mix it would reject.
		return MixSpec{ALU: 1}
	}
	m.ALU /= total
	m.Mul /= total
	m.Div /= total
	m.FP /= total
	m.FPDiv /= total
	m.Load /= total
	m.Store /= total
	m.Branch /= total
	return m
}

// FitMixFromWorkload fits the mix of a registered workload by name.
// Building is codegen only (nothing executes), and the CFG is
// scale-invariant, so any scale gives the same answer.
func FitMixFromWorkload(name string) (MixSpec, error) {
	spec, err := ByName(name)
	if err != nil {
		return MixSpec{}, err
	}
	if spec.Kind == Phased {
		// Refuse self-reference: a phased workload fit from a phased
		// workload invites definition cycles for no modeling value.
		return MixSpec{}, fmt.Errorf("workloads: fit from %q: fitting from a phased workload is not supported (fit from kernels or apps)", name)
	}
	return FitMix(spec.Build(1)), nil
}
