package workloads

import (
	"fmt"

	"pmutrust/internal/isa"
	"pmutrust/internal/program"
)

// Register the four designated kernels of §4.3.
func init() {
	register(Spec{
		Name: "LatencyBiased",
		Kind: Kernel,
		Description: "while (n--) ((n%2) ? x /= y : x += y); — alternating cheap/expensive " +
			"paths; the PMU biases samples toward the long-latency divide (§4.3.1).",
		Build: LatencyBiased,
	})
	register(Spec{
		Name: "CallChain",
		Kind: Kernel,
		Description: "A loop around a 10-deep call chain of equal-work functions; " +
			"exposes sampling bias on call chains of short methods (§4.3.2).",
		Build: CallChain,
	})
	register(Spec{
		Name: "G4Box",
		Kind: Kernel,
		Description: "Two functions with an even work split; a chain of tests and " +
			"branches generating short basic blocks (§4.3.3).",
		Build: G4Box,
	})
	register(Spec{
		Name: "Test40",
		Kind: Kernel,
		Description: "Kernelized Geant4 doppelganger: a particle stepping loop " +
			"conditionally triggering small fragmented physics processes (§4.3.4).",
		Build: Test40,
	})
}

// Registers conventions shared by the kernels (see isa.Reg):
//
//	r0..r7   data
//	r8..r11  loop counters
//	r12..r13 LCG state for data-driven branching
//	r14..r15 scratch / constants
const (
	rX    = isa.Reg(0)
	rY    = isa.Reg(1)
	rTwo  = isa.Reg(2)
	rAcc  = isa.Reg(3)
	rPtr  = isa.Reg(4)
	rVal  = isa.Reg(5)
	rN    = isa.Reg(8)
	rI    = isa.Reg(9)
	rLCG  = isa.Reg(12)
	rLCGK = isa.Reg(13)
	rT0   = isa.Reg(14)
	rOne  = isa.Reg(15)
)

// lcgStep appends the LCG state update used for data-driven branching:
// r12 = r12*6364136223846793005 + 1442695040888963407 (Knuth's MMIX
// constants), with the multiplier preloaded in r13.
func lcgStep(bb *program.BlockBuilder) {
	bb.Mul(rLCG, rLCG, rLCGK)
	bb.Addi(rLCG, rLCG, 1442695040888963407)
}

// lcgInit appends LCG constant initialization.
func lcgInit(bb *program.BlockBuilder, seed int64) {
	bb.Movi(rLCG, seed)
	bb.Movi(rLCGK, 6364136223846793005)
	bb.Movi(rOne, 1)
}

// LatencyBiased builds the §4.3.1 kernel. The loop body alternates between
// a one-instruction add path and a long-latency divide path, driven by the
// parity of the countdown register — a direct transcription of
//
//	while (n--) ((n%2) ? x /= y : x += y);
func LatencyBiased(scale float64) *program.Program {
	n := iters(400_000, scale)
	b := program.NewBuilder("LatencyBiased")
	f := b.Func("main")

	entry := f.Block("entry")
	entry.Movi(rN, n)
	entry.Movi(rX, 1<<40)
	entry.Movi(rY, 3)
	entry.Movi(rOne, 1)

	// The parity test compiles to a single AND, as a compiler would emit
	// for n%2 with unsigned n — the test itself must stay cheap so the
	// cost asymmetry lives entirely in the even/odd arms.
	test := f.Block("test")
	test.And(rT0, rN, rOne)
	test.Cmpi(rT0, 0)
	test.Jnz("odd")

	even := f.Block("even")
	even.Add(rX, rX, rY)
	even.Jmp("latch")

	odd := f.Block("odd")
	odd.Div(rX, rX, rY)
	odd.Addi(rX, rX, 1<<30) // keep x from collapsing to 0

	latch := f.Block("latch")
	latch.Addi(rN, rN, -1)
	latch.Cmpi(rN, 0)
	latch.Jnz("test")

	exit := f.Block("exit")
	exit.Halt()
	return b.MustBuild()
}

// CallChain builds the §4.3.2 kernel: a loop calling f1, which calls f2,
// ... through f10. All ten functions do the same amount of work, so a
// perfect profile attributes equal instruction counts to each; sampling
// bias shows up as inequality.
// The function bodies are sized so one loop iteration retires exactly 100
// instructions: 1 (call f1) + 9×10 (f1..f9: 8 work + call + ret) + 6
// (f10: 5 work + ret) + 3 (latch). Round sampling periods (2,000,000 on
// hardware; the scaled-down defaults here) are multiples of 100, so
// without prime periods or randomization every sample lands at the same
// loop phase — the synchronization hazard of §3.1 in its purest form.
func CallChain(scale float64) *program.Program {
	const depth = 10
	const workInstrs = 8
	n := iters(120_000, scale)

	b := program.NewBuilder("CallChain")
	f := b.Func("main")
	entry := f.Block("entry")
	entry.Movi(rN, n)
	entry.Movi(rX, 7)
	entry.Movi(rY, 13)

	loop := f.Block("loop")
	loop.Call("f1")
	loop.Addi(rN, rN, -1)
	loop.Cmpi(rN, 0)
	loop.Jnz("loop")

	exit := f.Block("exit")
	exit.Halt()

	for i := 1; i <= depth; i++ {
		fn := b.Func(fmt.Sprintf("f%d", i))
		body := fn.Block("body")
		// Near-equal work: a fixed-length dependency-light ALU sequence.
		// The leaf runs 5 instructions instead of 8 so the whole
		// iteration is exactly 100 instructions (see the function
		// comment).
		work := workInstrs
		if i == depth {
			work = 5
		}
		for w := 0; w < work; w++ {
			switch w % 4 {
			case 0:
				body.Add(rX, rX, rY)
			case 1:
				body.Xor(rY, rY, rX)
			case 2:
				body.Addi(rX, rX, 3)
			case 3:
				body.Or(rY, rY, rX)
			}
		}
		if i < depth {
			body.Call(fmt.Sprintf("f%d", i+1))
		}
		body.Ret()
	}
	return b.MustBuild()
}

// G4Box builds the §4.3.3 kernel: a heavier latency-biased variant with
// exactly two worker functions sharing the work evenly. Each function is a
// chain of tests and conditional short blocks — the fragmented, jumpy code
// that challenges plain sampling and favors LBR analysis.
func G4Box(scale float64) *program.Program {
	n := iters(60_000, scale)
	b := program.NewBuilder("G4Box")
	f := b.Func("main")

	entry := f.Block("entry")
	entry.Movi(rN, n)
	entry.Movi(rX, 1<<30)
	entry.Movi(rY, 5)
	lcgInit(entry, 0x9e3779b9)

	loop := f.Block("loop")
	lcgStep(loop)
	loop.Call("inside")
	loop.Call("distanceToOut")
	loop.Addi(rN, rN, -1)
	loop.Cmpi(rN, 0)
	loop.Jnz("loop")

	exit := f.Block("exit")
	exit.Halt()

	// Both functions are chains of 8 test+tiny-block diamonds, driven by
	// successive LCG bits; work is identical so the split is even.
	buildTestChain := func(name string, shiftBase int64) {
		fn := b.Func(name)
		const diamonds = 8
		for d := 0; d < diamonds; d++ {
			test := fn.Block(fmt.Sprintf("t%d", d))
			test.Shr(rT0, rLCG, shiftBase+int64(d*3))
			test.And(rT0, rT0, rOne)
			test.Cmpi(rT0, 0)
			test.Jnz(fmt.Sprintf("alt%d", d))

			// 2-instruction "then" block.
			then := fn.Block(fmt.Sprintf("then%d", d))
			then.Add(rX, rX, rY)
			then.Jmp(fmt.Sprintf("join%d", d))

			// 2-instruction "else" block.
			alt := fn.Block(fmt.Sprintf("alt%d", d))
			alt.Xor(rX, rX, rY)
			alt.Addi(rX, rX, 1)

			join := fn.Block(fmt.Sprintf("join%d", d))
			join.Or(rY, rY, rOne)
		}
		last := fn.Block("ret")
		last.Ret()
	}
	buildTestChain("inside", 0)
	buildTestChain("distanceToOut", 24)
	return b.MustBuild()
}

// Test40 builds the §4.3.4 kernel: an electron stepping through a simple
// detector geometry. Each step updates the particle state, then
// conditionally invokes a few small physics processes depending on where
// the particle is and what it interacts with — a collection of small,
// fragmented, conditionally-executed methods.
func Test40(scale float64) *program.Program {
	n := iters(40_000, scale)
	b := program.NewBuilder("Test40")
	f := b.Func("main")

	entry := f.Block("entry")
	entry.Movi(rN, n)
	entry.Movi(rX, 1<<20) // particle energy
	entry.Movi(rY, 3)
	entry.Movi(rAcc, 0)
	lcgInit(entry, 0x243f6a88)

	step := f.Block("step")
	lcgStep(step)
	step.Call("transport")

	// Material test: which medium is the particle in?
	medium := f.Block("medium")
	medium.Shr(rT0, rLCG, 7)
	medium.And(rT0, rT0, rOne)
	medium.Cmpi(rT0, 0)
	medium.Jnz("dense")

	vacuum := f.Block("vacuum")
	vacuum.Call("msc") // multiple scattering only
	vacuum.Jmp("decay")

	dense := f.Block("dense")
	dense.Call("ionise")
	dense.Call("brem")

	// Rare process: decay, ~1/8 of steps.
	decay := f.Block("decay")
	decay.Shr(rT0, rLCG, 13)
	decay.Movi(rVal, 7)
	decay.And(rT0, rT0, rVal)
	decay.Cmpi(rT0, 0)
	decay.Jnz("latch")

	doDecay := f.Block("doDecay")
	doDecay.Call("decayProc")

	latch := f.Block("latch")
	latch.Addi(rN, rN, -1)
	latch.Cmpi(rN, 0)
	latch.Jnz("step")

	exit := f.Block("exit")
	exit.Halt()

	// Small fragmented physics processes: 3-8 instruction methods, some
	// with an internal diamond, mixing FP (energy update) with integer
	// bookkeeping — the signature Geant4 texture.
	smallFn := func(name string, fpWork, intWork int, diamond bool, shift int64) {
		fn := b.Func(name)
		body := fn.Block("body")
		for i := 0; i < fpWork; i++ {
			if i%2 == 0 {
				body.Fmul(rX, rX, rY)
			} else {
				body.Fadd(rX, rX, rY)
			}
		}
		for i := 0; i < intWork; i++ {
			body.Addi(rAcc, rAcc, 1)
		}
		if diamond {
			body.Shr(rT0, rLCG, shift)
			body.And(rT0, rT0, rOne)
			body.Cmpi(rT0, 0)
			body.Jnz("skip")
			extra := fn.Block("extra")
			extra.Fadd(rX, rX, rOne)
			skip := fn.Block("skip")
			skip.Ret()
		} else {
			body.Ret()
		}
	}
	smallFn("transport", 2, 2, true, 17)
	smallFn("msc", 3, 1, false, 0)
	smallFn("ionise", 2, 2, true, 19)
	smallFn("brem", 4, 1, false, 0)
	smallFn("decayProc", 1, 4, true, 23)
	return b.MustBuild()
}
