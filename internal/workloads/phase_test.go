package workloads

import (
	"testing"

	"pmutrust/internal/cpu"
)

func TestPhaseShiftRegisteredAsPhased(t *testing.T) {
	// PhaseShift is registered (listings, sweeps and the phased
	// experiment family reach it by name) but under Kind Phased, so the
	// paper's evaluation set — Kernels() and Apps(), Tables 1 and 2 —
	// is unchanged.
	spec, err := ByName("PhaseShift")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kind != Phased || spec.Build == nil || spec.Description == "" {
		t.Fatalf("incomplete spec: %+v", spec)
	}
	for _, s := range append(Kernels(), Apps()...) {
		if s.Name == "PhaseShift" {
			t.Fatal("PhaseShift leaked into the paper evaluation set")
		}
	}
	found := false
	for _, s := range PhasedFamily() {
		if s.Name == "PhaseShift" {
			found = true
		}
	}
	if !found {
		t.Fatal("PhaseShift missing from PhasedFamily()")
	}
}

func TestPhaseShiftRunsAndHalts(t *testing.T) {
	p := PhaseShift(0.1)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := cpu.RunFast(p, cpu.DefaultConfig(), cpu.NopMonitor{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions == 0 || res.CondBranches == 0 || res.Mispredicts == 0 {
		t.Fatalf("degenerate run: %+v", res)
	}
	// Scale only changes iteration counts, like every other workload.
	if a, b := PhaseShift(0.02), PhaseShift(0.2); len(a.Code) != len(b.Code) {
		t.Errorf("scale changed static code size (%d vs %d)", len(a.Code), len(b.Code))
	}
}
