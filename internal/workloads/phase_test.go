package workloads

import (
	"testing"

	"pmutrust/internal/cpu"
)

func TestPhaseShiftNotRegistered(t *testing.T) {
	// The registry is the paper's evaluation set; PhaseShift must stay
	// out of Tables 1 and 2 (see PhaseShiftSpec).
	if _, err := ByName("PhaseShift"); err == nil {
		t.Fatal("PhaseShift leaked into the workload registry")
	}
	spec := PhaseShiftSpec()
	if spec.Name != "PhaseShift" || spec.Build == nil || spec.Description == "" {
		t.Fatalf("incomplete spec: %+v", spec)
	}
}

func TestPhaseShiftRunsAndHalts(t *testing.T) {
	p := PhaseShift(0.1)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := cpu.RunFast(p, cpu.DefaultConfig(), cpu.NopMonitor{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions == 0 || res.CondBranches == 0 || res.Mispredicts == 0 {
		t.Fatalf("degenerate run: %+v", res)
	}
	// Scale only changes iteration counts, like every other workload.
	if a, b := PhaseShift(0.02), PhaseShift(0.2); len(a.Code) != len(b.Code) {
		t.Errorf("scale changed static code size (%d vs %d)", len(a.Code), len(b.Code))
	}
}
