package workloads

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"pmutrust/internal/cpu"
	"pmutrust/internal/pool"
)

// validSpec is a minimal valid two-phase spec tests mutate from.
func validSpec() PhasedSpec {
	return PhasedSpec{
		V: PhasedSpecV, Name: "T", Seed: 1,
		Phases: []PhaseSpec{
			{Name: "a", Mix: &MixSpec{ALU: 1}},
			{Name: "b", Mix: &MixSpec{FP: 1, Branch: 0.5}},
		},
	}
}

// TestSpecValidation walks the documented error surface: every rejected
// shape and the exact wording docs/WORKLOADS.md lists.
func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*PhasedSpec)
		want string // substring of the error; "" = valid
	}{
		{"valid", func(s *PhasedSpec) {}, ""},
		{"bad version", func(s *PhasedSpec) { s.V = 2 }, `spec version 2, want "v": 1`},
		{"no name", func(s *PhasedSpec) { s.Name = "" }, "spec needs a name"},
		{"reserved prefix", func(s *PhasedSpec) { s.Name = "mux-rr" }, "the mux- prefix is reserved"},
		{"no phases", func(s *PhasedSpec) { s.Phases = nil }, "has no phases"},
		{"negative macro", func(s *PhasedSpec) { s.MacroIters = -1 }, "macro_iters must be >= 1"},
		{"negative mem", func(s *PhasedSpec) { s.MemWords = -1 }, "mem_words must be >= 1"},
		{"unnamed phase", func(s *PhasedSpec) { s.Phases[0].Name = "" }, "phase 0 needs a name"},
		{"duplicate phase", func(s *PhasedSpec) { s.Phases[1].Name = "a" }, `duplicate phase "a"`},
		{"mix and from", func(s *PhasedSpec) { s.Phases[0].From = "povray" }, "exactly one of mix and from"},
		{"neither mix nor from", func(s *PhasedSpec) { s.Phases[0].Mix = nil }, "exactly one of mix and from"},
		{"unknown from", func(s *PhasedSpec) { s.Phases[0].Mix = nil; s.Phases[0].From = "nope" }, "unknown workload"},
		{"phased from", func(s *PhasedSpec) { s.Phases[0].Mix = nil; s.Phases[0].From = "PhaseShift" }, "fitting from a phased workload is not supported"},
		{"negative weight", func(s *PhasedSpec) { s.Phases[0].Mix = &MixSpec{ALU: -1, FP: 2} }, "negative mix weight"},
		{"zero mix", func(s *PhasedSpec) { s.Phases[0].Mix = &MixSpec{} }, "mix weights sum to zero"},
		{"instrs too big", func(s *PhasedSpec) { s.Phases[0].Instrs = 257 }, "instrs must be in [1, 256]"},
		{"negative intensity", func(s *PhasedSpec) { s.Phases[0].Intensity = -3 }, "intensity must be >= 1"},
		{"unknown schedule", func(s *PhasedSpec) { s.Schedule.Kind = "spiky" }, "unknown schedule kind"},
		{"burst not power of two", func(s *PhasedSpec) {
			s.Schedule = ScheduleSpec{Kind: ScheduleBurst, BurstEvery: 6}
		}, "burst_every must be a power of two >= 2"},
		{"burst factor one", func(s *PhasedSpec) {
			s.Schedule = ScheduleSpec{Kind: ScheduleBurst, BurstFactor: 1}
		}, "burst_factor must be >= 2"},
		{"burst unknown phase", func(s *PhasedSpec) {
			s.Schedule = ScheduleSpec{Kind: ScheduleBurst, BurstPhase: "zz"}
		}, `burst_phase "zz" is not a phase`},
		{"ramp shift too big", func(s *PhasedSpec) {
			s.Schedule = ScheduleSpec{Kind: ScheduleRamp, RampShift: 63}
		}, "ramp_shift must be in [1, 62]"},
	}
	for _, tc := range cases {
		s := validSpec()
		tc.mut(&s)
		err := s.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestParseStrict: unknown fields are authoring mistakes, not no-ops.
func TestParseStrict(t *testing.T) {
	if _, err := ParsePhasedSpec([]byte(`{"v":1,"name":"X","phasez":[]}`)); err == nil ||
		!strings.Contains(err.Error(), "phasez") {
		t.Errorf("unknown field accepted: %v", err)
	}
	if _, err := LoadPhasedSpec("/nonexistent/spec.json"); err == nil {
		t.Error("missing spec file accepted")
	}
}

// TestFingerprintNormalization: defaults spelled out and defaults
// omitted are the same spec — same fingerprint — while any semantic
// change (seed, weights, schedule) moves it. The builtin fingerprints
// are pinned: they appear in trace files and store provenance, so
// drifting them silently is a compatibility break.
func TestFingerprintNormalization(t *testing.T) {
	implicit := validSpec()
	explicit := validSpec()
	explicit.MacroIters = DefaultMacroIters
	explicit.MemWords = DefaultMemWords
	explicit.Schedule.Kind = ScheduleFixed
	for i := range explicit.Phases {
		explicit.Phases[i].Instrs = DefaultPhaseInstrs
		explicit.Phases[i].Intensity = DefaultPhaseIntensity
	}
	if implicit.Fingerprint() != explicit.Fingerprint() {
		t.Error("explicit defaults changed the fingerprint")
	}
	changed := validSpec()
	changed.Seed = 2
	if changed.Fingerprint() == implicit.Fingerprint() {
		t.Error("seed change did not move the fingerprint")
	}

	pinned := map[string]string{
		"PhasedAlt":   "bedaacb2b0247d23",
		"PhasedBurst": "33eb9005f7348318",
		"PhasedRamp":  "23f1760f0029bc43",
	}
	for name, want := range pinned {
		s, err := BuiltinPhasedSpec(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Fingerprint(); got != want {
			t.Errorf("%s: fingerprint %s, want pinned %s (breaks trace/store provenance)", name, got, want)
		}
	}
	if _, err := BuiltinPhasedSpec("nope"); err == nil {
		t.Error("unknown builtin spec accepted")
	}
}

// TestBuildDeterministicAnyParallelism: the same spec built concurrently
// on many workers is bit-identical to a serial build — generation state
// is all spec-derived, nothing ambient.
func TestBuildDeterministicAnyParallelism(t *testing.T) {
	for _, name := range []string{"PhasedAlt", "PhasedBurst", "PhasedRamp"} {
		spec, err := BuiltinPhasedSpec(name)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := BuildPhased(spec, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		const n = 16
		progs := make([]interface{}, n)
		err = pool.ForEach(n, 8, 0, func(i int) error {
			p, err := BuildPhased(spec, 0.1)
			progs[i] = p
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, pi := range progs {
			if !reflect.DeepEqual(pi, serial) {
				t.Fatalf("%s: parallel build %d differs from serial build", name, i)
			}
		}
	}
}

// TestScaleChangesTripCountOnly: like every registered workload, scale
// must not touch the static CFG.
func TestScaleChangesTripCountOnly(t *testing.T) {
	spec, err := BuiltinPhasedSpec("PhasedBurst")
	if err != nil {
		t.Fatal(err)
	}
	small, err := BuildPhased(spec, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	big, err := BuildPhased(spec, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(small.Code) != len(big.Code) {
		t.Fatalf("scale changed static code size: %d vs %d", len(small.Code), len(big.Code))
	}
	diff := 0
	for i := range small.Code {
		if small.Code[i] != big.Code[i] {
			diff++
		}
	}
	// Exactly one instruction may differ: the macro trip-count Movi.
	if diff != 1 {
		t.Errorf("%d instructions differ across scales, want exactly 1 (the macro Movi)", diff)
	}
}

// TestPhasedWorkloadsRunAndHalt executes each generated builtin end to
// end: valid programs that terminate with live branch behavior.
func TestPhasedWorkloadsRunAndHalt(t *testing.T) {
	for _, s := range PhasedFamily() {
		p := s.Build(0.05)
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		res, err := cpu.RunFast(p, cpu.DefaultConfig(), cpu.NopMonitor{}, 0)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if res.Instructions == 0 || res.CondBranches == 0 {
			t.Errorf("%s: degenerate run: %+v", s.Name, res)
		}
	}
}

// TestPhasedFamilyRegistered: the registry gained exactly the phased
// family and the paper's evaluation set is untouched.
func TestPhasedFamilyRegistered(t *testing.T) {
	want := map[string]bool{"PhaseShift": true, "PhasedAlt": true, "PhasedBurst": true, "PhasedRamp": true}
	fam := PhasedFamily()
	if len(fam) != len(want) {
		t.Fatalf("PhasedFamily has %d entries, want %d: %v", len(fam), len(want), fam)
	}
	for _, s := range fam {
		if !want[s.Name] {
			t.Errorf("unexpected phased workload %s", s.Name)
		}
		if s.Kind != Phased || s.Kind.String() != "phased" {
			t.Errorf("%s: wrong kind %v (%s)", s.Name, s.Kind, s.Kind)
		}
	}
	if n := len(Kernels()); n != 4 {
		t.Errorf("Kernels() has %d entries, want 4 (paper Table 1 set)", n)
	}
}

// TestFitMix pins the fit's contract: normalized to mass 1, classes land
// where the ISA says, and a spec can round through WorkloadSpec.
func TestFitMix(t *testing.T) {
	m, err := FitMixFromWorkload("povray")
	if err != nil {
		t.Fatal(err)
	}
	if tot := m.total(); tot < 0.999 || tot > 1.001 {
		t.Errorf("fit mass %v, want 1", tot)
	}
	if m.FP == 0 || m.Branch == 0 {
		t.Errorf("povray fit missing FP or branches: %+v", m)
	}
	if _, err := FitMixFromWorkload("PhasedAlt"); err == nil {
		t.Error("fit from a phased workload accepted")
	}

	ws, err := validSpec().WorkloadSpec()
	if err != nil {
		t.Fatal(err)
	}
	if ws.Kind != Phased || ws.Build == nil || !strings.Contains(ws.Description, "fixed") {
		t.Errorf("WorkloadSpec: %+v", ws)
	}
	bad := validSpec()
	bad.Name = ""
	if _, err := bad.WorkloadSpec(); err == nil {
		t.Error("WorkloadSpec accepted an invalid spec")
	}
}

// TestSpecJSONRoundTrip: a spec survives marshal/parse — what saving an
// authored spec file does.
func TestSpecJSONRoundTrip(t *testing.T) {
	spec, err := BuiltinPhasedSpec("PhasedBurst")
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParsePhasedSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, spec) {
		t.Errorf("round trip changed the spec:\n%+v\nvs\n%+v", back, spec)
	}
	if back.Fingerprint() != spec.Fingerprint() {
		t.Error("round trip changed the fingerprint")
	}
}
