package workloads

// The spec-driven phased workload generator ("wlgen v2"). A PhasedSpec
// is a small declarative document — phases with opcode-class mixes,
// plus a schedule that sequences them — from which BuildPhased emits a
// deterministic program. The point is scenario diversity beyond the
// paper's steady kernels: PR 4 showed that phase behavior dominates
// multiplexing error, and the only phased probe was the hand-built
// PhaseShift. With a spec, any phase structure (alternating, bursty,
// ramping intensity) is a few lines of JSON away, and the per-phase
// mixes can be fit from the existing kernels and applications
// (see FitMix) instead of being hand-tuned.
//
// Determinism contract: the generated program depends only on the spec
// (including its Seed) and the scale. Each phase draws from its own RNG
// stream, derived via stats.DeriveSeed(seed, "phase", name), so editing
// one phase never perturbs another's code, and generation is
// byte-identical at any parallelism. Scale multiplies the macro trip
// count only — the static CFG is scale-invariant, like every other
// workload in the registry.
//
// docs/WORKLOADS.md is the authoring guide: the full schema reference,
// a schedule cookbook, and a worked example through record/replay
// (internal/trace) to a report table.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"pmutrust/internal/isa"
	"pmutrust/internal/program"
	"pmutrust/internal/stats"
)

// PhasedSpecV is the spec schema version. Specs must carry it
// explicitly ("v": 1): the spec is an on-disk authoring surface, and a
// future field with changed semantics must not be silently reinterpreted.
const PhasedSpecV = 1

// Schedule kinds. See the cookbook in docs/WORKLOADS.md.
const (
	// ScheduleFixed runs every phase once per macro iteration at its
	// base intensity: a stationary mixture (the PhaseShift shape when
	// intensities are long).
	ScheduleFixed = "fixed"
	// ScheduleAlternate runs one phase per macro iteration, cycling
	// round-robin: phases occupy whole macro iterations, the coarsest
	// anti-stationary structure.
	ScheduleAlternate = "alternate"
	// ScheduleBurst is the fixed schedule, except one designated phase
	// multiplies its intensity every BurstEvery-th macro iteration —
	// the invitro burst mode, compiled into the CFG.
	ScheduleBurst = "burst"
	// ScheduleRamp is the fixed schedule with every phase's intensity
	// growing with the macro index (intensity + macroIdx>>RampShift) —
	// the invitro RPS-sweep mode.
	ScheduleRamp = "ramp"
)

// MixSpec weights the instruction classes a phase body draws from.
// Weights are relative (they need not sum to 1; FitMix normalizes).
// Each class maps to a fixed latency band of the ISA, so a mix is also
// a latency distribution: alu 1 cycle, mul 3, div long-latency integer,
// fp 3-5, fpdiv the longest, load the L1 band, store 2 uops, branch a
// data-driven conditional diamond (emitted as test + two arms + join).
type MixSpec struct {
	ALU    float64 `json:"alu,omitempty"`
	Mul    float64 `json:"mul,omitempty"`
	Div    float64 `json:"div,omitempty"`
	FP     float64 `json:"fp,omitempty"`
	FPDiv  float64 `json:"fpdiv,omitempty"`
	Load   float64 `json:"load,omitempty"`
	Store  float64 `json:"store,omitempty"`
	Branch float64 `json:"branch,omitempty"`
}

// total returns the weight mass.
func (m MixSpec) total() float64 {
	return m.ALU + m.Mul + m.Div + m.FP + m.FPDiv + m.Load + m.Store + m.Branch
}

// PhaseSpec is one phase: a named instruction mix with a size and a
// base intensity. Exactly one of Mix and From must be set; From fits
// the mix from a registered workload's static code (FitMix).
type PhaseSpec struct {
	// Name labels the phase; it becomes the phase function's name
	// ("phase_<name>") in profiles and disassembly.
	Name string `json:"name"`
	// Mix is the explicit instruction-class mix.
	Mix *MixSpec `json:"mix,omitempty"`
	// From names a registered workload whose static opcode-class
	// distribution becomes this phase's mix.
	From string `json:"from,omitempty"`
	// Instrs is how many mix draws the phase loop body makes
	// (default 8). A draw emits 1-3 instructions depending on class,
	// so the body is roughly 1-3x this size.
	Instrs int `json:"instrs,omitempty"`
	// Intensity is the phase loop's base trip count per activation
	// (default 32). The schedule may raise it (burst, ramp) at run
	// time — intensity is a register, not unrolled code.
	Intensity int `json:"intensity,omitempty"`
}

// ScheduleSpec sequences the phases.
type ScheduleSpec struct {
	// Kind is one of fixed, alternate, burst, ramp (default fixed).
	Kind string `json:"kind,omitempty"`
	// BurstEvery (burst only): the burst phase fires every BurstEvery-th
	// macro iteration. Must be a power of two (compiled to a mask test).
	// Default 8.
	BurstEvery int `json:"burst_every,omitempty"`
	// BurstFactor (burst only): intensity multiplier during a burst.
	// Default 8.
	BurstFactor int `json:"burst_factor,omitempty"`
	// BurstPhase (burst only) names the bursting phase; default is the
	// last phase.
	BurstPhase string `json:"burst_phase,omitempty"`
	// RampShift (ramp only): every phase's intensity is
	// base + macroIdx>>RampShift, so smaller shifts ramp faster.
	// Default 5.
	RampShift int `json:"ramp_shift,omitempty"`
}

// PhasedSpec is the declarative workload document. Parse with
// ParsePhasedSpec (strict: unknown fields are errors), build with
// BuildPhased.
type PhasedSpec struct {
	// V is the spec schema version; must be PhasedSpecV.
	V int `json:"v"`
	// Name names the generated program (and its table rows).
	Name string `json:"name"`
	// Seed makes generation deterministic; the per-phase streams derive
	// from it via stats.DeriveSeed.
	Seed uint64 `json:"seed"`
	// MacroIters is the base macro loop trip count (default 200),
	// multiplied by the build scale like every workload's outer loop.
	MacroIters int `json:"macro_iters,omitempty"`
	// MemWords sizes the data memory the load/store classes walk
	// (default 4096 words).
	MemWords int `json:"mem_words,omitempty"`
	// Schedule sequences the phases.
	Schedule ScheduleSpec `json:"schedule,omitempty"`
	// Phases are the phase definitions, in driver order.
	Phases []PhaseSpec `json:"phases"`
}

// Defaults applied by normalize(); exported so docs and tests state
// them once.
const (
	DefaultPhaseInstrs    = 8
	DefaultPhaseIntensity = 32
	DefaultMacroIters     = 200
	DefaultMemWords       = 4096
	DefaultBurstEvery     = 8
	DefaultBurstFactor    = 8
	DefaultRampShift      = 5
)

// normalize returns a copy with defaults filled in. Validate works on
// the normalized copy, and Fingerprint hashes it, so an explicit
// "intensity": 32 and an omitted one are the same spec.
func (s PhasedSpec) normalize() PhasedSpec {
	out := s
	out.Phases = append([]PhaseSpec(nil), s.Phases...)
	if out.MacroIters == 0 {
		out.MacroIters = DefaultMacroIters
	}
	if out.MemWords == 0 {
		out.MemWords = DefaultMemWords
	}
	if out.Schedule.Kind == "" {
		out.Schedule.Kind = ScheduleFixed
	}
	if out.Schedule.Kind == ScheduleBurst {
		if out.Schedule.BurstEvery == 0 {
			out.Schedule.BurstEvery = DefaultBurstEvery
		}
		if out.Schedule.BurstFactor == 0 {
			out.Schedule.BurstFactor = DefaultBurstFactor
		}
		if out.Schedule.BurstPhase == "" && len(out.Phases) > 0 {
			out.Schedule.BurstPhase = out.Phases[len(out.Phases)-1].Name
		}
	}
	if out.Schedule.Kind == ScheduleRamp && out.Schedule.RampShift == 0 {
		out.Schedule.RampShift = DefaultRampShift
	}
	for i := range out.Phases {
		if out.Phases[i].Instrs == 0 {
			out.Phases[i].Instrs = DefaultPhaseInstrs
		}
		if out.Phases[i].Intensity == 0 {
			out.Phases[i].Intensity = DefaultPhaseIntensity
		}
	}
	return out
}

// Validate checks the normalized spec and reports the first problem.
// Every error string below is part of the documented authoring surface
// (docs/WORKLOADS.md lists them verbatim).
func (s PhasedSpec) Validate() error {
	n := s.normalize()
	if n.V != PhasedSpecV {
		return fmt.Errorf(`workloads: spec version %d, want "v": %d`, n.V, PhasedSpecV)
	}
	if n.Name == "" {
		return fmt.Errorf("workloads: spec needs a name")
	}
	if strings.HasPrefix(n.Name, "mux-") {
		// The report layer routes records by the "mux-" method prefix;
		// a workload named like that would be confusing in stores.
		return fmt.Errorf("workloads: spec name %q: the mux- prefix is reserved", n.Name)
	}
	if len(n.Phases) == 0 {
		return fmt.Errorf("workloads: spec %q has no phases", n.Name)
	}
	if n.MacroIters < 1 {
		return fmt.Errorf("workloads: spec %q: macro_iters must be >= 1", n.Name)
	}
	if n.MemWords < 1 {
		return fmt.Errorf("workloads: spec %q: mem_words must be >= 1", n.Name)
	}
	seen := make(map[string]bool)
	for i, ph := range n.Phases {
		if ph.Name == "" {
			return fmt.Errorf("workloads: spec %q: phase %d needs a name", n.Name, i)
		}
		if seen[ph.Name] {
			return fmt.Errorf("workloads: spec %q: duplicate phase %q", n.Name, ph.Name)
		}
		seen[ph.Name] = true
		if (ph.Mix == nil) == (ph.From == "") {
			return fmt.Errorf("workloads: spec %q: phase %q needs exactly one of mix and from", n.Name, ph.Name)
		}
		if ph.From != "" {
			src, err := ByName(ph.From)
			if err != nil {
				return fmt.Errorf("workloads: spec %q: phase %q: from: %w", n.Name, ph.Name, err)
			}
			if src.Kind == Phased {
				return fmt.Errorf("workloads: spec %q: phase %q: from %q: fitting from a phased workload is not supported (fit from kernels or apps)", n.Name, ph.Name, ph.From)
			}
		}
		if ph.Mix != nil {
			m := *ph.Mix
			for _, w := range []float64{m.ALU, m.Mul, m.Div, m.FP, m.FPDiv, m.Load, m.Store, m.Branch} {
				if w < 0 {
					return fmt.Errorf("workloads: spec %q: phase %q: negative mix weight", n.Name, ph.Name)
				}
			}
			if m.total() <= 0 {
				return fmt.Errorf("workloads: spec %q: phase %q: mix weights sum to zero", n.Name, ph.Name)
			}
		}
		if ph.Instrs < 1 || ph.Instrs > 256 {
			return fmt.Errorf("workloads: spec %q: phase %q: instrs must be in [1, 256]", n.Name, ph.Name)
		}
		if ph.Intensity < 1 {
			return fmt.Errorf("workloads: spec %q: phase %q: intensity must be >= 1", n.Name, ph.Name)
		}
	}
	switch n.Schedule.Kind {
	case ScheduleFixed, ScheduleAlternate, ScheduleRamp:
	case ScheduleBurst:
		if e := n.Schedule.BurstEvery; e < 2 || e&(e-1) != 0 {
			return fmt.Errorf("workloads: spec %q: burst_every must be a power of two >= 2", n.Name)
		}
		if n.Schedule.BurstFactor < 2 {
			return fmt.Errorf("workloads: spec %q: burst_factor must be >= 2", n.Name)
		}
		if !seen[n.Schedule.BurstPhase] {
			return fmt.Errorf("workloads: spec %q: burst_phase %q is not a phase", n.Name, n.Schedule.BurstPhase)
		}
	default:
		return fmt.Errorf("workloads: spec %q: unknown schedule kind %q (want fixed, alternate, burst or ramp)", n.Name, n.Schedule.Kind)
	}
	if n.Schedule.Kind == ScheduleRamp {
		if sh := n.Schedule.RampShift; sh < 1 || sh > 62 {
			return fmt.Errorf("workloads: spec %q: ramp_shift must be in [1, 62]", n.Name)
		}
	}
	return nil
}

// ParsePhasedSpec decodes a JSON spec document. Decoding is strict —
// an unknown field is an error, not a silent no-op — and the result is
// validated.
func ParsePhasedSpec(data []byte) (PhasedSpec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s PhasedSpec
	if err := dec.Decode(&s); err != nil {
		return PhasedSpec{}, fmt.Errorf("workloads: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return PhasedSpec{}, err
	}
	return s, nil
}

// LoadPhasedSpec reads and parses a spec file.
func LoadPhasedSpec(path string) (PhasedSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return PhasedSpec{}, fmt.Errorf("workloads: %w", err)
	}
	s, err := ParsePhasedSpec(data)
	if err != nil {
		return PhasedSpec{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Fingerprint content-addresses the spec: the stats.Fingerprint of the
// normalized spec's canonical JSON under its seed. Equal fingerprints
// mean equal generated programs at equal scale; trace records carry it
// so a replayed program can be traced back to its spec.
func (s PhasedSpec) Fingerprint() string {
	n := s.normalize()
	canon, err := json.Marshal(n)
	if err != nil {
		// A PhasedSpec is plain data; Marshal cannot fail on one.
		panic(fmt.Sprintf("workloads: marshal spec: %v", err))
	}
	return stats.Fingerprint(n.Seed, string(canon))
}

// WorkloadSpec wraps the spec as a registry-shaped workload (Kind
// Phased) so custom specs flow through the same sweep, store and report
// machinery as registered workloads. The spec must be valid.
func (s PhasedSpec) WorkloadSpec() (Spec, error) {
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	desc := fmt.Sprintf("Spec-generated phased workload (%s schedule, %d phases, spec %s).",
		s.normalize().Schedule.Kind, len(s.Phases), s.Fingerprint())
	return Spec{
		Name:        s.Name,
		Kind:        Phased,
		Description: desc,
		Build: func(scale float64) *program.Program {
			return MustBuildPhased(s, scale)
		},
	}, nil
}

// Registers the phased driver adds to the shared conventions: r7 is the
// macro up-counter (schedules that depend on elapsed time — burst, ramp
// — read it; rN stays the countdown latch like every other workload).
const rUp = isa.Reg(7)

// BuildPhased generates the program for a valid spec. Scale multiplies
// the macro trip count only, like every registered workload, so the
// static CFG is identical at every scale.
func BuildPhased(s PhasedSpec, scale float64) (*program.Program, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := s.normalize()
	macro := iters(n.MacroIters, scale)

	// Resolve every phase mix up front (From fits are deterministic:
	// static code of a registered workload).
	mixes := make([]MixSpec, len(n.Phases))
	for i, ph := range n.Phases {
		if ph.Mix != nil {
			mixes[i] = *ph.Mix
		} else {
			m, err := FitMixFromWorkload(ph.From)
			if err != nil {
				return nil, err
			}
			mixes[i] = m
		}
	}

	b := program.NewBuilder(n.Name)
	b.SetMemWords(n.MemWords)
	buildPhasedMain(b, n, macro)
	for i, ph := range n.Phases {
		emitPhaseFunc(b, n.Seed, ph, mixes[i])
	}
	p, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("workloads: spec %q: %w", n.Name, err)
	}
	return p, nil
}

// MustBuildPhased is BuildPhased for specs already validated (registry
// Build closures); it panics on error.
func MustBuildPhased(s PhasedSpec, scale float64) *program.Program {
	p, err := BuildPhased(s, scale)
	if err != nil {
		panic(err)
	}
	return p
}

// buildPhasedMain emits the driver: init, one "slot" per scheduled
// phase per macro iteration (the slot computes the phase's intensity
// into rI and calls it), latch, exit.
func buildPhasedMain(b *program.Builder, n PhasedSpec, macro int64) {
	f := b.Func("main")
	entry := f.Block("entry")
	entry.Movi(rN, macro)
	entry.Movi(rUp, 0)
	entry.Movi(rGA, 0x5bd1e995)
	entry.Movi(rGB, 3)
	entry.Movi(rGC, 0x27d4eb2f)
	entry.Movi(rGD, 7)
	entry.Movi(rPtr, 0)
	entry.Movi(rIdx, 0)
	lcgInit(entry, int64(n.Seed|1))

	sched := n.Schedule
	if sched.Kind == ScheduleAlternate {
		// One phase per macro iteration, round-robin on rUp mod len.
		top := f.Block("dispatch")
		top.Movi(rVal, int64(len(n.Phases)))
		top.Rem(rT0, rUp, rVal)
		for i := range n.Phases {
			if i < len(n.Phases)-1 {
				d := f.Block(fmt.Sprintf("disp%d", i))
				d.Cmpi(rT0, int64(i))
				d.Jz(fmt.Sprintf("slot%d", i))
			} else {
				d := f.Block(fmt.Sprintf("disp%d", i))
				d.Jmp(fmt.Sprintf("slot%d", i))
			}
		}
		for i, ph := range n.Phases {
			slot := f.Block(fmt.Sprintf("slot%d", i))
			slot.Movi(rI, int64(ph.Intensity))
			slot.Call(phaseFuncName(ph.Name))
			slot.Jmp("macro_latch")
		}
	} else {
		// fixed / burst / ramp: every phase runs each macro iteration;
		// the schedule only shapes the intensity handed to it.
		first := true
		for i, ph := range n.Phases {
			label := fmt.Sprintf("slot%d", i)
			if first {
				label = "dispatch" // latch target: the first slot
				first = false
			}
			slot := f.Block(label)
			slot.Movi(rI, int64(ph.Intensity))
			switch {
			case sched.Kind == ScheduleBurst && ph.Name == sched.BurstPhase:
				slot.Movi(rVal, int64(sched.BurstEvery-1))
				slot.And(rT0, rUp, rVal)
				slot.Cmpi(rT0, 0)
				slot.Jnz(fmt.Sprintf("call%d", i))
				burst := f.Block(fmt.Sprintf("burst%d", i))
				burst.Movi(rI, int64(ph.Intensity*sched.BurstFactor))
				call := f.Block(fmt.Sprintf("call%d", i))
				call.Call(phaseFuncName(ph.Name))
				continue
			case sched.Kind == ScheduleRamp:
				slot.Shr(rT0, rUp, int64(sched.RampShift))
				slot.Add(rI, rI, rT0)
			}
			slot.Call(phaseFuncName(ph.Name))
		}
	}

	latch := f.Block("macro_latch")
	latch.Addi(rUp, rUp, 1)
	latch.Addi(rN, rN, -1)
	latch.Cmpi(rN, 0)
	latch.Jnz("dispatch")

	exit := f.Block("exit")
	exit.Halt()
}

// phaseFuncName is the generated function name for a phase.
func phaseFuncName(phase string) string { return "phase_" + phase }

// emitPhaseFunc emits one phase as a counted loop whose trip count the
// driver passes in rI. The loop body is Instrs draws from the phase's
// own RNG stream over the mix classes.
func emitPhaseFunc(b *program.Builder, seed uint64, ph PhaseSpec, mix MixSpec) {
	rng := stats.NewRNG(stats.DeriveSeed(seed, "phase", ph.Name))
	fn := b.Func(phaseFuncName(ph.Name))
	cur := fn.Block("top")

	total := mix.total()
	diamonds := 0
	for i := 0; i < ph.Instrs; i++ {
		r := rng.Float64() * total
		switch {
		case r < mix.ALU:
			switch rng.Intn(4) {
			case 0:
				cur.Add(rGA, rGA, rGB)
			case 1:
				cur.Xor(rGB, rGB, rGC)
			case 2:
				cur.Addi(rGC, rGC, 0x1234)
			default:
				cur.Or(rGD, rGD, rGA)
			}
		case r < mix.ALU+mix.Mul:
			cur.Mul(rGA, rGA, rGB)
			cur.Addi(rGA, rGA, 1) // keep the product from saturating
		case r < mix.ALU+mix.Mul+mix.Div:
			cur.Div(rGB, rGA, rGD)
			cur.Addi(rGB, rGB, 0x55)
		case r < mix.ALU+mix.Mul+mix.Div+mix.FP:
			switch rng.Intn(3) {
			case 0:
				cur.Fadd(rGA, rGA, rGB)
			case 1:
				cur.Fmul(rGB, rGB, rGC)
			default:
				cur.Fma(rGC, rGA, rGB)
			}
		case r < mix.ALU+mix.Mul+mix.Div+mix.FP+mix.FPDiv:
			cur.Fdiv(rGA, rGA, rGD)
			cur.Addi(rGA, rGA, 3)
		case r < mix.ALU+mix.Mul+mix.Div+mix.FP+mix.FPDiv+mix.Load:
			cur.Addi(rIdx, rIdx, 17)
			cur.Load(rVal, rIdx, 0)
			cur.Add(rGC, rGC, rVal)
		case r < mix.ALU+mix.Mul+mix.Div+mix.FP+mix.FPDiv+mix.Load+mix.Store:
			cur.Store(rGA, rPtr, 1)
			cur.Addi(rPtr, rPtr, 7)
		default: // branch: a data-driven diamond
			d := diamonds
			diamonds++
			lcgStep(cur)
			cur.Shr(rT0, rLCG, 1+int64(d*7)%53)
			cur.And(rT0, rT0, rOne)
			cur.Cmpi(rT0, 0)
			cur.Jnz(fmt.Sprintf("d%d_else", d))

			then := fn.Block(fmt.Sprintf("d%d_then", d))
			then.Add(rGA, rGA, rGB)
			then.Jmp(fmt.Sprintf("d%d_join", d))

			els := fn.Block(fmt.Sprintf("d%d_else", d))
			els.Xor(rGA, rGA, rGC)
			els.Addi(rGA, rGA, 1)

			cur = fn.Block(fmt.Sprintf("d%d_join", d))
			cur.Or(rGB, rGB, rOne)
		}
	}

	latch := fn.Block("latch")
	latch.Addi(rI, rI, -1)
	latch.Cmpi(rI, 0)
	latch.Jnz("top")

	done := fn.Block("done")
	done.Ret()
}

// builtinPhasedSpecs defines the registered phased family: one spec per
// schedule kind (beyond ScheduleFixed, which PhaseShift embodies with
// hand-built phases). These are the "phased" experiment's rows and
// double as live documentation — docs/WORKLOADS.md quotes PhasedBurst.
func builtinPhasedSpecs() []PhasedSpec {
	memPhase := PhaseSpec{
		Name:      "mem",
		Mix:       &MixSpec{Load: 0.45, Store: 0.3, ALU: 0.25},
		Instrs:    7,
		Intensity: 90,
	}
	fpPhase := PhaseSpec{
		Name:      "fp",
		From:      "povray", // FP-heavy: fit the mix instead of hand-tuning
		Instrs:    8,
		Intensity: 60,
	}
	return []PhasedSpec{
		{
			V: PhasedSpecV, Name: "PhasedAlt", Seed: 0x70616c74, // "palt"
			MacroIters: 360,
			Schedule:   ScheduleSpec{Kind: ScheduleAlternate},
			Phases:     []PhaseSpec{memPhase, fpPhase},
		},
		{
			V: PhasedSpecV, Name: "PhasedBurst", Seed: 0x70627374, // "pbst"
			MacroIters: 320,
			Schedule:   ScheduleSpec{Kind: ScheduleBurst, BurstEvery: 8, BurstFactor: 6, BurstPhase: "fp"},
			Phases:     []PhaseSpec{memPhase, fpPhase},
		},
		{
			V: PhasedSpecV, Name: "PhasedRamp", Seed: 0x70726d70, // "prmp"
			MacroIters: 320,
			Schedule:   ScheduleSpec{Kind: ScheduleRamp, RampShift: 5},
			Phases:     []PhaseSpec{memPhase, fpPhase},
		},
	}
}

// BuiltinPhasedSpec returns the registered generated spec by name —
// tests and docs reference them without re-stating the documents.
func BuiltinPhasedSpec(name string) (PhasedSpec, error) {
	for _, s := range builtinPhasedSpecs() {
		if s.Name == name {
			return s, nil
		}
	}
	var names []string
	for _, s := range builtinPhasedSpecs() {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return PhasedSpec{}, fmt.Errorf("workloads: unknown builtin phased spec %q (have %s)", name, strings.Join(names, ", "))
}

func init() {
	descs := map[string]string{
		"PhasedAlt": "Spec-generated alternation: memory-class and povray-fit FP phases " +
			"swap every macro iteration (alternate schedule).",
		"PhasedBurst": "Spec-generated bursty load: steady mem+FP baseline with the FP phase " +
			"at 6x intensity every 8th macro iteration (burst schedule).",
		"PhasedRamp": "Spec-generated ramp: mem+FP phases whose intensity climbs with elapsed " +
			"macro iterations (ramp schedule) — the event-rate drift probe.",
	}
	for _, s := range builtinPhasedSpecs() {
		spec := s // capture per iteration
		register(Spec{
			Name:        spec.Name,
			Kind:        Phased,
			Description: descs[spec.Name],
			Build: func(scale float64) *program.Program {
				return MustBuildPhased(spec, scale)
			},
		})
	}
}
