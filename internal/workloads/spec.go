// Package workloads constructs the paper's evaluation programs for the
// simulator: the four designated kernels of §4.3 (Latency-Biased,
// CallChain, G4Box, Test40) and synthetic analogs of the application set
// (the SPEC CPU2006 enterprise-proxy subset and the CERN FullCMS
// production workload).
//
// The applications are *generated*, not ported: what the accuracy study
// observes is the dynamic retirement stream over a static CFG, so each
// generator reproduces its workload's profile-relevant characteristics —
// block-size distribution, instructions-per-taken-branch (the 6-12
// enterprise band of Yasin et al.), call-chain depth, hot/cold long-tail
// shape, and instruction class mix — rather than its semantics. DESIGN.md
// documents this substitution.
package workloads

import (
	"fmt"
	"sort"

	"pmutrust/internal/program"
)

// Kind classifies workloads the way the paper's results tables do.
type Kind uint8

const (
	// Kernel is a designated microbenchmark (Table 1).
	Kernel Kind = iota
	// App is a full application analog (Table 2).
	App
	// Phased marks the phased/bursty stress family: workloads with
	// deliberately non-stationary event mixes (the hand-built PhaseShift
	// and the spec-generated phased programs). They are kept out of the
	// paper's Tables 1 and 2 — Kernels() and Apps() never return them —
	// and render as their own row family in reports.
	Phased
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Kernel:
		return "kernel"
	case App:
		return "app"
	default:
		return "phased"
	}
}

// Spec describes one buildable workload.
type Spec struct {
	// Name is the table row name ("LatencyBiased", "mcf", ...).
	Name string
	// Kind classifies the workload.
	Kind Kind
	// Description summarizes what the workload stresses.
	Description string
	// Build constructs the program at the given scale. Scale 1.0 is the
	// default experiment size; tests use smaller scales. Scale only
	// changes iteration counts, never the static CFG, so profiles at
	// different scales remain comparable.
	Build func(scale float64) *program.Program
}

var registry []Spec

func register(s Spec) {
	for _, r := range registry {
		if r.Name == s.Name {
			panic(fmt.Sprintf("workloads: duplicate spec %q", s.Name))
		}
	}
	registry = append(registry, s)
}

// All returns every registered workload, kernels first, each group in
// paper order.
func All() []Spec {
	out := append([]Spec(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Kernels returns the Table 1 workloads in paper order.
func Kernels() []Spec { return filter(Kernel) }

// Apps returns the Table 2 workloads in paper order.
func Apps() []Spec { return filter(App) }

// PhasedFamily returns the phased/bursty stress workloads in
// registration order: PhaseShift, then the spec-generated programs.
func PhasedFamily() []Spec { return filter(Phased) }

func filter(k Kind) []Spec {
	var out []Spec
	for _, s := range registry {
		if s.Kind == k {
			out = append(out, s)
		}
	}
	return out
}

// ByName returns the workload with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range registry {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workloads: unknown workload %q", name)
}

// MustBuild builds the named workload at the given scale, panicking on
// unknown names — a convenience for benchmarks and examples where the name
// is a literal.
func MustBuild(name string, scale float64) *program.Program {
	s, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return s.Build(scale)
}

// iters scales a base iteration count, keeping at least 1.
func iters(base int, scale float64) int64 {
	n := int64(float64(base) * scale)
	if n < 1 {
		n = 1
	}
	return n
}
