package profile

import (
	"math"
	"testing"

	"pmutrust/internal/machine"
	"pmutrust/internal/pmu"
	"pmutrust/internal/program"
	"pmutrust/internal/sampling"
)

// twoBlockProgram: entry (2 instrs) then a 10-instruction loop body block
// and a 3-instruction latch.
func loopProgram(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder("p")
	f := b.Func("main")
	e := f.Block("entry")
	e.Movi(1, 1000)
	e.Movi(2, 0)
	body := f.Block("body")
	for i := 0; i < 10; i++ {
		body.Addi(2, 2, 1)
	}
	latch := f.Block("latch")
	latch.Addi(1, 1, -1)
	latch.Cmpi(1, 0)
	latch.Jnz("body")
	f.Block("exit").Halt()
	return b.MustBuild()
}

// runWith fabricates a sampling.Run with the given samples and method.
func runWith(m sampling.Method, period uint64, samples []pmu.Sample) *sampling.Run {
	return &sampling.Run{
		Machine: machine.IvyBridge(),
		Method:  m,
		Period:  period,
		Samples: samples,
	}
}

func TestFromSamplesAveragesAcrossBlock(t *testing.T) {
	p := loopProgram(t)
	m, _ := sampling.MethodByKey("precise")
	body := p.Blocks[1]
	// Two samples landing on different instructions of the body block.
	samples := []pmu.Sample{
		{IP: uint32(body.Start)},
		{IP: uint32(body.Start + 5)},
	}
	bp := FromSamples(p, runWith(m, 1000, samples))
	if bp.TotalSamples != 2 {
		t.Errorf("TotalSamples = %d", bp.TotalSamples)
	}
	if got := bp.InstrEstimate[body.ID]; got != 2000 {
		t.Errorf("instr estimate = %v, want 2000 (2 samples × period)", got)
	}
	if got := bp.ExecEstimate[body.ID]; got != 200 {
		t.Errorf("exec estimate = %v, want 200 (2000/len 10)", got)
	}
	// Other blocks untouched.
	if bp.InstrEstimate[0] != 0 || bp.InstrEstimate[2] != 0 {
		t.Error("samples leaked into other blocks")
	}
}

func TestFromSamplesClampsOverflowIP(t *testing.T) {
	p := loopProgram(t)
	m, _ := sampling.MethodByKey("precise")
	samples := []pmu.Sample{{IP: uint32(len(p.Code))}} // IP+1 past the end
	bp := FromSamples(p, runWith(m, 100, samples))
	last := p.NumBlocks() - 1
	if bp.Samples[last] != 1 {
		t.Error("overflowing IP not clamped to the last block")
	}
}

func TestUopWeighting(t *testing.T) {
	p := loopProgram(t)
	m, _ := sampling.MethodByKey("precise")
	m.Event = pmu.EvUopsRetired
	samples := []pmu.Sample{{IP: uint32(p.Blocks[1].Start)}}
	bp := FromSamples(p, runWith(m, 1250, samples))
	// 1250 uops / 1.25 assumed uops-per-instruction = 1000 instructions.
	if got := bp.InstrEstimate[1]; math.Abs(got-1000) > 1e-9 {
		t.Errorf("uop-weighted estimate = %v, want 1000", got)
	}
}

func TestApplyLBRTopFix(t *testing.T) {
	// Case 1: recorded IP equals the newest branch target → trigger was
	// the branch source.
	lbr := []pmu.BranchRecord{{From: 3, To: 20}, {From: 40, To: 7}}
	if got := ApplyLBRTopFix(7, lbr); got != 40 {
		t.Errorf("branch-target fix = %d, want 40", got)
	}
	// Case 2: sequential: IP-1.
	if got := ApplyLBRTopFix(9, lbr); got != 8 {
		t.Errorf("sequential fix = %d, want 8", got)
	}
	// Case 3: empty LBR, IP 0: unchanged.
	if got := ApplyLBRTopFix(0, nil); got != 0 {
		t.Errorf("degenerate fix = %d", got)
	}
}

func TestFixAppliedDuringAttribution(t *testing.T) {
	p := loopProgram(t)
	m, _ := sampling.MethodByKey("pdir+ipfix")
	m.Precision = pmu.PreciseDist
	body := p.Blocks[1]
	latch := p.Blocks[2]
	// The trigger was the jnz at the end of latch (taken to body): the
	// PEBS record holds the branch target (body start) and the top LBR
	// entry proves it. The fix must attribute the sample to the latch.
	jnzIdx := uint32(latch.End() - 1)
	samples := []pmu.Sample{{
		IP:  uint32(body.Start),
		LBR: []pmu.BranchRecord{{From: jnzIdx, To: uint32(body.Start)}},
	}}
	bp := FromSamples(p, runWith(m, 100, samples))
	if bp.Samples[latch.ID] != 1 {
		t.Errorf("fixed sample not in latch: %v", bp.Samples)
	}
	if bp.Samples[body.ID] != 0 {
		t.Error("unfixed attribution to branch target remains")
	}
}

func TestToFunctionsAndRanking(t *testing.T) {
	b := program.NewBuilder("multi")
	f := b.Func("main")
	e := f.Block("entry")
	e.Call("hot")
	e.Call("cold")
	e.Halt()
	hot := b.Func("hot")
	hb := hot.Block("b")
	hb.Addi(1, 1, 1)
	hb.Ret()
	cold := b.Func("cold")
	cb := cold.Block("b")
	cb.Addi(2, 2, 1)
	cb.Ret()
	p := b.MustBuild()

	bp := NewBlockProfile(p)
	// Give "hot" 10x the mass of "cold".
	for _, blk := range p.Blocks {
		switch p.Funcs[blk.Func].Name {
		case "hot":
			bp.InstrEstimate[blk.ID] = 100
		case "cold":
			bp.InstrEstimate[blk.ID] = 10
		case "main":
			bp.InstrEstimate[blk.ID] = 1
		}
	}
	fp := bp.ToFunctions()
	rank := fp.Ranking()
	if p.Funcs[rank[0]].Name != "hot" {
		t.Errorf("rank[0] = %s", p.Funcs[rank[0]].Name)
	}
	if len(fp.TopN(2)) != 2 || len(fp.TopN(100)) != p.NumFuncs() {
		t.Error("TopN sizing wrong")
	}
	// Deterministic tie-break: equal estimates order by ID.
	bp2 := NewBlockProfile(p)
	fp2 := bp2.ToFunctions()
	r2 := fp2.Ranking()
	for i := 1; i < len(r2); i++ {
		if r2[i] < r2[i-1] {
			t.Error("tie-break not by ID")
		}
	}
}
