// Package profile turns raw PMU samples into basic-block profiles, the
// way profiling tools do: attribute each sample to a block, optionally
// apply the LBR-based IP+1 correction, and estimate per-block instruction
// counts by spreading each sample over its block ("tools average samples
// across all instructions in the same block", §3.1).
//
// The package also aggregates block profiles to function granularity and
// produces rankings, which the paper uses for its FullCMS top-10 ordering
// observation (§5.2).
package profile

import (
	"sort"

	"pmutrust/internal/pmu"
	"pmutrust/internal/program"
	"pmutrust/internal/sampling"
)

// BlockProfile is an estimated basic-block profile.
type BlockProfile struct {
	// Prog is the profiled program.
	Prog *program.Program
	// Samples[b] is the number of raw samples attributed to block b.
	Samples []float64
	// ExecEstimate[b] is the estimated execution count of block b.
	ExecEstimate []float64
	// InstrEstimate[b] is the estimated number of instructions retired in
	// block b (the quantity the paper's accuracy metric compares).
	InstrEstimate []float64
	// TotalSamples is the number of samples consumed.
	TotalSamples int
}

// NewBlockProfile returns an empty profile for p.
func NewBlockProfile(p *program.Program) *BlockProfile {
	n := p.NumBlocks()
	return &BlockProfile{
		Prog:          p,
		Samples:       make([]float64, n),
		ExecEstimate:  make([]float64, n),
		InstrEstimate: make([]float64, n),
	}
}

// FromSamples builds a block profile from an EBS run the way a sampling
// tool would: each sample is worth Period events; a sample attributed to
// block b contributes Period instructions to b, spread as Period/len(b)
// execution counts (in-block averaging).
//
// The method's Fix selects the attribution-time IP correction. For methods
// whose event is uop-based (AMD IBS), the tool cannot know the workload's
// true uops-per-instruction ratio and assumes the conventional 1.25, so
// blocks with unusual uop density are mis-estimated — exactly the
// deficiency §6.2 attributes to IBS.
//
// Note: this is the plain-EBS path. For methods that consume full LBR
// stacks use internal/lbr.BuildProfile instead.
func FromSamples(prog *program.Program, run *sampling.Run) *BlockProfile {
	bp := NewBlockProfile(prog)
	codeLen := uint32(len(prog.Code))

	// What one sample is "worth" in instructions, from the tool's point
	// of view: the period attached to the sample (perf records the
	// effective period per sample — essential in frequency mode, where it
	// changes over the run), converted from event units.
	instrPerEvent := 1.0
	if run.Method.Event == pmu.EvUopsRetired {
		instrPerEvent = 1.0 / 1.25
	}

	for i := range run.Samples {
		s := &run.Samples[i]
		weight := float64(s.Period) * instrPerEvent
		if s.Period == 0 {
			weight = float64(run.Period) * instrPerEvent
		}
		ip := s.IP
		if run.Method.Fix == sampling.FixLBRTop {
			ip = ApplyLBRTopFix(ip, s.LBR)
		}
		if ip >= codeLen {
			// IP+1 past the end of the code: clamp (a real tool would
			// drop the sample or attribute it to the last symbol).
			ip = codeLen - 1
		}
		b := prog.BlockOf[ip]
		bp.Samples[b]++
		bp.InstrEstimate[b] += weight
		bp.ExecEstimate[b] += weight / float64(prog.Blocks[b].Len())
		bp.TotalSamples++
	}
	return bp
}

// ApplyLBRTopFix undoes the precise-mechanism IP+1: the recorded IP is the
// next instruction *executed* after the trigger, so if it matches the most
// recent taken-branch target, the trigger was that branch's source;
// otherwise the trigger was the previous sequential instruction
// (Table 3, "precise event with distribution fix plus IP+1 offset fix").
func ApplyLBRTopFix(ip uint32, lbr []pmu.BranchRecord) uint32 {
	if len(lbr) > 0 {
		top := lbr[len(lbr)-1]
		if top.To == ip {
			return top.From
		}
	}
	if ip > 0 {
		return ip - 1
	}
	return ip
}

// FunctionProfile aggregates a block profile to function granularity.
type FunctionProfile struct {
	// Prog is the profiled program.
	Prog *program.Program
	// InstrEstimate[f] is the estimated instructions retired in function f.
	InstrEstimate []float64
}

// ToFunctions aggregates bp by owning function.
func (bp *BlockProfile) ToFunctions() *FunctionProfile {
	fp := &FunctionProfile{
		Prog:          bp.Prog,
		InstrEstimate: make([]float64, bp.Prog.NumFuncs()),
	}
	for b, v := range bp.InstrEstimate {
		fp.InstrEstimate[bp.Prog.Blocks[b].Func] += v
	}
	return fp
}

// Ranking returns function IDs sorted by descending estimated instruction
// count, ties broken by ID for determinism.
func (fp *FunctionProfile) Ranking() []int {
	ids := make([]int, len(fp.InstrEstimate))
	for i := range ids {
		ids[i] = i
	}
	sort.SliceStable(ids, func(a, b int) bool {
		va, vb := fp.InstrEstimate[ids[a]], fp.InstrEstimate[ids[b]]
		if va != vb {
			return va > vb
		}
		return ids[a] < ids[b]
	})
	return ids
}

// TopN returns the first n entries of Ranking (fewer if the program has
// fewer functions).
func (fp *FunctionProfile) TopN(n int) []int {
	r := fp.Ranking()
	if len(r) > n {
		r = r[:n]
	}
	return r
}
