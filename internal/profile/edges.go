package profile

import "pmutrust/internal/program"

// Edge is a control-flow edge between two basic blocks (block IDs).
type Edge struct {
	From, To int
}

// EdgeProfile holds (estimated or exact) traversal counts for block-level
// control-flow edges. Edge profiles are the input format of profile-guided
// optimization; §2.1 names accurate basic-block graphs as a primary use of
// the profiles this repository studies.
type EdgeProfile struct {
	// Prog is the profiled program.
	Prog *program.Program
	// Counts maps each traversed edge to its (estimated) traversal count.
	Counts map[Edge]float64
}

// NewEdgeProfile returns an empty edge profile for p.
func NewEdgeProfile(p *program.Program) *EdgeProfile {
	return &EdgeProfile{Prog: p, Counts: make(map[Edge]float64)}
}

// Add records w traversals of the edge from → to.
func (ep *EdgeProfile) Add(from, to int, w float64) {
	ep.Counts[Edge{From: from, To: to}] += w
}

// Total returns the total traversal mass.
func (ep *EdgeProfile) Total() float64 {
	var sum float64
	for _, c := range ep.Counts {
		sum += c
	}
	return sum
}

// OutCounts returns the per-successor counts of edges leaving block b.
func (ep *EdgeProfile) OutCounts(b int) map[int]float64 {
	out := make(map[int]float64)
	for e, c := range ep.Counts {
		if e.From == b {
			out[e.To] = c
		}
	}
	return out
}

// InCount returns the total traversal count into block b.
func (ep *EdgeProfile) InCount(b int) float64 {
	var sum float64
	for e, c := range ep.Counts {
		if e.To == b {
			sum += c
		}
	}
	return sum
}

// LoopStat describes one loop discovered from backedges.
type LoopStat struct {
	// Header is the loop-header block ID (the target of the backedge).
	Header int
	// Backedges is the traversal count of backedges into the header.
	Backedges float64
	// Entries is the traversal count of non-backedge edges into the
	// header (loop entries).
	Entries float64
	// TripCount is the average iterations per entry:
	// (Backedges + Entries) / Entries.
	TripCount float64
}

// TripCounts derives loop trip counts from an edge profile. A backedge is
// an intra-function edge whose target does not lie after its source
// (To <= From in block layout order). §2.1: "loop tripcounts are widely
// used for a variety of purposes, but are hard to obtain with pure EBS
// methods" — with an LBR-derived edge profile they fall out directly.
func (ep *EdgeProfile) TripCounts() map[int]LoopStat {
	p := ep.Prog
	stats := make(map[int]LoopStat)
	for e, c := range ep.Counts {
		fromBlk, toBlk := p.Blocks[e.From], p.Blocks[e.To]
		if fromBlk.Func != toBlk.Func || e.To > e.From {
			continue
		}
		s := stats[e.To]
		s.Header = e.To
		s.Backedges += c
		stats[e.To] = s
	}
	for h, s := range stats {
		for e, c := range ep.Counts {
			if e.To != h {
				continue
			}
			isBackedge := ep.Prog.Blocks[e.From].Func == ep.Prog.Blocks[h].Func && h <= e.From
			if !isBackedge {
				s.Entries += c
			}
		}
		if s.Entries > 0 {
			s.TripCount = (s.Backedges + s.Entries) / s.Entries
		}
		stats[h] = s
	}
	return stats
}
