package stats

import "math/bits"

// Primality utilities.
//
// The paper's Table 3 distinguishes "round" sampling periods (2,000,000)
// from prime periods (2,000,003): primes cannot resonate with loop trip
// counts whose dynamic instruction footprint divides the period. The
// sampling engine uses NextPrime to derive a prime period from any round
// base, exactly like a careful perf user would.

// IsPrime reports whether n is prime. Deterministic for all uint64 via a
// Miller-Rabin test with a fixed witness set proven sufficient for 64-bit
// integers.
func IsPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n%p == 0 {
			return n == p
		}
	}
	// n is odd and > 37 here. Write n-1 = d * 2^s.
	d := n - 1
	s := 0
	for d%2 == 0 {
		d /= 2
		s++
	}
	// These witnesses are sufficient for all n < 2^64 (Sinclair 2011).
	for _, a := range []uint64{2, 325, 9375, 28178, 450775, 9780504, 1795265022} {
		if !millerRabinWitness(n, a%n, d, s) {
			return false
		}
	}
	return true
}

// millerRabinWitness reports whether n passes one Miller-Rabin round with
// witness a, where n-1 = d * 2^s. a may be 0 (trivially passes).
func millerRabinWitness(n, a, d uint64, s int) bool {
	if a == 0 {
		return true
	}
	x := powMod(a, d, n)
	if x == 1 || x == n-1 {
		return true
	}
	for i := 0; i < s-1; i++ {
		x = mulMod(x, x, n)
		if x == n-1 {
			return true
		}
	}
	return false
}

// mulMod returns (a*b) mod m without overflow using 128-bit arithmetic.
// Callers guarantee a, b < m, so the 128-bit product's high word is below
// m and bits.Div64 cannot panic.
func mulMod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	if hi == 0 {
		return lo % m
	}
	_, rem := bits.Div64(hi, lo, m)
	return rem
}

// powMod returns a^e mod m.
func powMod(a, e, m uint64) uint64 {
	result := uint64(1)
	a %= m
	for e > 0 {
		if e&1 == 1 {
			result = mulMod(result, a, m)
		}
		a = mulMod(a, a, m)
		e >>= 1
	}
	return result
}

// NextPrime returns the smallest prime >= n. For n <= 2 it returns 2.
func NextPrime(n uint64) uint64 {
	if n <= 2 {
		return 2
	}
	if n%2 == 0 {
		n++
	}
	for !IsPrime(n) {
		n += 2
	}
	return n
}

// PrevPrime returns the largest prime <= n. It panics if n < 2.
func PrevPrime(n uint64) uint64 {
	if n < 2 {
		panic("stats: PrevPrime with n < 2")
	}
	if n == 2 {
		return 2
	}
	if n%2 == 0 {
		n--
	}
	for !IsPrime(n) {
		n -= 2
	}
	return n
}
