package stats

import (
	"testing"
	"testing/quick"
)

func TestIsPrimeSmall(t *testing.T) {
	primes := map[uint64]bool{
		2: true, 3: true, 5: true, 7: true, 11: true, 13: true,
		17: true, 19: true, 23: true, 29: true, 31: true, 37: true,
		41: true, 97: true, 101: true,
	}
	for n := uint64(0); n <= 101; n++ {
		want := primes[n]
		if !want {
			// Trial division for the expected value.
			if n >= 2 {
				want = true
				for d := uint64(2); d*d <= n; d++ {
					if n%d == 0 {
						want = false
						break
					}
				}
			}
		}
		if got := IsPrime(n); got != want {
			t.Errorf("IsPrime(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestIsPrimePaperPeriods(t *testing.T) {
	// The paper's Table 3 example values.
	if IsPrime(2_000_000) {
		t.Error("2,000,000 reported prime")
	}
	if !IsPrime(2_000_003) {
		t.Error("2,000,003 reported composite")
	}
}

func TestIsPrimeLarge(t *testing.T) {
	cases := map[uint64]bool{
		1<<61 - 1:            true,  // Mersenne prime
		1<<62 - 1:            false, // 3 · 715827883 · 2147483647
		18446744073709551557: true,  // largest 64-bit prime
		18446744073709551556: false,
		4294967291:           true, // largest 32-bit prime
		4294967295:           false,
		1000000007:           true,
		1000000007 * 2:       false,
		999999999999999989:   true,
	}
	for n, want := range cases {
		if got := IsPrime(n); got != want {
			t.Errorf("IsPrime(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestNextPrime(t *testing.T) {
	cases := map[uint64]uint64{
		0: 2, 1: 2, 2: 2, 3: 3, 4: 5, 8: 11, 9: 11,
		2_000_000: 2_000_003,
		2500:      2503,
		250:       251,
		500:       503,
	}
	for n, want := range cases {
		if got := NextPrime(n); got != want {
			t.Errorf("NextPrime(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestPrevPrime(t *testing.T) {
	cases := map[uint64]uint64{
		2: 2, 3: 3, 4: 3, 10: 7, 100: 97, 2_000_003: 2_000_003, 2_000_002: 1_999_993,
	}
	for n, want := range cases {
		if got := PrevPrime(n); got != want {
			t.Errorf("PrevPrime(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestPrevPrimePanicsBelow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PrevPrime(1) did not panic")
		}
	}()
	PrevPrime(1)
}

// Property: NextPrime(n) >= n, is prime, and no prime exists in between.
func TestQuickNextPrime(t *testing.T) {
	f := func(raw uint32) bool {
		n := uint64(raw%10_000_000) + 2
		p := NextPrime(n)
		if p < n || !IsPrime(p) {
			return false
		}
		for k := n; k < p; k++ {
			if IsPrime(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Miller-Rabin agrees with trial division up to 100k.
func TestIsPrimeAgainstTrialDivision(t *testing.T) {
	for n := uint64(2); n < 100_000; n++ {
		want := true
		for d := uint64(2); d*d <= n; d++ {
			if n%d == 0 {
				want = false
				break
			}
		}
		if got := IsPrime(n); got != want {
			t.Fatalf("IsPrime(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestMulModPowMod(t *testing.T) {
	// Check against direct computation with small moduli.
	for _, m := range []uint64{7, 97, 1009} {
		for a := uint64(0); a < 50; a++ {
			for b := uint64(0); b < 50; b++ {
				if got := mulMod(a, b, m); got != a*b%m {
					t.Fatalf("mulMod(%d,%d,%d) = %d, want %d", a, b, m, got, a*b%m)
				}
			}
		}
	}
	// Large operands (mulMod requires operands already reduced mod m):
	// with m = 2^61-1, (m-1)^2 ≡ 1 (mod m).
	m := uint64(1<<61 - 1)
	if got := mulMod(m-1, m-1, m); got != 1 {
		t.Errorf("mulMod(m-1, m-1, m) = %d, want 1", got)
	}
	if got := powMod(2, 61, m); got != 1 {
		t.Errorf("powMod(2, 61, 2^61-1) = %d, want 1 (Fermat)", got)
	}
}
