package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(12345), NewRNG(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical draws of 100", same)
	}
}

func TestRNGReseed(t *testing.T) {
	r := NewRNG(7)
	first := r.Uint64()
	r.Seed(7)
	if got := r.Uint64(); got != first {
		t.Errorf("reseed did not reset the stream: %d != %d", got, first)
	}
}

func TestUint64nRange(t *testing.T) {
	r := NewRNG(99)
	for _, n := range []uint64{1, 2, 3, 10, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) did not panic")
		}
	}()
	NewRNG(1).Uint64n(0)
}

func TestUint64nUniformity(t *testing.T) {
	r := NewRNG(5)
	const n = 10
	const draws = 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := draws / n
	for b, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bucket %d: %d draws, want %d±10%%", b, c, want)
		}
	}
}

func TestIntRange(t *testing.T) {
	r := NewRNG(3)
	sawLo, sawHi := false, false
	for i := 0; i < 1000; i++ {
		v := r.IntRange(-2, 2)
		if v < -2 || v > 2 {
			t.Fatalf("IntRange(-2,2) = %d", v)
		}
		if v == -2 {
			sawLo = true
		}
		if v == 2 {
			sawHi = true
		}
	}
	if !sawLo || !sawHi {
		t.Error("IntRange never hit an endpoint in 1000 draws")
	}
	if got := r.IntRange(5, 5); got != 5 {
		t.Errorf("IntRange(5,5) = %d", got)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestJitterZeroMeanAndBounds(t *testing.T) {
	r := NewRNG(21)
	const amp = 100
	sum := 0.0
	const draws = 200000
	for i := 0; i < draws; i++ {
		j := r.Jitter(amp)
		if j < -amp || j > amp {
			t.Fatalf("Jitter(%d) = %d out of range", amp, j)
		}
		sum += float64(j)
	}
	mean := sum / draws
	if math.Abs(mean) > 1.0 {
		t.Errorf("jitter mean %.3f not near zero", mean)
	}
	if NewRNG(1).Jitter(0) != 0 {
		t.Error("Jitter(0) != 0")
	}
}

func TestForkIndependence(t *testing.T) {
	a := NewRNG(8)
	f1 := a.Fork()
	// Draw from the fork, then make sure the parent's next draw matches a
	// parent that forked but never used the fork.
	_ = f1.Uint64()
	b := NewRNG(8)
	_ = b.Fork()
	if a.Uint64() != b.Uint64() {
		t.Error("using a fork perturbed the parent stream")
	}
}

func TestZipfBasics(t *testing.T) {
	z := NewZipf(5, 1.2)
	if z.N() != 5 {
		t.Fatalf("N = %d", z.N())
	}
	if got := z.CDF(4); got != 1.0 {
		t.Errorf("CDF(last) = %v, want 1", got)
	}
	// PDFs sum to 1 and are decreasing.
	sum := 0.0
	prev := math.Inf(1)
	for i := 0; i < 5; i++ {
		p := z.PDF(i)
		if p <= 0 || p > prev {
			t.Errorf("PDF(%d) = %v not positive-decreasing (prev %v)", i, p, prev)
		}
		prev = p
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("PDF sum = %v", sum)
	}
}

func TestZipfDrawSkew(t *testing.T) {
	z := NewZipf(10, 1.5)
	r := NewRNG(17)
	counts := make([]int, 10)
	for i := 0; i < 50000; i++ {
		counts[z.Draw(r)]++
	}
	if counts[0] <= counts[9] {
		t.Errorf("Zipf not skewed: rank0 %d <= rank9 %d", counts[0], counts[9])
	}
	if counts[0] < 15000 {
		t.Errorf("rank0 share too low for s=1.5: %d/50000", counts[0])
	}
}

func TestZipfPanics(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{0, 1}, {-1, 1}, {5, 0}, {5, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %v) did not panic", tc.n, tc.s)
				}
			}()
			NewZipf(tc.n, tc.s)
		}()
	}
}

// Property: Uint64n is always in range, for arbitrary seeds and moduli.
func TestQuickUint64nInRange(t *testing.T) {
	f := func(seed, n uint64) bool {
		if n == 0 {
			n = 1
		}
		r := NewRNG(seed)
		for i := 0; i < 20; i++ {
			if r.Uint64n(n) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mul64 matches big-integer multiplication on the low 64 bits
// and produces hi=0 whenever the product fits.
func TestQuickMul64(t *testing.T) {
	f := func(x, y uint64) bool {
		hi, lo := mul64(x, y)
		if lo != x*y {
			return false
		}
		if x != 0 && y != 0 {
			fits := x <= math.MaxUint64/y
			return fits == (hi == 0)
		}
		return hi == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
