package stats

import (
	"fmt"
	"testing"
)

func TestDeriveSeedDeterministic(t *testing.T) {
	a := DeriveSeed(42, "G4Box", "IvyBridge", "lbr", "0")
	b := DeriveSeed(42, "G4Box", "IvyBridge", "lbr", "0")
	if a != b {
		t.Errorf("same inputs disagree: %#x vs %#x", a, b)
	}
}

func TestDeriveSeedLabelBoundaries(t *testing.T) {
	if DeriveSeed(1, "ab", "c") == DeriveSeed(1, "a", "bc") {
		t.Error("label boundary ignored: (ab,c) == (a,bc)")
	}
	if DeriveSeed(1, "x") == DeriveSeed(1, "x", "") {
		t.Error("trailing empty label ignored")
	}
	if DeriveSeed(1) == DeriveSeed(2) {
		t.Error("base seed ignored")
	}
}

func TestFingerprint(t *testing.T) {
	fp := Fingerprint(42, "G4Box", "IvyBridge", "lbr")
	if len(fp) != 16 {
		t.Errorf("fingerprint %q is not 16 hex digits", fp)
	}
	if fp != Fingerprint(42, "G4Box", "IvyBridge", "lbr") {
		t.Error("fingerprint not deterministic")
	}
	if fp != fmt.Sprintf("%016x", DeriveSeed(42, "G4Box", "IvyBridge", "lbr")) {
		t.Error("fingerprint does not match DeriveSeed")
	}
	if Fingerprint(42, "a") == Fingerprint(43, "a") {
		t.Error("fingerprint ignores base seed")
	}
}

func TestDeriveSeedSpreads(t *testing.T) {
	// Nearby inputs (consecutive repeats, sibling labels) must land far
	// apart; a grid's worth of cells must not collide.
	seen := make(map[uint64][]string)
	labels := [][]string{}
	for _, w := range []string{"LatencyBiased", "CallChain", "G4Box", "Test40"} {
		for _, m := range []string{"MagnyCours", "Westmere", "IvyBridge"} {
			for _, k := range []string{"classic", "precise", "precise+rand", "precise+prime", "precise+prime+rand", "pdir+ipfix", "lbr"} {
				for _, rep := range []string{"0", "1", "2", "3", "4"} {
					labels = append(labels, []string{w, m, k, rep})
				}
			}
		}
	}
	for _, l := range labels {
		s := DeriveSeed(42, l...)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: %v and %v both map to %#x", prev, l, s)
		}
		seen[s] = l
	}
}
