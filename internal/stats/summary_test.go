package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Stddev() != 0 {
		t.Error("zero-value summary not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("mean = %v, want 5", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	// Population variance of this classic dataset is 4; sample variance
	// is 32/7.
	if got := s.Variance(); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("variance = %v, want %v", got, 32.0/7)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestSummarySingleObservation(t *testing.T) {
	var s Summary
	s.Add(3)
	if s.Variance() != 0 || s.Stddev() != 0 {
		t.Error("variance of single observation not zero")
	}
	if s.Min() != 3 || s.Max() != 3 || s.Mean() != 3 {
		t.Error("single-observation stats wrong")
	}
}

func TestMeanMedianPercentile(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 || Percentile(nil, 50) != 0 {
		t.Error("empty-input aggregates not zero")
	}
	xs := []float64{5, 1, 3, 2, 4}
	if Mean(xs) != 3 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Median(xs) != 3 {
		t.Errorf("Median = %v", Median(xs))
	}
	if xs[0] != 5 {
		t.Error("Median mutated its input")
	}
	even := []float64{1, 2, 3, 4}
	if Median(even) != 2.5 {
		t.Errorf("even Median = %v", Median(even))
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(xs, 200); got != 5 {
		t.Errorf("clamped P200 = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v", got)
	}
	if got := GeoMean([]float64{3, 3, 3}); math.Abs(got-3) > 1e-12 {
		t.Errorf("GeoMean(3,3,3) = %v", got)
	}
	// Non-positive values are skipped.
	if got := GeoMean([]float64{-1, 0, 4}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean with skips = %v", got)
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{0}) != 0 {
		t.Error("degenerate GeoMean not zero")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.99, -3, 42} {
		h.Add(x)
	}
	if h.Count() != 7 {
		t.Errorf("count = %d", h.Count())
	}
	// -3 clamps to bucket 0, 42 clamps to bucket 4.
	want := []uint64{3, 1, 1, 0, 2}
	for i, c := range h.Buckets {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	lo, hi := h.BucketRange(1)
	if lo != 2 || hi != 4 {
		t.Errorf("BucketRange(1) = [%v,%v)", lo, hi)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid histogram did not panic")
				}
			}()
			f()
		}()
	}
}

// Property: streaming Summary matches batch Mean for arbitrary inputs.
func TestQuickSummaryMatchesBatch(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		var s Summary
		for _, x := range clean {
			s.Add(x)
		}
		if len(clean) == 0 {
			return s.Mean() == 0
		}
		diff := s.Mean() - Mean(clean)
		scale := 1.0 + math.Abs(Mean(clean))
		return math.Abs(diff)/scale < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Percentile is monotone in p.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(xs []float64, a, b uint8) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) {
				clean = append(clean, x)
			}
		}
		p1, p2 := float64(a%101), float64(b%101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return Percentile(clean, p1) <= Percentile(clean, p2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
