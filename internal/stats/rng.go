// Package stats provides deterministic pseudo-random number generation,
// primality utilities and summary statistics used throughout the simulator.
//
// Everything in this package is allocation-free on the hot paths and fully
// deterministic: the same seed always produces the same stream, regardless
// of platform. This property is load-bearing — the entire reproduction
// depends on simulated PMU runs being exactly repeatable.
package stats

import "math"

// RNG is a splitmix64 pseudo-random number generator.
//
// Splitmix64 is chosen over math/rand because it is seedable in O(1), has a
// tiny state (8 bytes, trivially copyable), passes BigCrush, and its output
// for a given seed is stable across Go releases. The zero value is a valid
// generator seeded with 0.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Seed resets the generator to the given seed.
func (r *RNG) Seed(seed uint64) { r.state = seed }

// Uint64 returns the next 64 bits of the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64n returns a uniformly distributed integer in [0, n).
// It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("stats: Uint64n with n == 0")
	}
	// Lemire's multiply-shift rejection method: unbiased and branch-light.
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= -n%n {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return hi, lo
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// IntRange returns a uniformly distributed int in [lo, hi]. It panics if
// hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("stats: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Jitter returns a zero-mean integer jitter uniformly distributed in
// [-amp, +amp]. amp must be >= 0.
func (r *RNG) Jitter(amp uint64) int64 {
	if amp == 0 {
		return 0
	}
	return int64(r.Uint64n(2*amp+1)) - int64(amp)
}

// Fork derives an independent generator from the current stream. Forked
// generators are used to give each subsystem (period randomizer, workload
// generator, ...) its own stream so that adding draws in one subsystem does
// not perturb another.
func (r *RNG) Fork() *RNG {
	return &RNG{state: r.Uint64() ^ 0xd1b54a32d192ed03}
}

// Zipf draws from a Zipf-like distribution over [0, n) with exponent s > 0.
// It uses inverse-CDF sampling over precomputed weights when n is small and
// rejection sampling otherwise; for the workload generator n is always small
// enough that the caller should prefer NewZipf for repeated draws.
func (r *RNG) Zipf(z *Zipf) int {
	return z.Draw(r)
}

// Zipf is a precomputed Zipf(s) distribution over [0, n).
// Rank 0 is the most probable outcome. It is used by the workload
// generators to produce the long-tail "few hotspots, thousands of entries"
// profiles the paper attributes to enterprise workloads.
type Zipf struct {
	cdf []float64
}

// NewZipf builds the distribution. n must be positive, s must be positive.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: NewZipf with n <= 0")
	}
	if s <= 0 {
		panic("stats: NewZipf with s <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / pow(float64(i+1), s)
		cdf[i] = sum
	}
	inv := 1.0 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1.0
	return &Zipf{cdf: cdf}
}

// N returns the support size.
func (z *Zipf) N() int { return len(z.cdf) }

// CDF returns the cumulative probability of outcomes 0..i.
func (z *Zipf) CDF(i int) float64 { return z.cdf[i] }

// PDF returns the probability of outcome i.
func (z *Zipf) PDF(i int) float64 {
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// Draw returns a rank in [0, N) using rng.
func (z *Zipf) Draw(rng *RNG) int {
	u := rng.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func pow(base, exp float64) float64 { return math.Pow(base, exp) }
