package stats

import "fmt"

// DeriveSeed derives a stable 64-bit seed from a base seed and a list of
// string labels. The experiment harness uses it to give every cell of a
// (workload, machine, method, repeat) sweep grid its own independent
// random stream: the derived seed depends only on the cell's identity,
// never on execution order or worker count, so parallel sweeps reproduce
// sequential ones bit for bit.
//
// The construction is FNV-1a over the labels (with an out-of-band unit
// separator so label boundaries matter: ("ab","c") != ("a","bc")), mixed
// with the base seed up front and passed through a splitmix64 finalizer
// to spread low-entropy inputs across all 64 bits. Like RNG, it is fully
// deterministic across platforms and Go releases.
func DeriveSeed(base uint64, labels ...string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h ^= base
	h *= prime64
	for _, l := range labels {
		for i := 0; i < len(l); i++ {
			h ^= uint64(l[i])
			h *= prime64
		}
		// Unit separator: FNV-1a never XORs a value >= 256 from string
		// bytes, so this cannot collide with any label content.
		h ^= 0x100
		h *= prime64
	}
	// splitmix64 finalizer (same mixer as RNG.Uint64).
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// Fingerprint renders DeriveSeed printable: a fixed-width 16-hex-digit
// content address over (base, labels). The results store keys each sweep
// cell by the fingerprint of its full configuration tuple, so two cells
// share a key exactly when they would draw the same random streams and
// hence produce the same measurement.
func Fingerprint(base uint64, labels ...string) string {
	return fmt.Sprintf("%016x", DeriveSeed(base, labels...))
}
