package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates streaming summary statistics (Welford's algorithm)
// for a series of float64 observations. The zero value is ready to use.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean, or 0 with no observations.
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the minimum observation, or 0 with no observations.
func (s *Summary) Min() float64 { return s.min }

// Max returns the maximum observation, or 0 with no observations.
func (s *Summary) Max() float64 { return s.max }

// Variance returns the unbiased sample variance (n-1 denominator).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// String renders "mean ± stddev (min..max, n)".
func (s *Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g (%.4g..%.4g, n=%d)",
		s.Mean(), s.Stddev(), s.Min(), s.Max(), s.n)
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// non-positive values are skipped (and if all are skipped, 0 is returned).
// The paper reports improvement factors as "3-6x on average"; geometric
// means are the right aggregate for ratios.
func GeoMean(xs []float64) float64 {
	sum := 0.0
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Median returns the median of xs (copied, not mutated), or 0 when empty.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	mid := len(c) / 2
	if len(c)%2 == 1 {
		return c[mid]
	}
	return (c[mid-1] + c[mid]) / 2
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// nearest-rank on a sorted copy. Empty input yields 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	rank := int(math.Ceil(p/100*float64(len(c)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(c) {
		rank = len(c) - 1
	}
	return c[rank]
}

// Histogram is a fixed-bucket histogram over [lo, hi) with out-of-range
// values clamped to the edge buckets. Used by wlgen to report block-size
// and latency distributions.
type Histogram struct {
	Lo, Hi  float64
	Buckets []uint64
	count   uint64
}

// NewHistogram creates a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic("stats: NewHistogram with n <= 0")
	}
	if hi <= lo {
		panic("stats: NewHistogram with hi <= lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]uint64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	n := len(h.Buckets)
	idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(n))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	h.Buckets[idx]++
	h.count++
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// BucketRange returns the [lo, hi) range of bucket i.
func (h *Histogram) BucketRange(i int) (lo, hi float64) {
	w := (h.Hi - h.Lo) / float64(len(h.Buckets))
	return h.Lo + float64(i)*w, h.Lo + float64(i+1)*w
}
