// Package ref produces the instrumentation-based reference profile the
// paper obtains with Pin ("REF", §3.3): exact basic-block execution counts
// for a workload, against which all sampling methods are scored.
//
// The simulator makes this trivial — a functional run with a per-block
// counter is exact by construction — but the package still mirrors a real
// Pin tool's shape: it observes only block entries, not simulator
// internals, so the reference path exercises the same attribution tables
// profiles use.
package ref

import (
	"fmt"

	"pmutrust/internal/cpu"
	"pmutrust/internal/program"
)

// Profile is the exact reference profile.
type Profile struct {
	// Prog is the profiled program.
	Prog *program.Program
	// ExecCount[b] is the exact execution count of block ID b.
	ExecCount []uint64
	// InstrCount[b] is ExecCount[b] × block length: the exact number of
	// instructions retired in block b.
	InstrCount []uint64
	// NetInstructions is the total retired instruction count (the
	// normalizer of the paper's accuracy metric).
	NetInstructions uint64
	// TakenBranches is the total taken-branch count.
	TakenBranches uint64
}

// FromCounts reconstructs a Profile from memoized block execution
// counts (the payload a results store holds for a reference run) without
// re-executing p. It validates the shape — exec must have exactly one
// entry per block of p — and recomputes the derived InstrCount column,
// so a profile rebuilt from a store is structurally identical to one
// Collect produced. Callers must pass counts that were collected from
// the *same* program; the block-count check catches stale memos after a
// workload definition changes shape, but cannot catch a same-shape
// content change (the content-addressed store identity is what rules
// that out).
func FromCounts(p *program.Program, exec []uint64, netInstrs, takenBranches uint64) (*Profile, error) {
	if len(exec) != p.NumBlocks() {
		return nil, fmt.Errorf("ref: memoized profile has %d blocks, program has %d", len(exec), p.NumBlocks())
	}
	prof := &Profile{
		Prog:            p,
		ExecCount:       exec,
		InstrCount:      make([]uint64, p.NumBlocks()),
		NetInstructions: netInstrs,
		TakenBranches:   takenBranches,
	}
	for i, b := range p.Blocks {
		prof.InstrCount[i] = exec[i] * uint64(b.Len())
	}
	return prof, nil
}

// collector implements cpu.FuncMonitor counting block entries.
type collector struct {
	blockOf []int32
	starts  []int32 // start index per block, for entry detection
	exec    []uint64
	lastIdx int32
}

func (c *collector) OnExec(idx uint32) {
	b := c.blockOf[idx]
	// A block executes when control reaches its first instruction. Any
	// other instruction in the block was already accounted for at entry.
	if int32(idx) == c.starts[b] {
		c.exec[b]++
	}
	c.lastIdx = int32(idx)
}

// Collect runs p functionally and returns its exact profile.
func Collect(p *program.Program) (*Profile, error) {
	c := &collector{
		blockOf: p.BlockOf,
		starts:  make([]int32, p.NumBlocks()),
		exec:    make([]uint64, p.NumBlocks()),
	}
	for i, b := range p.Blocks {
		c.starts[i] = int32(b.Start)
	}
	res, err := cpu.RunFunctional(p, c, 0)
	if err != nil {
		return nil, err
	}
	prof := &Profile{
		Prog:            p,
		ExecCount:       c.exec,
		InstrCount:      make([]uint64, p.NumBlocks()),
		NetInstructions: res.Instructions,
		TakenBranches:   res.TakenBranches,
	}
	for i, b := range p.Blocks {
		prof.InstrCount[i] = c.exec[i] * uint64(b.Len())
	}
	return prof, nil
}
