package ref

import (
	"testing"

	"pmutrust/internal/program"
)

// diamond builds a program whose exact block counts are known analytically:
// a loop of N iterations alternating (on a counter's parity) between two
// arms of different lengths.
func diamond(t *testing.T, n int64) *program.Program {
	t.Helper()
	b := program.NewBuilder("diamond")
	f := b.Func("main")
	e := f.Block("entry")
	e.Movi(1, n)
	e.Movi(15, 1)
	test := f.Block("test")
	test.And(14, 1, 15)
	test.Cmpi(14, 0)
	test.Jnz("odd")
	even := f.Block("even")
	even.Addi(2, 2, 1)
	even.Addi(2, 2, 2)
	even.Addi(2, 2, 3)
	even.Jmp("latch")
	odd := f.Block("odd")
	odd.Addi(3, 3, 1)
	latch := f.Block("latch")
	latch.Addi(1, 1, -1)
	latch.Cmpi(1, 0)
	latch.Jnz("test")
	f.Block("exit").Halt()
	return b.MustBuild()
}

func TestExactCounts(t *testing.T) {
	const n = 1000
	p := diamond(t, n)
	prof, err := Collect(p)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	byLabel := map[string]uint64{}
	for i, blk := range p.Blocks {
		byLabel[blk.Label] = prof.ExecCount[i]
	}
	if byLabel["entry"] != 1 || byLabel["exit"] != 1 {
		t.Errorf("entry/exit counts: %d/%d", byLabel["entry"], byLabel["exit"])
	}
	if byLabel["test"] != n || byLabel["latch"] != n {
		t.Errorf("loop blocks: test=%d latch=%d, want %d", byLabel["test"], byLabel["latch"], n)
	}
	// Counter runs n..1; odd parities = 500 each for even n.
	if byLabel["odd"] != n/2 || byLabel["even"] != n/2 {
		t.Errorf("arms: odd=%d even=%d, want %d", byLabel["odd"], byLabel["even"], n/2)
	}
}

func TestInstrCountConsistency(t *testing.T) {
	p := diamond(t, 123)
	prof, err := Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for i, blk := range p.Blocks {
		if prof.InstrCount[i] != prof.ExecCount[i]*uint64(blk.Len()) {
			t.Errorf("block %s: instr %d != exec %d × len %d",
				blk.Label, prof.InstrCount[i], prof.ExecCount[i], blk.Len())
		}
		sum += prof.InstrCount[i]
	}
	if sum != prof.NetInstructions {
		t.Errorf("instruction mass: blocks sum %d, net %d", sum, prof.NetInstructions)
	}
	if prof.TakenBranches == 0 {
		t.Error("no taken branches recorded")
	}
	if prof.Prog != p {
		t.Error("profile does not reference its program")
	}
}
