package ref

import (
	"pmutrust/internal/cpu"
	"pmutrust/internal/profile"
	"pmutrust/internal/program"
)

// edgeCollector observes the functional execution stream and counts
// block-to-block transitions exactly.
type edgeCollector struct {
	blockOf []int32
	starts  []int32
	ep      *profile.EdgeProfile
	prev    int32 // previous block ID, -1 before the first block
}

func (c *edgeCollector) OnExec(idx uint32) {
	b := c.blockOf[idx]
	if int32(idx) == c.starts[b] {
		if c.prev >= 0 {
			c.ep.Add(int(c.prev), int(b), 1)
		}
		c.prev = b
	}
}

// CollectEdges runs p functionally and returns its exact block-level edge
// profile — the ground truth for evaluating LBR-derived edge profiles and
// loop trip counts.
func CollectEdges(p *program.Program) (*profile.EdgeProfile, error) {
	c := &edgeCollector{
		blockOf: p.BlockOf,
		starts:  make([]int32, p.NumBlocks()),
		ep:      profile.NewEdgeProfile(p),
		prev:    -1,
	}
	for i, b := range p.Blocks {
		c.starts[i] = int32(b.Start)
	}
	if _, err := cpu.RunFunctional(p, c, 0); err != nil {
		return nil, err
	}
	return c.ep, nil
}
