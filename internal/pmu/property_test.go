package pmu

import (
	"testing"
	"testing/quick"

	"pmutrust/internal/cpu"
	"pmutrust/internal/isa"
)

// TestQuickSampleRate: for arbitrary periods, precisions and stream
// shapes, the number of collected samples stays within the dropped-PMI
// accounting of the overflow count, and every overflow is either sampled
// or counted as dropped.
func TestQuickSampleRate(t *testing.T) {
	f := func(seed uint64, rawPeriod uint16, precPick, randPick uint8, streamLen uint16) bool {
		period := uint64(rawPeriod%500) + 2
		precision := []Precision{Imprecise, PrecisePEBS, PreciseDist, PreciseIBS}[precPick%4]
		randMode := []RandMode{RandNone, RandSoftware, RandHW4LSB}[randPick%3]
		n := int(streamLen%2000) + 100

		p := New(Config{
			Event:      EvInstRetired,
			Precision:  precision,
			Period:     period,
			Rand:       randMode,
			SkidCycles: 10,
			Seed:       seed,
		})
		for i := 0; i < n; i++ {
			p.OnRetire(cpu.RetireEvent{
				Idx:   uint32(i % 997),
				Cycle: uint64(i),
				Seq:   uint64(i + 1),
				Op:    isa.OpAdd,
				Uops:  1,
			})
		}
		got := uint64(len(p.Samples()))
		// Samples never exceed overflows; overflows minus drops bounds
		// samples from below minus at most one in-flight capture.
		if got > p.Overflows {
			return false
		}
		if p.Overflows-p.DroppedPMIs > got+1 {
			return false
		}
		// TotalEvents counts every instruction exactly once.
		return p.TotalEvents == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickSampleIPsComeFromStream: recorded IPs are always stream indices
// or their +1 neighbourhood (the IP+1 semantics); never arbitrary values.
func TestQuickSampleIPsComeFromStream(t *testing.T) {
	f := func(seed uint64, rawPeriod uint8, precPick uint8) bool {
		period := uint64(rawPeriod%60) + 2
		precision := []Precision{Imprecise, PrecisePEBS, PreciseDist, PreciseIBS}[precPick%4]
		const maxIdx = 300
		p := New(Config{
			Event:      EvInstRetired,
			Precision:  precision,
			Period:     period,
			SkidCycles: 7,
			Seed:       seed,
		})
		for i := 0; i < 3000; i++ {
			p.OnRetire(cpu.RetireEvent{
				Idx:   uint32(i % maxIdx),
				Cycle: uint64(i),
				Seq:   uint64(i + 1),
				Op:    isa.OpAdd,
				Uops:  1,
			})
		}
		for _, s := range p.Samples() {
			if s.IP > maxIdx { // maxIdx-1+1 is the largest legal IP+1
				return false
			}
		}
		return len(p.Samples()) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickDeterminism: identical configs and streams produce identical
// sample sequences.
func TestQuickDeterminism(t *testing.T) {
	f := func(seed uint64, rawPeriod uint8, randPick uint8) bool {
		period := uint64(rawPeriod%100) + 2
		randMode := []RandMode{RandNone, RandSoftware, RandHW4LSB}[randPick%3]
		mk := func() *PMU {
			return New(Config{
				Event:      EvInstRetired,
				Precision:  PreciseDist,
				Period:     period,
				Rand:       randMode,
				SkidCycles: 5,
				Seed:       seed,
			})
		}
		a, b := mk(), mk()
		for i := 0; i < 2000; i++ {
			ev := cpu.RetireEvent{
				Idx: uint32(i % 97), Cycle: uint64(i), Seq: uint64(i + 1),
				Op: isa.OpAdd, Uops: 1,
			}
			a.OnRetire(ev)
			b.OnRetire(ev)
		}
		if len(a.Samples()) != len(b.Samples()) {
			return false
		}
		for i := range a.Samples() {
			if a.Samples()[i].IP != b.Samples()[i].IP {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
