package pmu

import (
	"testing"

	"pmutrust/internal/cpu"
	"pmutrust/internal/isa"
)

// feed drives a PMU with a synthetic retirement stream. Each step is one
// retired instruction.
type step struct {
	idx    uint32
	cycle  uint64
	uops   uint8
	taken  bool
	target uint32
}

func feed(p *PMU, steps []step) {
	for i, s := range steps {
		uops := s.uops
		if uops == 0 {
			uops = 1
		}
		p.OnRetire(cpu.RetireEvent{
			Idx:    s.idx,
			Cycle:  s.cycle,
			Seq:    uint64(i + 1),
			Op:     isa.OpAdd,
			Uops:   uops,
			Taken:  s.taken,
			Target: s.target,
		})
	}
}

// seq builds a linear stream: instruction k at index k, one per cycle.
func seq(n int) []step {
	out := make([]step, n)
	for i := range out {
		out[i] = step{idx: uint32(i), cycle: uint64(i)}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero period did not panic")
		}
	}()
	New(Config{Period: 0})
}

func TestImpreciseSkidDelivery(t *testing.T) {
	// Period 10, skid 5 cycles, no randomization: the counter overflows
	// at instruction 9 (10th event), and the PMI delivers at the first
	// instruction retiring at cycle >= 9+5+jitter. With SkidCycles=4 the
	// jitter draw is Uint64n(2); pin it to zero by using skid not
	// divisible by 4... simpler: skid < 4 disables jitter (skid/4 == 0).
	p := New(Config{Event: EvInstRetired, Precision: Imprecise, Period: 10, SkidCycles: 3, Seed: 1})
	feed(p, seq(40))
	samples := p.Samples()
	if len(samples) < 2 {
		t.Fatalf("got %d samples", len(samples))
	}
	s := samples[0]
	if s.TriggerIP != 9 {
		t.Errorf("trigger = %d, want 9", s.TriggerIP)
	}
	if s.IP != 12 { // delivered at cycle 9+3 → instruction 12
		t.Errorf("recorded IP = %d, want 12", s.IP)
	}
	if s.Period != 10 {
		t.Errorf("period = %d", s.Period)
	}
}

func TestImpreciseSkidAttachesToStall(t *testing.T) {
	// A stall: instructions 0..9 at cycles 0..9, then instruction 10
	// retires at cycle 50 (long stall). A PMI triggered at instr 9
	// (cycle 9) with skid 3 must attach to the stalled instruction 10 —
	// the shadow effect.
	steps := seq(10)
	steps = append(steps, step{idx: 10, cycle: 50})
	steps = append(steps, step{idx: 11, cycle: 51})
	p := New(Config{Event: EvInstRetired, Precision: Imprecise, Period: 10, SkidCycles: 3, Seed: 1})
	feed(p, steps)
	if len(p.Samples()) != 1 {
		t.Fatalf("samples = %d", len(p.Samples()))
	}
	if got := p.Samples()[0].IP; got != 10 {
		t.Errorf("sample IP = %d, want stalled instruction 10", got)
	}
}

func TestPEBSCapturesNextCycleAndIPPlus1(t *testing.T) {
	// Stream with a burst: instructions 5,6,7 all retire in cycle 5.
	// Overflow at instruction 5 (period 6, events 0..5) arms PEBS; the
	// capture must skip burst-mates (cycle 5) and take instruction 8
	// (cycle 6), recording IP+1 = 9.
	steps := []step{
		{idx: 0, cycle: 0}, {idx: 1, cycle: 1}, {idx: 2, cycle: 2},
		{idx: 3, cycle: 3}, {idx: 4, cycle: 4},
		{idx: 5, cycle: 5}, {idx: 6, cycle: 5}, {idx: 7, cycle: 5},
		{idx: 8, cycle: 6}, {idx: 9, cycle: 7}, {idx: 10, cycle: 8},
	}
	p := New(Config{Event: EvInstRetired, Precision: PrecisePEBS, Period: 6, Seed: 1})
	feed(p, steps)
	if len(p.Samples()) != 1 {
		t.Fatalf("samples = %d", len(p.Samples()))
	}
	s := p.Samples()[0]
	if s.TriggerIP != 5 {
		t.Errorf("trigger = %d", s.TriggerIP)
	}
	if s.IP != 9 {
		t.Errorf("recorded IP = %d, want 9 (instruction 8 + 1)", s.IP)
	}
}

func TestPEBSTakenBranchRecordsTarget(t *testing.T) {
	// When the captured instruction is a taken branch, the PEBS record
	// holds the branch target (the next instruction executed), not the
	// fallthrough.
	steps := []step{
		{idx: 0, cycle: 0}, {idx: 1, cycle: 1},
		{idx: 2, cycle: 2, taken: true, target: 7}, // captured: taken branch
		{idx: 7, cycle: 3},
	}
	p := New(Config{Event: EvInstRetired, Precision: PrecisePEBS, Period: 2, Seed: 1})
	feed(p, steps)
	if len(p.Samples()) == 0 {
		t.Fatal("no samples")
	}
	if got := p.Samples()[0].IP; got != 7 {
		t.Errorf("recorded IP = %d, want branch target 7", got)
	}
}

func TestPDIRCapturesExactTrigger(t *testing.T) {
	// PDIR records the overflowing occurrence itself (+1).
	p := New(Config{Event: EvInstRetired, Precision: PreciseDist, Period: 10, Seed: 1})
	feed(p, seq(35))
	samples := p.Samples()
	if len(samples) != 3 {
		t.Fatalf("samples = %d, want 3", len(samples))
	}
	for k, s := range samples {
		wantTrig := uint32(10*(k+1) - 1)
		if s.TriggerIP != wantTrig {
			t.Errorf("sample %d trigger = %d, want %d", k, s.TriggerIP, wantTrig)
		}
		if s.IP != wantTrig+1 {
			t.Errorf("sample %d IP = %d, want %d", k, s.IP, wantTrig+1)
		}
	}
}

func TestIBSCountsUopsAndReportsExactIP(t *testing.T) {
	// Multi-uop instructions advance the counter faster. Period 10 uops;
	// each instruction has 4 uops, so overflow happens at instruction 2
	// (12 uops), reported exactly (no IP+1).
	steps := seq(10)
	for i := range steps {
		steps[i].uops = 4
	}
	p := New(Config{Event: EvUopsRetired, Precision: PreciseIBS, Period: 10, Seed: 1})
	feed(p, steps)
	if len(p.Samples()) < 2 {
		t.Fatalf("samples = %d", len(p.Samples()))
	}
	if got := p.Samples()[0].IP; got != 2 {
		t.Errorf("first IBS sample IP = %d, want 2", got)
	}
	if p.Samples()[0].IP != p.Samples()[0].TriggerIP {
		t.Error("IBS without randomization must report the exact trigger")
	}
}

func TestIBSHWRandomizationDisplacesTag(t *testing.T) {
	// With 4-LSB hardware randomization the tag attaches to the next
	// cycle's instruction (burst-head displacement).
	steps := seq(200)
	p := New(Config{Event: EvUopsRetired, Precision: PreciseIBS, Period: 16, Rand: RandHW4LSB, Seed: 1})
	feed(p, steps)
	if len(p.Samples()) == 0 {
		t.Fatal("no samples")
	}
	displaced := 0
	for _, s := range p.Samples() {
		if s.IP != s.TriggerIP {
			displaced++
		}
		if s.IP < s.TriggerIP {
			t.Errorf("tag moved backwards: IP %d < trigger %d", s.IP, s.TriggerIP)
		}
	}
	if displaced == 0 {
		t.Error("hardware randomization never displaced the tag")
	}
}

func TestHW4LSBPeriodDestroysPrimality(t *testing.T) {
	p := New(Config{Event: EvInstRetired, Precision: Imprecise, Period: 2003, Rand: RandHW4LSB, SkidCycles: 1, Seed: 9})
	for i := 0; i < 100; i++ {
		v := p.nextPeriod()
		if v < 2003&^15 || v > (2003&^15)|15 {
			t.Errorf("hw-randomized period %d outside [%d, %d]", v, 2003&^15, (2003&^15)|15)
		}
	}
}

func TestSoftwareRandomizationJitters(t *testing.T) {
	base := uint64(1000)
	p := New(Config{Event: EvInstRetired, Precision: Imprecise, Period: base, Rand: RandSoftware, RandAmp: 100, SkidCycles: 1, Seed: 3})
	lo, hi := base, base
	for i := 0; i < 200; i++ {
		v := p.nextPeriod()
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo < base-100 || hi > base+100 {
		t.Errorf("software jitter out of amplitude: [%d, %d]", lo, hi)
	}
	if lo == hi {
		t.Error("software randomization produced constant periods")
	}
}

func TestBrTakenEventCountsOnlyTaken(t *testing.T) {
	steps := []step{
		{idx: 0, cycle: 0},
		{idx: 1, cycle: 1, taken: true, target: 5},
		{idx: 5, cycle: 2},
		{idx: 6, cycle: 3, taken: true, target: 0},
		{idx: 0, cycle: 4},
		{idx: 1, cycle: 5, taken: true, target: 5},
	}
	p := New(Config{Event: EvBrTaken, Precision: Imprecise, Period: 2, SkidCycles: 0, Seed: 1})
	feed(p, steps)
	if p.TotalEvents != 3 {
		t.Errorf("taken-branch events = %d, want 3", p.TotalEvents)
	}
	if p.Overflows != 1 {
		t.Errorf("overflows = %d, want 1", p.Overflows)
	}
}

func TestLBRRingOrder(t *testing.T) {
	var l lbrRing
	var a lbrArena
	l.init(4)
	if got := l.snapshot(&a); got == nil || len(got) != 0 {
		t.Errorf("empty ring snapshot = %v, want non-nil empty", got)
	}
	for i := 1; i <= 3; i++ {
		l.push(BranchRecord{From: uint32(i), To: uint32(i * 10)})
	}
	s := l.snapshot(&a)
	if len(s) != 3 {
		t.Fatalf("snapshot len = %d", len(s))
	}
	if s[0].From != 1 || s[2].From != 3 {
		t.Errorf("order wrong: %v", s)
	}
	// Overflow the ring: oldest entries drop.
	for i := 4; i <= 9; i++ {
		l.push(BranchRecord{From: uint32(i)})
	}
	s = l.snapshot(&a)
	if len(s) != 4 {
		t.Fatalf("full snapshot len = %d", len(s))
	}
	if s[0].From != 6 || s[3].From != 9 {
		t.Errorf("ring overflow order wrong: %v", s)
	}
}

// TestLBRArenaSnapshotsIndependent pins the arena's safety contract:
// snapshots carved from shared chunks never alias, capacities are
// clipped so appending to one snapshot cannot clobber its neighbor, and
// snapshots taken before a chunk rollover survive it intact.
func TestLBRArenaSnapshotsIndependent(t *testing.T) {
	var l lbrRing
	var a lbrArena
	l.init(4)
	l.push(BranchRecord{From: 1, To: 2})
	first := l.snapshot(&a)
	l.push(BranchRecord{From: 3, To: 4})
	second := l.snapshot(&a)

	if cap(first) != len(first) {
		t.Errorf("snapshot capacity %d > length %d: appends could clobber the arena", cap(first), len(first))
	}
	_ = append(first, BranchRecord{From: 99, To: 99})
	if second[0] != (BranchRecord{From: 1, To: 2}) || second[1] != (BranchRecord{From: 3, To: 4}) {
		t.Errorf("append to one snapshot corrupted another: %v", second)
	}

	// Force several chunk rollovers; the earliest snapshots must still
	// read back their original contents.
	for i := 0; i < lbrArenaChunk; i++ {
		l.snapshot(&a)
	}
	if first[0] != (BranchRecord{From: 1, To: 2}) {
		t.Errorf("chunk rollover corrupted an old snapshot: %v", first)
	}
}

func TestLBRSnapshotInSamples(t *testing.T) {
	steps := []step{
		{idx: 0, cycle: 0},
		{idx: 1, cycle: 1, taken: true, target: 10},
		{idx: 10, cycle: 2},
		{idx: 11, cycle: 3, taken: true, target: 0},
		{idx: 0, cycle: 10},
		{idx: 1, cycle: 11, taken: true, target: 10},
		{idx: 10, cycle: 12},
	}
	p := New(Config{
		Event: EvBrTaken, Precision: Imprecise, Period: 3,
		SkidCycles: 0, CaptureLBR: true, LBRDepth: 8, Seed: 1,
	})
	feed(p, steps)
	if len(p.Samples()) != 1 {
		t.Fatalf("samples = %d", len(p.Samples()))
	}
	lbr := p.Samples()[0].LBR
	if len(lbr) != 3 {
		t.Fatalf("LBR snapshot = %v", lbr)
	}
	// The triggering branch (the third taken) must be the newest entry.
	if lbr[2].From != 1 || lbr[2].To != 10 {
		t.Errorf("newest LBR entry = %v", lbr[2])
	}
}

func TestDroppedPMIAccounting(t *testing.T) {
	// Period 2 with a huge skid: overflows arrive faster than deliveries.
	p := New(Config{Event: EvInstRetired, Precision: Imprecise, Period: 2, SkidCycles: 1000, Seed: 1})
	feed(p, seq(100))
	if p.DroppedPMIs == 0 {
		t.Error("no dropped PMIs despite overlapping overflows")
	}
	if p.Overflows != 50 {
		t.Errorf("overflows = %d, want 50", p.Overflows)
	}
}

func TestCounterRemainderPreserved(t *testing.T) {
	// Overflow preserves the remainder: with period 10 and 4-uop
	// instructions under EvUopsRetired, overflow points drift by the
	// remainder rather than snapping to instruction boundaries.
	steps := seq(30)
	for i := range steps {
		steps[i].uops = 4
	}
	p := New(Config{Event: EvUopsRetired, Precision: PreciseIBS, Period: 10, Seed: 1})
	feed(p, steps)
	// Events: counter crosses 10 at instr 2 (12 uops, remainder 2), next
	// crossing at cumulative 20 → instr 4 (20 uops, remainder 0), then 30
	// → instr 7 (32, remainder 2)...
	want := []uint32{2, 4, 7}
	for i, w := range want {
		if i >= len(p.Samples()) {
			t.Fatalf("only %d samples", len(p.Samples()))
		}
		if got := p.Samples()[i].IP; got != w {
			t.Errorf("sample %d at %d, want %d", i, got, w)
		}
	}
}

func TestStringers(t *testing.T) {
	for _, e := range []Event{EvInstRetired, EvUopsRetired, EvBrTaken} {
		if e.String() == "unknown" || e.String() == "" {
			t.Errorf("event %d has no name", e)
		}
	}
	for _, pr := range []Precision{Imprecise, PrecisePEBS, PreciseDist, PreciseIBS} {
		if pr.String() == "unknown" || pr.String() == "" {
			t.Errorf("precision %d has no name", pr)
		}
	}
	for _, r := range []RandMode{RandNone, RandSoftware, RandHW4LSB} {
		if r.String() == "unknown" || r.String() == "" {
			t.Errorf("rand mode %d has no name", r)
		}
	}
	if Event(99).String() != "unknown" || Precision(99).String() != "unknown" || RandMode(99).String() != "unknown" {
		t.Error("invalid enums must stringify as unknown")
	}
}
