// Counter multiplexing: the OS-style virtualized PMU layer.
//
// Real machines have a handful of physical counters; perf-style kernels
// accept arbitrarily many requested events, time-share the counters on a
// timer tick, and *scale* each event's raw count by enabled/running time
// to estimate what a dedicated counter would have read. That scaling is a
// first-class source of error the paper's trust question extends to
// naturally: the estimate is exact only if the event rate is stationary
// across rotation windows, which phased workloads violate. The simulator
// is in the unique position of producing the scaled estimate *and* the
// exact ground-truth count side by side, so the multiplexing error can be
// measured directly (internal/experiments' mux family).
package pmu

import (
	"fmt"
	"math"

	"pmutrust/internal/cpu"
	"pmutrust/internal/isa"
	"pmutrust/internal/telemetry"
)

// MuxPolicy selects how the multiplexer shares counters between more
// requested events than the machine can host.
type MuxPolicy uint8

const (
	// MuxRoundRobin rotates the event list by one position every
	// timeslice, like the perf core's rotation of flexible events: every
	// event gets counter time eventually, and every event's count is an
	// extrapolation.
	MuxRoundRobin MuxPolicy = iota
	// MuxPriority schedules events strictly in request order, like a list
	// of pinned perf events: the first events that fit keep their counters
	// for the whole run (exact counts), the rest never run at all
	// (perf's "<not counted>").
	MuxPriority
)

// String returns the flag spelling of the policy.
func (p MuxPolicy) String() string {
	switch p {
	case MuxRoundRobin:
		return "rr"
	case MuxPriority:
		return "priority"
	default:
		return "unknown"
	}
}

// MuxPolicyByName parses a -mux-policy flag value.
func MuxPolicyByName(name string) (MuxPolicy, error) {
	switch name {
	case "rr", "round-robin":
		return MuxRoundRobin, nil
	case "priority":
		return MuxPriority, nil
	default:
		return 0, fmt.Errorf("pmu: unknown mux policy %q (want rr or priority)", name)
	}
}

// DefaultMuxTimeslice is the rotation timeslice in simulated cycles when
// MuxConfig.TimesliceCycles is zero. Real perf rotates on the scheduler
// tick (1-4ms, millions of cycles); the default here is scaled down the
// same way the experiment harness scales workloads and sampling periods,
// keeping windows-per-run in the deployment regime.
const DefaultMuxTimeslice = 2000

// MuxConfig programs the virtualized PMU layer.
type MuxConfig struct {
	// Events is the requested counting-event list, in request order.
	// Duplicates are allowed (they occupy separate counters, as in perf).
	Events []Event
	// TimesliceCycles is the rotation timeslice in simulated cycles
	// (0 = DefaultMuxTimeslice).
	TimesliceCycles uint64
	// Policy selects the rotation policy.
	Policy MuxPolicy
	// GenCounters is the number of general-purpose physical counters
	// available to the multiplexed events (after any pinned sampling
	// counter is accounted for — see sampling.Collect).
	GenCounters int
	// FixedCounterFree reports that the machine's fixed
	// instructions-retired counter exists and is not claimed by the
	// sampling unit: an EvInstRetired request can ride on it without
	// consuming a general counter. No other event can use it — that is
	// the fixed-counter rule the classic method's Table 3 comment refers
	// to.
	FixedCounterFree bool
	// MaxCyclesPerInstr is the machine's worst-case retirement-clock
	// advance per instruction (cpu.Config.MaxRetireCyclesPerInstr). The
	// mux divides the distance to the next rotation deadline by it to
	// grant fast-path headroom that can never cross the deadline.
	MaxCyclesPerInstr uint64
}

// MuxCount is the outcome of one requested event after a multiplexed run:
// the exact ground-truth count only a simulator can see, the raw counted
// value, the enabled/running cycle accounting, and the perf-style scaled
// estimate a real tool would report.
type MuxCount struct {
	// Event is the counted event.
	Event Event `json:"event"`
	// Exact is the ground-truth occurrence count over the whole run.
	Exact uint64 `json:"exact"`
	// Raw is the count accumulated while the event held a counter.
	Raw uint64 `json:"raw"`
	// EnabledCycles is the time the event was requested (the whole run).
	EnabledCycles uint64 `json:"enabled_cycles"`
	// RunningCycles is the time the event actually held a counter.
	RunningCycles uint64 `json:"running_cycles"`
	// Scaled is the extrapolated estimate Raw * Enabled/Running — what
	// perf reports next to its "(xx.x%)" multiplexing annotation. Zero
	// when the event never ran (perf's "<not counted>").
	Scaled float64 `json:"scaled"`
}

// TableCells returns the conventional CLI-table rendering of the count:
// exact, scaled, relative error, and the running/enabled percentage
// (perf's multiplexing annotation; "-" when enabled is zero). Shared by
// wlgen -events and pmubench -experiment mux so the two surfaces cannot
// drift apart.
func (c MuxCount) TableCells() (exact, scaled, relErr, running string) {
	running = "-"
	if c.EnabledCycles > 0 {
		running = fmt.Sprintf("%.1f%%", 100*float64(c.RunningCycles)/float64(c.EnabledCycles))
	}
	return fmt.Sprintf("%d", c.Exact), fmt.Sprintf("%.0f", c.Scaled),
		fmt.Sprintf("%.4f", c.RelError()), running
}

// RelError returns the multiplexing-induced relative counting error
// |Scaled - Exact| / Exact. A starved event (never ran) counts as error 1
// (the whole count is missing); an event that never occurred has error 0.
func (c MuxCount) RelError() float64 {
	if c.Exact == 0 {
		return 0
	}
	if c.RunningCycles == 0 {
		return 1
	}
	return math.Abs(c.Scaled-float64(c.Exact)) / float64(c.Exact)
}

// Mux is the virtualized multi-event PMU: it schedules the requested
// events onto the physical counter budget, rotating on the configured
// timeslice, and counts both exactly and as-scheduled. It implements
// cpu.Monitor and cpu.FastMonitor, optionally wrapping an inner sampling
// PMU so one run produces samples and multiplexed counts together:
// monitor calls are observed by the mux first, then forwarded.
//
// Rotation is deterministic and engine-independent: the rotation deadline
// is serviced at the first retirement whose cycle reaches it (a timer
// interrupt is only visible at instruction boundaries), *before* that
// retirement's events are counted, and the next deadline is one timeslice
// after the service cycle. The fast-path contract makes deadlines
// stride-safe: FastHeadroom never grants instructions that could reach
// the deadline (rotation boundaries are fallback points), so strided and
// per-instruction execution count every window identically — the
// differential harness checks the counts bit for bit.
type Mux struct {
	cfg   MuxConfig
	inner cpu.FastMonitor // optional sampling unit; may be nil

	exact     []uint64
	raw       []uint64
	running   []uint64
	scheduled []bool

	// contended is false when every event fits the budget: the schedule
	// is static and the mux never rotates, costs no fast-path fallbacks,
	// and scales nothing.
	contended bool
	rot       int    // rotation offset into Events (round-robin)
	winStart  uint64 // cycle the current window opened
	nextRot   uint64 // rotation deadline (contended round-robin only)
	// estCycle is a conservative upper bound on the current retirement
	// cycle: exact after every OnRetire, advanced by MaxCyclesPerInstr
	// per strided instruction in BulkRetire. Used only to keep headroom
	// grants from crossing nextRot; window accounting always uses exact
	// cycles from OnRetire.
	estCycle uint64
	finished bool

	// Rotations counts serviced rotation deadlines.
	Rotations uint64

	// tele is the run's telemetry counter block — the inner sampling
	// unit's block when one is wrapped (one run, one block), the mux's
	// own otherwise.
	tele *telemetry.EngineCounters
}

// EngineCounters implements cpu.EngineObserver.
func (m *Mux) EngineCounters() *telemetry.EngineCounters { return m.tele }

// NewMux creates a multiplexer for the given configuration, wrapping
// inner (which may be nil for a counting-only run).
func NewMux(cfg MuxConfig, inner cpu.FastMonitor) *Mux {
	if len(cfg.Events) == 0 {
		panic("pmu: mux with no requested events")
	}
	if cfg.TimesliceCycles == 0 {
		cfg.TimesliceCycles = DefaultMuxTimeslice
	}
	if cfg.MaxCyclesPerInstr == 0 {
		panic("pmu: mux without MaxCyclesPerInstr (use cpu.Config.MaxRetireCyclesPerInstr)")
	}
	if cfg.GenCounters < 0 {
		cfg.GenCounters = 0
	}
	m := &Mux{
		cfg:       cfg,
		inner:     inner,
		exact:     make([]uint64, len(cfg.Events)),
		raw:       make([]uint64, len(cfg.Events)),
		running:   make([]uint64, len(cfg.Events)),
		scheduled: make([]bool, len(cfg.Events)),
	}
	if o, ok := inner.(cpu.EngineObserver); ok {
		m.tele = o.EngineCounters()
	}
	if m.tele == nil {
		m.tele = &telemetry.EngineCounters{}
	}
	// Capacity check with rotation offset 0: if everything fits, the
	// schedule is static for the whole run regardless of policy.
	m.place()
	all := true
	for _, s := range m.scheduled {
		all = all && s
	}
	if cfg.GenCounters == 0 && !cfg.FixedCounterFree {
		panic("pmu: mux with no available counters")
	}
	// Priority placement never changes, so only contended round-robin
	// rotates.
	m.contended = !all && cfg.Policy == MuxRoundRobin
	if m.contended {
		m.nextRot = cfg.TimesliceCycles
	}
	return m
}

// place computes the active counter assignment for the current rotation
// offset: walk the (rotated) request list, give EvInstRetired the fixed
// counter when it is free, hand out general counters until they run out.
func (m *Mux) place() {
	gen := m.cfg.GenCounters
	fixed := m.cfg.FixedCounterFree
	n := len(m.cfg.Events)
	for i := range m.scheduled {
		m.scheduled[i] = false
	}
	for k := 0; k < n; k++ {
		idx := k
		if m.cfg.Policy == MuxRoundRobin {
			idx = (m.rot + k) % n
		}
		switch {
		case m.cfg.Events[idx] == EvInstRetired && fixed:
			fixed = false
			m.scheduled[idx] = true
		case gen > 0:
			gen--
			m.scheduled[idx] = true
		}
	}
}

// closeWindow credits the running time of the window ending at cyc.
func (m *Mux) closeWindow(cyc uint64) {
	for i, s := range m.scheduled {
		if s && cyc > m.winStart {
			m.running[i] += cyc - m.winStart
		}
	}
	m.winStart = cyc
}

// rotate services one rotation deadline at cycle cyc.
func (m *Mux) rotate(cyc uint64) {
	m.closeWindow(cyc)
	m.rot = (m.rot + 1) % len(m.cfg.Events)
	m.place()
	m.nextRot = cyc + m.cfg.TimesliceCycles
	m.Rotations++
}

// OnRetire implements cpu.Monitor: service a due rotation, count the
// retirement for every requested event (exactly always, raw only while
// scheduled), and forward to the inner sampling unit.
func (m *Mux) OnRetire(ev cpu.RetireEvent) {
	if m.contended && ev.Cycle >= m.nextRot {
		m.rotate(ev.Cycle)
	}
	m.estCycle = ev.Cycle
	for i, e := range m.cfg.Events {
		u := EventUnits(e, ev)
		if u == 0 {
			continue
		}
		m.exact[i] += u
		if m.scheduled[i] {
			m.raw[i] += u
		}
	}
	if m.inner != nil {
		m.inner.OnRetire(ev)
	} else {
		// Innermost monitor in the chain: event-mode accounting is ours
		// (a wrapped unit counts in its own OnRetire).
		m.tele.EventInstrs++
	}
}

// FastHeadroom implements cpu.FastMonitor: the lesser of the inner unit's
// grant and the rotation-deadline grant. The deadline grant divides the
// remaining cycle distance by the worst-case cycle advance per
// instruction, so no strided retirement can reach the deadline; when the
// conservative cycle estimate has drifted past the deadline the grant is
// zero and the next OnRetire resynchronizes it with the real clock.
//
// A zero mux grant returns before consulting the inner unit, so exactly
// one layer attributes each fallback event (headroom queries are pure
// modulo telemetry, so the skipped inner call is behavior-identical);
// when the inner unit is the refuser it has already counted its reason.
func (m *Mux) FastHeadroom() uint64 {
	h := uint64(1) << 40
	if m.contended {
		if m.estCycle >= m.nextRot {
			m.tele.Fallbacks[telemetry.FallbackMuxDeadline]++
			return 0
		}
		g := (m.nextRot - m.estCycle - 1) / m.cfg.MaxCyclesPerInstr
		if g == 0 {
			m.tele.Fallbacks[telemetry.FallbackMuxDeadline]++
			return 0
		}
		if g < h {
			h = g
		}
	}
	if m.inner != nil {
		if ih := m.inner.FastHeadroom(); ih < h {
			h = ih
		}
	}
	return h
}

// WantBranches implements cpu.FastMonitor: the mux itself needs only
// bulk totals, so the branch stream is demanded only for the inner unit.
func (m *Mux) WantBranches() bool {
	return m.inner != nil && m.inner.WantBranches()
}

// BulkClasses implements cpu.BulkClassHinter: BulkRetire reads Instrs
// (to advance the conservative rotation clock) plus each configured
// event's class, and forwards to the inner unit — so the hint is that
// union. An inner unit that does not hint demands every class.
func (m *Mux) BulkClasses() cpu.BulkClass {
	cl := cpu.BulkInstrs
	for _, e := range m.cfg.Events {
		cl |= bulkClassOf(e)
	}
	if m.inner != nil {
		h, ok := m.inner.(cpu.BulkClassHinter)
		if !ok {
			return cpu.BulkAll
		}
		cl |= h.BulkClasses()
	}
	return cl
}

// OnFastBranch implements cpu.FastMonitor by forwarding to the inner
// unit (taken-branch counting is covered by BulkCounts.TakenBranches).
func (m *Mux) OnFastBranch(from, to uint32, op isa.Op) {
	if m.inner != nil {
		m.inner.OnFastBranch(from, to, op)
	}
}

// BulkRetire implements cpu.FastMonitor: attribute a whole stride to the
// current schedule. The headroom grant guarantees no rotation deadline
// lies inside the stride, so the attribution is exact.
func (m *Mux) BulkRetire(c cpu.BulkCounts) {
	if m.contended {
		m.estCycle += c.Instrs * m.cfg.MaxCyclesPerInstr
	}
	for i, e := range m.cfg.Events {
		u := EventUnitsBulk(e, c)
		if u == 0 {
			continue
		}
		m.exact[i] += u
		if m.scheduled[i] {
			m.raw[i] += u
		}
	}
	if m.inner != nil {
		m.inner.BulkRetire(c)
	} else {
		m.tele.Strides++
		m.tele.StrideInstrs += c.Instrs
	}
}

// Finish closes the final window at the run's final cycle and returns the
// per-event outcome, in request order. It must be called exactly once,
// after the run completes (cpu.Result.Cycles is the final cycle).
func (m *Mux) Finish(finalCycle uint64) []MuxCount {
	if m.finished {
		panic("pmu: Mux.Finish called twice")
	}
	m.finished = true
	m.closeWindow(finalCycle)
	out := make([]MuxCount, len(m.cfg.Events))
	for i, e := range m.cfg.Events {
		c := MuxCount{
			Event:         e,
			Exact:         m.exact[i],
			Raw:           m.raw[i],
			EnabledCycles: finalCycle,
			RunningCycles: m.running[i],
		}
		if c.RunningCycles > 0 {
			c.Scaled = float64(c.Raw) * float64(c.EnabledCycles) / float64(c.RunningCycles)
		}
		out[i] = c
	}
	return out
}

// InjectKernel attributes a stretch of instrs kernel context-switch-path
// instructions to the currently scheduled counters: the raw counts (and
// nothing else) absorb the kernel mix, because the counters are already
// restored while the switch tail retires, but the kernel instructions are
// not part of the tenant program the exact ground truth describes. Every
// injection therefore moves the scaled estimate away from Exact — the
// per-task counting noise the multi-tenant scheduler measures. Running
// time is unaffected: the injection happens at a scheduler deadline,
// which is a fast-path fallback point, and window accounting continues
// from real retirement cycles.
func (m *Mux) InjectKernel(instrs uint64) {
	for i, e := range m.cfg.Events {
		if m.scheduled[i] {
			m.raw[i] += KernelEventUnits(e, instrs)
		}
	}
}

// Repartition re-derives the physical counter budget mid-run, for the
// scheduler's migration mode: a task migrating onto a machine model with
// a different fixed-counter rule gets its events re-placed on the new
// budget at the migration point (a fast-path fallback point, so both
// engines re-place at the same retirement). The rotation offset and all
// accumulated counts survive; only the placement changes.
func (m *Mux) Repartition(genCounters int, fixedFree bool, cycle uint64) {
	if genCounters < 0 {
		genCounters = 0
	}
	if genCounters == 0 && !fixedFree {
		panic("pmu: mux repartitioned to no available counters")
	}
	m.closeWindow(cycle)
	m.cfg.GenCounters = genCounters
	m.cfg.FixedCounterFree = fixedFree
	m.place()
	if cycle > m.estCycle {
		// Resynchronize the conservative clock: while uncontended, bulk
		// strides never advanced it, and a stale estimate would over-grant
		// headroom across the rotation deadline armed below.
		m.estCycle = cycle
	}
	if !m.contended && m.cfg.Policy == MuxRoundRobin {
		// A shrunken budget can overcommit a list that used to fit; start
		// rotating from here. (A re-grown budget keeps rotating — a
		// rotation over a fitting list schedules everything, harmlessly.)
		for _, s := range m.scheduled {
			if !s {
				m.contended = true
				m.nextRot = cycle + m.cfg.TimesliceCycles
				break
			}
		}
	}
}

// Config returns the active configuration.
func (m *Mux) Config() MuxConfig { return m.cfg }

// Contended reports whether the request list overcommits the counter
// budget under the round-robin policy (i.e. whether the mux rotates).
func (m *Mux) Contended() bool { return m.contended }

var _ cpu.FastMonitor = (*Mux)(nil)
